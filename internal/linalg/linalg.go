// Package linalg implements the small dense complex linear algebra needed by
// the resynthesis pass: 2×2 complex matrices, the U3(θ,φ,λ) parameterization
// used by the hardware gate set {CZ, U3}, and the inverse ZYZ decomposition
// that recovers U3 angles (up to global phase) from an arbitrary 2×2 unitary.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Mat2 is a 2×2 complex matrix in row-major order:
//
//	[ A B ]
//	[ C D ]
type Mat2 struct {
	A, B, C, D complex128
}

// Identity is the 2×2 identity matrix.
func Identity() Mat2 { return Mat2{1, 0, 0, 1} }

// Mul returns m·n (matrix product, m applied after n when acting on kets as
// m·n·|ψ⟩ — i.e. call order is Mul(later, earlier)).
func Mul(m, n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// Scale returns s·m.
func Scale(s complex128, m Mat2) Mat2 {
	return Mat2{s * m.A, s * m.B, s * m.C, s * m.D}
}

// Dagger returns the conjugate transpose of m.
func (m Mat2) Dagger() Mat2 {
	return Mat2{cmplx.Conj(m.A), cmplx.Conj(m.C), cmplx.Conj(m.B), cmplx.Conj(m.D)}
}

// Det returns the determinant of m.
func (m Mat2) Det() complex128 { return m.A*m.D - m.B*m.C }

// IsUnitary reports whether m†m ≈ I to within tol.
func (m Mat2) IsUnitary(tol float64) bool {
	p := Mul(m.Dagger(), m)
	return cmplx.Abs(p.A-1) < tol && cmplx.Abs(p.D-1) < tol &&
		cmplx.Abs(p.B) < tol && cmplx.Abs(p.C) < tol
}

// U3 returns the standard U3 gate matrix
//
//	U3(θ,φ,λ) = [ cos(θ/2)            -e^{iλ} sin(θ/2)      ]
//	            [ e^{iφ} sin(θ/2)      e^{i(φ+λ)} cos(θ/2)  ]
func U3(theta, phi, lambda float64) Mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Mat2{
		A: c,
		B: -cmplx.Exp(complex(0, lambda)) * s,
		C: cmplx.Exp(complex(0, phi)) * s,
		D: cmplx.Exp(complex(0, phi+lambda)) * c,
	}
}

// Common fixed gates in the input gate set.
func H() Mat2 {
	r := complex(1/math.Sqrt2, 0)
	return Mat2{r, r, r, -r}
}
func X() Mat2 { return Mat2{0, 1, 1, 0} }
func Y() Mat2 { return Mat2{0, -1i, 1i, 0} }
func Z() Mat2 { return Mat2{1, 0, 0, -1} }
func S() Mat2 { return Mat2{1, 0, 0, 1i} }
func Sdg() Mat2 {
	return Mat2{1, 0, 0, -1i}
}
func T() Mat2 {
	return Mat2{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
}
func Tdg() Mat2 {
	return Mat2{1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4))}
}

// RX, RY, RZ are the standard rotation gates exp(-iθP/2).
func RX(theta float64) Mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return Mat2{c, s, s, c}
}
func RY(theta float64) Mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Mat2{c, -s, s, c}
}
func RZ(theta float64) Mat2 {
	return Mat2{cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))}
}

// Phase returns the phase gate P(λ) = diag(1, e^{iλ}) = U3(0,0,λ).
func Phase(lambda float64) Mat2 {
	return Mat2{1, 0, 0, cmplx.Exp(complex(0, lambda))}
}

// PhaseDistance returns the global-phase-invariant distance between two 2×2
// unitaries: min over φ of the max-entry deviation |e^{iφ}m − n|. Zero means
// the two matrices implement the same physical gate.
func PhaseDistance(m, n Mat2) float64 {
	// Align phases on the largest-magnitude entry of n.
	type pair struct{ a, b complex128 }
	ps := []pair{{m.A, n.A}, {m.B, n.B}, {m.C, n.C}, {m.D, n.D}}
	best := -1.0
	var ref pair
	for _, p := range ps {
		if mag := cmplx.Abs(p.b); mag > best {
			best, ref = mag, p
		}
	}
	if best < 1e-12 {
		// n ≈ 0: not a unitary; fall back to raw distance.
		return maxEntryDist(m, n)
	}
	if cmplx.Abs(ref.a) < 1e-12 {
		return maxEntryDist(m, n) // cannot align: structurally different
	}
	phase := ref.b / ref.a
	phase /= complex(cmplx.Abs(phase), 0)
	return maxEntryDist(Scale(phase, m), n)
}

func maxEntryDist(m, n Mat2) float64 {
	d := cmplx.Abs(m.A - n.A)
	if v := cmplx.Abs(m.B - n.B); v > d {
		d = v
	}
	if v := cmplx.Abs(m.C - n.C); v > d {
		d = v
	}
	if v := cmplx.Abs(m.D - n.D); v > d {
		d = v
	}
	return d
}

// IsIdentity reports whether m is the identity up to global phase, to tol.
func (m Mat2) IsIdentity(tol float64) bool {
	return PhaseDistance(m, Identity()) < tol
}

// ZYZ decomposes an arbitrary 2×2 unitary into U3 angles (θ, φ, λ) such that
// U3(θ,φ,λ) equals m up to a global phase. It returns an error if m is not
// unitary within 1e-6.
func ZYZ(m Mat2) (theta, phi, lambda float64, err error) {
	if !m.IsUnitary(1e-6) {
		return 0, 0, 0, fmt.Errorf("linalg: ZYZ of non-unitary matrix %+v", m)
	}
	// Remove global phase: divide by sqrt(det) to get an SU(2) element.
	det := m.Det()
	sq := cmplx.Sqrt(det)
	if cmplx.Abs(sq) < 1e-12 {
		return 0, 0, 0, fmt.Errorf("linalg: degenerate determinant")
	}
	u := Scale(1/sq, m)
	// u = [ cos(θ/2) e^{-i(φ+λ)/2}   -sin(θ/2) e^{-i(φ-λ)/2} ]
	//     [ sin(θ/2) e^{ i(φ-λ)/2}    cos(θ/2) e^{ i(φ+λ)/2} ]
	cosHalf := cmplx.Abs(u.A)
	if cosHalf > 1 {
		cosHalf = 1
	}
	theta = 2 * math.Acos(cosHalf)
	sinHalf := math.Sin(theta / 2)

	var sum, diff float64 // sum = φ+λ, diff = φ−λ
	switch {
	case cosHalf >= 1e-9 && sinHalf >= 1e-9:
		sum = 2 * cmplx.Phase(u.D)
		diff = 2 * cmplx.Phase(u.C)
	case sinHalf < 1e-9:
		// Diagonal: only φ+λ matters; set λ to carry it all.
		sum = 2 * cmplx.Phase(u.D)
		diff = sum // ⇒ λ = 0 after solving; any split works, pick φ = sum
	default:
		// Anti-diagonal (θ = π): only φ−λ matters.
		diff = 2 * cmplx.Phase(u.C)
		sum = diff
	}
	phi = (sum + diff) / 2
	lambda = (sum - diff) / 2
	return theta, normAngle(phi), normAngle(lambda), nil
}

// normAngle maps an angle to (−π, π].
func normAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
