package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// PrometheusContentType is the Content-Type of the Prometheus text
// exposition format version 0.0.4.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus reports whether the request negotiated the Prometheus
// text exposition instead of the JSON default: ?format=prom, or an Accept
// header naming text/plain (the format Prometheus scrapers send). JSON
// stays the default for browsers and curl (Accept: */*).
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// promBuilder accumulates exposition lines, emitting each family's
// # HELP/# TYPE header once.
type promBuilder struct {
	b strings.Builder
}

// family writes one metric family's header.
func (p *promBuilder) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels alternate key, value and render in
// the given order.
func (p *promBuilder) sample(name string, value float64, labels ...string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, "%s=%q", labels[i], labels[i+1])
		}
		p.b.WriteByte('}')
	}
	// %g renders integers without a decimal point and avoids trailing
	// zeros, matching the exposition examples.
	fmt.Fprintf(&p.b, " %g\n", value)
}

// boolGauge renders a bool as the conventional 0/1 gauge value.
func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// PrometheusText renders a MetricsResponse in the Prometheus text
// exposition format version 0.0.4. Families and label sets emit in a fixed
// sorted order, so the output for a given snapshot is byte-stable (the
// property the golden test pins).
func PrometheusText(m MetricsResponse) []byte {
	var p promBuilder

	p.family("zac_requests_total", "HTTP requests served since startup.", "counter")
	p.sample("zac_requests_total", float64(m.RequestsTotal))
	p.family("zac_compiles_total", "Compilation lookups, cached or not.", "counter")
	p.sample("zac_compiles_total", float64(m.CompilesTotal))
	p.family("zac_inflight_compiles", "Compilations currently executing.", "gauge")
	p.sample("zac_inflight_compiles", float64(m.InFlightCompiles))

	caches := []struct {
		label string
		c     CacheMetrics
	}{{"compile", m.Cache}, {"pass", m.PassCache}}

	p.family("zac_cache_hits_total", "Cache lookups served without computing, by cache and tier.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_hits_total", float64(e.c.MemHits), "cache", e.label, "tier", "mem")
		p.sample("zac_cache_hits_total", float64(e.c.DiskHits), "cache", e.label, "tier", "disk")
	}
	p.family("zac_cache_misses_total", "Cache lookups that computed from scratch.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_misses_total", float64(e.c.Misses), "cache", e.label)
	}
	p.family("zac_cache_hit_ratio", "Hits over lookups in [0,1].", "gauge")
	for _, e := range caches {
		p.sample("zac_cache_hit_ratio", e.c.HitRate, "cache", e.label)
	}
	p.family("zac_cache_mem_entries", "Resident entries in the LRU memory front.", "gauge")
	for _, e := range caches {
		p.sample("zac_cache_mem_entries", float64(e.c.MemEntries), "cache", e.label)
	}
	p.family("zac_cache_disk_entries", "Entries in the disk tier.", "gauge")
	for _, e := range caches {
		p.sample("zac_cache_disk_entries", float64(e.c.DiskEntries), "cache", e.label)
	}
	p.family("zac_cache_disk_bytes", "Total size of the disk tier in bytes.", "gauge")
	for _, e := range caches {
		p.sample("zac_cache_disk_bytes", float64(e.c.DiskBytes), "cache", e.label)
	}
	p.family("zac_cache_disk_retries_total", "Disk operations retried after transient I/O errors.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_disk_retries_total", float64(e.c.DiskRetries), "cache", e.label)
	}
	p.family("zac_cache_disk_failures_total", "Disk operations that exhausted their retries.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_disk_failures_total", float64(e.c.DiskFailures), "cache", e.label)
	}
	p.family("zac_cache_breaker_opens_total", "Disk circuit-breaker transitions to open.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_breaker_opens_total", float64(e.c.BreakerOpens), "cache", e.label)
	}
	p.family("zac_cache_breaker_skips_total", "Disk operations short-circuited while the breaker was open.", "counter")
	for _, e := range caches {
		p.sample("zac_cache_breaker_skips_total", float64(e.c.BreakerSkips), "cache", e.label)
	}
	p.family("zac_cache_breaker_state", "Disk circuit-breaker state, one-hot by state label.", "gauge")
	for _, e := range caches {
		if e.c.BreakerState == "" {
			continue // no disk tier attached
		}
		for _, state := range []string{"closed", "half-open", "open"} {
			p.sample("zac_cache_breaker_state", boolGauge(e.c.BreakerState == state),
				"cache", e.label, "state", state)
		}
	}

	p.family("zac_admission_queue_depth", "Requests waiting for a compile slot.", "gauge")
	p.sample("zac_admission_queue_depth", float64(m.Admission.QueueDepth))
	p.family("zac_admission_queue_limit", "Configured waiting-queue bound.", "gauge")
	p.sample("zac_admission_queue_limit", float64(m.Admission.QueueLimit))
	p.family("zac_admission_shed_total", "Requests rejected with 429 because the queue was full.", "counter")
	p.sample("zac_admission_shed_total", float64(m.Admission.Shed))
	p.family("zac_deadline_exceeded_total", "Requests that missed their timeout_ms deadline.", "counter")
	p.sample("zac_deadline_exceeded_total", float64(m.Admission.DeadlineExceeded))
	p.family("zac_draining", "1 while the server drains for shutdown.", "gauge")
	p.sample("zac_draining", boolGauge(m.Admission.Draining))

	p.family("zac_jobs", "Async jobs by lifecycle status.", "gauge")
	jobStatuses := make([]string, 0, len(m.Jobs))
	for st := range m.Jobs {
		jobStatuses = append(jobStatuses, string(st))
	}
	sort.Strings(jobStatuses)
	for _, st := range jobStatuses {
		p.sample("zac_jobs", float64(m.Jobs[JobStatus(st)]), "status", st)
	}
	p.family("zac_jobs_replayed_total", "Async jobs re-run from the crash journal at startup.", "counter")
	p.sample("zac_jobs_replayed_total", float64(m.JobsReplayed))

	p.family("zac_compile_latency_ms", "Fresh-compilation wall-clock latency by compiler (summary: _sum/_count plus a max gauge).", "summary")
	compilers := make([]string, 0, len(m.Compilers))
	for name := range m.Compilers {
		compilers = append(compilers, name)
	}
	sort.Strings(compilers)
	for _, name := range compilers {
		lm := m.Compilers[name]
		p.sample("zac_compile_latency_ms_sum", lm.TotalMS, "compiler", name)
		p.sample("zac_compile_latency_ms_count", float64(lm.Count), "compiler", name)
	}
	p.family("zac_compile_latency_ms_max", "Worst single fresh compilation by compiler, in milliseconds.", "gauge")
	for _, name := range compilers {
		p.sample("zac_compile_latency_ms_max", m.Compilers[name].MaxMS, "compiler", name)
	}

	p.family("zac_pass_latency_ms", "Fresh-compilation pass latency by compiler and pipeline pass (summary: _sum/_count).", "summary")
	passKeys := make([]string, 0, len(m.Passes))
	for key := range m.Passes {
		passKeys = append(passKeys, key)
	}
	sort.Strings(passKeys)
	for _, key := range passKeys {
		lm := m.Passes[key]
		compilerName, pass, _ := strings.Cut(key, "/")
		p.sample("zac_pass_latency_ms_sum", lm.TotalMS, "compiler", compilerName, "pass", pass)
		p.sample("zac_pass_latency_ms_count", float64(lm.Count), "compiler", compilerName, "pass", pass)
	}

	return []byte(p.b.String())
}
