// Package bench provides the paper's benchmark suite (§VII, Fig. 8): the 17
// QASMBench circuits, reconstructed as structural generators at the paper's
// qubit counts. The generators reproduce each circuit family's structure —
// the property the evaluation depends on (parallelism, depth, interaction
// topology) — while exact post-transpilation gate counts may differ slightly
// from the paper's Qiskit-produced numbers (recorded here as Paper2Q/Paper1Q
// and compared in EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math"

	"zac/internal/circuit"
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name      string
	NumQubits int
	// The (2Q, 1Q) gate counts printed in the paper's Fig. 8 labels.
	Paper2Q, Paper1Q int
	Build            func() *circuit.Circuit
}

// All returns the 17-circuit suite in the paper's Fig. 8 order.
func All() []Benchmark {
	return []Benchmark{
		{"bv_n14", 14, 13, 28, func() *circuit.Circuit { return BV(14, onesString(13)) }},
		{"bv_n19", 19, 18, 38, func() *circuit.Circuit { return BV(19, onesString(18)) }},
		{"bv_n30", 30, 29, 60, func() *circuit.Circuit { return BV(30, onesString(29)) }},
		{"bv_n70", 70, 36, 107, func() *circuit.Circuit { return BV(70, spacedString(69, 36)) }},
		{"cat_n22", 22, 21, 43, func() *circuit.Circuit { return Cat(22) }},
		{"cat_n35", 35, 34, 69, func() *circuit.Circuit { return Cat(35) }},
		{"ghz_n23", 23, 22, 45, func() *circuit.Circuit { return GHZ(23) }},
		{"ghz_n40", 40, 39, 79, func() *circuit.Circuit { return GHZ(40) }},
		{"ghz_n78", 78, 77, 155, func() *circuit.Circuit { return GHZ(78) }},
		{"ising_n42", 42, 82, 144, func() *circuit.Circuit { return Ising(42, 1) }},
		{"ising_n98", 98, 194, 340, func() *circuit.Circuit { return Ising(98, 1) }},
		{"knn_n31", 31, 105, 153, func() *circuit.Circuit { return KNN(31) }},
		{"multiply_n13", 13, 40, 53, func() *circuit.Circuit { return Multiply13() }},
		{"qft_n18", 18, 306, 324, func() *circuit.Circuit { return QFT(18) }},
		{"seca_n11", 11, 80, 100, func() *circuit.Circuit { return SECA11() }},
		{"swap_test_n25", 25, 84, 123, func() *circuit.Circuit { return SwapTest(25) }},
		{"wstate_n27", 27, 52, 105, func() *circuit.Circuit { return WState(27) }},
	}
}

// ByName looks a benchmark up by its Fig. 8 name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// onesString returns an all-ones BV secret of length n.
func onesString(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}

// spacedString returns a length-n secret with k ones spread evenly, matching
// the sparser oracle of the paper's bv_n70 (36 2Q gates on 70 qubits).
func spacedString(n, k int) []bool {
	s := make([]bool, n)
	for i := 0; i < k; i++ {
		s[i*n/k] = true
	}
	return s
}

// BV builds the Bernstein–Vazirani circuit on n qubits (n−1 data + 1
// ancilla): the oracle applies a CX from data bit i to the ancilla for every
// 1 in the secret string.
func BV(n int, secret []bool) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("bv_n%d", n), n)
	anc := n - 1
	c.Append(circuit.X, []int{anc})
	for q := 0; q < n; q++ {
		c.Append(circuit.H, []int{q})
	}
	for i, bit := range secret {
		if bit {
			c.Append(circuit.CX, []int{i, anc})
		}
	}
	for q := 0; q < n-1; q++ {
		c.Append(circuit.H, []int{q})
	}
	return c
}

// GHZ builds the linear-chain GHZ state circuit.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ghz_n%d", n), n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < n-1; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}
	return c
}

// Cat builds the cat-state circuit (QASMBench's cat uses the same chain
// construction as GHZ).
func Cat(n int) *circuit.Circuit {
	c := GHZ(n)
	c.Name = fmt.Sprintf("cat_n%d", n)
	return c
}

// Ising builds one first-order Trotter layer of the transverse-field Ising
// model on a 1D chain: RZZ on every chain edge plus RX on every site. The
// RZZ gates on even and odd edges form two fully parallel layers — the
// high-parallelism workload of the paper's discussion (§VII-C).
func Ising(n, layers int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ising_n%d", n), n)
	const (
		dt = 0.1
		j  = 1.0
		h  = 0.7
	)
	for q := 0; q < n; q++ {
		c.Append(circuit.H, []int{q})
	}
	for l := 0; l < layers; l++ {
		for start := 0; start <= 1; start++ {
			for i := start; i+1 < n; i += 2 {
				c.Append(circuit.RZZ, []int{i, i + 1}, 2*j*dt)
			}
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RX, []int{q}, 2*h*dt)
		}
	}
	return c
}

// QFT builds the full quantum Fourier transform with controlled-phase
// rotations (no final swaps, matching the paper's 306 2Q gates at n=18:
// n(n−1)/2 CP gates × 2 CZ each).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qft_n%d", n), n)
	for i := 0; i < n; i++ {
		c.Append(circuit.H, []int{i})
		for j := i + 1; j < n; j++ {
			c.Append(circuit.CP, []int{j, i}, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	return c
}

// SwapTest builds the swap test over (n−1)/2 qubit pairs with one ancilla:
// H(anc), controlled-SWAP per pair, H(anc).
func SwapTest(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("swap_test_n%d", n), n)
	anc := 0
	pairs := (n - 1) / 2
	// Prepare non-trivial register states.
	for i := 0; i < pairs; i++ {
		c.Append(circuit.RY, []int{1 + i}, 0.3+0.1*float64(i))
		c.Append(circuit.RY, []int{1 + pairs + i}, 0.2+0.05*float64(i))
	}
	c.Append(circuit.H, []int{anc})
	for i := 0; i < pairs; i++ {
		c.Append(circuit.CSWAP, []int{anc, 1 + i, 1 + pairs + i})
	}
	c.Append(circuit.H, []int{anc})
	return c
}

// KNN builds the quantum k-nearest-neighbor kernel circuit, which QASMBench
// implements as a swap test between a test register and a training register
// (15 pairs at n=31).
func KNN(n int) *circuit.Circuit {
	c := SwapTest(n)
	c.Name = fmt.Sprintf("knn_n%d", n)
	return c
}

// WState builds the W-state preparation circuit: a chain of controlled
// rotations distributing amplitude, each followed by a CX.
func WState(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("wstate_n%d", n), n)
	c.Append(circuit.X, []int{0})
	for i := 0; i < n-1; i++ {
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-i)))
		c.Append(circuit.CRY, []int{i, i + 1}, theta)
		c.Append(circuit.CX, []int{i + 1, i})
	}
	return c
}

// Multiply13 builds the 13-qubit quantum multiplier (QASMBench multiply_n13:
// a 3×3-bit shift-and-add multiplier built from Toffoli partial products and
// CX ripple additions).
func Multiply13() *circuit.Circuit {
	c := circuit.New("multiply_n13", 13)
	// Registers: a[0..2] = 0..2, b[0..2] = 3..5, product p[0..5] = 6..11,
	// carry = 12.
	a := []int{0, 1, 2}
	b := []int{3, 4, 5}
	p := []int{6, 7, 8, 9, 10, 11}
	carry := 12
	// Load inputs.
	c.Append(circuit.X, []int{a[0]})
	c.Append(circuit.X, []int{a[2]})
	c.Append(circuit.X, []int{b[1]})
	// Partial products: p[i+j] ^= a[i]·b[j] with carry propagation.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c.Append(circuit.CCX, []int{a[i], b[j], p[i+j]})
		}
		// Ripple a carry after each row.
		c.Append(circuit.CX, []int{p[i], carry})
		c.Append(circuit.CX, []int{carry, p[i+1]})
	}
	return c
}

// SECA11 builds the 11-qubit Shor error-correction ancilla circuit
// (QASMBench seca_n11): two rounds of 3-qubit repetition-code encode /
// error-injection / majority-vote decode across the phase and bit bases,
// using Toffoli gates for the correction step.
func SECA11() *circuit.Circuit {
	c := circuit.New("seca_n11", 11)
	data := 0
	block := func(q1, q2 int) {
		// encode
		c.Append(circuit.CX, []int{data, q1})
		c.Append(circuit.CX, []int{data, q2})
		c.Append(circuit.H, []int{data})
		c.Append(circuit.H, []int{q1})
		c.Append(circuit.H, []int{q2})
		// channel rotation (error model)
		c.Append(circuit.RZ, []int{data}, 0.35)
		c.Append(circuit.RZ, []int{q1}, 0.35)
		c.Append(circuit.RZ, []int{q2}, 0.35)
		// decode + majority vote
		c.Append(circuit.H, []int{data})
		c.Append(circuit.H, []int{q1})
		c.Append(circuit.H, []int{q2})
		c.Append(circuit.CX, []int{data, q1})
		c.Append(circuit.CX, []int{data, q2})
		c.Append(circuit.CCX, []int{q1, q2, data})
	}
	// Two rounds over the five ancilla pairs.
	for round := 0; round < 2; round++ {
		for pair := 0; pair < 5; pair++ {
			block(1+2*pair, 2+2*pair)
		}
	}
	return c
}
