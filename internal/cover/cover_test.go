package cover

import (
	"context"
	"sync"
	"testing"
)

func TestNilSetIsSafe(t *testing.T) {
	var s *Set
	s.Hit("x")
	s.Merge(map[string]uint64{"y": 1})
	if s.Counts() != nil || s.Features() != nil || s.Has("x") || s.Len() != 0 {
		t.Error("nil Set must observe nothing")
	}
	if d := s.Diff(NewSet()); d != nil {
		t.Errorf("nil Diff = %v", d)
	}
}

func TestHitCountsAndDiff(t *testing.T) {
	base := NewSet()
	base.Hit("a")
	base.Hit("a")
	base.Hit("b")
	if got := base.Counts()["a"]; got != 2 {
		t.Errorf("a hit %d times, want 2", got)
	}
	next := NewSet()
	next.Hit("b")
	next.Hit("c")
	next.Hit("d")
	if d := next.Diff(base); len(d) != 2 || d[0] != "c" || d[1] != "d" {
		t.Errorf("Diff = %v, want [c d]", d)
	}
	base.Merge(next.Counts())
	if !base.Has("c") || base.Len() != 4 {
		t.Errorf("merge lost features: %v", base.Features())
	}
}

func TestContextPlumbing(t *testing.T) {
	if From(context.Background()) != nil {
		t.Error("empty context carried a collector")
	}
	s := NewSet()
	ctx := With(context.Background(), s)
	From(ctx).Hit("via-ctx")
	if !s.Has("via-ctx") {
		t.Error("hit through context not recorded")
	}
}

func TestConcurrentHits(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Hit("hot")
			}
		}()
	}
	wg.Wait()
	if got := s.Counts()["hot"]; got != 8000 {
		t.Errorf("hot hit %d times, want 8000", got)
	}
}
