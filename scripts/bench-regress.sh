#!/usr/bin/env bash
# bench-regress.sh [--rebase [ref]] [baseline.json]
#
# Regression gate over the PR-3 placement micro-benchmarks, routed through
# the performance observatory (cmd/zac-benchsuite) when it can say
# something statistically defensible:
#
#   1. Statistical route (default): the observatory runs the micro matrix
#      with BENCH_REPS repetitions into the persistent store BENCH_STORE,
#      then gates the fresh samples against the store's previous commit on
#      THIS machine with a Mann-Whitney U test (significance BENCH_ALPHA,
#      practical floor BENCH_MIN_DELTA_PCT). Cross-machine records are
#      never compared — the store shards by machine fingerprint. BENCH_OUT
#      becomes an export of the store.
#   2. Threshold fallback: when the store has no comparable baseline yet
#      (first run on a machine, fresh CI checkout) or repetitions are too
#      few for the test, the legacy gate below applies: run the go-test
#      micro-benchmarks and fail when any is more than THRESHOLD_PCT
#      percent slower than the recorded baseline's "current" block
#      (default: BENCH_3.json), writing fresh numbers to BENCH_OUT
#      (default BENCH_4.json) in the bench-compare.sh format. Uses
#      benchstat for the human-readable diff when installed; the gate
#      itself is self-contained.
#
# With --rebase the recorded numbers are not trusted at all: the commit
# that last touched the committed baseline (the tree whose working-tree run
# produced its "current" block; overridable by the optional ref argument or
# REBASE_REF) is checked out into a throwaway worktree, the same benchmarks
# are run there ON THIS MACHINE, and the gate compares working tree vs that
# locally measured baseline (written to REBASE_OUT, default
# BENCH_local.json). That makes the THRESHOLD_PCT gate meaningful on any
# hardware — committed BENCH_N.json numbers only ever describe the machine
# that recorded them.
#
# Environment:
#   BENCH_STORE    observatory store dir (default .zac-benchstore); set
#                  BENCH_SUITE=0 to skip the statistical route entirely
#   BENCH_REPS    observatory repetitions per case (default 10; values
#                  below 5 force the threshold fallback by construction)
#   BENCH_ALPHA    Mann-Whitney significance level (default 0.05)
#   BENCH_MIN_DELTA_PCT  practical-significance floor in percent (default 3)
#   BENCHTIME      go test -benchtime value (default 20x; the sub-ms JV
#                  benchmarks are too noisy at lower iteration counts to
#                  gate on)
#   BENCH_OUT      output path (default BENCH_4.json)
#   THRESHOLD_PCT  max tolerated slowdown in percent (default 20; also the
#                  statistical route's fallback threshold)
#   REBASE_REF     git ref to regenerate the baseline from (--rebase;
#                  default: the commit that last touched the baseline
#                  file, falling back to HEAD)
#   REBASE_OUT     locally regenerated baseline path (default BENCH_local.json)
set -euo pipefail
cd "$(dirname "$0")/.."

REBASE=0
if [ "${1:-}" = "--rebase" ]; then
  REBASE=1
  shift
  # An optional ref may follow --rebase; a *.json argument is the baseline.
  case "${1:-}" in
    ''|*.json) ;;
    *) REBASE_REF="$1"; shift ;;
  esac
fi

BASELINE="${1:-BENCH_3.json}"
BENCHTIME="${BENCHTIME:-20x}"
OUT="${BENCH_OUT:-BENCH_4.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-20}"
# BenchmarkBuildPlanSched carries the multi-core scaling cells (gmp1/gmp8);
# PATTERN/PKGS are overridable for targeted runs. The threshold gate only
# checks names present in the baseline, so cells newer than BENCH_3.json are
# recorded but not gated on the fallback path.
PATTERN="${PATTERN:-BenchmarkJVDense|BenchmarkJVSparse|BenchmarkSAInitial|BenchmarkBuildPlan|BenchmarkBuildPlanSched}"
PKGS="${PKGS:-./internal/matching ./internal/place ./internal/schedule}"

if [ ! -f "$BASELINE" ]; then
  echo "bench-regress: baseline $BASELINE not found" >&2
  exit 1
fi

RAW="$(mktemp)"
CUR_TSV="$(mktemp)"
REF_TSV="$(mktemp)"
WORKDIR=""
TOOLDIR=""
cleanup() {
  rm -f "$RAW" "$CUR_TSV" "$REF_TSV"
  if [ -n "$WORKDIR" ]; then
    git worktree remove --force "$WORKDIR/ref" >/dev/null 2>&1 || true
    rm -rf "$WORKDIR"
  fi
  if [ -n "$TOOLDIR" ]; then
    rm -rf "$TOOLDIR"
  fi
}
trap cleanup EXIT

# ---------------------------------------------------------------------------
# Statistical route: observatory run + Mann-Whitney gate vs the store's
# previous commit on this machine. Falls through to the legacy threshold
# gate when no comparable baseline exists yet (gate exit 2).
if [ "$REBASE" -eq 0 ] && [ "${BENCH_SUITE:-1}" != "0" ]; then
  STORE="${BENCH_STORE:-.zac-benchstore}"
  REPS="${BENCH_REPS:-10}"
  TOOLDIR="$(mktemp -d)"
  if go build -o "$TOOLDIR/zac-benchsuite" ./cmd/zac-benchsuite; then
    echo "bench-regress: observatory micro matrix ($REPS reps) into $STORE" >&2
    "$TOOLDIR/zac-benchsuite" run -matrix micro -reps "$REPS" -store "$STORE" >&2
    GATE=0
    "$TOOLDIR/zac-benchsuite" gate -store "$STORE" -baseline previous -current latest \
      -alpha "${BENCH_ALPHA:-0.05}" -min-delta "${BENCH_MIN_DELTA_PCT:-3}" \
      -threshold "$THRESHOLD_PCT" >&2 || GATE=$?
    if [ "$GATE" -eq 0 ] || [ "$GATE" -eq 1 ]; then
      "$TOOLDIR/zac-benchsuite" export -store "$STORE" -o "$OUT" >&2 || true
      if [ "$GATE" -ne 0 ]; then
        echo "bench-regress: FAILED — the statistical gate flagged a regression vs the store's previous commit" >&2
        exit 1
      fi
      echo "bench-regress: statistical gate passed; $OUT exported from $STORE" >&2
      exit 0
    fi
    echo "bench-regress: no comparable baseline in $STORE yet (first run on this machine?); falling back to the ${THRESHOLD_PCT}% threshold gate vs $BASELINE" >&2
  else
    echo "bench-regress: zac-benchsuite failed to build; falling back to the threshold gate" >&2
  fi
fi

if [ "$REBASE" -eq 1 ]; then
  # Resolve the rebase ref: explicit argument/env, else the commit that
  # last touched the baseline file (whose tree produced its "current"
  # numbers — the recorded "baseline_sha" is the PREVIOUS PR's ref and
  # predates those benchmarks), else HEAD.
  if [ -z "${REBASE_REF:-}" ]; then
    REBASE_REF="$(git log -n1 --format=%H -- "$BASELINE" 2>/dev/null || true)"
  fi
  if [ -z "${REBASE_REF:-}" ] || ! git rev-parse --verify --quiet "${REBASE_REF}^{commit}" >/dev/null; then
    echo "bench-regress: --rebase: ref '${REBASE_REF:-}' not resolvable; using HEAD" >&2
    REBASE_REF=HEAD
  fi
  REBASE_OUT="${REBASE_OUT:-BENCH_local.json}"
  WORKDIR="$(mktemp -d)"
  echo "bench-regress: --rebase: measuring baseline $REBASE_REF on this machine" >&2
  git worktree add --detach "$WORKDIR/ref" "$REBASE_REF" >/dev/null
  REBASE_RAW="$WORKDIR/raw.txt"
  (cd "$WORKDIR/ref" && go test -run xxx -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" $PKGS) | tee "$REBASE_RAW" >&2
  awk '/^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      print name "\t" ns "\t" bop "\t" aop
    }' "$REBASE_RAW" > "$WORKDIR/ref.tsv"
  if [ ! -s "$WORKDIR/ref.tsv" ]; then
    echo "bench-regress: --rebase: no benchmarks at $REBASE_REF" >&2
    exit 1
  fi
  # Emit the local baseline in the bench-compare format, so the rest of the
  # script (and future runs passing it as [baseline.json]) consume it
  # unchanged.
  awk -v ref="$REBASE_REF" -v refsha="$(git rev-parse "$REBASE_REF")" -v benchtime="$BENCHTIME" '
    function emit(file,   line, f, sep, out) {
      sep = ""; out = ""
      while ((getline line < file) > 0) {
        split(line, f, "\t")
        out = out sep sprintf("\n    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", f[1], f[2], f[3], f[4])
        sep = ","
      }
      close(file)
      return out
    }
    BEGIN {
      printf "{\n"
      printf "  \"baseline_ref\": \"%s\",\n", ref
      printf "  \"baseline_sha\": \"%s\",\n", refsha
      printf "  \"benchtime\": \"%s\",\n", benchtime
      printf "  \"rebased\": true,\n"
      printf "  \"current\": {%s\n  }\n", emit(ARGV[1])
      printf "}\n"
    }
  ' "$WORKDIR/ref.tsv" > "$REBASE_OUT"
  echo "bench-regress: --rebase: wrote local baseline $REBASE_OUT (ref $REBASE_REF)" >&2
  BASELINE="$REBASE_OUT"
fi

echo "bench-regress: running micro-benchmarks (benchtime $BENCHTIME) against $BASELINE" >&2
go test -run xxx -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$RAW" >&2

awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = "null"; bop = "null"; aop = "null"
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    print name "\t" ns "\t" bop "\t" aop
  }' "$RAW" > "$CUR_TSV"

# Extract the baseline's "current" block as the reference numbers.
awk '
  /"current": \{/ { in_cur = 1; next }
  in_cur && /^  \},?$/ { in_cur = 0 }
  in_cur {
    line = $0
    if (match(line, /"[^"]+": \{"ns_op": [0-9.e+-]+, "b_op": [0-9.e+-]+(, "allocs_op": [0-9.e+-]+)?\}/)) {
      name = line; sub(/^[ ]*"/, "", name); sub(/".*/, "", name)
      ns = line; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
      bop = line; sub(/.*"b_op": /, "", bop); sub(/[,}].*/, "", bop)
      aop = line
      if (aop ~ /"allocs_op"/) { sub(/.*"allocs_op": /, "", aop); sub(/[,}].*/, "", aop) } else { aop = "null" }
      print name "\t" ns "\t" bop "\t" aop
    }
  }
' "$BASELINE" > "$REF_TSV"

if [ ! -s "$REF_TSV" ]; then
  echo "bench-regress: no benchmarks found in $BASELINE" >&2
  exit 1
fi

# Optional benchstat-style context when the tool happens to be installed.
if command -v benchstat >/dev/null 2>&1; then
  benchstat <(awk -F'\t' '{print $1 " 1 " $2 " ns/op"}' "$REF_TSV") \
            <(awk -F'\t' '{print $1 " 1 " $2 " ns/op"}' "$CUR_TSV") >&2 || true
fi

FAIL=0
while IFS=$'\t' read -r name ref_ns _ _; do
  cur_ns=$(awk -F'\t' -v n="$name" '$1 == n { print $2 }' "$CUR_TSV")
  if [ -z "$cur_ns" ] || [ "$cur_ns" = "null" ]; then
    echo "bench-regress: FAIL $name: present in baseline but not in current run" >&2
    FAIL=1
    continue
  fi
  verdict=$(awk -v cur="$cur_ns" -v ref="$ref_ns" -v pct="$THRESHOLD_PCT" \
    'BEGIN { limit = ref * (1 + pct / 100); printf "%s %.1f", (cur > limit ? "FAIL" : "ok"), 100 * (cur / ref - 1) }')
  state="${verdict%% *}"
  delta="${verdict##* }"
  echo "bench-regress: $state $name: ${cur_ns} ns/op vs baseline ${ref_ns} ns/op (${delta}%)" >&2
  if [ "$state" = "FAIL" ]; then
    FAIL=1
  fi
done < "$REF_TSV"

REF_LABEL="$BASELINE"
awk -v ref="$REF_LABEL" -v refsha="$(git rev-parse HEAD 2>/dev/null || echo unknown)" -v benchtime="$BENCHTIME" '
  function emit(file,   line, f, sep, out) {
    sep = ""; out = ""
    while ((getline line < file) > 0) {
      split(line, f, "\t")
      out = out sep sprintf("\n    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", f[1], f[2], f[3], f[4])
      sep = ","
    }
    close(file)
    return out
  }
  function speedups(curf, reff,   line, f, cur, out, sep) {
    while ((getline line < curf) > 0) { split(line, f, "\t"); cur[f[1]] = f[2] }
    close(curf)
    sep = ""; out = ""
    while ((getline line < reff) > 0) {
      split(line, f, "\t")
      if (f[1] in cur && cur[f[1]] + 0 > 0 && f[2] != "null") {
        out = out sep sprintf("\n    \"%s\": %.2f", f[1], f[2] / cur[f[1]])
        sep = ","
      }
    }
    close(reff)
    return out
  }
  BEGIN {
    printf "{\n"
    printf "  \"baseline_ref\": \"%s\",\n", ref
    printf "  \"baseline_sha\": \"%s\",\n", refsha
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"current\": {%s\n  },\n", emit(ARGV[1])
    printf "  \"baseline\": {%s\n  },\n", emit(ARGV[2])
    printf "  \"speedup_vs_baseline\": {%s\n  }\n", speedups(ARGV[1], ARGV[2])
    printf "}\n"
  }
' "$CUR_TSV" "$REF_TSV" > "$OUT"
echo "bench-regress: wrote $OUT" >&2

if [ "$FAIL" -ne 0 ]; then
  echo "bench-regress: FAILED — a benchmark regressed more than ${THRESHOLD_PCT}% vs $BASELINE" >&2
  exit 1
fi
echo "bench-regress: all benchmarks within ${THRESHOLD_PCT}% of $BASELINE" >&2
