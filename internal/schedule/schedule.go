// Package schedule implements ZAC's instruction scheduling (paper §VI): it
// turns a placement plan into a timed ZAIR program by (1) splitting each
// movement phase into rearrangement jobs of AOD-compatible movements via
// repeated maximal independent sets (following Enola), (2) analyzing
// dependencies, and (3) assigning jobs to AODs with load-balancing
// longest-job-first scheduling.
//
// The phase structure follows the paper's grouped execution order: move
// qubits into the entanglement zone, fire the Rydberg laser, move idle
// qubits back to storage, repeat (§VI). Single-qubit stages execute
// sequentially between movement phases (the paper's conservative timing
// assumption, §VII-B). Qubit dependencies (Fig. 7b) can only arise across
// phases, which the phase barriers enforce; trap dependencies (Fig. 7a)
// additionally arise *within* a move-in phase when advanced in-zone reuse
// chains site-to-site movements, and are handled by dependency-aware job
// ordering (falling back to single-move jobs if bundling creates job-level
// cycles).
package schedule

import (
	"context"
	"fmt"
	"sort"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/engine"
	"zac/internal/fidelity"
	"zac/internal/geom"
	"zac/internal/graphalgo"
	"zac/internal/place"
	"zac/internal/telemetry"
	"zac/internal/zair"
)

// Options tunes how a schedule is computed, never what it contains: any
// Options value produces byte-identical programs.
type Options struct {
	// Workers bounds the goroutines used to build the movement conflict
	// graphs; non-positive selects all cores.
	Workers int
}

// minParallelMoves is the movement-phase size below which the conflict graph
// is built sequentially: tiny phases cost less than the fan-out.
const minParallelMoves = 64

// Result is a fully scheduled program plus the statistics the fidelity
// model consumes.
type Result struct {
	Program *zair.Program
	Stats   fidelity.Stats
	NumJobs int
}

// Build schedules the plan into a timed ZAIR program with the default
// Options. The context is checked between stages, so a cancelled compilation
// stops mid-schedule; cancellation never alters the produced program, only
// whether one is produced.
func Build(ctx context.Context, a *arch.Architecture, staged *circuit.Staged, plan *place.Plan) (*Result, error) {
	return BuildWithOptions(ctx, a, staged, plan, Options{})
}

// BuildWithOptions is Build with an explicit worker budget.
func BuildWithOptions(ctx context.Context, a *arch.Architecture, staged *circuit.Staged, plan *place.Plan, opts Options) (*Result, error) {
	if len(a.AODs) == 0 {
		return nil, fmt.Errorf("schedule: architecture has no AODs")
	}
	s := &scheduler{a: a, staged: staged, plan: plan, workers: engine.Workers(opts.Workers)}
	return s.run(ctx)
}

type scheduler struct {
	a       *arch.Architecture
	staged  *circuit.Staged
	plan    *place.Plan
	workers int

	prog  zair.Program
	stats fidelity.Stats
	clock float64
	jobs  int
}

func (s *scheduler) run(ctx context.Context) (*Result, error) {
	s.prog.Name = s.staged.Name
	s.prog.NumQubits = s.staged.NumQubits
	s.stats.Busy = make([]float64, s.staged.NumQubits)

	// Init instruction from the initial placement.
	init := zair.Init{}
	for q, t := range s.plan.Initial {
		init.Locs = append(init.Locs, s.trapQLoc(q, t))
	}
	s.prog.Instructions = append(s.prog.Instructions, init)

	// Walk stages; plan steps align with Rydberg stages in order.
	stepIdx := 0
	for si, st := range s.staged.Stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch st.Kind {
		case circuit.OneQStage:
			s.emitOneQStage(st)
		case circuit.RydbergStage:
			if stepIdx >= len(s.plan.Steps) {
				return nil, fmt.Errorf("schedule: plan has %d steps but stage %d is Rydberg", len(s.plan.Steps), si)
			}
			step := &s.plan.Steps[stepIdx]
			if step.StageIdx != si {
				return nil, fmt.Errorf("schedule: plan step %d maps to stage %d, expected %d", stepIdx, step.StageIdx, si)
			}
			if err := s.emitMovePhase(ctx, step.MovesIn); err != nil {
				return nil, err
			}
			s.emitRydberg(step)
			if err := s.emitMovePhase(ctx, step.MovesOut); err != nil {
				return nil, err
			}
			stepIdx++
		}
	}
	s.stats.Duration = s.clock
	return &Result{Program: &s.prog, Stats: s.stats, NumJobs: s.jobs}, nil
}

// emitOneQStage appends the stage's U3 gates. Gates with the same unitary
// batch into one ZAIR instruction (the IR's 1qGate carries one unitary and a
// location list, §IX); execution remains sequential per gate — the paper's
// conservative timing model.
func (s *scheduler) emitOneQStage(st circuit.Stage) {
	type key [3]float64
	n := len(st.Gates)
	if n == 0 {
		return
	}
	// Group gates by unitary without per-group slice growth: count members
	// per distinct unitary (first-appearance order), then partition one
	// shared backing array by group offsets. Gate order within a group is
	// unchanged, so the emitted instructions are byte-identical to the old
	// append-per-gate construction.
	ord := make(map[key]int, n)
	var orderKeys []key
	var counts []int
	gidx := make([]int, n) // gate → group ordinal
	for gi, g := range st.Gates {
		k := key{g.Params[0], g.Params[1], g.Params[2]}
		o, ok := ord[k]
		if !ok {
			o = len(orderKeys)
			ord[k] = o
			orderKeys = append(orderKeys, k)
			counts = append(counts, 0)
		}
		counts[o]++
		gidx[gi] = o
	}
	offsets := make([]int, len(counts)+1)
	for o, c := range counts {
		offsets[o+1] = offsets[o] + c
	}
	members := make([]int, n)
	fill := append([]int(nil), offsets[:len(counts)]...)
	for gi, g := range st.Gates {
		o := gidx[gi]
		members[fill[o]] = g.Qubits[0]
		fill[o]++
	}
	for o, k := range orderKeys {
		qubits := members[offsets[o]:offsets[o+1]]
		begin := s.clock
		end := begin + s.a.Times.OneQGate*float64(len(qubits))
		inst := zair.OneQGate{
			Unitary:   k,
			BeginTime: begin,
			EndTime:   end,
		}
		for _, q := range qubits {
			inst.Locs = append(inst.Locs, zair.QLoc{Q: q})
			s.stats.OneQGates++
			s.stats.AddBusy(q, s.a.Times.OneQGate)
		}
		s.prog.Instructions = append(s.prog.Instructions, inst)
		s.clock = end
	}
}

// emitRydberg fires the Rydberg laser over every entanglement zone that
// hosts gates in this step (zones fire in parallel — each has its own
// exposure). Idle qubits inside a firing zone would be excited; ZAC's
// placement keeps the zones free of idle qubits, so Excited stays zero, but
// the accounting is kept general for baseline reuse.
func (s *scheduler) emitRydberg(step *place.Step) {
	zones := map[int]bool{}
	for _, site := range step.Sites {
		zones[site.Zone] = true
	}
	begin := s.clock
	end := begin + s.a.Times.Rydberg
	for zi := range zones {
		s.prog.Instructions = append(s.prog.Instructions, zair.Rydberg{
			ZoneID: zi, BeginTime: begin, EndTime: end,
		})
	}
	for _, g := range step.Gates {
		s.stats.TwoQGates++
		for _, q := range g.Qubits {
			s.stats.AddBusy(q, s.a.Times.Rydberg)
		}
	}
	s.clock = end
}

// emitMovePhase groups the phase's movements into AOD-compatible
// rearrangement jobs, load-balances them across AODs (longest job first to
// the earliest-available AOD), and advances the clock to the phase makespan.
func (s *scheduler) emitMovePhase(ctx context.Context, moves []place.Move) error {
	if len(moves) == 0 {
		return nil
	}
	specs := make([]moveSpec, len(moves))
	for i, m := range moves {
		specs[i] = moveSpec{
			move: m,
			from: m.From.Point(s.a),
			to:   m.To.Point(s.a),
		}
	}
	groups, gerr := groupCompatible(ctx, s.workers, specs)
	if gerr != nil {
		return gerr
	}
	err := s.emitJobsForGroups(specs, groups)
	if err == errCyclicJobs {
		// Bundling created a job-level dependency cycle even though the
		// move-level graph is acyclic (the placement guarantees that).
		// Fall back to one job per move, which always admits a topological
		// order.
		singles := make([][]int, len(specs))
		for i := range specs {
			singles[i] = []int{i}
		}
		err = s.emitJobsForGroups(specs, singles)
	}
	return err
}

var errCyclicJobs = fmt.Errorf("schedule: cyclic trap dependencies within a movement phase")

// emitJobsForGroups builds one rearrangement job per movement group,
// analyzes Fig. 7a trap dependencies between them, and schedules them onto
// the AODs.
func (s *scheduler) emitJobsForGroups(specs []moveSpec, groups [][]int) error {
	// Build one job per group, tracking its source and target traps for the
	// Fig. 7a trap-dependency analysis.
	type builtJob struct {
		job     zair.RearrangeJob
		dur     float64
		sources map[zair.QLoc]bool // trap part only (Q zeroed)
		targets map[zair.QLoc]bool
		deps    []int // job indices that must complete first
		placed  bool
		begin   float64
	}
	trapOf := func(l zair.QLoc) zair.QLoc { l.Q = 0; return l }
	jobs := make([]*builtJob, 0, len(groups))
	for _, g := range groups {
		var ms []zair.MoveSpec
		bj := &builtJob{sources: map[zair.QLoc]bool{}, targets: map[zair.QLoc]bool{}}
		for _, i := range g {
			sp := specs[i]
			begin := s.posQLoc(sp.move.Qubit, sp.move.From)
			end := s.posQLoc(sp.move.Qubit, sp.move.To)
			ms = append(ms, zair.MoveSpec{
				Qubit: sp.move.Qubit, Begin: begin, End: end,
				From: sp.from, To: sp.to,
			})
			bj.sources[trapOf(begin)] = true
			bj.targets[trapOf(end)] = true
		}
		job, timing := zair.BuildJob(0, ms, s.a.Times.AtomTransfer, s.a.MoveTime)
		bj.job, bj.dur = job, timing.Total()
		jobs = append(jobs, bj)
	}

	// Trap dependencies within the phase (Fig. 7a): a job dropping into a
	// trap must wait for the job that picks an atom up from that trap.
	// Advanced in-zone reuse is the only source of such pairs.
	for ai, a := range jobs {
		for bi, b := range jobs {
			if ai == bi {
				continue
			}
			for t := range a.targets {
				if b.sources[t] {
					a.deps = append(a.deps, bi)
					break
				}
			}
		}
	}

	// Longest-job-first onto the earliest-available AOD (§VI), respecting
	// trap dependencies: a job becomes eligible once its dependencies are
	// placed, and starts no earlier than their completion.
	avail := make([]float64, len(s.a.AODs))
	for i := range avail {
		avail[i] = s.clock
	}
	phaseEnd := s.clock
	var emitted []zair.RearrangeJob
	for placed := 0; placed < len(jobs); {
		pick := -1
		for i, bj := range jobs {
			if bj.placed {
				continue
			}
			ready := true
			for _, d := range bj.deps {
				if !jobs[d].placed {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if pick == -1 || bj.dur > jobs[pick].dur {
				pick = i
			}
		}
		if pick == -1 {
			return errCyclicJobs
		}
		bj := jobs[pick]
		best := 0
		for i := 1; i < len(avail); i++ {
			if avail[i] < avail[best] {
				best = i
			}
		}
		start := avail[best]
		for _, d := range bj.deps {
			if end := jobs[d].begin + jobs[d].dur; end > start {
				start = end
			}
		}
		bj.begin = start
		bj.job.AODID = s.a.AODs[best].ID
		bj.job.BeginTime = start
		bj.job.EndTime = start + bj.dur
		avail[best] = bj.job.EndTime
		if bj.job.EndTime > phaseEnd {
			phaseEnd = bj.job.EndTime
		}
		bj.placed = true
		placed++
		emitted = append(emitted, bj.job)
	}
	// Commit only after the whole phase scheduled (the caller may retry
	// with different groups on errCyclicJobs). Emit in begin-time order so
	// the instruction stream replays causally.
	sort.SliceStable(emitted, func(i, j int) bool { return emitted[i].BeginTime < emitted[j].BeginTime })
	for _, j := range emitted {
		s.prog.Instructions = append(s.prog.Instructions, j)
		s.jobs++
		dur := j.EndTime - j.BeginTime
		for _, q := range j.Qubits() {
			s.stats.AddBusy(q, dur)
			s.stats.Transfers += 2
		}
	}
	s.clock = phaseEnd
	return nil
}

type moveSpec struct {
	move     place.Move
	from, to geom.Point
}

// compatible reports whether two movements can share one AOD sweep: the
// relative order of their rows and columns must be preserved (AOD tones
// cannot cross), and coincident begin coordinates must stay coincident
// (they would share a tone).
func compatible(a, b moveSpec) bool {
	return axisCompatible(a.from.X, b.from.X, a.to.X, b.to.X) &&
		axisCompatible(a.from.Y, b.from.Y, a.to.Y, b.to.Y)
}

func axisCompatible(a0, b0, a1, b1 float64) bool {
	switch {
	case a0 < b0:
		return a1 < b1
	case a0 > b0:
		return a1 > b1
	default:
		return a1 == b1
	}
}

// groupCompatible partitions movement indices into groups of pairwise
// compatible movements using repeated maximal independent sets over the
// conflict graph (paper §VI, following Enola's O(n² log n) approach). On
// wide phases the O(n²) adjacency build fans the upper-triangle rows out to
// workers goroutines (row i computes its j > i conflicts independently) and
// mirrors them sequentially afterwards, reproducing the sequential
// construction's exact adjacency order — each adj[k] lists the neighbors
// below k ascending, then those above k ascending — so the independent-set
// partition (and therefore the program bytes) is unchanged at any worker
// count.
func groupCompatible(ctx context.Context, workers int, specs []moveSpec) ([][]int, error) {
	n := len(specs)
	adj := make([][]int, n)
	if workers > 1 && n >= minParallelMoves {
		ctx, span := telemetry.Start(ctx, "schedule.conflict_graph")
		span.SetInt("moves", n)
		span.SetInt("workers", workers)
		defer span.End()
		upper := make([][]int, n)
		if err := engine.ForEach(ctx, workers, n, func(i int) error {
			var row []int
			for j := i + 1; j < n; j++ {
				if !compatible(specs[i], specs[j]) {
					row = append(row, j)
				}
			}
			upper[i] = row
			return nil
		}); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for _, j := range upper[i] {
				adj[j] = append(adj[j], i)
			}
		}
		for i := 0; i < n; i++ {
			adj[i] = append(adj[i], upper[i]...)
		}
		return graphalgo.PartitionIntoIndependentSets(n, adj), nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !compatible(specs[i], specs[j]) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return graphalgo.PartitionIntoIndependentSets(n, adj), nil
}

// trapQLoc renders a storage trap as a ZAIR qloc.
func (s *scheduler) trapQLoc(q int, t arch.TrapRef) zair.QLoc {
	return zair.QLoc{Q: q, A: s.a.Storage[t.Zone].SLMs[t.SLM].ID, R: t.Row, C: t.Col}
}

// posQLoc renders any position as a ZAIR qloc.
func (s *scheduler) posQLoc(q int, p place.Pos) zair.QLoc {
	if p.InStorage {
		return s.trapQLoc(q, p.Trap)
	}
	z := s.a.Entanglement[p.Site.Zone]
	return zair.QLoc{Q: q, A: z.SLMs[p.Slot].ID, R: p.Site.Row, C: p.Site.Col}
}
