package arch

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"zac/internal/geom"
)

// topology is the precomputed dense-index view of an architecture: every
// storage trap and Rydberg site gets a small-integer ordinal, positions are
// tabulated once, and the nearest-row-first storage ordering used by initial
// placement is sorted a single time. The placement hot path indexes these
// tables instead of recomputing geometry (or hashing TrapRef/SiteRef map
// keys) on every call.
//
// Topologies are cached per *Architecture; an architecture must not be
// mutated after its first compilation (the same contract Fingerprint-keyed
// caching already relies on).
type topology struct {
	trapCount int
	trapBase  [][]int // [zone][slm] → ordinal of trap (0, 0)
	trapRefs  []TrapRef
	trapPos   []geom.Point

	siteCount int
	siteBase  []int // [zone] → ordinal of site (0, 0)
	siteRefs  []SiteRef
	sitePos   []geom.Point
	maxSlots  int

	// nearestFirst is the storage-trap ordering of TrivialInitial (§VII-D):
	// rows by distance to the first entanglement zone, then columns
	// ascending. Nil when the architecture has no entanglement zone.
	nearestFirst []TrapRef
	// trapNearSite[ord] is NearestSite(trapPos[ord]); nil without zones.
	trapNearSite []SiteRef
}

var (
	topoCache sync.Map // *Architecture → *topology
	topoCount atomic.Int32
)

// topoCacheLimit bounds the number of cached topologies. A long-running
// zac-serve decodes a fresh *Architecture per request, so an unbounded
// pointer-keyed cache would grow forever; past the limit the cache is reset
// wholesale — topologies are pure derivations of the architecture, so an
// evicted entry only costs recomputation, never a behavior change.
const topoCacheLimit = 64

func (a *Architecture) topo() *topology {
	if v, ok := topoCache.Load(a); ok {
		return v.(*topology)
	}
	t := buildTopology(a)
	if v, loaded := topoCache.LoadOrStore(a, t); loaded {
		return v.(*topology)
	}
	if topoCount.Add(1) > topoCacheLimit {
		topoCount.Store(1)
		topoCache.Range(func(k, _ any) bool {
			topoCache.Delete(k)
			return true
		})
		topoCache.Store(a, t)
	}
	return t
}

func buildTopology(a *Architecture) *topology {
	t := &topology{}

	t.trapBase = make([][]int, len(a.Storage))
	for zi, z := range a.Storage {
		t.trapBase[zi] = make([]int, len(z.SLMs))
		for si, s := range z.SLMs {
			t.trapBase[zi][si] = t.trapCount
			t.trapCount += s.Rows * s.Cols
		}
	}
	t.trapRefs = make([]TrapRef, 0, t.trapCount)
	t.trapPos = make([]geom.Point, 0, t.trapCount)
	for zi, z := range a.Storage {
		for si, s := range z.SLMs {
			for r := 0; r < s.Rows; r++ {
				for c := 0; c < s.Cols; c++ {
					ref := TrapRef{Zone: zi, SLM: si, Row: r, Col: c}
					t.trapRefs = append(t.trapRefs, ref)
					t.trapPos = append(t.trapPos, a.TrapPos(ref))
				}
			}
		}
	}

	t.siteBase = make([]int, len(a.Entanglement))
	for zi, z := range a.Entanglement {
		t.siteBase[zi] = t.siteCount
		t.siteCount += z.SiteRows() * z.SiteCols()
		if n := z.SiteSlots(); n > t.maxSlots {
			t.maxSlots = n
		}
	}
	t.siteRefs = make([]SiteRef, 0, t.siteCount)
	t.sitePos = make([]geom.Point, 0, t.siteCount)
	for zi, z := range a.Entanglement {
		for r := 0; r < z.SiteRows(); r++ {
			for c := 0; c < z.SiteCols(); c++ {
				ref := SiteRef{Zone: zi, Row: r, Col: c}
				t.siteRefs = append(t.siteRefs, ref)
				t.sitePos = append(t.sitePos, a.SitePos(ref))
			}
		}
	}

	if len(a.Entanglement) > 0 {
		entY := a.Entanglement[0].Offset.Y
		traps := append([]TrapRef(nil), t.trapRefs...)
		sort.Slice(traps, func(i, j int) bool {
			pi, pj := a.TrapPos(traps[i]), a.TrapPos(traps[j])
			di, dj := math.Abs(pi.Y-entY), math.Abs(pj.Y-entY)
			if di != dj {
				return di < dj
			}
			return pi.X < pj.X
		})
		t.nearestFirst = traps

		t.trapNearSite = make([]SiteRef, t.trapCount)
		for i, p := range t.trapPos {
			t.trapNearSite[i] = a.NearestSite(p)
		}
	}
	return t
}

// TrapCount returns the number of storage traps (the ordinal range).
func (a *Architecture) TrapCount() int { return a.topo().trapCount }

// TrapOrdinal maps a storage trap to its dense ordinal in [0, TrapCount).
func (a *Architecture) TrapOrdinal(t TrapRef) int {
	return a.topo().trapBase[t.Zone][t.SLM] + t.Row*a.Storage[t.Zone].SLMs[t.SLM].Cols + t.Col
}

// TrapAt is the inverse of TrapOrdinal.
func (a *Architecture) TrapAt(ord int) TrapRef { return a.topo().trapRefs[ord] }

// TrapPosAt returns the precomputed position of the trap with the given
// ordinal (identical bits to TrapPos of the same trap).
func (a *Architecture) TrapPosAt(ord int) geom.Point { return a.topo().trapPos[ord] }

// SiteCount returns the number of Rydberg sites (the site-ordinal range).
func (a *Architecture) SiteCount() int { return a.topo().siteCount }

// SiteOrdinal maps a Rydberg site to its dense ordinal in [0, SiteCount).
func (a *Architecture) SiteOrdinal(s SiteRef) int {
	return a.topo().siteBase[s.Zone] + s.Row*a.Entanglement[s.Zone].SiteCols() + s.Col
}

// SiteAt is the inverse of SiteOrdinal.
func (a *Architecture) SiteAt(ord int) SiteRef { return a.topo().siteRefs[ord] }

// SitePosAt returns the precomputed reference position of the site with the
// given ordinal (identical bits to SitePos of the same site).
func (a *Architecture) SitePosAt(ord int) geom.Point { return a.topo().sitePos[ord] }

// MaxSiteSlots returns the largest trap count of any Rydberg site (0 with no
// entanglement zones).
func (a *Architecture) MaxSiteSlots() int { return a.topo().maxSlots }

// StorageTrapsNearestFirst returns every storage trap ordered by row
// distance to the first entanglement zone, then column — the ordering of the
// paper's Vanilla initial placement. The slice is shared and must be treated
// as read-only. Requires at least one entanglement zone.
func (a *Architecture) StorageTrapsNearestFirst() []TrapRef {
	t := a.topo()
	if t.nearestFirst == nil {
		_ = a.Entanglement[0] // preserve the out-of-range panic of the unindexed path
	}
	return t.nearestFirst
}

// NearestSiteOfTrap returns the precomputed NearestSite of a storage trap's
// position, by trap ordinal. Requires at least one entanglement zone.
func (a *Architecture) NearestSiteOfTrap(ord int) SiteRef {
	t := a.topo()
	if t.trapNearSite == nil {
		_ = a.Entanglement[0]
	}
	return t.trapNearSite[ord]
}
