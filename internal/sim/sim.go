// Package sim is a small dense statevector simulator used to verify that the
// resynthesis pass preserves circuit semantics: it executes circuits of up to
// ~14 qubits exactly and compares final states up to global phase. It is a
// test substrate, not a performance simulator.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"zac/internal/circuit"
	"zac/internal/linalg"
)

// State is a dense statevector over n qubits; amplitude index bit q (LSB =
// qubit 0) gives the computational-basis value of qubit q.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// Apply1Q applies a 2×2 unitary to qubit q.
func (s *State) Apply1Q(m linalg.Mat2, q int) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.Amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = m.A*a0 + m.B*a1
		s.Amp[j] = m.C*a0 + m.D*a1
	}
}

// ApplyCZ applies a controlled-Z between qubits a and b.
func (s *State) ApplyCZ(a, b int) {
	mask := (1 << uint(a)) | (1 << uint(b))
	for i := range s.Amp {
		if i&mask == mask {
			s.Amp[i] = -s.Amp[i]
		}
	}
}

// ApplyControlled1Q applies m to target t when all controls are 1.
func (s *State) ApplyControlled1Q(m linalg.Mat2, controls []int, t int) {
	cmask := 0
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	bit := 1 << uint(t)
	for i := 0; i < len(s.Amp); i++ {
		if i&bit != 0 || i&cmask != cmask {
			continue
		}
		j := i | bit
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = m.A*a0 + m.B*a1
		s.Amp[j] = m.C*a0 + m.D*a1
	}
}

// ApplySwap exchanges qubits a and b.
func (s *State) ApplySwap(a, b int) {
	ba, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.Amp {
		if i&ba != 0 && i&bb == 0 {
			j := (i &^ ba) | bb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// matrix1Q maps 1Q kinds to matrices (mirrors resynth but kept separate so
// the two implementations check each other).
func matrix1Q(g circuit.Gate) (linalg.Mat2, bool) {
	switch g.Kind {
	case circuit.U3:
		return linalg.U3(g.Params[0], g.Params[1], g.Params[2]), true
	case circuit.H:
		return linalg.H(), true
	case circuit.X:
		return linalg.X(), true
	case circuit.Y:
		return linalg.Y(), true
	case circuit.Z:
		return linalg.Z(), true
	case circuit.S:
		return linalg.S(), true
	case circuit.Sdg:
		return linalg.Sdg(), true
	case circuit.T:
		return linalg.T(), true
	case circuit.Tdg:
		return linalg.Tdg(), true
	case circuit.RX:
		return linalg.RX(g.Params[0]), true
	case circuit.RY:
		return linalg.RY(g.Params[0]), true
	case circuit.RZ:
		return linalg.RZ(g.Params[0]), true
	case circuit.U1:
		return linalg.Phase(g.Params[0]), true
	case circuit.U2:
		return linalg.U3(math.Pi/2, g.Params[0], g.Params[1]), true
	case circuit.ID:
		return linalg.Identity(), true
	}
	return linalg.Mat2{}, false
}

// Run executes every unitary gate in c on a fresh |0...0⟩ state and returns
// the final statevector. Measure/Barrier are skipped.
func Run(c *circuit.Circuit) (*State, error) {
	s := NewState(c.NumQubits)
	for i, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return nil, fmt.Errorf("sim: gate %d: %w", i, err)
		}
	}
	return s, nil
}

// ApplyGate executes one gate of any supported kind.
func (s *State) ApplyGate(g circuit.Gate) error {
	if m, ok := matrix1Q(g); ok {
		s.Apply1Q(m, g.Qubits[0])
		return nil
	}
	q := g.Qubits
	switch g.Kind {
	case circuit.CZ:
		s.ApplyCZ(q[0], q[1])
	case circuit.CX:
		s.ApplyControlled1Q(linalg.X(), q[:1], q[1])
	case circuit.CY:
		s.ApplyControlled1Q(linalg.Y(), q[:1], q[1])
	case circuit.SWAP:
		s.ApplySwap(q[0], q[1])
	case circuit.CP:
		s.ApplyControlled1Q(linalg.Phase(g.Params[0]), q[:1], q[1])
	case circuit.CRX:
		s.ApplyControlled1Q(linalg.RX(g.Params[0]), q[:1], q[1])
	case circuit.CRY:
		s.ApplyControlled1Q(linalg.RY(g.Params[0]), q[:1], q[1])
	case circuit.CRZ:
		s.ApplyControlled1Q(linalg.RZ(g.Params[0]), q[:1], q[1])
	case circuit.RZZ:
		// exp(-iθ/2 Z⊗Z): phase e^{-iθ/2} on even parity, e^{+iθ/2} on odd.
		th := g.Params[0]
		even, odd := cmplx.Exp(complex(0, -th/2)), cmplx.Exp(complex(0, th/2))
		ma, mb := 1<<uint(q[0]), 1<<uint(q[1])
		for i := range s.Amp {
			p1 := i&ma != 0
			p2 := i&mb != 0
			if p1 == p2 {
				s.Amp[i] *= even
			} else {
				s.Amp[i] *= odd
			}
		}
	case circuit.RXX:
		// Conjugate RZZ by H⊗H.
		s.Apply1Q(linalg.H(), q[0])
		s.Apply1Q(linalg.H(), q[1])
		if err := s.ApplyGate(circuit.NewGate(circuit.RZZ, q, g.Params[0])); err != nil {
			return err
		}
		s.Apply1Q(linalg.H(), q[0])
		s.Apply1Q(linalg.H(), q[1])
	case circuit.CCX:
		s.ApplyControlled1Q(linalg.X(), q[:2], q[2])
	case circuit.CCZ:
		s.ApplyControlled1Q(linalg.Z(), q[:2], q[2])
	case circuit.CSWAP:
		// controlled swap via three controlled-X
		s.ApplyControlled1Q(linalg.X(), []int{q[2]}, q[1])
		s.ApplyControlled1Q(linalg.X(), []int{q[0], q[1]}, q[2])
		s.ApplyControlled1Q(linalg.X(), []int{q[2]}, q[1])
	case circuit.Measure, circuit.Barrier:
		// skipped
	default:
		return fmt.Errorf("unsupported kind %v", g.Kind)
	}
	return nil
}

// FidelityUpToPhase returns |⟨a|b⟩| — 1.0 means the states are equal up to a
// global phase.
func FidelityUpToPhase(a, b *State) float64 {
	if a.N != b.N {
		return 0
	}
	var dot complex128
	for i := range a.Amp {
		dot += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	return cmplx.Abs(dot)
}

// Norm returns the 2-norm of the state (should always be 1).
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.Amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}
