#!/bin/sh
# Smoke test for the telemetry subsystem: boot zac-serve with tracing, JSON
# logs, and a shutdown trace export; run one cold compile; assert the
# response's trace is listed, contains every pipeline pass and the cache-tier
# spans, and exports as valid Chrome trace_event JSON; then SIGTERM and
# require the -traceout file.
set -eu

ADDR="${ADDR:-127.0.0.1:8757}"
WORK="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/zac-serve" ./cmd/zac-serve
"$WORK/zac-serve" -addr "$ADDR" -cachedir "$WORK/cache" -logjson \
    -traceout "$WORK/traces.json" >"$WORK/serve.log" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "zac-serve never became healthy" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi

# One cold compile; the response echoes its trace id (body and header).
curl -fsS -D "$WORK/headers.txt" -X POST "http://$ADDR/v1/compile?zair=0" \
    -d '{"circuit":"bv_n14"}' >"$WORK/first.json"
TRACE_ID="$(sed -n 's/.*"trace_id": "\([0-9a-f]*\)".*/\1/p' "$WORK/first.json" | head -1)"
if [ -z "$TRACE_ID" ]; then
    echo "compile response carries no trace_id" >&2
    cat "$WORK/first.json" >&2
    exit 1
fi
grep -qi "X-Trace-Id: $TRACE_ID" "$WORK/headers.txt"

# The trace is listed and its span tree tells the whole request story:
# admission, both cache tiers, and all five pipeline passes.
curl -fsS "http://$ADDR/v1/traces" | grep -q "\"$TRACE_ID\""
curl -fsS "http://$ADDR/v1/traces/$TRACE_ID" >"$WORK/trace.json"
for span in serve.compile admission cache.lookup cache.mem cache.disk \
    pass.validate pass.place pass.schedule pass.emit pass.fidelity; do
    if ! grep -q "\"$span\"" "$WORK/trace.json"; then
        echo "trace $TRACE_ID missing span $span" >&2
        cat "$WORK/trace.json" >&2
        exit 1
    fi
done

# The Chrome trace_event export is valid JSON with a traceEvents array.
curl -fsS "http://$ADDR/v1/traces/$TRACE_ID?format=chrome" >"$WORK/chrome.json"
python3 -m json.tool "$WORK/chrome.json" >/dev/null
grep -q '"traceEvents"' "$WORK/chrome.json"

# Prometheus negotiation on /metrics, and one structured JSON log line per
# compile carrying the trace id.
curl -fsS "http://$ADDR/metrics?format=prom" | grep -q '# TYPE zac_requests_total counter'
grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORK/serve.log"

# Graceful shutdown writes the retained traces to -traceout.
kill -TERM "$PID"
for _ in $(seq 1 50); do
    if ! kill -0 "$PID" 2>/dev/null; then break; fi
    sleep 0.2
done
python3 -m json.tool "$WORK/traces.json" >/dev/null
grep -q "\"$TRACE_ID\"" "$WORK/traces.json"

echo "telemetry-smoke: OK"
