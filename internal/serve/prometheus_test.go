package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// promFixture is a fully populated metrics snapshot: every family, both
// caches, a disk breaker state, jobs in two statuses, and per-compiler and
// per-pass latency — so the golden exercises each exposition branch.
func promFixture() MetricsResponse {
	return MetricsResponse{
		RequestsTotal:    120,
		CompilesTotal:    42,
		InFlightCompiles: 3,
		Cache: CacheMetrics{
			MemHits: 30, DiskHits: 5, Misses: 7, HitRate: 0.8333333333333334,
			MemEntries: 7, DiskEntries: 12, DiskBytes: 65536,
			DiskRetries: 2, DiskFailures: 1, BreakerOpens: 1, BreakerSkips: 4,
			BreakerState: "half-open",
		},
		PassCache: CacheMetrics{
			MemHits: 9, Misses: 6, HitRate: 0.6, MemEntries: 6,
		},
		Admission: AdmissionMetrics{
			QueueDepth: 2, QueueLimit: 64, Shed: 11, DeadlineExceeded: 1, Draining: true,
		},
		Jobs:         map[JobStatus]int{JobRunning: 1, JobDone: 4},
		JobsReplayed: 2,
		Compilers: map[string]LatencyMetrics{
			"zac":   {Count: 5, TotalMS: 1234.5, AvgMS: 246.9, MaxMS: 400.25},
			"enola": {Count: 1, TotalMS: 9.5, AvgMS: 9.5, MaxMS: 9.5},
		},
		Passes: map[string]LatencyMetrics{
			"zac/place":    {Count: 5, TotalMS: 1000, AvgMS: 200, MaxMS: 350},
			"zac/schedule": {Count: 5, TotalMS: 200.5, AvgMS: 40.1, MaxMS: 80},
		},
	}
}

// TestPrometheusGolden pins the text exposition byte-for-byte: family order,
// HELP/TYPE headers, label ordering, and %g value rendering.
func TestPrometheusGolden(t *testing.T) {
	checkGolden(t, "metrics_prom", PrometheusText(promFixture()))
}

// TestPrometheusNegotiation pins content negotiation on /metrics: JSON by
// default, the 0.0.4 text format via ?format=prom or a scraper-style Accept
// header.
func TestPrometheusNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("?format=prom Content-Type = %q, want %q", ct, PrometheusContentType)
	}

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("Accept-negotiated Content-Type = %q, want %q", ct, PrometheusContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# HELP zac_requests_total", "# TYPE zac_requests_total counter",
		"zac_cache_hits_total{cache=\"compile\",tier=\"mem\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
