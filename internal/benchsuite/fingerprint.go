package benchsuite

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strings"
	"sync"
)

// Fingerprint identifies the machine and toolchain a benchmark record was
// measured on. Records from different fingerprints describe different
// hardware and are never compared by the regression gate — a number
// measured on a laptop says nothing about a CI runner.
type Fingerprint struct {
	// CPUModel is the CPU model string from /proc/cpuinfo ("model name"),
	// falling back to the GOARCH name on platforms without it.
	CPUModel string `json:"cpu_model"`
	// Cores is runtime.NumCPU at capture time.
	Cores int `json:"cores"`
	// GOOS and GOARCH pin the platform the binary ran on.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GoVersion is the toolchain that built the suite (runtime.Version).
	GoVersion string `json:"go_version"`
}

// ID returns the short stable digest of the fingerprint used as the store
// shard key, in the same 16-hex-digit format as arch.Fingerprint.
func (f Fingerprint) ID() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|%s|%s", f.CPUModel, f.Cores, f.GOOS, f.GOARCH, f.GoVersion)
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the fingerprint for report headers.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s · %d cores · %s/%s · %s", f.CPUModel, f.Cores, f.GOOS, f.GOARCH, f.GoVersion)
}

var (
	machineOnce sync.Once
	machineFP   Fingerprint
)

// Machine returns the current machine's fingerprint. The capture is
// performed once per process and cached, so every record stamped during one
// run carries an identical fingerprint by construction.
func Machine() Fingerprint {
	machineOnce.Do(func() { machineFP = capture() })
	return machineFP
}

// capture reads the fingerprint from the live system. Exposed to tests via
// Machine only; two captures in one process are identical because every
// input (cpuinfo content, NumCPU, toolchain) is stable for a process
// lifetime.
func capture() Fingerprint {
	return Fingerprint{
		CPUModel:  cpuModel(),
		Cores:     runtime.NumCPU(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo,
// falling back to GOARCH where the file is absent (non-Linux) or holds no
// model line (some arm64 kernels).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			if model := strings.TrimSpace(val); model != "" {
				return model
			}
		}
	}
	return runtime.GOARCH
}
