// Package enola reimplements the mechanism of Enola [Tan, Lin & Cong 2024],
// the state-of-the-art compiler for the monolithic neutral-atom architecture
// the paper compares against (§VII-A): entangling gates are scheduled into a
// near-optimal number of Rydberg stages with edge coloring, and qubit
// movements between stages are grouped into parallel rounds with maximal
// independent sets. Because the architecture is monolithic, every Rydberg
// exposure illuminates all qubits: idle qubits accumulate the excitation
// error that dominates Fig. 1c.
package enola

import (
	"fmt"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/fidelity"
	"zac/internal/geom"
	"zac/internal/graphalgo"
)

// Result is the evaluation of a circuit compiled for the monolithic
// architecture.
type Result struct {
	Stats            fidelity.Stats
	Breakdown        fidelity.Breakdown
	NumRydbergStages int
	NumMoveRounds    int
	Duration         float64
}

// Compile compiles a preprocessed staged circuit onto the monolithic
// architecture a (built by arch.Monolithic, 10×10 Rydberg sites).
func Compile(staged *circuit.Staged, a *arch.Architecture) (*Result, error) {
	if len(a.Entanglement) == 0 {
		return nil, fmt.Errorf("enola: architecture has no entanglement zone")
	}
	zone := a.Entanglement[0]
	rows, cols := zone.SiteRows(), zone.SiteCols()
	if staged.NumQubits > rows*cols {
		return nil, fmt.Errorf("enola: %d qubits exceed %d sites", staged.NumQubits, rows*cols)
	}

	// Home sites: qubits fill the site grid row-major; the second site slot
	// hosts visiting partners during gates.
	home := make([]arch.SiteRef, staged.NumQubits)
	for q := range home {
		home[q] = arch.SiteRef{Zone: 0, Row: q / cols, Col: q % cols}
	}
	pos := func(q int) geom.Point { return a.SitePos(home[q]) }

	var st fidelity.Stats
	st.Busy = make([]float64, staged.NumQubits)
	clock := 0.0
	res := &Result{}

	for _, stage := range recolorStages(staged) {
		switch stage.Kind {
		case circuit.OneQStage:
			for _, g := range stage.Gates {
				st.OneQGates++
				st.Busy[g.Qubits[0]] += a.Times.OneQGate
				clock += a.Times.OneQGate
			}
		case circuit.RydbergStage:
			res.NumRydbergStages++
			// One qubit of each pair (the higher-index one) travels to its
			// partner's site and back after the exposure; movements are
			// grouped into compatible rounds via MIS.
			var moves []movement
			for _, g := range stage.Gates {
				q1, q2 := g.Qubits[0], g.Qubits[1]
				moves = append(moves, movement{from: pos(q2), to: a.SiteTrapPos(home[q1], 1), q: q2})
			}
			rounds := groupRounds(moves)
			res.NumMoveRounds += 2 * len(rounds) // out and back
			for _, round := range rounds {
				maxD := 0.0
				for _, i := range round {
					if d := moves[i].from.Dist(moves[i].to); d > maxD {
						maxD = d
					}
				}
				dur := 2*a.Times.AtomTransfer + a.MoveTime(maxD)
				for _, i := range round {
					st.Busy[moves[i].q] += 2 * dur // out and back
					st.Transfers += 4              // pickup+drop, twice
				}
				clock += 2 * dur
			}
			// Global Rydberg exposure: every idle qubit is excited.
			st.TwoQGates += len(stage.Gates)
			st.Excited += staged.NumQubits - 2*len(stage.Gates)
			for _, g := range stage.Gates {
				for _, q := range g.Qubits {
					st.Busy[q] += a.Times.Rydberg
				}
			}
			clock += a.Times.Rydberg
		}
	}
	st.Duration = clock
	res.Stats = st
	res.Duration = clock
	res.Breakdown = fidelity.Compute(paramsFrom(a), st)
	return res, nil
}

func paramsFrom(a *arch.Architecture) fidelity.Params {
	return fidelity.Params{
		F1: a.Fidelities.SingleQubit, F2: a.Fidelities.TwoQubit,
		FExc: a.Fidelities.Excitation, FTran: a.Fidelities.AtomTransfer,
		T1Q: a.Times.OneQGate, T2Q: a.Times.Rydberg, TTran: a.Times.AtomTransfer,
		T2: a.T2,
	}
}

// recolorStages applies Enola's edge-coloring scheduling: consecutive
// Rydberg stages with no intervening 1Q stage hold mutually commuting CZ
// gates, so their union can be recolored with Misra–Gries into Δ+1 stages,
// which never exceeds (and often beats) the ASAP layering.
func recolorStages(staged *circuit.Staged) []circuit.Stage {
	var out []circuit.Stage
	var pending []circuit.Gate
	flush := func() {
		if len(pending) == 0 {
			return
		}
		out = append(out, colorIntoStages(staged.NumQubits, pending)...)
		pending = nil
	}
	for _, st := range staged.Stages {
		if st.Kind == circuit.RydbergStage {
			pending = append(pending, st.Gates...)
			continue
		}
		flush()
		out = append(out, st)
	}
	flush()
	return out
}

func colorIntoStages(numQubits int, gates []circuit.Gate) []circuit.Stage {
	edges := make([]graphalgo.Edge, len(gates))
	for i, g := range gates {
		edges[i] = graphalgo.Edge{U: g.Qubits[0], V: g.Qubits[1]}
	}
	colors := graphalgo.MisraGries(numQubits, edges)
	n := graphalgo.NumColors(colors)
	stages := make([]circuit.Stage, n)
	for i := range stages {
		stages[i].Kind = circuit.RydbergStage
	}
	for i, c := range colors {
		stages[c].Gates = append(stages[c].Gates, gates[i])
	}
	// Drop empty stages (possible if coloring skipped a color index).
	var out []circuit.Stage
	for _, s := range stages {
		if len(s.Gates) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// movement is one qubit's travel to a partner site.
type movement struct {
	from, to geom.Point
	q        int
}

// groupRounds partitions movements into AOD-compatible rounds (order
// preservation in both axes) using repeated MIS, as Enola does.
func groupRounds(moves []movement) [][]int {
	n := len(moves)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !movesCompatible(moves[i].from, moves[i].to, moves[j].from, moves[j].to) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return graphalgo.PartitionIntoIndependentSets(n, adj)
}

func movesCompatible(a0, a1, b0, b1 geom.Point) bool {
	ok := func(x0, y0, x1, y1 float64) bool {
		switch {
		case x0 < y0:
			return x1 < y1
		case x0 > y0:
			return x1 > y1
		default:
			return x1 == y1
		}
	}
	return ok(a0.X, b0.X, a1.X, b1.X) && ok(a0.Y, b0.Y, a1.Y, b1.Y)
}
