package place

import (
	"fmt"
	"math"
	"math/rand"

	"zac/internal/anneal"
	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
)

// TrivialInitial places qubits sequentially by index starting from the first
// storage trap in the row nearest to the (first) entanglement zone — the
// paper's 'Vanilla' initial placement (§VII-D). The nearest-row-first
// ordering is precomputed once per architecture (arch topology tables).
func TrivialInitial(a *arch.Architecture, numQubits int) ([]arch.TrapRef, error) {
	if numQubits > a.TotalStorageTraps() {
		return nil, fmt.Errorf("place: %d qubits exceed %d storage traps", numQubits, a.TotalStorageTraps())
	}
	traps := a.StorageTrapsNearestFirst()
	out := make([]arch.TrapRef, numQubits)
	copy(out, traps[:numQubits])
	return out, nil
}

// gateForCost is a precomputed 2Q-gate record for the SA objective.
type gateForCost struct {
	q1, q2 int
	weight float64 // w_g = max(0.1, 1 − 0.1(t−1)), t = Rydberg stage (1-based)
}

// collectWeightedGates extracts every CZ with its stage-decay weight (Eq. 2).
func collectWeightedGates(s *circuit.Staged) []gateForCost {
	var gates []gateForCost
	stage := 0
	for _, st := range s.Stages {
		if st.Kind != circuit.RydbergStage {
			continue
		}
		stage++
		w := math.Max(0.1, 1-0.1*float64(stage-1))
		for _, g := range st.Gates {
			gates = append(gates, gateForCost{q1: g.Qubits[0], q2: g.Qubits[1], weight: w})
		}
	}
	return gates
}

// saState is the annealing state: an injective map qubit → storage trap.
// The Eq. 2 objective is evaluated incrementally: per-gate contributions are
// cached in costs and a proposal re-evaluates only the gates adjacent to the
// moved qubit(s) (via the gatesOf index); the total is then re-summed over
// the cache in gate order, so it stays bit-identical to a full Cost()
// recomputation and annealing trajectories match the non-incremental engine.
type saState struct {
	a      *arch.Architecture
	gates  []gateForCost
	trapOf []arch.TrapRef
	pts    []geom.Point   // cached physical positions per qubit
	near   []arch.SiteRef // cached NearestSite per qubit (trap-ordinal table)
	// free traps for jump moves
	free    []arch.TrapRef
	occ     []int     // trap ordinal → qubit (-1 = empty)
	gatesOf [][]int32 // qubit → indices into gates
	costs   []float64 // cached weighted contribution per gate
}

// placeQubit moves q to trap ordinal ord, updating every per-qubit cache.
func (s *saState) placeQubit(q, ord int, t arch.TrapRef) {
	s.trapOf[q] = t
	s.occ[ord] = q
	s.pts[q] = s.a.TrapPosAt(ord)
	s.near[q] = s.a.NearestSiteOfTrap(ord)
}

// gateCostAt recomputes the cached contribution of one gate.
func (s *saState) gateCostAt(gi int32) float64 {
	g := s.gates[gi]
	p1, p2 := s.pts[g.q1], s.pts[g.q2]
	site := s.a.SitePos(nearSiteFromNearest(s.a, s.near[g.q1], s.near[g.q2], p1, p2))
	return g.weight * gateCost2(s.a, site, p1, p2)
}

// refreshGates re-evaluates the gates adjacent to q (and q2 if ≥ 0),
// skipping the shared gates already refreshed through q.
func (s *saState) refreshGates(q, q2 int) {
	for _, gi := range s.gatesOf[q] {
		s.costs[gi] = s.gateCostAt(gi)
	}
	if q2 < 0 {
		return
	}
	for _, gi := range s.gatesOf[q2] {
		g := s.gates[gi]
		if g.q1 == q || g.q2 == q {
			continue
		}
		s.costs[gi] = s.gateCostAt(gi)
	}
}

// sum totals the cached contributions in gate order — the exact accumulation
// order of the pre-optimization full recomputation.
func (s *saState) sum() float64 {
	total := 0.0
	for _, c := range s.costs {
		total += c
	}
	return total
}

func (s *saState) Cost() float64 {
	for i := range s.gates {
		s.costs[i] = s.gateCostAt(int32(i))
	}
	return s.sum()
}

func (s *saState) Propose(r *rand.Rand) func() {
	_, undo := s.ProposeDelta(r)
	return undo
}

// ProposeDelta implements anneal.DeltaProblem: it performs the same move
// distribution (and RNG draws) as the original Propose, then re-evaluates
// only the touched gates.
func (s *saState) ProposeDelta(r *rand.Rand) (float64, func()) {
	n := len(s.trapOf)
	q := r.Intn(n)
	if len(s.free) > 0 && r.Float64() < 0.5 {
		// Jump to a random empty trap.
		fi := r.Intn(len(s.free))
		newTrap := s.free[fi]
		oldTrap := s.trapOf[q]
		oldOrd, newOrd := s.a.TrapOrdinal(oldTrap), s.a.TrapOrdinal(newTrap)
		s.free[fi] = oldTrap
		s.occ[oldOrd] = -1
		s.placeQubit(q, newOrd, newTrap)
		s.refreshGates(q, -1)
		return s.sum(), func() {
			s.free[fi] = newTrap
			s.occ[newOrd] = -1
			s.placeQubit(q, oldOrd, oldTrap)
			s.refreshGates(q, -1)
		}
	}
	if n == 1 {
		// A lone qubit with no free trap has no neighbor state; the old
		// degenerate self-swap burned an RNG draw on a guaranteed no-op.
		return s.sum(), func() {}
	}
	// Swap two qubits' traps.
	q2 := r.Intn(n)
	for q2 == q {
		q2 = r.Intn(n)
	}
	swap := func() {
		s.trapOf[q], s.trapOf[q2] = s.trapOf[q2], s.trapOf[q]
		o1, o2 := s.a.TrapOrdinal(s.trapOf[q]), s.a.TrapOrdinal(s.trapOf[q2])
		s.placeQubit(q, o1, s.trapOf[q])
		s.placeQubit(q2, o2, s.trapOf[q2])
		s.refreshGates(q, q2)
	}
	swap()
	return s.sum(), swap
}

// SAInitial refines the trivial initial placement with simulated annealing
// over Eq. 2 (paper §V-A; 1000-iteration limit by default). The candidate
// trap pool is restricted to a neighborhood of the trivial placement large
// enough to cover every qubit plus slack, keeping the search local — in the
// reference architecture qubits occupy the storage rows nearest to the
// entanglement zone.
func SAInitial(a *arch.Architecture, staged *circuit.Staged, iterations int, r *rand.Rand) ([]arch.TrapRef, error) {
	traps, _, err := SAInitialWithCost(a, staged, iterations, r)
	return traps, err
}

// SAInitialWithCost is SAInitial plus the annealed best cost, so concurrent
// restart chains (Options.SARestarts) can be compared by (cost, restart
// index) without recomputing the Eq. 2 objective. The degenerate cases (no
// 2Q gates, or a non-positive iteration budget) report cost 0.
func SAInitialWithCost(a *arch.Architecture, staged *circuit.Staged, iterations int, r *rand.Rand) ([]arch.TrapRef, float64, error) {
	base, err := TrivialInitial(a, staged.NumQubits)
	if err != nil {
		return nil, 0, err
	}
	gates := collectWeightedGates(staged)
	if len(gates) == 0 || iterations <= 0 {
		return base, 0, nil
	}

	// Candidate pool: the traps of the trivial placement plus the next rows
	// of slack (2× the qubit count), in the same nearest-row-first order.
	all := a.StorageTrapsNearestFirst()
	poolSize := staged.NumQubits * 2
	if poolSize > len(all) {
		poolSize = len(all)
	}
	pool := all[:poolSize]

	st := &saState{
		a:      a,
		gates:  gates,
		trapOf: append([]arch.TrapRef(nil), base...),
		pts:    make([]geom.Point, staged.NumQubits),
		near:   make([]arch.SiteRef, staged.NumQubits),
		occ:    make([]int, a.TrapCount()),
		costs:  make([]float64, len(gates)),
	}
	for i := range st.occ {
		st.occ[i] = -1
	}
	for q, t := range st.trapOf {
		st.placeQubit(q, a.TrapOrdinal(t), t)
	}
	for _, t := range pool {
		if st.occ[a.TrapOrdinal(t)] < 0 {
			st.free = append(st.free, t)
		}
	}
	st.gatesOf = make([][]int32, staged.NumQubits)
	for gi, g := range gates {
		st.gatesOf[g.q1] = append(st.gatesOf[g.q1], int32(gi))
		if g.q2 != g.q1 {
			st.gatesOf[g.q2] = append(st.gatesOf[g.q2], int32(gi))
		}
	}
	res := anneal.Run(st, anneal.Options{Iterations: iterations}, r)
	return st.trapOf, res.BestCost, nil
}
