package serve

import (
	"net/http"

	"zac/internal/engine"
)

// handleMetrics serves GET /metrics: a machine-readable service snapshot —
// JSON by default, or the Prometheus text exposition format when negotiated
// via ?format=prom or an Accept header naming text/plain.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(PrometheusText(s.Metrics()))
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// cacheMetrics projects tiered-cache counters onto the API shape.
func cacheMetrics(st engine.TieredStats) CacheMetrics {
	return CacheMetrics{
		MemHits:      st.MemHits,
		DiskHits:     st.DiskHits,
		Misses:       st.Misses,
		HitRate:      st.HitRate(),
		MemEntries:   st.MemEntries,
		DiskEntries:  st.Disk.Entries,
		DiskBytes:    st.Disk.Bytes,
		DiskRetries:  st.Disk.Retries,
		DiskFailures: st.Disk.IOFailures,
		BreakerOpens: st.Disk.BreakerOpens,
		BreakerSkips: st.Disk.BreakerSkips,
		BreakerState: st.Disk.BreakerState,
	}
}

// Metrics assembles the current MetricsResponse.
func (s *Server) Metrics() MetricsResponse {
	m := MetricsResponse{
		RequestsTotal:    s.requests.Load(),
		CompilesTotal:    s.compiles.Load(),
		InFlightCompiles: s.inflight.Load(),
		Cache:            cacheMetrics(s.cache.Stats()),
		PassCache:        cacheMetrics(s.artifacts.Stats()),
		Admission: AdmissionMetrics{
			QueueDepth:       s.waiting.Load(),
			QueueLimit:       s.opts.QueueDepth,
			Shed:             s.shed.Load(),
			DeadlineExceeded: s.deadlines.Load(),
			Draining:         s.draining.Load(),
		},
		Jobs:         map[JobStatus]int{},
		JobsReplayed: s.jobsReplayed.Load(),
		Compilers:    map[string]LatencyMetrics{},
		Passes:       map[string]LatencyMetrics{},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		m.Jobs[j.status]++
		j.mu.Unlock()
	}
	for key, agg := range s.latency {
		m.Compilers[key] = agg.metrics()
	}
	for key, agg := range s.passes {
		m.Passes[key] = agg.metrics()
	}
	return m
}

// metrics renders one aggregate as the API shape.
func (a *latencyAgg) metrics() LatencyMetrics {
	lm := LatencyMetrics{Count: a.count, TotalMS: a.totalMS, MaxMS: a.maxMS}
	if a.count > 0 {
		lm.AvgMS = a.totalMS / float64(a.count)
	}
	return lm
}
