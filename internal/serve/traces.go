package serve

import (
	"fmt"
	"net/http"

	"zac/internal/telemetry"
)

// TracesResponse is the body of GET /v1/traces: the recorder's retained
// traces, most recent first.
type TracesResponse struct {
	// Enabled reports whether the server runs with a trace recorder; when
	// false the listing is always empty.
	Enabled bool `json:"enabled"`
	// Traces summarizes the retained traces, most recent first.
	Traces []telemetry.TraceSummary `json:"traces"`
}

// handleTraces serves GET /v1/traces: recent trace summaries, or — with
// ?id=<trace> — one trace's full span tree (the same view as
// GET /v1/traces/{id}).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		s.writeTrace(w, r, id)
		return
	}
	resp := TracesResponse{Enabled: s.telemetry != nil, Traces: s.telemetry.Traces()}
	if resp.Traces == nil {
		resp.Traces = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves GET /v1/traces/{id}: one trace's span tree as JSON, or
// as Chrome trace_event JSON (loadable in Perfetto and chrome://tracing)
// with ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.writeTrace(w, r, r.PathValue("id"))
}

// writeTrace renders one retained trace in the negotiated format.
func (s *Server) writeTrace(w http.ResponseWriter, r *http.Request, id string) {
	td, ok := s.telemetry.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", id))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		data, err := telemetry.ChromeTrace([]telemetry.TraceData{td})
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding chrome trace: %w", err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(append(data, '\n'))
		return
	}
	writeJSON(w, http.StatusOK, td)
}
