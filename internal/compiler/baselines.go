package compiler

import (
	"context"
	"time"

	"zac/internal/arch"
	"zac/internal/baseline/atomique"
	"zac/internal/baseline/enola"
	"zac/internal/baseline/nalac"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/sc"
	"zac/internal/zair"
)

// baselineCompiler adapts an analytic evaluation-model compiler (the
// neutral-atom baselines and the superconducting routers) to the unified
// interface. These compilers evaluate a circuit's fidelity and duration
// without emitting a ZAIR instruction stream, so the returned Result
// carries a header-only Program (name and qubit count, no instructions);
// its Stats, Breakdown, and Duration are fully populated.
type baselineCompiler struct {
	name        string
	defaultArch func() *arch.Architecture
	splitStages bool
	run         func(staged *circuit.Staged, a *arch.Architecture) (*core.Result, error)
}

// Name returns the canonical registry name.
func (b *baselineCompiler) Name() string { return b.name }

// DefaultArch returns the architecture the baseline targets when the caller
// supplies none (the paper's evaluation setup for that baseline).
func (b *baselineCompiler) DefaultArch() *arch.Architecture { return b.defaultArch() }

// SplitStages reports whether the baseline's staged input should be split
// to Rydberg-site capacity.
func (b *baselineCompiler) SplitStages() bool { return b.splitStages }

// Compile validates the inputs, runs the evaluation model, and assembles a
// core.Result with a "validate" and a "compile" pass timing. The analytic
// models run in one shot, so the context is only checked between the two
// passes. Validation covers the architecture too — the same contract as
// the zac pipeline's validate pass; the models index into zone tables and
// would panic on a malformed user-supplied architecture.
func (b *baselineCompiler) Compile(ctx context.Context, staged *circuit.Staged, a *arch.Architecture, opts Options) (*core.Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := staged.Validate(); err != nil {
		return nil, err
	}
	validated := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := b.run(staged, a)
	if err != nil {
		return nil, err
	}
	res.Staged = staged
	res.CompileTime = time.Since(start)
	if res.Program == nil {
		res.Program = &zair.Program{Name: staged.Name, NumQubits: staged.NumQubits}
	}
	res.Passes = []core.PassTiming{
		{Pass: "validate", Duration: validated.Sub(start)},
		{Pass: "compile", Duration: time.Since(validated)},
	}
	return res, nil
}

// The canonical registry: the full ZAC configuration plus its three
// ablation presets, the three neutral-atom baselines, and the two
// superconducting platforms. Aliases cover the paper's Fig. 11 legend
// spellings, so `-compiler SA+dynPlace+reuse` resolves too.
func init() {
	for _, z := range []struct{ name, setting string }{
		{"zac", core.SettingSADynPlaceReuse},
		{"zac-vanilla", core.SettingVanilla},
		{"zac-dynplace", core.SettingDynPlace},
		{"zac-dynplace-reuse", core.SettingDynPlaceReuse},
		// The paper's §X advanced-reuse path, promoted from an experiment-only
		// Options override to a first-class compiler so it gets the same
		// conformance and fuzz scrutiny as everything else.
		{"zac-advreuse", core.SettingAdvReuse},
	} {
		Register(&zacCompiler{name: z.name, setting: z.setting})
		RegisterAlias(z.setting, z.name)
	}

	Register(&baselineCompiler{
		name:        "enola",
		defaultArch: arch.Monolithic,
		splitStages: true,
		run: func(staged *circuit.Staged, a *arch.Architecture) (*core.Result, error) {
			r, err := enola.Compile(staged, a)
			if err != nil {
				return nil, err
			}
			return &core.Result{
				Stats: r.Stats, Breakdown: r.Breakdown, Duration: r.Duration,
				NumRydbergStages: r.NumRydbergStages,
			}, nil
		},
	})
	Register(&baselineCompiler{
		name:        "atomique",
		defaultArch: arch.Monolithic,
		splitStages: true,
		run: func(staged *circuit.Staged, a *arch.Architecture) (*core.Result, error) {
			r, err := atomique.Compile(staged, a)
			if err != nil {
				return nil, err
			}
			return &core.Result{
				Stats: r.Stats, Breakdown: r.Breakdown, Duration: r.Duration,
				NumRydbergStages: r.NumRydbergStages,
			}, nil
		},
	})
	Register(&baselineCompiler{
		name:        "nalac",
		defaultArch: arch.Reference,
		splitStages: true,
		run: func(staged *circuit.Staged, a *arch.Architecture) (*core.Result, error) {
			r, err := nalac.Compile(staged, a)
			if err != nil {
				return nil, err
			}
			return &core.Result{
				Stats: r.Stats, Breakdown: r.Breakdown, Duration: r.Duration,
				NumRydbergStages: r.NumExposures,
			}, nil
		},
	})

	scRouter := func(coupling func() *sc.Coupling, params func() fidelity.Params) func(*circuit.Staged, *arch.Architecture) (*core.Result, error) {
		return func(staged *circuit.Staged, _ *arch.Architecture) (*core.Result, error) {
			r, err := sc.Compile(staged, coupling(), params())
			if err != nil {
				return nil, err
			}
			return &core.Result{Stats: r.Stats, Breakdown: r.Breakdown, Duration: r.Duration}, nil
		}
	}
	Register(&baselineCompiler{
		name:        "sc-heron",
		defaultArch: arch.Reference, // unused: the router carries its own coupling graph
		splitStages: false,
		run:         scRouter(sc.HeavyHex127, fidelity.SCHeron),
	})
	Register(&baselineCompiler{
		name:        "sc-grid",
		defaultArch: arch.Reference,
		splitStages: false,
		run:         scRouter(func() *sc.Coupling { return sc.Grid(11, 11) }, fidelity.SCGrid),
	})
}
