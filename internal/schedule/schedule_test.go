package schedule

import (
	"context"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/zair"
)

func compilePlan(t *testing.T, a *arch.Architecture, c *circuit.Circuit, opts place.Options) (*circuit.Staged, *place.Plan) {
	t.Helper()
	staged, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := place.BuildPlan(context.Background(), a, staged, opts)
	if err != nil {
		t.Fatal(err)
	}
	return staged, plan
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New("ghz", n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < n-1; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}
	return c
}

func pairs(n int) *circuit.Circuit {
	c := circuit.New("pairs", n)
	for i := 0; i+1 < n; i += 2 {
		c.Append(circuit.CZ, []int{i, i + 1})
	}
	for i := 1; i+1 < n; i += 2 {
		c.Append(circuit.CZ, []int{i, i + 1})
	}
	return c
}

// verifyProgram replays the compiled program through the ZAIR verifier with
// the architecture's position resolver — the end-to-end physical check.
func verifyProgram(t *testing.T, a *arch.Architecture, p *zair.Program) {
	t.Helper()
	resolve := func(slmID, row, col int) (geom.Point, error) {
		for _, z := range a.Storage {
			for _, s := range z.SLMs {
				if s.ID == slmID && s.InRange(row, col) {
					return s.TrapPos(row, col), nil
				}
			}
		}
		for _, z := range a.Entanglement {
			for _, s := range z.SLMs {
				if s.ID == slmID && s.InRange(row, col) {
					return s.TrapPos(row, col), nil
				}
			}
		}
		return geom.Point{}, &unknownLoc{slmID, row, col}
	}
	v := &zair.Verifier{Resolve: resolve}
	if err := v.Verify(p); err != nil {
		t.Fatal(err)
	}
}

type unknownLoc struct{ a, r, c int }

func (u *unknownLoc) Error() string {
	return "unknown SLM location"
}

func TestBuildProducesValidProgram(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(14), place.Default())
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	verifyProgram(t, a, res.Program)
	if res.Stats.Duration <= 0 {
		t.Error("zero duration")
	}
	_, twoQ := staged.GateCounts()
	if res.Stats.TwoQGates != twoQ {
		t.Errorf("2Q count %d != %d", res.Stats.TwoQGates, twoQ)
	}
	oneQ, _ := staged.GateCounts()
	if res.Stats.OneQGates != oneQ {
		t.Errorf("1Q count %d != %d", res.Stats.OneQGates, oneQ)
	}
	// ZAC keeps idle qubits out of firing zones: no excitation.
	if res.Stats.Excited != 0 {
		t.Errorf("excited = %d, want 0", res.Stats.Excited)
	}
	// Every plan movement costs exactly two transfers.
	if res.Stats.Transfers != 2*plan.TotalMoves() {
		t.Errorf("transfers %d != 2×moves %d", res.Stats.Transfers, 2*plan.TotalMoves())
	}
}

func TestProgramTimesMonotonePerAOD(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, pairs(16), place.Default())
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	lastEnd := map[int]float64{}
	for _, in := range res.Program.Instructions {
		if j, ok := in.(zair.RearrangeJob); ok {
			if j.BeginTime < lastEnd[j.AODID]-1e-9 {
				t.Fatalf("AOD %d job overlaps: begin %v < last end %v", j.AODID, j.BeginTime, lastEnd[j.AODID])
			}
			lastEnd[j.AODID] = j.EndTime
		}
	}
}

func TestMultiAODShortensSchedule(t *testing.T) {
	// A wide parallel circuit gains from extra AODs.
	c := pairs(40)
	a1 := arch.Reference()
	a2 := arch.WithAODs(arch.Reference(), 2)
	staged, plan := compilePlan(t, a1, c, place.Default())
	res1, err := Build(context.Background(), a1, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Build(context.Background(), a2, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Duration > res1.Stats.Duration+1e-9 {
		t.Errorf("2 AODs slower than 1: %v vs %v", res2.Stats.Duration, res1.Stats.Duration)
	}
}

func TestCompatibility(t *testing.T) {
	mk := func(x0, y0, x1, y1 float64) moveSpec {
		return moveSpec{from: geom.Point{X: x0, Y: y0}, to: geom.Point{X: x1, Y: y1}}
	}
	// Order preserved in both axes: compatible.
	if !compatible(mk(0, 0, 10, 10), mk(5, 0, 15, 10)) {
		t.Error("order-preserving moves should be compatible")
	}
	// X order flips: incompatible.
	if compatible(mk(0, 0, 20, 10), mk(5, 0, 15, 10)) {
		t.Error("x-crossing moves should conflict")
	}
	// Same begin x must stay same end x.
	if compatible(mk(0, 0, 10, 10), mk(0, 5, 12, 15)) {
		t.Error("same-column moves with diverging ends should conflict")
	}
	if !compatible(mk(0, 0, 10, 10), mk(0, 5, 10, 15)) {
		t.Error("same-column moves staying together should be compatible")
	}
	// Y order flips: incompatible.
	if compatible(mk(0, 0, 10, 20), mk(0, 5, 10, 15)) {
		t.Error("y-crossing moves should conflict")
	}
}

func TestGroupCompatibleCoversAll(t *testing.T) {
	specs := []moveSpec{
		{from: geom.Point{X: 0, Y: 0}, to: geom.Point{X: 10, Y: 10}},
		{from: geom.Point{X: 5, Y: 0}, to: geom.Point{X: 2, Y: 10}},  // crosses 0
		{from: geom.Point{X: 9, Y: 0}, to: geom.Point{X: 20, Y: 10}}, // compatible with 0
	}
	groups, err := groupCompatible(context.Background(), 1, specs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if !compatible(specs[g[i]], specs[g[j]]) {
					t.Fatalf("group contains conflicting moves %d,%d", g[i], g[j])
				}
			}
		}
	}
	if total != 3 {
		t.Fatalf("covered %d of 3 moves", total)
	}
	if len(groups) < 2 {
		t.Fatal("crossing moves must land in separate groups/jobs")
	}
}

func TestOneQGatesSequential(t *testing.T) {
	a := arch.Reference()
	c := circuit.New("h3", 3)
	for q := 0; q < 3; q++ {
		c.Append(circuit.H, []int{q})
	}
	staged, plan := compilePlan(t, a, c, place.Default())
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	// 3 sequential 1Q gates at 52µs each.
	if got, want := res.Stats.Duration, 3*52.0; got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}
}

func TestJobTimingIncludesTransfersAndMove(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(4), place.Default())
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Program.Instructions {
		if j, ok := in.(zair.RearrangeJob); ok {
			dur := j.EndTime - j.BeginTime
			if dur < 2*a.Times.AtomTransfer {
				t.Fatalf("job duration %v below two transfers", dur)
			}
		}
	}
}

func TestVerifierOnAllArchitectures(t *testing.T) {
	cases := map[string]*arch.Architecture{
		"reference": arch.Reference(),
		"arch1":     arch.Arch1Small(),
		"arch2":     arch.Arch2TwoZones(),
		"twoAODs":   arch.WithAODs(arch.Reference(), 2),
	}
	for name, a := range cases {
		t.Run(name, func(t *testing.T) {
			staged, plan := compilePlan(t, a, pairs(24), place.Default())
			res, err := Build(context.Background(), a, staged, plan)
			if err != nil {
				t.Fatal(err)
			}
			verifyProgram(t, a, res.Program)
			// Every qubit must end in a storage trap.
			final := zair.FinalPositions(res.Program)
			storageIDs := map[int]bool{}
			for _, z := range a.Storage {
				for _, s := range z.SLMs {
					storageIDs[s.ID] = true
				}
			}
			for q, l := range final {
				if !storageIDs[l.A] {
					t.Errorf("qubit %d ends outside storage: %+v", q, l)
				}
			}
		})
	}
}

func TestVerifierWithAdvancedReuse(t *testing.T) {
	// Advanced reuse introduces direct site→site moves inside a movement
	// phase; the verifier must confirm no trap or tone conflicts result.
	a := arch.Reference()
	opts := place.Default()
	opts.AdvancedReuse = true
	qft := circuit.New("qftlike", 12)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			qft.Append(circuit.CZ, []int{i, j})
		}
	}
	staged, plan := compilePlan(t, a, qft, opts)
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	verifyProgram(t, a, res.Program)
}

func TestRydbergPerZone(t *testing.T) {
	a := arch.Arch2TwoZones()
	staged, plan := compilePlan(t, a, pairs(30), place.Default())
	res, err := Build(context.Background(), a, staged, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	verifyProgram(t, a, res.Program)
	// Count Rydberg instructions; with two zones in use there may be more
	// rydberg instructions than Rydberg stages.
	ryd := 0
	for _, in := range res.Program.Instructions {
		if _, ok := in.(zair.Rydberg); ok {
			ryd++
		}
	}
	if ryd < staged.NumRydbergStages() {
		t.Errorf("rydberg instructions %d < stages %d", ryd, staged.NumRydbergStages())
	}
}
