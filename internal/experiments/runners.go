package experiments

import (
	"fmt"
	"time"

	"zac/internal/arch"
	"zac/internal/baseline/atomique"
	"zac/internal/baseline/enola"
	"zac/internal/baseline/nalac"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/ftqc"
	"zac/internal/resynth"
	"zac/internal/sc"
)

// Column names shared with the paper's legends.
const (
	ColSCHeron  = "SC-Heron"
	ColSCGrid   = "SC-Grid"
	ColAtomique = "Mono-Atomique"
	ColEnola    = "Mono-Enola"
	ColNALAC    = "Zoned-NALAC"
	ColZAC      = "Zoned-ZAC"
)

// suite resolves a benchmark subset (nil = the full 17-circuit suite).
func suite(subset []string) ([]bench.Benchmark, error) {
	if len(subset) == 0 {
		return bench.All(), nil
	}
	var out []bench.Benchmark
	for _, name := range subset {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// preprocess builds and stages a benchmark, splitting oversized stages to
// the reference architecture's site capacity.
func preprocess(b bench.Benchmark, a *arch.Architecture) (*circuit.Staged, error) {
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return circuit.SplitRydbergStages(staged, a.TotalSites()), nil
}

// naResult is the common evaluation shape of all four neutral-atom
// compilers.
type naResult struct {
	breakdown fidelity.Breakdown
	duration  float64 // µs
	compile   time.Duration
}

// runNA evaluates one circuit under the four neutral-atom compilers.
func runNA(b bench.Benchmark) (map[string]naResult, error) {
	zoned := arch.Reference()
	mono := arch.Monolithic()
	out := map[string]naResult{}

	staged, err := preprocess(b, zoned)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	zr, err := core.CompileStaged(staged, zoned, core.Default())
	if err != nil {
		return nil, fmt.Errorf("%s/zac: %w", b.Name, err)
	}
	out[ColZAC] = naResult{zr.Breakdown, zr.Duration, time.Since(t0)}

	t0 = time.Now()
	nr, err := nalac.Compile(staged, zoned)
	if err != nil {
		return nil, fmt.Errorf("%s/nalac: %w", b.Name, err)
	}
	out[ColNALAC] = naResult{nr.Breakdown, nr.Duration, time.Since(t0)}

	t0 = time.Now()
	er, err := enola.Compile(staged, mono)
	if err != nil {
		return nil, fmt.Errorf("%s/enola: %w", b.Name, err)
	}
	out[ColEnola] = naResult{er.Breakdown, er.Duration, time.Since(t0)}

	t0 = time.Now()
	ar, err := atomique.Compile(staged, mono)
	if err != nil {
		return nil, fmt.Errorf("%s/atomique: %w", b.Name, err)
	}
	out[ColAtomique] = naResult{ar.Breakdown, ar.Duration, time.Since(t0)}
	return out, nil
}

// runSC evaluates one circuit on both superconducting architectures.
func runSC(b bench.Benchmark) (map[string]naResult, error) {
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		return nil, err
	}
	out := map[string]naResult{}
	t0 := time.Now()
	hr, err := sc.Compile(staged, sc.HeavyHex127(), fidelity.SCHeron())
	if err != nil {
		return nil, fmt.Errorf("%s/heron: %w", b.Name, err)
	}
	out[ColSCHeron] = naResult{hr.Breakdown, hr.Duration, time.Since(t0)}
	t0 = time.Now()
	gr, err := sc.Compile(staged, sc.Grid(11, 11), fidelity.SCGrid())
	if err != nil {
		return nil, fmt.Errorf("%s/grid: %w", b.Name, err)
	}
	out[ColSCGrid] = naResult{gr.Breakdown, gr.Duration, time.Since(t0)}
	return out, nil
}

// Table1 prints the hardware parameters (paper Table I).
func Table1() ([]*Table, error) {
	t := &Table{
		Title:   "Table I: hardware parameters",
		Columns: []string{"f2", "f1", "T1q(us)", "T2q(us)", "T2(us)"},
	}
	add := func(name string, p fidelity.Params) {
		t.AddRow(name, map[string]float64{
			"f2": p.F2, "f1": p.F1, "T1q(us)": p.T1Q, "T2q(us)": p.T2Q, "T2(us)": p.T2,
		})
	}
	add("NeutralAtom", fidelity.NeutralAtom())
	add("SC-Heron", fidelity.SCHeron())
	add("SC-Grid", fidelity.SCGrid())
	t.Notes = append(t.Notes,
		"neutral atom extras: fexc=0.9975 ftran=0.999 Ttran=15us (paper §VII-B)")
	return []*Table{t}, nil
}

// Fig1c reproduces the monolithic fidelity breakdown of Fig. 1c: the
// excitation of idle qubits dominates even with optimal Rydberg exposures.
func Fig1c(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 1c: monolithic (Enola) fidelity breakdown",
		Columns: []string{"2Q-pure", "excitation", "transfer", "decoherence", "1Q", "total"},
	}
	mono := arch.Monolithic()
	for _, b := range benches {
		staged, err := preprocess(b, mono)
		if err != nil {
			return nil, err
		}
		r, err := enola.Compile(staged, mono)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, map[string]float64{
			"2Q-pure":     r.Breakdown.TwoQ,
			"excitation":  r.Breakdown.Excite,
			"transfer":    r.Breakdown.Transfer,
			"decoherence": r.Breakdown.Decohere,
			"1Q":          r.Breakdown.OneQ,
			"total":       r.Breakdown.Total,
		})
	}
	t.Notes = append(t.Notes, "side-effect (excitation) noise should dominate — compare columns")
	return []*Table{t}, nil
}

// Fig8 reproduces the six-way architecture comparison.
func Fig8(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 8: circuit fidelity across architectures",
		Columns: []string{ColSCHeron, ColSCGrid, ColAtomique, ColEnola, ColNALAC, ColZAC},
	}
	for _, b := range benches {
		na, err := runNA(b)
		if err != nil {
			return nil, err
		}
		scr, err := runSC(b)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for k, v := range na {
			row[k] = v.breakdown.Total
		}
		for k, v := range scr {
			row[k] = v.breakdown.Total
		}
		t.AddRow(fmt.Sprintf("%s(%d,%d)", b.Name, b.Paper2Q, b.Paper1Q), row)
	}
	return []*Table{t}, nil
}

// Fig9 reproduces the fidelity breakdown comparison for the four
// neutral-atom compilers: 2Q gates (including excitation), atom transfer,
// and decoherence.
func Fig9(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	cols := []string{ColAtomique, ColEnola, ColNALAC, ColZAC}
	twoQ := &Table{Title: "Fig 9a: 2Q-gate fidelity (incl. excitation)", Columns: cols}
	tran := &Table{Title: "Fig 9b: atom-transfer fidelity", Columns: cols}
	deco := &Table{Title: "Fig 9c: decoherence fidelity", Columns: cols}
	for _, b := range benches {
		na, err := runNA(b)
		if err != nil {
			return nil, err
		}
		r2, rt, rd := map[string]float64{}, map[string]float64{}, map[string]float64{}
		for k, v := range na {
			r2[k] = v.breakdown.TwoQCombined()
			rt[k] = v.breakdown.Transfer
			rd[k] = v.breakdown.Decohere
		}
		twoQ.AddRow(b.Name, r2)
		tran.AddRow(b.Name, rt)
		deco.AddRow(b.Name, rd)
	}
	return []*Table{twoQ, tran, deco}, nil
}

// Fig10 reproduces the circuit-duration comparison (milliseconds).
func Fig10(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 10: circuit duration (ms)",
		Columns: []string{ColAtomique, ColEnola, ColNALAC, ColZAC},
	}
	for _, b := range benches {
		na, err := runNA(b)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for k, v := range na {
			row[k] = v.duration / 1000
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// Table2 reproduces the fidelity breakdown and average duration for the
// superconducting grid architecture and ZAC.
func Table2(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	zoned := arch.Reference()
	grid := sc.Grid(11, 11)

	type agg struct {
		twoQ, oneQ, tran, deco, total []float64
		dur                           float64
	}
	var scA, zacA agg
	for _, b := range benches {
		staged, err := preprocess(b, zoned)
		if err != nil {
			return nil, err
		}
		zr, err := core.CompileStaged(staged, zoned, core.Default())
		if err != nil {
			return nil, err
		}
		zacA.twoQ = append(zacA.twoQ, zr.Breakdown.TwoQCombined())
		zacA.oneQ = append(zacA.oneQ, zr.Breakdown.OneQ)
		zacA.tran = append(zacA.tran, zr.Breakdown.Transfer)
		zacA.deco = append(zacA.deco, zr.Breakdown.Decohere)
		zacA.total = append(zacA.total, zr.Breakdown.Total)
		zacA.dur += zr.Duration

		flat, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, err
		}
		gr, err := sc.Compile(flat, grid, fidelity.SCGrid())
		if err != nil {
			return nil, err
		}
		scA.twoQ = append(scA.twoQ, gr.Breakdown.TwoQ)
		scA.oneQ = append(scA.oneQ, gr.Breakdown.OneQ)
		scA.deco = append(scA.deco, gr.Breakdown.Decohere)
		scA.total = append(scA.total, gr.Breakdown.Total)
		scA.dur += gr.Duration
	}
	n := float64(len(benches))
	t := &Table{
		Title:   "Table II: fidelity breakdown and average circuit duration",
		Columns: []string{"2Qgate", "1Qgate", "Transfer", "Decohere", "Total", "AvgDur(us)"},
	}
	t.AddRow("SC-Grid", map[string]float64{
		"2Qgate": fidelity.GeoMean(scA.twoQ), "1Qgate": fidelity.GeoMean(scA.oneQ),
		"Decohere": fidelity.GeoMean(scA.deco), "Total": fidelity.GeoMean(scA.total),
		"AvgDur(us)": scA.dur / n,
	})
	t.AddRow("ZAC", map[string]float64{
		"2Qgate": fidelity.GeoMean(zacA.twoQ), "1Qgate": fidelity.GeoMean(zacA.oneQ),
		"Transfer": fidelity.GeoMean(zacA.tran), "Decohere": fidelity.GeoMean(zacA.deco),
		"Total": fidelity.GeoMean(zacA.total), "AvgDur(us)": zacA.dur / n,
	})
	return []*Table{t}, nil
}

// Fig11 reproduces the ablation study over the four compiler settings.
func Fig11(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	settings := []string{core.SettingVanilla, core.SettingDynPlace, core.SettingDynPlaceReuse, core.SettingSADynPlaceReuse}
	t := &Table{Title: "Fig 11: ZAC technique ablation (fidelity)", Columns: settings}
	a := arch.Reference()
	for _, b := range benches {
		staged, err := preprocess(b, a)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for _, s := range settings {
			r, err := core.CompileStaged(staged, a, core.OptionsFor(s))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, s, err)
			}
			row[s] = r.Breakdown.Total
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// Fig12 reproduces the compilation time vs fidelity trade-off: average
// compile seconds and geomean fidelity per compiler/setting.
func Fig12(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	t := &Table{
		Title:   "Fig 12: compilation time vs fidelity",
		Columns: []string{"time(s)", "fidelity"},
	}
	// ZAC settings.
	for _, s := range []string{core.SettingVanilla, core.SettingDynPlace, core.SettingDynPlaceReuse, core.SettingSADynPlaceReuse} {
		var secs float64
		var fids []float64
		for _, b := range benches {
			staged, err := preprocess(b, a)
			if err != nil {
				return nil, err
			}
			r, err := core.CompileStaged(staged, a, core.OptionsFor(s))
			if err != nil {
				return nil, err
			}
			secs += r.CompileTime.Seconds()
			fids = append(fids, r.Breakdown.Total)
		}
		t.AddRow("ZAC-"+s, map[string]float64{
			"time(s)": secs / float64(len(benches)), "fidelity": fidelity.GeoMean(fids),
		})
	}
	// Baselines.
	for _, row := range []string{ColAtomique, ColEnola, ColNALAC} {
		var secs float64
		var fids []float64
		for _, b := range benches {
			na, err := runNA(b)
			if err != nil {
				return nil, err
			}
			secs += na[row].compile.Seconds()
			fids = append(fids, na[row].breakdown.Total)
		}
		t.AddRow(row, map[string]float64{
			"time(s)": secs / float64(len(benches)), "fidelity": fidelity.GeoMean(fids),
		})
	}
	return []*Table{t}, nil
}

// Fig13 reproduces the optimality study: ZAC against the perfect-movement,
// perfect-placement and perfect-reuse upper bounds.
func Fig13(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	t := &Table{
		Title:   "Fig 13: optimality analysis (fidelity)",
		Columns: []string{"PerfectReuse", "PerfectPlacement", "PerfectMovement", "ZAC"},
	}
	for _, b := range benches {
		staged, err := preprocess(b, a)
		if err != nil {
			return nil, err
		}
		r, err := core.CompileStaged(staged, a, core.Default())
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, map[string]float64{
			"PerfectReuse":     core.PerfectReuse(a, staged, r.Plan).Total,
			"PerfectPlacement": core.PerfectPlacement(a, staged, r.Plan).Total,
			"PerfectMovement":  core.PerfectMovement(a, staged, r.Plan).Total,
			"ZAC":              r.Breakdown.Total,
		})
	}
	return []*Table{t}, nil
}

// Fig14 reproduces the multi-AOD study (1–4 AODs).
func Fig14(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 14: fidelity vs AOD count",
		Columns: []string{"1AOD", "2AOD", "3AOD", "4AOD"},
	}
	for _, b := range benches {
		row := map[string]float64{}
		for n := 1; n <= 4; n++ {
			a := arch.WithAODs(arch.Reference(), n)
			staged, err := preprocess(b, a)
			if err != nil {
				return nil, err
			}
			r, err := core.CompileStaged(staged, a, core.Default())
			if err != nil {
				return nil, err
			}
			row[fmt.Sprintf("%dAOD", n)] = r.Breakdown.Total
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// MultiZone reproduces §VII-H: ising_n98 on Arch1 (one 6×10 zone) vs Arch2
// (two 3×10 zones flanking the storage zone).
func MultiZone() ([]*Table, error) {
	b, err := bench.ByName("ising_n98")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Sec VII-H: multiple entanglement zones (ising_n98)",
		Columns: []string{"fidelity", "duration(ms)"},
	}
	for _, tc := range []struct {
		name string
		a    *arch.Architecture
	}{
		{"Arch1-1zone", arch.Arch1Small()},
		{"Arch2-2zones", arch.Arch2TwoZones()},
	} {
		staged, err := preprocess(b, tc.a)
		if err != nil {
			return nil, err
		}
		r, err := core.CompileStaged(staged, tc.a, core.Default())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		t.AddRow(tc.name, map[string]float64{
			"fidelity": r.Breakdown.Total, "duration(ms)": r.Duration / 1000,
		})
	}
	t.Notes = append(t.Notes, "paper: Arch1 fidelity 0.041 / 23.25ms; Arch2 0.047 (+15%) / 21.63ms (−8%)")
	return []*Table{t}, nil
}

// FTQC reproduces §VIII: the 128-block hIQP compilation.
func FTQC() ([]*Table, error) {
	res, err := ftqc.Compile(ftqc.ScaledUp(), arch.Logical832())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Sec VIII: hIQP on [[8,3,2]] blocks (logical-level ZAC)",
		Columns: []string{"blocks", "logicalQubits", "transversalGates", "rydbergStages", "duration(ms)"},
	}
	t.AddRow("hIQP-128", map[string]float64{
		"blocks":           float64(res.Spec.NumBlocks),
		"logicalQubits":    float64(res.Spec.NumLogicalQubits()),
		"transversalGates": float64(res.TransversalGates),
		"rydbergStages":    float64(res.NumRydbergStages),
		"duration(ms)":     res.DurationMS,
	})
	t.Notes = append(t.Notes, "paper: 35 Rydberg stages, 117.847 ms physical duration")
	return []*Table{t}, nil
}

// ZAIRStats reproduces the §IX instruction-density metrics: ZAIR
// instructions per gate and machine instructions per gate.
func ZAIRStats(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	t := &Table{
		Title:   "Sec IX: ZAIR instruction density",
		Columns: []string{"zairPerGate", "machinePerGate"},
	}
	for _, b := range benches {
		staged, err := preprocess(b, a)
		if err != nil {
			return nil, err
		}
		r, err := core.CompileStaged(staged, a, core.Default())
		if err != nil {
			return nil, err
		}
		one, two := staged.GateCounts()
		gates := float64(one + two)
		stats := r.Program.CountStats()
		t.AddRow(b.Name, map[string]float64{
			"zairPerGate":    float64(r.Program.NumZAIRInstructions()) / gates,
			"machinePerGate": float64(stats.MachineInsts) / gates,
		})
	}
	t.Notes = append(t.Notes, "paper geomeans: 0.85 ZAIR inst/gate, 1.77 machine inst/gate")
	return []*Table{t}, nil
}
