// Command zac-fuzz is the compile→verify round-trip fuzzer and the
// differential compile oracle: it generates circuits from the workload forge
// (pinned specs or a seeded random stream) and checks them one of two ways.
//
// The default round-trip mode runs each circuit through the QASM
// writer/parser and every registry compiler and verifies the invariants the
// hardware imposes — ZAIR replay (qubit conservation, AOD exclusivity, tone
// ordering), gate-set legality of the staged program, statevector
// equivalence at small widths, and fidelity sanity.
//
// Differential mode (-diff) cross-checks the registry compilers against each
// other: compile-outcome agreement, replay verification, resource-accounting
// consistency, repeat-compile determinism, and ablation fidelity ordering.
// With -mutate it adds a coverage-guided mutation loop driven by per-pass
// and planner-branch feature counters. Any divergence is greedily shrunk to
// a minimal reproduction and, with -corpus, persisted as a QASM repro file.
//
//	zac-fuzz                                    # 25 random specs, all compilers
//	zac-fuzz -n 200 -seed 42                    # bigger seeded run
//	zac-fuzz -duration 10m                      # nightly: fuzz until the clock runs out
//	zac-fuzz -spec "rb:n=32,depth=20,seed=7"    # exact specs (';'-separated)
//	zac-fuzz -smoke                             # the pinned CI specs (make fuzz-smoke)
//	zac-fuzz -compilers zac,enola -simmax 12
//	zac-fuzz -diff -smoke                       # differential oracle over the pinned specs
//	zac-fuzz -diff -mutate 64 -corpus corpus/   # coverage-guided differential fuzzing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"zac/internal/compiler"
	"zac/internal/difftest"
	"zac/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes to the given streams, and returns the process exit code (0 clean,
// 1 invariant violations or divergences or bad -compilers, 2 usage or
// harness errors).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zac-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specsFlag := fs.String("spec", "", "';'-separated workload specs to check (disables random fuzzing)")
	smoke := fs.Bool("smoke", false, "run the pinned CI smoke specs (same as make fuzz-smoke)")
	n := fs.Int("n", 25, "random specs to fuzz when no -spec/-smoke is given")
	seed := fs.Int64("seed", 1, "base seed of the random spec stream (runs are reproducible per seed)")
	duration := fs.Duration("duration", 0, "fuzz until this much time has passed (overrides -n; for nightly runs)")
	compilers := fs.String("compilers", "", "comma-separated registry compilers (default: whole registry)")
	simMax := fs.Int("simmax", 10, "max qubits for statevector equivalence checks")
	noShrink := fs.Bool("noshrink", false, "report failures without minimizing them")
	listWorkloads := fs.Bool("list-workloads", false, "list generator families with parameter schemas and exit")
	verbose := fs.Bool("v", false, "print one line per (spec, stage) check")
	diff := fs.Bool("diff", false, "differential mode: cross-check compilers against each other")
	mutate := fs.Int("mutate", 0, "differential mode: coverage-guided mutation iterations after the seeds")
	corpus := fs.String("corpus", "", "differential mode: persist minimized repros to this directory")
	fidTol := fs.Float64("fidtol", 0, "differential mode: ablation fidelity-ordering tolerance (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listWorkloads {
		fmt.Fprint(stdout, workload.List())
		return 0
	}

	// Validate -compilers up front against the registry, whatever the mode:
	// a typo should fail fast with the valid list, not surface as a
	// per-spec error deep into a run.
	var selected []string
	if *compilers != "" {
		for _, name := range strings.Split(*compilers, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := compiler.Get(name); err != nil {
				fmt.Fprintf(stderr, "zac-fuzz: unknown compiler %q (valid: %s)\n",
					name, strings.Join(compiler.Names(), ", "))
				return 1
			}
			selected = append(selected, name)
		}
	}

	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var specs []string
	switch {
	case *specsFlag != "":
		for _, s := range strings.Split(*specsFlag, ";") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
	case *smoke:
		specs = workload.SmokeSpecs()
	}

	if *diff {
		return runDiff(ctx, diffConfig{
			specs: specs, n: *n, seed: *seed, duration: *duration,
			compilers: selected, mutate: *mutate, corpus: *corpus,
			fidTol: *fidTol, noShrink: *noShrink, verbose: *verbose,
		}, stdout, stderr)
	}

	opts := workload.FuzzOptions{SimMax: *simMax, NoShrink: *noShrink, Compilers: selected}

	start := time.Now()
	ran, failed := 0, 0
	runOne := func(spec string) error {
		failures, err := roundTripVerbose(ctx, spec, opts, *verbose, stderr)
		if err != nil {
			return err
		}
		ran++
		for _, f := range failures {
			failed++
			fmt.Fprintf(stdout, "FAIL %s\n", f)
		}
		return nil
	}

	var runErr error
	if specs != nil {
		for _, spec := range specs {
			if runErr = runOne(spec); runErr != nil {
				break
			}
		}
	} else {
		r := workload.NewRNG(*seed)
		for i := 0; ; i++ {
			if *duration > 0 {
				if ctx.Err() != nil {
					break
				}
			} else if i >= *n {
				break
			}
			if runErr = runOne(workload.RandomSpec(r).Canonical()); runErr != nil {
				break
			}
		}
	}
	if runErr != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "zac-fuzz: %v\n", runErr)
		return 2
	}

	fmt.Fprintf(stdout, "zac-fuzz: %d specs round-tripped in %s, %d invariant violations\n",
		ran, time.Since(start).Round(time.Millisecond), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// diffConfig carries the differential-mode settings from flag parsing to
// runDiff.
type diffConfig struct {
	specs     []string
	n         int
	seed      int64
	duration  time.Duration
	compilers []string
	mutate    int
	corpus    string
	fidTol    float64
	noShrink  bool
	verbose   bool
}

// runDiff drives the differential oracle: the selected specs (or a seeded
// random stream) become the seed pool, -mutate adds coverage-guided
// iterations, and the run ends with a per-class divergence summary plus the
// feature counters. Exit code 1 when any divergence was found.
func runDiff(ctx context.Context, cfg diffConfig, stdout, stderr io.Writer) int {
	oracle, err := difftest.New(difftest.Options{
		Compilers:   cfg.compilers,
		FidelityTol: cfg.fidTol,
		NoShrink:    cfg.noShrink,
		CorpusDir:   cfg.corpus,
	})
	if err != nil {
		fmt.Fprintf(stderr, "zac-fuzz: %v\n", err)
		return 2
	}

	seeds := cfg.specs
	if seeds == nil {
		// Seed the pool from the random stream, discarding widths beyond
		// the oracle's bound (platform capacities legitimately diverge
		// above it).
		r := workload.NewRNG(cfg.seed)
		for tries := 0; len(seeds) < cfg.n && tries < cfg.n*10; tries++ {
			s := workload.RandomSpec(r)
			c, err := s.Generate()
			if err != nil || c.NumQubits > difftest.DefaultMaxQubits {
				continue
			}
			seeds = append(seeds, s.Canonical())
		}
	}
	if cfg.verbose {
		for _, s := range seeds {
			fmt.Fprintf(stderr, "[diff] seed %s\n", s)
		}
	}

	start := time.Now()
	lr, err := oracle.RunLoop(ctx, difftest.LoopOptions{
		Seeds:      seeds,
		Iterations: cfg.mutate,
		Seed:       cfg.seed,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "zac-fuzz: %v\n", err)
		return 2
	}

	for _, d := range lr.Divergences {
		fmt.Fprintf(stdout, "DIVERGE %s\n", d)
	}
	summary := difftest.Summarize(lr.Divergences)
	fmt.Fprintf(stdout, "zac-fuzz -diff: %d compilers, %d inputs in %s, %s\n",
		len(oracle.Compilers()), lr.Inputs, time.Since(start).Round(time.Millisecond), summary)
	fmt.Fprintf(stdout, "features reached: %d (seeds alone: %d, new via mutation: %d)\n",
		len(lr.Features), len(lr.BaselineFeatures), len(lr.NewFeatures))
	if cfg.verbose {
		feats := make([]string, 0, len(lr.Features))
		for f := range lr.Features {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		for _, f := range feats {
			fmt.Fprintf(stdout, "  %-40s %d\n", f, lr.Features[f])
		}
	}
	for _, f := range lr.NewFeatures {
		fmt.Fprintf(stdout, "  new: %s\n", f)
	}
	for _, p := range summary.Corpus {
		fmt.Fprintf(stdout, "corpus: %s\n", p)
	}
	if summary.Total > 0 {
		return 1
	}
	return 0
}

// roundTripVerbose wraps workload.RoundTrip with per-spec progress output.
func roundTripVerbose(ctx context.Context, spec string, opts workload.FuzzOptions, verbose bool, stderr io.Writer) ([]workload.Failure, error) {
	if verbose {
		fmt.Fprintf(stderr, "[fuzz] %s\n", spec)
	}
	return workload.RoundTrip(ctx, spec, opts)
}
