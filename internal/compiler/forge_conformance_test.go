// Forge × registry conformance: every workload family's pinned smoke spec
// compiles with every registered compiler, deterministically across two
// fresh-cache runs. This is the generated-workload counterpart of
// TestRegistryConformance's benchmark subset, and it lives in an external
// test package because the forge imports the registry.
package compiler_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/resynth"
	"zac/internal/workload"
)

// forgeStagedFor shapes a generated circuit for a registry compiler under
// the shared shaping rule (preprocess, split to the compiler's stage cap).
func forgeStagedFor(t *testing.T, comp compiler.Compiler, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	staged, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	if splitCap := compiler.StageSplitCap(comp); splitCap > 0 {
		staged = circuit.SplitRydbergStages(staged, splitCap)
	}
	if err := staged.Validate(); err != nil {
		t.Fatal(err)
	}
	return staged
}

// forgeResultHash digests the observable output of a compilation, the same
// shape the internal conformance test and the difftest oracle hash.
func forgeResultHash(t *testing.T, r *core.Result) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Program any
		Stats   any
		Brk     any
	}{r.Program, r.Stats, r.Breakdown})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestForgeConformance runs every forge family's pinned smoke spec through
// every registered compiler: the compile must succeed, the result must be
// internally sane, and two runs with independent artifact caches must be
// byte-identical.
func TestForgeConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every smoke spec with every registered compiler; skipped in -short")
	}
	specs := workload.SmokeSpecs()
	for _, name := range compiler.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			comp, err := compiler.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			target := compiler.TargetArch(comp)
			for _, spec := range specs {
				parsed, err := workload.Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				c, err := parsed.Generate()
				if err != nil {
					t.Fatal(err)
				}
				key := parsed.Canonical()
				hashes := make([]string, 2)
				for run := 0; run < 2; run++ {
					arts := compiler.NewArtifacts(engine.NewTiered(0))
					staged := forgeStagedFor(t, comp, c)
					r, err := comp.Compile(context.Background(), staged, target,
						compiler.Options{Key: key, Artifacts: arts})
					if err != nil {
						t.Fatalf("%s run %d: %v", spec, run, err)
					}
					if r.Program == nil {
						t.Fatalf("%s: nil Program", spec)
					}
					if r.Breakdown.Total <= 0 || r.Breakdown.Total > 1 {
						t.Errorf("%s: fidelity %v outside (0,1]", spec, r.Breakdown.Total)
					}
					if r.Stats.Duration <= 0 {
						t.Errorf("%s: stats not populated: %+v", spec, r.Stats)
					}
					if len(r.Passes) == 0 {
						t.Errorf("%s: no pass timings", spec)
					}
					hashes[run] = forgeResultHash(t, r)
				}
				if hashes[0] != hashes[1] {
					t.Errorf("%s: nondeterministic output across fresh-cache runs:\n  %s\n  %s",
						spec, hashes[0], hashes[1])
				}
			}
		})
	}
}
