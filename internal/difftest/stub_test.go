package difftest

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/workload"
)

// stubCompiler wraps a real registry compiler and corrupts its results —
// the seam the seeded-violation tests use to prove the oracle detects,
// classifies, and shrinks each divergence class. It is never registered
// globally; NewWith injects it directly.
type stubCompiler struct {
	inner   compiler.Compiler
	name    string
	corrupt func(res *core.Result, call int)
	calls   int
}

func (s *stubCompiler) Name() string { return s.name }

func (s *stubCompiler) Compile(ctx context.Context, staged *circuit.Staged, a *arch.Architecture, opts compiler.Options) (*core.Result, error) {
	res, err := s.inner.Compile(ctx, staged, a, opts)
	if err != nil {
		return nil, err
	}
	s.calls++
	s.corrupt(res, s.calls)
	return res, nil
}

func mustGet(t testing.TB, name string) compiler.Compiler {
	t.Helper()
	c, err := compiler.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func genCircuit(t testing.TB, spec string) *circuit.Circuit {
	t.Helper()
	s, err := workload.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// classes returns the distinct classes present in a divergence list.
func classes(divs []Divergence) map[Class]bool {
	m := map[Class]bool{}
	for _, d := range divs {
		m[d.Class] = true
	}
	return m
}

// TestSeededAccountingViolation plants an off-by-one in the reported move
// counter and asserts the oracle detects it, classifies it as accounting,
// shrinks the repro to ≤ 20 gates, and persists it to the corpus.
func TestSeededAccountingViolation(t *testing.T) {
	stub := &stubCompiler{
		inner: mustGet(t, "zac"), name: "stub-acct",
		corrupt: func(res *core.Result, _ int) { res.TotalMoves++ },
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	o := NewWith([]compiler.Compiler{stub}, Options{CorpusDir: dir})
	divs, err := o.Check(context.Background(), genCircuit(t, "shuffle:n=10,depth=4,seed=7"), "seeded-acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatal("seeded accounting violation not detected")
	}
	got := classes(divs)
	if !got[ClassAccounting] {
		t.Fatalf("violation classified as %v, want %s", got, ClassAccounting)
	}
	for _, d := range divs {
		if d.Class != ClassAccounting {
			t.Errorf("unexpected extra divergence: %s", d)
			continue
		}
		if !strings.Contains(d.Detail, "move accounting") {
			t.Errorf("detail %q does not name the broken counter", d.Detail)
		}
		if d.Gates > 20 {
			t.Errorf("repro has %d gates, want ≤ 20", d.Gates)
		}
		if d.QASM == "" {
			t.Error("divergence carries no QASM repro")
		}
		if d.CorpusPath == "" {
			t.Error("divergence not persisted to corpus")
		} else if _, err := os.Stat(d.CorpusPath); err != nil {
			t.Errorf("corpus file missing: %v", err)
		}
	}
}

// TestSeededDeterminismViolation makes every second compilation differ and
// asserts the determinism cross-check catches it.
func TestSeededDeterminismViolation(t *testing.T) {
	stub := &stubCompiler{
		inner: mustGet(t, "zac"), name: "stub-det",
		corrupt: func(res *core.Result, call int) {
			if call%2 == 0 {
				res.Breakdown.Total *= 0.999
			}
		},
	}
	o := NewWith([]compiler.Compiler{stub}, Options{})
	divs, err := o.Check(context.Background(), genCircuit(t, "rb:n=6,depth=4,seed=7"), "seeded-det")
	if err != nil {
		t.Fatal(err)
	}
	if !classes(divs)[ClassDeterminism] {
		t.Fatalf("seeded determinism violation not detected: %v", divs)
	}
	for _, d := range divs {
		if d.Class == ClassDeterminism && !strings.Contains(d.Detail, "not byte-identical") {
			t.Errorf("detail %q does not describe the hash mismatch", d.Detail)
		}
	}
}

// TestSeededFidelityOrderViolation halves the full configuration's
// fidelity so its own ablation beats it, and asserts the ordering check
// catches the inverted pair.
func TestSeededFidelityOrderViolation(t *testing.T) {
	stub := &stubCompiler{
		inner: mustGet(t, "zac"), name: "zac", // chain position of the full config
		corrupt: func(res *core.Result, _ int) { res.Breakdown.Total *= 0.5 },
	}
	o := NewWith([]compiler.Compiler{mustGet(t, "zac-vanilla"), stub}, Options{})
	divs, err := o.Check(context.Background(), genCircuit(t, "qaoa:n=10,p=2,seed=7"), "seeded-fid")
	if err != nil {
		t.Fatal(err)
	}
	if !classes(divs)[ClassFidelityOrder] {
		t.Fatalf("seeded fidelity-order violation not detected: %v", divs)
	}
	for _, d := range divs {
		if d.Class == ClassFidelityOrder && d.Compiler != "zac-vanilla>zac" {
			t.Errorf("pair = %q, want zac-vanilla>zac", d.Compiler)
		}
	}
}

// TestSeededSanityViolation pushes a fidelity term outside [0,1].
func TestSeededSanityViolation(t *testing.T) {
	stub := &stubCompiler{
		inner: mustGet(t, "zac"), name: "stub-sane",
		corrupt: func(res *core.Result, _ int) { res.Breakdown.Total = 1.5 },
	}
	o := NewWith([]compiler.Compiler{stub}, Options{})
	divs, err := o.Check(context.Background(), genCircuit(t, "ising:n=10,layers=2"), "seeded-sane")
	if err != nil {
		t.Fatal(err)
	}
	if !classes(divs)[ClassSanity] {
		t.Fatalf("seeded sanity violation not detected: %v", divs)
	}
}

// TestSeededCompileViolation makes one compiler reject everything another
// accepts.
func TestSeededCompileViolation(t *testing.T) {
	o := NewWith([]compiler.Compiler{mustGet(t, "zac"), failCompiler{}}, Options{})
	divs, err := o.Check(context.Background(), genCircuit(t, "rb:n=6,depth=4,seed=7"), "seeded-compile")
	if err != nil {
		t.Fatal(err)
	}
	if !classes(divs)[ClassCompile] {
		t.Fatalf("seeded compile disagreement not detected: %v", divs)
	}
	for _, d := range divs {
		if d.Class == ClassCompile && !strings.Contains(d.Detail, "zac accepted") {
			t.Errorf("detail %q does not name the witness", d.Detail)
		}
	}
}

// failCompiler rejects every input.
type failCompiler struct{}

func (failCompiler) Name() string { return "stub-fail" }
func (failCompiler) Compile(context.Context, *circuit.Staged, *arch.Architecture, compiler.Options) (*core.Result, error) {
	return nil, context.DeadlineExceeded
}

// TestPanickingCompilerIsContained: a compiler that panics must surface as
// a compile-outcome divergence, not kill the process.
func TestPanickingCompilerIsContained(t *testing.T) {
	o := NewWith([]compiler.Compiler{mustGet(t, "zac"), panicCompiler{}}, Options{NoShrink: true})
	divs, err := o.Check(context.Background(), genCircuit(t, "rb:n=6,depth=4,seed=7"), "seeded-panic")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range divs {
		if d.Class == ClassCompile && d.Compiler == "stub-panic" {
			found = true
			if !strings.Contains(d.Detail, "panicked") {
				t.Errorf("detail %q does not mention the panic", d.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("panicking compiler not reported: %v", divs)
	}
}

type panicCompiler struct{}

func (panicCompiler) Name() string { return "stub-panic" }
func (panicCompiler) Compile(context.Context, *circuit.Staged, *arch.Architecture, compiler.Options) (*core.Result, error) {
	panic("stub-panic always panics")
}
