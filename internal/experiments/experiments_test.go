package experiments

import (
	"strings"
	"testing"
)

// fast is a minimal subset that exercises every experiment path quickly.
var fast = []string{"bv_n14", "ghz_n23"}

func TestRegistryComplete(t *testing.T) {
	want := []string{"advreuse", "compilers", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig1c", "fig8", "fig9", "forge", "ftqc", "multizone", "nativeccz",
		"sweep", "table1", "table2", "workloads", "zair"}
	got := Registry()
	if len(got) != len(want) {
		t.Fatalf("registry %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadCircuit(t *testing.T) {
	if _, err := Run("fig8", []string{"nope"}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestTable1(t *testing.T) {
	tabs, err := Run("table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 3 {
		t.Fatalf("table1 shape: %+v", tabs)
	}
	if tabs[0].Rows[0].Values["f2"] != 0.995 {
		t.Error("neutral atom f2 wrong")
	}
}

func TestFig8Shape(t *testing.T) {
	tabs, err := Run("fig8", fast)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 2 || len(tab.Columns) != 6 {
		t.Fatalf("fig8 shape: %d rows %d cols", len(tab.Rows), len(tab.Columns))
	}
	for _, r := range tab.Rows {
		zac := r.Values[ColZAC]
		if zac <= 0 || zac > 1 {
			t.Fatalf("%s: ZAC fidelity %v", r.Circuit, zac)
		}
		// The headline result: ZAC beats every neutral-atom baseline. (SC is
		// exempt — our near-path layout lets SC win pure chain circuits, a
		// documented deviation in EXPERIMENTS.md.)
		for _, col := range []string{ColAtomique, ColEnola, ColNALAC} {
			if r.Values[col] > zac {
				t.Errorf("%s: %s (%v) beats ZAC (%v)", r.Circuit, col, r.Values[col], zac)
			}
		}
	}
}

func TestFig9ThreeTables(t *testing.T) {
	tabs, err := Run("fig9", fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("fig9 tables = %d", len(tabs))
	}
	// Atomique never transfers atoms: its transfer fidelity is exactly 1.
	for _, r := range tabs[1].Rows {
		if r.Values[ColAtomique] != 1 {
			t.Errorf("%s: atomique transfer fidelity %v", r.Circuit, r.Values[ColAtomique])
		}
	}
	// ZAC's 2Q-combined must beat Enola's (no excitation).
	for _, r := range tabs[0].Rows {
		if r.Values[ColZAC] < r.Values[ColEnola] {
			t.Errorf("%s: ZAC 2Q %v below Enola %v", r.Circuit, r.Values[ColZAC], r.Values[ColEnola])
		}
	}
}

func TestFig11Ordering(t *testing.T) {
	tabs, err := Run("fig11", fast)
	if err != nil {
		t.Fatal(err)
	}
	g := tabs[0].GeoMeanRow().Values
	if g["dynPlace+reuse"] < g["dynPlace"] {
		t.Errorf("reuse should help: %v vs %v", g["dynPlace+reuse"], g["dynPlace"])
	}
}

func TestFig13Bounds(t *testing.T) {
	tabs, err := Run("fig13", fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tabs[0].Rows {
		zac := r.Values["ZAC"]
		pm := r.Values["PerfectMovement"]
		pp := r.Values["PerfectPlacement"]
		pr := r.Values["PerfectReuse"]
		if !(zac <= pm+1e-9 && pm <= pp+1e-9 && pp <= pr+1e-9) {
			t.Errorf("%s: bound ordering violated: %v ≤ %v ≤ %v ≤ %v",
				r.Circuit, zac, pm, pp, pr)
		}
	}
}

func TestFig14Monotone(t *testing.T) {
	tabs, err := Run("fig14", []string{"ising_n42"})
	if err != nil {
		t.Fatal(err)
	}
	r := tabs[0].Rows[0].Values
	if r["2AOD"] < r["1AOD"]-1e-9 {
		t.Errorf("second AOD hurt fidelity: %v vs %v", r["2AOD"], r["1AOD"])
	}
}

func TestMultiZone(t *testing.T) {
	tabs, err := Run("multizone", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The second zone must not hurt (paper: it helps by 15%).
	if rows[1].Values["fidelity"] < rows[0].Values["fidelity"]-1e-6 {
		t.Errorf("two zones (%v) below one zone (%v)",
			rows[1].Values["fidelity"], rows[0].Values["fidelity"])
	}
}

func TestZAIRStats(t *testing.T) {
	tabs, err := Run("zair", fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tabs[0].Rows {
		if r.Values["zairPerGate"] <= 0 || r.Values["machinePerGate"] < r.Values["zairPerGate"] {
			t.Errorf("%s: densities %v / %v", r.Circuit, r.Values["zairPerGate"], r.Values["machinePerGate"])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("x", map[string]float64{"a": 0.5, "b": 2})
	tab.AddRow("y", map[string]float64{"a": 0.25})
	out := tab.Render()
	if !strings.Contains(out, "=== T ===") || !strings.Contains(out, "GMean") {
		t.Errorf("render:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "circuit,a,b\n") {
		t.Errorf("csv:\n%s", csv)
	}
	if !strings.Contains(csv, "x,0.5,2") {
		t.Errorf("csv row missing:\n%s", csv)
	}
}

func TestGeoMeanRow(t *testing.T) {
	tab := &Table{Columns: []string{"c"}}
	tab.AddRow("a", map[string]float64{"c": 4})
	tab.AddRow("b", map[string]float64{"c": 1})
	g := tab.GeoMeanRow()
	if g.Values["c"] < 1.99 || g.Values["c"] > 2.01 {
		t.Errorf("geomean = %v", g.Values["c"])
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5000"},
		{2.25, "2.250"},
		{1e-7, "1.000e-07"},
	} {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
