package experiments

import (
	"context"
	"fmt"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/ftqc"
	"zac/internal/workload"
)

// Column names shared with the paper's legends.
const (
	ColSCHeron  = "SC-Heron"
	ColSCGrid   = "SC-Grid"
	ColAtomique = "Mono-Atomique"
	ColEnola    = "Mono-Enola"
	ColNALAC    = "Zoned-NALAC"
	ColZAC      = "Zoned-ZAC"
)

// naCols are the four neutral-atom compiler columns in the paper's order.
var naCols = []string{ColAtomique, ColEnola, ColNALAC, ColZAC}

// suite resolves a benchmark subset (nil = the full 17-circuit suite).
// Entries that name a workload-forge spec (e.g. "rb:n=32,depth=20,seed=7" or
// "spec:shuffle") resolve through the generator registry, so every
// experiment accepts generated circuits alongside the static suite.
func suite(subset []string) ([]bench.Benchmark, error) {
	if len(subset) == 0 {
		return bench.All(), nil
	}
	var out []bench.Benchmark
	for _, name := range subset {
		if workload.IsSpec(name) {
			b, err := forgeBenchmark(name)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
			continue
		}
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// benchCols runs one pool task per (benchmark, compiler column) pair and
// returns results[benchIdx][col], assembled in input order.
func benchCols(ctx context.Context, cfg Config, exp string, benches []bench.Benchmark, cols []string) ([]map[string]naResult, error) {
	flat, err := mapRows(ctx, cfg, len(benches)*len(cols), func(k int) (naResult, error) {
		b, col := benches[k/len(cols)], cols[k%len(cols)]
		r, err := evalCol(ctx, cfg, col, b)
		if err != nil {
			return naResult{}, err
		}
		cfg.progressf("%s: %s/%s", exp, b.Name, col)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]map[string]naResult, len(benches))
	for i := range benches {
		out[i] = map[string]naResult{}
		for j, col := range cols {
			out[i][col] = flat[i*len(cols)+j]
		}
	}
	return out, nil
}

// Table1 prints the hardware parameters (paper Table I).
func Table1(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	t := &Table{
		Title:   "Table I: hardware parameters",
		Columns: []string{"f2", "f1", "T1q(us)", "T2q(us)", "T2(us)"},
	}
	add := func(name string, p fidelity.Params) {
		t.AddRow(name, map[string]float64{
			"f2": p.F2, "f1": p.F1, "T1q(us)": p.T1Q, "T2q(us)": p.T2Q, "T2(us)": p.T2,
		})
	}
	add("NeutralAtom", fidelity.NeutralAtom())
	add("SC-Heron", fidelity.SCHeron())
	add("SC-Grid", fidelity.SCGrid())
	t.Notes = append(t.Notes,
		"neutral atom extras: fexc=0.9975 ftran=0.999 Ttran=15us (paper §VII-B)")
	return []*Table{t}, nil
}

// Fig1c reproduces the monolithic fidelity breakdown of Fig. 1c: the
// excitation of idle qubits dominates even with optimal Rydberg exposures.
func Fig1c(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 1c: monolithic (Enola) fidelity breakdown",
		Columns: []string{"2Q-pure", "excitation", "transfer", "decoherence", "1Q", "total"},
	}
	mono := arch.Monolithic()
	rows, err := mapRows(ctx, cfg, len(benches), func(i int) (fidelity.Breakdown, error) {
		r, err := evalCompilerOn(ctx, cfg, "enola", benches[i], mono, mono)
		if err != nil {
			return fidelity.Breakdown{}, err
		}
		cfg.progressf("fig1c: %s", benches[i].Name)
		return r.breakdown, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.AddRow(b.Name, map[string]float64{
			"2Q-pure":     rows[i].TwoQ,
			"excitation":  rows[i].Excite,
			"transfer":    rows[i].Transfer,
			"decoherence": rows[i].Decohere,
			"1Q":          rows[i].OneQ,
			"total":       rows[i].Total,
		})
	}
	t.Notes = append(t.Notes, "side-effect (excitation) noise should dominate — compare columns")
	return []*Table{t}, nil
}

// Fig8 reproduces the six-way architecture comparison.
func Fig8(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	cols := []string{ColSCHeron, ColSCGrid, ColAtomique, ColEnola, ColNALAC, ColZAC}
	t := &Table{
		Title:   "Fig 8: circuit fidelity across architectures",
		Columns: cols,
	}
	res, err := benchCols(ctx, cfg, "fig8", benches, cols)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := map[string]float64{}
		for col, v := range res[i] {
			row[col] = v.breakdown.Total
		}
		t.AddRow(fmt.Sprintf("%s(%d,%d)", b.Name, b.Paper2Q, b.Paper1Q), row)
	}
	return []*Table{t}, nil
}

// Fig9 reproduces the fidelity breakdown comparison for the four
// neutral-atom compilers: 2Q gates (including excitation), atom transfer,
// and decoherence.
func Fig9(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	twoQ := &Table{Title: "Fig 9a: 2Q-gate fidelity (incl. excitation)", Columns: naCols}
	tran := &Table{Title: "Fig 9b: atom-transfer fidelity", Columns: naCols}
	deco := &Table{Title: "Fig 9c: decoherence fidelity", Columns: naCols}
	res, err := benchCols(ctx, cfg, "fig9", benches, naCols)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		r2, rt, rd := map[string]float64{}, map[string]float64{}, map[string]float64{}
		for col, v := range res[i] {
			r2[col] = v.breakdown.TwoQCombined()
			rt[col] = v.breakdown.Transfer
			rd[col] = v.breakdown.Decohere
		}
		twoQ.AddRow(b.Name, r2)
		tran.AddRow(b.Name, rt)
		deco.AddRow(b.Name, rd)
	}
	return []*Table{twoQ, tran, deco}, nil
}

// Fig10 reproduces the circuit-duration comparison (milliseconds).
func Fig10(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 10: circuit duration (ms)",
		Columns: naCols,
	}
	res, err := benchCols(ctx, cfg, "fig10", benches, naCols)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := map[string]float64{}
		for col, v := range res[i] {
			row[col] = v.duration / 1000
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// Table2 reproduces the fidelity breakdown and average duration for the
// superconducting grid architecture and ZAC.
func Table2(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	zoned := arch.Reference()

	type pair struct {
		zac *core.Result
		sc  naResult
	}
	pairs, err := mapRows(ctx, cfg, len(benches), func(i int) (pair, error) {
		zr, err := cachedZAC(ctx, cfg, benches[i], zoned, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return pair{}, err
		}
		gr, err := evalCompiler(ctx, cfg, "sc-grid", benches[i])
		if err != nil {
			return pair{}, err
		}
		cfg.progressf("table2: %s", benches[i].Name)
		return pair{zr, gr}, nil
	})
	if err != nil {
		return nil, err
	}

	type agg struct {
		twoQ, oneQ, tran, deco, total []float64
		dur                           float64
	}
	var scA, zacA agg
	for _, p := range pairs {
		zacA.twoQ = append(zacA.twoQ, p.zac.Breakdown.TwoQCombined())
		zacA.oneQ = append(zacA.oneQ, p.zac.Breakdown.OneQ)
		zacA.tran = append(zacA.tran, p.zac.Breakdown.Transfer)
		zacA.deco = append(zacA.deco, p.zac.Breakdown.Decohere)
		zacA.total = append(zacA.total, p.zac.Breakdown.Total)
		zacA.dur += p.zac.Duration

		scA.twoQ = append(scA.twoQ, p.sc.breakdown.TwoQ)
		scA.oneQ = append(scA.oneQ, p.sc.breakdown.OneQ)
		scA.deco = append(scA.deco, p.sc.breakdown.Decohere)
		scA.total = append(scA.total, p.sc.breakdown.Total)
		scA.dur += p.sc.duration
	}
	n := float64(len(benches))
	t := &Table{
		Title:   "Table II: fidelity breakdown and average circuit duration",
		Columns: []string{"2Qgate", "1Qgate", "Transfer", "Decohere", "Total", "AvgDur(us)"},
	}
	t.AddRow("SC-Grid", map[string]float64{
		"2Qgate": fidelity.GeoMean(scA.twoQ), "1Qgate": fidelity.GeoMean(scA.oneQ),
		"Decohere": fidelity.GeoMean(scA.deco), "Total": fidelity.GeoMean(scA.total),
		"AvgDur(us)": scA.dur / n,
	})
	t.AddRow("ZAC", map[string]float64{
		"2Qgate": fidelity.GeoMean(zacA.twoQ), "1Qgate": fidelity.GeoMean(zacA.oneQ),
		"Transfer": fidelity.GeoMean(zacA.tran), "Decohere": fidelity.GeoMean(zacA.deco),
		"Total": fidelity.GeoMean(zacA.total), "AvgDur(us)": zacA.dur / n,
	})
	return []*Table{t}, nil
}

// ablationSettings are the four compiler presets of the paper's Fig. 11/12.
var ablationSettings = []string{core.SettingVanilla, core.SettingDynPlace, core.SettingDynPlaceReuse, core.SettingSADynPlaceReuse}

// Fig11 reproduces the ablation study over the four compiler settings.
func Fig11(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Fig 11: ZAC technique ablation (fidelity)", Columns: ablationSettings}
	a := arch.Reference()
	vals, err := mapRows(ctx, cfg, len(benches)*len(ablationSettings), func(k int) (float64, error) {
		b, s := benches[k/len(ablationSettings)], ablationSettings[k%len(ablationSettings)]
		r, err := cachedZAC(ctx, cfg, b, a, s, core.OptionsFor(s))
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", b.Name, s, err)
		}
		cfg.progressf("fig11: %s/%s", b.Name, s)
		return r.Breakdown.Total, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := map[string]float64{}
		for j, s := range ablationSettings {
			row[s] = vals[i*len(ablationSettings)+j]
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// Fig12 reproduces the compilation time vs fidelity trade-off: average
// compile seconds and geomean fidelity per compiler/setting. Because the
// figure reports wall-clock compile time, every cell bypasses the
// compilation cache — a cached entry's timestamp would reflect whichever
// experiment happened to populate it, making the column depend on run
// order and cache state.
func Fig12(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	cfg.NoCache = true
	a := arch.Reference()
	t := &Table{
		Title:   "Fig 12: compilation time vs fidelity",
		Columns: []string{"time(s)", "fidelity"},
	}
	// Row configurations: the four ZAC settings, then the three NA baselines.
	type rowCfg struct {
		label   string
		setting string // non-empty for ZAC rows
		col     string // non-empty for baseline rows
	}
	var rcs []rowCfg
	for _, s := range ablationSettings {
		rcs = append(rcs, rowCfg{label: "ZAC-" + s, setting: s})
	}
	for _, col := range []string{ColAtomique, ColEnola, ColNALAC} {
		rcs = append(rcs, rowCfg{label: col, col: col})
	}
	type cell struct {
		secs float64
		fid  float64
	}
	cells, err := mapRows(ctx, cfg, len(rcs)*len(benches), func(k int) (cell, error) {
		rc, b := rcs[k/len(benches)], benches[k%len(benches)]
		if rc.setting != "" {
			r, err := cachedZAC(ctx, cfg, b, a, rc.setting, core.OptionsFor(rc.setting))
			if err != nil {
				return cell{}, err
			}
			cfg.progressf("fig12: %s/%s", b.Name, rc.label)
			return cell{r.CompileTime.Seconds(), r.Breakdown.Total}, nil
		}
		r, err := evalCol(ctx, cfg, rc.col, b)
		if err != nil {
			return cell{}, err
		}
		cfg.progressf("fig12: %s/%s", b.Name, rc.label)
		return cell{r.compile.Seconds(), r.breakdown.Total}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rc := range rcs {
		var secs float64
		var fids []float64
		for j := range benches {
			c := cells[i*len(benches)+j]
			secs += c.secs
			fids = append(fids, c.fid)
		}
		t.AddRow(rc.label, map[string]float64{
			"time(s)": secs / float64(len(benches)), "fidelity": fidelity.GeoMean(fids),
		})
	}
	t.Notes = append(t.Notes,
		"compile times are wall-clock; run with -parallel 1 for contention-free timing")
	return []*Table{t}, nil
}

// Fig13 reproduces the optimality study: ZAC against the perfect-movement,
// perfect-placement and perfect-reuse upper bounds.
func Fig13(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	t := &Table{
		Title:   "Fig 13: optimality analysis (fidelity)",
		Columns: []string{"PerfectReuse", "PerfectPlacement", "PerfectMovement", "ZAC"},
	}
	rows, err := mapRows(ctx, cfg, len(benches), func(i int) (map[string]float64, error) {
		b := benches[i]
		staged, err := cachedStaged(cfg, b, a)
		if err != nil {
			return nil, err
		}
		r, err := cachedZAC(ctx, cfg, b, a, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return nil, err
		}
		plan := r.Plan
		if plan == nil {
			// The result came back from the disk tier, which persists only
			// the core.Snapshot subset; rebuild the (deterministic) plan.
			plan, err = cachedPlan(ctx, cfg, b, a)
			if err != nil {
				return nil, err
			}
		}
		cfg.progressf("fig13: %s", b.Name)
		return map[string]float64{
			"PerfectReuse":     core.PerfectReuse(a, staged, plan).Total,
			"PerfectPlacement": core.PerfectPlacement(a, staged, plan).Total,
			"PerfectMovement":  core.PerfectMovement(a, staged, plan).Total,
			"ZAC":              r.Breakdown.Total,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.AddRow(b.Name, rows[i])
	}
	return []*Table{t}, nil
}

// Fig14 reproduces the multi-AOD study (1–4 AODs).
func Fig14(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 14: fidelity vs AOD count",
		Columns: []string{"1AOD", "2AOD", "3AOD", "4AOD"},
	}
	const nAODs = 4
	vals, err := mapRows(ctx, cfg, len(benches)*nAODs, func(k int) (float64, error) {
		b, n := benches[k/nAODs], k%nAODs+1
		a := arch.WithAODs(arch.Reference(), n)
		r, err := cachedZAC(ctx, cfg, b, a, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return 0, err
		}
		cfg.progressf("fig14: %s/%dAOD", b.Name, n)
		return r.Breakdown.Total, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := map[string]float64{}
		for n := 1; n <= nAODs; n++ {
			row[fmt.Sprintf("%dAOD", n)] = vals[i*nAODs+n-1]
		}
		t.AddRow(b.Name, row)
	}
	return []*Table{t}, nil
}

// MultiZone reproduces §VII-H: ising_n98 on Arch1 (one 6×10 zone) vs Arch2
// (two 3×10 zones flanking the storage zone).
func MultiZone(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	b, err := bench.ByName("ising_n98")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Sec VII-H: multiple entanglement zones (ising_n98)",
		Columns: []string{"fidelity", "duration(ms)"},
	}
	cases := []struct {
		name string
		a    *arch.Architecture
	}{
		{"Arch1-1zone", arch.Arch1Small()},
		{"Arch2-2zones", arch.Arch2TwoZones()},
	}
	rows, err := mapRows(ctx, cfg, len(cases), func(i int) (map[string]float64, error) {
		tc := cases[i]
		r, err := cachedZAC(ctx, cfg, b, tc.a, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		cfg.progressf("multizone: %s", tc.name)
		return map[string]float64{
			"fidelity": r.Breakdown.Total, "duration(ms)": r.Duration / 1000,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		t.AddRow(tc.name, rows[i])
	}
	t.Notes = append(t.Notes, "paper: Arch1 fidelity 0.041 / 23.25ms; Arch2 0.047 (+15%) / 21.63ms (−8%)")
	return []*Table{t}, nil
}

// FTQC reproduces §VIII: the 128-block hIQP compilation.
func FTQC(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	res, err := cached(cfg, "ftqc|hiqp128", func() (*ftqc.Result, error) {
		return ftqc.Compile(ftqc.ScaledUp(), arch.Logical832())
	})
	if err != nil {
		return nil, err
	}
	cfg.progressf("ftqc: hIQP-128")
	t := &Table{
		Title:   "Sec VIII: hIQP on [[8,3,2]] blocks (logical-level ZAC)",
		Columns: []string{"blocks", "logicalQubits", "transversalGates", "rydbergStages", "duration(ms)"},
	}
	t.AddRow("hIQP-128", map[string]float64{
		"blocks":           float64(res.Spec.NumBlocks),
		"logicalQubits":    float64(res.Spec.NumLogicalQubits()),
		"transversalGates": float64(res.TransversalGates),
		"rydbergStages":    float64(res.NumRydbergStages),
		"duration(ms)":     res.DurationMS,
	})
	t.Notes = append(t.Notes, "paper: 35 Rydberg stages, 117.847 ms physical duration")
	return []*Table{t}, nil
}

// ZAIRStats reproduces the §IX instruction-density metrics: ZAIR
// instructions per gate and machine instructions per gate.
func ZAIRStats(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	t := &Table{
		Title:   "Sec IX: ZAIR instruction density",
		Columns: []string{"zairPerGate", "machinePerGate"},
	}
	rows, err := mapRows(ctx, cfg, len(benches), func(i int) (map[string]float64, error) {
		b := benches[i]
		staged, err := cachedStaged(cfg, b, a)
		if err != nil {
			return nil, err
		}
		r, err := cachedZAC(ctx, cfg, b, a, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return nil, err
		}
		one, two := staged.GateCounts()
		gates := float64(one + two)
		stats := r.Program.CountStats()
		cfg.progressf("zair: %s", b.Name)
		return map[string]float64{
			"zairPerGate":    float64(r.Program.NumZAIRInstructions()) / gates,
			"machinePerGate": float64(stats.MachineInsts) / gates,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.AddRow(b.Name, rows[i])
	}
	t.Notes = append(t.Notes, "paper geomeans: 0.85 ZAIR inst/gate, 1.77 machine inst/gate")
	return []*Table{t}, nil
}
