# Development entry points. `make check` is what CI enforces on every PR.

GO ?= go

.PHONY: check vet doclint build test race bench serve-smoke

check: vet doclint build race

vet:
	$(GO) vet ./...

# Documentation gate: every package needs a package doc comment, and every
# exported identifier in the engine and serve packages needs its own.
doclint:
	$(GO) run ./cmd/zac-doclint -exported internal/engine,internal/serve ./internal ./cmd ./examples

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkSuite(Sequential|Parallel)' -benchtime 2x .

# Boot zac-serve against a throwaway cache dir, probe /healthz, compile one
# circuit, and check /metrics — the same smoke CI runs.
serve-smoke:
	./scripts/serve-smoke.sh
