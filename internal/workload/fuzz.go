package workload

import (
	"context"
	"fmt"
	"math"

	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/qasm"
	"zac/internal/resynth"
	"zac/internal/sim"
	"zac/internal/zair"
)

// FuzzOptions configures a round-trip run. The zero value checks every
// registry compiler, simulates circuits up to 10 qubits, and shrinks
// failures with a 150-compile budget.
type FuzzOptions struct {
	// Compilers names the registry compilers to round-trip through; empty
	// selects the whole registry.
	Compilers []string
	// SimMax caps statevector equivalence checks (qubits; ≤ 0 selects 10).
	SimMax int
	// NoShrink disables greedy minimization of failing inputs.
	NoShrink bool
	// MaxShrinkChecks bounds the predicate evaluations (each one a full
	// compile) spent minimizing one failure (≤ 0 selects 150).
	MaxShrinkChecks int
}

func (o FuzzOptions) simMax() int {
	if o.SimMax <= 0 {
		return 10
	}
	return o.SimMax
}

func (o FuzzOptions) maxShrinkChecks() int {
	if o.MaxShrinkChecks <= 0 {
		return 150
	}
	return o.MaxShrinkChecks
}

func (o FuzzOptions) compilers() ([]compiler.Compiler, error) {
	names := o.Compilers
	if len(names) == 0 {
		names = compiler.Names()
	}
	out := make([]compiler.Compiler, 0, len(names))
	for _, n := range names {
		c, err := compiler.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Failure is one invariant violation found by the round-trip harness,
// carrying the greedily minimized reproduction.
type Failure struct {
	// Spec is the canonical workload spec that produced the input.
	Spec string
	// Stage identifies the failing check: "generate", "qasm", "resynth", or
	// a registry compiler name.
	Stage string
	// Err is the violation.
	Err error
	// Reduced is the smallest known failing circuit: greedily minimized
	// when shrinking ran, the original input with NoShrink, nil only when
	// no circuit was generated at all (stage "generate").
	Reduced *circuit.Circuit
	// QASM is the OpenQASM source of the smallest known failing input.
	QASM string
}

// String renders the failure as a self-contained repro report.
func (f Failure) String() string {
	out := fmt.Sprintf("spec %s: stage %s: %v", f.Spec, f.Stage, f.Err)
	if f.QASM != "" {
		out += "\nminimized repro:\n" + f.QASM
	}
	return out
}

// RoundTrip runs the full generate → emit/parse → compile → verify loop for
// one spec: the circuit is built, round-tripped through the QASM
// writer/parser, preprocessed and semantically checked against a statevector
// simulation (small widths), then compiled through every selected registry
// compiler with invariant verification — ZAIR replay (qubit conservation, no
// AOD conflicts, tone ordering), gate-set legality of the staged program,
// and fidelity sanity. Each failing check is greedily shrunk to a minimal
// reproducing circuit before being reported. The returned error is non-nil
// only for harness-level problems (unknown compiler, context cancellation) —
// invariant violations come back as Failures.
func RoundTrip(ctx context.Context, spec string, opts FuzzOptions) ([]Failure, error) {
	comps, err := opts.compilers()
	if err != nil {
		return nil, err
	}
	parsed, err := Parse(spec)
	if err != nil {
		return []Failure{{Spec: spec, Stage: "generate", Err: err}}, nil
	}
	canon := parsed.Canonical()
	c, err := parsed.Generate()
	if err != nil {
		return []Failure{{Spec: canon, Stage: "generate", Err: err}}, nil
	}

	var failures []Failure
	report := func(stage string, rawCheck func(*circuit.Circuit) error) error {
		check := contained(rawCheck)
		err := check(c)
		if err == nil {
			return nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		f := Failure{Spec: canon, Stage: stage, Err: err, Reduced: c, QASM: qasm.Write(c)}
		if !opts.NoShrink {
			f.Reduced = Shrink(c, func(cand *circuit.Circuit) bool {
				return ctx.Err() == nil && check(cand) != nil
			}, opts.maxShrinkChecks())
			// Re-derive the violation from the minimized input for the
			// report — but never let a cancellation that raced the shrink
			// replace the genuine invariant error already in hand.
			if e := check(f.Reduced); e != nil && ctx.Err() == nil {
				f.Err = e
			}
			f.QASM = qasm.Write(f.Reduced)
		}
		failures = append(failures, f)
		return nil
	}

	if err := report("qasm", checkQASM(opts)); err != nil {
		return failures, err
	}
	if err := report("resynth", checkResynth(opts)); err != nil {
		return failures, err
	}
	for _, comp := range comps {
		if err := report(comp.Name(), checkCompile(ctx, comp)); err != nil {
			return failures, err
		}
	}
	return failures, nil
}

// contained wraps a check so a panic anywhere inside it — the compilers are
// being fed adversarial inputs, and e.g. circuit.NewGate panics by contract
// on malformed gates — surfaces as an ordinary violation instead of killing
// the whole fuzz run. The panic stays shrinkable like any other failure.
func contained(check func(*circuit.Circuit) error) func(*circuit.Circuit) error {
	return func(c *circuit.Circuit) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("check panicked: %v", r)
			}
		}()
		return check(c)
	}
}

// checkQASM verifies that the QASM writer and parser agree on the circuit:
// the emission parses, preserves shape, and (at simulable widths) preserves
// semantics up to global phase.
func checkQASM(opts FuzzOptions) func(*circuit.Circuit) error {
	return func(c *circuit.Circuit) error {
		src := qasm.Write(c)
		back, err := qasm.Parse(src)
		if err != nil {
			return fmt.Errorf("emitted QASM does not parse: %w", err)
		}
		if back.NumQubits != c.NumQubits {
			return fmt.Errorf("round trip changed width: %d → %d", c.NumQubits, back.NumQubits)
		}
		unitary := 0
		for _, g := range c.Gates {
			if g.Kind != circuit.Measure && g.Kind != circuit.Barrier {
				unitary++
			}
		}
		if len(back.Gates) < unitary {
			return fmt.Errorf("round trip dropped gates: %d → %d", unitary, len(back.Gates))
		}
		if c.NumQubits <= opts.simMax() {
			sa, err := sim.Run(c)
			if err != nil {
				return fmt.Errorf("simulating original: %w", err)
			}
			sb, err := sim.Run(back)
			if err != nil {
				return fmt.Errorf("simulating round trip: %w", err)
			}
			if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
				return fmt.Errorf("round trip changed semantics: fidelity %g", f)
			}
		}
		return nil
	}
}

// checkResynth verifies the preprocessing pass: the staged program validates
// (gate-set legality: only U3/CZ(CCZ) in well-formed disjoint stages) and,
// at simulable widths, is semantically equivalent to the input.
func checkResynth(opts FuzzOptions) func(*circuit.Circuit) error {
	return func(c *circuit.Circuit) error {
		staged, err := resynth.Preprocess(c)
		if err != nil {
			return fmt.Errorf("preprocess: %w", err)
		}
		if err := staged.Validate(); err != nil {
			return fmt.Errorf("staged program invalid: %w", err)
		}
		if c.NumQubits <= opts.simMax() {
			sa, err := sim.Run(c)
			if err != nil {
				return fmt.Errorf("simulating original: %w", err)
			}
			sb, err := sim.Run(staged.Flatten())
			if err != nil {
				return fmt.Errorf("simulating staged: %w", err)
			}
			if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
				return fmt.Errorf("resynthesis changed semantics: fidelity %g", f)
			}
		}
		return nil
	}
}

// checkCompile compiles the circuit with one registry compiler under the
// registry-wide shaping rule and verifies the result's invariants.
func checkCompile(ctx context.Context, comp compiler.Compiler) func(*circuit.Circuit) error {
	return func(c *circuit.Circuit) error {
		staged, err := resynth.Preprocess(c)
		if err != nil {
			return fmt.Errorf("preprocess: %w", err)
		}
		staged = circuit.SplitRydbergStages(staged, compiler.StageSplitCap(comp))
		if err := staged.Validate(); err != nil {
			return fmt.Errorf("split staging invalid: %w", err)
		}
		a := compiler.TargetArch(comp)
		res, err := comp.Compile(ctx, staged, a, compiler.Options{})
		if err != nil {
			return fmt.Errorf("compile: %w", err)
		}
		if err := checkFidelitySanity(res.Breakdown.Total, "total"); err != nil {
			return err
		}
		for name, v := range map[string]float64{
			"1Q": res.Breakdown.OneQ, "2Q": res.Breakdown.TwoQ,
			"excite": res.Breakdown.Excite, "transfer": res.Breakdown.Transfer,
			"decohere": res.Breakdown.Decohere,
		} {
			if err := checkFidelitySanity(v, name); err != nil {
				return err
			}
		}
		if res.Duration < 0 || math.IsNaN(res.Duration) || math.IsInf(res.Duration, 0) {
			return fmt.Errorf("negative or non-finite duration %g", res.Duration)
		}
		if res.NumRydbergStages < 0 || res.TotalMoves < 0 || res.ReusedGates < 0 {
			return fmt.Errorf("negative counters: stages=%d moves=%d reused=%d",
				res.NumRydbergStages, res.TotalMoves, res.ReusedGates)
		}
		if len(res.Program.Instructions) > 0 {
			v := &zair.Verifier{Resolve: a.ResolveTrap}
			if err := v.Verify(res.Program); err != nil {
				return err
			}
			// Qubit conservation over the whole program: every qubit ends in
			// exactly one trap (Verify already pins init and per-job
			// consistency; this closes the loop end to end).
			final := zair.FinalPositions(res.Program)
			if len(final) != res.Program.NumQubits {
				return fmt.Errorf("qubit conservation: %d of %d qubits have final positions",
					len(final), res.Program.NumQubits)
			}
			traps := map[[3]int]int{}
			for q, l := range final {
				key := [3]int{l.A, l.R, l.C}
				if prev, taken := traps[key]; taken {
					return fmt.Errorf("qubit conservation: qubits %d and %d end in the same trap %v", prev, q, key)
				}
				traps[key] = q
			}
		}
		return nil
	}
}

// checkFidelitySanity rejects fidelity terms outside [0,1] or non-finite.
func checkFidelitySanity(v float64, name string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1+1e-12 {
		return fmt.Errorf("fidelity sanity: %s term %g outside [0,1]", name, v)
	}
	return nil
}

// Shrink greedily minimizes a failing circuit: ever-smaller gate chunks are
// removed while the predicate keeps failing, then unused qubits are
// compacted away. fails must treat its argument as read-only; candidates
// that fail circuit.Validate are never offered. The predicate is invoked at
// most maxChecks times, so shrinking cost is bounded even when every check
// is a full compile.
func Shrink(c *circuit.Circuit, fails func(*circuit.Circuit) bool, maxChecks int) *circuit.Circuit {
	cur := c.Clone()
	checks := 0
	try := func(cand *circuit.Circuit) bool {
		if checks >= maxChecks || cand.Validate() != nil {
			return false
		}
		checks++
		return fails(cand)
	}
	size := len(cur.Gates)
	if size > 1 {
		size /= 2
	}
	for size >= 1 && checks < maxChecks {
		removedAny := false
		for start := 0; start < len(cur.Gates) && checks < maxChecks; {
			cand := withoutGates(cur, start, min(start+size, len(cur.Gates)))
			if try(cand) {
				cur = cand
				removedAny = true // same start: the next chunk shifted into place
			} else {
				start += size
			}
		}
		if size == 1 {
			if !removedAny {
				break
			}
			continue // another single-gate pass until a fixed point
		}
		size /= 2
	}
	if cand := compactQubits(cur); cand.NumQubits < cur.NumQubits && try(cand) {
		cur = cand
	}
	return cur
}

// withoutGates clones c minus the gate range [start, end).
func withoutGates(c *circuit.Circuit, start, end int) *circuit.Circuit {
	out := circuit.New(c.Name, c.NumQubits)
	out.Gates = make([]circuit.Gate, 0, len(c.Gates)-(end-start))
	out.Gates = append(out.Gates, c.Gates[:start]...)
	out.Gates = append(out.Gates, c.Gates[end:]...)
	return out
}

// compactQubits renumbers the qubits that actually appear in gates to a
// dense [0, k) range, dropping unused wires (width stays ≥ 1).
func compactQubits(c *circuit.Circuit) *circuit.Circuit {
	used := map[int]bool{}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	remap := map[int]int{}
	next := 0
	for q := 0; q < c.NumQubits; q++ {
		if used[q] {
			remap[q] = next
			next++
		}
	}
	if next == 0 {
		next = 1
	}
	out := circuit.New(c.Name, next)
	for _, g := range c.Gates {
		qs := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = remap[q]
		}
		out.Gates = append(out.Gates, circuit.Gate{Kind: g.Kind, Qubits: qs, Params: append([]float64(nil), g.Params...)})
	}
	return out
}

// RandomSpec draws a random spec: a uniform family and uniform parameter
// values over each parameter's fuzz range. The same RNG stream always draws
// the same spec sequence, so a fuzz run is reproducible from its base seed.
func RandomSpec(r *RNG) Spec {
	fams := Families()
	g, _ := Get(fams[r.Intn(len(fams))])
	v := Values{}
	for _, p := range g.Params() {
		lo, hi := p.FuzzMin, p.FuzzMax
		if hi <= lo {
			lo, hi = p.Min, p.Default*4
			if hi <= lo {
				hi = lo + 1
			}
		}
		v[p.Name] = lo + r.Int63n(hi-lo+1)
	}
	return Spec{Family: g.Family(), Values: v}
}

// SmokeSpecs are the pinned seeds the CI fuzz-smoke gate round-trips through
// every registry compiler (`make fuzz-smoke`). Widths stay at or below the
// default SimMax so the statevector equivalence checks all run.
func SmokeSpecs() []string {
	return []string{
		"clifford:n=10,gates=80,t=20,seed=7",
		"rb:n=8,depth=6,seed=7",
		"shuffle:n=10,depth=4,seed=7",
		"qaoa:n=10,p=2,seed=7",
		"ising:n=10,layers=2",
		"hiqp:logblocks=2,rounds=1",
	}
}
