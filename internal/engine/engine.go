// Package engine is the concurrency and caching substrate shared by the
// experiment harness, the CLIs, and the zac-serve HTTP service: a bounded,
// context-cancellable worker pool with first-error propagation (ForEach,
// Map) and a keyed single-flight compilation cache (Tiered) pairing an LRU
// in-memory front with an optional content-addressed, checksummed disk
// back tier (DiskCache) so results survive restarts and are shared across
// processes. Results are always assembled by input index, never by arrival
// order, so parallel runs produce byte-identical output to sequential
// ones.
package engine

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker count: values ≤ 0 select runtime.NumCPU().
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. The first error cancels the remaining work and is returned;
// fn is never called again after a failure is observed. With one worker the
// indices run in order on the calling goroutine, which makes workers == 1 an
// exact sequential execution.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) through ForEach and returns the
// results in input order. Each worker writes only its own index, so the
// result slice needs no locking.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
