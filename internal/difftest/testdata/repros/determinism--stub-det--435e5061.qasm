// difftest repro
// class: determinism
// compiler: stub-det
// input: seeded-det
// detail: repeat compile not byte-identical: 28602b8886cf vs 5b79b2b561c7
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cz q[0],q[1];
cz q[2],q[3];
