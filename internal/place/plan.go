package place

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/cover"
	"zac/internal/engine"
	"zac/internal/telemetry"
)

// Options selects the placement strategy; the four ablation settings of the
// paper's Fig. 11 correspond to:
//
//	Vanilla:            UseSA=false Dynamic=false Reuse=false
//	dynPlace:           UseSA=false Dynamic=true  Reuse=false
//	dynPlace+reuse:     UseSA=false Dynamic=true  Reuse=true
//	SA+dynPlace+reuse:  UseSA=true  Dynamic=true  Reuse=true  (full ZAC)
type Options struct {
	UseSA   bool
	Dynamic bool
	Reuse   bool
	// AdvancedReuse additionally keeps every qubit that the next Rydberg
	// stage needs inside the entanglement zone, moving it directly between
	// Rydberg sites instead of round-tripping through storage — the paper's
	// §X future-work optimization ("allowing movements within entanglement
	// zones for more advanced qubit reuse"). Implies Reuse.
	AdvancedReuse bool
	SAIterations  int     // default 1000 (paper §V-A)
	Expansion     int     // δ candidate-box half-width (default 2)
	KNeighbors    int     // k for return candidates (default 2)
	Alpha         float64 // lookahead weight α (default 0.1, Eq. 3)
	Seed          int64
	// SARestarts runs this many independent annealing chains for the initial
	// placement, chain i seeded with Seed+i, keeping the (cost, restart
	// index)-minimal result. The chains run concurrently under Workers, but
	// the winner is scheduling-independent; the default 1 reproduces the
	// single-chain bytes exactly. Unlike Workers, SARestarts changes the
	// produced plan, so it participates in plan identity.
	SARestarts int
	// Workers bounds the goroutines one BuildPlan may use across restart
	// chains and the per-stage parallel JV solves; non-positive selects all
	// cores. Workers only changes how fast a plan is computed, never its
	// bytes, so Canonical() strips it from plan identity.
	Workers int
}

// Default returns the full ZAC configuration.
func Default() Options {
	return Options{UseSA: true, Dynamic: true, Reuse: true,
		SAIterations: 1000, Expansion: 2, KNeighbors: 2, Alpha: 0.1, Seed: 1}
}

func (o *Options) fill() {
	if o.SAIterations <= 0 {
		o.SAIterations = 1000
	}
	if o.Expansion <= 0 {
		o.Expansion = 2
	}
	if o.KNeighbors <= 0 {
		o.KNeighbors = 2
	}
	if o.Alpha == 0 {
		o.Alpha = 0.1
	}
	if o.SARestarts <= 0 {
		o.SARestarts = 1
	}
	if o.Workers <= 0 {
		o.Workers = engine.Workers(0)
	}
}

// Canonical returns the options in the form cache keys must use: defaults
// filled, and the execution-only Workers knob zeroed. Two Options with equal
// Canonical() values produce byte-identical plans.
func (o Options) Canonical() Options {
	o.fill()
	o.Workers = 0
	return o
}

// Step is the placement outcome for one Rydberg stage: the gate→site
// assignment, which gates reuse their site from the previous stage, the
// movements into the entanglement zone before the stage, and the movements
// back to storage after it.
type Step struct {
	StageIdx int // index into Staged.Stages
	Gates    []circuit.Gate
	Sites    []arch.SiteRef
	Slots    [][]int // per gate: site slot of each of its qubits
	Reused   []bool
	MovesIn  []Move
	MovesOut []Move
}

// NumReused counts reused gates in the step.
func (s *Step) NumReused() int {
	n := 0
	for _, r := range s.Reused {
		if r {
			n++
		}
	}
	return n
}

// Plan is the complete placement of a staged circuit on an architecture.
type Plan struct {
	Arch      *arch.Architecture
	Staged    *circuit.Staged
	NumQubits int
	Initial   []arch.TrapRef
	Steps     []Step
}

// TotalMoves counts individual qubit movements across the plan.
func (p *Plan) TotalMoves() int {
	n := 0
	for _, s := range p.Steps {
		n += len(s.MovesIn) + len(s.MovesOut)
	}
	return n
}

// TotalReused counts reused gates across the plan.
func (p *Plan) TotalReused() int {
	n := 0
	for i := range p.Steps {
		n += p.Steps[i].NumReused()
	}
	return n
}

// planner carries the evolving placement state. Storage occupancy is a
// dense trap-ordinal table, and the two scratch sets let the reuse and
// no-reuse transition candidates be solved concurrently.
type planner struct {
	a       *arch.Architecture
	staged  *circuit.Staged
	opts    Options
	pos     []Pos          // current position per qubit
	home    []arch.TrapRef // last storage trap per qubit
	occ     []int          // trap ordinal → qubit, -1 = free
	scratch [2]*transitionScratch
	cov     *cover.Set // nil unless the context carries a collector
}

// BuildPlan runs the full placement pipeline (§V). The context is checked
// between stage transitions, so a cancelled compilation stops mid-plan;
// cancellation never alters the produced plan, only whether one is
// produced.
func BuildPlan(ctx context.Context, a *arch.Architecture, staged *circuit.Staged, opts Options) (*Plan, error) {
	opts.fill()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := staged.Validate(); err != nil {
		return nil, err
	}
	if staged.NumQubits > a.TotalStorageTraps() {
		return nil, fmt.Errorf("place: circuit needs %d qubits but architecture stores %d",
			staged.NumQubits, a.TotalStorageTraps())
	}

	cov := cover.From(ctx)
	var initial []arch.TrapRef
	var err error
	if opts.UseSA {
		cov.Hit("place:init:sa")
		if opts.SARestarts <= 1 {
			r := rand.New(rand.NewSource(opts.Seed))
			initial, err = SAInitial(a, staged, opts.SAIterations, r)
		} else {
			initial, err = saRestarts(ctx, a, staged, opts, cov)
		}
	} else {
		cov.Hit("place:init:trivial")
		initial, err = TrivialInitial(a, staged.NumQubits)
	}
	if err != nil {
		return nil, err
	}

	pl := &planner{
		a: a, staged: staged, opts: opts,
		pos:  make([]Pos, staged.NumQubits),
		home: append([]arch.TrapRef(nil), initial...),
		occ:  newOccupancy(a),
		cov:  cov,
	}
	pl.scratch[0] = newTransitionScratch(a, staged.NumQubits)
	pl.scratch[1] = newTransitionScratch(a, staged.NumQubits)
	pl.scratch[0].ctx, pl.scratch[1].ctx = ctx, ctx
	// When the reuse/no-reuse candidates race 2-way, each side gets half the
	// intra-solve budget so the total stays within opts.Workers.
	half := opts.Workers / 2
	if half < 1 {
		half = 1
	}
	for q, t := range initial {
		pl.pos[q] = StoragePos(t)
		pl.occ[a.TrapOrdinal(t)] = q
	}

	plan := &Plan{Arch: a, Staged: staged, NumQubits: staged.NumQubits, Initial: initial}
	ryd := staged.RydbergStages()
	for t, si := range ryd {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := staged.Stages[si].Gates
		var next []circuit.Gate
		if t+1 < len(ryd) {
			next = staged.Stages[ryd[t+1]].Gates
		}
		var prev *Step
		if len(plan.Steps) > 0 {
			prev = &plan.Steps[len(plan.Steps)-1]
		}

		var sol transitionSolution
		if opts.Reuse && prev != nil {
			cov.Hit("place:transition:candidates")
			// Solve the reuse and no-reuse candidates concurrently — they
			// only read planner state and each owns one scratch set — then
			// pick exactly as the sequential code did: the reuse solve's
			// error is authoritative, and the cheaper candidate wins.
			var sols [2]transitionSolution
			var errs [2]error
			pl.scratch[0].workers, pl.scratch[1].workers = half, half
			if err := engine.ForEach(ctx, 2, 2, func(i int) error {
				sols[i], errs[i] = pl.solveTransition(prev, cur, next, i == 0, pl.scratch[i])
				return nil
			}); err != nil {
				return nil, err
			}
			if errs[0] != nil {
				return nil, errs[0]
			}
			sol = sols[0]
			if errs[1] == nil && sols[1].cost < sol.cost {
				sol = sols[1]
				cov.Hit("place:transition:noreuse-wins")
			} else {
				cov.Hit("place:transition:reuse-wins")
			}
		} else {
			cov.Hit("place:transition:plain")
			pl.scratch[0].workers = opts.Workers
			sol, err = pl.solveTransition(prev, cur, next, false, pl.scratch[0])
			if err != nil {
				return nil, err
			}
		}
		pl.commit(prev, sol)
		plan.Steps = append(plan.Steps, Step{
			StageIdx: si,
			Gates:    cur,
			Sites:    sol.sites,
			Slots:    sol.slots,
			Reused:   sol.reused,
			MovesIn:  sol.movesIn,
		})
	}

	// Final returns: everything still in the entanglement zone goes home.
	if len(plan.Steps) > 0 {
		cov.Hit("place:final-returns")
		last := &plan.Steps[len(plan.Steps)-1]
		pl.scratch[0].workers = opts.Workers
		sol, err := pl.solveReturns(last, nil, nil, pl.scratch[0])
		if err != nil {
			return nil, err
		}
		pl.applyReturns(sol)
		last.MovesOut = sol
	}
	return plan, nil
}

// saChain is one restart chain's outcome.
type saChain struct {
	traps []arch.TrapRef
	cost  float64
}

// saRestarts runs Options.SARestarts independent annealing chains on at most
// Options.Workers goroutines and returns the winner. Chain i is seeded with
// Seed+i, results are assembled by chain index, and the winner minimizes
// (best cost, chain index), so the outcome is independent of scheduling and
// machine — chain 0 is bit-identical to the single-chain SAInitial run.
func saRestarts(ctx context.Context, a *arch.Architecture, staged *circuit.Staged, opts Options, cov *cover.Set) ([]arch.TrapRef, error) {
	cov.Hit("place:init:sa-restarts")
	ctx, span := telemetry.Start(ctx, "place.sa_restarts")
	span.SetInt("restarts", opts.SARestarts)
	span.SetInt("workers", opts.Workers)
	chains, err := engine.Map(ctx, opts.Workers, opts.SARestarts, func(i int) (saChain, error) {
		r := rand.New(rand.NewSource(opts.Seed + int64(i)))
		traps, cost, err := SAInitialWithCost(a, staged, opts.SAIterations, r)
		return saChain{traps: traps, cost: cost}, err
	})
	if err != nil {
		span.End()
		return nil, err
	}
	best := 0
	for i := 1; i < len(chains); i++ {
		if chains[i].cost < chains[best].cost {
			best = i
		}
	}
	span.SetInt("winner", best)
	span.End()
	return chains[best].traps, nil
}

// transitionSolution is one candidate outcome of a stage transition.
type transitionSolution struct {
	sites    []arch.SiteRef
	slots    [][]int
	reused   []bool
	movesIn  []Move
	movesOut []Move // returns emitted after the *previous* stage
	cost     float64
}

// solveTransition places the gates of cur (optionally reusing sites from
// prev) and computes the returns of the prev-stage qubits that do not stay.
// Under advanced reuse it retries with offending qubits banned from staying
// until the in-zone movement graph is acyclic (cyclic trap swaps cannot be
// realized by sequential rearrangement jobs).
func (pl *planner) solveTransition(prev *Step, cur, next []circuit.Gate, useReuse bool, sc *transitionScratch) (transitionSolution, error) {
	for q := range sc.banned {
		sc.banned[q] = false
	}
	for attempt := 0; ; attempt++ {
		sol, err := pl.solveTransitionOnce(prev, cur, next, useReuse, sc)
		if err != nil {
			return sol, err
		}
		q, cyclic := sc.findMoveCycle(pl.a, sol.movesIn)
		if !cyclic || attempt >= 2*len(cur)+4 {
			return sol, nil
		}
		pl.cov.Hit("place:cycle-fallback")
		sc.banned[q] = true
	}
}

// findMoveCycle looks for a cycle in the trap-succession graph of in-zone
// moves (move a feeds move b when a's target trap is b's source trap) and
// returns one participating qubit. Each move has at most one successor, so
// the walk is an iterative chain traversal over a dense move-index table
// and an []int8 color array instead of the recursive map-based search.
func (sc *transitionScratch) findMoveCycle(a *arch.Architecture, moves []Move) (qubit int, cyclic bool) {
	maxSlots := a.MaxSiteSlots()
	sc.srcTouched = sc.srcTouched[:0]
	sc.zoneMoves = sc.zoneMoves[:0]
	for i, m := range moves {
		if !m.From.InStorage {
			key := a.SiteOrdinal(m.From.Site)*maxSlots + m.From.Slot
			sc.moveAt[key] = int32(i)
			sc.srcTouched = append(sc.srcTouched, key)
			sc.zoneMoves = append(sc.zoneMoves, i)
		}
	}
	defer func() {
		for _, k := range sc.srcTouched {
			sc.moveAt[k] = -1
		}
	}()
	if cap(sc.mstate) < len(moves) {
		sc.mstate = make([]int8, len(moves))
	}
	sc.mstate = sc.mstate[:len(moves)]
	for i := range sc.mstate {
		sc.mstate[i] = 0
	}
	succ := func(i int) int {
		to := moves[i].To
		if to.InStorage {
			return -1
		}
		j := sc.moveAt[a.SiteOrdinal(to.Site)*maxSlots+to.Slot]
		if j < 0 || int(j) == i {
			return -1
		}
		return int(j)
	}
	for _, start := range sc.zoneMoves {
		if sc.mstate[start] != 0 {
			continue
		}
		sc.mpath = sc.mpath[:0]
		cur := start
		for {
			sc.mstate[cur] = 1
			sc.mpath = append(sc.mpath, cur)
			j := succ(cur)
			if j < 0 || sc.mstate[j] == 2 {
				break
			}
			if sc.mstate[j] == 1 {
				return moves[j].Qubit, true
			}
			cur = j
		}
		for _, i := range sc.mpath {
			sc.mstate[i] = 2
		}
	}
	return 0, false
}

// solveTransitionOnce performs one placement attempt with the scratch's
// banned set excluding qubits from advanced staying.
func (pl *planner) solveTransitionOnce(prev *Step, cur, next []circuit.Gate, useReuse bool, sc *transitionScratch) (transitionSolution, error) {
	a := pl.a
	sol := transitionSolution{
		sites:  make([]arch.SiteRef, len(cur)),
		slots:  make([][]int, len(cur)),
		reused: make([]bool, len(cur)),
	}

	// 1. Reuse matching against the previous stage.
	sc.reuseOf = sc.reuseOf[:0]
	for range cur {
		sc.reuseOf = append(sc.reuseOf, -1)
	}
	reuseOf := sc.reuseOf
	if useReuse && prev != nil {
		reuseOf = reuseMatch(prev.Gates, cur)
	}
	for i := range sc.reserved {
		sc.reserved[i] = false
	}
	for q := range sc.stay {
		sc.stay[q] = false
	}
	stay := sc.stay // qubits that keep their site
	for j, pi := range reuseOf {
		if pi < 0 {
			continue
		}
		sol.reused[j] = true
		sol.sites[j] = prev.Sites[pi]
		sc.reserved[a.SiteOrdinal(prev.Sites[pi])] = true
		for _, q := range cur[j].Qubits {
			for _, pq := range prev.Gates[pi].Qubits {
				if q == pq {
					stay[q] = true
				}
			}
		}
	}
	// Advanced reuse (§X): every zone-resident qubit the current stage
	// needs skips the storage round trip and moves directly between sites
	// (unless banned to break a trap-dependency cycle). Their current sites
	// are held until they vacate, so foreign gates must not target those
	// sites within the same movement phase.
	var held map[arch.SiteRef][]int
	if useReuse && pl.opts.AdvancedReuse && prev != nil {
		held = map[arch.SiteRef][]int{}
		for _, g := range cur {
			for _, q := range g.Qubits {
				if !pl.pos[q].InStorage && !sc.banned[q] {
					stay[q] = true
				}
			}
		}
		for _, g := range cur {
			for _, q := range g.Qubits {
				if stay[q] && !pl.pos[q].InStorage {
					held[pl.pos[q].Site] = append(held[pl.pos[q].Site], q)
				}
			}
		}
		if len(held) > 0 {
			pl.cov.Hit("place:advanced-stay")
		}
	}

	// 2. Returns for the previous stage's non-staying qubits. These execute
	// before the moves into the current stage, so gate placement and
	// moves-in below must see post-return positions.
	if prev != nil {
		returns, err := pl.solveReturns(prev, stay, cur, sc)
		if err != nil {
			return sol, err
		}
		sol.movesOut = returns
	}
	sc.posView = append(sc.posView[:0], pl.pos...)
	posView := sc.posView
	for _, m := range sol.movesOut {
		posView[m.Qubit] = m.To
	}

	// 3. Provisional lookahead matching cur → next for the §V-B2 cost term.
	sc.lookahead = sc.lookahead[:0]
	for range cur {
		sc.lookahead = append(sc.lookahead, -1)
	}
	if useReuse && len(next) > 0 {
		la := reuseMatch(cur, next)
		for nj, cj := range la {
			if cj < 0 {
				continue
			}
			// partner = the qubit of next[nj] not shared with cur[cj]
			for _, q := range next[nj].Qubits {
				if q != cur[cj].Qubits[0] && q != cur[cj].Qubits[1] {
					sc.lookahead[cj] = int32(q)
				}
			}
		}
	}

	// 4. Gate placement for non-reused gates.
	sc.gateIdx = sc.gateIdx[:0]
	for j := range cur {
		if !sol.reused[j] {
			sc.gateIdx = append(sc.gateIdx, j)
		}
	}
	assign, _, err := gatePlacement(a, cur, sc.gateIdx, posView, sc.lookahead, held, pl.opts.Expansion, sc, pl.cov)
	if err != nil {
		return sol, err
	}
	for k, j := range sc.gateIdx {
		sol.sites[j] = assign[k]
	}

	// 5. Slot assignment and moves-in (from post-return positions). A qubit
	// already sitting at the gate's assigned site keeps its slot, so its
	// (possibly zero-length) move never conflicts with its partner's drop
	// within the same movement phase; this covers both classic reuse (the
	// staying qubit) and advanced reuse (zone residents from other sites).
	// Remaining qubits take the free slots left-to-right by current x
	// position, for any site arity (multi-trap sites, §III).
	for j, g := range cur {
		sol.slots[j] = assignSlots(a, g.Qubits, posView, sol.sites[j], sc)
		for k, q := range g.Qubits {
			target := SitePos(sol.sites[j], sol.slots[j][k])
			if !posView[q].SameLocation(target) {
				sol.movesIn = append(sol.movesIn, Move{Qubit: q, From: posView[q], To: target})
			}
		}
	}

	// 6. Solution cost: the √distance surrogate summed over all movements.
	for _, m := range sol.movesIn {
		sol.cost += moveCost(a, m.From.Point(a), m.To.Point(a))
	}
	for _, m := range sol.movesOut {
		sol.cost += moveCost(a, m.From.Point(a), m.To.Point(a))
	}
	return sol, nil
}

// assignSlots maps a gate's qubits to site slots: qubits already at the
// site keep their slot; the rest take the free slots in ascending order,
// matched to qubits in ascending current-x order.
func assignSlots(a *arch.Architecture, qubits []int, pos []Pos, site arch.SiteRef, sc *transitionScratch) []int {
	slots := make([]int, len(qubits))
	for i := range sc.slotTaken {
		sc.slotTaken[i] = false
	}
	sc.pending = sc.pending[:0] // indices into qubits
	for k, q := range qubits {
		if !pos[q].InStorage && pos[q].Site == site {
			slots[k] = pos[q].Slot
			sc.slotTaken[pos[q].Slot] = true
		} else {
			sc.pending = append(sc.pending, k)
		}
	}
	// Order pending qubits by current x.
	pending := sc.pending
	sort.Slice(pending, func(i, j int) bool {
		return pos[qubits[pending[i]]].Point(a).X < pos[qubits[pending[j]]].Point(a).X
	})
	next := 0
	for _, k := range pending {
		for sc.slotTaken[next] {
			next++
		}
		slots[k] = next
		sc.slotTaken[next] = true
	}
	return slots
}

// solveReturns computes the storage returns for every qubit of prev that is
// not in the stay set, using dynamic matching (§V-B3) or the static home
// trap, with cur (the upcoming stage) defining related qubits.
func (pl *planner) solveReturns(prev *Step, stay []bool, cur []circuit.Gate, sc *transitionScratch) ([]Move, error) {
	a := pl.a
	sc.leaving = sc.leaving[:0]
	for _, g := range prev.Gates {
		for _, q := range g.Qubits {
			if (stay == nil || !stay[q]) && !pl.pos[q].InStorage {
				sc.leaving = append(sc.leaving, q)
			}
		}
	}
	leaving := sc.leaving
	if len(leaving) == 0 {
		return nil, nil
	}
	for q := range sc.related {
		sc.related[q] = -1
	}
	for _, g := range cur {
		q1, q2 := g.Qubits[0], g.Qubits[1]
		sc.related[q1] = int32(q2)
		sc.related[q2] = int32(q1)
	}

	var moves []Move
	if pl.opts.Dynamic {
		pl.cov.Hit("place:returns:dynamic")
		assign, _, err := returnPlacement(a, leaving, pl.pos, pl.home, sc.related, pl.occ, pl.opts.KNeighbors, pl.opts.Alpha, sc, pl.cov)
		if err != nil {
			return nil, err
		}
		for i, q := range leaving {
			moves = append(moves, Move{Qubit: q, From: pl.pos[q], To: StoragePos(assign[i])})
		}
	} else {
		pl.cov.Hit("place:returns:static")
		for _, q := range leaving {
			moves = append(moves, Move{Qubit: q, From: pl.pos[q], To: StoragePos(pl.home[q])})
		}
	}
	return moves, nil
}

// commit applies a chosen transition: attach returns to the previous step,
// update positions, occupancy and home traps.
func (pl *planner) commit(prev *Step, sol transitionSolution) {
	if prev != nil {
		prev.MovesOut = sol.movesOut
		pl.applyReturns(sol.movesOut)
	}
	for _, m := range sol.movesIn {
		if m.From.InStorage {
			pl.occ[pl.a.TrapOrdinal(m.From.Trap)] = -1
		}
		pl.pos[m.Qubit] = m.To
	}
}

// applyReturns updates state for storage returns.
func (pl *planner) applyReturns(moves []Move) {
	for _, m := range moves {
		pl.pos[m.Qubit] = m.To
		pl.occ[pl.a.TrapOrdinal(m.To.Trap)] = m.Qubit
		pl.home[m.Qubit] = m.To.Trap
	}
}

// Validate checks plan invariants: every stage's gates sit at distinct
// sites, moves are consistent with positions, and no two qubits ever occupy
// the same trap between stages. Used by tests and callers as a safety net.
func (p *Plan) Validate() error {
	pos := make([]Pos, p.NumQubits)
	occ := map[arch.TrapRef]int{}
	for q, t := range p.Initial {
		pos[q] = StoragePos(t)
		if prev, taken := occ[t]; taken {
			return fmt.Errorf("place: initial traps collide for qubits %d and %d", prev, q)
		}
		occ[t] = q
	}
	for si, step := range p.Steps {
		if len(step.Sites) != len(step.Gates) || len(step.Slots) != len(step.Gates) || len(step.Reused) != len(step.Gates) {
			return fmt.Errorf("place: step %d has inconsistent lengths", si)
		}
		seenSite := map[arch.SiteRef]int{}
		for gi, s := range step.Sites {
			if prev, dup := seenSite[s]; dup {
				return fmt.Errorf("place: step %d gates %d and %d share site %+v", si, prev, gi, s)
			}
			seenSite[s] = gi
		}
		for _, m := range step.MovesIn {
			if !pos[m.Qubit].SameLocation(m.From) {
				return fmt.Errorf("place: step %d move-in of qubit %d from stale position", si, m.Qubit)
			}
			if m.From.InStorage {
				delete(occ, m.From.Trap)
			}
			pos[m.Qubit] = m.To
		}
		// At Rydberg time every gate qubit must be at its assigned slot.
		for gi, g := range step.Gates {
			for k, q := range g.Qubits {
				want := SitePos(step.Sites[gi], step.Slots[gi][k])
				if !pos[q].SameLocation(want) {
					return fmt.Errorf("place: step %d gate %d qubit %d not at its site", si, gi, q)
				}
			}
		}
		for _, m := range step.MovesOut {
			if !pos[m.Qubit].SameLocation(m.From) {
				return fmt.Errorf("place: step %d move-out of qubit %d from stale position", si, m.Qubit)
			}
			if !m.To.InStorage {
				return fmt.Errorf("place: step %d move-out of qubit %d not to storage", si, m.Qubit)
			}
			if prev, taken := occ[m.To.Trap]; taken {
				return fmt.Errorf("place: step %d return collides with qubit %d at trap %+v", si, prev, m.To.Trap)
			}
			occ[m.To.Trap] = m.Qubit
			pos[m.Qubit] = m.To
		}
	}
	// After the final step everything must be back in storage.
	for q := range pos {
		if !pos[q].InStorage {
			return fmt.Errorf("place: qubit %d left in the entanglement zone at program end", q)
		}
	}
	return nil
}
