// difftest repro
// class: fidelity-order
// compiler: zac-vanilla>zac
// input: seeded-fid
// detail: ablation zac-vanilla fidelity 0.392294 beats zac fidelity 0.300964 beyond tolerance 0.15
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rzz(0.8) q[0],q[1];
