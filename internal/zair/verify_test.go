package zair

import (
	"strings"
	"testing"
)

func validTwoJobProgram() *Program {
	return &Program{
		Name: "p", NumQubits: 2,
		Instructions: []Instruction{
			Init{Locs: []QLoc{{0, 0, 0, 0}, {1, 0, 0, 1}}},
			RearrangeJob{
				AODID:     0,
				BeginLocs: [][]QLoc{{{0, 0, 0, 0}}},
				EndLocs:   [][]QLoc{{{0, 1, 0, 0}}},
				BeginTime: 0, EndTime: 30,
			},
			RearrangeJob{
				AODID:     0,
				BeginLocs: [][]QLoc{{{1, 0, 0, 1}}},
				EndLocs:   [][]QLoc{{{1, 2, 0, 0}}},
				BeginTime: 30, EndTime: 60,
			},
		},
	}
}

func TestVerifyValid(t *testing.T) {
	v := &Verifier{}
	if err := v.Verify(validTwoJobProgram()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStalePickup(t *testing.T) {
	p := validTwoJobProgram()
	j := p.Instructions[2].(RearrangeJob)
	j.BeginLocs = [][]QLoc{{{1, 0, 0, 5}}} // wrong source
	p.Instructions[2] = j
	v := &Verifier{}
	err := v.Verify(p)
	if err == nil || !strings.Contains(err.Error(), "picks qubit") {
		t.Fatalf("stale pickup not caught: %v", err)
	}
}

func TestVerifyOccupiedDrop(t *testing.T) {
	p := validTwoJobProgram()
	j := p.Instructions[2].(RearrangeJob)
	j.EndLocs = [][]QLoc{{{1, 1, 0, 0}}} // qubit 0 already dropped there
	p.Instructions[2] = j
	v := &Verifier{}
	err := v.Verify(p)
	if err == nil || !strings.Contains(err.Error(), "occupied") {
		t.Fatalf("occupied drop not caught: %v", err)
	}
}

func TestVerifyAODOverlap(t *testing.T) {
	p := validTwoJobProgram()
	j := p.Instructions[2].(RearrangeJob)
	j.BeginTime, j.EndTime = 10, 40 // overlaps the first job on AOD 0
	p.Instructions[2] = j
	v := &Verifier{}
	err := v.Verify(p)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("AOD overlap not caught: %v", err)
	}
}

func TestVerifyDifferentAODsMayOverlap(t *testing.T) {
	p := validTwoJobProgram()
	j := p.Instructions[2].(RearrangeJob)
	j.AODID = 1
	j.BeginTime, j.EndTime = 10, 40
	p.Instructions[2] = j
	v := &Verifier{}
	if err := v.Verify(p); err != nil {
		t.Fatalf("independent AODs should be allowed to overlap: %v", err)
	}
}

func TestVerifyQubitDependency(t *testing.T) {
	p := &Program{
		Name: "q", NumQubits: 1,
		Instructions: []Instruction{
			Init{Locs: []QLoc{{0, 0, 0, 0}}},
			RearrangeJob{AODID: 0, BeginLocs: [][]QLoc{{{0, 0, 0, 0}}},
				EndLocs: [][]QLoc{{{0, 0, 0, 1}}}, BeginTime: 0, EndTime: 30},
			RearrangeJob{AODID: 1, BeginLocs: [][]QLoc{{{0, 0, 0, 1}}},
				EndLocs: [][]QLoc{{{0, 0, 0, 2}}}, BeginTime: 20, EndTime: 50},
		},
	}
	v := &Verifier{}
	err := v.Verify(p)
	if err == nil || !strings.Contains(err.Error(), "while another job holds it") {
		t.Fatalf("qubit dependency violation not caught: %v", err)
	}
}

func TestVerifyCrossingTones(t *testing.T) {
	p := &Program{
		Name: "x", NumQubits: 2,
		Instructions: []Instruction{
			Init{Locs: []QLoc{{0, 0, 0, 0}, {1, 0, 0, 1}}},
			RearrangeJob{
				AODID:     0,
				BeginLocs: [][]QLoc{{{0, 0, 0, 0}, {1, 0, 0, 1}}},
				EndLocs:   [][]QLoc{{{0, 1, 0, 1}, {1, 1, 0, 0}}},
				Insts: []MachineInst{
					Move{ColID: []int{0, 1},
						ColXBegin: []float64{0, 3},
						ColXEnd:   []float64{10, 5}}, // col 0 passes col 1
				},
				BeginTime: 0, EndTime: 30,
			},
		},
	}
	v := &Verifier{}
	err := v.Verify(p)
	if err == nil || !strings.Contains(err.Error(), "cross") {
		t.Fatalf("crossing tones not caught: %v", err)
	}
}

func TestVerifyCoincidentTonesDiverge(t *testing.T) {
	if err := checkToneOrder([]float64{1, 1}, []float64{1, 5}, 1e-6); err == nil {
		t.Fatal("diverging coincident tones not caught")
	}
	if err := checkToneOrder([]float64{1, 1}, []float64{4, 4}, 1e-6); err != nil {
		t.Fatalf("coincident tones moving together rejected: %v", err)
	}
	if err := checkToneOrder([]float64{1, 2}, []float64{5}, 1e-6); err == nil {
		t.Fatal("length mismatch not caught")
	}
}

func TestFinalPositions(t *testing.T) {
	p := validTwoJobProgram()
	fin := FinalPositions(p)
	if fin[0] != (QLoc{0, 1, 0, 0}) || fin[1] != (QLoc{1, 2, 0, 0}) {
		t.Fatalf("final positions: %v", fin)
	}
}

func TestFinalPositionsEmpty(t *testing.T) {
	if got := FinalPositions(&Program{}); len(got) != 0 {
		t.Fatal("empty program should yield no positions")
	}
}
