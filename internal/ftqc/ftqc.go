// Package ftqc implements the paper's fault-tolerant computing demonstration
// (§VIII): [[8,3,2]] code blocks (Fig. 16a), the hypercube instantaneous
// quantum polynomial (hIQP) circuit family (Fig. 16b), and logical-level
// compilation in which ZAC moves whole code blocks to execute transversal
// inter-block CNOTs.
package ftqc

import (
	"fmt"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/core"
)

// Code832 describes the [[8,3,2]] color code used by the hIQP experiments:
// 8 physical qubits encode 3 logical qubits at distance 2, laid out as
// 2 rows × 4 columns (Fig. 16a).
type Code832 struct{}

// PhysicalQubits returns the number of physical qubits per block.
func (Code832) PhysicalQubits() int { return 8 }

// LogicalQubits returns the number of logical qubits per block.
func (Code832) LogicalQubits() int { return 3 }

// Distance returns the code distance.
func (Code832) Distance() int { return 2 }

// BlockRows and BlockCols give the physical layout of one block.
func (Code832) BlockRows() int { return 2 }

// BlockCols returns the column extent of a block.
func (Code832) BlockCols() int { return 4 }

// HIQPSpec parameterizes a hypercube IQP circuit on [[8,3,2]] blocks.
type HIQPSpec struct {
	NumBlocks int // must be a power of two
}

// ScaledUp returns the paper's scaled-up instance: 128 blocks = 384 logical
// qubits, 8 in-block layers interleaved with 7 CNOT layers whose stride
// doubles each time (448 transversal gates).
func ScaledUp() HIQPSpec { return HIQPSpec{NumBlocks: 128} }

// Validate checks the spec.
func (s HIQPSpec) Validate() error {
	if s.NumBlocks < 2 || s.NumBlocks&(s.NumBlocks-1) != 0 {
		return fmt.Errorf("ftqc: NumBlocks must be a power of two ≥ 2, got %d", s.NumBlocks)
	}
	return nil
}

// NumCNOTLayers returns log2(NumBlocks) (7 for 128 blocks).
func (s HIQPSpec) NumCNOTLayers() int {
	n, l := s.NumBlocks, 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// NumTransversalGates returns the inter-block CNOT count (448 for 128
// blocks: 7 layers × 64 pairs).
func (s HIQPSpec) NumTransversalGates() int {
	return s.NumCNOTLayers() * s.NumBlocks / 2
}

// NumLogicalQubits returns 3 logical qubits per block.
func (s HIQPSpec) NumLogicalQubits() int { return 3 * s.NumBlocks }

// BlockCircuit builds the block-level staged program of the hIQP circuit:
// each block is one compiler "qubit"; in-block T†-layers appear as 1Q
// stages (one U3 per block) and each inter-block CNOT layer appears as a
// Rydberg stage of NumBlocks/2 parallel 2Q gates with doubling stride
// (Fig. 16b).
func (s HIQPSpec) BlockCircuit() (*circuit.Staged, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &circuit.Staged{
		Name:      fmt.Sprintf("hiqp_%dblocks", s.NumBlocks),
		NumQubits: s.NumBlocks,
	}
	inBlock := func() circuit.Stage {
		var gates []circuit.Gate
		for b := 0; b < s.NumBlocks; b++ {
			// The in-block layer (physical T† on all 8 qubits ≡ logical
			// CCZ·CZ·Z) is block-local; parameters are placeholders since
			// block-level routing only needs the structure.
			gates = append(gates, circuit.NewGate(circuit.U3, []int{b}, 0, 0, -0.785398163397448))
		}
		return circuit.Stage{Kind: circuit.OneQStage, Gates: gates}
	}
	st.Stages = append(st.Stages, inBlock())
	stride := 1
	for l := 0; l < s.NumCNOTLayers(); l++ {
		var gates []circuit.Gate
		// Pairs (b, b+stride) for every b whose stride bit is 0.
		for b := 0; b < s.NumBlocks; b++ {
			if b&stride == 0 {
				gates = append(gates, circuit.NewGate(circuit.CZ, []int{b, b + stride}))
			}
		}
		st.Stages = append(st.Stages, circuit.Stage{Kind: circuit.RydbergStage, Gates: gates})
		st.Stages = append(st.Stages, inBlock())
		stride <<= 1
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// Result reports the logical-level compilation of an hIQP circuit.
type Result struct {
	Spec             HIQPSpec
	NumRydbergStages int
	DurationMS       float64
	TransversalGates int
	Compiled         *core.Result
}

// Compile compiles the block-level hIQP circuit on the logical architecture
// (3×5 sites, ⌊7/2⌋×⌊20/4⌋ of the physical zone, §VIII), splitting each
// 64-gate CNOT layer across the 15 available sites. The physical qubits of
// a block move together; block movement timing uses the same model as
// single atoms (the AOD carries the whole 2×4 block).
func Compile(spec HIQPSpec, a *arch.Architecture) (*Result, error) {
	staged, err := spec.BlockCircuit()
	if err != nil {
		return nil, err
	}
	capacity := a.TotalSites()
	if capacity == 0 {
		return nil, fmt.Errorf("ftqc: architecture has no Rydberg sites")
	}
	split := circuit.SplitRydbergStages(staged, capacity)
	res, err := core.CompileStaged(split, a, core.Default())
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec:             spec,
		NumRydbergStages: res.NumRydbergStages,
		DurationMS:       res.Duration / 1000,
		TransversalGates: spec.NumTransversalGates(),
		Compiled:         res,
	}, nil
}
