package difftest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// writeRepro persists one divergence's minimized circuit as a commented
// QASM file and returns its path. The filename encodes the class, the
// offending compiler, and a content hash, so re-discovering the same repro
// is idempotent. The QASM parser strips // comments, so the header rides
// along harmlessly when the file is replayed.
func writeRepro(dir string, d Divergence) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(d.QASM))
	comp := strings.NewReplacer("/", "-", ">", "-gt-", " ", "_").Replace(d.Compiler)
	name := fmt.Sprintf("%s--%s--%s.qasm", d.Class, comp, hex.EncodeToString(sum[:4]))
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "// difftest repro\n")
	fmt.Fprintf(&b, "// class: %s\n", d.Class)
	fmt.Fprintf(&b, "// compiler: %s\n", d.Compiler)
	fmt.Fprintf(&b, "// input: %s\n", d.Input)
	for _, line := range strings.Split(d.Detail, "\n") {
		fmt.Fprintf(&b, "// detail: %s\n", line)
	}
	b.WriteString(d.QASM)
	if !strings.HasSuffix(d.QASM, "\n") {
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadCorpus lists the .qasm repro files of a corpus directory in sorted
// order. A missing directory is an empty corpus, not an error.
func ReadCorpus(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".qasm") {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}
