package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/place"
	"zac/internal/resynth"
)

// The golden determinism test pins the placement pipeline bit-for-bit: the
// hashes in testdata/determinism.golden were generated from the pre-PR-3
// implementation (dense JV matching, full-recompute SA cost, map-based
// planner state), and the optimized hot path must reproduce the exact same
// plans and ZAIR programs. Regenerate with `go test ./internal/core -run
// TestGoldenDeterminism -update` — but only after establishing that an
// output change is intended.

var updateGolden = flag.Bool("update", false, "rewrite testdata/determinism.golden from the current implementation")

const goldenPath = "testdata/determinism.golden"

// goldenSubset mirrors the repo-level benchmark subset (bench_test.go).
var goldenSubset = []string{"bv_n14", "ghz_n23", "ising_n42", "qft_n18", "wstate_n27"}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// hashPlan digests the placement-relevant parts of a plan (initial traps and
// per-stage steps); Arch and Staged pointers are inputs, not outputs.
func hashPlan(t *testing.T, p *place.Plan) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Initial []arch.TrapRef
		Steps   []place.Step
	}{p.Initial, p.Steps})
	if err != nil {
		t.Fatal(err)
	}
	return hashBytes(data)
}

func hashProgram(t *testing.T, r *Result) string {
	t.Helper()
	data, err := json.Marshal(r.Program)
	if err != nil {
		t.Fatal(err)
	}
	return hashBytes(data)
}

// collectDeterminismHashes compiles the golden corpus and returns a stable
// key→hash map covering SAInitial, BuildPlan, and the final ZAIR program.
func collectDeterminismHashes(t *testing.T) map[string]string {
	t.Helper()
	a := arch.Reference()
	got := map[string]string{}

	// Every subset circuit under the full ZAC preset (plan + ZAIR + SA).
	for _, name := range goldenSubset {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := bm.Build()
		staged, err := resynth.Preprocess(c)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := place.SAInitial(a, staged, 1000, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		got["sainitial/"+name] = hashBytes([]byte(fmt.Sprintf("%v", sa)))

		res, err := CompileStaged(staged, a, OptionsFor(SettingSADynPlaceReuse))
		if err != nil {
			t.Fatal(err)
		}
		got["plan/"+name+"/"+SettingSADynPlaceReuse] = hashPlan(t, res.Plan)
		got["zair/"+name+"/"+SettingSADynPlaceReuse] = hashProgram(t, res)
	}

	// Two representative circuits under every ablation preset, so the
	// non-SA and non-reuse paths stay pinned too.
	for _, name := range []string{"bv_n14", "ghz_n23"} {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, setting := range []string{SettingVanilla, SettingDynPlace, SettingDynPlaceReuse, SettingSADynPlaceReuse} {
			res, err := Compile(bm.Build(), a, OptionsFor(setting))
			if err != nil {
				t.Fatal(err)
			}
			got["plan/"+name+"/"+setting] = hashPlan(t, res.Plan)
			got["zair/"+name+"/"+setting] = hashProgram(t, res)
		}
	}

	// Advanced reuse exercises the held-site and cycle-breaking paths of the
	// transition solver.
	for _, name := range []string{"ghz_n23", "qft_n18"} {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := Default()
		opts.Place.AdvancedReuse = true
		res, err := Compile(bm.Build(), a, opts)
		if err != nil {
			t.Fatal(err)
		}
		got["plan/"+name+"/advreuse"] = hashPlan(t, res.Plan)
		got["zair/"+name+"/advreuse"] = hashProgram(t, res)
	}
	return got
}

// TestGoldenDeterminism asserts that the optimized placement hot path
// produces plans and ZAIR programs byte-identical to the pre-refactor
// implementation (pinned as hashes in testdata/determinism.golden).
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus compiles the five-circuit subset; skipped in -short")
	}
	got := collectDeterminismHashes(t)

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d hashes to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, current run produced %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from current run", k)
			continue
		}
		if g != w {
			t.Errorf("%s: hash mismatch\n  golden:  %s\n  current: %s", k, w, g)
		}
	}
}
