// Command zac-bench regenerates the paper's tables and figures as text
// tables (and optionally CSV). Each experiment id matches DESIGN.md's
// per-experiment index. Compilations fan out over a bounded worker pool and
// are memoized in a process-wide cache, so experiments sharing circuits
// (fig8/fig9/fig10/table2) compile each (circuit, compiler) pair once.
//
// With -cachedir the cache gains a persistent disk tier shared with
// zac-serve and zairsim: a second run over the same directory restores
// compilation results instead of recomputing them.
//
//	zac-bench -experiment fig8
//	zac-bench -experiment fig9 -circuits bv_n14,ghz_n23
//	zac-bench -experiment all -csv out/
//	zac-bench -experiment all -parallel 8 -progress
//	zac-bench -experiment all -cachedir ~/.cache/zac
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"zac/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: full suite)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential)")
	progress := flag.Bool("progress", false, "print one line per completed compilation to stderr")
	noCache := flag.Bool("nocache", false, "disable the compilation cache (recompile shared circuits)")
	cacheDir := flag.String("cachedir", "", "persistent compilation-cache directory shared with zac-serve and zairsim")
	cacheMB := flag.Int64("cachemb", 0, "disk cache size bound in MiB (0 = unbounded; needs -cachedir)")
	flag.Parse()

	if *cacheDir != "" {
		if err := experiments.SetCacheDir(*cacheDir, *cacheMB<<20); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -cachedir: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, n := range experiments.Registry() {
			fmt.Println(n)
		}
		return
	}

	var subset []string
	if *circuits != "" {
		subset = strings.Split(*circuits, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Registry()
	}

	cfg := experiments.Config{Parallel: *parallel, NoCache: *noCache}
	if *progress {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "[progress] "+msg) }
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, id := range ids {
		tables, err := experiments.RunWith(ctx, cfg, id, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i, t := range tables {
			fmt.Println(t.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", id, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *progress || *cacheDir != "" {
		st := experiments.CacheStats()
		fmt.Fprintf(os.Stderr, "[cache] %d lookups: %d memory hits, %d disk hits, %d misses (%.1f%% hit rate)\n",
			st.Lookups(), st.MemHits, st.DiskHits, st.Misses, 100*st.HitRate())
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "[cache] disk tier %s: %d entries, %d bytes\n",
				*cacheDir, st.Disk.Entries, st.Disk.Bytes)
		}
	}
	fmt.Println("[INFO] Finish Compilation")
}
