package arch

import "zac/internal/geom"

// Physical constants of the reference architecture (paper Fig. 2).
const (
	DRyd    = 2.0  // µm: separation between the two traps of a Rydberg site
	DOmega  = 10.0 // µm: separation between Rydberg sites (rows and columns)
	DStore  = 3.0  // µm: storage-trap separation
	DSep    = 10.0 // µm: separation between zones
	RefT1q  = 52.0 // µs: conservative 1Q gate duration
	RefTRyd = 0.36 // µs: Rydberg (CZ) exposure duration
	RefTTr  = 15.0 // µs: atom-transfer duration
	RefT2   = 1.5e6
)

// NeutralAtomTimes returns the Table I neutral-atom durations.
func NeutralAtomTimes() OperationTimes {
	return OperationTimes{Rydberg: RefTRyd, OneQGate: RefT1q, AtomTransfer: RefTTr}
}

// NeutralAtomFidelities returns the Table I / §VII-B neutral-atom fidelities.
func NeutralAtomFidelities() OperationFidelities {
	return OperationFidelities{
		TwoQubit:     0.995,
		SingleQubit:  0.9997,
		AtomTransfer: 0.999,
		Excitation:   0.9975,
	}
}

// Reference builds the paper's reference zoned architecture (Fig. 2 /
// Fig. 20): a 100×100 storage zone (3µm pitch) at the origin, an
// entanglement zone of 7×20 Rydberg sites above it (x pitch dRyd+dω = 12µm,
// y pitch dω = 10µm, two SLM arrays offset by dRyd), a readout zone (no
// SLM), and one 100×100 AOD.
func Reference() *Architecture {
	storage := Zone{
		ID: 0, Kind: StorageZone,
		Offset: geom.Point{X: 0, Y: 0},
		Dim:    geom.Point{X: 300, Y: 300},
		SLMs: []SLMArray{{
			ID: 0, SepX: DStore, SepY: DStore, Rows: 100, Cols: 100,
			Offset: geom.Point{X: 0, Y: 0},
		}},
	}
	ent := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 35, Y: 307},
		Dim:    geom.Point{X: 240, Y: 70},
		SLMs: []SLMArray{
			{ID: 1, SepX: DRyd + DOmega, SepY: DOmega, Rows: 7, Cols: 20, Offset: geom.Point{X: 35, Y: 307}},
			{ID: 2, SepX: DRyd + DOmega, SepY: DOmega, Rows: 7, Cols: 20, Offset: geom.Point{X: 37, Y: 307}},
		},
	}
	readout := Zone{
		ID: 0, Kind: ReadoutZone,
		Offset: geom.Point{X: 0, Y: 387},
		Dim:    geom.Point{X: 300, Y: 15},
	}
	return &Architecture{
		Name:         "full_compute_store_architecture",
		AODs:         []AODArray{{ID: 0, MinSep: 2, MaxRows: 100, MaxCols: 100}},
		Storage:      []Zone{storage},
		Entanglement: []Zone{ent},
		Readout:      []Zone{readout},
		Times:        NeutralAtomTimes(),
		Fidelities:   NeutralAtomFidelities(),
		T2:           RefT2,
		ZoneSep:      DSep,
	}
}

// ReferenceTriple builds a variant of the reference architecture whose
// Rydberg sites hold three traps (paper §III: "it is possible to increase
// the number of SLM traps in a Rydberg site to leverage a Rydberg gate on
// more qubits"): three SLM arrays at x, x+2, x+4 µm with a site x-pitch of
// 2·dRyd + dω = 14 µm, supporting native CCZ gates.
func ReferenceTriple() *Architecture {
	a := Reference()
	pitchX := 2*DRyd + DOmega
	cols := 17 // 17 sites of 14µm pitch fit the 240µm-wide zone
	ent := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 35, Y: 307},
		Dim:    geom.Point{X: float64(cols) * pitchX, Y: 70},
		SLMs: []SLMArray{
			{ID: 1, SepX: pitchX, SepY: DOmega, Rows: 7, Cols: cols, Offset: geom.Point{X: 35, Y: 307}},
			{ID: 2, SepX: pitchX, SepY: DOmega, Rows: 7, Cols: cols, Offset: geom.Point{X: 37, Y: 307}},
			{ID: 3, SepX: pitchX, SepY: DOmega, Rows: 7, Cols: cols, Offset: geom.Point{X: 39, Y: 307}},
		},
	}
	a.Name = "triple_site_architecture"
	a.Entanglement = []Zone{ent}
	return a
}

// WithAODs returns a copy of a with n identical AOD arrays (used by the
// multi-AOD study, Fig. 14).
func WithAODs(a *Architecture, n int) *Architecture {
	out := *a
	out.AODs = make([]AODArray, n)
	for i := 0; i < n; i++ {
		out.AODs[i] = AODArray{ID: i, MinSep: 2, MaxRows: 100, MaxCols: 100}
	}
	return &out
}

// Monolithic builds the monolithic comparison architecture (§VII-A): a
// single entanglement zone of 10×10 Rydberg sites, one 10×10 AOD, and no
// storage zone; the Rydberg laser illuminates everything.
func Monolithic() *Architecture {
	ent := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 0, Y: 0},
		Dim:    geom.Point{X: float64(10) * (DRyd + DOmega), Y: 10 * DOmega},
		SLMs: []SLMArray{
			{ID: 0, SepX: DRyd + DOmega, SepY: DOmega, Rows: 10, Cols: 10, Offset: geom.Point{X: 0, Y: 0}},
			{ID: 1, SepX: DRyd + DOmega, SepY: DOmega, Rows: 10, Cols: 10, Offset: geom.Point{X: DRyd, Y: 0}},
		},
	}
	return &Architecture{
		Name:         "monolithic",
		AODs:         []AODArray{{ID: 0, MinSep: 2, MaxRows: 10, MaxCols: 10}},
		Entanglement: []Zone{ent},
		Times:        NeutralAtomTimes(),
		Fidelities:   NeutralAtomFidelities(),
		T2:           RefT2,
		ZoneSep:      DSep,
	}
}

// Arch1Small builds the single-entanglement-zone small architecture of
// §VII-H: 3×40 storage traps and one entanglement zone with 6×10 sites.
func Arch1Small() *Architecture {
	storage := Zone{
		ID: 0, Kind: StorageZone,
		Offset: geom.Point{X: 0, Y: 0},
		Dim:    geom.Point{X: 120, Y: 9},
		SLMs: []SLMArray{{
			ID: 0, SepX: DStore, SepY: DStore, Rows: 3, Cols: 40,
			Offset: geom.Point{X: 0, Y: 0},
		}},
	}
	entY := storage.Dim.Y + DSep
	ent := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 0, Y: entY},
		Dim:    geom.Point{X: 10 * (DRyd + DOmega), Y: 6 * DOmega},
		SLMs: []SLMArray{
			{ID: 1, SepX: DRyd + DOmega, SepY: DOmega, Rows: 6, Cols: 10, Offset: geom.Point{X: 0, Y: entY}},
			{ID: 2, SepX: DRyd + DOmega, SepY: DOmega, Rows: 6, Cols: 10, Offset: geom.Point{X: DRyd, Y: entY}},
		},
	}
	return &Architecture{
		Name:         "arch1_small",
		AODs:         []AODArray{{ID: 0, MinSep: 2, MaxRows: 100, MaxCols: 100}},
		Storage:      []Zone{storage},
		Entanglement: []Zone{ent},
		Times:        NeutralAtomTimes(),
		Fidelities:   NeutralAtomFidelities(),
		T2:           RefT2,
		ZoneSep:      DSep,
	}
}

// Arch2TwoZones builds the two-entanglement-zone architecture of §VII-H:
// the same 3×40 storage zone with a 3×10-site entanglement zone above it
// and another below it.
func Arch2TwoZones() *Architecture {
	storageHeight := 9.0
	zoneHeight := 3 * DOmega
	below := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 0, Y: 0},
		Dim:    geom.Point{X: 10 * (DRyd + DOmega), Y: zoneHeight},
		SLMs: []SLMArray{
			{ID: 1, SepX: DRyd + DOmega, SepY: DOmega, Rows: 3, Cols: 10, Offset: geom.Point{X: 0, Y: 0}},
			{ID: 2, SepX: DRyd + DOmega, SepY: DOmega, Rows: 3, Cols: 10, Offset: geom.Point{X: DRyd, Y: 0}},
		},
	}
	storageY := zoneHeight + DSep
	storage := Zone{
		ID: 0, Kind: StorageZone,
		Offset: geom.Point{X: 0, Y: storageY},
		Dim:    geom.Point{X: 120, Y: storageHeight},
		SLMs: []SLMArray{{
			ID: 0, SepX: DStore, SepY: DStore, Rows: 3, Cols: 40,
			Offset: geom.Point{X: 0, Y: storageY},
		}},
	}
	aboveY := storageY + storageHeight + DSep
	above := Zone{
		ID: 1, Kind: EntanglementZone,
		Offset: geom.Point{X: 0, Y: aboveY},
		Dim:    geom.Point{X: 10 * (DRyd + DOmega), Y: zoneHeight},
		SLMs: []SLMArray{
			{ID: 3, SepX: DRyd + DOmega, SepY: DOmega, Rows: 3, Cols: 10, Offset: geom.Point{X: 0, Y: aboveY}},
			{ID: 4, SepX: DRyd + DOmega, SepY: DOmega, Rows: 3, Cols: 10, Offset: geom.Point{X: DRyd, Y: aboveY}},
		},
	}
	return &Architecture{
		Name:         "arch2_two_zones",
		AODs:         []AODArray{{ID: 0, MinSep: 2, MaxRows: 100, MaxCols: 100}},
		Storage:      []Zone{storage},
		Entanglement: []Zone{below, above},
		Times:        NeutralAtomTimes(),
		Fidelities:   NeutralAtomFidelities(),
		T2:           RefT2,
		ZoneSep:      DSep,
	}
}

// Logical832 builds the logical-level architecture for [[8,3,2]]-code block
// compilation (§VIII): each code block occupies 2 rows × 4 columns of
// physical traps, so the 7×20-site physical entanglement zone supports
// ⌊7/2⌋ = 3 rows and ⌊20/4⌋ = 5 columns of logical sites; the storage zone
// is scaled accordingly to hold 128 blocks.
func Logical832() *Architecture {
	// Block pitch: 4 physical storage columns (12µm) × 2 rows (6µm).
	blockW, blockH := 4*DStore, 2*DStore
	storage := Zone{
		ID: 0, Kind: StorageZone,
		Offset: geom.Point{X: 0, Y: 0},
		Dim:    geom.Point{X: 32 * blockW, Y: 4 * blockH},
		SLMs: []SLMArray{{
			ID: 0, SepX: blockW, SepY: blockH, Rows: 4, Cols: 32,
			Offset: geom.Point{X: 0, Y: 0},
		}},
	}
	// Logical site pitch: 4 entanglement columns (48µm) × 2 rows (20µm);
	// paired blocks in a logical site are separated by one block width.
	entY := storage.Dim.Y + DSep
	siteSepX, siteSepY := 4*(DRyd+DOmega), 2*DOmega
	ent := Zone{
		ID: 0, Kind: EntanglementZone,
		Offset: geom.Point{X: 0, Y: entY},
		Dim:    geom.Point{X: 5 * siteSepX, Y: 3 * siteSepY},
		SLMs: []SLMArray{
			{ID: 1, SepX: siteSepX, SepY: siteSepY, Rows: 3, Cols: 5, Offset: geom.Point{X: 0, Y: entY}},
			{ID: 2, SepX: siteSepX, SepY: siteSepY, Rows: 3, Cols: 5, Offset: geom.Point{X: blockW, Y: entY}},
		},
	}
	return &Architecture{
		Name:         "logical_832",
		AODs:         []AODArray{{ID: 0, MinSep: 2, MaxRows: 100, MaxCols: 100}},
		Storage:      []Zone{storage},
		Entanglement: []Zone{ent},
		Times:        NeutralAtomTimes(),
		Fidelities:   NeutralAtomFidelities(),
		T2:           RefT2,
		ZoneSep:      DSep,
	}
}
