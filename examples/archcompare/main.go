// Archcompare example: a single-circuit slice of the paper's Fig. 8 — run
// one benchmark through all six compiler/architecture combinations (two
// superconducting platforms, two monolithic neutral-atom compilers, two
// zoned compilers) and print the fidelity ladder.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"zac/internal/arch"
	"zac/internal/baseline/atomique"
	"zac/internal/baseline/enola"
	"zac/internal/baseline/nalac"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/resynth"
	"zac/internal/sc"
)

func main() {
	name := flag.String("circuit", "ghz_n23", "benchmark name (see zac -list)")
	flag.Parse()

	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name     string
		fidelity float64
		duration float64 // µs
	}
	var rows []entry
	add := func(n string, f, d float64) { rows = append(rows, entry{n, f, d}) }

	zoned := arch.Reference()
	split := circuit.SplitRydbergStages(staged, zoned.TotalSites())
	zr, err := core.CompileStaged(split, zoned, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	add("Zoned-ZAC", zr.Breakdown.Total, zr.Duration)

	nr, err := nalac.Compile(split, zoned)
	if err != nil {
		log.Fatal(err)
	}
	add("Zoned-NALAC", nr.Breakdown.Total, nr.Duration)

	mono := arch.Monolithic()
	er, err := enola.Compile(split, mono)
	if err != nil {
		log.Fatal(err)
	}
	add("Mono-Enola", er.Breakdown.Total, er.Duration)

	ar, err := atomique.Compile(split, mono)
	if err != nil {
		log.Fatal(err)
	}
	add("Mono-Atomique", ar.Breakdown.Total, ar.Duration)

	hr, err := sc.Compile(staged, sc.HeavyHex127(), fidelity.SCHeron())
	if err != nil {
		log.Fatal(err)
	}
	add("SC-Heron", hr.Breakdown.Total, hr.Duration)

	gr, err := sc.Compile(staged, sc.Grid(11, 11), fidelity.SCGrid())
	if err != nil {
		log.Fatal(err)
	}
	add("SC-Grid", gr.Breakdown.Total, gr.Duration)

	sort.Slice(rows, func(i, j int) bool { return rows[i].fidelity > rows[j].fidelity })
	one, two := staged.GateCounts()
	fmt.Printf("%s: %d qubits, %d 2Q + %d 1Q gates, %d Rydberg stages\n\n",
		b.Name, b.NumQubits, two, one, staged.NumRydbergStages())
	fmt.Printf("%-16s %10s %14s\n", "platform", "fidelity", "duration")
	for _, r := range rows {
		fmt.Printf("%-16s %10.4f %11.3f ms\n", r.name, r.fidelity, r.duration/1000)
	}
}
