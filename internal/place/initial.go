package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"zac/internal/anneal"
	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
)

// TrivialInitial places qubits sequentially by index starting from the first
// storage trap in the row nearest to the (first) entanglement zone — the
// paper's 'Vanilla' initial placement (§VII-D).
func TrivialInitial(a *arch.Architecture, numQubits int) ([]arch.TrapRef, error) {
	if numQubits > a.TotalStorageTraps() {
		return nil, fmt.Errorf("place: %d qubits exceed %d storage traps", numQubits, a.TotalStorageTraps())
	}
	entY := a.Entanglement[0].Offset.Y
	traps := a.AllStorageTraps()
	// Sort rows by distance to the entanglement zone, then columns ascending.
	sort.Slice(traps, func(i, j int) bool {
		pi, pj := a.TrapPos(traps[i]), a.TrapPos(traps[j])
		di, dj := math.Abs(pi.Y-entY), math.Abs(pj.Y-entY)
		if di != dj {
			return di < dj
		}
		return pi.X < pj.X
	})
	out := make([]arch.TrapRef, numQubits)
	copy(out, traps[:numQubits])
	return out, nil
}

// gateForCost is a precomputed 2Q-gate record for the SA objective.
type gateForCost struct {
	q1, q2 int
	weight float64 // w_g = max(0.1, 1 − 0.1(t−1)), t = Rydberg stage (1-based)
}

// collectWeightedGates extracts every CZ with its stage-decay weight (Eq. 2).
func collectWeightedGates(s *circuit.Staged) []gateForCost {
	var gates []gateForCost
	stage := 0
	for _, st := range s.Stages {
		if st.Kind != circuit.RydbergStage {
			continue
		}
		stage++
		w := math.Max(0.1, 1-0.1*float64(stage-1))
		for _, g := range st.Gates {
			gates = append(gates, gateForCost{q1: g.Qubits[0], q2: g.Qubits[1], weight: w})
		}
	}
	return gates
}

// saState is the annealing state: an injective map qubit → storage trap.
type saState struct {
	a      *arch.Architecture
	gates  []gateForCost
	trapOf []arch.TrapRef
	pts    []geom.Point // cached physical positions per qubit
	// free traps for jump moves
	free []arch.TrapRef
	occ  map[arch.TrapRef]int // trap → qubit
}

func (s *saState) Cost() float64 {
	total := 0.0
	for _, g := range s.gates {
		p1, p2 := s.pts[g.q1], s.pts[g.q2]
		site := s.a.SitePos(nearSiteForGate(s.a, p1, p2))
		total += g.weight * gateCost(s.a, site, p1, p2)
	}
	return total
}

func (s *saState) Propose(r *rand.Rand) func() {
	n := len(s.trapOf)
	q := r.Intn(n)
	if len(s.free) > 0 && r.Float64() < 0.5 {
		// Jump to a random empty trap.
		fi := r.Intn(len(s.free))
		newTrap := s.free[fi]
		oldTrap := s.trapOf[q]
		s.free[fi] = oldTrap
		delete(s.occ, oldTrap)
		s.occ[newTrap] = q
		s.trapOf[q] = newTrap
		s.pts[q] = s.a.TrapPos(newTrap)
		return func() {
			s.free[fi] = newTrap
			delete(s.occ, newTrap)
			s.occ[oldTrap] = q
			s.trapOf[q] = oldTrap
			s.pts[q] = s.a.TrapPos(oldTrap)
		}
	}
	// Swap two qubits' traps.
	q2 := r.Intn(n)
	for q2 == q && n > 1 {
		q2 = r.Intn(n)
	}
	t1, t2 := s.trapOf[q], s.trapOf[q2]
	swap := func() {
		s.trapOf[q], s.trapOf[q2] = s.trapOf[q2], s.trapOf[q]
		s.occ[s.trapOf[q]] = q
		s.occ[s.trapOf[q2]] = q2
		s.pts[q] = s.a.TrapPos(s.trapOf[q])
		s.pts[q2] = s.a.TrapPos(s.trapOf[q2])
	}
	swap()
	_ = t1
	_ = t2
	return swap
}

// SAInitial refines the trivial initial placement with simulated annealing
// over Eq. 2 (paper §V-A; 1000-iteration limit by default). The candidate
// trap pool is restricted to a neighborhood of the trivial placement large
// enough to cover every qubit plus slack, keeping the search local — in the
// reference architecture qubits occupy the storage rows nearest to the
// entanglement zone.
func SAInitial(a *arch.Architecture, staged *circuit.Staged, iterations int, r *rand.Rand) ([]arch.TrapRef, error) {
	base, err := TrivialInitial(a, staged.NumQubits)
	if err != nil {
		return nil, err
	}
	gates := collectWeightedGates(staged)
	if len(gates) == 0 || iterations <= 0 {
		return base, nil
	}

	// Candidate pool: the traps of the trivial placement plus the next rows
	// of slack (2× the qubit count), in the same nearest-row-first order.
	entY := a.Entanglement[0].Offset.Y
	all := a.AllStorageTraps()
	sort.Slice(all, func(i, j int) bool {
		pi, pj := a.TrapPos(all[i]), a.TrapPos(all[j])
		di, dj := math.Abs(pi.Y-entY), math.Abs(pj.Y-entY)
		if di != dj {
			return di < dj
		}
		return pi.X < pj.X
	})
	poolSize := staged.NumQubits * 2
	if poolSize > len(all) {
		poolSize = len(all)
	}
	pool := all[:poolSize]

	st := &saState{
		a:      a,
		gates:  gates,
		trapOf: append([]arch.TrapRef(nil), base...),
		pts:    make([]geom.Point, staged.NumQubits),
		occ:    make(map[arch.TrapRef]int, staged.NumQubits),
	}
	for q, t := range st.trapOf {
		st.pts[q] = a.TrapPos(t)
		st.occ[t] = q
	}
	for _, t := range pool {
		if _, taken := st.occ[t]; !taken {
			st.free = append(st.free, t)
		}
	}
	anneal.Run(st, anneal.Options{Iterations: iterations}, r)
	return st.trapOf, nil
}
