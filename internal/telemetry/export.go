package telemetry

import (
	"encoding/json"
	"fmt"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete event ("ph":"X") with microsecond timestamps, loadable in
// Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level Chrome trace_event JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders traces as Chrome trace_event JSON (the "JSON Object
// Format" with a traceEvents array). Each trace maps to its own tid so
// concurrent requests stack as separate tracks; span timestamps are absolute
// wall-clock microseconds, so traces from one process line up on a shared
// axis. The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing.
func ChromeTrace(traces []TraceData) ([]byte, error) {
	events := make([]chromeEvent, 0, len(traces)*8)
	for i, td := range traces {
		tid := i + 1
		base := td.Start.UnixMicro()
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": fmt.Sprintf("%s %s", td.Name, td.ID)},
		})
		for _, sp := range td.Spans {
			ev := chromeEvent{
				Name: sp.Name, Cat: "zac", Ph: "X",
				TS: base + sp.StartUS, Dur: sp.DurUS,
				PID: 1, TID: tid,
			}
			if len(sp.Attrs) > 0 {
				ev.Args = make(map[string]string, len(sp.Attrs)+1)
				for _, a := range sp.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			if sp.Parent == 0 {
				if ev.Args == nil {
					ev.Args = map[string]string{}
				}
				ev.Args["trace_id"] = td.ID
			}
			events = append(events, ev)
		}
	}
	return json.Marshal(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
