package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedGatesUnitary(t *testing.T) {
	for name, m := range map[string]Mat2{
		"H": H(), "X": X(), "Y": Y(), "Z": Z(),
		"S": S(), "Sdg": Sdg(), "T": T(), "Tdg": Tdg(),
		"RX": RX(0.7), "RY": RY(-1.3), "RZ": RZ(2.2),
		"U3": U3(0.5, 1.5, -2.5), "P": Phase(0.9),
	} {
		if !m.IsUnitary(1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestGateIdentities(t *testing.T) {
	cases := []struct {
		name string
		got  Mat2
		want Mat2
	}{
		{"H*H = I", Mul(H(), H()), Identity()},
		{"X*X = I", Mul(X(), X()), Identity()},
		{"S*S = Z", Mul(S(), S()), Z()},
		{"T*T = S", Mul(T(), T()), S()},
		{"S*Sdg = I", Mul(S(), Sdg()), Identity()},
		{"T*Tdg = I", Mul(T(), Tdg()), Identity()},
		{"HZH = X", Mul(H(), Mul(Z(), H())), X()},
		{"HXH = Z", Mul(H(), Mul(X(), H())), Z()},
		{"RZ(pi) ~ Z", RZ(math.Pi), Z()},
		{"RX(pi) ~ X", RX(math.Pi), X()},
		{"RY(pi) ~ Y", RY(math.Pi), Y()},
		{"U3(pi/2,0,pi) = H", U3(math.Pi/2, 0, math.Pi), H()},
		{"U3(pi,0,pi) = X", U3(math.Pi, 0, math.Pi), X()},
		{"U3(0,0,pi) = Z", U3(0, 0, math.Pi), Z()},
		{"P(l) = U3(0,0,l)", Phase(1.234), U3(0, 0, 1.234)},
	}
	for _, c := range cases {
		if d := PhaseDistance(c.got, c.want); d > 1e-9 {
			t.Errorf("%s: phase distance %g", c.name, d)
		}
	}
}

func TestPhaseDistanceInvariant(t *testing.T) {
	m := U3(0.7, 0.3, -1.1)
	rot := Scale(complexExp(0.83), m)
	if d := PhaseDistance(rot, m); d > 1e-9 {
		t.Errorf("global phase should not matter, got %g", d)
	}
	if d := PhaseDistance(X(), Z()); d < 0.5 {
		t.Errorf("distinct gates should be far apart, got %g", d)
	}
}

func complexExp(a float64) complex128 {
	return complex(math.Cos(a), math.Sin(a))
}

func randUnitary(r *rand.Rand) Mat2 {
	m := U3(r.Float64()*math.Pi, (r.Float64()-0.5)*2*math.Pi, (r.Float64()-0.5)*2*math.Pi)
	return Scale(complexExp((r.Float64()-0.5)*2*math.Pi), m)
}

func TestZYZRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		m := randUnitary(r)
		th, ph, la, err := ZYZ(m)
		if err != nil {
			t.Fatalf("ZYZ error: %v", err)
		}
		if d := PhaseDistance(U3(th, ph, la), m); d > 1e-7 {
			t.Fatalf("iter %d: round trip distance %g for %+v (angles %v %v %v)", i, d, m, th, ph, la)
		}
	}
}

func TestZYZEdgeCases(t *testing.T) {
	for name, m := range map[string]Mat2{
		"I": Identity(), "Z": Z(), "X": X(), "Y": Y(),
		"S": S(), "RZ(0.001)": RZ(0.001), "RX(pi-1e-9)": RX(math.Pi - 1e-9),
		"phase*I": Scale(complexExp(1.1), Identity()),
	} {
		th, ph, la, err := ZYZ(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := PhaseDistance(U3(th, ph, la), m); d > 1e-6 {
			t.Errorf("%s: round-trip distance %g", name, d)
		}
	}
}

func TestZYZRejectsNonUnitary(t *testing.T) {
	if _, _, _, err := ZYZ(Mat2{1, 1, 1, 1}); err == nil {
		t.Error("expected error for non-unitary input")
	}
}

func TestMulAssociativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b, c := randUnitary(r), randUnitary(r), randUnitary(r)
		return maxEntryDist(Mul(Mul(a, b), c), Mul(a, Mul(b, c))) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDaggerInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		m := randUnitary(r)
		if d := maxEntryDist(Mul(m, m.Dagger()), Identity()); d > 1e-9 {
			t.Fatalf("m·m† != I, dist %g", d)
		}
	}
}

func TestIsIdentity(t *testing.T) {
	if !Identity().IsIdentity(1e-9) {
		t.Error("I should be identity")
	}
	if !Scale(complexExp(0.5), Identity()).IsIdentity(1e-9) {
		t.Error("phase*I should be identity up to phase")
	}
	if X().IsIdentity(1e-3) {
		t.Error("X is not identity")
	}
	if RZ(1e-12).IsIdentity(1e-15) {
		// extremely tight tolerance may fail; just ensure a loose one passes
		t.Log("tight tolerance rejected near-identity (acceptable)")
	}
	if !RZ(1e-12).IsIdentity(1e-9) {
		t.Error("RZ(1e-12) should be identity within 1e-9")
	}
}

func TestNormAngle(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{0, 0}, {math.Pi, math.Pi}, {-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi}, {2 * math.Pi, 0}, {-0.5, -0.5},
	} {
		if got := normAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("normAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
