package sc

import (
	"fmt"

	"zac/internal/circuit"
	"zac/internal/fidelity"
)

// Result is the evaluation of a routed superconducting execution.
type Result struct {
	Stats     fidelity.Stats
	Breakdown fidelity.Breakdown
	NumSwaps  int
	Duration  float64 // µs
}

// Compile routes a preprocessed {CZ,U3} staged circuit onto the coupling
// graph with SABRE-style swap insertion (move one operand hop by hop along a
// BFS shortest path until the pair is adjacent) and evaluates it under the
// given platform parameters. Gate timing is ASAP per physical qubit; a SWAP
// costs three 2Q gates.
func Compile(staged *circuit.Staged, g *Coupling, p fidelity.Params) (*Result, error) {
	n := staged.NumQubits
	if n > g.N {
		return nil, fmt.Errorf("sc: %d logical qubits exceed %d physical on %s", n, g.N, g.Name)
	}
	// Initial layout: logical qubits in index order along a near-Hamiltonian
	// greedy walk of the coupling graph, so chain-structured circuits start
	// near-adjacent (the role SABRE's layout pass plays in the paper's
	// Qiskit flow). On a grid this yields the serpentine order.
	order := pathOrder(g)
	physOf := make([]int, n) // logical → physical
	logAt := make([]int, g.N)
	for i := range logAt {
		logAt[i] = -1
	}
	for q := 0; q < n; q++ {
		physOf[q] = order[q]
		logAt[order[q]] = q
	}

	var st fidelity.Stats
	st.Busy = make([]float64, n)
	ready := make([]float64, g.N) // per-physical-qubit availability time
	res := &Result{}

	// exec2Q schedules a 2Q gate on adjacent physical qubits.
	exec2Q := func(pa, pb int, dur float64) (begin float64) {
		begin = ready[pa]
		if ready[pb] > begin {
			begin = ready[pb]
		}
		end := begin + dur
		ready[pa], ready[pb] = end, end
		return begin
	}
	busy2Q := func(pa, pb int, dur float64) {
		if la := logAt[pa]; la >= 0 {
			st.Busy[la] += dur
		}
		if lb := logAt[pb]; lb >= 0 {
			st.Busy[lb] += dur
		}
	}
	swap := func(pa, pb int) {
		res.NumSwaps++
		st.TwoQGates += 3
		dur := 3 * p.T2Q
		busy2Q(pa, pb, dur)
		exec2Q(pa, pb, dur)
		la, lb := logAt[pa], logAt[pb]
		logAt[pa], logAt[pb] = lb, la
		if la >= 0 {
			physOf[la] = pb
		}
		if lb >= 0 {
			physOf[lb] = pa
		}
	}

	for _, stage := range staged.Stages {
		for _, gate := range stage.Gates {
			switch gate.Kind {
			case circuit.U3:
				q := gate.Qubits[0]
				pq := physOf[q]
				st.OneQGates++
				st.Busy[q] += p.T1Q
				ready[pq] += p.T1Q
			case circuit.CZ:
				a, b := gate.Qubits[0], gate.Qubits[1]
				for !g.Adjacent(physOf[a], physOf[b]) {
					path := g.ShortestPath(physOf[a], physOf[b])
					if path == nil {
						return nil, fmt.Errorf("sc: qubits %d and %d disconnected on %s", a, b, g.Name)
					}
					swap(path[0], path[1])
				}
				st.TwoQGates++
				st.Busy[a] += p.T2Q
				st.Busy[b] += p.T2Q
				exec2Q(physOf[a], physOf[b], p.T2Q)
			default:
				return nil, fmt.Errorf("sc: unexpected gate kind %s", gate.Kind)
			}
		}
	}

	dur := 0.0
	for _, t := range ready {
		if t > dur {
			dur = t
		}
	}
	st.Duration = dur
	res.Stats = st
	res.Duration = dur
	res.Breakdown = fidelity.Compute(p, st)
	return res, nil
}

// pathOrder returns the physical qubits along a greedy walk: keep stepping
// to the lowest-index unvisited neighbor; when stuck, jump to the nearest
// unvisited vertex (by BFS). Consecutive entries are adjacent except at the
// rare jumps, so consecutive logical indices land next to each other.
func pathOrder(g *Coupling) []int {
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	cur := 0
	seen[0] = true
	order = append(order, 0)
	for len(order) < g.N {
		next := -1
		for _, v := range g.Adj[cur] {
			if !seen[v] && (next == -1 || v < next) {
				next = v
			}
		}
		if next == -1 {
			next = nearestUnvisited(g, cur, seen)
			if next == -1 {
				// Disconnected remainder: take the lowest unvisited vertex.
				for v := 0; v < g.N; v++ {
					if !seen[v] {
						next = v
						break
					}
				}
			}
		}
		seen[next] = true
		order = append(order, next)
		cur = next
	}
	return order
}

func nearestUnvisited(g *Coupling, from int, seen []bool) int {
	visited := make([]bool, g.N)
	visited[from] = true
	queue := []int{from}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range g.Adj[u] {
			if visited[v] {
				continue
			}
			if !seen[v] {
				return v
			}
			visited[v] = true
			queue = append(queue, v)
		}
	}
	return -1
}
