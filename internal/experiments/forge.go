package experiments

import (
	"context"

	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/workload"
)

// forgeCols are the neutral-atom compilers the workload-forge sweep
// compares (the same trio as the static extension study).
var forgeCols = []string{ColEnola, ColNALAC, ColZAC}

// defaultForgeSpecs is the sweep run when no specs are given: one pinned
// spec per registered family, at sizes comparable to the paper suite.
func defaultForgeSpecs() []string {
	return []string{
		"clifford:n=24,gates=220,t=20,seed=11",
		"rb:n=24,depth=16,seed=11",
		"shuffle:n=32,depth=12,seed=11",
		"qaoa:n=32,p=2,seed=11",
		"ising:n=64,layers=2",
		"hiqp:logblocks=5,rounds=2",
	}
}

// forgeBenchmark adapts one workload spec into a benchmark entry the
// experiment engine can fan out. The canonical spec becomes the benchmark
// name, so every compile cache key — memory, disk, and zac-serve's — is
// keyed by the exact workload. Generation happens once here; Build hands
// out clones of the deterministic circuit.
func forgeBenchmark(spec string) (bench.Benchmark, error) {
	s, err := workload.Parse(spec)
	if err != nil {
		return bench.Benchmark{}, err
	}
	c, err := s.Generate()
	if err != nil {
		return bench.Benchmark{}, err
	}
	return bench.Benchmark{
		Name:      c.Name, // the canonical spec
		NumQubits: c.NumQubits,
		Build:     func() *circuit.Circuit { return c.Clone() },
	}, nil
}

// Forge sweeps workload-forge specs (subset entries; nil = one pinned spec
// per family) across the neutral-atom compiler columns — the generated
// counterpart of the `workloads` extension study, reaching widths, depths,
// and structures the static corpus never does. It is the `zac-bench
// -workload` entry point. Subset entries that are not workload specs (the
// static benchmark names an `-experiment all -circuits …` run passes to
// every experiment) are skipped, mirroring how the `workloads` study
// filters its fixed family list; an invalid spec for a known family is
// still an error.
func Forge(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	specs := subset
	if len(specs) == 0 {
		specs = defaultForgeSpecs()
	} else {
		specs = nil
		for _, s := range subset {
			if workload.IsSpec(s) {
				specs = append(specs, s)
			}
		}
	}
	benches := make([]bench.Benchmark, len(specs))
	for i, spec := range specs {
		b, err := forgeBenchmark(spec)
		if err != nil {
			return nil, err
		}
		benches[i] = b
	}
	fid := &Table{Title: "Workload forge: generated families (fidelity)", Columns: forgeCols}
	dur := &Table{Title: "Workload forge: generated families (duration ms)", Columns: forgeCols}
	res, err := benchCols(ctx, cfg, "forge", benches, forgeCols)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		fRow, dRow := map[string]float64{}, map[string]float64{}
		for col, v := range res[i] {
			fRow[col] = v.breakdown.Total
			dRow[col] = v.duration / 1000
		}
		fid.AddRow(b.Name, fRow)
		dur.AddRow(b.Name, dRow)
	}
	return []*Table{fid, dur}, nil
}
