package experiments

import (
	"zac/internal/arch"
	"zac/internal/baseline/enola"
	"zac/internal/baseline/nalac"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/resynth"
)

// Workloads evaluates the extension workload families (QAOA, VQE, 2D Ising,
// random Clifford — the algorithm classes the paper's introduction
// motivates) across the three neutral-atom compilers, checking that ZAC's
// advantage generalizes beyond the QASMBench suite.
func Workloads(subset []string) ([]*Table, error) {
	var benches []bench.Benchmark
	if len(subset) == 0 {
		benches = bench.ExtraAll()
	} else {
		want := map[string]bool{}
		for _, n := range subset {
			want[n] = true
		}
		for _, b := range bench.ExtraAll() {
			if want[b.Name] {
				benches = append(benches, b)
			}
		}
	}
	zoned := arch.Reference()
	mono := arch.Monolithic()
	fid := &Table{
		Title:   "Extension: workload families (fidelity)",
		Columns: []string{ColEnola, ColNALAC, ColZAC},
	}
	dur := &Table{
		Title:   "Extension: workload families (duration ms)",
		Columns: []string{ColEnola, ColNALAC, ColZAC},
	}
	for _, b := range benches {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, err
		}
		staged = circuit.SplitRydbergStages(staged, zoned.TotalSites())

		zr, err := core.CompileStaged(staged, zoned, core.Default())
		if err != nil {
			return nil, err
		}
		nr, err := nalac.Compile(staged, zoned)
		if err != nil {
			return nil, err
		}
		er, err := enola.Compile(staged, mono)
		if err != nil {
			return nil, err
		}
		fid.AddRow(b.Name, map[string]float64{
			ColEnola: er.Breakdown.Total, ColNALAC: nr.Breakdown.Total, ColZAC: zr.Breakdown.Total,
		})
		dur.AddRow(b.Name, map[string]float64{
			ColEnola: er.Duration / 1000, ColNALAC: nr.Duration / 1000, ColZAC: zr.Duration / 1000,
		})
	}
	return []*Table{fid, dur}, nil
}
