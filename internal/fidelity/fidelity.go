// Package fidelity implements the paper's fidelity and duration model
// (§VII-B): the total circuit fidelity is the product of per-operation terms
//
//	f = f1^g1 · f2^g2 · fexc^Nexc · ftran^Ntran · Πq (1 − tq/T2)
//
// where g1/g2 count 1Q/2Q gates, Nexc counts idle qubits excited by the
// Rydberg laser, Ntran counts atom transfers, and tq is the idle time of
// qubit q under a linear decoherence model.
package fidelity

import "math"

// Params holds the per-operation fidelities, durations and coherence time
// of a platform (Table I rows).
type Params struct {
	F1    float64 // single-qubit gate fidelity
	F2    float64 // two-qubit gate fidelity
	FExc  float64 // idle-qubit Rydberg excitation fidelity (neutral atoms)
	FTran float64 // atom-transfer fidelity (neutral atoms)

	T1Q   float64 // single-qubit gate duration, µs
	T2Q   float64 // two-qubit gate duration, µs
	TTran float64 // atom-transfer duration, µs

	T2 float64 // coherence time, µs
}

// NeutralAtom returns the Table I neutral-atom parameter set [4], [5].
func NeutralAtom() Params {
	return Params{
		F1: 0.9997, F2: 0.995, FExc: 0.9975, FTran: 0.999,
		T1Q: 52, T2Q: 0.36, TTran: 15,
		T2: 1.5e6,
	}
}

// SCHeron returns the Table I superconducting Heron (ibm_torino) set [1].
func SCHeron() Params {
	return Params{
		F1: 0.9997, F2: 0.999,
		T1Q: 0.025, T2Q: 0.068,
		T2: 311,
	}
}

// SCGrid returns the Table I superconducting grid (sycamore-style) set [13].
func SCGrid() Params {
	return Params{
		F1: 0.9997, F2: 0.999,
		T1Q: 0.025, T2Q: 0.042,
		T2: 89,
	}
}

// Stats aggregates the error-relevant event counts of a compiled circuit.
type Stats struct {
	OneQGates int // g1
	TwoQGates int // g2
	Excited   int // Nexc: idle qubits ever hit by a Rydberg exposure
	Transfers int // Ntran: tweezer-to-tweezer atom transfers

	Duration float64   // total circuit duration, µs
	Busy     []float64 // per-qubit busy time (gates + transfers + movement), µs
}

// AddBusy accumulates busy time for qubit q, growing the slice as needed.
func (s *Stats) AddBusy(q int, t float64) {
	for len(s.Busy) <= q {
		s.Busy = append(s.Busy, 0)
	}
	s.Busy[q] += t
}

// Merge accumulates other into s (durations take the max; counts add).
func (s *Stats) Merge(other Stats) {
	s.OneQGates += other.OneQGates
	s.TwoQGates += other.TwoQGates
	s.Excited += other.Excited
	s.Transfers += other.Transfers
	if other.Duration > s.Duration {
		s.Duration = other.Duration
	}
	for q, b := range other.Busy {
		s.AddBusy(q, b)
	}
}

// Breakdown is the per-term fidelity decomposition reported in the paper's
// Fig. 9 and Table II.
type Breakdown struct {
	OneQ     float64 // f1^g1
	TwoQ     float64 // f2^g2
	Excite   float64 // fexc^Nexc
	Transfer float64 // ftran^Ntran
	Decohere float64 // Πq (1 − tq/T2)
	Total    float64
}

// TwoQCombined returns the paper's "2Q gate" breakdown column, which folds
// the excitation term into the gate term (Fig. 9 caption).
func (b Breakdown) TwoQCombined() float64 { return b.TwoQ * b.Excite }

// Compute evaluates the fidelity model for the given platform and circuit
// statistics.
func Compute(p Params, s Stats) Breakdown {
	b := Breakdown{
		OneQ:     math.Pow(p.F1, float64(s.OneQGates)),
		TwoQ:     math.Pow(p.F2, float64(s.TwoQGates)),
		Excite:   1,
		Transfer: 1,
		Decohere: 1,
	}
	if p.FExc > 0 && s.Excited > 0 {
		b.Excite = math.Pow(p.FExc, float64(s.Excited))
	}
	if p.FTran > 0 && s.Transfers > 0 {
		b.Transfer = math.Pow(p.FTran, float64(s.Transfers))
	}
	for _, busy := range s.Busy {
		idle := s.Duration - busy
		if idle < 0 {
			idle = 0
		}
		term := 1 - idle/p.T2
		if term < 0 {
			term = 0
		}
		b.Decohere *= term
	}
	b.Total = b.OneQ * b.TwoQ * b.Excite * b.Transfer * b.Decohere
	return b
}

// GeoMean returns the geometric mean of xs (the paper's headline summary
// statistic); zero and negative values are clamped to a tiny floor so a
// single zero-fidelity circuit does not erase the mean entirely.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x < 1e-300 {
			x = 1e-300
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
