// Package compiler is the unified compiler seam of the reproduction: one
// interface over ZAC's ablation presets (paper Fig. 11), the published
// neutral-atom baselines (Enola, Atomique, NALAC — §VII-A), and the
// superconducting SABRE router, a process-wide registry that resolves them
// by name, and a pass-granular artifact cache so preprocessing and
// placement artifacts are computed once and shared across compilers. The
// experiment harness, the zac-serve HTTP service, and every CLI route their
// compilations through this package, so a new backend registered here is
// immediately selectable everywhere (`zac -compiler`, `zac-bench
// -compiler`, `zac-serve ?compiler=`).
package compiler

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/core"
)

// Options carries the cross-compiler knobs of one compilation. The zero
// value compiles with the compiler's preset configuration and no artifact
// sharing.
type Options struct {
	// Key identifies the input circuit for pass-granular memoization — a
	// benchmark name or a content digest. Empty disables artifact sharing
	// even when Artifacts is set.
	Key string
	// Artifacts is the pass-artifact cache shared across compilers; nil
	// disables memoization.
	Artifacts *Artifacts
	// Core overrides the ZAC pipeline configuration (nil = the compiler's
	// preset). Baseline compilers ignore it.
	Core *core.Options
	// SARestarts, when positive, overrides the preset's annealing restart
	// count for ZAC-family compilers (place.Options.SARestarts). Values > 1
	// change the produced plan, so callers owning cache keys must reflect
	// it. Baseline compilers ignore it.
	SARestarts int
	// Workers, when positive, bounds one compilation's intra-compile
	// parallelism for ZAC-family compilers (place.Options.Workers). It never
	// changes outputs and must stay out of cache keys. Baseline compilers
	// ignore it.
	Workers int
}

// Compiler compiles an already-preprocessed staged circuit for an
// architecture. Implementations must be deterministic: the same staged
// circuit, architecture, and options always produce the same result.
type Compiler interface {
	// Name returns the compiler's canonical registry name.
	Name() string
	// Compile compiles staged for a. The context is plumbed through the
	// pass pipeline, so cancellation stops a compilation mid-pass.
	Compile(ctx context.Context, staged *circuit.Staged, a *arch.Architecture, opts Options) (*core.Result, error)
}

// DefaultArcher is implemented by compilers that target a specific
// architecture when the caller does not supply one (the monolithic
// baselines). Compilers without it default to the paper's zoned reference
// architecture.
type DefaultArcher interface {
	DefaultArch() *arch.Architecture
}

// StageSplitter is implemented by compilers whose staged input should be
// split to Rydberg-site capacity before compilation. The SC routers consume
// the flat staging and return false.
type StageSplitter interface {
	SplitStages() bool
}

// TargetArch returns the architecture a registry compiler compiles for when
// the caller expresses no preference: the compiler's DefaultArch if it
// declares one, else the paper's reference architecture.
func TargetArch(c Compiler) *arch.Architecture {
	if da, ok := c.(DefaultArcher); ok {
		return da.DefaultArch()
	}
	return arch.Reference()
}

// WantsSplit reports whether a registry compiler's staged input should be
// split to site capacity (true for every compiler that does not opt out via
// StageSplitter).
func WantsSplit(c Compiler) bool {
	if ss, ok := c.(StageSplitter); ok {
		return ss.SplitStages()
	}
	return true
}

// StageSplitCap returns the Rydberg-stage gate cap a compiler's staged
// input is split to — the single shaping rule every surface (CLI, serve,
// harness) shares so the same compiler name yields the same numbers
// everywhere. Baselines split to the zoned reference architecture's site
// capacity, the paper's evaluation shaping; SC routers consume flat
// staging (0 = no split); the ZAC family returns 0 here because its CLI
// and service surfaces keep unsplit staging for byte-stable ZAIR (the
// experiment harness splits ZAC input itself, sharing one staged artifact
// across all neutral-atom columns).
func StageSplitCap(c Compiler) int {
	if _, zacFamily := Setting(c.Name()); zacFamily {
		return 0
	}
	if !WantsSplit(c) {
		return 0
	}
	return arch.Reference().TotalSites()
}

var (
	regMu    sync.RWMutex
	registry = map[string]Compiler{}
	aliases  = map[string]string{}
)

// Register adds a compiler to the process-wide registry under its canonical
// name, panicking on duplicates (registration is an init-time affair).
func Register(c Compiler) {
	regMu.Lock()
	defer regMu.Unlock()
	name := canonical(c.Name())
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compiler: duplicate registration of %q", name))
	}
	registry[name] = c
}

// RegisterAlias maps an alternative spelling (e.g. the paper's ablation
// legend "SA+dynPlace+reuse") onto a canonical registry name.
func RegisterAlias(alias, name string) {
	regMu.Lock()
	defer regMu.Unlock()
	aliases[canonical(alias)] = canonical(name)
}

// canonical normalizes a compiler name for lookup: lower-case, trimmed.
func canonical(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Get resolves a compiler by name (case-insensitive; aliases accepted).
func Get(name string) (Compiler, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	key := canonical(name)
	if target, ok := aliases[key]; ok {
		key = target
	}
	c, ok := registry[key]
	if !ok {
		names := namesLocked()
		return nil, fmt.Errorf("compiler: unknown compiler %q (have %s)", name, strings.Join(names, ", "))
	}
	return c, nil
}

// Names returns the sorted canonical names of every registered compiler.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
