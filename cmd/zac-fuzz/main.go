// Command zac-fuzz is the compile→verify round-trip fuzzer: it generates
// circuits from the workload forge (pinned specs or a seeded random stream),
// round-trips each through the QASM writer/parser and every registry
// compiler, and verifies the invariants the hardware imposes — ZAIR replay
// (qubit conservation, AOD exclusivity, tone ordering), gate-set legality of
// the staged program, statevector equivalence at small widths, and fidelity
// sanity. Any failing input is greedily shrunk to a minimal reproduction and
// printed as OpenQASM, ready to replay with `zac -qasm`.
//
//	zac-fuzz                                    # 25 random specs, all compilers
//	zac-fuzz -n 200 -seed 42                    # bigger seeded run
//	zac-fuzz -duration 10m                      # nightly: fuzz until the clock runs out
//	zac-fuzz -spec "rb:n=32,depth=20,seed=7"    # exact specs (';'-separated)
//	zac-fuzz -smoke                             # the pinned CI specs (make fuzz-smoke)
//	zac-fuzz -compilers zac,enola -simmax 12
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"zac/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	specsFlag := flag.String("spec", "", "';'-separated workload specs to round-trip (disables random fuzzing)")
	smoke := flag.Bool("smoke", false, "run the pinned CI smoke specs (same as make fuzz-smoke)")
	n := flag.Int("n", 25, "random specs to fuzz when no -spec/-smoke is given")
	seed := flag.Int64("seed", 1, "base seed of the random spec stream (runs are reproducible per seed)")
	duration := flag.Duration("duration", 0, "fuzz until this much time has passed (overrides -n; for nightly runs)")
	compilers := flag.String("compilers", "", "comma-separated registry compilers (default: whole registry)")
	simMax := flag.Int("simmax", 10, "max qubits for statevector equivalence checks")
	noShrink := flag.Bool("noshrink", false, "report failures without minimizing them")
	listWorkloads := flag.Bool("list-workloads", false, "list generator families with parameter schemas and exit")
	verbose := flag.Bool("v", false, "print one line per (spec, stage) check")
	flag.Parse()

	if *listWorkloads {
		fmt.Print(workload.List())
		return 0
	}

	opts := workload.FuzzOptions{SimMax: *simMax, NoShrink: *noShrink}
	if *compilers != "" {
		opts.Compilers = strings.Split(*compilers, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var specs []string
	switch {
	case *specsFlag != "":
		for _, s := range strings.Split(*specsFlag, ";") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
	case *smoke:
		specs = workload.SmokeSpecs()
	}

	start := time.Now()
	ran, failed := 0, 0
	runOne := func(spec string) error {
		failures, err := RoundTripVerbose(ctx, spec, opts, *verbose)
		if err != nil {
			return err
		}
		ran++
		for _, f := range failures {
			failed++
			fmt.Printf("FAIL %s\n", f)
		}
		return nil
	}

	var runErr error
	if specs != nil {
		for _, spec := range specs {
			if runErr = runOne(spec); runErr != nil {
				break
			}
		}
	} else {
		r := workload.NewRNG(*seed)
		for i := 0; ; i++ {
			if *duration > 0 {
				if ctx.Err() != nil {
					break
				}
			} else if i >= *n {
				break
			}
			if runErr = runOne(workload.RandomSpec(r).Canonical()); runErr != nil {
				break
			}
		}
	}
	if runErr != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "zac-fuzz: %v\n", runErr)
		return 2
	}

	fmt.Printf("zac-fuzz: %d specs round-tripped in %s, %d invariant violations\n",
		ran, time.Since(start).Round(time.Millisecond), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// RoundTripVerbose wraps workload.RoundTrip with per-spec progress output.
func RoundTripVerbose(ctx context.Context, spec string, opts workload.FuzzOptions, verbose bool) ([]workload.Failure, error) {
	if verbose {
		fmt.Fprintf(os.Stderr, "[fuzz] %s\n", spec)
	}
	return workload.RoundTrip(ctx, spec, opts)
}
