package workload

import (
	"fmt"

	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/ftqc"
)

// The built-in families. Each is registered at init time, mirroring the
// compiler registry; external packages can Register additional families.
// Every size-like parameter carries a finite Max: specs arrive from
// untrusted surfaces (the zac-serve "workload" field), so a ~50-byte spec
// must never be able to request an effectively unbounded circuit. Only
// seed is unbounded — any value is equally cheap. Per-parameter caps do
// not bound products (n×depth), so every family additionally checks its
// closed-form gate estimate against MaxSpecGates before allocating
// anything.
func init() {
	Register(cliffordT{})
	Register(rbMirror{})
	Register(shuffle{})
	Register(qaoa{})
	Register(ising{})
	Register(hiqp{})
}

// cliffordT generates unstructured random Clifford+T circuits: the workload
// class of fault-tolerant compilation studies, where T density controls the
// magic-state cost. Unlike bench.RandomClifford it includes the non-Clifford
// T/T† layer and is reproducible across toolchains.
type cliffordT struct{}

func (cliffordT) Family() string   { return "clifford" }
func (cliffordT) Describe() string { return "random Clifford+T circuit (unstructured stress input)" }

func (cliffordT) Params() []Param {
	return []Param{
		{Name: "n", Default: 16, Min: 2, Max: 2048, FuzzMin: 2, FuzzMax: 24, Desc: "qubits"},
		{Name: "gates", Default: 120, Min: 1, Max: 200000, FuzzMin: 8, FuzzMax: 300, Desc: "gate count"},
		{Name: "t", Default: 15, Min: 0, Max: 100, FuzzMin: 0, FuzzMax: 40, Desc: "T/T† percentage"},
		{Name: "seed", Default: 1, Min: 0, Max: 0, FuzzMin: 0, FuzzMax: 1 << 30, Desc: "PRNG seed"},
	}
}

// MaxSpecGates bounds the gate count any single spec may request — the
// product guard behind the per-parameter Max caps. ~260k gates keeps the
// worst-case circuit in the tens of megabytes, a size one compile-semaphore
// slot can hold without letting a tiny request exhaust the process.
const MaxSpecGates = 1 << 18

// checkGateBudget rejects a spec whose closed-form gate estimate exceeds
// MaxSpecGates, before any gate is allocated.
func checkGateBudget(family string, estimate int64) error {
	if estimate > MaxSpecGates {
		return fmt.Errorf("%s: spec requests ~%d gates, budget %d", family, estimate, int64(MaxSpecGates))
	}
	return nil
}

func (cliffordT) Generate(v Values) (*circuit.Circuit, error) {
	n, gates, tpct := int(v["n"]), int(v["gates"]), int(v["t"])
	if err := checkGateBudget("clifford", v["gates"]); err != nil {
		return nil, err
	}
	r := NewRNG(v["seed"])
	c := circuit.New("clifford", n)
	oneQ := []circuit.Kind{circuit.H, circuit.S, circuit.Sdg, circuit.X, circuit.Y, circuit.Z}
	for i := 0; i < gates; i++ {
		switch {
		case r.Intn(100) < tpct:
			k := circuit.T
			if r.Intn(2) == 1 {
				k = circuit.Tdg
			}
			c.Append(k, []int{r.Intn(n)})
		case r.Intn(3) == 0: // one third of the Clifford draw is entangling
			k := circuit.CX
			if r.Intn(2) == 1 {
				k = circuit.CZ
			}
			// Two distinct qubits in O(1) — a Perm(n) here would make
			// generation O(n·gates), a real cost at serve-facing sizes.
			a := r.Intn(n)
			b := r.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(k, []int{a, b})
		default:
			c.Append(oneQ[r.Intn(len(oneQ))], []int{r.Intn(n)})
		}
	}
	return c, nil
}

// rbMirror generates randomized-benchmarking-style mirror stress sequences:
// depth layers of random single-qubit Cliffords interleaved with random CZ
// matchings, followed by the exact inverse sequence. The whole circuit
// composes to the identity, so the final state is |0…0⟩ — an invariant the
// fuzzer and the family's tests check by simulation.
type rbMirror struct{}

func (rbMirror) Family() string { return "rb" }
func (rbMirror) Describe() string {
	return "randomized-benchmarking mirror sequence (composes to identity)"
}

func (rbMirror) Params() []Param {
	return []Param{
		{Name: "n", Default: 16, Min: 1, Max: 2048, FuzzMin: 2, FuzzMax: 24, Desc: "qubits"},
		{Name: "depth", Default: 12, Min: 1, Max: 2048, FuzzMin: 1, FuzzMax: 60, Desc: "forward layers (total 2×depth)"},
		{Name: "seed", Default: 1, Min: 0, Max: 0, FuzzMin: 0, FuzzMax: 1 << 30, Desc: "PRNG seed"},
	}
}

// rbGates is the 1Q alphabet; rbInverse maps each entry to its inverse.
var rbGates = []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z, circuit.S, circuit.Sdg, circuit.T, circuit.Tdg}

var rbInverse = map[circuit.Kind]circuit.Kind{
	circuit.H: circuit.H, circuit.X: circuit.X, circuit.Y: circuit.Y, circuit.Z: circuit.Z,
	circuit.S: circuit.Sdg, circuit.Sdg: circuit.S, circuit.T: circuit.Tdg, circuit.Tdg: circuit.T,
}

func (rbMirror) Generate(v Values) (*circuit.Circuit, error) {
	n, depth := int(v["n"]), int(v["depth"])
	if err := checkGateBudget("rb", 2*v["depth"]*(v["n"]+v["n"]/2)); err != nil {
		return nil, err
	}
	r := NewRNG(v["seed"])
	type layer struct {
		oneQ  []circuit.Kind // per qubit
		pairs [][2]int       // disjoint CZ matching
	}
	layers := make([]layer, depth)
	for l := range layers {
		layers[l].oneQ = make([]circuit.Kind, n)
		for q := 0; q < n; q++ {
			layers[l].oneQ[q] = rbGates[r.Intn(len(rbGates))]
		}
		p := r.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			layers[l].pairs = append(layers[l].pairs, [2]int{p[i], p[i+1]})
		}
	}
	c := circuit.New("rb", n)
	for _, l := range layers {
		for q, k := range l.oneQ {
			c.Append(k, []int{q})
		}
		for _, pr := range l.pairs {
			c.Append(circuit.CZ, pr[:])
		}
	}
	// Mirror: CZ matchings are self-inverse; 1Q layers invert gate-wise.
	for li := depth - 1; li >= 0; li-- {
		l := layers[li]
		for i := len(l.pairs) - 1; i >= 0; i-- {
			c.Append(circuit.CZ, l.pairs[i][:])
		}
		for q, k := range l.oneQ {
			c.Append(rbInverse[k], []int{q})
		}
	}
	return c, nil
}

// shuffle generates movement-adversarial circuits: every Rydberg layer pairs
// qubits by a fresh random matching, so almost every qubit changes partner
// every stage and the placement/scheduling passes are forced into maximal
// rearrangement traffic — the opposite extreme of the suite's local-chain
// workloads. H layers between matchings keep resynthesis from merging
// adjacent CZ stages.
type shuffle struct{}

func (shuffle) Family() string   { return "shuffle" }
func (shuffle) Describe() string { return "movement-adversarial random matchings (placement stress)" }

func (shuffle) Params() []Param {
	return []Param{
		{Name: "n", Default: 32, Min: 2, Max: 2048, FuzzMin: 4, FuzzMax: 48, Desc: "qubits"},
		{Name: "depth", Default: 10, Min: 1, Max: 2048, FuzzMin: 1, FuzzMax: 40, Desc: "matching layers"},
		{Name: "seed", Default: 1, Min: 0, Max: 0, FuzzMin: 0, FuzzMax: 1 << 30, Desc: "PRNG seed"},
	}
}

func (shuffle) Generate(v Values) (*circuit.Circuit, error) {
	n, depth := int(v["n"]), int(v["depth"])
	if err := checkGateBudget("shuffle", v["depth"]*(v["n"]+v["n"]/2)); err != nil {
		return nil, err
	}
	r := NewRNG(v["seed"])
	c := circuit.New("shuffle", n)
	for l := 0; l < depth; l++ {
		for q := 0; q < n; q++ {
			c.Append(circuit.H, []int{q})
		}
		p := r.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			c.Append(circuit.CZ, []int{p[i], p[i+1]})
		}
	}
	return c, nil
}

// qaoa generates depth-p QAOA circuits on seeded random 3-regular graphs at
// arbitrary width — the parameterized counterpart of the fixed
// bench.ExtraAll instance, with a toolchain-stable PRNG.
type qaoa struct{}

func (qaoa) Family() string   { return "qaoa" }
func (qaoa) Describe() string { return "QAOA on a random 3-regular graph (width/depth parameterized)" }

func (qaoa) Params() []Param {
	return []Param{
		{Name: "n", Default: 32, Min: 4, Max: 2048, FuzzMin: 4, FuzzMax: 48, Desc: "vertices (rounded up to even)"},
		{Name: "p", Default: 2, Min: 1, Max: 128, FuzzMin: 1, FuzzMax: 6, Desc: "QAOA rounds"},
		{Name: "seed", Default: 1, Min: 0, Max: 0, FuzzMin: 0, FuzzMax: 1 << 30, Desc: "PRNG seed"},
	}
}

// Normalize rounds odd vertex counts up to even (3-regular graphs need an
// even order) before canonicalization, so qaoa:n=9 and qaoa:n=10 are one
// spec, one cache entry, and the canonical string states the real width.
func (qaoa) Normalize(v Values) {
	if v["n"]%2 != 0 {
		v["n"]++
	}
}

func (qaoa) Generate(v Values) (*circuit.Circuit, error) {
	n, p := int(v["n"]), int(v["p"])
	if err := checkGateBudget("qaoa", int64(n)+v["p"]*int64(n+3*n/2)); err != nil {
		return nil, err
	}
	r := NewRNG(v["seed"])
	edges := random3Regular(n, r)
	c := circuit.New("qaoa", n)
	for q := 0; q < n; q++ {
		c.Append(circuit.H, []int{q})
	}
	for round := 0; round < p; round++ {
		gamma := 0.3 + 0.1*float64(round)
		beta := 0.7 - 0.1*float64(round)
		for _, e := range edges {
			c.Append(circuit.RZZ, []int{e[0], e[1]}, 2*gamma)
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RX, []int{q}, 2*beta)
		}
	}
	return c, nil
}

// random3Regular samples a 3-regular simple graph as the union of three
// disjoint perfect matchings, retrying on collisions. After maxTries the
// sampler falls back to the circulant ring-plus-diameters graph, which is
// 3-regular for every even n — so generation always terminates.
func random3Regular(n int, r *RNG) [][2]int {
	const maxTries = 200
	for try := 0; try < maxTries; try++ {
		seen := map[[2]int]bool{}
		var edges [][2]int
		ok := true
		for m := 0; m < 3 && ok; m++ {
			perm := r.Perm(n)
			for i := 0; i+1 < n; i += 2 {
				a, b := perm[i], perm[i+1]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if seen[k] {
					ok = false
					break
				}
				seen[k] = true
				edges = append(edges, k)
			}
		}
		if ok {
			return edges
		}
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	for i := 0; i < n/2; i++ {
		edges = append(edges, [2]int{i, i + n/2})
	}
	return edges
}

// ising generates 1D transverse-field Ising Trotter circuits at arbitrary
// width and layer count, delegating to the deterministic bench generator
// (the fixed suite pins n=42/98 at one layer).
type ising struct{}

func (ising) Family() string   { return "ising" }
func (ising) Describe() string { return "1D transverse-field Ising Trotterization (chain locality)" }

func (ising) Params() []Param {
	return []Param{
		{Name: "n", Default: 42, Min: 2, Max: 2048, FuzzMin: 4, FuzzMax: 64, Desc: "chain sites"},
		{Name: "layers", Default: 1, Min: 1, Max: 512, FuzzMin: 1, FuzzMax: 6, Desc: "Trotter layers"},
	}
}

func (ising) Generate(v Values) (*circuit.Circuit, error) {
	if err := checkGateBudget("ising", v["n"]+v["layers"]*2*v["n"]); err != nil {
		return nil, err
	}
	return bench.Ising(int(v["n"]), int(v["layers"])), nil
}

// hiqp generates deeper FTQC workloads beyond the paper's single-pass hIQP:
// the block-level hypercube IQP circuit of internal/ftqc (each [[8,3,2]]
// block is one compiler qubit) repeated for `rounds` passes, so logical
// routing is stressed well past §VIII's one traversal. Block count is
// parameterized as log2 so every spec is a valid power of two.
type hiqp struct{}

func (hiqp) Family() string { return "hiqp" }
func (hiqp) Describe() string {
	return "multi-round hypercube IQP on [[8,3,2]] blocks (FTQC, block-level)"
}

func (hiqp) Params() []Param {
	return []Param{
		{Name: "logblocks", Default: 4, Min: 1, Max: 10, FuzzMin: 1, FuzzMax: 6, Desc: "log2 of the block count"},
		{Name: "rounds", Default: 1, Min: 1, Max: 64, FuzzMin: 1, FuzzMax: 3, Desc: "hypercube passes"},
	}
}

func (hiqp) Generate(v Values) (*circuit.Circuit, error) {
	blocks := 1 << uint(v["logblocks"])
	rounds := int(v["rounds"])
	// One pass: (log2(blocks)+1) in-block layers of `blocks` U3s plus
	// log2(blocks) CZ layers of blocks/2 gates.
	perPass := (v["logblocks"]+1)*int64(blocks) + v["logblocks"]*int64(blocks)/2
	if err := checkGateBudget("hiqp", v["rounds"]*perPass); err != nil {
		return nil, err
	}
	spec := ftqc.HIQPSpec{NumBlocks: blocks}
	staged, err := spec.BlockCircuit()
	if err != nil {
		return nil, err
	}
	pass := staged.Flatten()
	c := circuit.New("hiqp", blocks)
	for round := 0; round < rounds; round++ {
		c.Gates = append(c.Gates, pass.Clone().Gates...)
	}
	return c, nil
}
