package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"zac/internal/engine"
	"zac/internal/telemetry"
)

// TestCompileTrace is the tentpole acceptance test: one cold-cache compile
// yields one trace whose nested spans cover admission, both cache tiers,
// and all five pipeline passes; the trace id is echoed in the response body
// and the X-Trace-Id header; and the Chrome export is valid trace_event
// JSON.
func TestCompileTrace(t *testing.T) {
	disk, err := engine.OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(16)
	_, ts := newTestServer(t, Options{Telemetry: rec, Disk: disk})

	req, err := http.NewRequest("POST", ts.URL+"/v1/compile?zair=0",
		strings.NewReader(`{"circuit":"bv_n14"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("compile response carries no trace_id")
	}
	if got := resp.Header.Get("X-Trace-Id"); got != out.TraceID {
		t.Errorf("X-Trace-Id = %q, want %q", got, out.TraceID)
	}

	// The listing names the trace.
	status, body := do(t, "GET", ts.URL+"/v1/traces", "")
	if status != http.StatusOK {
		t.Fatalf("/v1/traces status = %d", status)
	}
	var listing TracesResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Enabled || len(listing.Traces) != 1 || listing.Traces[0].ID != out.TraceID {
		t.Fatalf("listing = %+v", listing)
	}

	// The detail view holds the full request story.
	status, body = do(t, "GET", ts.URL+"/v1/traces/"+out.TraceID, "")
	if status != http.StatusOK {
		t.Fatalf("trace detail status = %d", status)
	}
	var td telemetry.TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"serve.compile", "cache.lookup", "cache.mem", "cache.disk", "admission",
		"pass.validate", "pass.place", "pass.schedule", "pass.emit", "pass.fidelity",
	} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// ?id= on the collection endpoint serves the same detail.
	status, idBody := do(t, "GET", ts.URL+"/v1/traces?id="+out.TraceID, "")
	if status != http.StatusOK || !bytes.Equal(idBody, body) {
		t.Errorf("?id= view differs from /v1/traces/{id} (status %d)", status)
	}

	// Chrome export: valid trace_event JSON with one event per span plus
	// thread metadata.
	status, body = do(t, "GET", ts.URL+"/v1/traces/"+out.TraceID+"?format=chrome", "")
	if status != http.StatusOK {
		t.Fatalf("chrome export status = %d", status)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) != len(td.Spans)+1 {
		t.Errorf("chrome export has %d events, want %d", len(chrome.TraceEvents), len(td.Spans)+1)
	}

	// A second identical request is a memory hit: its own trace, tier mem.
	status, body = do(t, "POST", ts.URL+"/v1/compile?zair=0", `{"circuit":"bv_n14"}`)
	if status != http.StatusOK {
		t.Fatalf("warm compile status = %d", status)
	}
	var warm CompileResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.TraceID == "" || warm.TraceID == out.TraceID {
		t.Fatalf("warm trace id = %q (cold %q)", warm.TraceID, out.TraceID)
	}
	if !warm.Cached {
		t.Error("second identical request not served from cache")
	}
	wtd, ok := rec.Get(warm.TraceID)
	if !ok {
		t.Fatal("warm trace not retained")
	}
	tier := ""
	for _, sp := range wtd.Spans {
		if sp.Name == "cache.lookup" {
			for _, a := range sp.Attrs {
				if a.Key == "tier" {
					tier = a.Value
				}
			}
		}
	}
	if tier != "mem" {
		t.Errorf("warm lookup tier = %q, want mem", tier)
	}
}

// TestTracesDisabled pins the nil-recorder behavior: no trace_id in
// responses, an empty disabled listing, and 404 details — plus byte-stable
// compile responses (the golden corpus runs without a recorder, so the
// trace_id field must be absent, not empty).
func TestTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0", `{"circuit":"bv_n14"}`)
	if status != http.StatusOK {
		t.Fatalf("compile status = %d", status)
	}
	if bytes.Contains(body, []byte("trace_id")) {
		t.Error("disabled telemetry must omit trace_id from responses")
	}
	status, body = do(t, "GET", ts.URL+"/v1/traces", "")
	if status != http.StatusOK {
		t.Fatalf("/v1/traces status = %d", status)
	}
	var listing TracesResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Enabled || len(listing.Traces) != 0 {
		t.Fatalf("listing = %+v", listing)
	}
	if status, _ := do(t, "GET", ts.URL+"/v1/traces/deadbeef", ""); status != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", status)
	}
}

// TestCompileLogLine pins the structured request-completion log: one line
// per compile carrying trace_id, compiler, cache tier, status, and
// duration.
func TestCompileLogLine(t *testing.T) {
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(4)
	_, ts := newTestServer(t, Options{
		Telemetry: rec,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0", `{"circuit":"bv_n14"}`)
	if status != http.StatusOK {
		t.Fatalf("compile status = %d: %s", status, body)
	}
	var out CompileResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	var line struct {
		Msg      string `json:"msg"`
		TraceID  string `json:"trace_id"`
		Compiler string `json:"compiler"`
		Tier     string `json:"tier"`
		Status   string `json:"status"`
		Duration int64  `json:"duration"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log output is not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Msg != "compile" || line.TraceID != out.TraceID ||
		line.Compiler != "zac" || line.Tier != "compute" || line.Status != "ok" || line.Duration <= 0 {
		t.Errorf("log line = %+v", line)
	}
}
