// Package benchsuite is the performance observatory of the reproduction
// (RZBENCH/openhpca-style): a declarative run matrix of low-level micro
// kernels (the PR-3 placement hot path) and application-level compilations
// (forge workload families × registry compilers × architectures), executed
// through the engine worker pool with warm-up and repetition control. Every
// record is stamped with a machine fingerprint and a commit, appended to a
// persistent JSON-lines store, and consumed by trend queries, markdown/HTML
// report generators, and a benchstat-style Mann-Whitney regression gate —
// so "measurably faster" is always a measured, statistically gated claim,
// and BENCH_N.json is one export of this system instead of the system
// itself.
package benchsuite

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/matching"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/schedule"
	"zac/internal/workload"
)

// Kind classifies a matrix case: a low-level micro kernel or an
// application-level compilation.
type Kind string

// The case kinds of the matrix. KindPass records are never declared as
// cases: the runner derives them from a compile cell's pass probe, one
// "<case>/pass/<name>" record per pipeline pass.
const (
	KindMicro   Kind = "micro"
	KindCompile Kind = "compile"
	KindPass    Kind = "pass"
)

// Case is one cell of the run matrix: a named operation the runner times
// for a configurable number of repetitions. Setup cost (circuit generation,
// preprocessing) is paid once outside the timed region.
type Case struct {
	// Name is the stable identifier of the cell, e.g. "micro/jv_dense" or
	// "compile/zac/ref/rb:n=24,depth=16,seed=11". Store trends and gate
	// pairings key on it.
	Name string
	// Kind is the case's class (micro or compile).
	Kind Kind
	// ArchFP is the arch.Fingerprint of the architecture the case targets
	// ("" for kernels without one).
	ArchFP string
	// InnerIters is the number of operations folded into one timed
	// repetition; sub-millisecond kernels use > 1 so a repetition rises
	// above timer granularity. Recorded ns/op samples are per operation.
	InnerIters int
	// Procs, when positive, pins runtime.GOMAXPROCS to this value for the
	// duration of the cell (restored afterwards) — the scaling axis of the
	// multi-core cells. Because GOMAXPROCS is process-global, a matrix
	// containing any Procs > 0 cell must run with Workers == 1; Run refuses
	// otherwise. 0 leaves the runtime untouched.
	Procs int
	// setup builds the case's op closure; called once per run, outside
	// the timed region.
	setup func() (func(ctx context.Context) error, error)
	// passes, when non-nil, reports the per-pass timings of the most recent
	// op invocation. The runner samples it after every timed repetition and
	// emits one satellite "<case>/pass/<name>" record per pass, so the gate
	// can name the pass behind a compile-level regression.
	passes func() []core.PassTiming
}

// Micro returns the low-level kernel cases: the PR-3 placement hot path
// (JV dense/sparse assignment, SA initial placement, full BuildPlan),
// mirroring the go-test micro-benchmarks gate for gate so the observatory
// and `go test -bench` measure the same operations.
func Micro() []Case {
	refFP := arch.Reference().Fingerprint()
	cases := []Case{
		{
			Name: "micro/jv_dense", Kind: KindMicro, InnerIters: 50,
			setup: func() (func(context.Context) error, error) {
				r := rand.New(rand.NewSource(3))
				n := 80
				flat := make([]float64, n*n)
				for i := range flat {
					flat[i] = r.Float64() * 100
				}
				var s matching.Solver
				if _, _, err := s.SolveDense(n, n, flat); err != nil { // warm the scratch
					return nil, err
				}
				return func(context.Context) error {
					_, _, err := s.SolveDense(n, n, flat)
					return err
				}, nil
			},
		},
		{
			Name: "micro/jv_sparse", Kind: KindMicro, InnerIters: 50,
			setup: func() (func(context.Context) error, error) {
				r := rand.New(rand.NewSource(3))
				n, m, deg := 40, 400, 25
				rowStart := []int{0}
				var cols []int
				var costs []float64
				for i := 0; i < n; i++ {
					base := r.Intn(m - deg)
					for d := 0; d < deg; d++ {
						cols = append(cols, base+d)
						costs = append(costs, r.Float64()*100)
					}
					rowStart = append(rowStart, len(cols))
				}
				var s matching.Solver
				if _, _, err := s.SolveSparse(n, m, rowStart, cols, costs); err != nil {
					return nil, err
				}
				return func(context.Context) error {
					_, _, err := s.SolveSparse(n, m, rowStart, cols, costs)
					return err
				}, nil
			},
		},
		{
			Name: "micro/sa_initial", Kind: KindMicro, ArchFP: refFP, InnerIters: 1,
			setup: func() (func(context.Context) error, error) {
				a := arch.Reference()
				staged, err := stagedBenchmark("qft_n18")
				if err != nil {
					return nil, err
				}
				return func(context.Context) error {
					_, err := place.SAInitial(a, staged, 1000, rand.New(rand.NewSource(1)))
					return err
				}, nil
			},
		},
	}
	for _, name := range []string{"qft_n18", "ising_n42"} {
		name := name
		cases = append(cases, Case{
			Name: "micro/buildplan/" + name, Kind: KindMicro, ArchFP: refFP, InnerIters: 1,
			setup: func() (func(context.Context) error, error) {
				a := arch.Reference()
				staged, err := stagedBenchmark(name)
				if err != nil {
					return nil, err
				}
				return func(ctx context.Context) error {
					_, err := place.BuildPlan(ctx, a, staged, place.Default())
					return err
				}, nil
			},
		})
	}
	// The multi-core scaling cells: BuildPlan with eight SA restarts plus
	// the full schedule pass, pinned at GOMAXPROCS 1 and 8 with a matching
	// worker budget. Comparing a cell against itself across commits catches
	// scaling regressions; the gate refuses to compare gmp1 against gmp8.
	for _, name := range []string{"qft_n18", "ising_n42"} {
		for _, procs := range []int{1, 8} {
			name, procs := name, procs
			cases = append(cases, Case{
				Name: fmt.Sprintf("micro/buildplan_sched/%s/gmp%d", name, procs),
				Kind: KindMicro, ArchFP: refFP, InnerIters: 1, Procs: procs,
				setup: func() (func(context.Context) error, error) {
					a := arch.Reference()
					staged, err := stagedBenchmark(name)
					if err != nil {
						return nil, err
					}
					opts := place.Default()
					opts.SARestarts = 8
					opts.Workers = procs
					return func(ctx context.Context) error {
						plan, err := place.BuildPlan(ctx, a, staged, opts)
						if err != nil {
							return err
						}
						_, err = schedule.BuildWithOptions(ctx, a, staged, plan, schedule.Options{Workers: procs})
						return err
					}, nil
				},
			})
		}
	}
	return cases
}

// stagedBenchmark preprocesses one built-in paper benchmark into the staged
// form the placement kernels consume.
func stagedBenchmark(name string) (*circuit.Staged, error) {
	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return resynth.Preprocess(bm.Build())
}

// Architectures names the target architectures the compile matrix can
// sweep. "default" resolves per compiler (its DefaultArch, or the paper's
// zoned reference); the named entries force a specific target and apply to
// the ZAC family only — baselines and SC routers are monolithic-by-design
// and always compile for their own target.
var Architectures = map[string]func() *arch.Architecture{
	"ref":    arch.Reference,
	"triple": arch.ReferenceTriple,
	"mono":   arch.Monolithic,
}

// ArchNames lists the selectable architecture names, sorted, with "default"
// first.
func ArchNames() []string {
	names := []string{"default"}
	var rest []string
	for n := range Architectures {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(names, rest...)
}

// Compile expands the application-level matrix: every forge workload spec ×
// every named registry compiler × every named architecture. Specs are
// canonicalized so the same workload always produces the same case name.
// Non-ZAC compilers pin their own target architecture, so for them only the
// "default" arch cell is emitted (a forced-arch cell would silently measure
// the same thing twice).
func Compile(specs, compilers, archs []string) ([]Case, error) {
	if len(archs) == 0 {
		archs = []string{"default"}
	}
	var cases []Case
	for _, spec := range specs {
		parsed, err := workload.Parse(spec)
		if err != nil {
			return nil, err
		}
		canon := parsed.Canonical()
		for _, name := range compilers {
			comp, err := compiler.Get(name)
			if err != nil {
				return nil, err
			}
			_, zacFamily := compiler.Setting(comp.Name())
			for _, archName := range archs {
				target, forced, err := resolveArch(comp, archName)
				if err != nil {
					return nil, err
				}
				if forced && !zacFamily {
					continue // monolithic compilers ignore forced targets
				}
				comp, parsed, canon, archName, target := comp, parsed, canon, archName, target
				// lastPasses carries the most recent compilation's per-pass
				// timings from the op closure to the pass probe; each cell
				// owns its own variable and the runner calls op and probe
				// from one goroutine, so no synchronization is needed.
				var lastPasses []core.PassTiming
				cases = append(cases, Case{
					Name:       fmt.Sprintf("compile/%s/%s/%s", comp.Name(), archName, canon),
					Kind:       KindCompile,
					ArchFP:     target.Fingerprint(),
					InnerIters: 1,
					passes:     func() []core.PassTiming { return lastPasses },
					setup: func() (func(context.Context) error, error) {
						c, err := parsed.Generate()
						if err != nil {
							return nil, err
						}
						staged, err := resynth.Preprocess(c)
						if err != nil {
							return nil, err
						}
						if cap := compiler.StageSplitCap(comp); cap > 0 {
							staged = circuit.SplitRydbergStages(staged, cap)
						}
						if err := staged.Validate(); err != nil {
							return nil, fmt.Errorf("%s: split staging invalid: %w", canon, err)
						}
						return func(ctx context.Context) error {
							r, err := comp.Compile(ctx, staged, target, compiler.Options{})
							if r != nil {
								lastPasses = r.Passes
							}
							return err
						}, nil
					},
				})
			}
		}
	}
	return cases, nil
}

// resolveArch maps an architecture name to a concrete target for one
// compiler. "default" resolves to compiler.TargetArch; named entries force
// that architecture (forced=true).
func resolveArch(c compiler.Compiler, name string) (*arch.Architecture, bool, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || name == "default" {
		return compiler.TargetArch(c), false, nil
	}
	build, ok := Architectures[name]
	if !ok {
		return nil, false, fmt.Errorf("benchsuite: unknown architecture %q (have %s)", name, strings.Join(ArchNames(), ", "))
	}
	return build(), true, nil
}

// DefaultSpecs is the forge sweep of the full matrix: one pinned spec per
// family at paper-suite-comparable sizes (the same pins the experiment
// harness and fuzzer use).
func DefaultSpecs() []string {
	return []string{
		"clifford:n=24,gates=220,t=20,seed=11",
		"rb:n=24,depth=16,seed=11",
		"shuffle:n=32,depth=12,seed=11",
		"qaoa:n=32,p=2,seed=11",
		"ising:n=64,layers=2",
	}
}

// SmokeSpecs is the tiny forge subset of the smoke matrix — small enough
// that a full smoke run (including repetitions) stays in CI-seconds.
func SmokeSpecs() []string {
	return []string{"rb:n=8,depth=4,seed=1", "ising:n=12,layers=1"}
}

// Matrix builds the selected case set. kinds selects "micro", "compile", or
// both (nil/empty = both); compile expansion uses the given specs,
// compilers and architectures (empty compilers defaults to "zac", empty
// specs to DefaultSpecs).
func Matrix(kinds []string, specs, compilers, archs []string) ([]Case, error) {
	want := map[string]bool{}
	for _, k := range kinds {
		want[strings.ToLower(strings.TrimSpace(k))] = true
	}
	all := len(want) == 0 || want["all"]
	var cases []Case
	if all || want[string(KindMicro)] {
		cases = append(cases, Micro()...)
	}
	if all || want[string(KindCompile)] {
		if len(specs) == 0 {
			specs = DefaultSpecs()
		}
		if len(compilers) == 0 {
			compilers = []string{"zac"}
		}
		cc, err := Compile(specs, compilers, archs)
		if err != nil {
			return nil, err
		}
		cases = append(cases, cc...)
	}
	return cases, nil
}

// SmokeMatrix is the 1-to-few-second matrix CI runs: the two JV kernels
// plus ZAC over the smoke specs on the default architecture.
func SmokeMatrix() ([]Case, error) {
	micro := Micro()
	cases := []Case{micro[0], micro[1]} // jv_dense, jv_sparse
	cc, err := Compile(SmokeSpecs(), []string{"zac"}, nil)
	if err != nil {
		return nil, err
	}
	return append(cases, cc...), nil
}
