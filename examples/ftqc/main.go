// FTQC example: reproduce the paper's §VIII demonstration — compiling a
// hypercube IQP circuit over 128 [[8,3,2]] code blocks (384 logical qubits,
// 448 transversal CNOTs) at the logical level, where ZAC decides how whole
// code blocks move between the storage zone and a 3×5-site logical
// entanglement zone.
package main

import (
	"fmt"
	"log"

	"zac/internal/arch"
	"zac/internal/ftqc"
)

func main() {
	code := ftqc.Code832{}
	fmt.Printf("code: [[%d,%d,%d]], block layout %d×%d physical qubits\n",
		code.PhysicalQubits(), code.LogicalQubits(), code.Distance(),
		code.BlockRows(), code.BlockCols())

	spec := ftqc.ScaledUp()
	fmt.Printf("hIQP: %d blocks = %d logical qubits, %d CNOT layers (stride doubling), %d transversal gates\n",
		spec.NumBlocks, spec.NumLogicalQubits(), spec.NumCNOTLayers(), spec.NumTransversalGates())

	// The logical architecture: the 7×20-site physical entanglement zone
	// supports ⌊7/2⌋×⌊20/4⌋ = 3×5 logical sites for 2×4-qubit blocks.
	a := arch.Logical832()
	fmt.Printf("logical architecture: %d block-storage slots, %d logical Rydberg sites\n",
		a.TotalStorageTraps(), a.TotalSites())

	res, err := ftqc.Compile(spec, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled: %d Rydberg stages (paper: 35), duration %.3f ms (paper: 117.847 ms)\n",
		res.NumRydbergStages, res.DurationMS)
	fmt.Printf("block movements: %d, rearrangement jobs: %d\n",
		res.Compiled.TotalMoves, res.Compiled.NumJobs)
	fmt.Printf("reused logical sites: %d of %d transversal gates\n",
		res.Compiled.ReusedGates, res.TransversalGates)
}
