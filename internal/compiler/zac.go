package compiler

import (
	"context"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/core"
)

// zacCompiler wraps the core pass pipeline under one ablation preset of the
// paper's Fig. 11 legend.
type zacCompiler struct {
	name    string
	setting string
}

// Name returns the canonical registry name ("zac", "zac-vanilla", …).
func (z *zacCompiler) Name() string { return z.name }

// Compile runs the standard pipeline with the preset's options (or the
// caller's override), memoizing the placement artifact in opts.Artifacts so
// repeated compilations of the same circuit share one plan.
func (z *zacCompiler) Compile(ctx context.Context, staged *circuit.Staged, a *arch.Architecture, opts Options) (*core.Result, error) {
	co := core.OptionsFor(z.setting)
	if opts.Core != nil {
		co = *opts.Core
	}
	if opts.SARestarts > 0 {
		co.Place.SARestarts = opts.SARestarts
	}
	if opts.Workers > 0 {
		co.Place.Workers = opts.Workers
	}
	var hooks core.Hooks
	if opts.Artifacts != nil && opts.Key != "" {
		hooks.MemoPlan = opts.Artifacts.memoPlan(opts.Key, a, co.Place)
	}
	return core.Standard().Run(ctx, staged, a, co, hooks)
}

// Setting returns the core ablation preset a zac-family registry name maps
// to, and whether name belongs to the zac family at all. Harness code uses
// it to keep preset-specific cache keys unified with the Fig. 11 ablation
// study.
func Setting(name string) (string, bool) {
	if c, err := Get(name); err == nil {
		if z, ok := c.(*zacCompiler); ok {
			return z.setting, true
		}
	}
	return "", false
}
