// Command zac-benchsuite is the performance observatory CLI: it executes
// the declarative run matrix (placement micro kernels × forge workload
// families × registry compilers × architectures) with warm-up and
// repetition control, stamps every record with the machine fingerprint and
// commit, appends to the persistent JSON-lines store, and answers trend
// queries, renders markdown/HTML reports, runs the statistical regression
// gate, and exports BENCH_N.json snapshots from the store.
//
// Subcommands (a bare flag list implies `run`):
//
//	zac-benchsuite run -smoke -store .zac-benchstore
//	zac-benchsuite run -matrix micro -reps 10 -store .zac-benchstore
//	zac-benchsuite run -matrix compile -compilers zac,enola -archs ref,triple
//	zac-benchsuite trend -store .zac-benchstore -case micro/buildplan/qft_n18 -last 10
//	zac-benchsuite report -store .zac-benchstore -format html -o report.html
//	zac-benchsuite gate -store .zac-benchstore -baseline <sha> -current latest
//	zac-benchsuite export -store .zac-benchstore -o BENCH_5.json
//	zac-benchsuite fingerprint
//
// Exit codes: 0 success (gate: no regression), 1 gate regression, 2 error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strings"

	"zac/internal/benchsuite"
	"zac/internal/benchsuite/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// defaultStore is the store directory used when -store is not given.
const defaultStore = ".zac-benchstore"

// run dispatches the subcommand and returns the process exit code; kept
// separate from main so tests drive the full CLI in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		return runMatrix(ctx, args, stdout, stderr)
	case "trend":
		return runTrend(args, stdout, stderr)
	case "report":
		return runReport(args, stdout, stderr)
	case "gate":
		return runGate(args, stdout, stderr)
	case "export":
		return runExport(args, stdout, stderr)
	case "fingerprint":
		fp := benchsuite.Machine()
		fmt.Fprintf(stdout, "%s\n%s\n", fp.ID(), fp.String())
		return 0
	default:
		fmt.Fprintf(stderr, "zac-benchsuite: unknown subcommand %q (have run, trend, report, gate, export, fingerprint)\n", cmd)
		return 2
	}
}

// fail prints an error and returns the error exit code.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "zac-benchsuite: %v\n", err)
	return 2
}

// gitHead resolves the working tree's commit for record stamping, falling
// back to "unknown" outside a git checkout.
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// splitList splits a separator-joined flag value, dropping empties.
func splitList(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runMatrix executes the selected matrix and appends the records to the
// store.
func runMatrix(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", defaultStore, "results store directory (JSON-lines, one shard per machine fingerprint)")
	smoke := fs.Bool("smoke", false, "tiny matrix (JV kernels + ZAC over two small forge specs), few repetitions")
	matrix := fs.String("matrix", "all", "case selection: micro, compile, or all")
	specs := fs.String("specs", "", "';'-separated forge workload specs for the compile matrix (default: pinned per-family sweep)")
	compilers := fs.String("compilers", "", "comma-separated registry compilers for the compile matrix (default zac)")
	archs := fs.String("archs", "", "comma-separated target architectures: "+strings.Join(benchsuite.ArchNames(), ", "))
	reps := fs.Int("reps", 0, "timed repetitions per case (default 10; smoke default 3)")
	warmup := fs.Int("warmup", 1, "discarded warm-up repetitions per case")
	parallel := fs.Int("parallel", 1, "engine workers across cases (>1 only for plumbing smoke — parallel timing is noise)")
	commit := fs.String("commit", "", "commit stamped into records (default: git rev-parse HEAD)")
	handicap := fs.Float64("handicap", 0, "multiply recorded ns/op samples (gate self-test hook; 2 simulates a 2× slowdown)")
	progress := fs.Bool("progress", false, "print one line per completed case")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var cases []benchsuite.Case
	var err error
	if *smoke {
		cases, err = benchsuite.SmokeMatrix()
		if *reps == 0 {
			*reps = 3
		}
	} else {
		cases, err = benchsuite.Matrix(splitList(*matrix, ","), splitList(*specs, ";"), splitList(*compilers, ","), splitList(*archs, ","))
	}
	if err != nil {
		return fail(stderr, err)
	}
	if *reps == 0 {
		*reps = 10
	}
	if *commit == "" {
		*commit = gitHead()
	}
	cfg := benchsuite.RunConfig{
		Warmup:   *warmup,
		Reps:     *reps,
		Workers:  *parallel,
		Commit:   *commit,
		Handicap: *handicap,
	}
	if *progress {
		cfg.Progress = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	records, err := benchsuite.Run(ctx, cases, cfg)
	if err != nil {
		return fail(stderr, err)
	}
	store, err := benchsuite.OpenStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	if err := store.Append(records); err != nil {
		return fail(stderr, err)
	}
	fp := benchsuite.Machine()
	fmt.Fprintf(stdout, "zac-benchsuite: %d cases × %d reps appended to %s (machine %s, commit %s)\n",
		len(records), *reps, *storeDir, fp.ID(), shortSHA(*commit))
	for _, r := range records {
		fmt.Fprintf(stdout, "  %-60s median %14.0f ns/op\n", r.Case, stats.Median(r.NsPerOp))
	}
	return 0
}

// runTrend prints one case's per-commit trajectory.
func runTrend(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", defaultStore, "results store directory")
	caseName := fs.String("case", "", "case name, e.g. micro/buildplan/qft_n18")
	last := fs.Int("last", 10, "number of most recent commits to show (0 = all)")
	machine := fs.String("machine", "", "machine id (default: this machine)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *caseName == "" {
		return fail(stderr, fmt.Errorf("trend: -case is required"))
	}
	store, err := benchsuite.OpenStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	if *machine == "" {
		*machine = benchsuite.Machine().ID()
	}
	points, err := store.Trend(*machine, *caseName, *last)
	if err != nil {
		return fail(stderr, err)
	}
	if len(points) == 0 {
		return fail(stderr, fmt.Errorf("trend: no records for case %q on machine %s in %s", *caseName, *machine, *storeDir))
	}
	fmt.Fprintf(stdout, "%s on machine %s (last %d commits):\n", *caseName, *machine, len(points))
	for _, p := range points {
		fmt.Fprintf(stdout, "  %-14s n=%-3d median %14.0f ns/op  (min %.0f, max %.0f)\n",
			shortSHA(p.Commit), p.Summary.N, p.Summary.Median, p.Summary.Min, p.Summary.Max)
	}
	return 0
}

// runReport renders the markdown or HTML report.
func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", defaultStore, "results store directory")
	format := fs.String("format", "md", "report format: md or html")
	out := fs.String("o", "", "output file (default stdout)")
	machine := fs.String("machine", "", "restrict to one machine id (default: all)")
	last := fs.Int("last", 10, "trend depth in commits")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := benchsuite.OpenStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	opts := benchsuite.ReportOptions{MachineID: *machine, LastN: *last}
	var body string
	switch *format {
	case "md", "markdown":
		body, err = benchsuite.MarkdownReport(store, opts)
	case "html":
		body, err = benchsuite.HTMLReport(store, opts)
	default:
		err = fmt.Errorf("report: unknown format %q (md, html)", *format)
	}
	if err != nil {
		return fail(stderr, err)
	}
	if *out == "" {
		fmt.Fprint(stdout, body)
		return 0
	}
	if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "zac-benchsuite: wrote %s\n", *out)
	return 0
}

// runGate compares two commits' records statistically; exit 1 flags a
// regression.
func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", defaultStore, "results store directory")
	baseline := fs.String("baseline", "", "baseline commit recorded in the store")
	current := fs.String("current", "latest", "current commit recorded in the store (default: most recent)")
	machine := fs.String("machine", "", "machine id (default: this machine); cross-machine comparison is refused")
	alpha := fs.Float64("alpha", 0.05, "Mann-Whitney significance level")
	minDelta := fs.Float64("min-delta", 3, "practical-significance floor in percent")
	threshold := fs.Float64("threshold", 20, "raw fallback threshold in percent when repetitions are too few")
	cases := fs.String("cases", "", "comma-separated case names to gate (default: every baseline case)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" {
		return fail(stderr, fmt.Errorf("gate: -baseline is required"))
	}
	store, err := benchsuite.OpenStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	if *machine == "" {
		*machine = benchsuite.Machine().ID()
	}
	verdicts, err := benchsuite.GateCommits(store, *machine, *baseline, *current, benchsuite.GateOptions{
		Alpha: *alpha, MinDeltaPct: *minDelta, ThresholdPct: *threshold, Cases: splitList(*cases, ","),
	})
	if err != nil {
		return fail(stderr, err)
	}
	for _, v := range verdicts {
		state := "ok  "
		if v.Regressed {
			state = "FAIL"
		} else if v.Improved {
			state = "FAST"
		}
		detail := ""
		switch v.Mode {
		case benchsuite.ModeStats:
			detail = fmt.Sprintf("%s  Δmedian %+.1f%%", stats.FormatP(v.P), v.DeltaPct)
		case benchsuite.ModeThreshold:
			detail = fmt.Sprintf("threshold fallback  Δmedian %+.1f%%", v.DeltaPct)
		case benchsuite.ModeSkipped:
			detail = v.Note
		}
		fmt.Fprintf(stdout, "gate: %s %-60s %s\n", state, v.Case, detail)
	}
	if n := benchsuite.Regressions(verdicts); n > 0 {
		fmt.Fprintf(stdout, "gate: FAILED — %d case(s) regressed (baseline %s → current %s)\n", n, shortSHA(*baseline), *current)
		return 1
	}
	fmt.Fprintf(stdout, "gate: ok — %d case(s), no statistically significant regression\n", len(verdicts))
	return 0
}

// runExport writes the BENCH_N.json-format snapshot of the store.
func runExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", defaultStore, "results store directory")
	commit := fs.String("commit", "latest", "commit to export (default: most recent)")
	machine := fs.String("machine", "", "machine id (default: this machine)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := benchsuite.OpenStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	if *machine == "" {
		*machine = benchsuite.Machine().ID()
	}
	data, err := store.ExportBenchJSON(*machine, *commit)
	if err != nil {
		return fail(stderr, err)
	}
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "zac-benchsuite: wrote %s\n", *out)
	return 0
}

// shortSHA truncates a commit for log lines.
func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
