package serve

import (
	"encoding/json"

	"zac/internal/fidelity"
)

// CompileRequest describes one compilation: a circuit (a built-in benchmark
// name, inline OpenQASM 2.0 source, or a workload-forge spec), an optional
// architecture, and optional compiler knobs. Exactly one of Circuit, QASM,
// and Workload must be set.
type CompileRequest struct {
	// Circuit names a built-in benchmark (e.g. "ghz_n23").
	Circuit string `json:"circuit,omitempty"`
	// QASM is inline OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Workload is a workload-forge generator spec (e.g.
	// "rb:n=32,depth=20,seed=7"; see `zac -list-workloads`). The service
	// generates the circuit deterministically from the spec, and the
	// canonical spec becomes part of the compile cache key, so identical
	// specs hit the tiered cache exactly like identical benchmarks.
	Workload string `json:"workload,omitempty"`
	// Name labels a QASM submission; it becomes the program name in the
	// emitted ZAIR (the CLI uses the input path here). Ignored for built-in
	// benchmarks, which carry their own name.
	Name string `json:"name,omitempty"`
	// Arch is an architecture spec in the artifact JSON format; empty
	// selects the paper's reference architecture.
	Arch json.RawMessage `json:"arch,omitempty"`
	// Setting is a compiler ablation preset (Vanilla | dynPlace |
	// dynPlace+reuse | SA+dynPlace+reuse); empty selects the full ZAC
	// configuration. Superseded by Compiler, kept for API compatibility.
	Setting string `json:"setting,omitempty"`
	// Compiler names a registry compiler (zac, zac-vanilla, zac-dynplace,
	// zac-dynplace-reuse, enola, atomique, nalac, sc-heron, sc-grid; the
	// Fig. 11 legend spellings are accepted as aliases). It overrides
	// Setting and the request-level ?compiler= default; empty falls back to
	// those, then to full ZAC.
	Compiler string `json:"compiler,omitempty"`
	// AODs overrides the architecture's AOD count when positive.
	AODs int `json:"aods,omitempty"`
	// SARestarts, when > 1, runs that many independent annealing chains for
	// ZAC-family initial placement and keeps the best (deterministic
	// winner; see place.Options.SARestarts). It changes the compiled
	// output, so it joins the compile cache key. Negative values are
	// rejected with 400; 0 and 1 select the single-chain default.
	SARestarts int `json:"sa_restarts,omitempty"`
	// Workers, when positive, bounds this compilation's intra-compile
	// parallelism (clamped to the machine's cores). It never changes the
	// compiled bytes and stays out of every cache key; 0 selects the
	// service default — an equal share of the cores per compile slot, so a
	// saturated server does not oversubscribe. Negative values are rejected
	// with 400.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS, when positive, bounds this request's total time in the
	// service — queueing included — in milliseconds. A request that misses
	// its deadline fails with a timeout error (HTTP 504 for a single
	// synchronous request, a per-item error otherwise); the underlying
	// compilation is cancelled unless concurrent identical requests still
	// want it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/compile: either a bare
// CompileRequest (single compilation) or a "requests" array, optionally
// executed asynchronously as a job.
type BatchRequest struct {
	CompileRequest
	// Requests, when non-empty, makes this a batch compilation; the
	// embedded single-request fields are then ignored.
	Requests []CompileRequest `json:"requests,omitempty"`
	// Async makes POST /v1/compile return a job id immediately; poll
	// GET /v1/jobs/{id} for results.
	Async bool `json:"async,omitempty"`
}

// CompileResponse is the JSON result of one compilation.
type CompileResponse struct {
	// Name is the compiled program's name.
	Name string `json:"name"`
	// NumQubits is the circuit width.
	NumQubits int `json:"num_qubits"`
	// Compiler is the canonical registry name of the compiler that ran.
	Compiler string `json:"compiler"`
	// Setting echoes the compiler preset that was applied (the ablation
	// preset for ZAC-family compilers, the compiler name otherwise).
	Setting string `json:"setting"`
	// Fidelity is the paper's per-term fidelity decomposition.
	Fidelity fidelity.Breakdown `json:"fidelity"`
	// DurationUS is the compiled circuit's duration in microseconds.
	DurationUS float64 `json:"duration_us"`
	// CompileMS is the wall-clock compile time in milliseconds, measured at
	// the compilation that populated the cache entry.
	CompileMS float64 `json:"compile_ms"`
	// RydbergStages counts the program's Rydberg (entangling) stages.
	RydbergStages int `json:"rydberg_stages"`
	// RearrangeJobs counts the emitted atom-rearrangement jobs.
	RearrangeJobs int `json:"rearrange_jobs"`
	// ReusedGates counts gates served by qubit reuse.
	ReusedGates int `json:"reused_gates"`
	// Moves counts individual qubit movements.
	Moves int `json:"moves"`
	// Cached reports that this request did not compile anything itself:
	// the result came from the cache (memory or disk) or was shared with a
	// concurrent identical request already compiling it.
	Cached bool `json:"cached"`
	// TraceID identifies this request's telemetry trace, inspectable at
	// GET /v1/traces/{id}. Omitted when the server runs without a trace
	// recorder.
	TraceID string `json:"trace_id,omitempty"`
	// ZAIR is the compiled program, byte-identical to the `zac -out` CLI
	// encoding. Omitted when the request was made with ?zair=0.
	ZAIR json.RawMessage `json:"zair,omitempty"`
}

// BatchItem is one entry of a batch response: a result or a per-item error.
type BatchItem struct {
	// Result is the successful compilation, nil on error.
	Result *CompileResponse `json:"result,omitempty"`
	// Error is the failure message, empty on success.
	Error string `json:"error,omitempty"`
	// TraceID identifies the request's telemetry trace — present on
	// failures too, so a shed or timed-out request stays inspectable.
	// Omitted when the server runs without a trace recorder.
	TraceID string `json:"trace_id,omitempty"`

	// status is the HTTP status a single synchronous request reports for
	// this failure (429 shed, 504 deadline); 0 means 400. Batch responses
	// stay 200 with per-item errors, so it never goes on the wire.
	status int
}

// BatchResponse is the body of a synchronous batch compilation.
type BatchResponse struct {
	// Results holds one item per request, in request order.
	Results []BatchItem `json:"results"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	// Error is the human-readable failure message.
	Error string `json:"error"`
}

// JobStatus enumerates the lifecycle states of an async compilation job.
type JobStatus string

// The job lifecycle states. JobInterrupted is terminal and only assigned at
// startup, to a job whose journal record survived a crash but was too
// damaged to replay — its id answers polls instead of 404ing, but its
// requests are lost.
const (
	JobPending     JobStatus = "pending"
	JobRunning     JobStatus = "running"
	JobDone        JobStatus = "done"
	JobFailed      JobStatus = "failed"
	JobCanceled    JobStatus = "canceled"
	JobInterrupted JobStatus = "interrupted"
)

// JobResponse is the body of GET /v1/jobs/{id} (and of the 202 returned for
// async submissions).
type JobResponse struct {
	// ID is the job identifier to poll.
	ID string `json:"id"`
	// Status is the job's lifecycle state.
	Status JobStatus `json:"status"`
	// Total counts the job's compilation requests.
	Total int `json:"total"`
	// Completed counts finished (succeeded or failed) requests so far.
	Completed int `json:"completed"`
	// Results holds one item per request once the job is done.
	Results []BatchItem `json:"results,omitempty"`
}

// MetricsResponse is the body of GET /metrics: a machine-readable snapshot
// of service health.
type MetricsResponse struct {
	// RequestsTotal counts HTTP requests served since startup.
	RequestsTotal uint64 `json:"requests_total"`
	// CompilesTotal counts compilation lookups (cached or not).
	CompilesTotal uint64 `json:"compiles_total"`
	// InFlightCompiles is the number of compilations currently executing.
	InFlightCompiles int64 `json:"inflight_compiles"`
	// Cache reports the whole-compile cache hierarchy's counters.
	Cache CacheMetrics `json:"cache"`
	// PassCache reports the pass-artifact cache's counters: staged circuits
	// and placement plans memoized at pass granularity and shared across
	// compilers.
	PassCache CacheMetrics `json:"pass_cache"`
	// Admission reports the admission controller's state: queue occupancy,
	// shed requests, deadline misses, and whether the server is draining.
	Admission AdmissionMetrics `json:"admission"`
	// Jobs counts async jobs by status.
	Jobs map[JobStatus]int `json:"jobs"`
	// JobsReplayed counts async jobs re-run from the crash journal at
	// startup.
	JobsReplayed uint64 `json:"jobs_replayed"`
	// Compilers reports per-compiler latency aggregates, keyed by registry
	// name.
	Compilers map[string]LatencyMetrics `json:"compilers"`
	// Passes reports per-pass latency aggregates, keyed "compiler/pass"
	// (e.g. "zac/place"). Only fresh compilations count; pass timings of
	// cached results were recorded when they were computed.
	Passes map[string]LatencyMetrics `json:"passes"`
}

// CacheMetrics is the cache section of MetricsResponse.
type CacheMetrics struct {
	// MemHits counts lookups served by the in-memory LRU front.
	MemHits uint64 `json:"mem_hits"`
	// DiskHits counts lookups restored from the disk tier.
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts lookups that compiled from scratch.
	Misses uint64 `json:"misses"`
	// HitRate is (MemHits+DiskHits)/lookups in [0,1].
	HitRate float64 `json:"hit_rate"`
	// MemEntries is the LRU front's resident entry count.
	MemEntries int `json:"mem_entries"`
	// DiskEntries is the disk tier's entry count (0 without -cachedir).
	DiskEntries int `json:"disk_entries"`
	// DiskBytes is the disk tier's total size in bytes.
	DiskBytes int64 `json:"disk_bytes"`
	// DiskRetries counts disk operations retried after a transient I/O
	// error (each retry slept a jittered backoff first).
	DiskRetries uint64 `json:"disk_retries"`
	// DiskFailures counts disk operations that exhausted their retries.
	DiskFailures uint64 `json:"disk_failures"`
	// BreakerOpens counts transitions of the disk tier's circuit breaker to
	// the open state.
	BreakerOpens uint64 `json:"breaker_opens"`
	// BreakerSkips counts disk operations short-circuited while the breaker
	// was open (the cache ran memory-only).
	BreakerSkips uint64 `json:"breaker_skips"`
	// BreakerState is the disk tier's breaker state ("closed", "open",
	// "half-open"); empty when no disk tier is attached.
	BreakerState string `json:"breaker_state,omitempty"`
}

// AdmissionMetrics is the admission-control section of MetricsResponse.
type AdmissionMetrics struct {
	// QueueDepth is the number of requests currently waiting for a compile
	// slot (running compiles are reported as inflight_compiles).
	QueueDepth int64 `json:"queue_depth"`
	// QueueLimit is the configured waiting-queue bound; a request arriving
	// with the queue full is shed with 429.
	QueueLimit int `json:"queue_limit"`
	// Shed counts requests rejected with 429 because the queue was full.
	Shed uint64 `json:"shed"`
	// DeadlineExceeded counts requests that missed their timeout_ms
	// deadline.
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	// Draining reports that the server is shutting down: /readyz answers
	// 503 and new compile requests are refused.
	Draining bool `json:"draining"`
}

// LatencyMetrics aggregates wall-clock compile latency for one compiler
// setting. Only fresh compilations count; cache hits are free.
type LatencyMetrics struct {
	// Count is the number of fresh compilations.
	Count uint64 `json:"count"`
	// TotalMS is the summed wall-clock latency in milliseconds.
	TotalMS float64 `json:"total_ms"`
	// AvgMS is TotalMS / Count.
	AvgMS float64 `json:"avg_ms"`
	// MaxMS is the worst single compilation in milliseconds.
	MaxMS float64 `json:"max_ms"`
}
