package experiments

import (
	"context"
	"fmt"

	"zac/internal/compiler"
)

// CompilerSweep compiles the benchmark subset through the named registry
// compilers (nil = every registered compiler) and reports total fidelity,
// circuit duration, and wall-clock compile time per compiler. It is the
// `zac-bench -compiler` entry point and doubles as a quick side-by-side of
// any new backend against the paper's compilers under their default
// evaluation setups.
func CompilerSweep(ctx context.Context, cfg Config, subset, compilers []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	if len(compilers) == 0 {
		compilers = compiler.Names()
	}
	cols := make([]string, len(compilers))
	for i, name := range compilers {
		c, err := compiler.Get(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c.Name()
	}
	fid := &Table{Title: "Compiler registry: total fidelity", Columns: cols}
	dur := &Table{Title: "Compiler registry: circuit duration (ms)", Columns: cols}
	cmp := &Table{Title: "Compiler registry: compile time (ms)", Columns: cols}
	res, err := mapRows(ctx, cfg, len(benches)*len(cols), func(k int) (naResult, error) {
		b, name := benches[k/len(cols)], cols[k%len(cols)]
		r, err := evalCompiler(ctx, cfg, name, b)
		if err != nil {
			return naResult{}, fmt.Errorf("%s/%s: %w", b.Name, name, err)
		}
		cfg.progressf("compilers: %s/%s", b.Name, name)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		fRow, dRow, cRow := map[string]float64{}, map[string]float64{}, map[string]float64{}
		for j, col := range cols {
			r := res[i*len(cols)+j]
			fRow[col] = r.breakdown.Total
			dRow[col] = r.duration / 1000
			cRow[col] = float64(r.compile.Milliseconds())
		}
		fid.AddRow(b.Name, fRow)
		dur.AddRow(b.Name, dRow)
		cmp.AddRow(b.Name, cRow)
	}
	return []*Table{fid, dur, cmp}, nil
}

// Compilers is the registry-sweep experiment over every registered
// compiler.
func Compilers(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	return CompilerSweep(ctx, cfg, subset, nil)
}
