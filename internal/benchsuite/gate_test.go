package benchsuite

import (
	"errors"
	"strings"
	"testing"
)

// baseSamples is a realistic steady-state ns/op sample (≈100ns ±0.5%).
var baseSamples = []float64{100.2, 99.8, 100.1, 100.4, 99.9, 100.0, 100.3, 99.7, 100.1, 100.2}

// scaled returns xs multiplied by f.
func scaled(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// A seeded 2× slowdown must be flagged by the statistical gate, and a
// noise-only delta on the same machine must pass — the acceptance pair of
// the observatory.
func TestGateSeededRegressionVsNoise(t *testing.T) {
	old := []Record{rec("m1", "base", "micro/jv_dense", 1, baseSamples...)}

	slow := []Record{rec("m1", "cur", "micro/jv_dense", 2, scaled(baseSamples, 2)...)}
	verdicts, err := Gate(old, slow, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	v := verdicts[0]
	if v.Mode != ModeStats {
		t.Fatalf("mode = %s, want stats (n=10 per side)", v.Mode)
	}
	if !v.Regressed || Regressions(verdicts) != 1 {
		t.Errorf("2× slowdown not flagged: %+v", v)
	}
	if v.P >= 0.05 {
		t.Errorf("2× slowdown p = %v, want < 0.05", v.P)
	}
	if v.DeltaPct < 90 || v.DeltaPct > 110 {
		t.Errorf("DeltaPct = %.1f, want ≈ +100", v.DeltaPct)
	}

	// Noise-only rerun: identical distribution up to ±0.3%.
	noise := []Record{rec("m1", "cur", "micro/jv_dense", 2,
		100.0, 100.3, 99.8, 100.2, 100.1, 99.9, 100.4, 99.8, 100.0, 100.2)}
	verdicts, err = Gate(old, noise, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if Regressions(verdicts) != 0 {
		t.Errorf("noise-only delta flagged: %+v", verdicts[0])
	}
}

// With fewer repetitions than the statistical test accepts, the gate falls
// back to the raw percentage threshold.
func TestGateThresholdFallback(t *testing.T) {
	old := []Record{rec("m1", "base", "micro/jv_dense", 1, 100, 101, 99)}
	slow := []Record{rec("m1", "cur", "micro/jv_dense", 2, 200, 202, 199)}
	verdicts, err := Gate(old, slow, GateOptions{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	v := verdicts[0]
	if v.Mode != ModeThreshold {
		t.Fatalf("mode = %s, want threshold (n=3 per side)", v.Mode)
	}
	if !v.Regressed {
		t.Errorf("2× slowdown not flagged by threshold fallback: %+v", v)
	}
	// Within threshold: passes.
	ok := []Record{rec("m1", "cur", "micro/jv_dense", 2, 105, 106, 104)}
	verdicts, err = Gate(old, ok, GateOptions{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Regressed {
		t.Errorf("+5%% flagged by 20%% threshold: %+v", verdicts[0])
	}
}

// A statistically significant but tiny delta stays below the
// practical-significance floor and must not alarm.
func TestGateMinDeltaFloor(t *testing.T) {
	old := []Record{rec("m1", "base", "micro/jv_dense", 1, baseSamples...)}
	// +1% shift: cleanly significant (disjoint distributions) but trivial.
	cur := []Record{rec("m1", "cur", "micro/jv_dense", 2, scaled(baseSamples, 1.01)...)}
	verdicts, err := Gate(old, cur, GateOptions{MinDeltaPct: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := verdicts[0]
	if v.Mode != ModeStats || v.Regressed {
		t.Errorf("+1%% delta flagged despite 3%% floor: %+v", v)
	}
}

// Records measured on different machines must never be compared.
func TestGateRefusesFingerprintMismatch(t *testing.T) {
	old := []Record{rec("m1", "base", "micro/jv_dense", 1, baseSamples...)}
	cur := []Record{rec("m2", "cur", "micro/jv_dense", 2, baseSamples...)}
	if _, err := Gate(old, cur, GateOptions{}); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("cross-machine gate: err = %v, want ErrFingerprintMismatch", err)
	}
	// Mixed fingerprints inside one side are refused too.
	mixed := []Record{old[0], rec("m2", "base", "micro/jv_sparse", 1, baseSamples...)}
	if _, err := Gate(mixed, nil, GateOptions{}); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mixed baseline: err = %v, want ErrFingerprintMismatch", err)
	}
}

// A case that disappeared from the current run is flagged, and a case whose
// target architecture changed is skipped rather than compared.
func TestGateMissingAndArchChange(t *testing.T) {
	old := []Record{
		rec("m1", "base", "micro/jv_dense", 1, baseSamples...),
		rec("m1", "base", "micro/sa_initial", 1, baseSamples...),
	}
	old[1].ArchFP = "archA"
	curSA := rec("m1", "cur", "micro/sa_initial", 2, baseSamples...)
	curSA.ArchFP = "archB"
	verdicts, err := Gate(old, []Record{curSA}, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]Verdict{}
	for _, v := range verdicts {
		byCase[v.Case] = v
	}
	missing := byCase["micro/jv_dense"]
	if missing.Mode != ModeSkipped || !missing.Regressed || !strings.Contains(missing.Note, "missing") {
		t.Errorf("missing case verdict = %+v", missing)
	}
	archChanged := byCase["micro/sa_initial"]
	if archChanged.Mode != ModeSkipped || archChanged.Regressed {
		t.Errorf("arch-change verdict = %+v (must skip, not compare)", archChanged)
	}
	if !strings.Contains(archChanged.Note, "architecture") {
		t.Errorf("arch-change note = %q", archChanged.Note)
	}
}

// A GOMAXPROCS change between the two sides is skipped like an architecture
// change — even a 2× "slowdown" is not comparable across core counts — while
// legacy records without the field (Procs 0) stay comparable.
func TestGateProcsChange(t *testing.T) {
	old := []Record{rec("m1", "base", "micro/buildplan_sched/qft_n18/gmp8", 1, baseSamples...)}
	old[0].Procs = 8
	cur := rec("m1", "cur", "micro/buildplan_sched/qft_n18/gmp8", 2, scaled(baseSamples, 2)...)
	cur.Procs = 1
	verdicts, err := Gate(old, []Record{cur}, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Mode != ModeSkipped || verdicts[0].Regressed {
		t.Fatalf("procs-change verdict = %+v (must skip, not compare)", verdicts)
	}
	if !strings.Contains(verdicts[0].Note, "gomaxprocs") {
		t.Errorf("procs-change note = %q", verdicts[0].Note)
	}

	// Baseline predating the field: comparable, and the 2× shows up.
	legacy := []Record{rec("m1", "base", "micro/buildplan_sched/qft_n18/gmp8", 1, baseSamples...)}
	verdicts, err = Gate(legacy, []Record{cur}, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Mode != ModeStats || !verdicts[0].Regressed {
		t.Fatalf("legacy-baseline verdict = %+v (must compare)", verdicts)
	}
}

// The Cases filter restricts the gate to named cells.
func TestGateCaseFilter(t *testing.T) {
	old := []Record{
		rec("m1", "base", "micro/jv_dense", 1, baseSamples...),
		rec("m1", "base", "micro/sa_initial", 1, baseSamples...),
	}
	cur := []Record{
		rec("m1", "cur", "micro/jv_dense", 2, baseSamples...),
		rec("m1", "cur", "micro/sa_initial", 2, scaled(baseSamples, 2)...),
	}
	verdicts, err := Gate(old, cur, GateOptions{Cases: []string{"micro/jv_dense"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Case != "micro/jv_dense" {
		t.Fatalf("filtered verdicts = %+v, want only micro/jv_dense", verdicts)
	}
	if Regressions(verdicts) != 0 {
		t.Errorf("filtered-out regression still flagged: %+v", verdicts)
	}
}

// GateCommits wires the gate to the store, including the "latest" alias.
func TestGateCommits(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Record{
		rec("m1", "base", "micro/jv_dense", 1, baseSamples...),
		rec("m1", "cur", "micro/jv_dense", 2, scaled(baseSamples, 2)...),
	}); err != nil {
		t.Fatal(err)
	}
	verdicts, err := GateCommits(s, "m1", "base", "latest", GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if Regressions(verdicts) != 1 {
		t.Errorf("GateCommits(base→latest) = %+v, want 1 regression", verdicts)
	}
	if _, err := GateCommits(s, "m1", "nope", "latest", GateOptions{}); err == nil {
		t.Error("GateCommits with unknown baseline commit: want error")
	}
}
