// Command zac-serve runs the ZAC compiler as a long-lived HTTP service: it
// accepts OpenQASM programs (or built-in benchmark names) plus JSON
// architecture specs, compiles them with bounded concurrency, and returns
// the ZAIR program and fidelity breakdown as JSON. Results are memoized in
// the engine's tiered cache; with -cachedir they persist to disk and are
// shared with zac-bench and zairsim runs pointed at the same directory.
//
// With -pprof the standard net/http/pprof endpoints are mounted under
// /debug/pprof/ so a live service can be CPU- or heap-profiled under load.
//
//	zac-serve -addr :8756 -cachedir ~/.cache/zac
//	zac-serve -addr :8756 -pprof
//	curl -s localhost:8756/healthz
//	curl -s -X POST localhost:8756/v1/compile -d '{"circuit":"ghz_n23"}'
//	curl -s localhost:8756/metrics
//
// See README.md for the full API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"zac/internal/engine"
	"zac/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8756", "listen address")
	cacheDir := flag.String("cachedir", "", "persistent compilation-cache directory shared with zac-bench and zairsim")
	cacheMB := flag.Int64("cachemb", 0, "disk cache size bound in MiB (0 = unbounded; needs -cachedir)")
	parallel := flag.Int("parallel", 0, "max concurrent compilations (0 = all CPUs)")
	memEntries := flag.Int("mementries", 4096, "in-memory cache capacity in entries (0 = unbounded)")
	maxBatch := flag.Int("maxbatch", 64, "max requests per batch")
	queueDepth := flag.Int("queuedepth", 0, "compile admission queue bound; requests beyond it are shed with 429 (0 = default)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profile live compilations)")
	flag.Parse()

	opts := serve.Options{Parallel: *parallel, MemEntries: *memEntries, MaxBatch: *maxBatch, QueueDepth: *queueDepth}
	if *cacheDir != "" {
		disk, err := engine.OpenDiskCache(*cacheDir, *cacheMB<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-serve: -cachedir: %v\n", err)
			os.Exit(1)
		}
		opts.Disk = disk
		st := disk.Stats()
		fmt.Fprintf(os.Stderr, "zac-serve: disk cache %s: %d entries, %d bytes\n",
			disk.Dir(), st.Entries, st.Bytes)
	}

	srv := serve.New(opts)
	if *cacheDir != "" {
		// The async-job journal lives next to the compile cache: accepted
		// jobs a previous process never finished are replayed here, before
		// the listener accepts traffic.
		replayed, err := srv.OpenJournal(filepath.Join(*cacheDir, "jobs"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-serve: job journal: %v\n", err)
			os.Exit(1)
		}
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "zac-serve: replaying %d journaled job(s)\n", replayed)
		}
	}
	handler := srv.Handler()
	if *pprofOn {
		// Mount the profiling endpoints next to the API so a live service
		// under load can be profiled with
		// `go tool pprof host:port/debug/pprof/profile`.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(os.Stderr, "zac-serve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound slow/idle clients so a handful of stalled connections
		// (slowloris) cannot pin listener resources forever. Request bodies
		// are small JSON documents; only compilation itself is long-running.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "zac-serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "zac-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain sequence: flip /readyz to 503 and refuse new compiles, let
	// in-flight HTTP requests finish, then wait (briefly) for background
	// jobs. Jobs still running at the deadline stay journaled and are
	// replayed by the next process, so SIGTERM never loses an accepted job.
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "zac-serve: shutdown: %v\n", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "zac-serve: drain deadline: unfinished jobs remain journaled for replay")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "zac-serve: drained, bye")
}
