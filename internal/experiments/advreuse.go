package experiments

import (
	"zac/internal/arch"
	"zac/internal/core"
	"zac/internal/place"
)

// AdvReuse evaluates the paper's §X future-work optimization — movements
// within entanglement zones for more advanced qubit reuse — against stock
// ZAC: fidelity, atom transfers, and duration per circuit. This is the
// ablation the paper proposes but does not evaluate; DESIGN.md lists it as
// an extension experiment.
func AdvReuse(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	fid := &Table{
		Title:   "Extension: advanced in-zone reuse (paper §X) — fidelity",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	tran := &Table{
		Title:   "Extension: advanced in-zone reuse — atom transfers",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	dur := &Table{
		Title:   "Extension: advanced in-zone reuse — duration (ms)",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	advOpts := core.Options{Place: func() place.Options {
		o := place.Default()
		o.AdvancedReuse = true
		return o
	}()}
	for _, b := range benches {
		staged, err := preprocess(b, a)
		if err != nil {
			return nil, err
		}
		base, err := core.CompileStaged(staged, a, core.Default())
		if err != nil {
			return nil, err
		}
		adv, err := core.CompileStaged(staged, a, advOpts)
		if err != nil {
			return nil, err
		}
		fid.AddRow(b.Name, map[string]float64{
			"ZAC": base.Breakdown.Total, "ZAC+advReuse": adv.Breakdown.Total,
		})
		tran.AddRow(b.Name, map[string]float64{
			"ZAC": float64(base.Stats.Transfers), "ZAC+advReuse": float64(adv.Stats.Transfers),
		})
		dur.AddRow(b.Name, map[string]float64{
			"ZAC": base.Duration / 1000, "ZAC+advReuse": adv.Duration / 1000,
		})
	}
	return []*Table{fid, tran, dur}, nil
}

// Sweep evaluates ZAC's tunable placement parameters — candidate-box
// expansion δ, return-candidate radius k, lookahead weight α, and SA
// iteration budget — on a representative subset, reporting geomean fidelity
// per configuration. This is the design-choice ablation DESIGN.md calls out
// for the cost-function knobs of §V.
func Sweep(subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	type cfg struct {
		name string
		mut  func(o *place.Options)
	}
	groups := []struct {
		title string
		cfgs  []cfg
	}{
		{"Sweep: candidate expansion δ", []cfg{
			{"δ=1", func(o *place.Options) { o.Expansion = 1 }},
			{"δ=2", func(o *place.Options) { o.Expansion = 2 }},
			{"δ=4", func(o *place.Options) { o.Expansion = 4 }},
		}},
		{"Sweep: return neighborhood k", []cfg{
			{"k=1", func(o *place.Options) { o.KNeighbors = 1 }},
			{"k=2", func(o *place.Options) { o.KNeighbors = 2 }},
			{"k=4", func(o *place.Options) { o.KNeighbors = 4 }},
		}},
		{"Sweep: lookahead α", []cfg{
			{"α=0", func(o *place.Options) { o.Alpha = -1 }}, // fill() keeps non-zero; -1 disables boost
			{"α=0.1", func(o *place.Options) { o.Alpha = 0.1 }},
			{"α=0.5", func(o *place.Options) { o.Alpha = 0.5 }},
		}},
		{"Sweep: SA iterations", []cfg{
			{"SA=100", func(o *place.Options) { o.SAIterations = 100 }},
			{"SA=1000", func(o *place.Options) { o.SAIterations = 1000 }},
			{"SA=5000", func(o *place.Options) { o.SAIterations = 5000 }},
		}},
	}
	var tables []*Table
	for _, g := range groups {
		var cols []string
		for _, c := range g.cfgs {
			cols = append(cols, c.name)
		}
		t := &Table{Title: g.title, Columns: cols}
		for _, b := range benches {
			staged, err := preprocess(b, a)
			if err != nil {
				return nil, err
			}
			row := map[string]float64{}
			for _, c := range g.cfgs {
				o := place.Default()
				c.mut(&o)
				r, err := core.CompileStaged(staged, a, core.Options{Place: o})
				if err != nil {
					return nil, err
				}
				row[c.name] = r.Breakdown.Total
			}
			t.AddRow(b.Name, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
