package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("missing"); ok {
		t.Fatal("empty cache returned a hit")
	}
	payload := []byte(`{"answer":42}`)
	if err := d.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get(k1) = %q, %v; want %q, true", got, ok, payload)
	}
	st := d.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 entry / 1 hit / 1 miss", st)
	}
}

func TestDiskCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("persist", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get("persist")
	if !ok || string(got) != "payload" {
		t.Fatalf("reopened cache lost the entry: %q, %v", got, ok)
	}
	if st := d2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("reopen accounting = %+v, want 1 entry with nonzero bytes", st)
	}
}

// TestDiskCacheCorruption damages committed entries in the three ways a
// crash or bit rot can: truncation, payload flips, and header garbage. Every
// damaged entry must read as a miss and be deleted, and a subsequent Put
// must restore it.
func TestDiskCacheCorruption(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(raw []byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)-3] }},
		{"payload-flip", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0xff
			return out
		}},
		{"header-garbage", func(raw []byte) []byte { return append([]byte("not-a-header\n"), raw...) }},
		{"emptied", func(raw []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDiskCache(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("victim", []byte("precious payload")); err != nil {
				t.Fatal(err)
			}
			path := d.path("victim")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.damage(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Get("victim"); ok {
				t.Fatal("corrupt entry returned a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry file was not deleted")
			}
			if st := d.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if err := d.Put("victim", []byte("rewritten")); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get("victim"); !ok || string(got) != "rewritten" {
				t.Fatalf("rewrite after corruption failed: %q, %v", got, ok)
			}
		})
	}
}

// TestDiskCachePartialWriteRecovery simulates a writer that died mid-Put:
// the orphaned temp file must not be visible as an entry and must be cleaned
// up on the next open.
func TestDiskCachePartialWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("real", []byte("data")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(filepath.Dir(d.path("real")), "put-crashed.tmp")
	if err := os.WriteFile(orphan, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("reopen did not remove the orphaned temp file")
	}
	if st := d2.Stats(); st.Entries != 1 {
		t.Errorf("temp file counted as an entry: %+v", st)
	}
}

// TestDiskCacheConcurrent hammers one cache with overlapping readers and
// writers across a small key space; meaningful under -race. Readers must
// only ever observe complete payloads for their key.
func TestDiskCacheConcurrent(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%d", i%keys)
				if err := d.Put(k, []byte("value-for-"+k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%d", i%keys)
				if v, ok := d.Get(k); ok && string(v) != "value-for-"+k {
					t.Errorf("Get(%s) observed foreign or torn payload %q", k, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDiskCacheEviction fills a bounded cache past its byte budget and
// verifies the least recently read entries go first while fresh and
// recently-read ones survive.
func TestDiskCacheEviction(t *testing.T) {
	// Each entry: ~100 payload bytes + ~110 header bytes. Budget of 1100
	// holds about five entries.
	d, err := OpenDiskCache(t.TempDir(), 1100)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 4; i++ {
		if err := d.Put(fmt.Sprintf("old%d", i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the LRU order is unambiguous on coarse
		// filesystem clocks.
		past := time.Now().Add(time.Duration(i-60) * time.Second)
		os.Chtimes(d.path(fmt.Sprintf("old%d", i)), past, past)
	}
	// Touch old3 (most recent of the old batch) via a read.
	if _, ok := d.Get("old3"); !ok {
		t.Fatal("old3 vanished before eviction")
	}
	for i := 0; i < 3; i++ {
		if err := d.Put(fmt.Sprintf("new%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions despite exceeding the byte budget: %+v", st)
	}
	if st.Bytes > 1100 {
		t.Errorf("cache still over budget after eviction: %+v", st)
	}
	if _, ok := d.Get("old0"); ok {
		t.Error("least recently used entry old0 survived eviction")
	}
	for i := 0; i < 3; i++ {
		if _, ok := d.Get(fmt.Sprintf("new%d", i)); !ok {
			t.Errorf("freshly written new%d was evicted", i)
		}
	}
}

func TestDiskCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenDiskCache("", 0); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("OpenDiskCache(\"\") = %v, want empty-dir error", err)
	}
}
