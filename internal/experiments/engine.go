package experiments

import (
	"context"
	"fmt"

	"zac/internal/compiler"
	"zac/internal/engine"
)

// Config controls how an experiment executes. The zero value runs fully
// parallel (one worker per CPU) with the compilation cache enabled; use
// Sequential() for a one-worker run. The result rows are identical for
// every worker count because the engine assembles them by input index, not
// arrival order.
type Config struct {
	// Parallel is the worker-pool size: ≤ 0 selects runtime.NumCPU(),
	// 1 runs strictly sequentially on the calling goroutine.
	Parallel int
	// NoCache bypasses the process-wide compilation cache, recompiling
	// every (circuit, compiler, architecture) combination from scratch —
	// the seed's sequential behavior, kept for benchmarking the engine
	// against it.
	NoCache bool
	// Progress, when non-nil, receives a one-line message as each unit of
	// work completes.
	Progress func(msg string)
	// SARestarts, when > 1, overrides the ZAC-family initial-placement
	// restart count (independent annealing chains, best kept). It changes
	// compiled outputs, so it joins the harness cache key; 0 and 1 keep the
	// presets' single-chain default and the seed's keys.
	SARestarts int
	// Workers bounds each compilation's intra-compile parallelism (0 = all
	// cores). Speed-only: it never changes outputs and stays out of every
	// cache key.
	Workers int
}

// Sequential is the Config matching the pre-engine harness: one worker,
// cache enabled.
func Sequential() Config { return Config{Parallel: 1} }

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// compileCache memoizes every compilation the harness performs, keyed on
// circuit name + compiler + architecture fingerprint (+ option preset), so
// circuits shared across experiments — e.g. the representative subset reused
// by Fig8/Fig9/Fig10/Table2 — compile once per process. The LRU front is
// sized far above the full suite's entry count; attaching a disk tier with
// SetCacheDir makes final results survive restarts as well.
var compileCache = engine.NewTiered(8192)

// compileArtifacts is the pass-artifact view of the process-wide cache:
// staged circuits and placement plans computed once and shared across every
// compiler the harness drives (the registry's replacement for the old
// hand-rolled cachedStaged/cachedPlan sharing).
var compileArtifacts = compiler.NewArtifacts(compileCache)

// artifacts returns the shared pass-artifact cache, or nil when the config
// opted out of caching (a nil Artifacts computes everything in place).
func (c Config) artifacts() *compiler.Artifacts {
	if c.NoCache {
		return nil
	}
	return compileArtifacts
}

// cached routes a memory-only computation through the process-wide cache
// unless the config opted out. Entries looked up this way are never written
// to the disk tier — the right mode for values that hold deep pointer
// graphs into the architecture (placement plans, ftqc results).
func cached[T any](cfg Config, key string, compute func() (T, error)) (T, error) {
	return cachedDisk(cfg, key, nil, compute)
}

// cachedDisk routes a computation through the full cache hierarchy: LRU
// memory front, then the disk tier (when SetCacheDir attached one and codec
// is non-nil), then compute with write-through to both tiers.
func cachedDisk[T any](cfg Config, key string, codec *engine.Codec, compute func() (T, error)) (T, error) {
	if cfg.NoCache {
		return compute()
	}
	return engine.GetTiered(compileCache, key, codec, compute)
}

// SetCacheDir attaches a persistent disk tier rooted at dir to the
// compilation cache (maxBytes 0 = unbounded), or detaches it when dir is
// empty. Compilation results then survive process restarts and are shared
// with other processes pointed at the same directory.
func SetCacheDir(dir string, maxBytes int64) error {
	if dir == "" {
		compileCache.SetDisk(nil)
		return nil
	}
	d, err := engine.OpenDiskCache(dir, maxBytes)
	if err != nil {
		return err
	}
	compileCache.SetDisk(d)
	return nil
}

// ResetCache drops every in-memory cached compilation (the disk tier, if
// attached, is untouched). Benchmarks call it to measure cold-cache
// behavior; servers can call it to bound memory.
func ResetCache() { compileCache.Reset() }

// CacheStats reports the compilation cache's per-tier hit/miss counters.
func CacheStats() engine.TieredStats { return compileCache.Stats() }

// mapRows is the harness's fan-out primitive: it runs fn(i) for every index
// through the bounded worker pool and returns the results in input order.
func mapRows[T any](ctx context.Context, cfg Config, n int, fn func(i int) (T, error)) ([]T, error) {
	return engine.Map(ctx, cfg.Parallel, n, fn)
}
