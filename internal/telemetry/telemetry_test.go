package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety is the zero-overhead contract: nil recorders and spans, and
// contexts without a trace, are no-ops at every call site.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	ctx, sp := r.StartTrace(context.Background(), "root")
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	if From(ctx) != nil {
		t.Fatal("nil recorder attached a span to the context")
	}
	ctx2, child := Start(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("Start without a trace must return (ctx, nil)")
	}
	Event(ctx, "event", "k", "v")
	child.Set("k", "v")
	child.SetInt("n", 1)
	child.SetBool("b", true)
	child.End()
	if got := child.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q, want empty", got)
	}
	if r.Traces() != nil || r.Dump() != nil || r.Len() != 0 {
		t.Fatal("nil recorder must report no traces")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder Get must miss")
	}
}

// TestSpanTree pins the span model: nesting via context, attrs, seq order,
// and the trace completing when the root ends.
func TestSpanTree(t *testing.T) {
	r := NewRecorder(4)
	ctx, root := r.StartTrace(context.Background(), "compile")
	if root.TraceID() == "" {
		t.Fatal("empty trace id")
	}
	ctx1, place := Start(ctx, "pass.place")
	place.Set("cached", "false")
	_, sa := Start(ctx1, "place.sa_restarts")
	sa.SetInt("restarts", 4)
	sa.End()
	place.End()
	Event(ctx, "cache.mem", "hit", "false")
	root.End()

	td, ok := r.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if !td.Done || td.Name != "compile" {
		t.Fatalf("trace = %+v", td)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if byName["pass.place"].Parent != byName["compile"].Seq {
		t.Error("pass.place must nest under the root")
	}
	if byName["place.sa_restarts"].Parent != byName["pass.place"].Seq {
		t.Error("place.sa_restarts must nest under pass.place")
	}
	if byName["cache.mem"].Parent != byName["compile"].Seq {
		t.Error("Event must nest under the context's current span")
	}
	if got := byName["place.sa_restarts"].Attrs; len(got) != 1 || got[0].Key != "restarts" || got[0].Value != "4" {
		t.Errorf("sa attrs = %+v", got)
	}
	tree := TreeString(td)
	for _, want := range []string{"compile", "  pass.place", "    place.sa_restarts", "restarts=4"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestRingEviction pins the bounded-ring retention: the oldest trace leaves
// when the capacity is exceeded.
func TestRingEviction(t *testing.T) {
	r := NewRecorder(2)
	var ids []string
	for i := 0; i < 3; i++ {
		_, sp := r.StartTrace(context.Background(), "t")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if r.Len() != 2 {
		t.Fatalf("retained %d traces, want 2", r.Len())
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Error("oldest trace must be evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := r.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	// Most recent first in the listing.
	sums := r.Traces()
	if len(sums) != 2 || sums[0].ID != ids[2] || sums[1].ID != ids[1] {
		t.Errorf("summaries = %+v", sums)
	}
}

// TestSpanCap pins the per-trace span bound: spans beyond the cap are
// counted, not retained.
func TestSpanCap(t *testing.T) {
	r := NewRecorder(1)
	r.maxSpans = 3
	ctx, root := r.StartTrace(context.Background(), "t")
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	root.End()
	td, _ := r.Get(root.TraceID())
	if len(td.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(td.Spans))
	}
	if td.DroppedSpans != 3 { // two children + the root
		t.Fatalf("dropped %d spans, want 3", td.DroppedSpans)
	}
}

// TestConcurrentSpans exercises concurrent span creation and attribute
// writes under the race detector.
func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder(8)
	ctx, root := r.StartTrace(context.Background(), "t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := Start(ctx, "worker")
				sp.SetInt("g", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	td, _ := r.Get(root.TraceID())
	if len(td.Spans) != 401 {
		t.Fatalf("got %d spans, want 401", len(td.Spans))
	}
	for i := 1; i < len(td.Spans); i++ {
		if td.Spans[i].Seq <= td.Spans[i-1].Seq {
			t.Fatal("spans not sorted by seq")
		}
	}
}

// TestChromeTrace pins the trace_event export shape Perfetto consumes:
// a traceEvents array of complete ("X") events plus thread-name metadata,
// valid JSON, with trace-relative timestamps shifted to absolute µs.
func TestChromeTrace(t *testing.T) {
	r := NewRecorder(2)
	ctx, root := r.StartTrace(context.Background(), "compile")
	_, sp := Start(ctx, "pass.place")
	sp.Set("cached", "false")
	sp.End()
	root.End()

	data, err := ChromeTrace(r.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) != 3 { // metadata + 2 spans
		t.Fatalf("got %d events, want 3", len(file.TraceEvents))
	}
	var phases []string
	for _, ev := range file.TraceEvents {
		phases = append(phases, ev.Ph)
		if ev.Ph == "X" && ev.TS < root.tr.start.UnixMicro() {
			t.Errorf("event %s ts %d before trace start", ev.Name, ev.TS)
		}
	}
	if phases[0] != "M" || phases[1] != "X" || phases[2] != "X" {
		t.Errorf("phases = %v", phases)
	}
	// The root event carries the trace id for cross-referencing.
	found := false
	for _, ev := range file.TraceEvents {
		if ev.Args["trace_id"] == root.TraceID() {
			found = true
		}
	}
	if !found {
		t.Error("no event carries the trace id")
	}
}

// TestTraceIDUniqueness spot-checks that concurrent trace starts never
// collide.
func TestTraceIDUniqueness(t *testing.T) {
	r := NewRecorder(1024)
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := r.StartTrace(context.Background(), "t")
				mu.Lock()
				if seen[sp.TraceID()] {
					t.Error("duplicate trace id")
				}
				seen[sp.TraceID()] = true
				mu.Unlock()
				sp.End()
			}
		}()
	}
	wg.Wait()
}
