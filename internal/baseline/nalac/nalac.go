// Package nalac reimplements the mechanism of NALAC [Stade et al. 2024], the
// zoned-architecture baseline the paper compares against (§II, §VII): per
// Rydberg stage it moves two rows of qubits from storage into a single row
// of the entanglement zone (first operands in one row, second operands in
// the other) and "slides" the rows past each other so that each gate pair
// aligns at some slide offset. Its two published weaknesses — which the
// paper's evaluation exposes — are modeled directly:
//
//   - gate placement limited to one entanglement-zone row, so gate pairs
//     whose rank order crosses need distinct slide offsets, i.e. sequential
//     exposures and extra horizontal movement (duration overhead);
//   - qubit reuse that keeps next-stage qubits inside the entanglement
//     zone, so qubits idle during an exposure — retained qubits and the
//     other offsets' gate qubits — absorb Rydberg excitation errors
//     (2Q-fidelity overhead, Fig. 9).
package nalac

import (
	"fmt"
	"sort"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/fidelity"
)

// Result is the evaluation of a NALAC-style compilation.
type Result struct {
	Stats            fidelity.Stats
	Breakdown        fidelity.Breakdown
	NumExposures     int
	NumRowLoads      int
	Duration         float64
	TotalSlideLength float64
}

// Compile evaluates a preprocessed circuit under the NALAC execution model
// on the zoned architecture a.
func Compile(staged *circuit.Staged, a *arch.Architecture) (*Result, error) {
	if len(a.Storage) == 0 || len(a.Entanglement) == 0 {
		return nil, fmt.Errorf("nalac: architecture needs storage and entanglement zones")
	}
	zone := a.Entanglement[0]
	sitePitch := zone.SLMs[0].SepX
	rowCapacity := zone.SiteCols()
	// Average travel for a row load: zone separation plus half the zone
	// width of horizontal adjustment.
	loadDistance := a.ZoneSep + float64(rowCapacity)*sitePitch/2

	var st fidelity.Stats
	st.Busy = make([]float64, staged.NumQubits)
	clock := 0.0
	res := &Result{}

	// Zone contents: current gate qubits plus qubits retained for reuse.
	inZone := map[int]bool{}
	ryd := staged.RydbergStages()
	rydIdx := 0

	rowJob := func(qs []int) {
		if len(qs) == 0 {
			return
		}
		res.NumRowLoads++
		dur := 2*a.Times.AtomTransfer + a.MoveTime(loadDistance)
		for _, q := range qs {
			st.Transfers += 2
			st.Busy[q] += dur
		}
		clock += dur
	}

	for _, stage := range staged.Stages {
		switch stage.Kind {
		case circuit.OneQStage:
			for _, g := range stage.Gates {
				st.OneQGates++
				st.Busy[g.Qubits[0]] += a.Times.OneQGate
				clock += a.Times.OneQGate
			}
		case circuit.RydbergStage:
			rydIdx++
			nextNeeded := map[int]bool{}
			if rydIdx < len(ryd) {
				for _, g := range staged.Stages[ryd[rydIdx]].Gates {
					for _, q := range g.Qubits {
						nextNeeded[q] = true
					}
				}
			}

			// Load missing qubits as two row jobs: first operands into the
			// static row, second operands into the sliding row.
			var rowA, rowB []int
			for _, g := range stage.Gates {
				if !inZone[g.Qubits[0]] {
					rowA = append(rowA, g.Qubits[0])
				}
				if !inZone[g.Qubits[1]] {
					rowB = append(rowB, g.Qubits[1])
				}
			}
			rowJob(rowA)
			rowJob(rowB)
			for _, g := range stage.Gates {
				inZone[g.Qubits[0]] = true
				inZone[g.Qubits[1]] = true
			}

			// Slide offsets: rank first operands and second operands; a
			// gate's offset is the rank difference. Uniformly-structured
			// stages align at one offset; crossing pairs need more.
			offsets := stageOffsets(stage.Gates)
			keys := make([]int, 0, len(offsets))
			for k := range offsets {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			prevOff := 0
			for _, off := range keys {
				slide := float64(abs(off-prevOff)) * sitePitch
				res.TotalSlideLength += slide
				slideDur := a.MoveTime(slide)
				for _, g := range offsets[off] {
					for _, q := range g.Qubits {
						st.Busy[q] += slideDur
					}
				}
				clock += slideDur
				prevOff = off

				res.NumExposures++
				st.TwoQGates += len(offsets[off])
				gateQubits := map[int]bool{}
				for _, g := range offsets[off] {
					for _, q := range g.Qubits {
						gateQubits[q] = true
						st.Busy[q] += a.Times.Rydberg
					}
				}
				// Everything else in the zone — retained reuse qubits and
				// the other offsets' waiting pairs — is excited.
				for q := range inZone {
					if !gateQubits[q] {
						st.Excited++
					}
				}
				clock += a.Times.Rydberg
			}

			// Reuse: retain qubits needed in the next stage; unload the
			// rest as one row job.
			var leaving []int
			for q := range inZone {
				if !nextNeeded[q] {
					leaving = append(leaving, q)
				}
			}
			sort.Ints(leaving)
			for _, q := range leaving {
				delete(inZone, q)
			}
			rowJob(leaving)
		}
	}
	// Drain the zone.
	var rest []int
	for q := range inZone {
		rest = append(rest, q)
	}
	sort.Ints(rest)
	rowJob(rest)

	st.Duration = clock
	res.Stats = st
	res.Duration = clock
	res.Breakdown = fidelity.Compute(fidelity.Params{
		F1: a.Fidelities.SingleQubit, F2: a.Fidelities.TwoQubit,
		FExc: a.Fidelities.Excitation, FTran: a.Fidelities.AtomTransfer,
		T1Q: a.Times.OneQGate, T2Q: a.Times.Rydberg, TTran: a.Times.AtomTransfer,
		T2: a.T2,
	}, st)
	return res, nil
}

// stageOffsets groups a stage's gates by slide offset: operands are packed
// into the two rows in qubit order, and gate (a,b) aligns when the slide
// equals rank(b) − rank(a).
func stageOffsets(gates []circuit.Gate) map[int][]circuit.Gate {
	var as, bs []int
	for _, g := range gates {
		as = append(as, g.Qubits[0])
		bs = append(bs, g.Qubits[1])
	}
	sort.Ints(as)
	sort.Ints(bs)
	rankA := map[int]int{}
	for i, q := range as {
		rankA[q] = i
	}
	rankB := map[int]int{}
	for i, q := range bs {
		rankB[q] = i
	}
	offsets := map[int][]circuit.Gate{}
	for _, g := range gates {
		off := rankB[g.Qubits[1]] - rankA[g.Qubits[0]]
		offsets[off] = append(offsets[off], g)
	}
	return offsets
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
