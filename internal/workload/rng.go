package workload

// RNG is the forge's self-contained pseudo-random generator (splitmix64).
// The generators deliberately avoid math/rand: its stream is only stable per
// Go release, while a workload spec must reproduce a byte-identical circuit
// on any toolchain — the determinism the spec-as-cache-key contract rests
// on. Splitmix64 is tiny, fast, and fully specified by its seed.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator for the seed (0 is a valid seed).
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Uint64 returns the next raw 64-bit value (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n); n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	// Rejection-free modulo is fine here: n is tiny relative to 2^64, and
	// reproducibility matters more than the ~n/2^64 bias.
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n); n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
