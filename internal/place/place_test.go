package place

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
	"zac/internal/resynth"
)

func ghz(n int) *circuit.Circuit {
	c := circuit.New("ghz", n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < n-1; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}
	return c
}

func parallelPairs(n int) *circuit.Circuit {
	// Two stages of n/2 parallel CZs each; stage 2 shifted by one — rich in
	// reuse opportunities.
	c := circuit.New("pairs", n)
	for i := 0; i+1 < n; i += 2 {
		c.Append(circuit.CZ, []int{i, i + 1})
	}
	for i := 1; i+1 < n; i += 2 {
		c.Append(circuit.CZ, []int{i, i + 1})
	}
	return c
}

func mustStage(t *testing.T, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	s, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrivialInitial(t *testing.T) {
	a := arch.Reference()
	traps, err := TrivialInitial(a, 14)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[arch.TrapRef]bool{}
	for q, tr := range traps {
		if seen[tr] {
			t.Fatalf("trap %+v assigned twice", tr)
		}
		seen[tr] = true
		// Nearest row to the entanglement zone is row 99 (y = 297).
		if tr.Row != 99 {
			t.Errorf("qubit %d at row %d, want 99", q, tr.Row)
		}
		if tr.Col != q {
			t.Errorf("qubit %d at col %d", q, tr.Col)
		}
	}
}

func TestTrivialInitialOverflow(t *testing.T) {
	a := arch.Arch1Small() // 120 traps
	if _, err := TrivialInitial(a, 121); err == nil {
		t.Fatal("expected error for too many qubits")
	}
	if traps, err := TrivialInitial(a, 120); err != nil || len(traps) != 120 {
		t.Fatalf("exact fit failed: %v", err)
	}
}

func TestSAInitialImprovesOrEqual(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, ghz(12))
	gates := collectWeightedGates(staged)

	costOf := func(traps []arch.TrapRef) float64 {
		total := 0.0
		pts := make([]geom.Point, len(traps))
		for q, tr := range traps {
			pts[q] = a.TrapPos(tr)
		}
		for _, g := range gates {
			site := a.SitePos(nearSiteForGate(a, pts[g.q1], pts[g.q2]))
			total += g.weight * gateCost(a, site, pts[g.q1], pts[g.q2])
		}
		return total
	}

	trivial, err := TrivialInitial(a, staged.NumQubits)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SAInitial(a, staged, 1000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if costOf(sa) > costOf(trivial)+1e-9 {
		t.Errorf("SA cost %v worse than trivial %v", costOf(sa), costOf(trivial))
	}
	// Must remain injective.
	seen := map[arch.TrapRef]bool{}
	for _, tr := range sa {
		if seen[tr] {
			t.Fatal("SA produced colliding traps")
		}
		seen[tr] = true
	}
}

func TestSAInitialDeterministic(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, ghz(8))
	r1, _ := SAInitial(a, staged, 500, rand.New(rand.NewSource(7)))
	r2, _ := SAInitial(a, staged, 500, rand.New(rand.NewSource(7)))
	for q := range r1 {
		if r1[q] != r2[q] {
			t.Fatal("SA not deterministic under a fixed seed")
		}
	}
}

func TestGateCostEquation1(t *testing.T) {
	a := arch.Reference()
	// Paper's worked example (Fig. 5): q0 at (13,9), q1 at (1,9), site ω00 at
	// (0,19): same row → max(√16.40, √10.05) = 4.05.
	site := geom.Point{X: 0, Y: 19}
	c := gateCost(a, site, geom.Point{X: 13, Y: 9}, geom.Point{X: 1, Y: 9})
	if math.Abs(c-4.05) > 0.01 {
		t.Errorf("same-row gate cost = %v, want ≈4.05", c)
	}
	// Different rows → sum.
	c2 := gateCost(a, site, geom.Point{X: 13, Y: 9}, geom.Point{X: 1, Y: 6})
	want := math.Sqrt(geom.Point{X: 13, Y: 9}.Dist(site)) + math.Sqrt(geom.Point{X: 1, Y: 6}.Dist(site))
	if math.Abs(c2-want) > 1e-9 {
		t.Errorf("diff-row gate cost = %v, want %v", c2, want)
	}
}

func TestWeightDecay(t *testing.T) {
	staged := mustStage(t, ghz(5)) // 4 sequential CZ stages
	gates := collectWeightedGates(staged)
	if len(gates) != 4 {
		t.Fatalf("gates = %d", len(gates))
	}
	wants := []float64{1.0, 0.9, 0.8, 0.7}
	for i, g := range gates {
		if math.Abs(g.weight-wants[i]) > 1e-12 {
			t.Errorf("gate %d weight %v, want %v", i, g.weight, wants[i])
		}
	}
}

func TestWeightFloor(t *testing.T) {
	staged := mustStage(t, ghz(15)) // 14 stages: weights floor at 0.1
	gates := collectWeightedGates(staged)
	last := gates[len(gates)-1]
	if last.weight != 0.1 {
		t.Errorf("deep-stage weight = %v, want floor 0.1", last.weight)
	}
}

func TestReuseMatch(t *testing.T) {
	// Paper Fig. 6a: l2 = {g0(0,1), g1(3,4)}, l4 = {g2(1,2), g3(3,5), g4(0,4)}.
	prev := []circuit.Gate{
		circuit.NewGate(circuit.CZ, []int{0, 1}),
		circuit.NewGate(circuit.CZ, []int{3, 4}),
	}
	next := []circuit.Gate{
		circuit.NewGate(circuit.CZ, []int{1, 2}),
		circuit.NewGate(circuit.CZ, []int{3, 5}),
		circuit.NewGate(circuit.CZ, []int{0, 4}),
	}
	m := reuseMatch(prev, next)
	// Maximum matching has size 2 (only two previous gates).
	matched := 0
	usedPrev := map[int]bool{}
	for j, pi := range m {
		if pi < 0 {
			continue
		}
		matched++
		if usedPrev[pi] {
			t.Fatal("previous gate reused twice")
		}
		usedPrev[pi] = true
		if !sharesQubit(prev[pi], next[j]) {
			t.Fatalf("matched gates %d→%d share no qubit", pi, j)
		}
	}
	if matched != 2 {
		t.Errorf("matched = %d, want 2", matched)
	}
}

func TestReuseMatchEmpty(t *testing.T) {
	if m := reuseMatch(nil, []circuit.Gate{circuit.NewGate(circuit.CZ, []int{0, 1})}); m[0] != -1 {
		t.Error("no previous gates must mean no reuse")
	}
}

func TestBuildPlanGHZValid(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, ghz(14))
	for _, setting := range []Options{
		{UseSA: false, Dynamic: false, Reuse: false},
		{UseSA: false, Dynamic: true, Reuse: false},
		{UseSA: false, Dynamic: true, Reuse: true},
		Default(),
	} {
		plan, err := BuildPlan(context.Background(), a, staged, setting)
		if err != nil {
			t.Fatalf("%+v: %v", setting, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%+v: %v", setting, err)
		}
		if len(plan.Steps) != staged.NumRydbergStages() {
			t.Fatalf("steps %d != stages %d", len(plan.Steps), staged.NumRydbergStages())
		}
	}
}

func TestBuildPlanReuseReducesMoves(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, ghz(20))
	noReuse, err := BuildPlan(context.Background(), a, staged, Options{Dynamic: true, Reuse: false})
	if err != nil {
		t.Fatal(err)
	}
	withReuse, err := BuildPlan(context.Background(), a, staged, Options{Dynamic: true, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if withReuse.TotalReused() == 0 {
		t.Error("GHZ chain should admit reuse (consecutive gates share qubits)")
	}
	if withReuse.TotalMoves() >= noReuse.TotalMoves() {
		t.Errorf("reuse should reduce movements: %d vs %d", withReuse.TotalMoves(), noReuse.TotalMoves())
	}
}

func TestBuildPlanParallelCircuit(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, parallelPairs(20))
	plan, err := BuildPlan(context.Background(), a, staged, Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// First stage holds 10 parallel gates at 10 distinct sites.
	if len(plan.Steps[0].Gates) != 10 {
		t.Fatalf("stage 0 gates = %d", len(plan.Steps[0].Gates))
	}
}

func TestBuildPlanStaticReturnsHome(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, ghz(6))
	plan, err := BuildPlan(context.Background(), a, staged, Options{Dynamic: false, Reuse: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every move-out must end at the qubit's initial trap.
	for _, step := range plan.Steps {
		for _, m := range step.MovesOut {
			if m.To.Trap != plan.Initial[m.Qubit] {
				t.Fatalf("static mode returned qubit %d to %+v, home %+v",
					m.Qubit, m.To.Trap, plan.Initial[m.Qubit])
			}
		}
	}
}

func TestBuildPlanMultiZone(t *testing.T) {
	a := arch.Arch2TwoZones()
	staged := mustStage(t, parallelPairs(24))
	plan, err := BuildPlan(context.Background(), a, staged, Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// With 12 gates per stage and two 3×10 zones, both zones should see use
	// across the plan (not guaranteed per-stage, so check the union).
	zones := map[int]bool{}
	for _, step := range plan.Steps {
		for _, s := range step.Sites {
			zones[s.Zone] = true
		}
	}
	if len(zones) < 2 {
		t.Log("warning: only one entanglement zone used; acceptable but unexpected for wide circuits")
	}
}

func TestBuildPlanSmallArch(t *testing.T) {
	a := arch.Arch1Small()
	staged := mustStage(t, parallelPairs(40))
	plan, err := BuildPlan(context.Background(), a, staged, Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateTrapsIncludeAnchors(t *testing.T) {
	a := arch.Reference()
	// Qubit 0 sits at site (0,0); home trap (99, 5); no related qubit.
	pos := []Pos{SitePos(arch.SiteRef{Zone: 0, Row: 0, Col: 0}, 0)}
	home := []arch.TrapRef{{Zone: 0, SLM: 0, Row: 99, Col: 5}}
	occupied := newOccupancy(a)
	cands := candidateTraps(a, 0, pos, home, nil, occupied, 2)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	hasHome := false
	for _, c := range cands {
		if c == home[0] {
			hasHome = true
		}
	}
	if !hasHome {
		t.Error("home trap missing from candidates")
	}
}

func TestPosPointAndSameLocation(t *testing.T) {
	a := arch.Reference()
	p1 := StoragePos(arch.TrapRef{Zone: 0, SLM: 0, Row: 3, Col: 4})
	if !p1.Point(a).Eq(geom.Point{X: 12, Y: 9}, 1e-9) {
		t.Errorf("storage pos point = %v", p1.Point(a))
	}
	p2 := SitePos(arch.SiteRef{Zone: 0, Row: 0, Col: 0}, 1)
	if !p2.Point(a).Eq(geom.Point{X: 37, Y: 307}, 1e-9) {
		t.Errorf("site pos point = %v", p2.Point(a))
	}
	if p1.SameLocation(p2) {
		t.Error("different locations reported same")
	}
	if !p1.SameLocation(StoragePos(arch.TrapRef{Zone: 0, SLM: 0, Row: 3, Col: 4})) {
		t.Error("same trap reported different")
	}
	if p2.SameLocation(SitePos(arch.SiteRef{Zone: 0, Row: 0, Col: 0}, 0)) {
		t.Error("different slots reported same")
	}
}
