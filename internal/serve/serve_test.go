package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/core"
	"zac/internal/engine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyQASM is a 3-qubit GHZ preparation — small enough that a compile is
// effectively instant, so API tests stay fast.
const tinyQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues one request and returns status and body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rdr *strings.Reader = strings.NewReader(body)
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// compileMSRe scrubs the wall-clock compile-time field, the only
// nondeterministic part of a compile response.
var compileMSRe = regexp.MustCompile(`"compile_ms": [0-9.e+-]+`)

// checkGolden compares got (after scrubbing wall-clock fields) against
// testdata/<name>.golden, rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	scrubbed := compileMSRe.ReplaceAll(got, []byte(`"compile_ms": 0`))
	path := filepath.Join("testdata", name+".golden")
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(path, scrubbed, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(scrubbed, want) {
		t.Errorf("%s: response differs from golden file\n--- got ---\n%s\n--- want ---\n%s", name, scrubbed, want)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := do(t, "GET", ts.URL+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	checkGolden(t, "healthz", body)
}

func TestCompileSingleGolden(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := do(t, "POST", ts.URL+"/v1/compile",
		`{"qasm":`+strconv(tinyQASM)+`,"name":"ghz3"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	checkGolden(t, "compile_single", body)
}

func TestCompileBatchGolden(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"requests":[
		{"qasm":` + strconv(tinyQASM) + `,"name":"ghz3"},
		{"qasm":` + strconv(tinyQASM) + `,"name":"ghz3","setting":"Vanilla"},
		{"circuit":"no_such_bench"}
	]}`
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	checkGolden(t, "compile_batch", body)
}

func TestCompileErrorsGolden(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"err_empty", `{}`, http.StatusBadRequest},
		{"err_both", `{"circuit":"ghz_n23","qasm":"x"}`, http.StatusBadRequest},
		{"err_setting", `{"circuit":"ghz_n23","setting":"warp9"}`, http.StatusBadRequest},
		{"err_badqasm", `{"qasm":"not qasm at all"}`, http.StatusBadRequest},
	} {
		status, body := do(t, "POST", ts.URL+"/v1/compile", tc.body)
		if status != tc.status {
			t.Fatalf("%s: status = %d: %s", tc.name, status, body)
		}
		checkGolden(t, tc.name, body)
	}
}

// TestCompileMatchesCLI is the parity guarantee: the service's ZAIR output
// must be byte-identical to what `zac -out` writes for the same input.
func TestCompileMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, got := do(t, "POST", ts.URL+"/v1/compile?format=zair",
		`{"circuit":"bv_n14"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, got)
	}

	// The CLI path: core.Compile + json.MarshalIndent(prog, "", " ").
	b, err := bench.ByName("bv_n14")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(b.Build(), arch.Reference(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(res.Program, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service ZAIR differs from CLI encoding (%d vs %d bytes)", len(got), len(want))
	}

	// A cached replay must serve the same bytes.
	_, again := do(t, "POST", ts.URL+"/v1/compile?format=zair", `{"circuit":"bv_n14"}`)
	if !bytes.Equal(again, want) {
		t.Fatal("cached replay returned different ZAIR bytes")
	}
}

func TestCompileCachedFlagAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"qasm":` + strconv(tinyQASM) + `,"name":"ghz3"}`
	_, first := do(t, "POST", ts.URL+"/v1/compile", body)
	_, second := do(t, "POST", ts.URL+"/v1/compile", body)
	var r1, r2 CompileResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", r1.Cached, r2.Cached)
	}

	m := s.Metrics()
	if m.CompilesTotal != 2 || m.Cache.Misses != 1 || m.Cache.MemHits != 1 {
		t.Errorf("metrics = %+v; want 2 compiles, 1 miss, 1 mem hit", m)
	}
	lat, ok := m.Compilers["zac"]
	if !ok || lat.Count != 1 || lat.AvgMS <= 0 {
		t.Errorf("latency aggregate missing or empty: %+v", m.Compilers)
	}
	for _, pass := range []string{"validate", "place", "schedule", "emit", "fidelity"} {
		pl, ok := m.Passes["zac/"+pass]
		if !ok || pl.Count != 1 {
			t.Errorf("pass latency for zac/%s missing: %+v", pass, m.Passes)
		}
	}
	if m.PassCache.Misses == 0 {
		t.Errorf("pass cache saw no lookups: %+v", m.PassCache)
	}

	status, raw := do(t, "GET", ts.URL+"/metrics", "")
	if status != http.StatusOK || !bytes.Contains(raw, []byte(`"cache"`)) {
		t.Errorf("GET /metrics = %d: %s", status, raw)
	}
}

// TestDiskTierAcrossServers simulates a service restart: a second Server
// over the same cache directory must serve the first server's compilations
// from disk, with identical ZAIR bytes.
func TestDiskTierAcrossServers(t *testing.T) {
	dir := t.TempDir()
	disk1, err := engine.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Disk: disk1})
	body := `{"qasm":` + strconv(tinyQASM) + `,"name":"ghz3"}`
	_, first := do(t, "POST", ts1.URL+"/v1/compile?format=zair", body)

	disk2, err := engine.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Options{Disk: disk2})
	status, second := do(t, "POST", ts2.URL+"/v1/compile?format=zair", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restarted server returned different ZAIR bytes")
	}
	if st := s2.CacheStats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("restart lookup not served from disk: %+v", st)
	}
	var resp CompileResponse
	_, envelope := do(t, "POST", ts2.URL+"/v1/compile", body)
	if err := json.Unmarshal(envelope, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("disk-restored response not flagged as cached")
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"async":true,"requests":[
		{"qasm":` + strconv(tinyQASM) + `,"name":"ghz3"},
		{"circuit":"no_such_bench"}
	]}`
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0", req)
	if status != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", status, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Total != 2 {
		t.Fatalf("submit response = %+v", sub)
	}

	deadline := time.Now().Add(10 * time.Second)
	var jr JobResponse
	for {
		status, body = do(t, "GET", ts.URL+"/v1/jobs/"+sub.ID, "")
		if status != http.StatusOK {
			t.Fatalf("poll status = %d: %s", status, body)
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == JobDone || jr.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jr.Status != JobDone || jr.Completed != 2 || len(jr.Results) != 2 {
		t.Fatalf("finished job = %+v", jr)
	}
	if jr.Results[0].Error != "" || jr.Results[0].Result == nil {
		t.Errorf("item 0 should have succeeded: %+v", jr.Results[0])
	}
	if jr.Results[1].Error == "" {
		t.Errorf("item 1 should carry its error: %+v", jr.Results[1])
	}

	if status, _ := do(t, "GET", ts.URL+"/v1/jobs/job-999", ""); status != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", status)
	}
}

func TestBatchLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBatch: 2})
	req := `{"requests":[{"circuit":"a"},{"circuit":"b"},{"circuit":"c"}]}`
	status, _ := do(t, "POST", ts.URL+"/v1/compile", req)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
}

func TestFormatZairRejectsBatchAndAsync(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		`{"requests":[{"circuit":"bv_n14"}]}`,
		`{"circuit":"bv_n14","async":true}`,
	} {
		if status, _ := do(t, "POST", ts.URL+"/v1/compile?format=zair", body); status != http.StatusBadRequest {
			t.Errorf("format=zair on %s: status = %d, want 400", body, status)
		}
	}
}

// strconv JSON-encodes a string literal for embedding in request bodies.
func strconv(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
