package experiments

import (
	"context"

	"zac/internal/bench"
)

// workloadCols are the compilers the extension study compares.
var workloadCols = []string{ColEnola, ColNALAC, ColZAC}

// Workloads evaluates the extension workload families (QAOA, VQE, 2D Ising,
// random Clifford — the algorithm classes the paper's introduction
// motivates) across the three neutral-atom compilers, checking that ZAC's
// advantage generalizes beyond the QASMBench suite.
func Workloads(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	var benches []bench.Benchmark
	if len(subset) == 0 {
		benches = bench.ExtraAll()
	} else {
		want := map[string]bool{}
		for _, n := range subset {
			want[n] = true
		}
		for _, b := range bench.ExtraAll() {
			if want[b.Name] {
				benches = append(benches, b)
			}
		}
	}
	fid := &Table{
		Title:   "Extension: workload families (fidelity)",
		Columns: workloadCols,
	}
	dur := &Table{
		Title:   "Extension: workload families (duration ms)",
		Columns: workloadCols,
	}
	res, err := benchCols(ctx, cfg, "workloads", benches, workloadCols)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		fRow, dRow := map[string]float64{}, map[string]float64{}
		for col, v := range res[i] {
			fRow[col] = v.breakdown.Total
			dRow[col] = v.duration / 1000
		}
		fid.AddRow(b.Name, fRow)
		dur.AddRow(b.Name, dRow)
	}
	return []*Table{fid, dur}, nil
}
