package benchsuite

import (
	"fmt"
	"html"
	"strings"

	"zac/internal/benchsuite/stats"
)

// ReportOptions selects what a report covers.
type ReportOptions struct {
	// MachineID restricts the report to one machine ("" = every machine
	// in the store).
	MachineID string
	// LastN is the trend depth in commits (default 10).
	LastN int
	// Confidence is the level of the reported median CIs (default 0.95).
	Confidence float64
}

// normalized fills the options' defaults.
func (o ReportOptions) normalized() ReportOptions {
	if o.LastN <= 0 {
		o.LastN = 10
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	return o
}

// reportRow is one case's rendered view: latest summary plus the trend
// tail, shared by both output formats so they can never disagree.
type reportRow struct {
	Case      string
	Commit    string
	Reps      int
	Median    float64
	CI        stats.Interval
	DeltaPct  float64 // vs previous commit's median; NaN-free: 0 when no previous
	HasPrev   bool
	TrendText string // "104.0 → 101.2 → 98.7" medians, oldest first
	// BOp and AllocsOp are the latest commit's median B/op and allocs/op;
	// HasAlloc is false for cases whose records predate schema 2 (or pass
	// records, which carry no allocation vectors).
	BOp      float64
	AllocsOp float64
	HasAlloc bool
}

// reportMachine is one machine's section.
type reportMachine struct {
	ID          string
	Fingerprint Fingerprint
	Rows        []reportRow
}

// buildReport assembles the deterministic data model both generators
// render: machines sorted by id, cases sorted by name, trends in commit
// append order.
func buildReport(s *Store, opts ReportOptions) ([]reportMachine, error) {
	opts = opts.normalized()
	var ids []string
	if opts.MachineID != "" {
		ids = []string{opts.MachineID}
	} else {
		var err error
		ids, err = s.Machines()
		if err != nil {
			return nil, err
		}
	}
	var machines []reportMachine
	for _, id := range ids {
		records, err := s.Records(id)
		if err != nil {
			return nil, err
		}
		if len(records) == 0 {
			continue
		}
		m := reportMachine{ID: id, Fingerprint: records[0].Machine}
		cases, err := s.Cases(id)
		if err != nil {
			return nil, err
		}
		for _, name := range cases {
			trend, err := s.Trend(id, name, opts.LastN)
			if err != nil {
				return nil, err
			}
			if len(trend) == 0 {
				continue
			}
			last := trend[len(trend)-1]
			row := reportRow{
				Case:   name,
				Commit: last.Commit,
				Reps:   last.Summary.N,
				Median: last.Summary.Median,
			}
			if ci, err := stats.MedianCI(last.Samples, opts.Confidence); err == nil {
				row.CI = ci
			}
			if len(last.BSamples) > 0 {
				row.BOp = stats.Median(last.BSamples)
				row.AllocsOp = stats.Median(last.AllocSamples)
				row.HasAlloc = true
			}
			if len(trend) > 1 {
				prev := trend[len(trend)-2].Summary.Median
				if prev > 0 {
					row.DeltaPct = (last.Summary.Median/prev - 1) * 100
					row.HasPrev = true
				}
			}
			var parts []string
			for _, p := range trend {
				parts = append(parts, fmt.Sprintf("%.1f", p.Summary.Median))
			}
			row.TrendText = strings.Join(parts, " → ")
			m.Rows = append(m.Rows, row)
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// shortCommit truncates a commit sha for display.
func shortCommit(c string) string {
	if len(c) > 12 {
		return c[:12]
	}
	return c
}

// deltaCell renders the vs-previous column.
func (r reportRow) deltaCell() string {
	if !r.HasPrev {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", r.DeltaPct)
}

// ciCell renders the median confidence interval column.
func (r reportRow) ciCell() string {
	if r.CI.Confidence == 0 {
		return "—"
	}
	return fmt.Sprintf("[%.1f, %.1f] @%.0f%%", r.CI.Lo, r.CI.Hi, r.CI.Confidence*100)
}

// allocCell renders the allocation column ("B/op / allocs/op" medians).
func (r reportRow) allocCell() string {
	if !r.HasAlloc {
		return "—"
	}
	return fmt.Sprintf("%.0f B / %.1f", r.BOp, r.AllocsOp)
}

// MarkdownReport renders the store as a markdown document: one section per
// machine, one table row per case with the latest median, its CI, the delta
// against the previous commit, and the per-commit median trend. The output
// is byte-stable for a fixed store.
func MarkdownReport(s *Store, opts ReportOptions) (string, error) {
	opts = opts.normalized()
	machines, err := buildReport(s, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("# zac-benchsuite report\n")
	if len(machines) == 0 {
		b.WriteString("\n_No records in store._\n")
		return b.String(), nil
	}
	for _, m := range machines {
		fmt.Fprintf(&b, "\n## Machine `%s`\n\n", m.ID)
		fmt.Fprintf(&b, "%s\n\n", m.Fingerprint.String())
		fmt.Fprintf(&b, "| case | commit | reps | median ns/op | median CI | alloc/op | vs prev | trend (≤%d commits) |\n", opts.LastN)
		b.WriteString("|---|---|---:|---:|---|---:|---:|---|\n")
		for _, r := range m.Rows {
			fmt.Fprintf(&b, "| `%s` | `%s` | %d | %.1f | %s | %s | %s | %s |\n",
				r.Case, shortCommit(r.Commit), r.Reps, r.Median, r.ciCell(), r.allocCell(), r.deltaCell(), r.TrendText)
		}
	}
	return b.String(), nil
}

// HTMLReport renders the same data model as MarkdownReport into a
// self-contained HTML page (no external assets), byte-stable for a fixed
// store.
func HTMLReport(s *Store, opts ReportOptions) (string, error) {
	opts = opts.normalized()
	machines, err := buildReport(s, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>zac-benchsuite report</title>\n")
	b.WriteString("<style>\nbody{font-family:sans-serif;margin:2em}\ntable{border-collapse:collapse}\nth,td{border:1px solid #ccc;padding:4px 8px;text-align:left}\ntd.num{text-align:right}\ntd.worse{color:#b00}\ntd.better{color:#070}\ncode{background:#f4f4f4;padding:1px 3px}\n</style>\n</head>\n<body>\n<h1>zac-benchsuite report</h1>\n")
	if len(machines) == 0 {
		b.WriteString("<p><em>No records in store.</em></p>\n</body>\n</html>\n")
		return b.String(), nil
	}
	for _, m := range machines {
		fmt.Fprintf(&b, "<h2>Machine <code>%s</code></h2>\n", html.EscapeString(m.ID))
		fmt.Fprintf(&b, "<p>%s</p>\n", html.EscapeString(m.Fingerprint.String()))
		fmt.Fprintf(&b, "<table>\n<tr><th>case</th><th>commit</th><th>reps</th><th>median ns/op</th><th>median CI</th><th>alloc/op</th><th>vs prev</th><th>trend (≤%d commits)</th></tr>\n", opts.LastN)
		for _, r := range m.Rows {
			deltaClass := "num"
			if r.HasPrev && r.DeltaPct > 0 {
				deltaClass = "num worse"
			} else if r.HasPrev && r.DeltaPct < 0 {
				deltaClass = "num better"
			}
			fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td><code>%s</code></td><td class=\"num\">%d</td><td class=\"num\">%.1f</td><td>%s</td><td class=\"num\">%s</td><td class=\"%s\">%s</td><td>%s</td></tr>\n",
				html.EscapeString(r.Case), html.EscapeString(shortCommit(r.Commit)), r.Reps, r.Median,
				html.EscapeString(r.ciCell()), html.EscapeString(r.allocCell()), deltaClass, html.EscapeString(r.deltaCell()), html.EscapeString(r.TrendText))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return b.String(), nil
}
