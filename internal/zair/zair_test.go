package zair

import (
	"encoding/json"
	"math"
	"testing"

	"zac/internal/geom"
)

func sampleProgram() *Program {
	return &Program{
		Name:      "bv_n2",
		NumQubits: 2,
		Instructions: []Instruction{
			Init{Locs: []QLoc{{0, 0, 99, 1}, {1, 0, 99, 13}}},
			RearrangeJob{
				AODID:     0,
				BeginLocs: [][]QLoc{{{0, 0, 99, 1}, {1, 0, 99, 13}}},
				EndLocs:   [][]QLoc{{{0, 1, 0, 0}, {1, 2, 0, 0}}},
				Insts: []MachineInst{
					Activate{RowID: []int{0}, RowY: []float64{297}, ColID: []int{0, 1}, ColX: []float64{3, 39}},
					Move{RowID: []int{0}, RowYBegin: []float64{297}, RowYEnd: []float64{307},
						ColID: []int{0, 1}, ColXBegin: []float64{3, 39}, ColXEnd: []float64{35, 37}},
					Deactivate{RowID: []int{0}, ColID: []int{0, 1}},
				},
				BeginTime: 8.75,
				EndTime:   149.16,
			},
			Rydberg{ZoneID: 0, BeginTime: 149.16, EndTime: 149.52},
			OneQGate{Unitary: [3]float64{math.Pi / 2, 0, math.Pi}, Locs: []QLoc{{0, 1, 0, 0}},
				BeginTime: 149.52, EndTime: 201.52},
		},
	}
}

func TestValidate(t *testing.T) {
	p := sampleProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	empty := &Program{NumQubits: 1}
	if empty.Validate() == nil {
		t.Error("empty program accepted")
	}

	noInit := &Program{NumQubits: 1, Instructions: []Instruction{Rydberg{}}}
	if noInit.Validate() == nil {
		t.Error("missing init accepted")
	}

	partial := &Program{NumQubits: 3, Instructions: []Instruction{
		Init{Locs: []QLoc{{0, 0, 0, 0}}},
	}}
	if partial.Validate() == nil {
		t.Error("partial init accepted")
	}

	dup := &Program{NumQubits: 1, Instructions: []Instruction{
		Init{Locs: []QLoc{{0, 0, 0, 0}, {0, 0, 0, 1}}},
	}}
	if dup.Validate() == nil {
		t.Error("duplicate init accepted")
	}

	badTime := sampleProgram()
	badTime.Instructions[2] = Rydberg{BeginTime: 10, EndTime: 5}
	if badTime.Validate() == nil {
		t.Error("negative duration accepted")
	}

	shapeMismatch := sampleProgram()
	j := shapeMismatch.Instructions[1].(RearrangeJob)
	j.EndLocs = [][]QLoc{{{0, 1, 0, 0}}}
	shapeMismatch.Instructions[1] = j
	if shapeMismatch.Validate() == nil {
		t.Error("begin/end shape mismatch accepted")
	}
}

func TestDuration(t *testing.T) {
	p := sampleProgram()
	if d := p.Duration(); math.Abs(d-201.52) > 1e-9 {
		t.Errorf("Duration = %v", d)
	}
}

func TestCountStats(t *testing.T) {
	p := sampleProgram()
	s := p.CountStats()
	if s.Init != 1 || s.OneQGate != 1 || s.Rydberg != 1 || s.RearrangeJobs != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.MovedQubits != 2 {
		t.Errorf("moved = %d", s.MovedQubits)
	}
	// 3 trivial + 3 machine insts inside the job.
	if s.MachineInsts != 6 {
		t.Errorf("machine insts = %d", s.MachineInsts)
	}
	if p.NumZAIRInstructions() != 4 {
		t.Errorf("zair insts = %d", p.NumZAIRInstructions())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.NumQubits != p.NumQubits {
		t.Error("header lost")
	}
	if len(back.Instructions) != len(p.Instructions) {
		t.Fatalf("instruction count %d != %d", len(back.Instructions), len(p.Instructions))
	}
	job, ok := back.Instructions[1].(RearrangeJob)
	if !ok {
		t.Fatalf("instruction 1 is %T", back.Instructions[1])
	}
	if job.AODID != 0 || len(job.Insts) != 3 || job.EndTime != 149.16 {
		t.Errorf("job lost content: %+v", job)
	}
	if _, ok := job.Insts[1].(Move); !ok {
		t.Errorf("machine inst 1 is %T", job.Insts[1])
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-marshal must be stable.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("marshal not stable across round trip")
	}
}

func TestQLocJSONIsArray(t *testing.T) {
	data, err := json.Marshal(QLoc{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[3,1,0,2]" {
		t.Errorf("QLoc json = %s", data)
	}
	var l QLoc
	if err := json.Unmarshal([]byte("[0,0,99,13]"), &l); err != nil {
		t.Fatal(err)
	}
	if l != (QLoc{0, 0, 99, 13}) {
		t.Errorf("QLoc = %+v", l)
	}
}

func TestBuildJobMatchesPaperExample(t *testing.T) {
	// Paper Fig. 19: q0 and q13 move from storage row 99 (y=297) to the
	// entanglement zone (y=307); the whole job spans ≈140.4µs:
	// 15 (pickup) + ~110.4 (move of the longest distance √(32²+10²)) + 15.
	moves := []MoveSpec{
		{Qubit: 0, Begin: QLoc{0, 0, 99, 1}, End: QLoc{0, 1, 0, 0},
			From: geom.Point{X: 3, Y: 297}, To: geom.Point{X: 35, Y: 307}},
		{Qubit: 13, Begin: QLoc{13, 0, 99, 13}, End: QLoc{13, 2, 0, 0},
			From: geom.Point{X: 39, Y: 297}, To: geom.Point{X: 37, Y: 307}},
	}
	job, timing := BuildJob(0, moves, 15, geom.MoveTime)
	if got := timing.Total(); math.Abs(got-140.41) > 1.0 {
		t.Errorf("job duration = %.2f, want ≈140.4", got)
	}
	if job.NumMoved() != 2 {
		t.Errorf("moved = %d", job.NumMoved())
	}
	if len(job.Insts) != 3 {
		t.Fatalf("machine insts = %d, want activate+move+deactivate", len(job.Insts))
	}
	if _, ok := job.Insts[0].(Activate); !ok {
		t.Error("first inst not activate")
	}
	if TransfersPerJob(job) != 4 {
		t.Errorf("transfers = %d", TransfersPerJob(job))
	}
	// Single row pickup: one BeginLocs row with both qubits.
	if len(job.BeginLocs) != 1 || len(job.BeginLocs[0]) != 2 {
		t.Errorf("begin locs shape: %v", job.BeginLocs)
	}
}

func TestBuildJobMultiRowPickup(t *testing.T) {
	moves := []MoveSpec{
		{Qubit: 0, From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 10, Y: 50}},
		{Qubit: 1, From: geom.Point{X: 3, Y: 3}, To: geom.Point{X: 13, Y: 53}},
		{Qubit: 2, From: geom.Point{X: 6, Y: 3}, To: geom.Point{X: 16, Y: 53}},
	}
	job, timing := BuildJob(0, moves, 15, geom.MoveTime)
	// Two distinct begin rows → two activates → pickup 2·15µs + parking.
	if timing.PickupDur < 30 {
		t.Errorf("pickup %v < 30", timing.PickupDur)
	}
	if len(job.BeginLocs) != 2 {
		t.Errorf("rows = %d", len(job.BeginLocs))
	}
	acts := 0
	for _, mi := range job.Insts {
		if _, ok := mi.(Activate); ok {
			acts++
		}
	}
	if acts != 2 {
		t.Errorf("activates = %d", acts)
	}
	if TransfersPerJob(job) != 6 {
		t.Errorf("transfers = %d", TransfersPerJob(job))
	}
}

func TestBuildJobEmpty(t *testing.T) {
	job, timing := BuildJob(1, nil, 15, geom.MoveTime)
	if timing.Total() != 0 || job.NumMoved() != 0 {
		t.Error("empty job should be zero")
	}
}
