package benchsuite

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zac/internal/benchsuite/stats"
)

// Store is the persistent, append-only results store: one JSON-lines file
// per machine fingerprint under a directory ("<dir>/<machine-id>.jsonl").
// Appends are O(1) file appends; every read re-scans, which at benchmark
// cadence (tens of records per commit) stays trivially cheap and keeps the
// format greppable and diff-merge friendly.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("benchsuite: empty store dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("benchsuite: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// shard returns the JSONL path holding one machine's records.
func (s *Store) shard(machineID string) string {
	return filepath.Join(s.dir, machineID+".jsonl")
}

// Append appends records to their machines' shards, preserving argument
// order within each shard. Records never overwrite existing lines — the
// store is strictly append-only.
func (s *Store) Append(records []Record) error {
	byMachine := map[string][]Record{}
	var order []string
	for _, r := range records {
		if r.MachineID == "" {
			return fmt.Errorf("benchsuite: record %q has no machine id", r.Case)
		}
		if _, seen := byMachine[r.MachineID]; !seen {
			order = append(order, r.MachineID)
		}
		byMachine[r.MachineID] = append(byMachine[r.MachineID], r)
	}
	for _, id := range order {
		f, err := os.OpenFile(s.shard(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("benchsuite: append: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, r := range byMachine[id] {
			line, err := json.Marshal(r)
			if err != nil {
				f.Close()
				return fmt.Errorf("benchsuite: encode record %q: %w", r.Case, err)
			}
			w.Write(line)
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("benchsuite: append: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("benchsuite: append: %w", err)
		}
	}
	return nil
}

// Machines lists the machine ids with at least one record, sorted.
func (s *Store) Machines() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("benchsuite: list machines: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".jsonl"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Records reads every record of one machine in append order. An unknown
// machine yields an empty slice, not an error; lines with a newer schema
// than this binary understands are skipped.
func (s *Store) Records(machineID string) ([]Record, error) {
	f, err := os.Open(s.shard(machineID))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchsuite: read records: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("benchsuite: %s:%d: corrupt record: %w", s.shard(machineID), lineNo, err)
		}
		if r.Schema > SchemaVersion {
			continue
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchsuite: read records: %w", err)
	}
	return out, nil
}

// TrendPoint is one commit's aggregated view of a case on one machine:
// every sample measured for that (case, commit) merged into one summary.
type TrendPoint struct {
	Commit  string
	Time    int64 // earliest record time of the commit, unix seconds
	Summary stats.Summary
	// Samples is the merged ns/op vector behind Summary.
	Samples []float64
	// BSamples and AllocSamples are the merged B/op and allocs/op vectors
	// (empty when the commit's records predate schema 2 and carry none).
	BSamples     []float64
	AllocSamples []float64
}

// Trend returns the per-commit trajectory of one case on one machine, in
// first-appended order of commits, keeping the most recent n commits
// (n <= 0 keeps all). Samples from several runs at one commit merge into
// one point — repetitions accumulate rather than shadow each other.
func (s *Store) Trend(machineID, caseName string, n int) ([]TrendPoint, error) {
	records, err := s.Records(machineID)
	if err != nil {
		return nil, err
	}
	var order []string
	points := map[string]*TrendPoint{}
	for _, r := range records {
		if r.Case != caseName {
			continue
		}
		p, ok := points[r.Commit]
		if !ok {
			p = &TrendPoint{Commit: r.Commit, Time: r.UnixTime}
			points[r.Commit] = p
			order = append(order, r.Commit)
		}
		if r.UnixTime < p.Time {
			p.Time = r.UnixTime
		}
		p.Samples = append(p.Samples, r.NsPerOp...)
		p.BSamples = append(p.BSamples, r.BPerOp...)
		p.AllocSamples = append(p.AllocSamples, r.AllocsPerOp...)
	}
	out := make([]TrendPoint, 0, len(order))
	for _, c := range order {
		p := points[c]
		p.Summary = stats.Summarize(p.Samples)
		out = append(out, *p)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

// Cases lists the distinct case names recorded for one machine, sorted.
func (s *Store) Cases(machineID string) ([]string, error) {
	records, err := s.Records(machineID)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range records {
		if !seen[r.Case] {
			seen[r.Case] = true
			names = append(names, r.Case)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Commits lists the distinct commits recorded for one machine in
// first-appended order (oldest first).
func (s *Store) Commits(machineID string) ([]string, error) {
	records, err := s.Records(machineID)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var commits []string
	for _, r := range records {
		if !seen[r.Commit] {
			seen[r.Commit] = true
			commits = append(commits, r.Commit)
		}
	}
	return commits, nil
}

// AtCommit returns one machine's records for a commit, in append order.
// Two special names resolve against the machine's commit history: "latest"
// is the most recently appended commit, "previous" the one before it (how
// the bench-regress gate names "the commit the last observatory run
// measured").
func (s *Store) AtCommit(machineID, commit string) ([]Record, error) {
	if commit == "latest" || commit == "previous" {
		commits, err := s.Commits(machineID)
		if err != nil {
			return nil, err
		}
		back := 1
		if commit == "previous" {
			back = 2
		}
		if len(commits) < back {
			return nil, nil
		}
		commit = commits[len(commits)-back]
	}
	records, err := s.Records(machineID)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, r := range records {
		if r.Commit == commit {
			out = append(out, r)
		}
	}
	return out, nil
}

// ExportBenchJSON renders one machine's latest-commit medians in the
// BENCH_N.json format the bench-compare/bench-regress scripts exchange —
// the committed snapshot becomes one export of the store instead of the
// primary artifact. Only micro cases are exported (the script gate runs
// the micro pattern), mapped back to their go-test benchmark names.
func (s *Store) ExportBenchJSON(machineID, commit string) ([]byte, error) {
	records, err := s.AtCommit(machineID, commit)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("benchsuite: no records for machine %s at commit %q", machineID, commit)
	}
	names := map[string]string{
		"micro/jv_dense":            "BenchmarkJVDense",
		"micro/jv_sparse":           "BenchmarkJVSparse",
		"micro/sa_initial":          "BenchmarkSAInitial",
		"micro/buildplan/qft_n18":   "BenchmarkBuildPlan/qft_n18",
		"micro/buildplan/ising_n42": "BenchmarkBuildPlan/ising_n42",

		"micro/buildplan_sched/qft_n18/gmp1":   "BenchmarkBuildPlanSched/qft_n18/gmp1",
		"micro/buildplan_sched/qft_n18/gmp8":   "BenchmarkBuildPlanSched/qft_n18/gmp8",
		"micro/buildplan_sched/ising_n42/gmp1": "BenchmarkBuildPlanSched/ising_n42/gmp1",
		"micro/buildplan_sched/ising_n42/gmp8": "BenchmarkBuildPlanSched/ising_n42/gmp8",
	}
	type entry struct {
		name      string
		ns        float64
		b, allocs float64
		hasAlloc  bool
	}
	var entries []entry
	commitSHA := records[0].Commit
	for _, r := range records {
		goName, ok := names[r.Case]
		if !ok {
			continue
		}
		e := entry{name: goName, ns: stats.Median(r.NsPerOp)}
		// Schema-1 records carry no allocation vectors; they export as null,
		// exactly what a pre-observatory BENCH_N.json held.
		if len(r.BPerOp) > 0 {
			e.b, e.allocs, e.hasAlloc = stats.Median(r.BPerOp), stats.Median(r.AllocsPerOp), true
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("benchsuite: no micro records for machine %s at commit %q", machineID, commit)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "{\n")
	fmt.Fprintf(&b, "  \"baseline_ref\": \"benchsuite-store\",\n")
	fmt.Fprintf(&b, "  \"baseline_sha\": %q,\n", commitSHA)
	fmt.Fprintf(&b, "  \"benchtime\": \"store\",\n")
	fmt.Fprintf(&b, "  \"current\": {")
	for i, e := range entries {
		if i > 0 {
			b.WriteString(",")
		}
		bOp, allocsOp := "null", "null"
		if e.hasAlloc {
			bOp, allocsOp = fmt.Sprintf("%g", e.b), fmt.Sprintf("%g", e.allocs)
		}
		fmt.Fprintf(&b, "\n    %q: {\"ns_op\": %g, \"b_op\": %s, \"allocs_op\": %s}", e.name, e.ns, bOp, allocsOp)
	}
	fmt.Fprintf(&b, "\n  }\n}\n")
	return []byte(b.String()), nil
}
