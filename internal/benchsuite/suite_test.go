package benchsuite

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The runner end to end over the fast kernel cases: record identity,
// sample counts, commit/fingerprint stamping, and the handicap multiplier.
func TestRunKernelCases(t *testing.T) {
	cases := Micro()[:2] // jv_dense, jv_sparse — microsecond kernels
	now := time.Unix(12345, 0)
	records, err := Run(context.Background(), cases, RunConfig{
		Reps: 3, Warmup: 1, Commit: "deadbeef", Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(cases) {
		t.Fatalf("records = %d, want %d", len(records), len(cases))
	}
	fp := Machine()
	for i, r := range records {
		if r.Case != cases[i].Name {
			t.Errorf("record %d is %s, want %s (engine must assemble by index)", i, r.Case, cases[i].Name)
		}
		if len(r.NsPerOp) != 3 {
			t.Errorf("%s: %d samples, want 3", r.Case, len(r.NsPerOp))
		}
		for _, ns := range r.NsPerOp {
			if ns <= 0 {
				t.Errorf("%s: non-positive sample %v", r.Case, ns)
			}
		}
		if r.Commit != "deadbeef" || r.UnixTime != 12345 {
			t.Errorf("%s: stamp = %s@%d", r.Case, r.Commit, r.UnixTime)
		}
		if r.MachineID != fp.ID() || r.Machine != fp {
			t.Errorf("%s: fingerprint not stamped", r.Case)
		}
		if r.Schema != SchemaVersion || r.InnerIters != cases[i].InnerIters {
			t.Errorf("%s: schema/inner = %d/%d", r.Case, r.Schema, r.InnerIters)
		}
		// Allocation vectors ride along with every wall-clock sample. The JV
		// kernels allocate (result slices), so the per-op medians are
		// positive, not merely present.
		if len(r.BPerOp) != 3 || len(r.AllocsPerOp) != 3 {
			t.Errorf("%s: alloc vectors = %d/%d samples, want 3/3", r.Case, len(r.BPerOp), len(r.AllocsPerOp))
		}
		for i := range r.BPerOp {
			if r.BPerOp[i] < 0 || r.AllocsPerOp[i] < 0 {
				t.Errorf("%s: negative alloc sample %v / %v", r.Case, r.BPerOp[i], r.AllocsPerOp[i])
			}
		}
	}

	// The handicap multiplier scales recorded samples (the gate
	// self-test hook); 1000× dwarfs scheduler noise, so even with live
	// timing the handicapped medians must dominate.
	slow, err := Run(context.Background(), cases[:1], RunConfig{
		Reps: 3, Warmup: 1, Commit: "deadbeef", Handicap: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxPlain, minSlow float64
	for _, ns := range records[0].NsPerOp {
		if ns > maxPlain {
			maxPlain = ns
		}
	}
	minSlow = slow[0].NsPerOp[0]
	for _, ns := range slow[0].NsPerOp {
		if ns < minSlow {
			minSlow = ns
		}
	}
	if minSlow < maxPlain*10 {
		t.Errorf("handicap 1000 barely visible: plain max %v, handicapped min %v", maxPlain, minSlow)
	}
}

// The compile matrix expands (specs × compilers × archs) with canonical
// names, and monolithic compilers skip forced-architecture cells.
func TestCompileMatrixExpansion(t *testing.T) {
	cases, err := Compile([]string{"rb:n=8,depth=4"}, []string{"zac"}, []string{"default", "triple"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("zac × {default,triple} = %d cases, want 2: %+v", len(cases), names(cases))
	}
	for _, c := range cases {
		if !strings.Contains(c.Name, "rb:n=8,depth=4,seed=1") {
			t.Errorf("case name %q lacks canonical spec", c.Name)
		}
		if c.ArchFP == "" {
			t.Errorf("case %q has no arch fingerprint", c.Name)
		}
	}
	// Baselines pin their own target: the forced-arch cell collapses.
	enola, err := Compile([]string{"rb:n=8,depth=4"}, []string{"enola"}, []string{"default", "triple"})
	if err != nil {
		t.Fatal(err)
	}
	if len(enola) != 1 || !strings.Contains(enola[0].Name, "/default/") {
		t.Fatalf("enola forced-arch cells = %v, want only default", names(enola))
	}

	if _, err := Compile([]string{"rb:n=8"}, []string{"zac"}, []string{"marsrover"}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := Compile([]string{"nope:n=8"}, []string{"zac"}, nil); err == nil {
		t.Error("unknown workload family accepted")
	}
	if _, err := Compile([]string{"rb:n=8"}, []string{"not-a-compiler"}, nil); err == nil {
		t.Error("unknown compiler accepted")
	}
}

func names(cases []Case) []string {
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.Name
	}
	return out
}

// A Procs-pinning cell runs under the pinned GOMAXPROCS (stamped into the
// record, ambient value restored afterwards), and a parallel matrix
// containing such a cell is refused up front.
func TestRunProcsPinning(t *testing.T) {
	ambient := runtime.GOMAXPROCS(0)
	seen := 0
	cases := []Case{{
		Name: "micro/test/gmp2", Kind: KindMicro, InnerIters: 1, Procs: 2,
		setup: func() (func(context.Context) error, error) {
			return func(context.Context) error {
				seen = runtime.GOMAXPROCS(0)
				return nil
			}, nil
		},
	}}
	records, err := Run(context.Background(), cases, RunConfig{Reps: 2, Commit: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("op ran under GOMAXPROCS %d, want 2", seen)
	}
	if records[0].Procs != 2 {
		t.Errorf("record Procs = %d, want 2", records[0].Procs)
	}
	if got := runtime.GOMAXPROCS(0); got != ambient {
		t.Errorf("GOMAXPROCS not restored: %d, want %d", got, ambient)
	}

	if _, err := Run(context.Background(), cases, RunConfig{Reps: 1, Workers: 2, Commit: "c"}); err == nil {
		t.Error("parallel matrix with a Procs-pinning cell accepted")
	}
}

// One real compile cell through the runner: the smoke matrix's smallest
// spec through ZAC, sampled twice — the primary compile record followed by
// one pass record per pipeline pass, each with a full sample vector, so a
// gate regression can name the pass that caused it.
func TestRunCompileCase(t *testing.T) {
	if testing.Short() {
		t.Skip("compilation case in -short mode")
	}
	cases, err := Compile([]string{"rb:n=8,depth=4,seed=1"}, []string{"zac"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	records, err := Run(context.Background(), cases, RunConfig{Reps: 2, Warmup: 1, Commit: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 || records[0].Kind != KindCompile || len(records[0].NsPerOp) != 2 {
		t.Fatalf("compile record = %+v", records)
	}
	wantPasses := []string{"validate", "place", "schedule", "emit", "fidelity"}
	if len(records) != 1+len(wantPasses) {
		t.Fatalf("got %d records, want compile + %d pass records: %+v", len(records), len(wantPasses), names2(records))
	}
	for i, pass := range wantPasses {
		r := records[1+i]
		want := records[0].Case + "/pass/" + pass
		if r.Case != want || r.Kind != KindPass {
			t.Errorf("pass record %d = %s (%s), want %s (%s)", i, r.Case, r.Kind, want, KindPass)
		}
		if len(r.NsPerOp) != 2 {
			t.Errorf("%s: %d samples, want 2", r.Case, len(r.NsPerOp))
		}
		if len(r.BPerOp) != 0 {
			t.Errorf("%s: pass records must not carry allocation vectors", r.Case)
		}
	}
}

func names2(records []Record) []string {
	out := make([]string, len(records))
	for i, r := range records {
		out[i] = r.Case
	}
	return out
}

// The full micro matrix names stay pinned — the export mapping and the
// bench-regress gate key on them.
func TestMicroCaseNames(t *testing.T) {
	want := []string{
		"micro/jv_dense", "micro/jv_sparse", "micro/sa_initial",
		"micro/buildplan/qft_n18", "micro/buildplan/ising_n42",
		"micro/buildplan_sched/qft_n18/gmp1", "micro/buildplan_sched/qft_n18/gmp8",
		"micro/buildplan_sched/ising_n42/gmp1", "micro/buildplan_sched/ising_n42/gmp8",
	}
	got := names(Micro())
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Micro() = %v, want %v", got, want)
	}
	if sm, err := SmokeMatrix(); err != nil || len(sm) != 4 {
		t.Errorf("SmokeMatrix = %v, %v (want 4 cases)", names(sm), err)
	}
}
