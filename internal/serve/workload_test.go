package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"zac/internal/compiler"
	"zac/internal/resynth"
	"zac/internal/workload"
)

// TestCompileWorkloadSpec exercises the "workload" request field: the spec
// is generated and compiled, the response carries the canonical spec as the
// program name, and an identically-specified (but differently spelled)
// request hits the cache.
func TestCompileWorkloadSpec(t *testing.T) {
	s, ts := newTestServer(t, Options{Parallel: 2})
	code, body := do(t, "POST", ts.URL+"/v1/compile?zair=0",
		`{"workload": "rb:n=6,depth=3,seed=7"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var res CompileResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "rb:n=6,depth=3,seed=7" {
		t.Fatalf("name = %q, want the canonical spec", res.Name)
	}
	if res.NumQubits != 6 || res.Cached {
		t.Fatalf("resp = %+v", res)
	}

	// Same workload, different spelling (reordered params, spec: prefix) —
	// canonicalization makes it the same cache key.
	code, body = do(t, "POST", ts.URL+"/v1/compile?zair=0",
		`{"workload": "spec:rb:depth=3,seed=7,n=6"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatalf("identical spec missed the cache: %+v", res)
	}
	if st := s.CacheStats(); st.MemHits == 0 {
		t.Fatalf("cache stats report no memory hit: %+v", st)
	}
}

// TestCompileWorkloadErrors pins the validation paths: bad specs are 400s,
// and workload is mutually exclusive with circuit/qasm.
func TestCompileWorkloadErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Parallel: 1})
	cases := map[string]string{
		"unknown family": `{"workload": "frobnicate:n=4"}`,
		"bad param":      `{"workload": "rb:n=0"}`,
		"with circuit":   `{"workload": "rb", "circuit": "ghz_n23"}`,
		"with qasm":      `{"workload": "rb", "qasm": "qreg q[1];"}`,
		// A ~50-byte body must not be able to request an effectively
		// unbounded circuit: size-like params carry finite Max bounds, and
		// in-range products are stopped by the per-family gate budget
		// (inside the compile semaphore, before any allocation).
		"oversized":         `{"workload": "shuffle:n=2000000000,depth=1000000"}`,
		"oversized product": `{"workload": "rb:n=2048,depth=2048"}`,
	}
	for name, body := range cases {
		code, resp := do(t, "POST", ts.URL+"/v1/compile", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, resp)
		}
	}
}

// TestCompileWorkloadZAIRMatchesCLI checks the emitted ZAIR for a workload
// spec is byte-identical to the zac CLI path (same compiler, same unsplit
// staging).
func TestCompileWorkloadZAIRMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Options{Parallel: 1})
	code, body := do(t, "POST", ts.URL+"/v1/compile?format=zair",
		`{"workload": "shuffle:n=6,depth=2,seed=3"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	cli, err := cliZAIR("shuffle:n=6,depth=2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(cli) {
		t.Fatal("service ZAIR differs from the CLI encoding for the same spec")
	}
}

// cliZAIR reproduces the `zac -circuit spec:… -out` path in-process: unsplit
// staging through the registry's zac compiler, MarshalIndent encoding.
func cliZAIR(spec string) ([]byte, error) {
	c, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	staged, err := resynth.Preprocess(c)
	if err != nil {
		return nil, err
	}
	comp, err := compiler.Get("zac")
	if err != nil {
		return nil, err
	}
	res, err := comp.Compile(context.Background(), staged, compiler.TargetArch(comp), compiler.Options{})
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res.Program, "", " ")
}
