// Package zair implements ZAIR, the paper's intermediate representation for
// zoned architectures (§IX, Fig. 17): init, 1qGate, rydberg, and
// rearrangeJob instructions, plus the machine-level activate/move/deactivate
// instructions inside each rearrangement job, with the JSON encoding of the
// paper's artifact (Fig. 19).
package zair

import (
	"encoding/json"
	"fmt"

	"zac/internal/geom"
)

// QLoc locates qubit Q at row R, column C of SLM array A (a 4-tuple
// (q, a, r, c), paper §IX).
type QLoc struct {
	Q, A, R, C int
}

// MarshalJSON encodes a QLoc as the artifact's 4-element array.
func (l QLoc) MarshalJSON() ([]byte, error) {
	return json.Marshal([4]int{l.Q, l.A, l.R, l.C})
}

// UnmarshalJSON decodes the 4-element array form.
func (l *QLoc) UnmarshalJSON(data []byte) error {
	var arr [4]int
	if err := json.Unmarshal(data, &arr); err != nil {
		return err
	}
	l.Q, l.A, l.R, l.C = arr[0], arr[1], arr[2], arr[3]
	return nil
}

// Instruction is a ZAIR instruction: Init, OneQGate, Rydberg or RearrangeJob.
type Instruction interface {
	// Type returns the artifact's type tag.
	Type() string
}

// Init declares the initial location of every qubit; it appears exactly once
// at the beginning of a program.
type Init struct {
	Locs []QLoc `json:"init_locs"`
}

// Type implements Instruction.
func (Init) Type() string { return "init" }

// OneQGate applies the U3 unitary (θ,φ,λ) to each listed qubit location.
// Gates in one instruction form one 1Q stage; the paper's conservative
// timing model executes them sequentially (§VII-B).
type OneQGate struct {
	Unitary   [3]float64 `json:"unitary"`
	Locs      []QLoc     `json:"locs"`
	BeginTime float64    `json:"begin_time"`
	EndTime   float64    `json:"end_time"`
}

// Type implements Instruction.
func (OneQGate) Type() string { return "1qGate" }

// Rydberg turns on the Rydberg laser over entanglement zone ZoneID,
// executing one Rydberg stage: every pair of qubits sharing a Rydberg site
// undergoes a CZ.
type Rydberg struct {
	ZoneID    int     `json:"zone_id"`
	BeginTime float64 `json:"begin_time"`
	EndTime   float64 `json:"end_time"`
}

// Type implements Instruction.
func (Rydberg) Type() string { return "rydberg" }

// MachineInst is a machine-level AOD instruction inside a rearrangement job.
type MachineInst interface {
	MachineType() string
}

// Activate turns on AOD rows at RowY and columns at ColX, picking up the
// atoms at the intersections that coincide with occupied SLM traps.
type Activate struct {
	RowID []int     `json:"row_id"`
	RowY  []float64 `json:"row_y"`
	ColID []int     `json:"col_id"`
	ColX  []float64 `json:"col_x"`
}

// MachineType implements MachineInst.
func (Activate) MachineType() string { return "activate" }

// Deactivate turns off AOD rows and columns, dropping atoms into the SLM
// traps beneath them.
type Deactivate struct {
	RowID []int `json:"row_id"`
	ColID []int `json:"col_id"`
}

// MachineType implements MachineInst.
func (Deactivate) MachineType() string { return "deactivate" }

// Move continuously sweeps the active rows from RowYBegin to RowYEnd and
// columns from ColXBegin to ColXEnd.
type Move struct {
	RowID     []int     `json:"row_id"`
	RowYBegin []float64 `json:"row_y_begin"`
	RowYEnd   []float64 `json:"row_y_end"`
	ColID     []int     `json:"col_id"`
	ColXBegin []float64 `json:"col_x_begin"`
	ColXEnd   []float64 `json:"col_x_end"`
}

// MachineType implements MachineInst.
func (Move) MachineType() string { return "move" }

// RearrangeJob moves a set of qubits with one AOD: pick them up at
// BeginLocs, move them, and drop them at EndLocs. BeginLocs/EndLocs are
// grouped per AOD row (paper §IX). A job occupies its AOD for the whole
// [BeginTime, EndTime] span, which is what makes multi-AOD load balancing
// natural (§VI).
type RearrangeJob struct {
	AODID     int           `json:"aod_id"`
	BeginLocs [][]QLoc      `json:"begin_locs"`
	EndLocs   [][]QLoc      `json:"end_locs"`
	Insts     []MachineInst `json:"insts"`
	BeginTime float64       `json:"begin_time"`
	EndTime   float64       `json:"end_time"`
}

// Type implements Instruction.
func (RearrangeJob) Type() string { return "rearrangeJob" }

// Qubits returns the qubits moved by the job.
func (j RearrangeJob) Qubits() []int {
	var qs []int
	for _, row := range j.BeginLocs {
		for _, l := range row {
			qs = append(qs, l.Q)
		}
	}
	return qs
}

// NumMoved counts moved qubits.
func (j RearrangeJob) NumMoved() int {
	n := 0
	for _, row := range j.BeginLocs {
		n += len(row)
	}
	return n
}

// Program is a complete ZAIR program.
type Program struct {
	Name         string
	NumQubits    int
	Instructions []Instruction
}

// Duration returns the end time of the last timed instruction.
func (p *Program) Duration() float64 {
	end := 0.0
	for _, in := range p.Instructions {
		switch v := in.(type) {
		case OneQGate:
			if v.EndTime > end {
				end = v.EndTime
			}
		case Rydberg:
			if v.EndTime > end {
				end = v.EndTime
			}
		case RearrangeJob:
			if v.EndTime > end {
				end = v.EndTime
			}
		}
	}
	return end
}

// Stats summarizes instruction counts (the §IX ZAIR-density metrics).
type Stats struct {
	Init, OneQGate, Rydberg, RearrangeJobs int
	MachineInsts                           int
	MovedQubits                            int
}

// CountStats tallies instruction statistics for the program.
func (p *Program) CountStats() Stats {
	var s Stats
	for _, in := range p.Instructions {
		switch v := in.(type) {
		case Init:
			s.Init++
			s.MachineInsts++
		case OneQGate:
			s.OneQGate++
			s.MachineInsts++
		case Rydberg:
			s.Rydberg++
			s.MachineInsts++
		case RearrangeJob:
			s.RearrangeJobs++
			s.MachineInsts += len(v.Insts)
			s.MovedQubits += v.NumMoved()
		}
	}
	return s
}

// NumZAIRInstructions counts top-level ZAIR instructions.
func (p *Program) NumZAIRInstructions() int { return len(p.Instructions) }

// Validate performs structural checks: exactly one leading Init covering
// every qubit, timed instructions with EndTime ≥ BeginTime, and rearrange
// jobs whose begin/end shapes match.
func (p *Program) Validate() error {
	if len(p.Instructions) == 0 {
		return fmt.Errorf("zair: empty program")
	}
	init, ok := p.Instructions[0].(Init)
	if !ok {
		return fmt.Errorf("zair: first instruction must be init, got %s", p.Instructions[0].Type())
	}
	seen := map[int]bool{}
	for _, l := range init.Locs {
		if l.Q < 0 || l.Q >= p.NumQubits {
			return fmt.Errorf("zair: init qubit %d out of range", l.Q)
		}
		if seen[l.Q] {
			return fmt.Errorf("zair: init lists qubit %d twice", l.Q)
		}
		seen[l.Q] = true
	}
	if len(seen) != p.NumQubits {
		return fmt.Errorf("zair: init covers %d of %d qubits", len(seen), p.NumQubits)
	}
	for i, in := range p.Instructions[1:] {
		switch v := in.(type) {
		case Init:
			return fmt.Errorf("zair: instruction %d: second init", i+1)
		case OneQGate:
			if v.EndTime < v.BeginTime {
				return fmt.Errorf("zair: instruction %d: negative duration", i+1)
			}
		case Rydberg:
			if v.EndTime < v.BeginTime {
				return fmt.Errorf("zair: instruction %d: negative duration", i+1)
			}
		case RearrangeJob:
			if v.EndTime < v.BeginTime {
				return fmt.Errorf("zair: instruction %d: negative duration", i+1)
			}
			if len(v.BeginLocs) != len(v.EndLocs) {
				return fmt.Errorf("zair: instruction %d: begin/end row count mismatch", i+1)
			}
			for r := range v.BeginLocs {
				if len(v.BeginLocs[r]) != len(v.EndLocs[r]) {
					return fmt.Errorf("zair: instruction %d row %d: begin/end length mismatch", i+1, r)
				}
				for k := range v.BeginLocs[r] {
					if v.BeginLocs[r][k].Q != v.EndLocs[r][k].Q {
						return fmt.Errorf("zair: instruction %d row %d: qubit identity changes mid-job", i+1, r)
					}
				}
			}
		}
	}
	return nil
}

// PosResolver maps an (SLM array id, row, col) location to physical
// coordinates; the arch package's architectures implement this shape via
// adapter functions in the compiler.
type PosResolver func(slmID, row, col int) (geom.Point, error)
