package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestKindArity(t *testing.T) {
	cases := map[Kind]int{
		U3: 1, H: 1, RZ: 1, CZ: 2, CX: 2, SWAP: 2, RZZ: 2,
		CCX: 3, CCZ: 3, CSWAP: 3, Measure: 1, Barrier: 1,
	}
	for k, want := range cases {
		if got := k.NumQubits(); got != want {
			t.Errorf("%s.NumQubits() = %d, want %d", k, got, want)
		}
	}
}

func TestKindParams(t *testing.T) {
	cases := map[Kind]int{
		U3: 3, U2: 2, U1: 1, RX: 1, CP: 1, H: 0, CZ: 0, CCX: 0, RZZ: 1,
	}
	for k, want := range cases {
		if got := k.NumParams(); got != want {
			t.Errorf("%s.NumParams() = %d, want %d", k, got, want)
		}
	}
}

func TestNewGatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	NewGate(CZ, []int{1})
}

func TestNewGateParamPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on param mismatch")
		}
	}()
	NewGate(RZ, []int{0})
}

func TestValidate(t *testing.T) {
	c := New("ok", 3)
	c.Append(H, []int{0})
	c.Append(CX, []int{0, 1})
	c.Append(RZ, []int{2}, 0.5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := New("bad", 2)
	bad.Gates = append(bad.Gates, Gate{Kind: CZ, Qubits: []int{0, 5}})
	if err := bad.Validate(); err == nil {
		t.Error("expected out-of-range error")
	}

	dup := New("dup", 2)
	dup.Gates = append(dup.Gates, Gate{Kind: CZ, Qubits: []int{1, 1}})
	if err := dup.Validate(); err == nil {
		t.Error("expected duplicate-qubit error")
	}

	zero := New("zero", 0)
	if err := zero.Validate(); err == nil {
		t.Error("expected non-positive qubit count error")
	}
}

func TestCountByArity(t *testing.T) {
	c := New("c", 3)
	c.Append(H, []int{0})
	c.Append(CX, []int{0, 1})
	c.Append(CCX, []int{0, 1, 2})
	c.Append(Measure, []int{0})
	one, multi := c.CountByArity()
	if one != 1 || multi != 2 {
		t.Errorf("counts = (%d,%d), want (1,2)", one, multi)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New("c", 2)
	c.Append(RZ, []int{0}, 1.0)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	d.Gates[0].Params[0] = 9
	if c.Gates[0].Qubits[0] != 0 || c.Gates[0].Params[0] != 1.0 {
		t.Error("Clone shares backing arrays")
	}
}

func TestTwoQubitEdges(t *testing.T) {
	c := New("c", 4)
	c.Append(CX, []int{0, 1})
	c.Append(CX, []int{1, 0}) // same unordered pair
	c.Append(CZ, []int{2, 3})
	edges := c.TwoQubitEdges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v, want 2 distinct", edges)
	}
}

func TestDepth(t *testing.T) {
	c := New("c", 3)
	c.Append(H, []int{0})
	c.Append(H, []int{1}) // parallel with above
	c.Append(CX, []int{0, 1})
	c.Append(H, []int{2}) // parallel with everything
	if got := c.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
}

func TestGateString(t *testing.T) {
	g := NewGate(RZ, []int{3}, 0.5)
	if got := g.String(); got != "rz(0.5) q[3]" {
		t.Errorf("String = %q", got)
	}
	g2 := NewGate(CX, []int{0, 1})
	if !strings.Contains(g2.String(), "cx q[0],q[1]") {
		t.Errorf("String = %q", g2.String())
	}
}

func TestDependencies(t *testing.T) {
	c := New("c", 3)
	c.Append(H, []int{0})     // 0
	c.Append(CX, []int{0, 1}) // 1 deps on 0
	c.Append(H, []int{2})     // 2 no deps
	c.Append(CX, []int{1, 2}) // 3 deps on 1, 2
	deps := Dependencies(c)
	if len(deps[0]) != 0 || len(deps[2]) != 0 {
		t.Error("unexpected deps for independent gates")
	}
	if len(deps[1]) != 1 || deps[1][0] != 0 {
		t.Errorf("deps[1] = %v", deps[1])
	}
	if len(deps[3]) != 2 {
		t.Errorf("deps[3] = %v", deps[3])
	}
}

func TestDependenciesBarrier(t *testing.T) {
	c := New("c", 2)
	c.Append(H, []int{0})
	c.Gates = append(c.Gates, Gate{Kind: Barrier, Qubits: []int{0}})
	c.Append(H, []int{1}) // after barrier, depends on it
	deps := Dependencies(c)
	if len(deps[2]) != 1 || deps[2][0] != 1 {
		t.Errorf("gate after barrier should depend on it: %v", deps[2])
	}
}

func TestASAPLevels(t *testing.T) {
	c := New("c", 3)
	c.Append(H, []int{0})     // level 0
	c.Append(CX, []int{0, 1}) // level 1
	c.Append(H, []int{2})     // level 0
	c.Append(CX, []int{1, 2}) // level 2
	lv := ASAPLevels(c)
	want := []int{0, 1, 0, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestRespectsDependencies(t *testing.T) {
	c := New("c", 2)
	c.Append(H, []int{0})
	c.Append(CX, []int{0, 1})
	if !RespectsDependencies(c, []int{0, 1}) {
		t.Error("valid order rejected")
	}
	if RespectsDependencies(c, []int{1, 0}) {
		t.Error("invalid order accepted")
	}
	if RespectsDependencies(c, []int{0}) {
		t.Error("wrong length accepted")
	}
	if RespectsDependencies(c, []int{0, 0}) {
		t.Error("duplicate accepted")
	}
}

func TestStagedValidate(t *testing.T) {
	s := &Staged{
		Name: "s", NumQubits: 4,
		Stages: []Stage{
			{Kind: OneQStage, Gates: []Gate{NewGate(U3, []int{0}, 1, 2, 3)}},
			{Kind: RydbergStage, Gates: []Gate{NewGate(CZ, []int{0, 1}), NewGate(CZ, []int{2, 3})}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	one, two := s.GateCounts()
	if one != 1 || two != 2 {
		t.Errorf("counts (%d,%d)", one, two)
	}
	if s.NumRydbergStages() != 1 {
		t.Error("expected 1 Rydberg stage")
	}

	badKind := &Staged{NumQubits: 2, Stages: []Stage{{Kind: RydbergStage, Gates: []Gate{NewGate(U3, []int{0}, 0, 0, 0)}}}}
	if badKind.Validate() == nil {
		t.Error("U3 in Rydberg stage should fail")
	}
	overlap := &Staged{NumQubits: 3, Stages: []Stage{{Kind: RydbergStage, Gates: []Gate{NewGate(CZ, []int{0, 1}), NewGate(CZ, []int{1, 2})}}}}
	if overlap.Validate() == nil {
		t.Error("qubit reused within a stage should fail")
	}
}

func TestStagedFlatten(t *testing.T) {
	s := &Staged{
		Name: "s", NumQubits: 2,
		Stages: []Stage{
			{Kind: OneQStage, Gates: []Gate{NewGate(U3, []int{0}, math.Pi, 0, math.Pi)}},
			{Kind: RydbergStage, Gates: []Gate{NewGate(CZ, []int{0, 1})}},
		},
	}
	c := s.Flatten()
	if len(c.Gates) != 2 || c.Gates[1].Kind != CZ {
		t.Errorf("flatten wrong: %v", c.Gates)
	}
}

func TestStageQubits(t *testing.T) {
	st := Stage{Kind: RydbergStage, Gates: []Gate{NewGate(CZ, []int{0, 1}), NewGate(CZ, []int{4, 2})}}
	qs := st.Qubits()
	if len(qs) != 4 || qs[0] != 0 || qs[3] != 2 {
		t.Errorf("Qubits = %v", qs)
	}
}
