package place_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/schedule"
)

func stagedBench(t *testing.T, name string) *circuit.Staged {
	t.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := resynth.Preprocess(bm.Build())
	if err != nil {
		t.Fatal(err)
	}
	return staged
}

// settleGoroutines waits for the goroutine count to return to (near) its
// baseline, failing the test if parallel workers leaked past cancellation.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBuildPlanCancelParallel aborts a multi-restart, multi-worker BuildPlan
// mid-flight and checks the cancellation propagates as context.Canceled with
// every worker goroutine torn down. Run under -race this also exercises the
// concurrent teardown paths of the restart pool and the parallel JV solver.
func TestBuildPlanCancelParallel(t *testing.T) {
	a := arch.Reference()
	staged := stagedBench(t, "qft_n18")
	opts := place.Default()
	opts.SARestarts = 4
	opts.Workers = 4
	baseline := runtime.NumGoroutine()

	// Pre-cancelled: must fail before any real work.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := place.BuildPlan(pre, a, staged, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled BuildPlan: err = %v, want context.Canceled", err)
	}

	// Mid-flight: cancel concurrently at staggered delays so the abort
	// lands in different phases (SA restarts, transition solves) across
	// iterations; either outcome (finished or cancelled) is legal, but a
	// cancelled run must report context.Canceled and leak nothing.
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		_, err := place.BuildPlan(ctx, a, staged, opts)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled BuildPlan: err = %v, want context.Canceled or nil", err)
		}
		cancel()
	}
	settleGoroutines(t, baseline)
}

// TestScheduleCancelParallel aborts the parallel schedule pass (conflict
// graph build on 4 workers) mid-flight: clean context.Canceled, no leaked
// workers, and a pre-cancelled context never starts.
func TestScheduleCancelParallel(t *testing.T) {
	a := arch.Reference()
	staged := stagedBench(t, "ising_n42") // wide stages → many moves per phase
	plan, err := place.BuildPlan(context.Background(), a, staged, place.Default())
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := schedule.BuildWithOptions(pre, a, staged, plan, schedule.Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled schedule: err = %v, want context.Canceled", err)
	}

	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		_, err := schedule.BuildWithOptions(ctx, a, staged, plan, schedule.Options{Workers: 4})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled schedule: err = %v, want context.Canceled or nil", err)
		}
		cancel()
	}
	settleGoroutines(t, baseline)
}
