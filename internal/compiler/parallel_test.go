package compiler

import (
	"context"
	"runtime"
	"testing"

	"zac/internal/arch"
)

// TestParallelByteIdentity is the determinism contract of the ISSUE-9
// parallelism: every registry compiler produces byte-identical output
// whether it runs sequentially (Workers=1 on one proc) or with a full
// worker budget on several procs. Workers is a speed-only knob; only
// SARestarts may change the compiled bytes.
func TestParallelByteIdentity(t *testing.T) {
	ambient := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(ambient)
	ctx := context.Background()

	compileHash := func(t *testing.T, name, circ string, procs int, opts Options) string {
		t.Helper()
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(ambient)
		r, err := c.Compile(ctx, stagedFor(t, c, circ), TargetArch(c), opts)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, circ, err)
		}
		return resultHash(t, r)
	}

	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			seq := compileHash(t, name, "qft_n18", 1, Options{Workers: 1})
			par := compileHash(t, name, "qft_n18", 4, Options{Workers: 4})
			if seq != par {
				t.Errorf("Workers=4 on 4 procs changed the output of %s", name)
			}
		})
	}

	// The restart axis: SARestarts changes the plan deterministically —
	// the same value must hash identically at any worker budget, and the
	// default must match the explicit single chain.
	t.Run("zac/sa-restarts", func(t *testing.T) {
		for _, circ := range []string{"qft_n18", "ising_n42"} {
			base := compileHash(t, "zac", circ, 1, Options{Workers: 1})
			if got := compileHash(t, "zac", circ, 1, Options{SARestarts: 1, Workers: 1}); got != base {
				t.Errorf("%s: SARestarts=1 differs from the default single chain", circ)
			}
			r3seq := compileHash(t, "zac", circ, 1, Options{SARestarts: 3, Workers: 1})
			r3par := compileHash(t, "zac", circ, 4, Options{SARestarts: 3, Workers: 4})
			if r3seq != r3par {
				t.Errorf("%s: SARestarts=3 output depends on the worker budget", circ)
			}
		}
	})
}

// TestParallelArchIdentity pins that a forced non-reference architecture is
// equally worker-independent — the triple-trap target drives different
// matching shapes through the parallel JV solver.
func TestParallelArchIdentity(t *testing.T) {
	ctx := context.Background()
	c, err := Get("zac")
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ReferenceTriple()
	staged := stagedFor(t, c, "wstate_n27")
	var hashes []string
	for _, workers := range []int{1, 4} {
		r, err := c.Compile(ctx, staged, a, Options{Workers: workers, SARestarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, resultHash(t, r))
	}
	if hashes[0] != hashes[1] {
		t.Error("triple-trap compile differs between Workers=1 and Workers=4")
	}
}
