package core

import (
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/resynth"
)

func TestCompileGHZ(t *testing.T) {
	a := arch.Reference()
	res, err := Compile(bench.GHZ(14), a, Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total <= 0 || res.Breakdown.Total >= 1 {
		t.Errorf("fidelity = %v", res.Breakdown.Total)
	}
	if res.Stats.Excited != 0 {
		t.Errorf("ZAC must not excite idle qubits, got %d", res.Stats.Excited)
	}
	if res.NumRydbergStages != 13 {
		t.Errorf("stages = %d, want 13", res.NumRydbergStages)
	}
	if res.ReusedGates == 0 {
		t.Error("GHZ chain should exhibit qubit reuse")
	}
}

func TestAblationOrdering(t *testing.T) {
	// Fig. 11: adding techniques should not hurt on the reuse-friendly
	// benchmarks; check full ZAC ≥ Vanilla on a GHZ chain.
	a := arch.Reference()
	c := bench.GHZ(23)
	staged, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	fid := map[string]float64{}
	for _, s := range []string{SettingVanilla, SettingDynPlace, SettingDynPlaceReuse, SettingSADynPlaceReuse} {
		res, err := CompileStaged(staged, a, OptionsFor(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		fid[s] = res.Breakdown.Total
	}
	if fid[SettingSADynPlaceReuse] < fid[SettingVanilla] {
		t.Errorf("full ZAC (%v) below Vanilla (%v)", fid[SettingSADynPlaceReuse], fid[SettingVanilla])
	}
	if fid[SettingDynPlaceReuse] < fid[SettingDynPlace] {
		t.Errorf("reuse (%v) below dynPlace (%v)", fid[SettingDynPlaceReuse], fid[SettingDynPlace])
	}
}

func TestIdealBoundsOrdering(t *testing.T) {
	// Fig. 13: perfect reuse ≥ perfect placement ≥ perfect movement ≥ ZAC.
	a := arch.Reference()
	staged, err := resynth.Preprocess(bench.GHZ(23))
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileStaged(staged, a, Default())
	if err != nil {
		t.Fatal(err)
	}
	pm := PerfectMovement(a, staged, res.Plan).Total
	pp := PerfectPlacement(a, staged, res.Plan).Total
	pr := PerfectReuse(a, staged, res.Plan).Total
	zac := res.Breakdown.Total
	if !(pr >= pp-1e-12 && pp >= pm-1e-12) {
		t.Errorf("bound ordering violated: reuse %v, placement %v, movement %v", pr, pp, pm)
	}
	if zac > pm+1e-12 {
		t.Errorf("ZAC (%v) beats its perfect-movement bound (%v)", zac, pm)
	}
}

func TestMultiAODNotWorse(t *testing.T) {
	a1 := arch.Reference()
	a2 := arch.WithAODs(arch.Reference(), 2)
	staged, err := resynth.Preprocess(bench.Ising(42, 1))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := CompileStaged(staged, a1, Default())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CompileStaged(staged, a2, Default())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Duration > r1.Duration+1e-9 {
		t.Errorf("2 AODs slower: %v vs %v", r2.Duration, r1.Duration)
	}
	if r2.Breakdown.Total < r1.Breakdown.Total-1e-9 {
		t.Errorf("2 AODs lower fidelity: %v vs %v", r2.Breakdown.Total, r1.Breakdown.Total)
	}
}

func TestCompileRejectsInvalidArch(t *testing.T) {
	a := arch.Reference()
	a.AODs = nil
	if _, err := Compile(bench.GHZ(4), a, Default()); err == nil {
		t.Fatal("invalid architecture accepted")
	}
}

func TestOptionsFor(t *testing.T) {
	v := OptionsFor(SettingVanilla)
	if v.Place.UseSA || v.Place.Dynamic || v.Place.Reuse {
		t.Error("Vanilla should disable everything")
	}
	f := OptionsFor(SettingSADynPlaceReuse)
	if !f.Place.UseSA || !f.Place.Dynamic || !f.Place.Reuse {
		t.Error("full setting should enable everything")
	}
}

func TestZAIRDensity(t *testing.T) {
	// §IX: ZAIR instructions per gate ≈ 0.85 geomean over the suite; verify
	// the metric is computable and in a plausible band for one circuit.
	a := arch.Reference()
	res, err := Compile(bench.Ising(42, 1), a, Default())
	if err != nil {
		t.Fatal(err)
	}
	one, two := res.Staged.GateCounts()
	density := float64(res.Program.NumZAIRInstructions()) / float64(one+two)
	if density <= 0 || density > 3 {
		t.Errorf("ZAIR density %v implausible", density)
	}
}

func TestCompileEmptyCircuitFails(t *testing.T) {
	c := circuit.New("empty", 0)
	if _, err := Compile(c, arch.Reference(), Default()); err == nil {
		t.Fatal("zero-qubit circuit accepted")
	}
}
