// Package workload is the compiler's workload forge: deterministic, seeded
// circuit-family generators behind a process-wide registry that mirrors
// internal/compiler. Each family is addressed by a canonical spec string
// (e.g. "rb:n=32,depth=20,seed=7") that doubles as a cache key: the same
// spec reproduces a byte-identical circuit — and byte-identical OpenQASM via
// internal/qasm — on every run, so generated workloads cache, replay, and
// minimize exactly like the static benchmark suite. The fuzz harness
// (fuzz.go, driven by cmd/zac-fuzz) builds on the registry to round-trip
// generated circuits through every registry compiler and hunt invariant
// violations.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"zac/internal/circuit"
)

// Param describes one integer parameter of a generator family: its
// validation bounds and the range the random fuzzer draws from. Max == 0
// means unbounded above.
type Param struct {
	// Name is the spec key (e.g. "n", "depth", "seed").
	Name string
	// Default is the value used when the spec omits the key.
	Default int64
	// Min and Max bound accepted values (Max 0 = unbounded above).
	Min, Max int64
	// FuzzMin and FuzzMax bound the values cmd/zac-fuzz draws randomly; a
	// zero pair falls back to [Min, Default×4].
	FuzzMin, FuzzMax int64
	// Desc is the one-line description printed by -list-workloads.
	Desc string
}

// Values maps parameter names to values, always fully populated (defaults
// filled in) by the time a Generator sees it.
type Values map[string]int64

// Normalizer is implemented by generators whose parameters carry
// cross-field constraints (e.g. qaoa's even vertex count). Normalize edits
// values in place and is applied before canonicalization, so a spec's
// canonical string — the cache key — always states the parameters of the
// circuit actually generated, and equivalent spellings alias one entry.
type Normalizer interface {
	Normalize(v Values)
}

// Generator is one circuit family. Implementations must be deterministic:
// the same Values always produce an identical circuit, across processes and
// platforms (the package's RNG is self-contained for exactly this reason).
type Generator interface {
	// Family returns the canonical family name used in specs.
	Family() string
	// Describe returns a one-line family description.
	Describe() string
	// Params returns the parameter schema in canonical (spec) order.
	Params() []Param
	// Generate builds the circuit for fully-populated, validated values.
	Generate(v Values) (*circuit.Circuit, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Generator{}
)

// Register adds a generator to the process-wide registry under its canonical
// family name, panicking on duplicates (registration is an init-time
// affair), mirroring the compiler registry's contract.
func Register(g Generator) {
	regMu.Lock()
	defer regMu.Unlock()
	name := canonical(g.Family())
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	registry[name] = g
}

// canonical normalizes a family name for lookup: lower-case, trimmed.
func canonical(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Get resolves a generator by family name (case-insensitive).
func Get(family string) (Generator, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	g, ok := registry[canonical(family)]
	if !ok {
		return nil, fmt.Errorf("workload: unknown family %q (have %s)", family, strings.Join(familiesLocked(), ", "))
	}
	return g, nil
}

// Families returns the sorted canonical names of every registered family.
func Families() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return familiesLocked()
}

func familiesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build parses a spec string (the optional "spec:" surface prefix is
// accepted) and generates its circuit. The circuit's Name is the canonical
// spec, so downstream cache keys and emitted program names identify the
// exact workload.
func Build(spec string) (*circuit.Circuit, error) {
	s, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return s.Generate()
}

// List renders the registry as -list-workloads output: one line per family
// with its description, followed by one line per parameter with default and
// bounds — the same UX as -list-compilers, with schemas.
func List() string {
	var b strings.Builder
	for _, fam := range Families() {
		g, _ := Get(fam)
		fmt.Fprintf(&b, "%-10s %s\n", fam, g.Describe())
		for _, p := range g.Params() {
			bounds := fmt.Sprintf("min %d", p.Min)
			if p.Max > 0 {
				bounds = fmt.Sprintf("%d..%d", p.Min, p.Max)
			}
			fmt.Fprintf(&b, "  %-8s default %-6d (%s) %s\n", p.Name, p.Default, bounds, p.Desc)
		}
		fmt.Fprintf(&b, "  spec: %s\n", Default(fam))
	}
	return b.String()
}

// Default returns the canonical spec of a family at its default parameters
// (e.g. "rb:n=16,depth=12,seed=1").
func Default(family string) string {
	g, err := Get(family)
	if err != nil {
		return family
	}
	s := Spec{Family: canonical(family), Values: Values{}}
	for _, p := range g.Params() {
		s.Values[p.Name] = p.Default
	}
	return s.Canonical()
}
