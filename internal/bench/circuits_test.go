package bench

import (
	"math"
	"testing"

	"zac/internal/circuit"
	"zac/internal/resynth"
	"zac/internal/sim"
)

func TestAllBenchmarksValid(t *testing.T) {
	suite := All()
	if len(suite) != 17 {
		t.Fatalf("suite has %d circuits, want 17 (Fig. 8)", len(suite))
	}
	for _, b := range suite {
		c := b.Build()
		if c.NumQubits != b.NumQubits {
			t.Errorf("%s: %d qubits, declared %d", b.Name, c.NumQubits, b.NumQubits)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if len(c.Gates) == 0 {
			t.Errorf("%s: empty circuit", b.Name)
		}
	}
}

func TestAllBenchmarksPreprocess(t *testing.T) {
	for _, b := range All() {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := staged.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		one, two := staged.GateCounts()
		if two == 0 {
			t.Errorf("%s: no 2Q gates after preprocessing", b.Name)
		}
		// Compiled counts must be within 2x of the paper's Qiskit numbers —
		// a loose sanity band; exact deltas are recorded in EXPERIMENTS.md.
		if two > 2*b.Paper2Q || two < b.Paper2Q/2 {
			t.Errorf("%s: 2Q count %d far from paper's %d", b.Name, two, b.Paper2Q)
		}
		if one > 3*b.Paper1Q {
			t.Errorf("%s: 1Q count %d far above paper's %d", b.Name, one, b.Paper1Q)
		}
	}
}

func TestBVExactCounts(t *testing.T) {
	for _, tc := range []struct {
		n, want2Q int
	}{{14, 13}, {19, 18}, {30, 29}} {
		b, err := ByName(circuitName("bv", tc.n))
		if err != nil {
			t.Fatal(err)
		}
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			t.Fatal(err)
		}
		if _, two := staged.GateCounts(); two != tc.want2Q {
			t.Errorf("bv_n%d: 2Q = %d, want %d", tc.n, two, tc.want2Q)
		}
	}
}

func circuitName(prefix string, n int) string {
	switch prefix {
	case "bv":
		switch n {
		case 14:
			return "bv_n14"
		case 19:
			return "bv_n19"
		case 30:
			return "bv_n30"
		}
	}
	return ""
}

func TestGHZAndQFTCounts(t *testing.T) {
	staged, err := resynth.Preprocess(GHZ(23))
	if err != nil {
		t.Fatal(err)
	}
	if _, two := staged.GateCounts(); two != 22 {
		t.Errorf("ghz_n23 2Q = %d, want 22", two)
	}
	stagedQ, err := resynth.Preprocess(QFT(18))
	if err != nil {
		t.Fatal(err)
	}
	if _, two := stagedQ.GateCounts(); two != 306 {
		t.Errorf("qft_n18 2Q = %d, want 306 (paper)", two)
	}
	stagedI, err := resynth.Preprocess(Ising(42, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, two := stagedI.GateCounts(); two != 82 {
		t.Errorf("ising_n42 2Q = %d, want 82 (paper)", two)
	}
}

func TestIsingParallelism(t *testing.T) {
	// Ising is the paper's high-parallelism workload: the 2 RZZ sublayers
	// decompose to 4 CZ stages; GHZ is fully sequential.
	stagedI, _ := resynth.Preprocess(Ising(42, 1))
	stagedG, _ := resynth.Preprocess(GHZ(40))
	if ri, rg := stagedI.NumRydbergStages(), stagedG.NumRydbergStages(); ri >= rg {
		t.Errorf("ising stages %d should be far fewer than ghz stages %d", ri, rg)
	}
	if ri := stagedI.NumRydbergStages(); ri > 6 {
		t.Errorf("ising_n42 should compress to ≤6 Rydberg stages, got %d", ri)
	}
}

func TestBVSemantics(t *testing.T) {
	// Small BV instance: measuring the data register must reveal the secret.
	secret := []bool{true, false, true}
	c := BV(4, secret)
	s, err := sim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// After the algorithm, data qubits = secret with certainty; ancilla in
	// |−⟩. Probability mass on basis states whose data bits equal secret
	// must be 1.
	prob := 0.0
	for idx, amp := range s.Amp {
		match := true
		for i, bit := range secret {
			if ((idx>>uint(i))&1 == 1) != bit {
				match = false
				break
			}
		}
		if match {
			prob += real(amp)*real(amp) + imag(amp)*imag(amp)
		}
	}
	if math.Abs(prob-1) > 1e-9 {
		t.Errorf("BV secret recovery probability = %v", prob)
	}
}

func TestWStateSemantics(t *testing.T) {
	n := 4
	c := WState(n)
	s, err := sim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// The W state has amplitude 1/√n on each weight-1 basis state.
	want := 1 / math.Sqrt(float64(n))
	total := 0.0
	for idx, amp := range s.Amp {
		mag := math.Hypot(real(amp), imag(amp))
		ones := 0
		for i := 0; i < n; i++ {
			if (idx>>uint(i))&1 == 1 {
				ones++
			}
		}
		if ones == 1 {
			if math.Abs(mag-want) > 1e-9 {
				t.Errorf("weight-1 state %b has |amp| %v, want %v", idx, mag, want)
			}
			total += mag * mag
		} else if mag > 1e-9 {
			t.Errorf("non-weight-1 state %b has amplitude %v", idx, mag)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("W-state mass = %v", total)
	}
}

func TestGHZSemantics(t *testing.T) {
	s, err := sim.Run(GHZ(6))
	if err != nil {
		t.Fatal(err)
	}
	r := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-r) > 1e-9 || math.Abs(real(s.Amp[63])-r) > 1e-9 {
		t.Error("GHZ amplitudes wrong")
	}
}

func TestSwapTestIdenticalStates(t *testing.T) {
	// With both registers in identical states, the swap test ancilla must
	// return |0⟩ with probability 1... for pure identical states P(0) = 1.
	n := 5 // 1 ancilla + 2+2
	c := circuit.New("st", n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < 2; i++ {
		c.Append(circuit.CSWAP, []int{0, 1 + i, 3 + i})
	}
	c.Append(circuit.H, []int{0})
	s, err := sim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	p0 := 0.0
	for idx, amp := range s.Amp {
		if idx&1 == 0 {
			p0 += real(amp)*real(amp) + imag(amp)*imag(amp)
		}
	}
	if math.Abs(p0-1) > 1e-9 {
		t.Errorf("swap test on identical |00⟩ registers: P(anc=0) = %v", p0)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("qft_n18")
	if err != nil || b.NumQubits != 18 {
		t.Fatalf("ByName failed: %v %+v", err, b)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSpacedString(t *testing.T) {
	s := spacedString(69, 36)
	ones := 0
	for _, b := range s {
		if b {
			ones++
		}
	}
	if ones != 36 {
		t.Errorf("spaced string has %d ones, want 36", ones)
	}
}
