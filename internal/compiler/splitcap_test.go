// The external test package breaks the import cycle: workload generators
// depend on the compiler registry, so staging tests that drive them live in
// compiler_test.
package compiler_test

import (
	"strconv"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/resynth"
	"zac/internal/workload"
)

// TestStageSplitCapWiderThanReference pushes a generated circuit whose
// Rydberg parallelism exceeds the zoned reference capacity through the
// registry's shaping rule: after splitting at StageSplitCap every stage must
// fit the architecture's site count with no gate lost or reordered.
func TestStageSplitCapWiderThanReference(t *testing.T) {
	capSites := arch.Reference().TotalSites()
	// A shuffle layer on 2×(cap+9) qubits packs cap+9 parallel CZs into one
	// Rydberg stage — wider than any zone can expose at once.
	n := 2 * (capSites + 9)
	c, err := workload.Build("shuffle:n=" + strconv.Itoa(n) + ",depth=2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	staged, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	wide := 0
	for _, st := range staged.Stages {
		if st.Kind == circuit.RydbergStage && len(st.Gates) > capSites {
			wide++
		}
	}
	if wide == 0 {
		t.Fatalf("expected at least one Rydberg stage wider than %d sites", capSites)
	}

	baseline, err := compiler.Get("nalac")
	if err != nil {
		t.Fatal(err)
	}
	split := circuit.SplitRydbergStages(staged, compiler.StageSplitCap(baseline))
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, st := range split.Stages {
		if st.Kind == circuit.RydbergStage && len(st.Gates) > capSites {
			t.Fatalf("stage %d still holds %d gates (cap %d)", i, len(st.Gates), capSites)
		}
	}
	beforeOne, beforeTwo := staged.GateCounts()
	afterOne, afterTwo := split.GateCounts()
	if beforeOne != afterOne || beforeTwo != afterTwo {
		t.Fatalf("splitting changed gate counts: %d/%d → %d/%d", beforeOne, beforeTwo, afterOne, afterTwo)
	}
}

// TestStageSplitCapZACUnsplit pins the other side of the shaping rule: the
// ZAC family consumes unsplit staging (cap 0) so CLI/serve ZAIR stays
// byte-stable.
func TestStageSplitCapZACUnsplit(t *testing.T) {
	for _, name := range []string{"zac", "zac-vanilla", "zac-dynplace", "zac-dynplace-reuse"} {
		c, err := compiler.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := compiler.StageSplitCap(c); got != 0 {
			t.Errorf("%s: StageSplitCap = %d, want 0", name, got)
		}
	}
	for _, name := range []string{"sc-heron", "sc-grid"} {
		c, err := compiler.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := compiler.StageSplitCap(c); got != 0 {
			t.Errorf("%s: StageSplitCap = %d, want 0 (flat staging)", name, got)
		}
	}
	for _, name := range []string{"enola", "atomique", "nalac"} {
		c, err := compiler.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := compiler.StageSplitCap(c), arch.Reference().TotalSites(); got != want {
			t.Errorf("%s: StageSplitCap = %d, want %d", name, got, want)
		}
	}
}
