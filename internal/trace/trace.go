// Package trace renders compiled ZAIR programs as human-readable timelines:
// a chronological event log and an ASCII Gantt chart with one lane per AOD
// plus lanes for Rydberg exposures and 1Q pulse trains. It exists for
// debugging compilations and for inspecting how the load-balancing scheduler
// fills multiple AODs (paper §VI).
//
// Naming: this package draws what the *quantum machine* will do with a
// compiled program. Request-scoped tracing of the compiler software itself
// (spans, trace IDs, /v1/traces) lives in internal/telemetry.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"zac/internal/zair"
)

// Event is one timeline entry.
type Event struct {
	Begin, End float64
	Kind       string // "job", "rydberg", "1q"
	Lane       string // "AOD0", "RYD", "1Q"
	Label      string
}

// Events extracts the chronological event list from a program.
func Events(p *zair.Program) []Event {
	var evs []Event
	for _, inst := range p.Instructions {
		switch v := inst.(type) {
		case zair.OneQGate:
			evs = append(evs, Event{
				Begin: v.BeginTime, End: v.EndTime, Kind: "1q", Lane: "1Q",
				Label: fmt.Sprintf("u3×%d", len(v.Locs)),
			})
		case zair.Rydberg:
			evs = append(evs, Event{
				Begin: v.BeginTime, End: v.EndTime, Kind: "rydberg", Lane: "RYD",
				Label: fmt.Sprintf("zone%d", v.ZoneID),
			})
		case zair.RearrangeJob:
			evs = append(evs, Event{
				Begin: v.BeginTime, End: v.EndTime, Kind: "job",
				Lane:  fmt.Sprintf("AOD%d", v.AODID),
				Label: fmt.Sprintf("%dq", v.NumMoved()),
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Begin != evs[j].Begin {
			return evs[i].Begin < evs[j].Begin
		}
		return evs[i].Lane < evs[j].Lane
	})
	return evs
}

// Log renders the event list as text, one line per event.
func Log(p *zair.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s (%d qubits, %.3f ms)\n",
		p.Name, p.NumQubits, p.Duration()/1000)
	for _, e := range Events(p) {
		fmt.Fprintf(&b, "%10.2f – %10.2f µs  %-5s %-8s %s\n",
			e.Begin, e.End, e.Lane, e.Kind, e.Label)
	}
	return b.String()
}

// Gantt renders an ASCII Gantt chart of the program, width columns wide.
// Each lane shows '█' where the lane is busy.
func Gantt(p *zair.Program, width int) string {
	if width < 20 {
		width = 80
	}
	total := p.Duration()
	if total <= 0 {
		return "(empty program)\n"
	}
	evs := Events(p)
	lanes := map[string][]Event{}
	var laneNames []string
	for _, e := range evs {
		if _, ok := lanes[e.Lane]; !ok {
			laneNames = append(laneNames, e.Lane)
		}
		lanes[e.Lane] = append(lanes[e.Lane], e)
	}
	sort.Strings(laneNames)

	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %s — %.3f ms across %d lanes\n", p.Name, total/1000, len(laneNames))
	for _, lane := range laneNames {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		busy := 0.0
		for _, e := range lanes[lane] {
			lo := int(e.Begin / total * float64(width))
			hi := int(e.End / total * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
			busy += e.End - e.Begin
		}
		fmt.Fprintf(&b, "%-6s |%s| %4.1f%%\n", lane, row, 100*busy/total)
	}
	return b.String()
}

// Utilization returns, per lane, the fraction of total program time the
// lane is busy — the hardware-utilization metric the multi-AOD study
// optimizes (§VI).
func Utilization(p *zair.Program) map[string]float64 {
	total := p.Duration()
	out := map[string]float64{}
	if total <= 0 {
		return out
	}
	for _, e := range Events(p) {
		out[e.Lane] += (e.End - e.Begin) / total
	}
	return out
}
