#!/bin/sh
# Chaos smoke: run the pinned-seed fault-injection suites against the serve
# layer and the disk cache tier, then an end-to-end crash-recovery drill
# against the real zac-serve binary — a journal record left by a "crashed"
# process is replayed on boot (same job id, results intact), /readyz answers
# ready, and SIGTERM drains cleanly.
set -eu

ADDR="${ADDR:-127.0.0.1:8757}"
WORK="$(mktemp -d)"
PID=""
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# 1. Deterministic chaos schedules (seeds pinned inside the tests): admission
#    shedding with 429 + Retry-After, deadline mapping, drain + journal
#    replay, breaker trip/recovery with byte-identical responses, and the
#    disk tier's self-healing under partial writes, torn renames, bit flips.
go test -count=1 -run 'TestChaos' ./internal/serve
go test -count=1 -run 'TestDiskCacheChaosSelfHeals|TestDiskCacheBreakerTripAndRecover' ./internal/faultinject

# 2. Crash-recovery drill against the binary: seed the journal with a record
#    a dead process would have left behind, boot, and require the job to be
#    replayed to completion under its original id.
go build -o "$WORK/zac-serve" ./cmd/zac-serve
mkdir -p "$WORK/cache/jobs"
cat > "$WORK/cache/jobs/job-5.json" <<'EOF'
{
 "id": "job-5",
 "requests": [
  {"circuit": "bv_n14"}
 ],
 "include_zair": false
}
EOF

"$WORK/zac-serve" -addr "$ADDR" -cachedir "$WORK/cache" >"$WORK/serve.log" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "zac-serve never became healthy" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi

grep -q 'msg="replaying journaled jobs" jobs=1' "$WORK/serve.log"
curl -fsS "http://$ADDR/readyz" | grep -q '"status": "ready"'

done=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/v1/jobs/job-5" | grep -q '"status": "done"'; then done=1; break; fi
    sleep 0.2
done
if [ "$done" != 1 ]; then
    echo "replayed job-5 never finished" >&2
    curl -fsS "http://$ADDR/v1/jobs/job-5" >&2 || true
    cat "$WORK/serve.log" >&2
    exit 1
fi

curl -fsS "http://$ADDR/metrics" | grep -q '"jobs_replayed": 1'

# The finished job retired its journal record (removal is just after the
# terminal state becomes visible, so allow a beat).
gone=0
for _ in $(seq 1 50); do
    if [ ! -e "$WORK/cache/jobs/job-5.json" ]; then gone=1; break; fi
    sleep 0.1
done
if [ "$gone" != 1 ]; then
    echo "journal record for finished job-5 was not removed" >&2
    exit 1
fi

# 3. SIGTERM drains: the process exits cleanly on its own.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
if [ "$status" != 0 ]; then
    echo "zac-serve exited $status on SIGTERM" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
grep -q 'drained, bye' "$WORK/serve.log"

echo "chaos-smoke: OK"
