// Command zairsim loads one or more ZAIR programs (as produced by
// `zac -out`), verifies their physical consistency against an architecture,
// and reports statistics and fidelity under the paper's model — the
// consumer-side counterpart of the compiler, useful for validating
// externally generated or hand-edited ZAIR programs. Multiple programs are
// verified concurrently through the engine's worker pool; reports print in
// argument order. With -cachedir, verification reports are cached on disk
// (keyed by program content digest and architecture fingerprint, the same
// cache directory zac-serve and zac-bench use), so re-verifying unchanged
// programs is free.
//
// With -selfcheck a built-in benchmark is compiled in-process through the
// compiler registry (-compiler selects the ZAC preset) and the emitted
// program is verified immediately — the end-to-end round trip without an
// intermediate file.
//
//	zairsim -program bv.zair.json
//	zairsim -program bv.zair.json -arch custom_arch.json
//	zairsim -parallel 4 a.zair.json b.zair.json c.zair.json
//	zairsim -cachedir ~/.cache/zac big.zair.json
//	zairsim -selfcheck ghz_n23 -compiler zac-dynplace
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/fidelity"
	"zac/internal/resynth"
	"zac/internal/zair"
)

func main() {
	programPath := flag.String("program", "", "ZAIR program JSON file (may also be given as positional arguments)")
	archPath := flag.String("arch", "", "architecture JSON (default: reference architecture)")
	parallel := flag.Int("parallel", 0, "worker pool size for multiple programs (0 = all CPUs)")
	cacheDir := flag.String("cachedir", "", "persistent report-cache directory shared with zac-serve and zac-bench")
	selfcheck := flag.String("selfcheck", "", "compile this built-in benchmark through the compiler registry and verify the emitted program in-process")
	compilerName := flag.String("compiler", "zac", "registry compiler for -selfcheck (must emit ZAIR: zac, zac-vanilla, zac-dynplace, zac-dynplace-reuse)")
	flag.Parse()

	cache := engine.NewTiered(0)
	if *cacheDir != "" {
		disk, err := engine.OpenDiskCache(*cacheDir, 0)
		if err != nil {
			fatal(err)
		}
		cache.SetDisk(disk)
	}

	paths := flag.Args()
	if *programPath != "" {
		paths = append([]string{*programPath}, paths...)
	}
	if len(paths) == 0 && *selfcheck == "" {
		fmt.Fprintln(os.Stderr, "zairsim: -program FILE (or positional FILEs, or -selfcheck BENCH) required")
		os.Exit(2)
	}

	a := arch.Reference()
	if *archPath != "" {
		raw, err := os.ReadFile(*archPath)
		if err != nil {
			fatal(err)
		}
		a = &arch.Architecture{}
		if err := json.Unmarshal(raw, a); err != nil {
			fatal(err)
		}
	}

	if *selfcheck != "" {
		out, err := runSelfcheck(*selfcheck, *compilerName, a)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if len(paths) == 0 {
			return
		}
		fmt.Println()
	}

	reports, err := engine.Map(context.Background(), *parallel, len(paths), func(i int) (string, error) {
		data, err := os.ReadFile(paths[i])
		if err != nil {
			return "", err
		}
		key := fmt.Sprintf("zairsim|prog=%x|arch=%s", sha256.Sum256(data), a.Fingerprint())
		return engine.GetTiered(cache, key, engine.JSONCodec[string](), func() (string, error) {
			return report(paths[i], data, a)
		})
	})
	if err != nil {
		fatal(err)
	}
	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		if len(paths) > 1 {
			fmt.Printf("--- %s ---\n", paths[i])
		}
		fmt.Print(r)
	}
}

// runSelfcheck compiles a built-in benchmark through the compiler registry
// and verifies the emitted ZAIR program in-process, returning the report
// prefixed with the compiler that produced it.
func runSelfcheck(benchName, compilerName string, a *arch.Architecture) (string, error) {
	comp, err := compiler.Get(compilerName)
	if err != nil {
		return "", err
	}
	b, err := bench.ByName(benchName)
	if err != nil {
		return "", err
	}
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		return "", err
	}
	res, err := comp.Compile(context.Background(), staged, a, compiler.Options{})
	if err != nil {
		return "", err
	}
	if len(res.Program.Instructions) == 0 {
		return "", fmt.Errorf("compiler %s emits no ZAIR instruction stream; pick a zac-family compiler", comp.Name())
	}
	data, err := json.MarshalIndent(res.Program, "", " ")
	if err != nil {
		return "", err
	}
	rep, err := report("selfcheck:"+benchName, data, a)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("selfcheck:        %s via %s\n%s", benchName, comp.Name(), rep), nil
}

// report verifies and evaluates one program, returning its printable report.
func report(path string, data []byte, a *arch.Architecture) (string, error) {
	var prog zair.Program
	if err := json.Unmarshal(data, &prog); err != nil {
		return "", fmt.Errorf("parsing %s: %w", path, err)
	}

	v := &zair.Verifier{Resolve: a.ResolveTrap}
	if err := v.Verify(&prog); err != nil {
		return "", fmt.Errorf("%s: verification failed: %w", path, err)
	}

	stats := replayStats(&prog, a)
	b := fidelity.Compute(core.ParamsFromArch(a), stats)
	cs := prog.CountStats()
	var out strings.Builder
	fmt.Fprintf(&out, "verification:     OK\n")
	fmt.Fprintf(&out, "program:          %s (%d qubits)\n", prog.Name, prog.NumQubits)
	fmt.Fprintf(&out, "instructions:     %d ZAIR (%d 1qGate, %d rydberg, %d jobs), %d machine-level\n",
		prog.NumZAIRInstructions(), cs.OneQGate, cs.Rydberg, cs.RearrangeJobs, cs.MachineInsts)
	fmt.Fprintf(&out, "moved qubits:     %d (%d transfers)\n", cs.MovedQubits, stats.Transfers)
	fmt.Fprintf(&out, "duration:         %.3f ms\n", prog.Duration()/1000)
	fmt.Fprintf(&out, "fidelity:         %.4f (1Q %.4f · 2Q %.4f · transfer %.4f · decoherence %.4f)\n",
		b.Total, b.OneQ, b.TwoQ, b.Transfer, b.Decohere)
	return out.String(), nil
}

// replayStats reconstructs fidelity statistics from a ZAIR instruction
// stream. 2Q gate counts come from Rydberg exposures: every pair of qubits
// sharing a Rydberg site when the laser fires counts as one CZ.
func replayStats(p *zair.Program, a *arch.Architecture) fidelity.Stats {
	var st fidelity.Stats
	st.Duration = p.Duration()
	st.Busy = make([]float64, p.NumQubits)

	// Track positions to resolve Rydberg pairings.
	pos := map[int]zair.QLoc{}
	entSLMs := map[int]int{} // slm id → entanglement zone index
	for zi, z := range a.Entanglement {
		for _, s := range z.SLMs {
			entSLMs[s.ID] = zi
		}
	}
	if init, ok := p.Instructions[0].(zair.Init); ok {
		for _, l := range init.Locs {
			pos[l.Q] = l
		}
	}
	for _, inst := range p.Instructions[1:] {
		switch v := inst.(type) {
		case zair.OneQGate:
			for _, l := range v.Locs {
				st.OneQGates++
				st.AddBusy(l.Q, a.Times.OneQGate)
			}
		case zair.Rydberg:
			// Pair qubits by (zone, row, col).
			bySite := map[[3]int][]int{}
			for q, l := range pos {
				zi, ok := entSLMs[l.A]
				if !ok || zi != v.ZoneID {
					continue
				}
				key := [3]int{zi, l.R, l.C}
				bySite[key] = append(bySite[key], q)
			}
			for _, qs := range bySite {
				if len(qs) == 2 {
					st.TwoQGates++
					st.AddBusy(qs[0], a.Times.Rydberg)
					st.AddBusy(qs[1], a.Times.Rydberg)
				} else {
					st.Excited += len(qs)
				}
			}
		case zair.RearrangeJob:
			dur := v.EndTime - v.BeginTime
			for r := range v.EndLocs {
				for _, e := range v.EndLocs[r] {
					pos[e.Q] = e
					st.Transfers += 2
					st.AddBusy(e.Q, dur)
				}
			}
		}
	}
	return st
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zairsim: %v\n", err)
	os.Exit(1)
}
