package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// diskMagic versions the on-disk entry format; bumping it invalidates every
// existing cache file (they read as corrupt and are discarded).
const diskMagic = "zacdisk1"

// diskSuffix is the extension of committed cache entries; writers stage
// under a ".tmp" name first, so readers never observe a half-written entry.
const diskSuffix = ".zc"

// DiskCache is a content-addressed byte store on the local filesystem: keys
// hash to fan-out subdirectories, entries carry a checksum header, writes go
// through a temp file plus atomic rename, and corrupt or truncated entries
// are detected on read and silently discarded as misses. It is safe for
// concurrent use within a process and for concurrent readers across
// processes sharing the directory (the rename commit is atomic).
type DiskCache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex // guards size/entries accounting and eviction scans
	size    int64
	entries int

	hits, misses, corrupt, evicted atomic.Uint64
}

// OpenDiskCache opens (creating if needed) a disk cache rooted at dir.
// maxBytes bounds the total payload+header bytes on disk (0 = unbounded);
// when the directory is over the bound — at open, or after a Put — the
// least recently read entries are evicted. Stale temp files from crashed
// writers are removed. Size accounting is refreshed from the filesystem on
// every eviction scan, so a directory shared with other writers converges
// back under the bound whenever this process's own writes trigger one.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: disk cache directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskCache{dir: dir, maxBytes: maxBytes}
	err := filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(path, ".tmp"):
			os.Remove(path) // leftover from an interrupted writer
		case strings.HasSuffix(path, diskSuffix):
			if info, err := de.Info(); err == nil {
				d.size += info.Size()
				d.entries++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if d.maxBytes > 0 && d.size > d.maxBytes {
		d.evict("")
	}
	return d, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// path maps a key to its entry file: two hex characters of fan-out, then the
// full SHA-256 of the key.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name+diskSuffix)
}

// Get returns the payload stored for key. A missing, truncated, corrupt, or
// colliding entry reads as a miss; damaged files are deleted so the next Put
// can rewrite them. A successful read refreshes the entry's mtime, which is
// the recency signal eviction sorts by.
func (d *DiskCache) Get(key string) ([]byte, bool) {
	path := d.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeEntry(raw, key)
	if !ok {
		d.corrupt.Add(1)
		d.misses.Add(1)
		d.discard(path)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best effort: feed the LRU eviction order
	d.hits.Add(1)
	return payload, true
}

// Put stores payload under key, replacing any previous entry, and evicts
// least recently read entries if the size bound is exceeded.
func (d *DiskCache) Put(key string, payload []byte) error {
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	entry := encodeEntry(key, payload)

	var prev int64
	replacing := false
	if info, err := os.Stat(path); err == nil {
		prev, replacing = info.Size(), true
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	d.mu.Lock()
	d.size += int64(len(entry)) - prev
	if !replacing {
		d.entries++
	}
	over := d.maxBytes > 0 && d.size > d.maxBytes
	d.mu.Unlock()
	if over {
		d.evict(path)
	}
	return nil
}

// Remove deletes the entry for key if present.
func (d *DiskCache) Remove(key string) { d.discard(d.path(key)) }

// discard deletes an entry file by path and fixes the accounting.
func (d *DiskCache) discard(path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	if os.Remove(path) != nil {
		return
	}
	d.mu.Lock()
	d.size -= info.Size()
	d.entries--
	d.mu.Unlock()
}

// evict removes least recently read entries (oldest mtime first) until the
// cache fits 90% of the byte bound — the hysteresis keeps a steady-state
// bounded cache from re-walking the directory on every single Put. keep is
// never evicted — it is the entry whose Put triggered the scan. The walk's
// totals replace the in-memory accounting, so entries added or removed by
// other processes sharing the directory are reconciled here.
func (d *DiskCache) evict(keep string) {
	type entry struct {
		path  string
		mtime time.Time
		size  int64
	}
	var all []entry
	var keepSize, total int64
	filepath.WalkDir(d.dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, diskSuffix) {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil
		}
		total += info.Size()
		if path == keep {
			keepSize = info.Size()
			return nil
		}
		all = append(all, entry{path, info.ModTime(), info.Size()})
		return nil
	})
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })

	d.mu.Lock()
	defer d.mu.Unlock()
	d.size = total
	d.entries = len(all)
	if keep != "" {
		d.entries++
	}
	target := d.maxBytes - d.maxBytes/10
	if target < keepSize {
		target = keepSize
	}
	for _, e := range all {
		if d.size <= target {
			break
		}
		if os.Remove(e.path) == nil {
			d.size -= e.size
			d.entries--
			d.evicted.Add(1)
		}
	}
}

// DiskStats reports the disk tier's counters.
type DiskStats struct {
	Entries int
	Bytes   int64
	Hits    uint64
	Misses  uint64
	Corrupt uint64 // entries dropped by checksum/header verification
	Evicted uint64 // entries removed by the size bound
}

// Stats returns the current counters.
func (d *DiskCache) Stats() DiskStats {
	d.mu.Lock()
	entries, size := d.entries, d.size
	d.mu.Unlock()
	return DiskStats{
		Entries: entries, Bytes: size,
		Hits: d.hits.Load(), Misses: d.misses.Load(),
		Corrupt: d.corrupt.Load(), Evicted: d.evicted.Load(),
	}
}

// encodeEntry frames a payload with a verifiable header:
//
//	zacdisk1 <sha256(payload) hex> <len(payload)> <url-escaped key>\n<payload>
//
// The escaped key makes hash collisions (and accidental cross-key reads
// after a format change) detectable, and doubles as debugging metadata.
func encodeEntry(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", diskMagic, hex.EncodeToString(sum[:]), len(payload), url.QueryEscape(key))
	return append([]byte(header), payload...)
}

// decodeEntry validates a raw entry file against the expected key and
// returns the payload, or false for any malformed, truncated, or mismatched
// content.
func decodeEntry(raw []byte, key string) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 4 || fields[0] != diskMagic {
		return nil, false
	}
	storedKey, err := url.QueryUnescape(fields[3])
	if err != nil || storedKey != key {
		return nil, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, false
	}
	return payload, true
}
