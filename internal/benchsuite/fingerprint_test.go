package benchsuite

import "testing"

// Two captures in one process must be identical: every input to the
// fingerprint (cpuinfo, core count, toolchain) is stable for a process
// lifetime, and Machine additionally caches the first capture.
func TestFingerprintDeterminism(t *testing.T) {
	a, b := Machine(), Machine()
	if a != b {
		t.Fatalf("Machine() not stable: %+v vs %+v", a, b)
	}
	c, d := capture(), capture()
	if c != d {
		t.Fatalf("capture() not stable within one process: %+v vs %+v", c, d)
	}
	if a.ID() != b.ID() || a.ID() == "" {
		t.Fatalf("ID() not stable: %q vs %q", a.ID(), b.ID())
	}
	if len(a.ID()) != 16 {
		t.Fatalf("ID() = %q, want 16 hex digits", a.ID())
	}
	if a.CPUModel == "" || a.Cores <= 0 || a.GoVersion == "" {
		t.Fatalf("fingerprint has empty fields: %+v", a)
	}
}

// Different fingerprints must yield different ids (the store shard and gate
// comparability key).
func TestFingerprintIDSeparates(t *testing.T) {
	a := Fingerprint{CPUModel: "cpuA", Cores: 8, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24"}
	b := a
	b.Cores = 16
	if a.ID() == b.ID() {
		t.Fatalf("distinct fingerprints share id %q", a.ID())
	}
}
