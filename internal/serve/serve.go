// Package serve implements the zac-serve HTTP API: a long-running
// compilation service that accepts OpenQASM programs (or built-in benchmark
// names) plus JSON architecture specs, compiles them through the compiler
// registry — ZAC's ablation presets, the neutral-atom baselines, and the
// superconducting routers all resolve by name — with bounded concurrency,
// and returns the ZAIR program plus the paper's fidelity breakdown as JSON.
// Results flow through the engine's tiered cache (LRU memory front,
// optional content-addressed disk back tier), so identical requests are
// served from cache — across restarts when a cache directory is attached —
// and the emitted ZAIR is byte-identical to the `zac -out` CLI encoding.
// Preprocessing and placement artifacts are additionally memoized at pass
// granularity, shared across compilers.
//
// Request contexts propagate into the pass pipeline: when a client
// disconnects mid-compile, the compilation stops at the next pass or stage
// boundary instead of running to completion, and async jobs are cancellable
// via DELETE /v1/jobs/{id}.
//
// Endpoints:
//
//	POST   /v1/compile     single or batch compilation (async via "async":true);
//	                       ?compiler= selects a registry compiler for the request
//	GET    /v1/jobs/{id}   poll an async job
//	DELETE /v1/jobs/{id}   cancel an async job
//	GET    /healthz        liveness probe
//	GET    /readyz         readiness probe: 503 while draining for shutdown
//	GET    /metrics        cache hit rates (whole-compile and pass-level),
//	                       in-flight compiles, per-compiler and per-pass latency,
//	                       admission queue/shed counters, disk breaker state
//
// The service is built to degrade rather than collapse: compilations that
// would exceed the bounded admission queue are shed with 429 + Retry-After,
// each request can carry its own deadline ("timeout_ms"), accepted async
// jobs are journaled to the cache directory and replayed after a crash, and
// persistent disk-tier failures trip a circuit breaker that drops the cache
// to memory-only until the disk recovers.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/qasm"
	"zac/internal/resynth"
	"zac/internal/telemetry"
	"zac/internal/workload"
)

// Options configures a Server. The zero value is serviceable: all-CPU
// compile concurrency, an unbounded in-memory cache, no disk tier.
type Options struct {
	// Parallel bounds the number of concurrently executing compilations
	// (not HTTP requests); ≤ 0 selects runtime.NumCPU().
	Parallel int
	// MemEntries caps the cache's LRU memory front (≤ 0 = unbounded).
	MemEntries int
	// Disk, when non-nil, attaches a persistent cache tier shared with
	// zac-bench and zairsim.
	Disk *engine.DiskCache
	// MaxBatch caps the requests accepted in one batch (default 64).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 8 MiB).
	MaxBodyBytes int64
	// QueueDepth bounds the admission queue: the number of compilations
	// allowed to wait for a compile slot beyond the ones running. A request
	// arriving with the queue full is shed immediately with 429 and a
	// Retry-After header instead of queueing unboundedly (default 64).
	QueueDepth int
	// RetryAfter is the hint returned in the Retry-After header of 429/503
	// responses (default 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Telemetry, when non-nil, records one span trace per compile request,
	// served at GET /v1/traces and echoed as trace_id in responses. Nil
	// disables tracing entirely (requests pay one nil check).
	Telemetry *telemetry.Recorder
	// Logger receives structured request-completion logs (one line per
	// compile with trace_id, compiler, cache tier, status, duration). Nil
	// discards logs, keeping tests and embedders quiet.
	Logger *slog.Logger
}

// ErrOverloaded is the admission controller's rejection: every compile slot
// is busy and the waiting queue is at QueueDepth. It maps to HTTP 429 with
// a Retry-After header and is never memoized by the cache.
var ErrOverloaded = errors.New("server overloaded: compile admission queue is full")

// ErrDraining rejects new compilations while the server drains for
// shutdown. It maps to HTTP 503 with a Retry-After header.
var ErrDraining = errors.New("server is draining")

// Server is the zac-serve request handler: a tiered compilation cache, a
// pass-artifact cache shared across registry compilers, a
// compile-concurrency semaphore, the async job table, and service counters.
type Server struct {
	opts      Options
	cache     *engine.Tiered
	artifacts *compiler.Artifacts
	sem       chan struct{}
	telemetry *telemetry.Recorder // nil when tracing is disabled
	log       *slog.Logger

	requests atomic.Uint64
	compiles atomic.Uint64
	inflight atomic.Int64

	waiting      atomic.Int64  // compilations queued for a compile slot
	shed         atomic.Uint64 // requests rejected 429 by admission
	deadlines    atomic.Uint64 // requests that missed their timeout_ms
	draining     atomic.Bool   // shutdown in progress: /readyz 503, compiles refused
	jobsReplayed atomic.Uint64 // jobs re-run from the crash journal

	journal *jobJournal    // nil without OpenJournal
	jobWG   sync.WaitGroup // running async jobs, waited on by Drain

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for retention eviction
	jobSeq   int
	latency  map[string]*latencyAgg // per compiler
	passes   map[string]*latencyAgg // per "compiler/pass"
}

// latencyAgg accumulates fresh-compilation wall-clock latency per key.
type latencyAgg struct {
	count   uint64
	totalMS float64
	maxMS   float64
}

// New returns a Server ready to have Handler mounted.
func New(opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	cache := engine.NewTiered(opts.MemEntries)
	if opts.Disk != nil {
		cache.SetDisk(opts.Disk)
	}
	// Pass artifacts (staged circuits, placement plans) stay memory-only:
	// they hold pointer graphs the disk tier cannot represent, and they
	// rebuild cheaply relative to a full compile.
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Server{
		opts:      opts,
		cache:     cache,
		artifacts: compiler.NewArtifacts(engine.NewTiered(opts.MemEntries)),
		sem:       make(chan struct{}, engine.Workers(opts.Parallel)),
		telemetry: opts.Telemetry,
		log:       logger,
		jobs:      map[string]*job{},
		latency:   map[string]*latencyAgg{},
		passes:    map[string]*latencyAgg{},
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness for traffic: 200 while serving, 503 once a
// drain has begun — the signal load balancers and orchestrators use to stop
// routing to an instance that is shutting down (the process stays live, so
// /healthz keeps answering 200 throughout).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// retryAfterSeconds renders the Retry-After hint, at least one whole second.
func (s *Server) retryAfterSeconds() string {
	secs := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// StartDrain flips the server into draining mode: /readyz answers 503 and
// new compile submissions are refused with 503 + Retry-After. In-flight
// work is unaffected; use Drain to wait for it.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain enters draining mode and waits for every running async job to
// finish, up to the context's deadline. Jobs still unfinished when the
// deadline fires stay recorded in the journal, so the next start replays
// them — an accepted job is never silently lost. Synchronous requests are
// the HTTP server's to drain (http.Server.Shutdown waits for handlers).
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleCompile serves POST /v1/compile: a bare CompileRequest or a batch,
// synchronous by default, async as a job with "async":true. Query parameter
// compiler=NAME selects a registry compiler for every request that does not
// name its own; zair=0 omits the ZAIR program from responses; format=zair
// (single synchronous requests only) returns the bare ZAIR JSON,
// byte-identical to `zac -out`. The request context is propagated into the
// pipeline, so disconnecting cancels an in-flight compilation.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	single := len(req.Requests) == 0
	batch := req.Requests
	if single {
		batch = []CompileRequest{req.CompileRequest}
	}
	if len(batch) > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds the limit of %d", len(batch), s.opts.MaxBatch))
		return
	}
	defaultCompiler := r.URL.Query().Get("compiler")
	includeZAIR := r.URL.Query().Get("zair") != "0"
	rawZAIR := r.URL.Query().Get("format") == "zair"
	if rawZAIR && (!single || req.Async) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("format=zair requires a single synchronous request"))
		return
	}

	if req.Async {
		j := s.newJob(len(batch))
		// Journal before acknowledging: once the client holds a 202, the
		// job must survive a crash. A job we cannot make durable is not
		// accepted.
		if s.journal != nil {
			entry := journalEntry{ID: j.id, Requests: batch, DefaultCompiler: defaultCompiler, IncludeZAIR: includeZAIR}
			if err := s.journal.record(entry); err != nil {
				s.dropJob(j.id)
				w.Header().Set("Retry-After", s.retryAfterSeconds())
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("journaling job: %w", err))
				return
			}
		}
		s.startJob(j, batch, defaultCompiler, includeZAIR)
		writeJSON(w, http.StatusAccepted, j.response())
		return
	}

	results := s.compileBatch(r.Context(), batch, defaultCompiler, includeZAIR || rawZAIR)
	if !single {
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}
	item := results[0]
	if item.TraceID != "" {
		w.Header().Set("X-Trace-Id", item.TraceID)
	}
	if item.Error != "" {
		status := item.status
		if status == 0 {
			status = http.StatusBadRequest
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
		}
		writeError(w, status, fmt.Errorf("%s", item.Error))
		return
	}
	if rawZAIR {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(item.Result.ZAIR)
		return
	}
	writeJSON(w, http.StatusOK, item.Result)
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

// compileBatch fans the batch out over the worker pool, one BatchItem per
// request in request order. Errors stay per-item; the batch itself never
// fails.
func (s *Server) compileBatch(ctx context.Context, batch []CompileRequest, defaultCompiler string, includeZAIR bool) []BatchItem {
	items := make([]BatchItem, len(batch))
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			items[i] = s.compileItem(ctx, batch[i], defaultCompiler, includeZAIR)
		}(i)
	}
	wg.Wait()
	return items
}

// compileItem wraps compileOne into a BatchItem, applying the request's
// timeout_ms deadline and classifying failures into the HTTP status a
// single synchronous request reports (batch items carry the message only).
// It runs on goroutines the service spawned itself — not net/http handler
// goroutines — so a panic anywhere in a compiler would kill the whole
// process; contain it as a per-item error instead. Each item roots one
// telemetry trace (when a recorder is attached) and emits one structured
// request-completion log line.
func (s *Server) compileItem(ctx context.Context, req CompileRequest, defaultCompiler string, includeZAIR bool) (item BatchItem) {
	ctx, root := s.telemetry.StartTrace(ctx, "serve.compile")
	t0 := time.Now()
	var tier engine.Tier
	status := "ok"
	compilerName := ""
	defer func() {
		if r := recover(); r != nil {
			item = BatchItem{Error: fmt.Sprintf("compile panicked: %v", r)}
			status = "panic"
		}
		item.TraceID = root.TraceID()
		if item.Result != nil {
			item.Result.TraceID = root.TraceID()
			compilerName = item.Result.Compiler
		}
		if compilerName == "" {
			compilerName = req.Compiler
		}
		root.Set("status", status)
		root.Set("compiler", compilerName)
		if tier != "" {
			root.Set("tier", string(tier))
		}
		root.End()
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "compile",
			slog.String("trace_id", root.TraceID()),
			slog.String("compiler", compilerName),
			slog.String("tier", string(tier)),
			slog.String("status", status),
			slog.Duration("duration", time.Since(t0)))
	}()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, itemTier, err := s.compileOne(ctx, req, defaultCompiler, includeZAIR)
	tier = itemTier
	switch {
	case err == nil:
		return BatchItem{Result: res}
	case errors.Is(err, ErrOverloaded):
		status = "shed"
		return BatchItem{Error: err.Error(), status: http.StatusTooManyRequests}
	case req.TimeoutMS > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		// The deadline may surface as Canceled: when the last waiter leaves a
		// shared computation, its context is cancelled rather than deadlined.
		s.deadlines.Add(1)
		status = "deadline"
		return BatchItem{
			Error:  fmt.Sprintf("deadline of %d ms exceeded", req.TimeoutMS),
			status: http.StatusGatewayTimeout,
		}
	default:
		status = "error"
		return BatchItem{Error: err.Error()}
	}
}

// compileOne resolves one request and routes it through the compiler
// registry and the cache hierarchy; only a cache miss occupies a slot of
// the compile semaphore. The context reaches the pass pipeline, so an
// abandoned request stops compiling mid-pass. A cancellation is never
// memoized (the cache drops it), so a later identical request recompiles.
// The returned Tier reports where the cache lookup resolved ("" when the
// request failed before reaching the cache).
func (s *Server) compileOne(ctx context.Context, req CompileRequest, defaultCompiler string, includeZAIR bool) (*CompileResponse, engine.Tier, error) {
	c, setting, err := resolveCompiler(req, defaultCompiler)
	if err != nil {
		return nil, "", err
	}
	buildCirc, circKey, err := resolveCircuit(req)
	if err != nil {
		return nil, "", err
	}
	a, err := resolveArch(req, c)
	if err != nil {
		return nil, "", err
	}
	if req.SARestarts < 0 {
		return nil, "", fmt.Errorf("sa_restarts must be non-negative, got %d", req.SARestarts)
	}
	if req.Workers < 0 {
		return nil, "", fmt.Errorf("workers must be non-negative, got %d", req.Workers)
	}

	key := "serve|" + c.Name() + "|" + circKey + "|arch=" + a.Fingerprint()
	// SARestarts > 1 changes the compiled bytes, so it joins the key; the
	// default leaves the key (and any persisted disk entries) untouched.
	// Workers never joins the key — it only changes compile speed.
	if req.SARestarts > 1 {
		key += fmt.Sprintf("|sar=%d", req.SARestarts)
	}
	// DoCtxTier gives the computation a context cancelled only when every
	// request sharing it has disconnected, so one client abandoning a
	// compile never fails an identical concurrent request.
	res, tier, err := engine.GetTieredCtxTier(s.cache, ctx, key, core.ResultCodec(), func(ctx context.Context) (*core.Result, error) {
		ctx, adm := telemetry.Start(ctx, "admission")
		queued, err := s.admit(ctx)
		adm.SetBool("queued", queued)
		adm.End()
		if err != nil {
			return nil, err
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		circ, err := buildCirc()
		if err != nil {
			return nil, err
		}
		staged, err := s.stagedInput(c, circKey, circ)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		r, err := c.Compile(ctx, staged, a, compiler.Options{
			Key:        circKey,
			Artifacts:  s.artifacts,
			SARestarts: req.SARestarts,
			Workers:    s.compileWorkers(req.Workers),
		})
		if err == nil {
			s.recordLatency(c.Name(), time.Since(t0))
			s.recordPasses(c.Name(), r.Passes)
		}
		return r, err
	})
	s.compiles.Add(1)
	if err != nil {
		return nil, tier, err
	}

	out := &CompileResponse{
		Name:          res.Program.Name,
		NumQubits:     res.Program.NumQubits,
		Compiler:      c.Name(),
		Setting:       setting,
		Fidelity:      res.Breakdown,
		DurationUS:    res.Duration,
		CompileMS:     float64(res.CompileTime) / float64(time.Millisecond),
		RydbergStages: res.NumRydbergStages,
		RearrangeJobs: res.NumJobs,
		ReusedGates:   res.ReusedGates,
		Moves:         res.TotalMoves,
		Cached:        tier != engine.TierCompute,
	}
	if includeZAIR {
		// The exact encoding the zac CLI writes with -out, so service and
		// CLI output are byte-identical for the same compilation. Baseline
		// compilers are evaluation models: their program is header-only.
		raw, err := json.MarshalIndent(res.Program, "", " ")
		if err != nil {
			return nil, tier, fmt.Errorf("encoding ZAIR: %w", err)
		}
		out.ZAIR = raw
	}
	return out, tier, nil
}

// compileWorkers resolves one compilation's intra-compile worker budget from
// the request value (already validated non-negative). The default gives each
// admission slot an equal share of the cores, so compile slots ×
// per-compile workers ≈ NumCPU and a saturated server never oversubscribes;
// an explicit request value is honored but clamped to the machine. The
// budget never changes compiled bytes, only speed.
func (s *Server) compileWorkers(requested int) int {
	cores := engine.Workers(0)
	if requested > 0 {
		if requested > cores {
			return cores
		}
		return requested
	}
	w := cores / cap(s.sem)
	if w < 1 {
		w = 1
	}
	return w
}

// admit acquires a compile slot through the bounded admission queue: a free
// slot is taken immediately; otherwise the caller waits in the queue unless
// it is already at QueueDepth, in which case the request is shed with
// ErrOverloaded (Transient-wrapped, so the cache never memoizes a rejection
// against the key). Cache hits never reach admission — only work that would
// actually occupy a compile slot can be shed. The bool reports whether the
// caller had to queue (false on the fast path and on a shed).
func (s *Server) admit(ctx context.Context) (bool, error) {
	select {
	case s.sem <- struct{}{}:
		return false, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.QueueDepth) {
		s.waiting.Add(-1)
		s.shed.Add(1)
		return false, engine.Transient(ErrOverloaded)
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true, nil
	case <-ctx.Done():
		return true, ctx.Err() // don't queue dead work ahead of live requests
	}
}

// stagedInput preprocesses the circuit for the chosen compiler through the
// pass-artifact cache, shaped by the registry-wide StageSplitCap rule:
// ZAC-family compilers consume the unsplit staging (so the service's ZAIR
// stays byte-identical to the `zac` CLI) and baselines split to the zoned
// reference capacity, matching the experiment harness.
func (s *Server) stagedInput(c compiler.Compiler, circKey string, circ *circuit.Circuit) (*circuit.Staged, error) {
	return s.artifacts.Staged(circKey, compiler.StageSplitCap(c), func() (*circuit.Staged, error) {
		return resynth.Preprocess(circ)
	})
}

// resolveCompiler picks the registry compiler for one request — the
// request's "compiler", its legacy "setting" (the Fig. 11 legend names are
// registered aliases), the query-level default, or full ZAC — and returns
// it with the setting string echoed in responses (the ablation preset for
// ZAC-family compilers, the compiler name otherwise).
func resolveCompiler(req CompileRequest, defaultCompiler string) (compiler.Compiler, string, error) {
	name := req.Compiler
	if name == "" {
		name = req.Setting
	}
	if name == "" {
		name = defaultCompiler
	}
	if name == "" {
		name = "zac"
	}
	c, err := compiler.Get(name)
	if err != nil {
		return nil, "", err
	}
	setting := c.Name()
	if s, ok := compiler.Setting(c.Name()); ok {
		setting = s
	}
	return c, setting, nil
}

// resolveCircuit validates the request's circuit source and returns a lazy
// builder plus the circuit component of the cache key (benchmark name,
// canonical workload spec, or content digest for inline QASM). Validation
// (unknown benchmark, malformed QASM, out-of-range spec) happens eagerly so
// bad requests 400 immediately, but materializing the circuit is deferred
// to the builder, which compileOne invokes only on a cache miss *inside*
// the compile semaphore — so a request naming a large generated workload
// cannot allocate outside the service's concurrency bound.
func resolveCircuit(req CompileRequest) (func() (*circuit.Circuit, error), string, error) {
	set := 0
	for _, s := range []string{req.Circuit, req.QASM, req.Workload} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, "", fmt.Errorf("set exactly one of \"circuit\", \"qasm\", and \"workload\"")
	}
	switch {
	case req.Workload != "":
		spec, err := workload.Parse(req.Workload)
		if err != nil {
			return nil, "", err
		}
		// The canonical spec keys the cache: requests spelling the same
		// workload differently share one entry.
		return spec.Generate, "workload=" + spec.Canonical(), nil
	case req.Circuit != "":
		b, err := bench.ByName(req.Circuit)
		if err != nil {
			return nil, "", err
		}
		return func() (*circuit.Circuit, error) { return b.Build(), nil }, "circ=" + req.Circuit, nil
	case req.QASM != "":
		c, err := qasm.Parse(req.QASM)
		if err != nil {
			return nil, "", fmt.Errorf("parsing qasm: %w", err)
		}
		name := req.Name
		if name == "" {
			name = "qasm"
		}
		c.Name = name
		key := fmt.Sprintf("qasm=%x|name=%s", sha256.Sum256([]byte(req.QASM)), name)
		return func() (*circuit.Circuit, error) { return c, nil }, key, nil
	default:
		return nil, "", fmt.Errorf("set \"circuit\" (built-in benchmark), \"qasm\" (inline source), or \"workload\" (generator spec)")
	}
}

// resolveArch decodes the request's architecture (default: the compiler's
// target architecture — the paper's reference for ZAC and the zoned
// baselines, the monolithic grid for Enola and Atomique) and applies the
// AOD override.
func resolveArch(req CompileRequest, c compiler.Compiler) (*arch.Architecture, error) {
	a := compiler.TargetArch(c)
	if len(req.Arch) > 0 {
		a = &arch.Architecture{}
		if err := json.Unmarshal(req.Arch, a); err != nil {
			return nil, fmt.Errorf("parsing arch: %w", err)
		}
	}
	if req.AODs > 0 {
		a = arch.WithAODs(a, req.AODs)
	}
	return a, nil
}

// recordLatency folds one fresh compilation into the per-compiler
// aggregate.
func (s *Server) recordLatency(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	record(s.latency, name, d)
}

// recordPasses folds one fresh compilation's pass timings into the
// per-(compiler, pass) aggregates.
func (s *Server) recordPasses(name string, passes []core.PassTiming) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range passes {
		record(s.passes, name+"/"+p.Pass, p.Duration)
	}
}

// record folds one duration into the keyed aggregate map (caller holds the
// lock).
func record(m map[string]*latencyAgg, key string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	agg := m[key]
	if agg == nil {
		agg = &latencyAgg{}
		m[key] = agg
	}
	agg.count++
	agg.totalMS += ms
	if ms > agg.maxMS {
		agg.maxMS = ms
	}
}

// CacheStats exposes the whole-compile cache hierarchy's counters (used by
// tests and the metrics endpoint).
func (s *Server) CacheStats() engine.TieredStats { return s.cache.Stats() }

// PassCacheStats exposes the pass-artifact cache's counters.
func (s *Server) PassCacheStats() engine.TieredStats { return s.artifacts.Stats() }

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError writes err as an ErrorResponse with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
