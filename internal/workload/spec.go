package workload

import (
	"fmt"
	"strconv"
	"strings"

	"zac/internal/circuit"
)

// SpecPrefix is the surface-level marker distinguishing a workload spec from
// a built-in benchmark name (e.g. `zac -circuit spec:rb:n=32,depth=20,seed=7`).
// Parse strips it when present; Canonical never includes it.
const SpecPrefix = "spec:"

// Spec is a parsed workload spec: a registered family plus fully-populated
// parameter values. Its canonical string form is the cache key every surface
// shares.
type Spec struct {
	Family string
	Values Values
}

// Parse parses a spec string of the grammar
//
//	["spec:"] family [":" key "=" int { "," key "=" int }]
//
// against the registry: the family must be registered, every key must be in
// its schema, values must be integers within the schema's bounds, and
// omitted keys take their defaults. Whitespace around tokens is ignored.
func Parse(spec string) (Spec, error) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(spec), SpecPrefix))
	family, rest, _ := strings.Cut(s, ":")
	family = canonical(family)
	if family == "" {
		return Spec{}, fmt.Errorf("workload: empty spec %q", spec)
	}
	g, err := Get(family)
	if err != nil {
		return Spec{}, err
	}
	schema := map[string]Param{}
	for _, p := range g.Params() {
		schema[p.Name] = p
	}
	out := Spec{Family: family, Values: Values{}}
	if rest = strings.TrimSpace(rest); rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			key = strings.TrimSpace(key)
			if !ok || key == "" {
				return Spec{}, fmt.Errorf("workload: %s: malformed parameter %q (want key=int)", family, kv)
			}
			p, known := schema[key]
			if !known {
				return Spec{}, fmt.Errorf("workload: %s: unknown parameter %q (schema: %s)", family, key, schemaKeys(g))
			}
			if _, dup := out.Values[key]; dup {
				return Spec{}, fmt.Errorf("workload: %s: duplicate parameter %q", family, key)
			}
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("workload: %s: parameter %s: bad integer %q", family, key, strings.TrimSpace(val))
			}
			if n < p.Min || (p.Max > 0 && n > p.Max) {
				return Spec{}, fmt.Errorf("workload: %s: parameter %s=%d out of range [%d,%s]", family, key, n, p.Min, maxLabel(p))
			}
			out.Values[key] = n
		}
	}
	for _, p := range g.Params() {
		if _, set := out.Values[p.Name]; !set {
			out.Values[p.Name] = p.Default
		}
	}
	if n, ok := g.(Normalizer); ok {
		n.Normalize(out.Values)
	}
	return out, nil
}

// Canonical renders the spec in its canonical form: family, then every
// schema parameter in schema order with explicit values. Two specs that
// generate the same circuit render identically, so the canonical string is a
// safe cache key.
func (s Spec) Canonical() string {
	g, vals, err := s.normalized()
	if err != nil {
		return s.Family
	}
	var b strings.Builder
	b.WriteString(canonical(s.Family))
	for i, p := range g.Params() {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", p.Name, vals[p.Name])
	}
	return b.String()
}

// normalized resolves the spec's generator and returns a fresh Values with
// defaults filled and the family's Normalize hook applied — the one place
// the canonical string and the generated circuit are kept in lockstep (both
// Canonical and Generate go through it).
func (s Spec) normalized() (Generator, Values, error) {
	g, err := Get(s.Family)
	if err != nil {
		return nil, nil, err
	}
	vals := Values{}
	for _, p := range g.Params() {
		v, ok := s.Values[p.Name]
		if !ok {
			v = p.Default
		}
		vals[p.Name] = v
	}
	if n, ok := g.(Normalizer); ok {
		n.Normalize(vals)
	}
	return g, vals, nil
}

// Generate builds the spec's circuit and names it after the canonical spec.
// Values are normalized first, so a hand-built Spec (e.g. RandomSpec)
// generates exactly the circuit its canonical string describes.
func (s Spec) Generate() (*circuit.Circuit, error) {
	g, vals, err := s.normalized()
	if err != nil {
		return nil, err
	}
	c, err := g.Generate(vals)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", s.Canonical(), err)
	}
	c.Name = s.Canonical()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: generated invalid circuit: %w", s.Canonical(), err)
	}
	return c, nil
}

// IsSpec reports whether name looks like a workload spec rather than a
// built-in benchmark name: it carries the "spec:" prefix or names a
// registered family (optionally with parameters).
func IsSpec(name string) bool {
	name = strings.TrimSpace(name)
	if strings.HasPrefix(name, SpecPrefix) {
		return true
	}
	family, _, _ := strings.Cut(name, ":")
	_, err := Get(family)
	return err == nil
}

// schemaKeys renders a generator's parameter names for error messages.
func schemaKeys(g Generator) string {
	var keys []string
	for _, p := range g.Params() {
		keys = append(keys, p.Name)
	}
	return strings.Join(keys, ", ")
}

// maxLabel renders a parameter's upper bound ("∞" when unbounded).
func maxLabel(p Param) string {
	if p.Max <= 0 {
		return "∞"
	}
	return strconv.FormatInt(p.Max, 10)
}
