// Command zac-serve runs the ZAC compiler as a long-lived HTTP service: it
// accepts OpenQASM programs (or built-in benchmark names) plus JSON
// architecture specs, compiles them with bounded concurrency, and returns
// the ZAIR program and fidelity breakdown as JSON. Results are memoized in
// the engine's tiered cache; with -cachedir they persist to disk and are
// shared with zac-bench and zairsim runs pointed at the same directory.
//
// Every compile records a telemetry trace (bounded ring, -traces entries;
// -traces 0 disables): the response carries a trace_id, GET /v1/traces
// lists recent traces, GET /v1/traces/{id} shows one span tree, and
// ?format=chrome (or -traceout FILE at shutdown) exports Chrome trace_event
// JSON loadable in Perfetto. Logs are structured (log/slog); -logjson
// switches them to JSON.
//
// With -pprof the standard net/http/pprof endpoints are mounted under
// /debug/pprof/ so a live service can be CPU- or heap-profiled under load.
//
//	zac-serve -addr :8756 -cachedir ~/.cache/zac
//	zac-serve -addr :8756 -pprof -logjson
//	curl -s localhost:8756/healthz
//	curl -s -X POST localhost:8756/v1/compile -d '{"circuit":"ghz_n23"}'
//	curl -s localhost:8756/metrics               # JSON
//	curl -s localhost:8756/metrics?format=prom   # Prometheus text format
//	curl -s localhost:8756/v1/traces
//
// See README.md for the full API reference.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"zac/internal/engine"
	"zac/internal/serve"
	"zac/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8756", "listen address")
	cacheDir := flag.String("cachedir", "", "persistent compilation-cache directory shared with zac-bench and zairsim")
	cacheMB := flag.Int64("cachemb", 0, "disk cache size bound in MiB (0 = unbounded; needs -cachedir)")
	parallel := flag.Int("parallel", 0, "max concurrent compilations (0 = all CPUs)")
	memEntries := flag.Int("mementries", 4096, "in-memory cache capacity in entries (0 = unbounded)")
	maxBatch := flag.Int("maxbatch", 64, "max requests per batch")
	queueDepth := flag.Int("queuedepth", 0, "compile admission queue bound; requests beyond it are shed with 429 (0 = default)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profile live compilations)")
	traces := flag.Int("traces", telemetry.DefaultCapacity, "telemetry trace ring capacity (0 disables request tracing)")
	traceOut := flag.String("traceout", "", "write retained traces as Chrome trace_event JSON to this file at shutdown")
	logJSON := flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	var handlerOpts slog.HandlerOptions
	var logHandler slog.Handler = slog.NewTextHandler(os.Stderr, &handlerOpts)
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, &handlerOpts)
	}
	logger := slog.New(logHandler)

	var recorder *telemetry.Recorder
	if *traces > 0 {
		recorder = telemetry.NewRecorder(*traces)
	}

	opts := serve.Options{
		Parallel: *parallel, MemEntries: *memEntries, MaxBatch: *maxBatch,
		QueueDepth: *queueDepth, Telemetry: recorder, Logger: logger,
	}
	if *cacheDir != "" {
		disk, err := engine.OpenDiskCache(*cacheDir, *cacheMB<<20)
		if err != nil {
			logger.Error("opening disk cache", "dir", *cacheDir, "err", err)
			os.Exit(1)
		}
		opts.Disk = disk
		st := disk.Stats()
		logger.Info("disk cache attached", "dir", disk.Dir(), "entries", st.Entries, "bytes", st.Bytes)
	}

	srv := serve.New(opts)
	if *cacheDir != "" {
		// The async-job journal lives next to the compile cache: accepted
		// jobs a previous process never finished are replayed here, before
		// the listener accepts traffic.
		replayed, err := srv.OpenJournal(filepath.Join(*cacheDir, "jobs"))
		if err != nil {
			logger.Error("opening job journal", "err", err)
			os.Exit(1)
		}
		if replayed > 0 {
			logger.Info("replaying journaled jobs", "jobs", replayed)
		}
	}
	handler := srv.Handler()
	if *pprofOn {
		// Mount the profiling endpoints next to the API so a live service
		// under load can be profiled with
		// `go tool pprof host:port/debug/pprof/profile`.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound slow/idle clients so a handful of stalled connections
		// (slowloris) cannot pin listener resources forever. Request bodies
		// are small JSON documents; only compilation itself is long-running.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "tracing", recorder != nil)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain sequence: flip /readyz to 503 and refuse new compiles, let
	// in-flight HTTP requests finish, then wait (briefly) for background
	// jobs. Jobs still running at the deadline stay journaled and are
	// replayed by the next process, so SIGTERM never loses an accepted job.
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	drainErr := srv.Drain(shutdownCtx)
	writeTraceOut(logger, recorder, *traceOut)
	if drainErr != nil {
		logger.Warn("drain deadline: unfinished jobs remain journaled for replay")
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// writeTraceOut dumps the recorder's retained traces as Chrome trace_event
// JSON — the whole process's request history on one Perfetto timeline.
func writeTraceOut(logger *slog.Logger, recorder *telemetry.Recorder, path string) {
	if path == "" || recorder == nil {
		return
	}
	data, err := telemetry.ChromeTrace(recorder.Dump())
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		logger.Error("writing trace export", "path", path, "err", err)
		return
	}
	logger.Info("trace export written", "path", path, "traces", recorder.Len())
}
