#!/usr/bin/env bash
# bench-compare.sh [ref]
#
# Runs the ISSUE 3 placement micro-benchmarks (BenchmarkJVDense,
# BenchmarkJVSparse, BenchmarkSAInitial, BenchmarkBuildPlan) on the working
# tree and on a baseline git ref (default: HEAD), then emits BENCH_3.json
# with ns/op, B/op and allocs/op per benchmark plus current-vs-baseline
# speedups. Benchmarks missing at the ref (e.g. a pre-PR-3 tree) simply
# yield no baseline entry.
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 5x)
#   BENCH_OUT  output path (default BENCH_3.json)
set -euo pipefail
cd "$(dirname "$0")/.."

REF="${1:-HEAD}"
BENCHTIME="${BENCHTIME:-5x}"
OUT="${BENCH_OUT:-BENCH_3.json}"
PATTERN='BenchmarkJVDense|BenchmarkJVSparse|BenchmarkSAInitial|BenchmarkBuildPlan'
PKGS="./internal/matching ./internal/place"

run_bench() { # run_bench <dir> <out.tsv> [allow-fail]
  # allow-fail is only for the baseline ref, which may predate the
  # benchmarks; a failure on the current tree must abort the script.
  local dir="$1" out="$2" allow="${3:-}" raw
  raw="$(mktemp)"
  if ! (cd "$dir" && go test -run xxx -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" $PKGS) > "$raw" 2>&1; then
    if [ -z "$allow" ]; then
      cat "$raw" >&2
      rm -f "$raw"
      echo "bench-compare: benchmarks failed in $dir" >&2
      exit 1
    fi
    echo "bench-compare: baseline benchmarks unavailable in $dir (ok)" >&2
  fi
  awk '/^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      print name "\t" ns "\t" bop "\t" aop
    }' "$raw" > "$out"
  rm -f "$raw"
}

CUR_TSV="$(mktemp)"
REF_TSV="$(mktemp)"
WORKDIR="$(mktemp -d)"
WORKTREE="$WORKDIR/ref"
cleanup() {
  rm -f "$CUR_TSV" "$REF_TSV"
  if [ -d "$WORKTREE" ]; then
    git worktree remove --force "$WORKTREE" >/dev/null 2>&1 || true
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "bench-compare: current tree ($(git rev-parse --short HEAD)${REF:+, baseline $REF})" >&2
run_bench . "$CUR_TSV"

if git worktree add --detach "$WORKTREE" "$REF" >/dev/null 2>&1; then
  run_bench "$WORKTREE" "$REF_TSV" allow-fail
else
  echo "bench-compare: cannot check out $REF; baseline omitted" >&2
  : > "$REF_TSV"
fi

REF_SHA="$(git rev-parse "$REF" 2>/dev/null || echo unknown)"
awk -v ref="$REF" -v refsha="$REF_SHA" -v benchtime="$BENCHTIME" '
  function emit(file,   line, f, sep, out) {
    sep = ""; out = ""
    while ((getline line < file) > 0) {
      split(line, f, "\t")
      out = out sep sprintf("\n    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", f[1], f[2], f[3], f[4])
      sep = ","
    }
    close(file)
    return out
  }
  function speedups(curf, reff,   line, f, cur, out, sep) {
    while ((getline line < curf) > 0) { split(line, f, "\t"); cur[f[1]] = f[2] }
    close(curf)
    sep = ""; out = ""
    while ((getline line < reff) > 0) {
      split(line, f, "\t")
      if (f[1] in cur && cur[f[1]] + 0 > 0 && f[2] != "null") {
        out = out sep sprintf("\n    \"%s\": %.2f", f[1], f[2] / cur[f[1]])
        sep = ","
      }
    }
    close(reff)
    return out
  }
  BEGIN {
    printf "{\n"
    printf "  \"baseline_ref\": \"%s\",\n", ref
    printf "  \"baseline_sha\": \"%s\",\n", refsha
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"current\": {%s\n  },\n", emit(ARGV[1])
    printf "  \"baseline\": {%s\n  },\n", emit(ARGV[2])
    printf "  \"speedup_vs_baseline\": {%s\n  }\n", speedups(ARGV[1], ARGV[2])
    printf "}\n"
  }
' "$CUR_TSV" "$REF_TSV" > "$OUT"

echo "bench-compare: wrote $OUT" >&2
cat "$OUT"
