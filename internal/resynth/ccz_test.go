package resynth

import (
	"math"
	"testing"

	"zac/internal/circuit"
	"zac/internal/sim"
)

func TestPreprocessNativeCCZKeepsCCZ(t *testing.T) {
	c := circuit.New("toffoli", 3)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.H, []int{1})
	c.Append(circuit.CCZ, []int{0, 1, 2})
	c.Append(circuit.CCX, []int{0, 1, 2})
	st, err := PreprocessNativeCCZ(c)
	if err != nil {
		t.Fatal(err)
	}
	ccz := 0
	for _, stage := range st.Stages {
		for _, g := range stage.Gates {
			if g.Kind == circuit.CCZ {
				ccz++
			}
			if g.Kind == circuit.CZ {
				t.Errorf("unexpected decomposed CZ: %v", g)
			}
		}
	}
	if ccz != 2 {
		t.Fatalf("native CCZ count = %d, want 2 (CCZ + CCX→CCZ)", ccz)
	}
}

func TestNativeCCZEquivalence(t *testing.T) {
	// The native-CCZ pipeline must preserve semantics exactly like the
	// decomposed one.
	c := circuit.New("mix", 4)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.H, []int{1})
	c.Append(circuit.T, []int{2})
	c.Append(circuit.CCX, []int{0, 1, 2})
	c.Append(circuit.CX, []int{2, 3})
	c.Append(circuit.CCZ, []int{1, 2, 3})
	c.Append(circuit.RY, []int{0}, 0.4)

	st, err := PreprocessNativeCCZ(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	sa, err := sim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.Run(st.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
		t.Fatalf("native-CCZ pipeline changed semantics: fidelity %v", f)
	}
}

func TestNativeCCZReducesEntanglingCount(t *testing.T) {
	c := circuit.New("toffolis", 6)
	for i := 0; i+2 < 6; i++ {
		c.Append(circuit.CCX, []int{i, i + 1, i + 2})
	}
	plain, err := Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	native, err := PreprocessNativeCCZ(c)
	if err != nil {
		t.Fatal(err)
	}
	_, plainE := plain.GateCounts()
	_, nativeE := native.GateCounts()
	if nativeE*6 != plainE {
		t.Errorf("native %d entangling gates vs decomposed %d (expect 6× reduction)", nativeE, plainE)
	}
}

func TestNativeCSwapEquivalence(t *testing.T) {
	c := circuit.New("fredkin", 4)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.RY, []int{1}, 0.7)
	c.Append(circuit.X, []int{2})
	c.Append(circuit.CSWAP, []int{0, 1, 2})
	c.Append(circuit.CX, []int{2, 3})

	st, err := PreprocessNativeCCZ(c)
	if err != nil {
		t.Fatal(err)
	}
	// Must contain a native CCZ (from the Fredkin) and no 6-CZ expansion.
	ccz := 0
	for _, stage := range st.Stages {
		for _, g := range stage.Gates {
			if g.Kind == circuit.CCZ {
				ccz++
			}
		}
	}
	if ccz != 1 {
		t.Fatalf("native CCZ count = %d, want 1", ccz)
	}
	sa, _ := sim.Run(c)
	sb, _ := sim.Run(st.Flatten())
	if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
		t.Fatalf("native CSWAP path changed semantics: %v", f)
	}
}

func TestScheduleCCZStageDisjoint(t *testing.T) {
	c := circuit.New("par", 6)
	c.Append(circuit.CCZ, []int{0, 1, 2})
	c.Append(circuit.CCZ, []int{3, 4, 5}) // parallel
	c.Append(circuit.CCZ, []int{2, 3, 4}) // depends on both
	st, err := PreprocessNativeCCZ(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.NumRydbergStages(); got != 2 {
		t.Fatalf("stages = %d, want 2", got)
	}
	if n := len(st.Stages[st.RydbergStages()[0]].Gates); n != 2 {
		t.Errorf("first stage gates = %d, want 2", n)
	}
}
