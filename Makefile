# Development entry points. `make check` is what CI enforces on every PR.

GO ?= go

.PHONY: check vet doclint build test race bench bench-micro bench-compare bench-regress bench-regress-rebase benchsuite benchsuite-smoke benchsuite-report fuzz-smoke fuzz-diff fuzz-diff-smoke serve-smoke telemetry-smoke chaos-smoke

check: vet doclint build race

vet:
	$(GO) vet ./...

# Documentation gate: every package needs a package doc comment, and every
# exported identifier in the engine and serve packages needs its own.
doclint:
	$(GO) run ./cmd/zac-doclint -exported internal/engine,internal/serve ./internal ./cmd ./examples

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkSuite(Sequential|Parallel)' -benchtime 2x .

# Placement hot-path micro-benchmarks (ISSUE 3): JV matching, SA initial
# placement, and the full BuildPlan pipeline, with allocation counts.
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkJVDense|BenchmarkJVSparse|BenchmarkSAInitial|BenchmarkBuildPlan' -benchmem ./internal/matching ./internal/place

# Diff the micro-benchmarks against a baseline ref (default HEAD) and emit
# BENCH_3.json: make bench-compare REF=<ref>.
REF ?= HEAD
bench-compare:
	./scripts/bench-compare.sh $(REF)

# Regression gate: observatory run + Mann-Whitney gate vs the store's
# previous commit on this machine; falls back to the >20% raw threshold vs
# the recorded BENCH_3.json numbers when the store has no comparable
# baseline yet, and emits BENCH_4.json either way.
bench-regress:
	./scripts/bench-regress.sh

# Performance observatory (ISSUE 7): full micro matrix with statistical
# repetitions into the persistent store, for trend queries and the
# bench-regress gate. `zac-benchsuite -h` lists the other surfaces
# (trend, report, gate, export).
benchsuite:
	$(GO) run ./cmd/zac-benchsuite run -matrix micro -reps 10 -store .zac-benchstore -progress

# Render the observatory store as a markdown report on stdout.
benchsuite-report:
	$(GO) run ./cmd/zac-benchsuite report -store .zac-benchstore

# Observatory smoke (CI): two smoke runs populate a throwaway store, a
# trend query spans both, the gate passes a noise-only rerun and flags a
# seeded 2× slowdown, and the report/export surfaces render.
benchsuite-smoke:
	./scripts/benchsuite-smoke.sh

# Hardware-independent gate: regenerate the baseline ON THIS MACHINE at the
# commit that recorded BENCH_3.json (throwaway worktree → BENCH_local.json),
# then apply the 20% threshold against those local numbers.
bench-regress-rebase:
	./scripts/bench-regress.sh --rebase

# Round-trip fuzz gate: the pinned workload specs through every registry
# compiler with invariant verification (ZAIR replay, gate-set legality,
# statevector equivalence, fidelity sanity). Nightly-scale runs:
# `go run ./cmd/zac-fuzz -duration 10m`.
fuzz-smoke:
	$(GO) run ./cmd/zac-fuzz -smoke

# Differential oracle gate: cross-check every registry compiler over the
# pinned smoke specs (compile-outcome agreement, ZAIR replay, resource
# accounting, repeat-compile determinism, ablation fidelity ordering) and
# print the per-class divergence summary with feature counters. ~seconds.
fuzz-diff-smoke:
	$(GO) run ./cmd/zac-fuzz -diff -smoke

# Coverage-guided differential fuzzing: the smoke specs seed a mutation
# loop (spec parameters + gate-level edits) steered by per-pass and
# planner-branch feature counters; divergences shrink into corpus/.
# Longer random runs: `go run ./cmd/zac-fuzz -diff -n 100 -mutate 200`.
fuzz-diff:
	$(GO) run ./cmd/zac-fuzz -diff -smoke -mutate 64 -corpus corpus

# Boot zac-serve against a throwaway cache dir, probe /healthz, compile one
# circuit, and check /metrics — the same smoke CI runs.
serve-smoke:
	./scripts/serve-smoke.sh

# Telemetry gate: boot zac-serve with tracing + JSON logs, compile once,
# assert the trace covers admission, both cache tiers, and every pipeline
# pass, and that the Chrome trace_event export (live and -traceout) is
# valid JSON.
telemetry-smoke:
	./scripts/telemetry-smoke.sh

# Resilience gate: the pinned-seed fault-injection suites (admission
# shedding, deadline mapping, journal replay, disk breaker trip/recovery,
# cache self-healing under torn writes) plus an end-to-end crash-recovery
# drill against the zac-serve binary (journal replay on boot, SIGTERM
# drain).
chaos-smoke:
	./scripts/chaos-smoke.sh
