// Command zac-bench regenerates the paper's tables and figures as text
// tables (and optionally CSV). Each experiment id matches DESIGN.md's
// per-experiment index:
//
//	zac-bench -experiment fig8
//	zac-bench -experiment fig9 -circuits bv_n14,ghz_n23
//	zac-bench -experiment all -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zac/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: full suite)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	flag.Parse()

	if *list {
		for _, n := range experiments.Registry() {
			fmt.Println(n)
		}
		return
	}

	var subset []string
	if *circuits != "" {
		subset = strings.Split(*circuits, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Registry()
	}

	for _, id := range ids {
		tables, err := experiments.Run(id, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i, t := range tables {
			fmt.Println(t.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", id, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Println("[INFO] Finish Compilation")
}
