package place

import (
	"math"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
)

// TestGatePlacementMatchesBruteForce validates the Jonker–Volgenant gate
// placement against exhaustive search on tiny instances: for every
// assignment of gates to candidate sites, the JV solution must achieve the
// minimum total Eq. 1 cost.
func TestGatePlacementMatchesBruteForce(t *testing.T) {
	a := arch.Reference()
	// Three gates over six qubits parked in the storage row nearest the
	// entanglement zone, spread out to make costs distinct.
	traps := []arch.TrapRef{
		{Zone: 0, SLM: 0, Row: 99, Col: 0},
		{Zone: 0, SLM: 0, Row: 99, Col: 10},
		{Zone: 0, SLM: 0, Row: 99, Col: 25},
		{Zone: 0, SLM: 0, Row: 99, Col: 40},
		{Zone: 0, SLM: 0, Row: 99, Col: 60},
		{Zone: 0, SLM: 0, Row: 99, Col: 80},
	}
	pos := make([]Pos, 6)
	for q, tr := range traps {
		pos[q] = StoragePos(tr)
	}
	gates := []circuit.Gate{
		circuit.NewGate(circuit.CZ, []int{0, 1}),
		circuit.NewGate(circuit.CZ, []int{2, 3}),
		circuit.NewGate(circuit.CZ, []int{4, 5}),
	}
	gateIdx := []int{0, 1, 2}
	sc := newTransitionScratch(a, 6)
	assign, _, err := gatePlacement(a, gates, gateIdx, pos, nil, nil, 2, sc, nil)
	if err != nil {
		t.Fatal(err)
	}

	jvCost := 0.0
	for k, gi := range gateIdx {
		g := gates[gi]
		jvCost += gateCost(a, a.SitePos(assign[k]),
			pos[g.Qubits[0]].Point(a), pos[g.Qubits[1]].Point(a))
	}

	// Brute force over the union of each gate's candidate sites.
	var cands [][]arch.SiteRef
	for _, gi := range gateIdx {
		g := gates[gi]
		pts := []geom.Point{pos[g.Qubits[0]].Point(a), pos[g.Qubits[1]].Point(a)}
		cands = append(cands, candidateSites(a, pts, 2, nil))
	}
	best := math.Inf(1)
	var rec func(gi int, used map[arch.SiteRef]bool, acc float64)
	rec = func(gi int, used map[arch.SiteRef]bool, acc float64) {
		if acc >= best {
			return
		}
		if gi == len(gateIdx) {
			best = acc
			return
		}
		g := gates[gateIdx[gi]]
		p1, p2 := pos[g.Qubits[0]].Point(a), pos[g.Qubits[1]].Point(a)
		for _, s := range cands[gi] {
			if used[s] {
				continue
			}
			used[s] = true
			rec(gi+1, used, acc+gateCost(a, a.SitePos(s), p1, p2))
			delete(used, s)
		}
	}
	rec(0, map[arch.SiteRef]bool{}, 0)

	if jvCost > best+1e-9 {
		t.Fatalf("JV placement cost %v exceeds brute-force optimum %v", jvCost, best)
	}
}

// TestReturnPlacementMatchesBruteForce does the same for the storage-return
// matching (Eq. 3 costs).
func TestReturnPlacementMatchesBruteForce(t *testing.T) {
	a := arch.Reference()
	// Two qubits at entanglement sites returning to storage.
	pos := make([]Pos, 4)
	pos[0] = SitePos(arch.SiteRef{Zone: 0, Row: 0, Col: 2}, 0)
	pos[1] = SitePos(arch.SiteRef{Zone: 0, Row: 0, Col: 5}, 1)
	// Related qubits parked in storage.
	pos[2] = StoragePos(arch.TrapRef{Zone: 0, SLM: 0, Row: 99, Col: 30})
	pos[3] = StoragePos(arch.TrapRef{Zone: 0, SLM: 0, Row: 99, Col: 70})
	home := []arch.TrapRef{
		{Zone: 0, SLM: 0, Row: 99, Col: 3},
		{Zone: 0, SLM: 0, Row: 99, Col: 60},
		{Zone: 0, SLM: 0, Row: 99, Col: 30},
		{Zone: 0, SLM: 0, Row: 99, Col: 70},
	}
	occupied := newOccupancy(a)
	occupied[a.TrapOrdinal(home[2])] = 2
	occupied[a.TrapOrdinal(home[3])] = 3
	related := []int32{2, 3, -1, -1}
	const alpha = 0.1

	qubits := []int{0, 1}
	sc := newTransitionScratch(a, 4)
	assign, got, err := returnPlacement(a, qubits, pos, home, related, occupied, 2, alpha, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute cost from the assignment.
	recost := 0.0
	for i, q := range qubits {
		tr := assign[i]
		recost += moveCost(a, pos[q].Point(a), a.TrapPos(tr))
		recost += alpha * moveCost(a, pos[related[q]].Point(a), a.TrapPos(tr))
	}
	if math.Abs(recost-got) > 1e-9 {
		t.Fatalf("reported cost %v != recomputed %v", got, recost)
	}

	// Brute force over each qubit's candidates.
	c0 := candidateTraps(a, 0, pos, home, related, occupied, 2)
	c1 := candidateTraps(a, 1, pos, home, related, occupied, 2)
	best := math.Inf(1)
	for _, t0 := range c0 {
		for _, t1 := range c1 {
			if t0 == t1 {
				continue
			}
			c := moveCost(a, pos[0].Point(a), a.TrapPos(t0)) +
				alpha*moveCost(a, pos[2].Point(a), a.TrapPos(t0)) +
				moveCost(a, pos[1].Point(a), a.TrapPos(t1)) +
				alpha*moveCost(a, pos[3].Point(a), a.TrapPos(t1))
			if c < best {
				best = c
			}
		}
	}
	if got > best+1e-9 {
		t.Fatalf("JV return cost %v exceeds brute-force optimum %v", got, best)
	}
}

// TestPaperExampleGatePlacementCost reproduces the paper's Fig. 6b worked
// cost: the edge weight between g0 and ω0,0 is 4.05 + 3.28, where the
// second term is the lookahead of moving q2 (at s3,1 → x=3?) toward the
// site. We verify the first term exactly and that lookahead adds a positive
// term.
func TestPaperExampleGatePlacementCost(t *testing.T) {
	a := arch.Reference()
	// Recreate Fig. 5's geometry in a local frame: site ω0,0 at (0,19),
	// q0 at (13,9), q1 at (1,9) — same row → max rule → 4.05.
	site := geom.Point{X: 0, Y: 19}
	c := gateCost(a, site, geom.Point{X: 13, Y: 9}, geom.Point{X: 1, Y: 9})
	if math.Abs(c-4.05) > 0.01 {
		t.Fatalf("gate cost = %v, want 4.05", c)
	}
	look := moveCost(a, geom.Point{X: 13, Y: 9}, site)
	if look <= 0 {
		t.Fatal("lookahead term must be positive")
	}
}
