package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 19}, Point{13, 9}, math.Sqrt(13*13 + 10*10)}, // paper's Fig. 5 example: d(ω00, s34)=16.40
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPaperDistanceExample(t *testing.T) {
	// Fig. 5: d(ω0,0, s3,4) = 16.40 and d(ω0,0, s3,0) = 10.05.
	site := Point{0, 19}
	s34 := Point{13, 9}
	s30 := Point{1, 9}
	if d := site.Dist(s34); math.Abs(d-16.40) > 0.01 {
		t.Errorf("d(site, s34) = %.3f, want 16.40", d)
	}
	if d := site.Dist(s30); math.Abs(d-10.05) > 0.01 {
		t.Errorf("d(site, s30) = %.3f, want 10.05", d)
	}
}

func TestMoveTime(t *testing.T) {
	if MoveTime(0) != 0 {
		t.Error("zero distance must take zero time")
	}
	if MoveTime(-5) != 0 {
		t.Error("negative distance must take zero time")
	}
	// d = a * t^2: at t=100µs, d = 2.75e-3 * 1e4 = 27.5µm.
	if got := MoveTime(27.5); math.Abs(got-100) > 1e-9 {
		t.Errorf("MoveTime(27.5µm) = %v µs, want 100", got)
	}
	// The paper's ZAIR example: moving (32,10)µm takes ≈110.4µs so that the
	// whole job (15µs pickup + move + 15µs drop) spans ≈140.4µs.
	d := math.Sqrt(32*32 + 10*10)
	if got := MoveTime(d); math.Abs(got-110.4) > 0.5 {
		t.Errorf("MoveTime(%.2fµm) = %.2f µs, want ≈110.4", d, got)
	}
}

func TestMoveTimeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return MoveTime(a) <= MoveTime(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetricAndTriangle(t *testing.T) {
	sym := func(ax, ay, bx, by int16) bool {
		p, q := Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}
		return math.Abs(p.Dist(q)-q.Dist(p)) < 1e-9
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(ax, ay, bx, by, cx, cy int8) bool {
		p, q, r := Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}, Point{float64(cx), float64(cy)}
		return p.Dist(r) <= p.Dist(q)+q.Dist(r)+1e-9
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Size: Point{10, 5}}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) || !r.Contains(Point{5, 2}) {
		t.Error("Contains failed on inside/boundary points")
	}
	if r.Contains(Point{10.1, 0}) || r.Contains(Point{0, -0.1}) {
		t.Error("Contains accepted outside point")
	}
	s := Rect{Min: Point{9, 4}, Size: Point{3, 3}}
	if !r.Intersects(s) || !s.Intersects(r) {
		t.Error("Intersects failed on overlapping rects")
	}
	far := Rect{Min: Point{100, 100}, Size: Point{1, 1}}
	if r.Intersects(far) {
		t.Error("Intersects claimed overlap for disjoint rects")
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox()
	if !b.Empty() {
		t.Fatal("new bbox must be empty")
	}
	if b.Contains(Point{0, 0}) {
		t.Error("empty bbox must not contain anything")
	}
	b.Extend(Point{1, 2})
	b.Extend(Point{-3, 7})
	if b.Empty() {
		t.Error("bbox with points must not be empty")
	}
	for _, p := range []Point{{1, 2}, {-3, 7}, {0, 5}, {-3, 2}} {
		if !b.Contains(p) {
			t.Errorf("bbox should contain %v", p)
		}
	}
	if b.Contains(Point{2, 2}) || b.Contains(Point{0, 8}) {
		t.Error("bbox contains point outside")
	}
	if !b.ContainsXY(0, 5) {
		t.Error("ContainsXY mismatch")
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Point{3, 4}, Point{1, 1}
	if got := p.Sub(q); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != (Point{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
	if !p.Eq(Point{3.0000001, 4}, 1e-3) || p.Eq(q, 1e-3) {
		t.Error("Eq tolerance behaviour wrong")
	}
}
