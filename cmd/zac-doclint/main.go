// Command zac-doclint enforces the repo's documentation conventions as a CI
// gate, using only go/ast (no external linters):
//
//   - every package under the given roots must carry a `// Package ...` doc
//     comment on at least one of its files;
//   - within the packages named by -exported, every exported top-level
//     identifier (types, funcs, methods on exported receivers, consts,
//     vars) must carry a doc comment.
//
// Findings print one per line as path: message; a non-zero exit fails CI.
//
//	zac-doclint ./internal ./cmd ./examples
//	zac-doclint -exported internal/engine,internal/serve ./internal
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exported := flag.String("exported", "",
		"comma-separated directory prefixes whose exported identifiers must all carry doc comments")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	var strict []string
	if *exported != "" {
		for _, p := range strings.Split(*exported, ",") {
			strict = append(strict, filepath.Clean(strings.TrimSpace(p)))
		}
	}

	dirs := map[string]bool{}
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, de fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if de.IsDir() {
				if name := de.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return fs.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
	}

	var findings []string
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, dir := range sorted {
		findings = append(findings, lintDir(dir, isStrict(dir, strict))...)
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "zac-doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// isStrict reports whether dir falls under one of the strict prefixes.
func isStrict(dir string, strict []string) bool {
	clean := filepath.Clean(dir)
	for _, p := range strict {
		if clean == p || strings.HasPrefix(clean, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// lintDir checks one package directory. Test files are skipped entirely.
func lintDir(dir string, strict bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse: %v", dir, err)}
	}

	var findings []string
	for name, pkg := range pkgs {
		// Library packages need the `// Package name ...` form; main
		// packages follow the `// Command name ...` convention, so any doc
		// comment counts.
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc == nil {
				continue
			}
			if name == "main" || strings.HasPrefix(strings.TrimSpace(f.Doc.Text()), "Package ") {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no `// Package %s ...` doc comment", dir, name, name))
		}
		if strict {
			findings = append(findings, lintExported(fset, pkg)...)
		}
	}
	return findings
}

// lintExported flags exported top-level identifiers without doc comments.
func lintExported(fset *token.FileSet, pkg *ast.Package) []string {
	var findings []string
	flag := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				what := "function"
				if d.Recv != nil {
					if !receiverExported(d.Recv) {
						continue // methods on unexported types are not API
					}
					what = "method"
				}
				flag(d.Pos(), what, d.Name.Name)
			case *ast.GenDecl:
				// A doc comment on the grouped declaration covers every
				// spec inside it (the standard const-block convention).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
							flag(sp.Pos(), "type", sp.Name.Name)
						}
					case *ast.ValueSpec:
						if sp.Doc != nil || sp.Comment != nil {
							continue
						}
						for _, n := range sp.Names {
							if n.IsExported() {
								flag(n.Pos(), declWhat(d.Tok), n.Name)
							}
						}
					}
				}
			}
		}
	}
	return findings
}

// declWhat names a GenDecl token for findings.
func declWhat(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}

// receiverExported reports whether a method's receiver type is exported.
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
