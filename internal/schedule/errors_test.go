package schedule

import (
	"context"
	"errors"
	"strings"
	"testing"

	"zac/internal/arch"
	"zac/internal/place"
	"zac/internal/resynth"
)

// TestBuildRejectsNoAODs pins the precondition error: without an AOD array
// there is nothing to schedule movements onto.
func TestBuildRejectsNoAODs(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(4), place.Default())
	noAODs := *a
	noAODs.AODs = nil
	_, err := Build(context.Background(), &noAODs, staged, plan)
	if err == nil || !strings.Contains(err.Error(), "no AODs") {
		t.Fatalf("err = %v, want no-AODs error", err)
	}
}

// TestBuildRejectsShortPlan covers the plan/stage alignment check: a plan
// with fewer steps than the circuit has Rydberg stages must fail, not
// silently drop stages.
func TestBuildRejectsShortPlan(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(6), place.Default())
	if len(plan.Steps) < 2 {
		t.Fatalf("need ≥2 steps, have %d", len(plan.Steps))
	}
	truncated := *plan
	truncated.Steps = plan.Steps[:1]
	_, err := Build(context.Background(), a, staged, &truncated)
	if err == nil || !strings.Contains(err.Error(), "plan has") {
		t.Fatalf("err = %v, want short-plan error", err)
	}
}

// TestBuildRejectsMisalignedStep covers the per-step index check: a step
// claiming the wrong stage index must fail.
func TestBuildRejectsMisalignedStep(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(6), place.Default())
	shifted := *plan
	shifted.Steps = append([]place.Step(nil), plan.Steps...)
	shifted.Steps[0].StageIdx += 1
	_, err := Build(context.Background(), a, staged, &shifted)
	if err == nil || !strings.Contains(err.Error(), "maps to stage") {
		t.Fatalf("err = %v, want misaligned-step error", err)
	}
}

// TestBuildRejectsCyclicMoves covers the incompatible-move-group path: a
// movement phase whose trap-succession graph is a true cycle (two qubits
// swapping entanglement sites in one phase) cannot be realized even by
// single-move jobs, so Build must surface errCyclicJobs instead of emitting
// an unexecutable program.
func TestBuildRejectsCyclicMoves(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, pairs(16), place.Default())
	if len(plan.Steps) < 2 || len(plan.Steps[1].Sites) < 2 {
		t.Fatalf("need a wide second step, have %+v", plan.Steps)
	}
	// Corrupt the second step's move-in phase into a site swap: qubit x
	// moves s0→s1 while qubit y moves s1→s0. Each job's target is the other
	// job's source, so the dependency graph is cyclic even as singles.
	s0 := plan.Steps[1].Sites[0]
	s1 := plan.Steps[1].Sites[1]
	if s0 == s1 {
		t.Fatalf("need two distinct sites")
	}
	cyc := *plan
	cyc.Steps = append([]place.Step(nil), plan.Steps...)
	step := cyc.Steps[1]
	step.MovesIn = []place.Move{
		{Qubit: 0, From: place.SitePos(s0, 0), To: place.SitePos(s1, 0)},
		{Qubit: 1, From: place.SitePos(s1, 0), To: place.SitePos(s0, 0)},
	}
	cyc.Steps[1] = step
	_, err := Build(context.Background(), a, staged, &cyc)
	if !errors.Is(err, errCyclicJobs) {
		t.Fatalf("err = %v, want errCyclicJobs", err)
	}
}

// TestBuildCancelled verifies the context reaches the stage walk.
func TestBuildCancelled(t *testing.T) {
	a := arch.Reference()
	staged, plan := compilePlan(t, a, ghz(6), place.Default())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, a, staged, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildPlanCancelled verifies the context reaches the placement stage
// loop too.
func TestBuildPlanCancelled(t *testing.T) {
	a := arch.Reference()
	staged, err := resynth.Preprocess(ghz(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := place.BuildPlan(ctx, a, staged, place.Default()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
