// Multizone example: reproduce the paper's §VII-H architecture exploration —
// the highly parallel ising_n98 circuit compiled on a single-zone small
// architecture (Arch1: 6×10 sites) versus a two-zone architecture (Arch2:
// two 3×10 zones flanking the storage zone), showing that a second
// entanglement zone shortens movements and improves fidelity.
package main

import (
	"fmt"
	"log"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/resynth"
)

func main() {
	b, err := bench.ByName("ising_n98")
	if err != nil {
		log.Fatal(err)
	}
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		name     string
		fidelity float64
		duration float64
	}
	var results []outcome
	for _, tc := range []struct {
		name string
		a    *arch.Architecture
	}{
		{"Arch1 (one 6x10 zone)", arch.Arch1Small()},
		{"Arch2 (two 3x10 zones)", arch.Arch2TwoZones()},
	} {
		split := circuit.SplitRydbergStages(staged, tc.a.TotalSites())
		res, err := core.CompileStaged(split, tc.a, core.Default())
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		results = append(results, outcome{tc.name, res.Breakdown.Total, res.Duration / 1000})
		fmt.Printf("%-24s fidelity %.4f   duration %.2f ms   (%d stages, %d moves)\n",
			tc.name, res.Breakdown.Total, res.Duration/1000, res.NumRydbergStages, res.TotalMoves)
	}

	f1, f2 := results[0].fidelity, results[1].fidelity
	d1, d2 := results[0].duration, results[1].duration
	fmt.Printf("\nsecond zone: fidelity %+.1f%% (paper: +15%%), duration %+.1f%% (paper: -8%%)\n",
		100*(f2-f1)/f1, 100*(d2-d1)/d1)
}
