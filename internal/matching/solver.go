package matching

import (
	"errors"
	"math"
)

// errTooManyRows reports an n > m problem, which can never be fully matched.
var errTooManyRows = errors.New("matching: more rows than columns; no full matching possible")

// Solver is a reusable Jonker–Volgenant assignment solver. It owns the
// per-row scratch (potentials, shortest-path labels, visited flags) that
// MinWeightFullMatching allocates per call, growing the buffers on demand
// and reusing them across solves: after warm-up a solve performs zero heap
// allocations (verified by BenchmarkJVDense/-benchmem). A zero Solver is
// ready to use; a Solver must not be used concurrently.
//
// SolveDense and SolveSparse run the exact same arithmetic as
// MinWeightFullMatching over the same edge set, so all three produce
// bit-identical assignments and totals.
type Solver struct {
	u, v  []float64
	minv  []float64
	used  []bool
	p     []int // p[j] = row matched to column j (1-based; 0 = none)
	way   []int
	rowTo []int
}

// grow sizes the scratch for an n×m problem and resets the state that must
// start zeroed. The minv/used arrays are re-initialized per row inside the
// solve loops, exactly as the allocating implementation does.
func (s *Solver) grow(n, m int) {
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
	}
	s.u = s.u[:n+1]
	for i := range s.u {
		s.u[i] = 0
	}
	need := m + 1
	if cap(s.v) < need {
		s.v = make([]float64, need)
		s.minv = make([]float64, need)
		s.used = make([]bool, need)
		s.p = make([]int, need)
		s.way = make([]int, need)
	}
	s.v, s.minv, s.used = s.v[:need], s.minv[:need], s.used[:need]
	s.p, s.way = s.p[:need], s.way[:need]
	for j := 0; j < need; j++ {
		s.v[j] = 0
		s.p[j] = 0
		s.way[j] = 0
	}
	if cap(s.rowTo) < n {
		s.rowTo = make([]int, n)
	}
	s.rowTo = s.rowTo[:n]
}

// finish extracts the assignment from the matched-column array and totals it
// via the provided per-row cost lookup.
func (s *Solver) finish(n, m int, costAt func(i, j int) float64) ([]int, float64, error) {
	for j := 1; j <= m; j++ {
		if s.p[j] > 0 {
			s.rowTo[s.p[j]-1] = j - 1
		}
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += costAt(i, s.rowTo[i])
	}
	if math.IsInf(total, 1) || math.IsNaN(total) {
		return nil, 0, ErrNoFullMatching
	}
	return s.rowTo, total, nil
}

// SolveDense solves the n×m assignment problem over a row-major flat cost
// slice (len n*m; +Inf marks a forbidden pair). The returned assignment
// slice is owned by the Solver and valid until the next solve.
func (s *Solver) SolveDense(n, m int, cost []float64) ([]int, float64, error) {
	if n == 0 {
		return nil, 0, nil
	}
	if n > m {
		return nil, 0, errTooManyRows
	}
	s.grow(n, m)
	inf := math.Inf(1)
	for i := 1; i <= n; i++ {
		s.p[0] = i
		j0 := 0
		for j := range s.minv {
			s.minv[j] = inf
			s.used[j] = false
		}
		for {
			s.used[j0] = true
			i0 := s.p[j0]
			delta := inf
			j1 := -1
			row := cost[(i0-1)*m:]
			for j := 1; j <= m; j++ {
				if s.used[j] {
					continue
				}
				cur := row[j-1] - s.u[i0] - s.v[j]
				if cur < s.minv[j] {
					s.minv[j] = cur
					s.way[j] = j0
				}
				if s.minv[j] < delta {
					delta = s.minv[j]
					j1 = j
				}
			}
			if j1 == -1 || math.IsInf(delta, 1) {
				return nil, 0, ErrNoFullMatching
			}
			for j := 0; j <= m; j++ {
				if s.used[j] {
					s.u[s.p[j]] += delta
					s.v[j] -= delta
				} else if !math.IsInf(s.minv[j], 1) {
					s.minv[j] -= delta
				}
			}
			j0 = j1
			if s.p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := s.way[j0]
			s.p[j0] = s.p[j1]
			j0 = j1
		}
	}
	return s.finish(n, m, func(i, j int) float64 { return cost[i*m+j] })
}

// SolveSparse solves the n×m assignment problem over a CSR candidate list:
// row i's arcs are cols[rowStart[i]:rowStart[i+1]] with the matching costs
// slice, and every absent (row, column) pair is forbidden. Columns must not
// repeat within a row. This is the entry point for gate and storage-return
// placement, where each row only ever sees the k-neighbor candidate columns
// place.Options restricts it to: the relaxation step then costs O(deg)
// instead of O(m), and no dense +Inf matrix is materialized. The returned
// assignment slice is owned by the Solver and valid until the next solve.
func (s *Solver) SolveSparse(n, m int, rowStart, cols []int, costs []float64) ([]int, float64, error) {
	if n == 0 {
		return nil, 0, nil
	}
	if n > m {
		return nil, 0, errTooManyRows
	}
	s.grow(n, m)
	inf := math.Inf(1)
	for i := 1; i <= n; i++ {
		s.p[0] = i
		j0 := 0
		for j := range s.minv {
			s.minv[j] = inf
			s.used[j] = false
		}
		for {
			s.used[j0] = true
			i0 := s.p[j0]
			// Relax only the arcs of row i0; every other column keeps
			// minv = +Inf, exactly as a dense +Inf entry would.
			for a := rowStart[i0-1]; a < rowStart[i0]; a++ {
				j := cols[a] + 1
				if s.used[j] {
					continue
				}
				cur := costs[a] - s.u[i0] - s.v[j]
				if cur < s.minv[j] {
					s.minv[j] = cur
					s.way[j] = j0
				}
			}
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if !s.used[j] && s.minv[j] < delta {
					delta = s.minv[j]
					j1 = j
				}
			}
			if j1 == -1 || math.IsInf(delta, 1) {
				return nil, 0, ErrNoFullMatching
			}
			for j := 0; j <= m; j++ {
				if s.used[j] {
					s.u[s.p[j]] += delta
					s.v[j] -= delta
				} else if !math.IsInf(s.minv[j], 1) {
					s.minv[j] -= delta
				}
			}
			j0 = j1
			if s.p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := s.way[j0]
			s.p[j0] = s.p[j1]
			j0 = j1
		}
	}
	return s.finish(n, m, func(i, j int) float64 {
		for a := rowStart[i]; a < rowStart[i+1]; a++ {
			if cols[a] == j {
				return costs[a]
			}
		}
		return math.Inf(1)
	})
}
