package arch

import (
	"encoding/json"
	"math"
	"testing"

	"zac/internal/geom"
)

func TestReferenceValid(t *testing.T) {
	a := Reference()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.TotalStorageTraps() != 100*100 {
		t.Errorf("storage traps = %d", a.TotalStorageTraps())
	}
	if a.TotalSites() != 7*20 {
		t.Errorf("sites = %d", a.TotalSites())
	}
}

func TestReferenceGeometryMatchesPaper(t *testing.T) {
	a := Reference()
	// Fig. 2b: site ω(0,0) left trap at (35, 307); right trap at (37, 307).
	left := a.SiteTrapPos(SiteRef{0, 0, 0}, 0)
	right := a.SiteTrapPos(SiteRef{0, 0, 0}, 1)
	if !left.Eq(geom.Point{X: 35, Y: 307}, 1e-9) {
		t.Errorf("left trap of ω00 = %v", left)
	}
	if !right.Eq(geom.Point{X: 37, Y: 307}, 1e-9) {
		t.Errorf("right trap of ω00 = %v", right)
	}
	if d := left.Dist(right); math.Abs(d-DRyd) > 1e-9 {
		t.Errorf("in-site trap separation = %v, want %v", d, DRyd)
	}
	// Adjacent sites are 12µm apart in x (dRyd + dω) and 10µm in y (dω).
	s01 := a.SitePos(SiteRef{0, 0, 1})
	s10 := a.SitePos(SiteRef{0, 1, 0})
	if math.Abs(s01.X-left.X-12) > 1e-9 {
		t.Errorf("site x pitch = %v", s01.X-left.X)
	}
	if math.Abs(s10.Y-left.Y-10) > 1e-9 {
		t.Errorf("site y pitch = %v", s10.Y-left.Y)
	}
	// Storage trap s(r,c) at (3c, 3r); top row y = 297, 10µm below the
	// entanglement zone (dsep).
	top := a.TrapPos(TrapRef{0, 0, 99, 0})
	if !top.Eq(geom.Point{X: 0, Y: 297}, 1e-9) {
		t.Errorf("storage trap (99,0) = %v", top)
	}
}

func TestNearestSite(t *testing.T) {
	a := Reference()
	// A point near site (0, 2) must resolve there.
	p := a.SitePos(SiteRef{0, 0, 2}).Add(geom.Point{X: 1.2, Y: -0.7})
	if got := a.NearestSite(p); got != (SiteRef{0, 0, 2}) {
		t.Errorf("NearestSite = %+v", got)
	}
	// Far below the zone it clamps to row 0.
	if got := a.NearestSite(geom.Point{X: 35, Y: 0}); got.Row != 0 {
		t.Errorf("clamp failed: %+v", got)
	}
}

func TestNearestStorageTrap(t *testing.T) {
	a := Reference()
	p := a.TrapPos(TrapRef{0, 0, 3, 4}).Add(geom.Point{X: 0.4, Y: 0.4})
	if got := a.NearestStorageTrap(p); got != (TrapRef{0, 0, 3, 4}) {
		t.Errorf("NearestStorageTrap = %+v", got)
	}
}

func TestAllSitesAndTraps(t *testing.T) {
	a := Arch1Small()
	if got := len(a.AllSites()); got != 60 {
		t.Errorf("Arch1Small sites = %d, want 60", got)
	}
	if got := len(a.AllStorageTraps()); got != 120 {
		t.Errorf("Arch1Small storage traps = %d, want 120", got)
	}
}

func TestBuildersValid(t *testing.T) {
	for name, a := range map[string]*Architecture{
		"reference":  Reference(),
		"monolithic": Monolithic(),
		"arch1":      Arch1Small(),
		"arch2":      Arch2TwoZones(),
		"logical":    Logical832(),
		"triple":     ReferenceTriple(),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestReferenceTripleSites(t *testing.T) {
	a := ReferenceTriple()
	z := a.Entanglement[0]
	if z.SiteSlots() != 3 {
		t.Fatalf("site slots = %d, want 3", z.SiteSlots())
	}
	// The three traps of site (0,0) sit at x = 35, 37, 39 (2µm apart, all
	// within one blockade radius).
	for slot, wantX := range []float64{35, 37, 39} {
		p := a.SiteTrapPos(SiteRef{0, 0, 0}, slot)
		if math.Abs(p.X-wantX) > 1e-9 || math.Abs(p.Y-307) > 1e-9 {
			t.Errorf("slot %d at %v, want (%v,307)", slot, p, wantX)
		}
	}
	// Adjacent sites keep dω between their nearest traps: pitch 14 means
	// trap 2 of site c and trap 0 of site c+1 are 10µm apart.
	right := a.SiteTrapPos(SiteRef{0, 0, 1}, 0)
	last := a.SiteTrapPos(SiteRef{0, 0, 0}, 2)
	if d := right.X - last.X; math.Abs(d-DOmega) > 1e-9 {
		t.Errorf("inter-site gap = %v, want %v", d, DOmega)
	}
}

func TestArch2HasTwoEntanglementZones(t *testing.T) {
	a := Arch2TwoZones()
	if len(a.Entanglement) != 2 {
		t.Fatalf("zones = %d", len(a.Entanglement))
	}
	if a.TotalSites() != 60 {
		t.Errorf("total sites = %d, want 60 (2×3×10)", a.TotalSites())
	}
	// The storage zone must sit between the two entanglement zones.
	sy := a.Storage[0].Offset.Y
	if !(a.Entanglement[0].Offset.Y < sy && a.Entanglement[1].Offset.Y > sy) {
		t.Error("storage zone not between the two entanglement zones")
	}
}

func TestLogical832Shape(t *testing.T) {
	a := Logical832()
	if a.Entanglement[0].SiteRows() != 3 || a.Entanglement[0].SiteCols() != 5 {
		t.Errorf("logical sites = %dx%d, want 3x5 (⌊7/2⌋×⌊20/4⌋)",
			a.Entanglement[0].SiteRows(), a.Entanglement[0].SiteCols())
	}
	if a.TotalStorageTraps() != 128 {
		t.Errorf("logical storage = %d, want 128 blocks", a.TotalStorageTraps())
	}
}

func TestWithAODs(t *testing.T) {
	a := WithAODs(Reference(), 3)
	if len(a.AODs) != 3 {
		t.Fatalf("AODs = %d", len(a.AODs))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if len(Reference().AODs) != 1 {
		t.Fatal("WithAODs mutated source")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	a := Reference()
	a.AODs = nil
	if a.Validate() == nil {
		t.Error("missing AOD not caught")
	}

	b := Reference()
	b.Entanglement[0].SLMs = b.Entanglement[0].SLMs[:1]
	if b.Validate() == nil {
		t.Error("single-SLM entanglement zone not caught")
	}

	c := Reference()
	c.T2 = 0
	if c.Validate() == nil {
		t.Error("zero T2 not caught")
	}

	d := Reference()
	d.Fidelities.TwoQubit = 1.5
	if d.Validate() == nil {
		t.Error("fidelity > 1 not caught")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Reference()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Architecture
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name %q", back.Name)
	}
	if back.T2 != orig.T2 || back.Times != orig.Times {
		t.Errorf("parameters lost: %+v", back.Times)
	}
	if len(back.Storage) != 1 || len(back.Entanglement) != 1 {
		t.Fatalf("zones lost")
	}
	if back.Entanglement[0].SiteRows() != 7 || back.Entanglement[0].SiteCols() != 20 {
		t.Error("entanglement shape lost")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONAcceptsArtifactSpelling(t *testing.T) {
	// Trimmed version of the paper's Fig. 20 with its original spellings.
	raw := `{
		"name": "full_compute_store_architecture",
		"operation_duration": {"rydberg": 0.36, "1qGate": 52, "atom_transfer": 15},
		"operation_fidelity": {"two_qubit_gate": 0.995, "single_qubit_gate": 0.9997, "atom_transfer": 0.999},
		"qubit_spec": {"T": 1.5e6},
		"storage_zones": [{
			"zone_id": 0,
			"slms": [{"id": 0, "site_seperation": [3, 3], "r": 100, "c": 100, "location": [0, 0]}],
			"offset": [0, 0],
			"dimenstion": [300, 300]
		}],
		"entanglement_zones": [{
			"zone_id": 0,
			"slms": [
				{"id": 1, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [35, 307]},
				{"id": 2, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [37, 307]}
			],
			"offset": [35, 307],
			"dimension": [240, 70]
		}],
		"aods": [{"id": 0, "site_seperation": 2, "r": 100, "c": 100}],
		"arch_range": [[0, 0], [297, 402]],
		"rydberg_range": [[[5, 305], [292, 402]]]
	}`
	var a Architecture
	if err := json.Unmarshal([]byte(raw), &a); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Times.OneQGate != 52 || a.T2 != 1.5e6 {
		t.Errorf("params: %+v T2=%v", a.Times, a.T2)
	}
	if a.TotalStorageTraps() != 10000 || a.TotalSites() != 140 {
		t.Errorf("geometry: traps=%d sites=%d", a.TotalStorageTraps(), a.TotalSites())
	}
	if a.Fidelities.Excitation != 0.9975 {
		t.Errorf("default excitation fidelity not applied: %v", a.Fidelities.Excitation)
	}
	// Left/right site traps offset by dRyd.
	if d := a.SiteTrapPos(SiteRef{0, 0, 0}, 0).Dist(a.SiteTrapPos(SiteRef{0, 0, 0}, 1)); math.Abs(d-2) > 1e-9 {
		t.Errorf("site trap separation %v", d)
	}
}

func TestMoveTimeCustomAccel(t *testing.T) {
	a := Reference()
	base := a.MoveTime(100)
	a.MovementAccel = 2.75e-3 * 4 // 4x acceleration → half the time
	if got := a.MoveTime(100); math.Abs(got-base/2) > 1e-9 {
		t.Errorf("custom accel MoveTime = %v, want %v", got, base/2)
	}
	if a.MoveTime(0) != 0 || a.MoveTime(-1) != 0 {
		t.Error("non-positive distance should take zero time")
	}
}

func TestSLMNearestTrapClamps(t *testing.T) {
	s := SLMArray{SepX: 3, SepY: 3, Rows: 10, Cols: 10}
	r, c := s.NearestTrap(geom.Point{X: -100, Y: 1000})
	if r != 9 || c != 0 {
		t.Errorf("clamped trap = (%d,%d)", r, c)
	}
	if !s.InRange(0, 0) || s.InRange(10, 0) || s.InRange(0, -1) {
		t.Error("InRange wrong")
	}
}
