// Package core is the ZAC compiler (paper §IV): it chains preprocessing
// (resynthesis to {CZ,U3} + ASAP staging), reuse-aware placement (§V) and
// load-balancing scheduling (§VI) into a timed ZAIR program, and evaluates
// the result under the paper's fidelity model (§VII-B). The ablation knobs
// of Fig. 11/12 (Vanilla / dynPlace / +reuse / +SA) are exposed through
// place.Options.
package core

import (
	"context"
	"time"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/fidelity"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/zair"
)

// Options configures a compilation.
type Options struct {
	Place place.Options
}

// Ablation presets matching the paper's Fig. 11 legend, plus the §X
// advanced-reuse path (full ZAC with in-zone site-to-site movement).
const (
	SettingVanilla         = "Vanilla"
	SettingDynPlace        = "dynPlace"
	SettingDynPlaceReuse   = "dynPlace+reuse"
	SettingSADynPlaceReuse = "SA+dynPlace+reuse"
	SettingAdvReuse        = "SA+dynPlace+advReuse"
)

// OptionsFor returns the option preset for one of the ablation settings; the
// full ZAC configuration is SettingSADynPlaceReuse.
func OptionsFor(setting string) Options {
	o := place.Default()
	switch setting {
	case SettingVanilla:
		o.UseSA, o.Dynamic, o.Reuse = false, false, false
	case SettingDynPlace:
		o.UseSA, o.Dynamic, o.Reuse = false, true, false
	case SettingDynPlaceReuse:
		o.UseSA, o.Dynamic, o.Reuse = false, true, true
	case SettingSADynPlaceReuse:
		// defaults
	case SettingAdvReuse:
		o.AdvancedReuse = true
	}
	return Options{Place: o}
}

// Default returns the full ZAC configuration.
func Default() Options { return Options{Place: place.Default()} }

// Result is a compiled circuit with its evaluation.
type Result struct {
	Program   *zair.Program
	Plan      *place.Plan
	Staged    *circuit.Staged
	Stats     fidelity.Stats
	Breakdown fidelity.Breakdown

	Duration         float64 // µs
	CompileTime      time.Duration
	NumRydbergStages int
	NumJobs          int
	ReusedGates      int
	TotalMoves       int

	// Passes holds the per-pass wall-time instrumentation of the pipeline
	// run that produced this result (nil for results predating the pipeline
	// in an old disk cache).
	Passes []PassTiming
}

// ParamsFromArch converts an architecture's hardware numbers into fidelity
// model parameters.
func ParamsFromArch(a *arch.Architecture) fidelity.Params {
	return fidelity.Params{
		F1: a.Fidelities.SingleQubit, F2: a.Fidelities.TwoQubit,
		FExc: a.Fidelities.Excitation, FTran: a.Fidelities.AtomTransfer,
		T1Q: a.Times.OneQGate, T2Q: a.Times.Rydberg, TTran: a.Times.AtomTransfer,
		T2: a.T2,
	}
}

// Compile preprocesses and compiles an input circuit for the architecture.
func Compile(c *circuit.Circuit, a *arch.Architecture, opts Options) (*Result, error) {
	staged, err := resynth.Preprocess(c)
	if err != nil {
		return nil, err
	}
	return CompileStaged(staged, a, opts)
}

// CompileStaged compiles an already-preprocessed staged circuit by running
// the standard pass pipeline (validate → place → schedule → emit →
// fidelity) without cancellation or pass memoization. Callers needing
// either use Standard().Run directly (the compiler registry does).
func CompileStaged(staged *circuit.Staged, a *arch.Architecture, opts Options) (*Result, error) {
	return Standard().Run(context.Background(), staged, a, opts, Hooks{})
}
