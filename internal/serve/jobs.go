package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// job tracks one async batch compilation.
type job struct {
	id    string
	total int

	completed atomic.Int32

	mu      sync.Mutex
	status  JobStatus
	results []BatchItem
}

// maxRetainedJobs bounds the job table: once exceeded, the oldest finished
// jobs (and their result payloads) are dropped, so a long-lived service
// does not accumulate every ZAIR program it ever compiled. Pollers of a
// dropped job get a 404, the same as for a never-submitted id.
const maxRetainedJobs = 256

// newJob registers a pending job, evicting the oldest finished jobs when
// the table is over its retention bound.
func (s *Server) newJob(total int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobSeq++
	j := &job{id: fmt.Sprintf("job-%d", s.jobSeq), total: total, status: JobPending}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for i := 0; len(s.jobs) > maxRetainedJobs && i < len(s.jobOrder); {
		old := s.jobs[s.jobOrder[i]]
		if old == nil {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			continue
		}
		old.mu.Lock()
		finished := old.status == JobDone || old.status == JobFailed
		old.mu.Unlock()
		if !finished {
			i++ // never drop a job still in flight
			continue
		}
		delete(s.jobs, s.jobOrder[i])
		s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
	}
	return j
}

// runJob executes a job's batch in the background, tracking per-item
// completion for pollers. The job ends JobDone unless every item failed.
func (s *Server) runJob(j *job, batch []CompileRequest, includeZAIR bool) {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()

	items := make([]BatchItem, len(batch))
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer j.completed.Add(1)
			res, err := s.compileOne(batch[i], includeZAIR)
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Result: res}
		}(i)
	}
	wg.Wait()

	failed := 0
	for _, it := range items {
		if it.Error != "" {
			failed++
		}
	}
	j.mu.Lock()
	j.results = items
	if failed == len(items) && len(items) > 0 {
		j.status = JobFailed
	} else {
		j.status = JobDone
	}
	j.mu.Unlock()
}

// response snapshots the job for the API.
func (j *job) response() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobResponse{
		ID:        j.id,
		Status:    j.status,
		Total:     j.total,
		Completed: int(j.completed.Load()),
		Results:   j.results,
	}
}
