package place

import (
	"fmt"
	"math"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
	"zac/internal/matching"
)

// reuseMatch computes the gate-to-gate reuse matching between two Rydberg
// stages (paper §V-B1): vertices are gates, an edge joins g (previous stage)
// and g′ (next stage) when they share a qubit, and a Hopcroft–Karp maximum
// matching resolves conflicts such as both qubits of one site being
// reusable. It returns, for each gate of next, the index of the previous
// gate whose site it inherits (or -1).
func reuseMatch(prev, next []circuit.Gate) []int {
	adj := make([][]int, len(prev))
	for i, g := range prev {
		for j, h := range next {
			if sharesQubit(g, h) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchL, _ := matching.HopcroftKarp(adj, len(next))
	out := make([]int, len(next))
	for j := range out {
		out[j] = -1
	}
	for i, j := range matchL {
		if j >= 0 {
			out[j] = i
		}
	}
	return out
}

func sharesQubit(g, h circuit.Gate) bool {
	for _, a := range g.Qubits {
		for _, b := range h.Qubits {
			if a == b {
				return true
			}
		}
	}
	return false
}

// candidateSites returns the Ω_cand site set for a gate (paper §V-B2): the
// δ-expansion box around the gate's nearest site in each entanglement zone,
// minus the excluded set. Sites with fewer trap slots than the gate has
// qubits are never candidates (multi-trap sites, §III).
func candidateSites(a *arch.Architecture, pts []geom.Point, delta int, excluded map[arch.SiteRef]bool) []arch.SiteRef {
	var out []arch.SiteRef
	mid := centroid(pts)
	near := nearSiteForQubits(a, pts)
	for zi, z := range a.Entanglement {
		if z.SiteSlots() < len(pts) {
			continue
		}
		nr, nc := z.NearestSite(mid)
		// Center the box on the zone-shared middle site when the qubits'
		// nearest sites resolve into this zone; otherwise on the nearest
		// site to the centroid.
		if near.Zone == zi {
			nr, nc = near.Row, near.Col
		}
		rows, cols := z.SiteRows(), z.SiteCols()
		for r := max(0, nr-delta); r <= min(rows-1, nr+delta); r++ {
			for c := max(0, nc-delta); c <= min(cols-1, nc+delta); c++ {
				s := arch.SiteRef{Zone: zi, Row: r, Col: c}
				if !excluded[s] {
					out = append(out, s)
				}
			}
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gatePlacement assigns Rydberg sites to the non-reused gates of a stage by
// minimum-weight full matching (paper §V-B2, Jonker–Volgenant). pos gives
// current qubit positions; reserved sites (reused gates, held qubits) are
// excluded except that a gate may target a site currently held by one of its
// own qubits. lookahead[gi] optionally names a qubit whose distance to the
// chosen site is added (the §V-B2 reuse lookahead term).
func gatePlacement(
	a *arch.Architecture,
	gates []circuit.Gate,
	gateIdx []int, // indices (into gates) that still need sites
	pos []Pos,
	reserved map[arch.SiteRef]bool,
	held map[arch.SiteRef][]int, // site → zone-resident qubits still there
	lookahead map[int]int, // gate index → partner qubit for next stage
	delta int,
) (map[int]arch.SiteRef, float64, error) {
	if len(gateIdx) == 0 {
		return map[int]arch.SiteRef{}, 0, nil
	}
	maxDelta := delta
	for _, z := range a.Entanglement {
		if z.SiteRows() > maxDelta {
			maxDelta = z.SiteRows()
		}
		if z.SiteCols() > maxDelta {
			maxDelta = z.SiteCols()
		}
	}
	for d := delta; d <= maxDelta; d *= 2 {
		assign, cost, err := tryGatePlacement(a, gates, gateIdx, pos, reserved, held, lookahead, d)
		if err == nil {
			return assign, cost, nil
		}
		if err != matching.ErrNoFullMatching {
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("place: cannot place %d gates even over the whole entanglement zone(s)", len(gateIdx))
}

func tryGatePlacement(
	a *arch.Architecture,
	gates []circuit.Gate,
	gateIdx []int,
	pos []Pos,
	reserved map[arch.SiteRef]bool,
	held map[arch.SiteRef][]int,
	lookahead map[int]int,
	delta int,
) (map[int]arch.SiteRef, float64, error) {
	// Union of candidate sites across gates.
	siteIndex := map[arch.SiteRef]int{}
	var sites []arch.SiteRef
	perGate := make([][]arch.SiteRef, len(gateIdx))
	gatePts := func(g circuit.Gate) []geom.Point {
		pts := make([]geom.Point, len(g.Qubits))
		for i, q := range g.Qubits {
			pts[i] = pos[q].Point(a)
		}
		return pts
	}
	for k, gi := range gateIdx {
		cands := candidateSites(a, gatePts(gates[gi]), delta, reserved)
		perGate[k] = cands
		for _, s := range cands {
			if _, ok := siteIndex[s]; !ok {
				siteIndex[s] = len(sites)
				sites = append(sites, s)
			}
		}
	}
	if len(sites) < len(gateIdx) {
		return nil, 0, matching.ErrNoFullMatching
	}
	inf := math.Inf(1)
	cost := make([][]float64, len(gateIdx))
	for k := range cost {
		cost[k] = make([]float64, len(sites))
		for j := range cost[k] {
			cost[k][j] = inf
		}
	}
	for k, gi := range gateIdx {
		g := gates[gi]
		pts := gatePts(g)
		inGate := func(q int) bool {
			for _, gq := range g.Qubits {
				if gq == q {
					return true
				}
			}
			return false
		}
		for _, s := range perGate[k] {
			// A site held by a foreign zone-resident qubit is unavailable;
			// held by this gate's own qubits is fine (the qubit stays put).
			foreign := false
			for _, hq := range held[s] {
				if !inGate(hq) {
					foreign = true
					break
				}
			}
			if foreign {
				continue
			}
			sp := a.SitePos(s)
			w := gateCost(a, sp, pts...)
			if partner, ok := lookahead[gi]; ok {
				w += moveCost(a, pos[partner].Point(a), sp)
			}
			cost[k][siteIndex[s]] = w
		}
	}
	rowTo, total, err := matching.MinWeightFullMatching(cost)
	if err != nil {
		return nil, 0, err
	}
	assign := make(map[int]arch.SiteRef, len(gateIdx))
	for k, gi := range gateIdx {
		assign[gi] = sites[rowTo[k]]
	}
	return assign, total, nil
}

// returnPlacement assigns storage traps to the qubits leaving the
// entanglement zone (paper §V-B3): candidates are the empty traps inside the
// bounding box spanned by (1) the qubit's original storage trap, (2) the
// k-neighborhood of the storage trap nearest its current site, and (3) the
// trap nearest its related qubit; edge weights follow Eq. 3. Returns the
// trap per qubit and the matching cost.
func returnPlacement(
	a *arch.Architecture,
	qubits []int,
	pos []Pos,
	home []arch.TrapRef,
	related map[int]int, // qubit → partner in the next Rydberg stage
	occupied map[arch.TrapRef]int,
	k int,
	alpha float64,
) (map[int]arch.TrapRef, float64, error) {
	if len(qubits) == 0 {
		return map[int]arch.TrapRef{}, 0, nil
	}
	for attempt, kk := 0, k; attempt < 4; attempt, kk = attempt+1, kk*2+1 {
		assign, cost, err := tryReturnPlacement(a, qubits, pos, home, related, occupied, kk, alpha, attempt == 3)
		if err == nil {
			return assign, cost, nil
		}
		if err != matching.ErrNoFullMatching {
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("place: cannot return %d qubits to storage", len(qubits))
}

func tryReturnPlacement(
	a *arch.Architecture,
	qubits []int,
	pos []Pos,
	home []arch.TrapRef,
	related map[int]int,
	occupied map[arch.TrapRef]int,
	k int,
	alpha float64,
	allTraps bool,
) (map[int]arch.TrapRef, float64, error) {
	trapIndex := map[arch.TrapRef]int{}
	var traps []arch.TrapRef
	addTrap := func(t arch.TrapRef) {
		if _, taken := occupied[t]; taken {
			return
		}
		if _, ok := trapIndex[t]; !ok {
			trapIndex[t] = len(traps)
			traps = append(traps, t)
		}
	}

	perQubit := make([][]arch.TrapRef, len(qubits))
	for i, q := range qubits {
		var cands []arch.TrapRef
		if allTraps {
			for _, t := range a.AllStorageTraps() {
				if _, taken := occupied[t]; !taken {
					cands = append(cands, t)
				}
			}
		} else {
			cands = candidateTraps(a, q, pos, home, related, occupied, k)
		}
		perQubit[i] = cands
		for _, t := range cands {
			addTrap(t)
		}
	}
	if len(traps) < len(qubits) {
		return nil, 0, matching.ErrNoFullMatching
	}
	inf := math.Inf(1)
	cost := make([][]float64, len(qubits))
	for i := range cost {
		cost[i] = make([]float64, len(traps))
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	for i, q := range qubits {
		cur := pos[q].Point(a)
		for _, t := range perQubit[i] {
			w := moveCost(a, cur, a.TrapPos(t))
			// A non-positive α disables the lookahead term (used by the
			// parameter-sweep ablation).
			if partner, ok := related[q]; ok && alpha > 0 {
				w += alpha * moveCost(a, pos[partner].Point(a), a.TrapPos(t))
			}
			cost[i][trapIndex[t]] = w
		}
	}
	rowTo, total, err := matching.MinWeightFullMatching(cost)
	if err != nil {
		return nil, 0, err
	}
	assign := make(map[int]arch.TrapRef, len(qubits))
	for i, q := range qubits {
		assign[q] = traps[rowTo[i]]
	}
	return assign, total, nil
}

// candidateTraps builds S_cand^q for one qubit: empty traps inside the
// bounding box of the three anchor trap groups (paper Fig. 6c).
func candidateTraps(
	a *arch.Architecture,
	q int,
	pos []Pos,
	home []arch.TrapRef,
	related map[int]int,
	occupied map[arch.TrapRef]int,
	k int,
) []arch.TrapRef {
	cur := pos[q].Point(a)
	box := geom.NewBBox()
	var anchors []arch.TrapRef

	// (1) original storage trap
	anchors = append(anchors, home[q])
	// (2) nearest storage trap to the current site plus k-neighbors along
	// its row and column
	nearest := a.NearestStorageTrap(cur)
	anchors = append(anchors, nearest)
	z := a.Storage[nearest.Zone].SLMs[nearest.SLM]
	for d := 1; d <= k; d++ {
		for _, t := range []arch.TrapRef{
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row, Col: nearest.Col - d},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row, Col: nearest.Col + d},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row - d, Col: nearest.Col},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row + d, Col: nearest.Col},
		} {
			if z.InRange(t.Row, t.Col) {
				anchors = append(anchors, t)
			}
		}
	}
	// (3) nearest trap to the related qubit
	if partner, ok := related[q]; ok {
		anchors = append(anchors, a.NearestStorageTrap(pos[partner].Point(a)))
	}

	for _, t := range anchors {
		box.Extend(a.TrapPos(t))
	}
	// Collect the empty traps inside the bounding box. Restrict the scan to
	// the storage SLM arrays that intersect the box.
	var out []arch.TrapRef
	for zi, zz := range a.Storage {
		for si, s := range zz.SLMs {
			rLo, cLo := s.NearestTrap(geom.Point{X: box.MinX, Y: box.MinY})
			rHi, cHi := s.NearestTrap(geom.Point{X: box.MaxX, Y: box.MaxY})
			for r := min(rLo, rHi); r <= max(rLo, rHi); r++ {
				for c := min(cLo, cHi); c <= max(cLo, cHi); c++ {
					t := arch.TrapRef{Zone: zi, SLM: si, Row: r, Col: c}
					if !box.Contains(s.TrapPos(r, c)) {
						continue
					}
					if _, taken := occupied[t]; !taken {
						out = append(out, t)
					}
				}
			}
		}
	}
	return out
}
