package faultinject

import (
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"zac/internal/engine"
)

// Injection points of the filesystem seam, one per engine.FS operation plus
// the write/close steps of a staged temp-file commit.
const (
	PointReadFile   = "fs.readfile"
	PointMkdirAll   = "fs.mkdirall"
	PointCreateTemp = "fs.createtemp"
	PointWrite      = "fs.write"
	PointClose      = "fs.close"
	PointRename     = "fs.rename"
	PointRemove     = "fs.remove"
	PointStat       = "fs.stat"
	PointChtimes    = "fs.chtimes"
	PointWalkDir    = "fs.walkdir"
)

// faultFS decorates an engine.FS with the plan's filesystem faults.
type faultFS struct {
	base engine.FS
	plan *Plan
}

// WrapFS returns an engine.FS that consults plan at every operation,
// delegating to base when no fault fires. Wire it into a disk cache with
// engine.OpenDiskCacheFS to drive the cache's recovery paths.
func WrapFS(base engine.FS, plan *Plan) engine.FS {
	return &faultFS{base: base, plan: plan}
}

// apply handles the kinds shared by every operation (latency delays, error
// returns); the caller handles its operation-specific corruption kinds by
// checking the returned rule first.
func (f *faultFS) apply(point string, r *Rule) error {
	if r == nil {
		return nil
	}
	if r.Kind == KindLatency {
		f.plan.sleeper()(r.Latency)
		return nil
	}
	return r.fail(point)
}

// fraction returns the rule's kept fraction with its default.
func (r *Rule) fraction() float64 {
	if r.Fraction <= 0 {
		return 0.5
	}
	return r.Fraction
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	r := f.plan.Decide(PointReadFile)
	if r != nil && r.Kind == KindBitFlip {
		raw, err := f.base.ReadFile(name)
		if err != nil || len(raw) == 0 {
			return raw, err
		}
		bit := f.plan.Rand(PointReadFile) % uint64(len(raw)*8)
		out := append([]byte(nil), raw...)
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	}
	if err := f.apply(PointReadFile, r); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.apply(PointMkdirAll, f.plan.Decide(PointMkdirAll)); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *faultFS) CreateTemp(dir, pattern string) (engine.FileWriter, error) {
	if err := f.apply(PointCreateTemp, f.plan.Decide(PointCreateTemp)); err != nil {
		return nil, err
	}
	w, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{FileWriter: w, fs: f}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	r := f.plan.Decide(PointRename)
	if r != nil && r.Kind == KindTornRename {
		// Commit only a prefix of the staged bytes and report success — the
		// torn entry must be caught by the reader's checksum, never served.
		raw, err := f.base.ReadFile(oldpath)
		if err != nil {
			return err
		}
		n := int(float64(len(raw)) * r.fraction())
		w, err := f.base.CreateTemp(filepath.Dir(newpath), "torn-*.tmp")
		if err != nil {
			return err
		}
		if _, err := w.Write(raw[:n]); err != nil {
			w.Close()
			f.base.Remove(w.Name())
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if err := f.base.Rename(w.Name(), newpath); err != nil {
			return err
		}
		f.base.Remove(oldpath)
		return nil
	}
	if err := f.apply(PointRename, r); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.apply(PointRemove, f.plan.Decide(PointRemove)); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.apply(PointStat, f.plan.Decide(PointStat)); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *faultFS) Chtimes(name string, atime, mtime time.Time) error {
	if err := f.apply(PointChtimes, f.plan.Decide(PointChtimes)); err != nil {
		return err
	}
	return f.base.Chtimes(name, atime, mtime)
}

func (f *faultFS) WalkDir(root string, fn fs.WalkDirFunc) error {
	if err := f.apply(PointWalkDir, f.plan.Decide(PointWalkDir)); err != nil {
		return err
	}
	return f.base.WalkDir(root, fn)
}

// faultFile injects faults into the write/close steps of a staged file.
type faultFile struct {
	engine.FileWriter
	fs *faultFS
}

func (w *faultFile) Write(b []byte) (int, error) {
	r := w.fs.plan.Decide(PointWrite)
	if r != nil && r.Kind == KindPartialWrite {
		// Persist only a prefix but report the full length: a silent short
		// write, surfacing later as a torn committed entry.
		n := int(float64(len(b)) * r.fraction())
		if _, err := w.FileWriter.Write(b[:n]); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	if err := w.fs.apply(PointWrite, r); err != nil {
		return 0, err
	}
	return w.FileWriter.Write(b)
}

func (w *faultFile) Close() error {
	r := w.fs.plan.Decide(PointClose)
	if err := w.fs.apply(PointClose, r); err != nil {
		w.FileWriter.Close() // release the descriptor either way
		return err
	}
	return w.FileWriter.Close()
}
