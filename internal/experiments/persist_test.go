package experiments

import (
	"context"
	"testing"
)

// withTempCacheDir attaches a throwaway disk tier to the process-wide cache
// and guarantees detachment plus a memory reset afterwards, so the other
// tests in this package never observe the temporary tier.
func withTempCacheDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ResetCache()
	if err := SetCacheDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		SetCacheDir("", 0)
		ResetCache()
	})
	return dir
}

// TestDiskTierSurvivesRestart is the PR's acceptance scenario in miniature:
// a cold run populates the disk tier, a simulated restart (memory reset,
// same directory) replays the same experiments, and the replay must be
// served almost entirely from disk while producing byte-identical tables.
func TestDiskTierSurvivesRestart(t *testing.T) {
	withTempCacheDir(t)
	ctx := context.Background()
	cfg := Config{Parallel: 2}
	// fig13 exercises the nil-Plan restore path; the rest approximate the
	// lookup mix of a full suite run.
	ids := []string{"fig8", "fig9", "fig10", "table2", "zair", "fig13"}

	run := func() map[string]string {
		out := map[string]string{}
		for _, id := range ids {
			tabs, err := RunWith(ctx, cfg, id, fast)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = render(t, tabs)
		}
		return out
	}

	cold := run()
	st := CacheStats()
	if st.Misses == 0 || st.Disk.Entries == 0 {
		t.Fatalf("cold run did not populate the disk tier: %+v", st)
	}

	// Restart: in-memory tier gone, disk tier still attached.
	ResetCache()
	warm := run()
	for _, id := range ids {
		if cold[id] != warm[id] {
			t.Errorf("%s: disk-restored tables differ from cold run\n--- cold ---\n%s\n--- warm ---\n%s",
				id, cold[id], warm[id])
		}
	}
	st = CacheStats()
	if st.DiskHits == 0 {
		t.Fatalf("warm run never hit the disk tier: %+v", st)
	}
	if rate := st.HitRate(); rate < 0.9 {
		t.Errorf("warm-run hit rate = %.2f, want > 0.9 (%+v)", rate, st)
	}
}

// TestNoCacheBypassesDiskTier ensures Config.NoCache skips both tiers: a
// NoCache run after a populated cold run must not touch the counters.
func TestNoCacheBypassesDiskTier(t *testing.T) {
	withTempCacheDir(t)
	ctx := context.Background()
	if _, err := RunWith(ctx, Config{Parallel: 2}, "fig10", fast); err != nil {
		t.Fatal(err)
	}
	before := CacheStats()
	if _, err := RunWith(ctx, Config{Parallel: 2, NoCache: true}, "fig10", fast); err != nil {
		t.Fatal(err)
	}
	after := CacheStats()
	if after.Lookups() != before.Lookups() {
		t.Errorf("NoCache run performed cache lookups: %d → %d", before.Lookups(), after.Lookups())
	}
}
