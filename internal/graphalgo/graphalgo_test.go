package graphalgo

import (
	"math/rand"
	"testing"
)

func randomGraph(r *rand.Rand, n int, p float64) []Edge {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

func maxDegree(n int, edges []Edge) int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	m := 0
	for _, d := range deg {
		if d > m {
			m = d
		}
	}
	return m
}

func TestMisraGriesValidAndTight(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		n := 2 + r.Intn(14)
		edges := randomGraph(r, n, 0.4)
		colors := MisraGries(n, edges)
		if !ValidEdgeColoring(n, edges, colors) {
			t.Fatalf("iter %d: invalid coloring for n=%d edges=%v colors=%v", iter, n, edges, colors)
		}
		if nc, bound := NumColors(colors), maxDegree(n, edges)+1; nc > bound {
			t.Fatalf("iter %d: used %d colors, Vizing bound %d", iter, nc, bound)
		}
	}
}

func TestMisraGriesStructured(t *testing.T) {
	// Path graph: Δ=2, chromatic index 2.
	path := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	colors := MisraGries(5, path)
	if !ValidEdgeColoring(5, path, colors) {
		t.Fatal("invalid path coloring")
	}
	if NumColors(colors) > 3 {
		t.Fatalf("path used %d colors", NumColors(colors))
	}
	// Star K1,5: Δ=5, needs exactly 5.
	star := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	colors = MisraGries(6, star)
	if !ValidEdgeColoring(6, star, colors) || NumColors(colors) != 5 {
		t.Fatalf("star coloring wrong: %v", colors)
	}
	// Odd cycle C5: Δ=2 but chromatic index 3.
	c5 := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	colors = MisraGries(5, c5)
	if !ValidEdgeColoring(5, c5, colors) || NumColors(colors) > 3 {
		t.Fatalf("C5 coloring wrong: %v", colors)
	}
}

func TestMisraGriesEmpty(t *testing.T) {
	if got := MisraGries(5, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestGreedyEdgeColoring(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		n := 2 + r.Intn(12)
		edges := randomGraph(r, n, 0.5)
		colors := GreedyEdgeColoring(n, edges)
		if !ValidEdgeColoring(n, edges, colors) {
			t.Fatalf("iter %d: invalid greedy coloring", iter)
		}
		if nc, bound := NumColors(colors), 2*maxDegree(n, edges)-1; len(edges) > 0 && nc > bound {
			t.Fatalf("iter %d: greedy used %d colors, bound %d", iter, nc, bound)
		}
	}
}

func TestValidEdgeColoringRejects(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}}
	if ValidEdgeColoring(3, edges, []int{0, 0}) {
		t.Error("shared vertex same color must be invalid")
	}
	if ValidEdgeColoring(3, edges, []int{0}) {
		t.Error("wrong length must be invalid")
	}
	if ValidEdgeColoring(3, edges, []int{0, -1}) {
		t.Error("negative color must be invalid")
	}
	if !ValidEdgeColoring(3, edges, []int{0, 1}) {
		t.Error("proper coloring rejected")
	}
}

func TestMaximalIndependentSet(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(15)
		adj := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.3 {
					adj[u] = append(adj[u], v)
					adj[v] = append(adj[v], u)
				}
			}
		}
		set := MaximalIndependentSet(n, adj)
		if !IsMaximalIndependent(n, adj, set) {
			t.Fatalf("iter %d: set %v not maximal independent, adj=%v", iter, set, adj)
		}
	}
}

func TestMISNoEdgesTakesAll(t *testing.T) {
	adj := make([][]int, 6)
	set := MaximalIndependentSet(6, adj)
	if len(set) != 6 {
		t.Fatalf("expected all 6 vertices, got %v", set)
	}
}

func TestPartitionIntoIndependentSets(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for iter := 0; iter < 100; iter++ {
		n := 1 + r.Intn(12)
		adj := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.4 {
					adj[u] = append(adj[u], v)
					adj[v] = append(adj[v], u)
				}
			}
		}
		groups := PartitionIntoIndependentSets(n, adj)
		covered := make([]bool, n)
		total := 0
		for _, g := range groups {
			if !IsIndependent(adj, g) {
				t.Fatalf("iter %d: group %v not independent", iter, g)
			}
			for _, v := range g {
				if covered[v] {
					t.Fatalf("iter %d: vertex %d in two groups", iter, v)
				}
				covered[v] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("iter %d: covered %d of %d vertices", iter, total, n)
		}
	}
}

func TestPartitionCliqueNeedsNGroups(t *testing.T) {
	n := 5
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				adj[u] = append(adj[u], v)
			}
		}
	}
	groups := PartitionIntoIndependentSets(n, adj)
	if len(groups) != n {
		t.Fatalf("clique should need %d groups, got %d", n, len(groups))
	}
}

func BenchmarkMisraGries(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := randomGraph(r, 100, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MisraGries(100, edges)
	}
}
