# Development entry points. `make check` is what CI enforces on every PR.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkSuite(Sequential|Parallel)' -benchtime 2x .
