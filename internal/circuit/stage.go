package circuit

import "fmt"

// StageKind distinguishes the two stage types of the preprocessed program
// (paper Fig. 4): stages of parallel single-qubit gates and Rydberg stages of
// parallel two-qubit CZ gates.
type StageKind int

const (
	// OneQStage holds U3 gates on disjoint qubits.
	OneQStage StageKind = iota
	// RydbergStage holds CZ gates on disjoint qubit pairs; all gates in the
	// stage are executed by a single global Rydberg exposure.
	RydbergStage
)

func (k StageKind) String() string {
	if k == OneQStage {
		return "1qGate"
	}
	return "rydberg"
}

// Stage is one layer of the preprocessed circuit.
type Stage struct {
	Kind  StageKind
	Gates []Gate
}

// Qubits returns every qubit touched by the stage, in gate order.
func (s Stage) Qubits() []int {
	var qs []int
	for _, g := range s.Gates {
		qs = append(qs, g.Qubits...)
	}
	return qs
}

// Staged is the output of preprocessing: a {CZ,U3} circuit partitioned into
// alternating stages such that each qubit is involved in at most one gate per
// stage.
type Staged struct {
	Name      string
	NumQubits int
	Stages    []Stage
}

// RydbergStages returns the indices of the Rydberg stages in order.
func (s *Staged) RydbergStages() []int {
	var idx []int
	for i, st := range s.Stages {
		if st.Kind == RydbergStage {
			idx = append(idx, i)
		}
	}
	return idx
}

// NumRydbergStages counts Rydberg stages.
func (s *Staged) NumRydbergStages() int { return len(s.RydbergStages()) }

// GateCounts returns the total number of U3 and CZ gates across stages.
func (s *Staged) GateCounts() (oneQ, twoQ int) {
	for _, st := range s.Stages {
		if st.Kind == OneQStage {
			oneQ += len(st.Gates)
		} else {
			twoQ += len(st.Gates)
		}
	}
	return oneQ, twoQ
}

// Validate checks the stage structure: kinds match contents, qubits are
// disjoint within each stage, and indices are in range.
func (s *Staged) Validate() error {
	for i, st := range s.Stages {
		seen := map[int]bool{}
		for _, g := range st.Gates {
			switch st.Kind {
			case OneQStage:
				if g.Kind != U3 {
					return fmt.Errorf("staged %q stage %d: non-U3 gate %s in 1q stage", s.Name, i, g.Kind)
				}
			case RydbergStage:
				// CZ is the standard entangling gate; CCZ is allowed for
				// architectures with three-trap Rydberg sites (§III).
				if g.Kind != CZ && g.Kind != CCZ {
					return fmt.Errorf("staged %q stage %d: non-entangling gate %s in Rydberg stage", s.Name, i, g.Kind)
				}
			}
			for _, q := range g.Qubits {
				if q < 0 || q >= s.NumQubits {
					return fmt.Errorf("staged %q stage %d: qubit %d out of range", s.Name, i, q)
				}
				if seen[q] {
					return fmt.Errorf("staged %q stage %d: qubit %d used twice in one stage", s.Name, i, q)
				}
				seen[q] = true
			}
		}
	}
	return nil
}

// Flatten converts the staged program back to a flat circuit (stage order).
func (s *Staged) Flatten() *Circuit {
	c := New(s.Name, s.NumQubits)
	for _, st := range s.Stages {
		c.Gates = append(c.Gates, st.Gates...)
	}
	return c
}
