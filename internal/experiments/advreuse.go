package experiments

import (
	"context"

	"zac/internal/arch"
	"zac/internal/core"
	"zac/internal/place"
)

// AdvReuse evaluates the paper's §X future-work optimization — movements
// within entanglement zones for more advanced qubit reuse — against stock
// ZAC: fidelity, atom transfers, and duration per circuit. This is the
// ablation the paper proposes but does not evaluate; DESIGN.md lists it as
// an extension experiment.
func AdvReuse(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	fid := &Table{
		Title:   "Extension: advanced in-zone reuse (paper §X) — fidelity",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	tran := &Table{
		Title:   "Extension: advanced in-zone reuse — atom transfers",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	dur := &Table{
		Title:   "Extension: advanced in-zone reuse — duration (ms)",
		Columns: []string{"ZAC", "ZAC+advReuse"},
	}
	advOpts := core.Options{Place: func() place.Options {
		o := place.Default()
		o.AdvancedReuse = true
		return o
	}()}
	variants := []struct {
		optKey string
		opts   core.Options
	}{
		{core.SettingSADynPlaceReuse, core.Default()},
		{"advReuse", advOpts},
	}
	results, err := mapRows(ctx, cfg, len(benches)*len(variants), func(k int) (*core.Result, error) {
		b, v := benches[k/len(variants)], variants[k%len(variants)]
		r, err := cachedZAC(ctx, cfg, b, a, v.optKey, v.opts)
		if err != nil {
			return nil, err
		}
		cfg.progressf("advreuse: %s/%s", b.Name, v.optKey)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		base, adv := results[i*2], results[i*2+1]
		fid.AddRow(b.Name, map[string]float64{
			"ZAC": base.Breakdown.Total, "ZAC+advReuse": adv.Breakdown.Total,
		})
		tran.AddRow(b.Name, map[string]float64{
			"ZAC": float64(base.Stats.Transfers), "ZAC+advReuse": float64(adv.Stats.Transfers),
		})
		dur.AddRow(b.Name, map[string]float64{
			"ZAC": base.Duration / 1000, "ZAC+advReuse": adv.Duration / 1000,
		})
	}
	return []*Table{fid, tran, dur}, nil
}

// Sweep evaluates ZAC's tunable placement parameters — candidate-box
// expansion δ, return-candidate radius k, lookahead weight α, and SA
// iteration budget — on a representative subset, reporting geomean fidelity
// per configuration. This is the design-choice ablation DESIGN.md calls out
// for the cost-function knobs of §V.
func Sweep(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	benches, err := suite(subset)
	if err != nil {
		return nil, err
	}
	a := arch.Reference()
	type swCfg struct {
		name string
		mut  func(o *place.Options)
	}
	groups := []struct {
		title string
		cfgs  []swCfg
	}{
		{"Sweep: candidate expansion δ", []swCfg{
			{"δ=1", func(o *place.Options) { o.Expansion = 1 }},
			{"δ=2", func(o *place.Options) { o.Expansion = 2 }},
			{"δ=4", func(o *place.Options) { o.Expansion = 4 }},
		}},
		{"Sweep: return neighborhood k", []swCfg{
			{"k=1", func(o *place.Options) { o.KNeighbors = 1 }},
			{"k=2", func(o *place.Options) { o.KNeighbors = 2 }},
			{"k=4", func(o *place.Options) { o.KNeighbors = 4 }},
		}},
		{"Sweep: lookahead α", []swCfg{
			{"α=0", func(o *place.Options) { o.Alpha = -1 }}, // fill() keeps non-zero; -1 disables boost
			{"α=0.1", func(o *place.Options) { o.Alpha = 0.1 }},
			{"α=0.5", func(o *place.Options) { o.Alpha = 0.5 }},
		}},
		{"Sweep: SA iterations", []swCfg{
			{"SA=100", func(o *place.Options) { o.SAIterations = 100 }},
			{"SA=1000", func(o *place.Options) { o.SAIterations = 1000 }},
			{"SA=5000", func(o *place.Options) { o.SAIterations = 5000 }},
		}},
	}

	// Flatten every (group, config, bench) cell into one pool run so the
	// whole sweep shares the worker budget.
	type task struct {
		g, c, b int
	}
	var tasks []task
	for g := range groups {
		for c := range groups[g].cfgs {
			for b := range benches {
				tasks = append(tasks, task{g, c, b})
			}
		}
	}
	vals, err := mapRows(ctx, cfg, len(tasks), func(k int) (float64, error) {
		tk := tasks[k]
		c, b := groups[tk.g].cfgs[tk.c], benches[tk.b]
		o := place.Default()
		c.mut(&o)
		r, err := cachedZAC(ctx, cfg, b, a, "sweep|"+c.name, core.Options{Place: o})
		if err != nil {
			return 0, err
		}
		cfg.progressf("sweep: %s/%s", b.Name, c.name)
		return r.Breakdown.Total, nil
	})
	if err != nil {
		return nil, err
	}
	byCell := map[task]float64{}
	for k, tk := range tasks {
		byCell[tk] = vals[k]
	}
	var tables []*Table
	for g, grp := range groups {
		var cols []string
		for _, c := range grp.cfgs {
			cols = append(cols, c.name)
		}
		t := &Table{Title: grp.title, Columns: cols}
		for b, bm := range benches {
			row := map[string]float64{}
			for c, sw := range grp.cfgs {
				row[sw.name] = byCell[task{g, c, b}]
			}
			t.AddRow(bm.Name, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
