package experiments

import (
	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/resynth"
)

// NativeCCZ evaluates the §III multi-trap-site capability: the
// Toffoli-heavy benchmarks compiled with the standard 6-CZ decomposition on
// the reference architecture versus native CCZ gates on the three-trap-site
// variant (ReferenceTriple). Fewer entangling gates and Rydberg stages
// trade against the wider site pitch.
func NativeCCZ(subset []string) ([]*Table, error) {
	names := subset
	if len(names) == 0 {
		names = []string{"multiply_n13", "seca_n11", "knn_n31", "swap_test_n25"}
	}
	fid := &Table{
		Title:   "Extension: native CCZ on three-trap sites (fidelity)",
		Columns: []string{"decomposed", "nativeCCZ"},
	}
	stages := &Table{
		Title:   "Extension: native CCZ — Rydberg stages",
		Columns: []string{"decomposed", "nativeCCZ"},
	}
	ref := arch.Reference()
	triple := arch.ReferenceTriple()
	for _, name := range names {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		c := b.Build()

		plain, err := resynth.Preprocess(c)
		if err != nil {
			return nil, err
		}
		plain = circuit.SplitRydbergStages(plain, ref.TotalSites())
		rPlain, err := core.CompileStaged(plain, ref, core.Default())
		if err != nil {
			return nil, err
		}

		native, err := resynth.PreprocessNativeCCZ(c)
		if err != nil {
			return nil, err
		}
		native = circuit.SplitRydbergStages(native, triple.TotalSites())
		rNative, err := core.CompileStaged(native, triple, core.Default())
		if err != nil {
			return nil, err
		}

		fid.AddRow(name, map[string]float64{
			"decomposed": rPlain.Breakdown.Total, "nativeCCZ": rNative.Breakdown.Total,
		})
		stages.AddRow(name, map[string]float64{
			"decomposed": float64(rPlain.NumRydbergStages), "nativeCCZ": float64(rNative.NumRydbergStages),
		})
	}
	return []*Table{fid, stages}, nil
}
