package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"zac/internal/engine"
)

// fastPolicy keeps retry/breaker tests instant: no real backoff sleeps, a
// two-failure trip threshold, and a short reprobe window.
func fastPolicy() engine.RetryPolicy {
	return engine.RetryPolicy{
		Attempts:      2,
		BaseDelay:     time.Microsecond,
		FailThreshold: 2,
		Reprobe:       20 * time.Millisecond,
		Sleep:         func(time.Duration) {},
	}
}

// faultyCache opens a DiskCache whose every I/O operation consults plan.
func faultyCache(t *testing.T, plan *Plan) *engine.DiskCache {
	t.Helper()
	d, err := engine.OpenDiskCacheFS(t.TempDir(), 0, WrapFS(engine.OSFS, plan))
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetryPolicy(fastPolicy())
	return d
}

// TestDiskCachePartialWriteRecovery injects a silent short write under the
// first Put: the entry commits torn, the reader's checksum must refuse it,
// and the next Put must heal the slot.
func TestDiskCachePartialWriteRecovery(t *testing.T) {
	plan := NewPlan(1, Rule{Point: PointWrite, Hits: []uint64{1}, Kind: KindPartialWrite})
	d := faultyCache(t, plan)
	payload := bytes.Repeat([]byte("zac!"), 256)

	if err := d.Put("k", payload); err != nil {
		t.Fatalf("silent partial write surfaced an error: %v", err)
	}
	if got, ok := d.Get("k"); ok {
		t.Fatalf("served a torn entry: %d bytes", len(got))
	}
	if st := d.Stats(); st.Corrupt == 0 {
		t.Fatalf("torn entry not counted corrupt: %+v", st)
	}
	if st := plan.Stats(PointWrite); st.Fired != 1 {
		t.Fatalf("fault did not fire exactly once: %+v", st)
	}

	// Self-heal: rewriting the key replaces the torn entry.
	if err := d.Put("k", payload); err != nil {
		t.Fatalf("healing Put: %v", err)
	}
	got, ok := d.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("healed entry wrong: ok=%v len=%d", ok, len(got))
	}
}

// TestDiskCacheTornRenameRecovery injects a torn commit: the rename reports
// success but only a prefix of the staged bytes lands at the destination.
func TestDiskCacheTornRenameRecovery(t *testing.T) {
	plan := NewPlan(2, Rule{Point: PointRename, Hits: []uint64{1}, Kind: KindTornRename, Fraction: 0.4})
	d := faultyCache(t, plan)
	payload := bytes.Repeat([]byte{0xAB}, 4096)

	if err := d.Put("k", payload); err != nil {
		t.Fatalf("torn rename surfaced an error: %v", err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("served a torn-renamed entry")
	}
	if st := d.Stats(); st.Corrupt == 0 {
		t.Fatalf("torn rename not counted corrupt: %+v", st)
	}
	if err := d.Put("k", payload); err != nil {
		t.Fatalf("healing Put: %v", err)
	}
	if got, ok := d.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("healed entry wrong: ok=%v len=%d", ok, len(got))
	}
}

// TestDiskCacheBitFlipNeverServed flips one bit of the bytes a read returns;
// the checksum must turn that into a miss, never a wrong payload.
func TestDiskCacheBitFlipNeverServed(t *testing.T) {
	plan := NewPlan(3, Rule{Point: PointReadFile, Hits: []uint64{1}, Kind: KindBitFlip})
	d := faultyCache(t, plan)
	payload := bytes.Repeat([]byte("corrupt-me"), 100)

	if err := d.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get("k"); ok && !bytes.Equal(got, payload) {
		t.Fatal("served bit-flipped bytes")
	} else if ok {
		t.Fatal("flip did not corrupt the read (fault not exercised)")
	}
	// The poisoned read discarded the entry; a rewrite restores service.
	if err := d.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("healed entry wrong: ok=%v", ok)
	}
}

// TestDiskCacheBreakerTripAndRecover drives the circuit breaker through its
// whole lifecycle with injected I/O errors: closed → open under persistent
// failures (operations then short-circuit), half-open reprobe once the
// window elapses, closed again when the disk is healthy.
func TestDiskCacheBreakerTripAndRecover(t *testing.T) {
	plan := NewPlan(4,
		Rule{Point: PointCreateTemp, Prob: 1, Kind: KindError},
		Rule{Point: PointReadFile, Prob: 1, Kind: KindError},
	)
	plan.SetEnabled(false)
	d := faultyCache(t, plan)
	payload := []byte("survivor")
	if err := d.Put("warm", payload); err != nil {
		t.Fatal(err)
	}
	plan.SetEnabled(true)

	// Two consecutive failed operations (each already retried) trip the
	// breaker.
	if err := d.Put("k1", payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under fault = %v, want injected error", err)
	}
	if err := d.Put("k2", payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under fault = %v, want injected error", err)
	}
	st := d.Stats()
	if st.BreakerState != engine.BreakerOpen || st.BreakerOpens == 0 {
		t.Fatalf("breaker did not open: %+v", st)
	}
	if st.Retries == 0 || st.IOFailures < 2 {
		t.Fatalf("retry accounting missing: %+v", st)
	}

	// Open breaker: operations short-circuit without touching the disk.
	if err := d.Put("k3", payload); !errors.Is(err, engine.ErrDiskUnavailable) {
		t.Fatalf("Put with open breaker = %v, want ErrDiskUnavailable", err)
	}
	if _, ok := d.Get("warm"); ok {
		t.Fatal("Get served through an open breaker")
	}
	if st := d.Stats(); st.BreakerSkips == 0 {
		t.Fatalf("skips not counted: %+v", st)
	}

	// Faults stop; after the reprobe window one trial closes the breaker.
	plan.SetEnabled(false)
	time.Sleep(fastPolicy().Reprobe + 10*time.Millisecond)
	if got, ok := d.Get("warm"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reprobe Get failed: ok=%v", ok)
	}
	if st := d.Stats(); st.BreakerState != engine.BreakerClosed {
		t.Fatalf("breaker did not close after recovery: %+v", st)
	}
	if err := d.Put("k3", payload); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if got, ok := d.Get("k3"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("entry written after recovery wrong: ok=%v", ok)
	}
}

// TestDiskCacheChaosSelfHeals runs a pinned-seed randomized fault schedule —
// partial writes, torn renames, bit flips, and outright I/O errors — over
// many keys and asserts the two chaos invariants: a Get that reports a hit
// always returns the exact bytes that were Put, and once the faults stop the
// cache converges back to serving every key correctly.
func TestDiskCacheChaosSelfHeals(t *testing.T) {
	plan := NewPlan(0xC4A05,
		Rule{Point: PointWrite, Prob: 0.3, Kind: KindPartialWrite},
		Rule{Point: PointRename, Prob: 0.3, Kind: KindTornRename},
		Rule{Point: PointReadFile, Prob: 0.2, Kind: KindBitFlip},
		Rule{Point: PointMkdirAll, Prob: 0.1, Kind: KindError},
	)
	d := faultyCache(t, plan)

	pay := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("payload-%03d.", i)), 50)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%03d", i)
		d.Put(key, pay(i)) // errors allowed under fault; corruption is not
		if got, ok := d.Get(key); ok && !bytes.Equal(got, pay(i)) {
			t.Fatalf("chaos served corrupt bytes for %s", key)
		}
	}
	if plan.Fired("fs.") == 0 {
		t.Fatal("chaos schedule fired no faults; test exercised nothing")
	}

	// Faults stop: every key must heal on rewrite.
	plan.SetEnabled(false)
	time.Sleep(fastPolicy().Reprobe + 10*time.Millisecond) // let any open breaker reprobe
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := d.Put(key, pay(i)); err != nil {
			t.Fatalf("healing Put %s: %v", key, err)
		}
		if got, ok := d.Get(key); !ok || !bytes.Equal(got, pay(i)) {
			t.Fatalf("post-chaos Get %s: ok=%v", key, ok)
		}
	}
	if st := d.Stats(); st.BreakerState != engine.BreakerClosed {
		t.Fatalf("breaker not closed after chaos: %+v", st)
	}
}
