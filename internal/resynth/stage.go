package resynth

import (
	"fmt"

	"zac/internal/circuit"
)

// Schedule performs ASAP scheduling of a {CZ,U3} circuit into alternating
// stages (paper Fig. 4): each Rydberg stage holds CZ gates on disjoint qubit
// pairs (one global Rydberg exposure), preceded by a 1Q stage holding the U3
// gates that must run before it. Dependency order is preserved.
func Schedule(c *circuit.Circuit) (*circuit.Staged, error) {
	// ASAP level per CZ gate: a CZ goes to Rydberg stage t where t is one
	// more than the largest stage of any earlier CZ sharing a qubit. U3 gates
	// attach to the 1Q stage immediately before the next CZ on their qubit
	// (or the trailing stage).
	type czInfo struct {
		idx   int
		stage int
	}
	stageOfQubit := make([]int, c.NumQubits) // next available Rydberg stage per qubit
	var czStages [][]circuit.Gate
	// oneQBefore[t] = U3 gates to run before Rydberg stage t; index len(czStages)
	// collects trailing gates.
	oneQBefore := map[int][]circuit.Gate{}

	for i, g := range c.Gates {
		switch g.Kind {
		case circuit.U3:
			q := g.Qubits[0]
			oneQBefore[stageOfQubit[q]] = append(oneQBefore[stageOfQubit[q]], g)
		case circuit.CZ, circuit.CCZ:
			t := 0
			for _, q := range g.Qubits {
				if stageOfQubit[q] > t {
					t = stageOfQubit[q]
				}
			}
			for len(czStages) <= t {
				czStages = append(czStages, nil)
			}
			czStages[t] = append(czStages[t], g)
			for _, q := range g.Qubits {
				stageOfQubit[q] = t + 1
			}
		default:
			return nil, fmt.Errorf("resynth: Schedule expects {CZ,CCZ,U3}, found %s at %d", g.Kind, i)
		}
	}

	s := &circuit.Staged{Name: c.Name, NumQubits: c.NumQubits}
	for t := 0; t <= len(czStages); t++ {
		if gs := oneQBefore[t]; len(gs) > 0 {
			s.Stages = append(s.Stages, circuit.Stage{Kind: circuit.OneQStage, Gates: gs})
		}
		if t < len(czStages) && len(czStages[t]) > 0 {
			s.Stages = append(s.Stages, circuit.Stage{Kind: circuit.RydbergStage, Gates: czStages[t]})
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Preprocess runs the full pipeline: decompose → 1Q-optimize → ASAP stage.
// This is the entry point the compiler front end uses.
func Preprocess(c *circuit.Circuit) (*circuit.Staged, error) {
	return preprocess(c, nil)
}

// PreprocessNativeCCZ preprocesses for architectures whose Rydberg sites
// have three traps (§III): CCZ/CCX gates map to a single native CCZ instead
// of the 6-CZ decomposition.
func PreprocessNativeCCZ(c *circuit.Circuit) (*circuit.Staged, error) {
	return preprocess(c, map[circuit.Kind]bool{circuit.CCZ: true})
}

func preprocess(c *circuit.Circuit, keep map[circuit.Kind]bool) (*circuit.Staged, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	dec, err := DecomposeKeep(c, keep)
	if err != nil {
		return nil, err
	}
	opt, err := Optimize1Q(dec)
	if err != nil {
		return nil, err
	}
	return Schedule(opt)
}
