package engine

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// FS is the narrow filesystem seam every DiskCache I/O operation goes
// through. Production code uses the process filesystem (OSFS); tests and the
// fault-injection harness (internal/faultinject) substitute wrappers that
// return errors, delay operations, or corrupt bytes at named injection
// points — so the cache's recovery paths are driven by injected failures
// instead of hand-crafted corrupt files.
type FS interface {
	// ReadFile reads the named file in full.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory path along with any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp) open for writing.
	CreateTemp(dir, pattern string) (FileWriter, error)
	// Rename atomically moves oldpath to newpath (the commit step of a
	// temp-file write).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Stat describes the named file.
	Stat(name string) (os.FileInfo, error)
	// Chtimes sets the access and modification times of the named file.
	Chtimes(name string, atime, mtime time.Time) error
	// WalkDir walks the file tree rooted at root.
	WalkDir(root string, fn fs.WalkDirFunc) error
}

// FileWriter is the write handle CreateTemp returns: the subset of *os.File
// a staged cache write needs.
type FileWriter interface {
	io.Writer
	io.Closer
	// Name returns the file's path, for the later Rename or Remove.
	Name() string
}

// OSFS is the real process filesystem: the default FS of every DiskCache
// opened with OpenDiskCache.
var OSFS FS = osFS{}

// osFS implements FS directly on the os package.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Chtimes(name string, a, m time.Time) error    { return os.Chtimes(name, a, m) }
func (osFS) WalkDir(root string, fn fs.WalkDirFunc) error { return filepath.WalkDir(root, fn) }
func (osFS) CreateTemp(dir, pattern string) (FileWriter, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
