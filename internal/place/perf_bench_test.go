package place

import (
	"context"
	"math/rand"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/resynth"
)

// Micro-benchmarks over the placement hot path (ISSUE 3): run with
//
//	go test ./internal/place -run xxx -bench 'BenchmarkSAInitial|BenchmarkBuildPlan' -benchmem
//
// or via scripts/bench-compare.sh, which also diffs against a git ref.

func stagedFor(b *testing.B, name string) *circuit.Staged {
	b.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	staged, err := resynth.Preprocess(bm.Build())
	if err != nil {
		b.Fatal(err)
	}
	return staged
}

// BenchmarkSAInitial measures the §V-A simulated-annealing initial placement
// (1000 iterations, the paper's budget) on the densest subset circuit.
func BenchmarkSAInitial(b *testing.B) {
	a := arch.Reference()
	staged := stagedFor(b, "qft_n18")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SAInitial(a, staged, 1000, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildPlan measures the full placement pipeline under the paper's
// SA+dynPlace+reuse preset for the two heaviest subset circuits.
func BenchmarkBuildPlan(b *testing.B) {
	a := arch.Reference()
	for _, name := range []string{"qft_n18", "ising_n42"} {
		staged := stagedFor(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildPlan(context.Background(), a, staged, Default()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
