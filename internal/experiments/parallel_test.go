package experiments

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// render flattens an experiment's tables to one comparable string.
func render(t *testing.T, tabs []*Table) string {
	t.Helper()
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.Render())
		b.WriteString(tab.CSV())
	}
	return b.String()
}

// TestParallelMatchesSequential is the engine's determinism contract: for
// every experiment whose values are model-derived (no wall-clock columns),
// an uncached sequential run and a cached 8-worker run must produce
// byte-identical tables.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		id     string
		subset []string
	}{
		{"fig1c", fast},
		{"fig8", fast},
		{"fig9", fast},
		{"fig10", fast},
		{"fig11", fast},
		{"fig13", fast},
		{"table2", fast},
		{"zair", fast},
		{"nativeccz", []string{"multiply_n13"}},
	} {
		seqTabs, err := RunWith(ctx, Config{Parallel: 1, NoCache: true}, tc.id, tc.subset)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.id, err)
		}
		ResetCache()
		parTabs, err := RunWith(ctx, Config{Parallel: 8}, tc.id, tc.subset)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.id, err)
		}
		seq, par := render(t, seqTabs), render(t, parTabs)
		if seq != par {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				tc.id, seq, par)
		}
	}
}

// TestParallelRace drives several experiments through a wide pool over
// overlapping cache keys; meaningful under `go test -race` (CI runs it so).
func TestParallelRace(t *testing.T) {
	ResetCache()
	ctx := context.Background()
	for _, id := range []string{"fig8", "fig9", "fig10"} {
		if _, err := RunWith(ctx, Config{Parallel: 8}, id, fast); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

// TestCacheHitAcrossExperiments is the tentpole's sharing guarantee: fig9
// and fig10 evaluate the same four neutral-atom compilers on the same
// circuits, so the second experiment must be served entirely from the cache.
func TestCacheHitAcrossExperiments(t *testing.T) {
	ResetCache()
	ctx := context.Background()
	if _, err := RunWith(ctx, Config{Parallel: 2}, "fig9", fast); err != nil {
		t.Fatal(err)
	}
	after9 := CacheStats()
	if after9.Misses == 0 {
		t.Fatal("fig9 on a cold cache must compile something")
	}
	if _, err := RunWith(ctx, Config{Parallel: 2}, "fig10", fast); err != nil {
		t.Fatal(err)
	}
	after10 := CacheStats()
	if after10.Misses != after9.Misses {
		t.Errorf("fig10 recompiled after fig9: misses %d → %d", after9.Misses, after10.Misses)
	}
	if hits := after10.Hits() - after9.Hits(); hits < uint64(len(fast)*len(naCols)) {
		t.Errorf("fig10 should hit the cache for every (circuit, compiler) cell: got %d hits", hits)
	}
}

// TestRunWithCancelledContext verifies the pool aborts promptly when the
// caller cancels.
func TestRunWithCancelledContext(t *testing.T) {
	ResetCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWith(ctx, Config{Parallel: 2}, "fig8", fast); err == nil {
		t.Fatal("cancelled context must fail the run")
	}
}

// TestProgressReported checks the progress sink receives one line per
// completed (circuit, compiler) cell.
func TestProgressReported(t *testing.T) {
	ResetCache()
	var lines atomic.Int32
	cfg := Config{Parallel: 2, Progress: func(string) { lines.Add(1) }}
	if _, err := RunWith(context.Background(), cfg, "fig10", fast); err != nil {
		t.Fatal(err)
	}
	if got, want := int(lines.Load()), len(fast)*len(naCols); got != want {
		t.Errorf("progress lines = %d, want %d", got, want)
	}
}

// TestSequentialConfigDefault ensures the zero worker count resolves to all
// CPUs and 1 stays sequential — Run() must remain the deterministic wrapper.
func TestSequentialConfigDefault(t *testing.T) {
	if Sequential().Parallel != 1 {
		t.Fatal("Sequential() must pin one worker")
	}
}
