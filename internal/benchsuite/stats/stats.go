// Package stats implements the benchstat-style nonparametric statistics the
// performance observatory gates on: the Mann-Whitney U test (exact
// enumeration over the permutation distribution for small samples, normal
// approximation with tie correction beyond that) and order-statistic
// confidence intervals for the median. Everything operates on raw ns/op
// samples — no distributional assumptions — so the regression gate can tell
// a real slowdown from scheduler noise instead of trusting a single-number
// threshold.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MinSamples is the smallest per-sample size the U test accepts. Below it
// the test cannot reach p < 0.05 at any observed split, so a comparison
// would be an unconditional pass dressed up as statistics; callers should
// fall back to a raw threshold instead (see ErrTooFewSamples).
const MinSamples = 5

// exactLimit bounds the pooled sample size for which the test enumerates
// the exact permutation distribution (C(22,11) ≈ 705k subsets); larger
// pools use the tie-corrected normal approximation.
const exactLimit = 22

var (
	// ErrTooFewSamples reports a sample below MinSamples observations.
	ErrTooFewSamples = errors.New("stats: too few samples (need ≥ 5 per side)")
	// ErrAllEqual reports that every observation in both samples is the
	// same value, which makes the U statistic undefined (zero variance).
	ErrAllEqual = errors.New("stats: all samples are identical")
	// ErrNoSamples reports an empty sample where at least one observation
	// is required.
	ErrNoSamples = errors.New("stats: empty sample")
)

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	// StdDev is the sample (n-1) standard deviation, 0 for n < 2.
	StdDev float64
}

// Summarize computes the descriptive statistics of xs. An empty sample
// yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Median(xs)
	return s
}

// Median returns the sample median (mean of the two central order
// statistics for even n), or NaN for an empty sample.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// TestResult is the outcome of a two-sided Mann-Whitney U test.
type TestResult struct {
	// N1 and N2 are the sample sizes of x and y.
	N1, N2 int
	// U is the U statistic of the first sample (rank sum of x minus its
	// minimum); midranks are used for ties, so U may be half-integral.
	U float64
	// P is the two-sided p-value: the probability, under the null
	// hypothesis that both samples come from one distribution, of a U at
	// least as extreme as observed.
	P float64
	// Exact reports whether P came from exact enumeration of the
	// permutation distribution (pooled n ≤ 22) rather than the normal
	// approximation.
	Exact bool
}

// MannWhitneyU runs a two-sided Mann-Whitney U test of x against y. It
// refuses samples smaller than MinSamples (ErrTooFewSamples) and pools in
// which every observation is equal (ErrAllEqual); both conditions mean the
// caller must decide by other means.
func MannWhitneyU(x, y []float64) (TestResult, error) {
	if len(x) < MinSamples || len(y) < MinSamples {
		return TestResult{N1: len(x), N2: len(y)}, ErrTooFewSamples
	}
	n1, n2 := len(x), len(y)
	pooled := make([]float64, 0, n1+n2)
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	allEqual := true
	for _, v := range pooled[1:] {
		if v != pooled[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return TestResult{N1: n1, N2: n2}, ErrAllEqual
	}
	ranks := midranks(pooled)
	r1 := 0.0
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	u1 := r1 - float64(n1*(n1+1))/2
	res := TestResult{N1: n1, N2: n2, U: u1}
	if n1+n2 <= exactLimit {
		res.P = exactP(ranks, n1, u1)
		res.Exact = true
		return res, nil
	}
	res.P = normalP(ranks, n1, n2, u1)
	return res, nil
}

// midranks assigns 1-based ranks to vals, averaging ranks across ties
// (midranks), and returns them in input order.
func midranks(vals []float64) []float64 {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	ranks := make([]float64, len(vals))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = r
		}
		i = j + 1
	}
	return ranks
}

// exactP enumerates every size-n1 subset of the pooled ranks (Gosper's
// hack over a bitmask) and returns the two-sided exact p-value
// min(1, 2·min(P(U ≤ u1), P(U ≥ u1))), which handles ties correctly
// because the enumeration runs over the observed midranks.
func exactP(ranks []float64, n1 int, u1 float64) float64 {
	n := len(ranks)
	offset := float64(n1*(n1+1)) / 2
	const eps = 1e-9
	var le, ge, total uint64
	mask := uint64(1)<<n1 - 1
	limit := uint64(1) << n
	for mask < limit {
		r := 0.0
		for m := mask; m != 0; m &= m - 1 {
			r += ranks[bits.TrailingZeros64(m)]
		}
		u := r - offset
		total++
		if u <= u1+eps {
			le++
		}
		if u >= u1-eps {
			ge++
		}
		// Gosper's hack: next bitmask with the same popcount.
		c := mask & -mask
		rr := mask + c
		mask = (((rr ^ mask) >> 2) / c) | rr
	}
	pLow := float64(le) / float64(total)
	pHigh := float64(ge) / float64(total)
	p := 2 * math.Min(pLow, pHigh)
	if p > 1 {
		p = 1
	}
	return p
}

// normalP computes the two-sided p-value from the tie-corrected normal
// approximation with continuity correction.
func normalP(ranks []float64, n1, n2 int, u1 float64) float64 {
	n := float64(n1 + n2)
	// Tie correction: group sizes are recoverable from midrank
	// multiplicity (a group of t equal values shares one midrank t times).
	counts := map[float64]int{}
	for _, r := range ranks {
		counts[r]++
	}
	tieSum := 0.0
	for _, t := range counts {
		tf := float64(t)
		tieSum += tf*tf*tf - tf
	}
	mean := float64(n1*n2) / 2
	variance := float64(n1*n2) / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		return 1
	}
	z := (math.Abs(u1-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return 2 * (1 - phi(z))
}

// phi is the standard normal CDF.
func phi(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// Interval is an order-statistic confidence interval for a sample median.
type Interval struct {
	Lo, Hi float64
	// Confidence is the interval's achieved coverage, which for small n
	// can fall below the requested level (the widest symmetric interval,
	// [min, max], is returned in that case).
	Confidence float64
}

// MedianCI returns the smallest symmetric order-statistic confidence
// interval for the median of xs with coverage at least conf; when even the
// full range cannot reach conf (small n), the full range is returned with
// its achieved coverage. The sample must be non-empty.
func MedianCI(xs []float64, conf float64) (Interval, error) {
	n := len(xs)
	if n == 0 {
		return Interval{}, ErrNoSamples
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n == 1 {
		return Interval{Lo: sorted[0], Hi: sorted[0], Confidence: 0}, nil
	}
	// Interval [x_(k+1), x_(n-k)] has coverage 1 − 2·P(Binom(n,½) ≤ k);
	// scan k upward keeping the largest k (smallest interval) that still
	// meets conf.
	bestK, bestCov := 0, coverage(n, 0)
	for k := 1; k < n/2; k++ {
		cov := coverage(n, k)
		if cov >= conf {
			bestK, bestCov = k, cov
		} else {
			break
		}
	}
	if bestCov < conf && bestK != 0 {
		bestK, bestCov = 0, coverage(n, 0)
	}
	return Interval{Lo: sorted[bestK], Hi: sorted[n-1-bestK], Confidence: bestCov}, nil
}

// coverage returns the coverage 1 − 2·P(Binom(n,½) ≤ k) of the symmetric
// order-statistic interval [x_(k+1), x_(n-k)].
func coverage(n, k int) float64 {
	tail := 0.0
	for t := 0; t <= k; t++ {
		tail += binom(n, t)
	}
	return 1 - 2*tail/math.Pow(2, float64(n))
}

// binom returns C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// FormatP renders a p-value the way benchstat does: three decimals, with
// "p=0.000" floored at the display precision.
func FormatP(p float64) string { return fmt.Sprintf("p=%.3f", p) }
