package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaxMatching finds the true maximum matching size by exhaustive search.
func bruteMaxMatching(adj [][]int, nRight int) int {
	usedR := make([]bool, nRight)
	var rec func(u int) int
	rec = func(u int) int {
		if u == len(adj) {
			return 0
		}
		best := rec(u + 1) // skip u
		for _, v := range adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if got := 1 + rec(u+1); got > best {
					best = got
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func validMatching(t *testing.T, adj [][]int, nRight int, matchL []int) {
	t.Helper()
	seen := make(map[int]int)
	for u, v := range matchL {
		if v == -1 {
			continue
		}
		if v < 0 || v >= nRight {
			t.Fatalf("match out of range: %d -> %d", u, v)
		}
		ok := false
		for _, w := range adj[u] {
			if w == v {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("matched along non-edge %d -> %d", u, v)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("right vertex %d matched twice (%d and %d)", v, prev, u)
		}
		seen[v] = u
	}
}

func TestHopcroftKarpSmall(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	matchL, size := HopcroftKarp(adj, 3)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	validMatching(t, adj, 3, matchL)
}

func TestHopcroftKarpNoEdges(t *testing.T) {
	adj := [][]int{{}, {}, {}}
	matchL, size := HopcroftKarp(adj, 4)
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	for _, v := range matchL {
		if v != -1 {
			t.Fatal("unexpected match")
		}
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	matchL, size := HopcroftKarp(nil, 0)
	if size != 0 || len(matchL) != 0 {
		t.Fatal("empty graph should yield empty matching")
	}
}

func TestHopcroftKarpContention(t *testing.T) {
	// All left vertices want the single right vertex.
	adj := [][]int{{0}, {0}, {0}}
	matchL, size := HopcroftKarp(adj, 1)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
	validMatching(t, adj, 1, matchL)
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		nL := 1 + r.Intn(7)
		nR := 1 + r.Intn(7)
		adj := make([][]int, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if r.Float64() < 0.4 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		matchL, size := HopcroftKarp(adj, nR)
		validMatching(t, adj, nR, matchL)
		if want := bruteMaxMatching(adj, nR); size != want {
			t.Fatalf("iter %d: size %d, brute force %d, adj=%v", iter, size, want, adj)
		}
	}
}

func TestHopcroftKarpPerfectOnCompleteGraph(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		adj := make([][]int, n)
		for u := range adj {
			for v := 0; v < n; v++ {
				adj[u] = append(adj[u], v)
			}
		}
		_, size := HopcroftKarp(adj, n)
		return size == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// bruteAssignment finds min-cost full assignment by exhaustive permutation.
func bruteAssignment(cost [][]float64) (float64, bool) {
	n, m := len(cost), len(cost[0])
	usedC := make([]bool, m)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < m; j++ {
			if !usedC[j] && !math.IsInf(cost[i][j], 1) {
				usedC[j] = true
				rec(i+1, acc+cost[i][j])
				usedC[j] = false
			}
		}
	}
	rec(0, 0)
	return best, !math.IsInf(best, 1)
}

func TestJVSquareKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowTo, total, err := MinWeightFullMatching(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5 (assignment %v)", total, rowTo)
	}
}

func TestJVRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 3, 8, 1},
		{7, 9, 2, 6},
	}
	rowTo, total, err := MinWeightFullMatching(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 { // 1 + 2
		t.Fatalf("total = %v (assignment %v), want 3", total, rowTo)
	}
	if rowTo[0] == rowTo[1] {
		t.Fatal("two rows assigned same column")
	}
}

func TestJVInfeasible(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{1, inf},
		{2, inf},
	}
	if _, _, err := MinWeightFullMatching(cost); err == nil {
		t.Fatal("expected ErrNoFullMatching")
	}
}

func TestJVMoreRowsThanCols(t *testing.T) {
	cost := [][]float64{{1}, {2}}
	if _, _, err := MinWeightFullMatching(cost); err == nil {
		t.Fatal("expected error for n > m")
	}
}

func TestJVEmpty(t *testing.T) {
	rowTo, total, err := MinWeightFullMatching(nil)
	if err != nil || total != 0 || rowTo != nil {
		t.Fatalf("empty: %v %v %v", rowTo, total, err)
	}
}

func TestJVForbiddenEdgesRespected(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1, inf},
		{1, inf, inf},
		{inf, inf, 1},
	}
	rowTo, total, err := MinWeightFullMatching(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || rowTo[0] != 1 || rowTo[1] != 0 || rowTo[2] != 2 {
		t.Fatalf("got %v total %v", rowTo, total)
	}
}

func TestJVMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		n := 1 + r.Intn(5)
		m := n + r.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if r.Float64() < 0.15 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = math.Round(r.Float64()*100) / 4
				}
			}
		}
		want, feasible := bruteAssignment(cost)
		rowTo, total, err := MinWeightFullMatching(cost)
		if !feasible {
			if err == nil {
				t.Fatalf("iter %d: expected infeasible, got %v / %v", iter, rowTo, total)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: unexpected error %v for cost %v", iter, err, cost)
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("iter %d: total %v, brute force %v, cost %v", iter, total, want, cost)
		}
		// Assignment must be a valid injection.
		seen := make(map[int]bool)
		for i, j := range rowTo {
			if j < 0 || j >= m || seen[j] || math.IsInf(cost[i][j], 1) {
				t.Fatalf("iter %d: invalid assignment %v", iter, rowTo)
			}
			seen[j] = true
		}
	}
}

func TestJVNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 2},
		{3, -4},
	}
	_, total, err := MinWeightFullMatching(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -9 {
		t.Fatalf("total = %v, want -9", total)
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 200
	adj := make([][]int, n)
	for u := range adj {
		for v := 0; v < n; v++ {
			if r.Float64() < 0.05 {
				adj[u] = append(adj[u], v)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(adj, n)
	}
}

func BenchmarkJV(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 80
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = r.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinWeightFullMatching(cost); err != nil {
			b.Fatal(err)
		}
	}
}
