// difftest repro
// class: accounting
// compiler: stub-acct
// input: seeded-acct
// detail: move accounting: program replays 48 qubit movements, result reports 49
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cz q[3],q[1];
cz q[2],q[0];
