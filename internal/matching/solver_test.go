package matching

import (
	"math"
	"math/rand"
	"testing"
)

// randomCost builds a random n×m matrix with a given probability of
// +Inf-forbidden entries and optionally negative costs.
func randomCost(r *rand.Rand, n, m int, pInf float64, negative bool) [][]float64 {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			switch {
			case r.Float64() < pInf:
				cost[i][j] = math.Inf(1)
			case negative && r.Float64() < 0.5:
				cost[i][j] = -math.Round(r.Float64()*100) / 4
			default:
				cost[i][j] = math.Round(r.Float64()*100) / 4
			}
		}
	}
	return cost
}

func flatten(cost [][]float64) (int, int, []float64) {
	n := len(cost)
	if n == 0 {
		return 0, 0, nil
	}
	m := len(cost[0])
	flat := make([]float64, 0, n*m)
	for _, row := range cost {
		flat = append(flat, row...)
	}
	return n, m, flat
}

// toCSR converts a dense matrix to the sparse candidate-list form, dropping
// the +Inf entries (absent arcs are forbidden by definition).
func toCSR(cost [][]float64) (rowStart, cols []int, costs []float64) {
	rowStart = []int{0}
	for _, row := range cost {
		for j, c := range row {
			if !math.IsInf(c, 1) {
				cols = append(cols, j)
				costs = append(costs, c)
			}
		}
		rowStart = append(rowStart, len(cols))
	}
	return rowStart, cols, costs
}

// TestSolverMatchesReference is the ISSUE 3 property test: on random
// rectangular matrices (including +Inf-forbidden and negative-cost
// entries), Solver.SolveDense and Solver.SolveSparse must agree exactly —
// same assignment, same total, same infeasibility verdict — with the
// existing MinWeightFullMatching reference implementation. One Solver is
// reused across all iterations, as the placement hot path does.
func TestSolverMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var s Solver
	for iter := 0; iter < 600; iter++ {
		n := 1 + r.Intn(6)
		m := n + r.Intn(4)
		cost := randomCost(r, n, m, []float64{0, 0.2, 0.6}[iter%3], iter%2 == 1)

		wantTo, wantTotal, wantErr := MinWeightFullMatching(cost)

		fn, fm, flat := flatten(cost)
		gotTo, gotTotal, gotErr := s.SolveDense(fn, fm, flat)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("iter %d: dense err %v, reference err %v (cost %v)", iter, gotErr, wantErr, cost)
		}
		if wantErr == nil {
			if gotTotal != wantTotal {
				t.Fatalf("iter %d: dense total %v, reference %v", iter, gotTotal, wantTotal)
			}
			for i := range wantTo {
				if gotTo[i] != wantTo[i] {
					t.Fatalf("iter %d: dense assignment %v, reference %v", iter, gotTo, wantTo)
				}
			}
		}

		rowStart, colsIdx, costs := toCSR(cost)
		spTo, spTotal, spErr := s.SolveSparse(fn, fm, rowStart, colsIdx, costs)
		if (wantErr == nil) != (spErr == nil) {
			t.Fatalf("iter %d: sparse err %v, reference err %v (cost %v)", iter, spErr, wantErr, cost)
		}
		if wantErr == nil {
			if spTotal != wantTotal {
				t.Fatalf("iter %d: sparse total %v, reference %v", iter, spTotal, wantTotal)
			}
			for i := range wantTo {
				if spTo[i] != wantTo[i] {
					t.Fatalf("iter %d: sparse assignment %v, reference %v", iter, spTo, wantTo)
				}
			}
		}
	}
}

func TestSolverEmptyAndDegenerate(t *testing.T) {
	var s Solver
	if rowTo, total, err := s.SolveDense(0, 0, nil); err != nil || total != 0 || rowTo != nil {
		t.Fatalf("empty dense: %v %v %v", rowTo, total, err)
	}
	if rowTo, total, err := s.SolveSparse(0, 0, []int{0}, nil, nil); err != nil || total != 0 || rowTo != nil {
		t.Fatalf("empty sparse: %v %v %v", rowTo, total, err)
	}
	if _, _, err := s.SolveDense(2, 1, []float64{1, 2}); err == nil {
		t.Fatal("expected error for n > m")
	}
	if _, _, err := s.SolveSparse(2, 1, []int{0, 1, 2}, []int{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for n > m")
	}
	// A row with no arcs is infeasible.
	if _, _, err := s.SolveSparse(1, 2, []int{0, 0}, nil, nil); err != ErrNoFullMatching {
		t.Fatalf("expected ErrNoFullMatching, got %v", err)
	}
}

// TestSolverShrinksAndRegrows makes sure scratch reuse across differently
// sized problems cannot leak state between solves.
func TestSolverShrinksAndRegrows(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var s Solver
	var fresh Solver
	sizes := [][2]int{{5, 7}, {2, 2}, {6, 6}, {1, 4}, {4, 5}}
	for iter := 0; iter < 50; iter++ {
		n, m := sizes[iter%len(sizes)][0], sizes[iter%len(sizes)][1]
		cost := randomCost(r, n, m, 0.2, false)
		_, fm, flat := flatten(cost)
		gotTo, gotTotal, gotErr := s.SolveDense(n, fm, flat)
		wantTo, wantTotal, wantErr := fresh.SolveDense(n, fm, flat)
		if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && gotTotal != wantTotal) {
			t.Fatalf("iter %d: reused solver diverged: %v/%v vs %v/%v", iter, gotTo, gotTotal, wantTo, wantTotal)
		}
		fresh = Solver{}
	}
}

// BenchmarkJVDense measures the reusable dense solve; the acceptance
// criterion is 0 allocs/op after warm-up (run with -benchmem).
func BenchmarkJVDense(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 80
	flat := make([]float64, n*n)
	for i := range flat {
		flat[i] = r.Float64() * 100
	}
	var s Solver
	if _, _, err := s.SolveDense(n, n, flat); err != nil { // warm up the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveDense(n, n, flat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJVSparse measures the candidate-list solve on a gate-placement
// shaped instance: each row sees only a ~25-column neighborhood of a much
// wider site grid, as place.Options' δ-expansion produces.
func BenchmarkJVSparse(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n, m, deg := 40, 400, 25
	var rowStart, cols []int
	var costs []float64
	rowStart = append(rowStart, 0)
	for i := 0; i < n; i++ {
		base := r.Intn(m - deg)
		for d := 0; d < deg; d++ {
			cols = append(cols, base+d)
			costs = append(costs, r.Float64()*100)
		}
		rowStart = append(rowStart, len(cols))
	}
	var s Solver
	if _, _, err := s.SolveSparse(n, m, rowStart, cols, costs); err != nil { // warm up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveSparse(n, m, rowStart, cols, costs); err != nil {
			b.Fatal(err)
		}
	}
}
