package experiments

import (
	"context"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/core"
)

// NativeCCZ evaluates the §III multi-trap-site capability: the
// Toffoli-heavy benchmarks compiled with the standard 6-CZ decomposition on
// the reference architecture versus native CCZ gates on the three-trap-site
// variant (ReferenceTriple). Fewer entangling gates and Rydberg stages
// trade against the wider site pitch.
func NativeCCZ(ctx context.Context, cfg Config, subset []string) ([]*Table, error) {
	names := subset
	if len(names) == 0 {
		names = []string{"multiply_n13", "seca_n11", "knn_n31", "swap_test_n25"}
	}
	benches := make([]bench.Benchmark, len(names))
	for i, name := range names {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		benches[i] = b
	}
	fid := &Table{
		Title:   "Extension: native CCZ on three-trap sites (fidelity)",
		Columns: []string{"decomposed", "nativeCCZ"},
	}
	stages := &Table{
		Title:   "Extension: native CCZ — Rydberg stages",
		Columns: []string{"decomposed", "nativeCCZ"},
	}
	ref := arch.Reference()
	triple := arch.ReferenceTriple()
	results, err := mapRows(ctx, cfg, len(benches)*2, func(k int) (*core.Result, error) {
		b, native := benches[k/2], k%2 == 1
		if native {
			r, err := cachedZACNativeCCZ(ctx, cfg, b, triple)
			if err != nil {
				return nil, err
			}
			cfg.progressf("nativeccz: %s/native", b.Name)
			return r, nil
		}
		r, err := cachedZAC(ctx, cfg, b, ref, core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return nil, err
		}
		cfg.progressf("nativeccz: %s/decomposed", b.Name)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		plain, native := results[i*2], results[i*2+1]
		fid.AddRow(b.Name, map[string]float64{
			"decomposed": plain.Breakdown.Total, "nativeCCZ": native.Breakdown.Total,
		})
		stages.AddRow(b.Name, map[string]float64{
			"decomposed": float64(plain.NumRydbergStages), "nativeCCZ": float64(native.NumRydbergStages),
		})
	}
	return []*Table{fid, stages}, nil
}
