// difftest repro
// class: sanity
// compiler: stub-sane
// input: seeded-sane
// detail: fidelity term total = 1.5 outside [0,1]
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rzz(0.2) q[0],q[1];
