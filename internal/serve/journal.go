package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// journalEntry is the durable record of one accepted async job: everything
// needed to re-run it after a crash. Written before the 202 acknowledgement,
// deleted when the job reaches a terminal state.
type journalEntry struct {
	ID              string           `json:"id"`
	Requests        []CompileRequest `json:"requests"`
	DefaultCompiler string           `json:"default_compiler,omitempty"`
	IncludeZAIR     bool             `json:"include_zair"`
}

// jobJournal persists accepted async jobs as one JSON file per job
// (<dir>/<id>.json), committed with the same temp-file + rename discipline
// as disk-cache entries so a crash mid-write never leaves a half-readable
// record — at worst a stale .tmp file, removed on the next open.
type jobJournal struct {
	dir string
	mu  sync.Mutex
}

// openJournal creates (if needed) the journal directory and removes stale
// temp files from interrupted writers.
func openJournal(dir string) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, p := range stale {
		os.Remove(p)
	}
	return &jobJournal{dir: dir}, nil
}

// record writes the entry durably; only after it returns may the job be
// acknowledged to the client.
func (jl *jobJournal) record(e journalEntry) error {
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	tmp, err := os.CreateTemp(jl.dir, e.ID+"-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(jl.dir, e.ID+".json")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// remove deletes a finished job's record. Best effort: a record that
// outlives its job only costs a redundant (cache-served) replay next start.
func (jl *jobJournal) remove(id string) {
	jl.mu.Lock()
	os.Remove(filepath.Join(jl.dir, id+".json"))
	jl.mu.Unlock()
}

// load reads every journal record, sorted by id for deterministic replay
// order. Unreadable records are returned by id in damaged (their files are
// removed) so the server can register them as interrupted instead of
// silently forgetting an accepted job.
func (jl *jobJournal) load() (entries []journalEntry, damaged []string, err error) {
	paths, err := filepath.Glob(filepath.Join(jl.dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		id := strings.TrimSuffix(filepath.Base(p), ".json")
		data, err := os.ReadFile(p)
		var e journalEntry
		if err != nil || json.Unmarshal(data, &e) != nil || e.ID != id || len(e.Requests) == 0 {
			damaged = append(damaged, id)
			os.Remove(p)
			continue
		}
		entries = append(entries, e)
	}
	return entries, damaged, nil
}

// OpenJournal attaches a crash-safe async-job journal rooted at dir
// (conventionally <cachedir>/jobs) and replays what a previous process left
// behind: every decodable record becomes a job again — same id, re-run from
// the start, cheap where the compile cache is warm — and every damaged one
// is registered as JobInterrupted so its id reports a loss instead of a
// 404. It returns the number of jobs replayed. Call once, before the
// handler serves traffic.
func (s *Server) OpenJournal(dir string) (int, error) {
	jl, err := openJournal(dir)
	if err != nil {
		return 0, err
	}
	entries, damaged, err := jl.load()
	if err != nil {
		return 0, err
	}
	s.journal = jl
	for _, id := range damaged {
		s.adoptJob(id, JobInterrupted, 0)
		s.log.Warn("journal record damaged", "job_id", id)
	}
	for _, e := range entries {
		j := s.adoptJob(e.ID, JobPending, len(e.Requests))
		if j == nil {
			continue // id collision with a live job; drop the stale record
		}
		s.jobsReplayed.Add(1)
		s.log.Info("journal replay", "job_id", e.ID, "requests", len(e.Requests))
		s.startJob(j, e.Requests, e.DefaultCompiler, e.IncludeZAIR)
	}
	return int(s.jobsReplayed.Load()), nil
}

// adoptJob registers a job under a recovered id, bumping jobSeq past its
// numeric suffix so future ids never collide. Returns nil if the id is
// already taken.
func (s *Server) adoptJob(id string, status JobStatus, total int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return nil
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimPrefix(id, "job-"), "%d", &n); err == nil && n > s.jobSeq {
		s.jobSeq = n
	}
	j := newJobState(id, total)
	j.status = status
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	return j
}

// dropJob forgets a job that was registered but never acknowledged (its
// journal write failed, so the client got an error, not a job id).
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.jobOrder {
		if jid == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

// journalPath returns the journal directory, or "" when none is attached
// (used by tests and the drain log line).
func (s *Server) journalPath() string {
	if s.journal == nil {
		return ""
	}
	return s.journal.dir
}

// JobsReplayed reports how many journaled jobs this process replayed at
// startup.
func (s *Server) JobsReplayed() uint64 { return s.jobsReplayed.Load() }
