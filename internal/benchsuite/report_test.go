package benchsuite

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// seededStore builds the fixed store behind the golden reports: two
// machines, three commits, a regressing and an improving case. Everything
// (samples, times, commits, fingerprints) is pinned, so the rendered
// reports must be byte-stable.
func seededStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1 := func(commit, name string, unix int64, samples ...float64) Record {
		return rec("m1", commit, name, unix, samples...)
	}
	// withAlloc pins fixed allocation vectors on a record, one pair per
	// ns/op sample, so the report's alloc/op column renders next to rows
	// without vectors (schema-1 style) showing the em-dash.
	withAlloc := func(r Record, b, allocs float64) Record {
		for range r.NsPerOp {
			r.BPerOp = append(r.BPerOp, b)
			r.AllocsPerOp = append(r.AllocsPerOp, allocs)
		}
		return r
	}
	if err := s.Append([]Record{
		withAlloc(m1("aaaa111122223333", "micro/jv_dense", 1000, 100.0, 101.0, 99.5, 100.5, 100.2), 2048, 3),
		m1("aaaa111122223333", "micro/sa_initial", 1000, 5000, 5100, 4950, 5050, 5020),
		m1("bbbb111122223333", "micro/jv_dense", 2000, 98.0, 98.5, 97.9, 98.2, 98.4),
		m1("bbbb111122223333", "micro/sa_initial", 2000, 5500, 5600, 5450, 5550, 5520),
		withAlloc(m1("cccc111122223333", "micro/jv_dense", 3000, 97.0, 97.5, 96.9, 97.2, 97.4), 1984, 3),
		m1("cccc111122223333", "micro/sa_initial", 3000, 6000, 6100, 5950, 6050, 6020),
		rec("m2", "cccc111122223333", "compile/zac/default/rb:n=8,depth=4,seed=1", 3000, 42000, 42100, 41900, 42050, 42010),
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (regenerate with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden (regenerate with -update if intentional).\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// The markdown and HTML generators must be byte-stable over a fixed seeded
// store: same store, same bytes, run after run.
func TestReportGolden(t *testing.T) {
	s := seededStore(t)
	md, err := MarkdownReport(s, ReportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.md.golden", md)

	html, err := HTMLReport(s, ReportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.html.golden", html)

	// A second render of the same store is byte-identical.
	md2, err := MarkdownReport(s, ReportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if md2 != md {
		t.Error("MarkdownReport not deterministic across renders")
	}
}

// Machine filtering and trend-depth options narrow the report.
func TestReportOptions(t *testing.T) {
	s := seededStore(t)
	md, err := MarkdownReport(s, ReportOptions{MachineID: "m2"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_m2.md.golden", md)
}

func TestReportEmptyStore(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	md, err := MarkdownReport(s, ReportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if md == "" {
		t.Error("empty store report is empty")
	}
	if _, err := HTMLReport(s, ReportOptions{}); err != nil {
		t.Error(err)
	}
}
