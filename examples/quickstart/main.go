// Quickstart: compile a GHZ circuit for the paper's reference zoned
// architecture and inspect the result — the minimal end-to-end tour of the
// public pipeline (build circuit → compile → fidelity report → ZAIR).
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/zair"
)

func main() {
	// 1. Build a circuit with the input-level gate vocabulary; the compiler
	// resynthesizes it to the hardware gate set {CZ, U3}.
	c := circuit.New("ghz_quickstart", 8)
	c.Append(circuit.H, []int{0})
	for i := 0; i < 7; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}

	// 2. Compile for the reference zoned architecture (Fig. 2 of the paper:
	// 100×100 storage traps, 7×20 Rydberg sites, one AOD).
	a := arch.Reference()
	res, err := core.Compile(c, a, core.Default())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the compiled program.
	one, two := res.Staged.GateCounts()
	fmt.Printf("preprocessed:   %d CZ + %d U3 gates in %d Rydberg stages\n",
		two, one, res.NumRydbergStages)
	fmt.Printf("placement:      %d qubit movements, %d gates reused a Rydberg site\n",
		res.TotalMoves, res.ReusedGates)
	fmt.Printf("schedule:       %d rearrangement jobs, %.3f ms total\n",
		res.NumJobs, res.Duration/1000)
	fmt.Printf("fidelity:       %.4f (1Q %.4f · 2Q %.4f · transfer %.4f · decoherence %.4f)\n",
		res.Breakdown.Total, res.Breakdown.OneQ, res.Breakdown.TwoQ,
		res.Breakdown.Transfer, res.Breakdown.Decohere)

	// 4. The ZAIR program is JSON-serializable (paper §IX format).
	var firstJob zair.RearrangeJob
	for _, inst := range res.Program.Instructions {
		if j, ok := inst.(zair.RearrangeJob); ok {
			firstJob = j
			break
		}
	}
	blob, _ := json.MarshalIndent(firstJob, "", "  ")
	fmt.Printf("\nfirst rearrangement job (ZAIR):\n%s\n", blob)
}
