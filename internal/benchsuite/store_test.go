package benchsuite

import (
	"strings"
	"testing"
)

// rec builds a store record with the given identity and samples; the full
// fingerprint is synthesized from the machine id so cross-machine tests can
// mint distinct ones.
func rec(machineID, commit, name string, unix int64, samples ...float64) Record {
	return Record{
		Schema:     SchemaVersion,
		Case:       name,
		Kind:       KindMicro,
		Commit:     commit,
		UnixTime:   unix,
		Machine:    Fingerprint{CPUModel: "cpu-" + machineID, Cores: 8, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24"},
		MachineID:  machineID,
		Warmup:     1,
		InnerIters: 1,
		NsPerOp:    samples,
	}
}

// Append, reopen, and a trend query: records survive a store reopen, trend
// points come back in commit append order, and same-commit samples merge
// into one point.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Record{
		rec("m1", "c1", "micro/jv_dense", 100, 100, 101, 99),
		rec("m1", "c1", "micro/sa_initial", 100, 500, 510),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Record{
		rec("m1", "c2", "micro/jv_dense", 200, 104, 103),
		rec("m1", "c1", "micro/jv_dense", 250, 98), // late rerun at c1 merges
		rec("m1", "c3", "micro/jv_dense", 300, 90, 91, 92),
	}); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	machines, err := s2.Machines()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 1 || machines[0] != "m1" {
		t.Fatalf("Machines = %v, want [m1]", machines)
	}
	records, err := s2.Records("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("Records = %d, want 5", len(records))
	}

	trend, err := s2.Trend("m1", "micro/jv_dense", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend) != 3 {
		t.Fatalf("trend has %d points, want 3", len(trend))
	}
	wantCommits := []string{"c1", "c2", "c3"}
	for i, p := range trend {
		if p.Commit != wantCommits[i] {
			t.Errorf("trend[%d].Commit = %s, want %s (ordering by commit append order)", i, p.Commit, wantCommits[i])
		}
	}
	if n := trend[0].Summary.N; n != 4 {
		t.Errorf("c1 merged sample count = %d, want 4 (3 + 1 late rerun)", n)
	}
	if trend[0].Time != 100 {
		t.Errorf("c1 point time = %d, want earliest record time 100", trend[0].Time)
	}

	// LastN keeps the most recent commits.
	tail, err := s2.Trend("m1", "micro/jv_dense", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Commit != "c2" || tail[1].Commit != "c3" {
		t.Fatalf("Trend(lastN=2) = %+v, want commits c2,c3", tail)
	}

	// Unknown machine and unknown case are empty, not errors.
	if r, err := s2.Records("nope"); err != nil || r != nil {
		t.Fatalf("unknown machine: %v, %v", r, err)
	}
	if tr, err := s2.Trend("m1", "nope", 0); err != nil || len(tr) != 0 {
		t.Fatalf("unknown case: %v, %v", tr, err)
	}
}

func TestStoreAtCommitAndLatest(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Record{
		rec("m1", "c1", "micro/jv_dense", 1, 100),
		rec("m1", "c2", "micro/jv_dense", 2, 105),
	}); err != nil {
		t.Fatal(err)
	}
	at, err := s.AtCommit("m1", "c1")
	if err != nil || len(at) != 1 || at[0].Commit != "c1" {
		t.Fatalf("AtCommit(c1) = %+v, %v", at, err)
	}
	latest, err := s.AtCommit("m1", "latest")
	if err != nil || len(latest) != 1 || latest[0].Commit != "c2" {
		t.Fatalf("AtCommit(latest) = %+v, %v", latest, err)
	}
	prev, err := s.AtCommit("m1", "previous")
	if err != nil || len(prev) != 1 || prev[0].Commit != "c1" {
		t.Fatalf("AtCommit(previous) = %+v, %v", prev, err)
	}
	if only, err := s.AtCommit("nope", "previous"); err != nil || only != nil {
		t.Fatalf("AtCommit(previous) on empty machine = %+v, %v", only, err)
	}
	commits, err := s.Commits("m1")
	if err != nil || strings.Join(commits, ",") != "c1,c2" {
		t.Fatalf("Commits = %v, %v", commits, err)
	}
}

func TestStoreExportBenchJSON(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	withAllocs := rec("m1", "c9", "micro/jv_dense", 1, 100, 110, 105)
	withAllocs.BPerOp = []float64{2000, 2100, 2048}
	withAllocs.AllocsPerOp = []float64{3, 3, 3}
	if err := s.Append([]Record{
		withAllocs,
		rec("m1", "c9", "micro/buildplan/qft_n18", 1, 5000, 5100, 5050), // schema-1 style: no alloc vectors
		rec("m1", "c9", "compile/zac/default/rb:n=8,depth=4,seed=1", 1, 900), // not exported
	}); err != nil {
		t.Fatal(err)
	}
	data, err := s.ExportBenchJSON("m1", "latest")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		`"BenchmarkJVDense": {"ns_op": 105, "b_op": 2048, "allocs_op": 3}`,
		`"BenchmarkBuildPlan/qft_n18": {"ns_op": 5050, "b_op": null, "allocs_op": null}`,
		`"baseline_sha": "c9"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "compile/zac") {
		t.Errorf("export leaked compile cases:\n%s", out)
	}
}
