package matching

import (
	"context"
	"math/rand"
	"testing"
)

// sparseProblem is a CSR assignment instance assembled from independent
// components whose rows and columns are interleaved by a global shuffle, so
// the parallel solver's component discovery has real work to do.
type sparseProblem struct {
	n, m     int
	rowStart []int
	cols     []int
	costs    []float64
}

// genComponents builds numComp solvable components (each row gets a
// guaranteed perfect-matching arc plus random extras) over shuffled global
// row/column ids.
func genComponents(r *rand.Rand, numComp, rowsPer, extraCols int) sparseProblem {
	type arc struct {
		row, col int
		cost     float64
	}
	var arcs []arc
	n, m := 0, 0
	for c := 0; c < numComp; c++ {
		nc := 1 + r.Intn(rowsPer)
		mc := nc + r.Intn(extraCols+1)
		rows := make([]int, nc)
		for i := range rows {
			rows[i] = n + i
		}
		colsG := make([]int, mc)
		for j := range colsG {
			colsG[j] = m + j
		}
		n += nc
		m += mc
		perm := r.Perm(mc)[:nc] // guaranteed perfect matching
		for i := 0; i < nc; i++ {
			seen := map[int]bool{perm[i]: true}
			arcs = append(arcs, arc{rows[i], colsG[perm[i]], float64(r.Intn(1000)) / 8})
			for e := r.Intn(3); e > 0; e-- {
				j := r.Intn(mc)
				if seen[j] {
					continue
				}
				seen[j] = true
				arcs = append(arcs, arc{rows[i], colsG[j], float64(r.Intn(1000)) / 8})
			}
		}
	}
	// Shuffle global ids so components are not index-contiguous.
	rowPerm, colPerm := r.Perm(n), r.Perm(m)
	byRow := make([][]arc, n)
	for _, a := range arcs {
		a.row, a.col = rowPerm[a.row], colPerm[a.col]
		byRow[a.row] = append(byRow[a.row], a)
	}
	p := sparseProblem{n: n, m: m, rowStart: make([]int, n+1)}
	for i := 0; i < n; i++ {
		for _, a := range byRow[i] {
			p.cols = append(p.cols, a.col)
			p.costs = append(p.costs, a.cost)
		}
		p.rowStart[i+1] = len(p.cols)
	}
	return p
}

// TestParallelMatchesSequential pins the ParallelSolver contract: assignments
// and totals are bit-identical to Solver.SolveSparse across random
// multi-component instances and worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	var ps ParallelSolver
	var seq Solver
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := genComponents(r, 12+r.Intn(12), 8, 3)
		if p.n < minParallelRows {
			continue // generator floor keeps most cases parallel; skip tiny draws
		}
		want, wantTotal, wantErr := seq.SolveSparse(p.n, p.m, p.rowStart, p.cols, p.costs)
		for _, workers := range []int{2, 4, 8} {
			got, gotTotal, gotErr := ps.SolveSparse(ctx, workers, p.n, p.m, p.rowStart, p.cols, p.costs)
			if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && gotErr != wantErr) {
				t.Fatalf("seed %d workers %d: err=%v, want %v", seed, workers, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotTotal != wantTotal {
				t.Fatalf("seed %d workers %d: total=%v, want %v", seed, workers, gotTotal, wantTotal)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: row %d → %d, want %d", seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelErrorParity checks the failure modes agree with the sequential
// solver: global n > m, a deficient component, and a zero-arc row.
func TestParallelErrorParity(t *testing.T) {
	ctx := context.Background()
	var ps ParallelSolver
	var seq Solver

	// n > m fails identically before any decomposition.
	if _, _, err := ps.SolveSparse(ctx, 4, 3, 2, []int{0, 1, 2, 3}, []int{0, 1, 0}, []float64{1, 1, 1}); err != errTooManyRows {
		t.Fatalf("n>m: err=%v, want errTooManyRows", err)
	}

	// A deficient component (2 rows sharing 1 column) inside a large solvable
	// instance: both solvers report ErrNoFullMatching.
	r := rand.New(rand.NewSource(7))
	p := genComponents(r, 20, 8, 2)
	if p.n < minParallelRows {
		t.Fatalf("generator produced only %d rows", p.n)
	}
	// Append two rows competing for one fresh column.
	for k := 0; k < 2; k++ {
		p.cols = append(p.cols, p.m)
		p.costs = append(p.costs, 1)
		p.rowStart = append(p.rowStart, len(p.cols))
	}
	p.n += 2
	p.m += 2 // one extra unused column keeps n <= m
	if _, _, err := seq.SolveSparse(p.n, p.m, p.rowStart, p.cols, p.costs); err != ErrNoFullMatching {
		t.Fatalf("sequential deficient: err=%v, want ErrNoFullMatching", err)
	}
	if _, _, err := ps.SolveSparse(ctx, 4, p.n, p.m, p.rowStart, p.cols, p.costs); err != ErrNoFullMatching {
		t.Fatalf("parallel deficient: err=%v, want ErrNoFullMatching", err)
	}

	// A zero-arc row is its own column-less component.
	p2 := genComponents(rand.New(rand.NewSource(9)), 20, 8, 2)
	p2.rowStart = append(p2.rowStart, len(p2.cols))
	p2.n++
	p2.m++
	if _, _, err := seq.SolveSparse(p2.n, p2.m, p2.rowStart, p2.cols, p2.costs); err != ErrNoFullMatching {
		t.Fatalf("sequential zero-arc: err=%v, want ErrNoFullMatching", err)
	}
	if _, _, err := ps.SolveSparse(ctx, 4, p2.n, p2.m, p2.rowStart, p2.cols, p2.costs); err != ErrNoFullMatching {
		t.Fatalf("parallel zero-arc: err=%v, want ErrNoFullMatching", err)
	}
}

// TestParallelCancel checks a pre-canceled context aborts a parallel solve.
func TestParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ps ParallelSolver
	p := genComponents(rand.New(rand.NewSource(3)), 20, 8, 2)
	if _, _, err := ps.SolveSparse(ctx, 4, p.n, p.m, p.rowStart, p.cols, p.costs); err != context.Canceled {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestParallelReuse exercises scratch reuse across differently-shaped solves
// on one ParallelSolver value.
func TestParallelReuse(t *testing.T) {
	ctx := context.Background()
	var ps ParallelSolver
	var seq Solver
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := genComponents(r, 8+r.Intn(20), 4+r.Intn(8), 3)
		want, wantTotal, wantErr := seq.SolveSparse(p.n, p.m, p.rowStart, p.cols, p.costs)
		got, gotTotal, gotErr := ps.SolveSparse(ctx, 4, p.n, p.m, p.rowStart, p.cols, p.costs)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: err=%v, want %v", seed, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if gotTotal != wantTotal {
			t.Fatalf("seed %d: total=%v, want %v", seed, gotTotal, wantTotal)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: row %d → %d, want %d", seed, i, got[i], want[i])
			}
		}
	}
}
