package ftqc

import (
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
)

func TestCodeParameters(t *testing.T) {
	c := Code832{}
	if c.PhysicalQubits() != 8 || c.LogicalQubits() != 3 || c.Distance() != 2 {
		t.Error("[[8,3,2]] parameters wrong")
	}
	if c.BlockRows() != 2 || c.BlockCols() != 4 {
		t.Error("block layout wrong")
	}
}

func TestScaledUpSpec(t *testing.T) {
	s := ScaledUp()
	if s.NumBlocks != 128 {
		t.Fatalf("blocks = %d", s.NumBlocks)
	}
	if s.NumCNOTLayers() != 7 {
		t.Errorf("CNOT layers = %d, want 7", s.NumCNOTLayers())
	}
	if s.NumTransversalGates() != 448 {
		t.Errorf("transversal gates = %d, want 448 (paper §VIII)", s.NumTransversalGates())
	}
	if s.NumLogicalQubits() != 384 {
		t.Errorf("logical qubits = %d, want 384", s.NumLogicalQubits())
	}
}

func TestSpecValidate(t *testing.T) {
	if (HIQPSpec{NumBlocks: 3}).Validate() == nil {
		t.Error("non-power-of-two accepted")
	}
	if (HIQPSpec{NumBlocks: 1}).Validate() == nil {
		t.Error("single block accepted")
	}
	if (HIQPSpec{NumBlocks: 16}).Validate() != nil {
		t.Error("16 blocks rejected")
	}
}

func TestBlockCircuitStructure(t *testing.T) {
	s := HIQPSpec{NumBlocks: 8}
	st, err := s.BlockCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 in-block layers interleaved with 3 CNOT layers.
	if got := st.NumRydbergStages(); got != 3 {
		t.Errorf("Rydberg stages = %d, want 3", got)
	}
	oneQStages := 0
	for _, stage := range st.Stages {
		if stage.Kind == circuit.OneQStage {
			oneQStages++
		}
	}
	if oneQStages != 4 {
		t.Errorf("in-block layers = %d, want 4", oneQStages)
	}
	// Stride doubling: first CNOT layer pairs (0,1),(2,3)...; second (0,2)...
	ryd := st.RydbergStages()
	first := st.Stages[ryd[0]].Gates
	if first[0].Qubits[1]-first[0].Qubits[0] != 1 {
		t.Error("first layer stride must be 1")
	}
	second := st.Stages[ryd[1]].Gates
	if second[0].Qubits[1]-second[0].Qubits[0] != 2 {
		t.Error("second layer stride must be 2")
	}
	for _, r := range ryd {
		if len(st.Stages[r].Gates) != 4 {
			t.Errorf("CNOT layer has %d gates, want 4", len(st.Stages[r].Gates))
		}
	}
}

func TestSplitRydbergStages(t *testing.T) {
	s := HIQPSpec{NumBlocks: 128}
	st, err := s.BlockCircuit()
	if err != nil {
		t.Fatal(err)
	}
	split := circuit.SplitRydbergStages(st, 15)
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	// 64 gates per layer / 15 sites = 5 chunks per layer × 7 layers = 35 —
	// the paper's 35 Rydberg stages.
	if got := split.NumRydbergStages(); got != 35 {
		t.Errorf("split stages = %d, want 35 (paper §VIII)", got)
	}
	// Gates preserved.
	_, before := st.GateCounts()
	_, after := split.GateCounts()
	if before != after {
		t.Errorf("gate count changed: %d → %d", before, after)
	}
}

func TestCompileScaledUp(t *testing.T) {
	if testing.Short() {
		t.Skip("full 128-block compile in -short mode")
	}
	res, err := Compile(ScaledUp(), arch.Logical832())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRydbergStages != 35 {
		t.Errorf("Rydberg stages = %d, want 35 (paper §VIII)", res.NumRydbergStages)
	}
	// Paper reports 117.847 ms; our substitute timing model should land in
	// the same order of magnitude.
	if res.DurationMS < 20 || res.DurationMS > 600 {
		t.Errorf("duration = %.1f ms, expected same order as paper's 117.8 ms", res.DurationMS)
	}
	if res.TransversalGates != 448 {
		t.Errorf("transversal gates = %d", res.TransversalGates)
	}
}

func TestCompileSmall(t *testing.T) {
	res, err := Compile(HIQPSpec{NumBlocks: 16}, arch.Logical832())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRydbergStages < 4 {
		t.Errorf("stages = %d", res.NumRydbergStages)
	}
	if err := res.Compiled.Program.Validate(); err != nil {
		t.Fatal(err)
	}
}
