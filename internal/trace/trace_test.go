package trace

import (
	"strings"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/core"
	"zac/internal/zair"
)

func compiled(t *testing.T) *zair.Program {
	t.Helper()
	res, err := core.Compile(bench.GHZ(8), arch.Reference(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

func TestEventsChronological(t *testing.T) {
	evs := Events(compiled(t))
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Begin < evs[i-1].Begin {
			t.Fatalf("events out of order at %d", i)
		}
	}
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.End < e.Begin {
			t.Fatalf("negative-duration event: %+v", e)
		}
	}
	for _, k := range []string{"job", "rydberg", "1q"} {
		if !kinds[k] {
			t.Errorf("missing event kind %q", k)
		}
	}
}

func TestLogAndGantt(t *testing.T) {
	p := compiled(t)
	log := Log(p)
	if !strings.Contains(log, "rydberg") || !strings.Contains(log, "AOD0") {
		t.Errorf("log missing content:\n%s", log)
	}
	g := Gantt(p, 60)
	if !strings.Contains(g, "AOD0") || !strings.Contains(g, "#") {
		t.Errorf("gantt missing content:\n%s", g)
	}
	// Every lane line must have the same bar width.
	for _, line := range strings.Split(g, "\n") {
		if strings.Contains(line, "|") {
			parts := strings.Split(line, "|")
			if len(parts) >= 2 && len(parts[1]) != 60 {
				t.Errorf("bar width %d != 60: %q", len(parts[1]), line)
			}
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	if g := Gantt(&zair.Program{}, 40); !strings.Contains(g, "empty") {
		t.Errorf("empty program gantt: %q", g)
	}
}

func TestUtilization(t *testing.T) {
	p := compiled(t)
	u := Utilization(p)
	if u["AOD0"] <= 0 || u["AOD0"] > 1 {
		t.Errorf("AOD0 utilization %v", u["AOD0"])
	}
	if u["RYD"] <= 0 {
		t.Errorf("RYD utilization %v", u["RYD"])
	}
	if len(Utilization(&zair.Program{})) != 0 {
		t.Error("empty program should have no utilization")
	}
}

func TestMultiAODLanes(t *testing.T) {
	a := arch.WithAODs(arch.Reference(), 2)
	res, err := core.Compile(bench.Ising(30, 1), a, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	u := Utilization(res.Program)
	if _, ok := u["AOD0"]; !ok {
		t.Error("missing AOD0 lane")
	}
	// With a wide parallel circuit the second AOD should see some work.
	if _, ok := u["AOD1"]; !ok {
		t.Log("AOD1 unused (acceptable if phases produced single jobs)")
	}
}
