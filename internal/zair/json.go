package zair

import (
	"encoding/json"
	"fmt"
)

// JSON encoding mirrors the artifact: each instruction is an object with a
// "type" discriminator (Fig. 19).

type taggedInst struct {
	Type string `json:"type"`
	*Init
	*OneQGate
	*Rydberg
	*RearrangeJob
}

// MarshalJSON encodes the program as a JSON array of tagged instructions.
func (p *Program) MarshalJSON() ([]byte, error) {
	out := struct {
		Name      string            `json:"name"`
		NumQubits int               `json:"num_qubits"`
		Insts     []json.RawMessage `json:"instructions"`
	}{Name: p.Name, NumQubits: p.NumQubits}
	for i, in := range p.Instructions {
		raw, err := marshalInstruction(in)
		if err != nil {
			return nil, fmt.Errorf("zair: instruction %d: %w", i, err)
		}
		out.Insts = append(out.Insts, raw)
	}
	return json.Marshal(out)
}

func marshalInstruction(in Instruction) (json.RawMessage, error) {
	// Marshal the instruction body, then splice in the type tag.
	var body []byte
	var err error
	switch v := in.(type) {
	case Init:
		body, err = json.Marshal(v)
	case OneQGate:
		body, err = json.Marshal(v)
	case Rydberg:
		body, err = json.Marshal(v)
	case RearrangeJob:
		body, err = json.Marshal(struct {
			AODID     int               `json:"aod_id"`
			BeginLocs [][]QLoc          `json:"begin_locs"`
			EndLocs   [][]QLoc          `json:"end_locs"`
			Insts     []json.RawMessage `json:"insts"`
			BeginTime float64           `json:"begin_time"`
			EndTime   float64           `json:"end_time"`
		}{
			AODID: v.AODID, BeginLocs: v.BeginLocs, EndLocs: v.EndLocs,
			Insts: marshalMachine(v.Insts), BeginTime: v.BeginTime, EndTime: v.EndTime,
		})
	default:
		return nil, fmt.Errorf("unknown instruction type %T", in)
	}
	if err != nil {
		return nil, err
	}
	return spliceType(body, in.Type())
}

func marshalMachine(insts []MachineInst) []json.RawMessage {
	out := make([]json.RawMessage, 0, len(insts))
	for _, mi := range insts {
		body, err := json.Marshal(mi)
		if err != nil {
			continue
		}
		tagged, err := spliceType(body, mi.MachineType())
		if err != nil {
			continue
		}
		out = append(out, tagged)
	}
	return out
}

func spliceType(body []byte, typ string) (json.RawMessage, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	tag, _ := json.Marshal(typ)
	m["type"] = tag
	return json.Marshal(m)
}

// UnmarshalJSON decodes a program from the tagged-array form.
func (p *Program) UnmarshalJSON(data []byte) error {
	var in struct {
		Name      string            `json:"name"`
		NumQubits int               `json:"num_qubits"`
		Insts     []json.RawMessage `json:"instructions"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Name, p.NumQubits = in.Name, in.NumQubits
	p.Instructions = nil
	for i, raw := range in.Insts {
		inst, err := unmarshalInstruction(raw)
		if err != nil {
			return fmt.Errorf("zair: instruction %d: %w", i, err)
		}
		p.Instructions = append(p.Instructions, inst)
	}
	return nil
}

func unmarshalInstruction(raw json.RawMessage) (Instruction, error) {
	var tag struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &tag); err != nil {
		return nil, err
	}
	switch tag.Type {
	case "init":
		var v Init
		err := json.Unmarshal(raw, &v)
		return v, err
	case "1qGate":
		var v OneQGate
		err := json.Unmarshal(raw, &v)
		return v, err
	case "rydberg":
		var v Rydberg
		err := json.Unmarshal(raw, &v)
		return v, err
	case "rearrangeJob":
		var wire struct {
			AODID     int               `json:"aod_id"`
			BeginLocs [][]QLoc          `json:"begin_locs"`
			EndLocs   [][]QLoc          `json:"end_locs"`
			Insts     []json.RawMessage `json:"insts"`
			BeginTime float64           `json:"begin_time"`
			EndTime   float64           `json:"end_time"`
		}
		if err := json.Unmarshal(raw, &wire); err != nil {
			return nil, err
		}
		v := RearrangeJob{
			AODID: wire.AODID, BeginLocs: wire.BeginLocs, EndLocs: wire.EndLocs,
			BeginTime: wire.BeginTime, EndTime: wire.EndTime,
		}
		for _, mraw := range wire.Insts {
			mi, err := unmarshalMachine(mraw)
			if err != nil {
				return nil, err
			}
			v.Insts = append(v.Insts, mi)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("unknown type %q", tag.Type)
	}
}

func unmarshalMachine(raw json.RawMessage) (MachineInst, error) {
	var tag struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &tag); err != nil {
		return nil, err
	}
	switch tag.Type {
	case "activate":
		var v Activate
		err := json.Unmarshal(raw, &v)
		return v, err
	case "deactivate":
		var v Deactivate
		err := json.Unmarshal(raw, &v)
		return v, err
	case "move":
		var v Move
		err := json.Unmarshal(raw, &v)
		return v, err
	default:
		return nil, fmt.Errorf("unknown machine type %q", tag.Type)
	}
}
