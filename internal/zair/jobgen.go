package zair

import (
	"sort"

	"zac/internal/geom"
)

// MoveSpec describes one qubit's movement inside a rearrangement job: its
// identity, begin/end SLM locations, and begin/end physical coordinates.
type MoveSpec struct {
	Qubit      int
	Begin, End QLoc
	From, To   geom.Point
}

// JobTiming captures the three phases of a job (paper §VI): picking up all
// qubits (row-by-row activation with optional parking, Fig. 18), one
// parallel move, and dropping all qubits off.
type JobTiming struct {
	PickupDur float64
	MoveDur   float64
	DropDur   float64
}

// Total returns the whole job duration.
func (t JobTiming) Total() float64 { return t.PickupDur + t.MoveDur + t.DropDur }

// BuildJob assembles a RearrangeJob from movement specs: groups moves into
// AOD rows by begin y-coordinate, generates the machine-level
// activate/park/move/deactivate sequence following the OLSQ-DPQA row-by-row
// pickup strategy (§IX, Fig. 18), and computes phase durations.
//
// transferTime is the atom-transfer duration Ttran; moveTime converts a
// distance to a movement duration (architecture-specific).
func BuildJob(aodID int, moves []MoveSpec, transferTime float64, moveTime func(d float64) float64) (RearrangeJob, JobTiming) {
	if len(moves) == 0 {
		return RearrangeJob{AODID: aodID}, JobTiming{}
	}
	// Group by begin row (y coordinate), ordered bottom-up; within a row
	// order by x so AOD columns keep their relative order.
	byY := map[float64][]MoveSpec{}
	var ys []float64
	for _, m := range moves {
		if _, ok := byY[m.From.Y]; !ok {
			ys = append(ys, m.From.Y)
		}
		byY[m.From.Y] = append(byY[m.From.Y], m)
	}
	sort.Float64s(ys)

	job := RearrangeJob{AODID: aodID}
	var timing JobTiming

	// Pickup: one activate per begin row. Between consecutive row
	// activations a small parking shift may be needed so already-picked
	// qubits do not collide with traps in the next row (Fig. 18c); we model
	// parking as a fixed small shift taking moveTime(parkDist).
	const parkDist = 1.0 // µm: half the minimum AOD separation scale
	maxDist := 0.0
	rowID := 0
	colID := 0
	for yi, y := range ys {
		row := byY[y]
		sort.Slice(row, func(a, b int) bool { return row[a].From.X < row[b].From.X })
		act := Activate{RowID: []int{rowID}, RowY: []float64{y}}
		for _, m := range row {
			act.ColID = append(act.ColID, colID)
			act.ColX = append(act.ColX, m.From.X)
			colID++
			if d := m.From.Dist(m.To); d > maxDist {
				maxDist = d
			}
		}
		job.Insts = append(job.Insts, act)
		timing.PickupDur += transferTime
		var beginRow, endRow []QLoc
		for _, m := range row {
			beginRow = append(beginRow, m.Begin)
			endRow = append(endRow, m.End)
		}
		job.BeginLocs = append(job.BeginLocs, beginRow)
		job.EndLocs = append(job.EndLocs, endRow)
		rowID++
		if yi < len(ys)-1 {
			// Parking shift before the next activation.
			timing.PickupDur += moveTime(parkDist)
		}
	}

	// One parallel move sweeping every active row/column from begin to end.
	mv := Move{}
	for ri, y := range ys {
		row := byY[y]
		mv.RowID = append(mv.RowID, ri)
		mv.RowYBegin = append(mv.RowYBegin, y)
		mv.RowYEnd = append(mv.RowYEnd, row[0].To.Y)
	}
	ci := 0
	for _, y := range ys {
		for _, m := range byY[y] {
			mv.ColID = append(mv.ColID, ci)
			mv.ColXBegin = append(mv.ColXBegin, m.From.X)
			mv.ColXEnd = append(mv.ColXEnd, m.To.X)
			ci++
		}
	}
	job.Insts = append(job.Insts, mv)
	timing.MoveDur = moveTime(maxDist)

	// Drop: one deactivate releasing everything.
	deact := Deactivate{}
	for ri := range ys {
		deact.RowID = append(deact.RowID, ri)
	}
	for c := 0; c < ci; c++ {
		deact.ColID = append(deact.ColID, c)
	}
	job.Insts = append(job.Insts, deact)
	timing.DropDur = transferTime

	return job, timing
}

// TransfersPerJob returns the atom-transfer count of a job: each moved
// qubit is picked up once and dropped once.
func TransfersPerJob(j RearrangeJob) int { return 2 * j.NumMoved() }
