package circuit

import "testing"

// rydberg builds a Rydberg stage of pairs (2i, 2i+1) for i < n.
func rydberg(n int) Stage {
	st := Stage{Kind: RydbergStage}
	for i := 0; i < n; i++ {
		st.Gates = append(st.Gates, NewGate(CZ, []int{2 * i, 2*i + 1}))
	}
	return st
}

func TestSplitRydbergStagesChunks(t *testing.T) {
	s := &Staged{Name: "wide", NumQubits: 20, Stages: []Stage{rydberg(10)}}
	out := SplitRydbergStages(s, 3)
	if len(out.Stages) != 4 { // 3+3+3+1
		t.Fatalf("stages = %d, want 4", len(out.Stages))
	}
	total := 0
	var gates []Gate
	for i, st := range out.Stages {
		if st.Kind != RydbergStage {
			t.Fatalf("stage %d kind %v", i, st.Kind)
		}
		if len(st.Gates) > 3 {
			t.Fatalf("stage %d has %d gates, cap 3", i, len(st.Gates))
		}
		total += len(st.Gates)
		gates = append(gates, st.Gates...)
	}
	if total != 10 {
		t.Fatalf("gate count changed: %d", total)
	}
	// Order is preserved across chunks.
	for i, g := range gates {
		if g.Qubits[0] != 2*i {
			t.Fatalf("gate %d reordered: %v", i, g)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitDepthZero covers the generator extreme of a gateless circuit: no
// stages in, no stages out, and the result still validates.
func TestSplitDepthZero(t *testing.T) {
	s := &Staged{Name: "empty", NumQubits: 5}
	out := SplitRydbergStages(s, 4)
	if len(out.Stages) != 0 {
		t.Fatalf("stages = %d, want 0", len(out.Stages))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumRydbergStages() != 0 {
		t.Fatalf("rydberg stages = %d", out.NumRydbergStages())
	}
	one, two := out.GateCounts()
	if one != 0 || two != 0 {
		t.Fatalf("gate counts = %d/%d", one, two)
	}
}

// TestSplitWidthOne covers width-1 circuits: only 1Q stages exist, and
// splitting at any cap must pass them through untouched.
func TestSplitWidthOne(t *testing.T) {
	s := &Staged{Name: "w1", NumQubits: 1, Stages: []Stage{
		{Kind: OneQStage, Gates: []Gate{NewGate(U3, []int{0}, 0.1, 0.2, 0.3)}},
		{Kind: OneQStage, Gates: []Gate{NewGate(U3, []int{0}, 0.4, 0.5, 0.6)}},
	}}
	for _, cap := range []int{1, 2, 0, -1} {
		out := SplitRydbergStages(s, cap)
		if len(out.Stages) != 2 {
			t.Fatalf("cap %d: stages = %d, want 2", cap, len(out.Stages))
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
	}
	// Flatten round-trips the width-1 program.
	if flat := s.Flatten(); flat.NumQubits != 1 || len(flat.Gates) != 2 {
		t.Fatal("width-1 flatten broken")
	}
}

// TestSplitNonPositiveCapIsIdentity pins the no-split contract (cap ≤ 0) the
// ZAC-family compilers depend on for byte-stable ZAIR.
func TestSplitNonPositiveCapIsIdentity(t *testing.T) {
	s := &Staged{Name: "wide", NumQubits: 20, Stages: []Stage{rydberg(10)}}
	for _, cap := range []int{0, -7} {
		if out := SplitRydbergStages(s, cap); out != s {
			t.Fatalf("cap %d: expected the identical *Staged back", cap)
		}
	}
}

// TestSplitMixedStagesUntouched checks 1Q stages pass through oversized
// splits in position.
func TestSplitMixedStagesUntouched(t *testing.T) {
	oneQ := Stage{Kind: OneQStage, Gates: []Gate{NewGate(U3, []int{0}, 0, 0, 0)}}
	s := &Staged{Name: "mixed", NumQubits: 8, Stages: []Stage{oneQ, rydberg(4), oneQ}}
	out := SplitRydbergStages(s, 1)
	if len(out.Stages) != 6 { // 1Q + 4 chunks + 1Q
		t.Fatalf("stages = %d, want 6", len(out.Stages))
	}
	if out.Stages[0].Kind != OneQStage || out.Stages[5].Kind != OneQStage {
		t.Fatal("1Q stages moved")
	}
}
