package qasm

import (
	"math"
	"strings"
	"testing"

	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/sim"
)

func TestParseBasic(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
// Bell pair
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if len(c.Gates) != 4 { // h, cx, 2 measures
		t.Fatalf("gates = %d: %v", len(c.Gates), c.Gates)
	}
	if c.Gates[1].Kind != circuit.CX {
		t.Fatalf("gate 1 = %v", c.Gates[1])
	}
}

func TestParseParams(t *testing.T) {
	src := `qreg q[1]; rz(pi/2) q[0]; u3(pi, -pi/4, 0.5) q[0]; rx(2*pi/3) q[0]; ry(-(pi+1)/2) q[0];`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Gates[0].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("rz param %v", c.Gates[0].Params)
	}
	if math.Abs(c.Gates[1].Params[1]+math.Pi/4) > 1e-12 {
		t.Errorf("u3 params %v", c.Gates[1].Params)
	}
	if math.Abs(c.Gates[2].Params[0]-2*math.Pi/3) > 1e-12 {
		t.Errorf("rx param %v", c.Gates[2].Params)
	}
	if math.Abs(c.Gates[3].Params[0]+(math.Pi+1)/2) > 1e-12 {
		t.Errorf("ry param %v", c.Gates[3].Params)
	}
}

func TestParseScientificNotation(t *testing.T) {
	c, err := Parse(`qreg q[1]; rz(1.5e-3) q[0];`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Params[0] != 1.5e-3 {
		t.Errorf("param = %v", c.Gates[0].Params[0])
	}
}

func TestParseBroadcast(t *testing.T) {
	c, err := Parse(`qreg q[3]; h q;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 3 {
		t.Fatalf("broadcast produced %d gates", len(c.Gates))
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	c, err := Parse(`qreg a[2]; qreg b[3]; cx a[1],b[0];`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	g := c.Gates[0]
	if g.Qubits[0] != 1 || g.Qubits[1] != 2 {
		t.Fatalf("register offsets wrong: %v", g.Qubits)
	}
}

func TestParseThreeQubitGates(t *testing.T) {
	c, err := Parse(`qreg q[3]; ccx q[0],q[1],q[2]; cswap q[0],q[1],q[2];`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Kind != circuit.CCX || c.Gates[1].Kind != circuit.CSWAP {
		t.Fatalf("kinds: %v %v", c.Gates[0].Kind, c.Gates[1].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":        `h q[0];`,
		"unknown gate":   `qreg q[1]; frobnicate q[0];`,
		"out of range":   `qreg q[2]; h q[5];`,
		"bad param":      `qreg q[1]; rz(bogus) q[0];`,
		"wrong operands": `qreg q[2]; cx q[0];`,
		"empty":          ``,
		"div zero":       `qreg q[1]; rz(1/0) q[0];`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := bench.GHZ(5)
	src := Write(orig)
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, src)
	}
	if back.NumQubits != orig.NumQubits || len(back.Gates) != len(orig.Gates) {
		t.Fatalf("shape mismatch: %d/%d gates", len(back.Gates), len(orig.Gates))
	}
	sa, err := sim.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.Run(back)
	if err != nil {
		t.Fatal(err)
	}
	if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-9 {
		t.Fatalf("round trip changed semantics: fidelity %v", f)
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		orig := b.Build()
		back, err := Parse(Write(orig))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if back.NumQubits != orig.NumQubits || len(back.Gates) != len(orig.Gates) {
			t.Fatalf("%s: shape mismatch", b.Name)
		}
		// Semantic check only for circuits small enough to simulate.
		if orig.NumQubits <= 13 {
			sa, _ := sim.Run(orig)
			sb, _ := sim.Run(back)
			if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
				t.Fatalf("%s: fidelity %v", b.Name, f)
			}
		}
	}
}

// TestParseErrorPosition checks that errors carry the 1-based line:column of
// the offending statement.
func TestParseErrorPosition(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[2];\n  frobnicate q[0];\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3:3") {
		t.Fatalf("error lacks line:col position: %v", err)
	}
	// A statement spanning lines is reported at its first token.
	_, err = Parse("qreg q[1];\n\n\nrz(\nbogus) q[0];")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 4:1") {
		t.Fatalf("error lacks line:col position: %v", err)
	}
}

// TestParseNeverPanics replays fuzz-found and truncated inputs that must
// yield errors (or parse), never panics. The broadcast cases are the
// historical crashers: a parameter on a parameterless gate reached
// circuit.NewGate unchecked.
func TestParseNeverPanics(t *testing.T) {
	cases := map[string]string{
		"param on bare gate (broadcast)": `qreg q[3]; h(0.5) q;`,
		"param on bare gate (indexed)":   `qreg q[3]; x(1) q[0];`,
		"missing param":                  `qreg q[1]; rz q[0];`,
		"duplicate qubit":                `qreg q[2]; cx q[0],q[0];`,
		"duplicate via broadcast":        `qreg q[2]; cx q,q;`,
		"truncated qreg":                 `qreg q[2`,
		"truncated params":               `qreg q[1]; rz(pi`,
		"truncated measure":              `qreg q[1]; measure`,
		"truncated arrow":                `qreg q[1]; measure q[0] ->`,
		"bare semicolons":                `;;;`,
		"comment only":                   "// nothing here",
		"unterminated statement":         "qreg q[1]; h q[0]",
		"index overflow":                 `qreg q[99999999999999999999];`,
		"empty parens":                   `qreg q[1]; rz() q[0];`,
	}
	for name, src := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Parse panicked: %v", name, r)
				}
			}()
			Parse(src)
		}()
	}
}

// FuzzParse is the native fuzz target guarding the no-panic contract; `go
// test` replays the seed corpus, `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n",
		`qreg q[3]; h(0.5) q;`,
		`qreg q[2]; cx q[0],q[0];`,
		`qreg q[1]; rz(-(pi+1)/2) q[0];`,
		`qreg q[2`,
		`qreg a[2]; qreg b[3]; cx a,b[0];`,
		"// comment\nqreg q[1]; u3(1,2,3) q[0]",
		`qreg q[1]; rz(1/0) q[0];`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src) // must never panic
		if err == nil && c.NumQubits <= 0 {
			t.Fatalf("accepted circuit with %d qubits", c.NumQubits)
		}
	})
}

func TestParseBarrier(t *testing.T) {
	c, err := Parse(`qreg q[2]; h q[0]; barrier q; h q[1];`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[1].Kind != circuit.Barrier {
		t.Fatalf("gate 1 = %v", c.Gates[1].Kind)
	}
}
