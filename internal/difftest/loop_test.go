package difftest

import (
	"context"
	"strings"
	"testing"

	"zac/internal/workload"
)

// TestOracleCleanOnSmokeSpecs is the oracle's own regression gate: the
// real registry produces zero divergences over the pinned smoke specs.
// This is the same configuration `make fuzz-diff-smoke` runs in CI.
func TestOracleCleanOnSmokeSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every smoke spec twice with every compiler; skipped in -short")
	}
	o, err := New(Options{NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range workload.SmokeSpecs() {
		divs, err := o.CheckSpec(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, d := range divs {
			t.Errorf("%s: %s", spec, d)
		}
	}
}

// TestLoopReachesNewPlannerBranch pins the coverage-guided loop's reason
// to exist: starting from the pinned smoke specs, mutation reaches at
// least one planner feature the seeds alone never hit. The run is fully
// deterministic (splitmix64 stream from LoopOptions.Seed), so this is a
// regression test, not a flake: seed 1 mutates hiqp up to logblocks=6,
// whose 64-wide stages overflow the gate-zone δ-expansion box.
func TestLoopReachesNewPlannerBranch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~50 oracle checks; skipped in -short")
	}
	o, err := New(Options{
		Compilers: []string{"zac", "zac-vanilla", "zac-dynplace", "zac-dynplace-reuse", "zac-advreuse"},
		NoShrink:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := o.RunLoop(context.Background(), LoopOptions{Iterations: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Divergences) != 0 {
		for _, d := range lr.Divergences {
			t.Errorf("unexpected divergence: %s", d)
		}
	}
	if len(lr.NewFeatures) == 0 {
		t.Fatalf("mutation reached no feature beyond the seeds; report:\n%s", lr)
	}
	found := false
	for _, f := range lr.NewFeatures {
		if strings.HasPrefix(f, "place:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no planner branch among new features %v", lr.NewFeatures)
	}
	if len(lr.Kept) == 0 {
		t.Error("no mutated input was kept as a seed")
	}
	if len(lr.BaselineFeatures) == 0 {
		t.Error("seeds reached no features — the coverage probe is dead")
	}
}

// TestLoopDeterministic: the same seed replays the same run byte for byte.
func TestLoopDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the mutation loop twice; skipped in -short")
	}
	o, err := New(Options{Compilers: []string{"zac"}, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoopOptions{Seeds: []string{"rb:n=6,depth=4,seed=7"}, Iterations: 12, Seed: 42}
	a, err := o.RunLoop(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.RunLoop(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two runs with the same seed differ:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestLoopSkipsWideSeeds: seeds beyond the oracle's qubit bound are
// counted, not fatal.
func TestLoopSkipsWideSeeds(t *testing.T) {
	o, err := New(Options{Compilers: []string{"zac"}, MaxQubits: 8, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := o.RunLoop(context.Background(), LoopOptions{
		Seeds: []string{"rb:n=6,depth=2,seed=1", "rb:n=20,depth=2,seed=1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Skipped != 1 || lr.Inputs != 1 {
		t.Errorf("Skipped=%d Inputs=%d, want 1 and 1", lr.Skipped, lr.Inputs)
	}
}

// TestMutateSpecStaysInSchema: a thousand mutations of every smoke spec
// all reparse and regenerate.
func TestMutateSpecStaysInSchema(t *testing.T) {
	r := workload.NewRNG(3)
	for _, s := range workload.SmokeSpecs() {
		spec, err := workload.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		cur := spec
		for i := 0; i < 200; i++ {
			cur = MutateSpec(r, cur)
			if _, err := workload.Parse(cur.Canonical()); err != nil {
				t.Fatalf("%s: mutation %d produced unparseable spec %q: %v", s, i, cur.Canonical(), err)
			}
		}
	}
}

// TestMutateCircuitStaysValid: mutations keep gates arity-correct and
// qubits in range, and never alias the parent's slices.
func TestMutateCircuitStaysValid(t *testing.T) {
	r := workload.NewRNG(5)
	parent := genCircuit(t, "qaoa:n=10,p=2,seed=7")
	orig := len(parent.Gates)
	for i := 0; i < 300; i++ {
		m := MutateCircuit(r, parent)
		if len(parent.Gates) != orig {
			t.Fatalf("mutation %d modified the parent", i)
		}
		for gi, g := range m.Gates {
			if len(g.Qubits) != g.Kind.NumQubits() || len(g.Params) != g.Kind.NumParams() {
				t.Fatalf("mutation %d gate %d: malformed %v", i, gi, g)
			}
			seen := map[int]bool{}
			for _, q := range g.Qubits {
				if q < 0 || q >= m.NumQubits || seen[q] {
					t.Fatalf("mutation %d gate %d: bad qubits %v", i, gi, g.Qubits)
				}
				seen[q] = true
			}
		}
	}
}
