package zac

// The paper-level benchmark harness: one testing.B benchmark per table and
// figure of the evaluation (DESIGN.md, per-experiment index). Each benchmark
// regenerates its experiment over a representative circuit subset so that
// `go test -bench=.` finishes in minutes; `zac-bench -experiment <id>` runs
// the same experiment over the full 17-circuit suite.

import (
	"context"
	"testing"

	"zac/internal/experiments"
)

// subset is the representative benchmark slice used by the harness: a deep
// sequential circuit (bv), a chain (ghz), the high-parallelism workload
// (ising), the densest circuit (qft), and a mid-size irregular one (wstate).
var subset = []string{"bv_n14", "ghz_n23", "ising_n42", "qft_n18", "wstate_n27"}

func runExperiment(b *testing.B, id string, circuits []string) {
	b.Helper()
	// Bypass the compilation cache: each per-experiment benchmark measures
	// real compilation work on every iteration, as the seed harness did —
	// otherwise iteration 2+ (and later benchmarks in the same process)
	// would measure cache lookups.
	cfg := experiments.Config{Parallel: 1, NoCache: true}
	for i := 0; i < b.N; i++ {
		tables, err := experiments.RunWith(context.Background(), cfg, id, circuits)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkTable1 regenerates Table I (hardware parameters).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", nil) }

// BenchmarkFig1c regenerates Fig. 1c (monolithic fidelity breakdown).
func BenchmarkFig1c(b *testing.B) { runExperiment(b, "fig1c", subset) }

// BenchmarkFig8 regenerates Fig. 8 (six-way architecture comparison).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8", subset) }

// BenchmarkFig9 regenerates Fig. 9 (fidelity breakdown, 4 NA compilers).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9", subset) }

// BenchmarkFig10 regenerates Fig. 10 (circuit duration).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10", subset) }

// BenchmarkTable2 regenerates Table II (SC grid vs ZAC breakdown).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", subset) }

// BenchmarkFig11 regenerates Fig. 11 (technique ablation).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11", subset) }

// BenchmarkFig12 regenerates Fig. 12 (compile time vs fidelity).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12", subset) }

// BenchmarkFig13 regenerates Fig. 13 (optimality study).
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13", subset) }

// BenchmarkFig14 regenerates Fig. 14 (AOD count 1–4).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14", subset) }

// BenchmarkMultiZone regenerates §VII-H (two entanglement zones).
func BenchmarkMultiZone(b *testing.B) { runExperiment(b, "multizone", nil) }

// BenchmarkFTQC regenerates §VIII (hIQP on 128 [[8,3,2]] blocks).
func BenchmarkFTQC(b *testing.B) { runExperiment(b, "ftqc", nil) }

// BenchmarkZAIRStats regenerates the §IX instruction-density metrics.
func BenchmarkZAIRStats(b *testing.B) { runExperiment(b, "zair", subset) }

// BenchmarkAdvReuse runs the §X future-work extension ablation (direct
// in-zone movements for advanced reuse) — not a paper figure, but the
// evaluation the paper proposes as follow-up work.
func BenchmarkAdvReuse(b *testing.B) { runExperiment(b, "advreuse", subset) }

// BenchmarkSweep runs the placement-parameter design-choice ablation
// (δ, k, α, SA budget).
func BenchmarkSweep(b *testing.B) { runExperiment(b, "sweep", []string{"ghz_n23", "qft_n18"}) }

// BenchmarkWorkloads runs the extension workload families (QAOA, VQE, 2D
// Ising, random Clifford) across the neutral-atom compilers.
func BenchmarkWorkloads(b *testing.B) { runExperiment(b, "workloads", nil) }

// BenchmarkNativeCCZ runs the §III multi-trap-site ablation: native CCZ on
// three-trap Rydberg sites vs the 6-CZ decomposition.
func BenchmarkNativeCCZ(b *testing.B) { runExperiment(b, "nativeccz", nil) }

// suiteIDs are the experiments that evaluate the same compilers over the
// same representative subset — the sharing opportunity the engine's
// compilation cache exploits.
var suiteIDs = []string{"fig8", "fig9", "fig10", "table2", "zair"}

func runSuite(b *testing.B, cfg experiments.Config, shareAcrossExperiments bool) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, id := range suiteIDs {
			if !shareAcrossExperiments {
				experiments.ResetCache()
			}
			tables, err := experiments.RunWith(ctx, cfg, id, subset)
			if err != nil {
				b.Fatal(err)
			}
			if len(tables) == 0 || len(tables[0].Rows) == 0 {
				b.Fatalf("experiment %s produced no rows", id)
			}
		}
	}
}

// BenchmarkSuiteSequential measures the seed's execution model: one worker,
// no sharing between experiments (every experiment recompiles its circuits
// from scratch, as the hand-rolled per-experiment loops did).
func BenchmarkSuiteSequential(b *testing.B) {
	runSuite(b, experiments.Config{Parallel: 1, NoCache: true}, false)
}

// BenchmarkSuiteParallel drives the same experiments through the engine:
// runtime.NumCPU() workers and the process-wide compilation cache shared
// across experiments, so each (circuit, compiler) pair compiles once per
// iteration. Compare against BenchmarkSuiteSequential; the engine must be
// at least ~2× faster (cache sharing alone exceeds that even on one CPU).
func BenchmarkSuiteParallel(b *testing.B) {
	runSuite(b, experiments.Config{}, true)
}
