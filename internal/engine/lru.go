package engine

import "container/list"

// LRU is a mutex-free bounded map with least-recently-used eviction; callers
// synchronize access themselves (Tiered holds its own lock around every LRU
// call). A capacity ≤ 0 disables eviction, turning the LRU into a plain map
// with recency bookkeeping.
type LRU struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

// lruItem is one resident entry: the key is duplicated so eviction can
// delete the map slot from the list element alone.
type lruItem struct {
	key string
	val any
}

// NewLRU returns an empty LRU holding at most capacity entries (≤ 0 for
// unbounded).
func NewLRU(capacity int) *LRU {
	return &LRU{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value for key and marks it most recently used.
func (l *LRU) Get(key string) (any, bool) {
	e, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(e)
	return e.Value.(*lruItem).val, true
}

// Put inserts or replaces the value for key, evicting the least recently
// used entry when the cache is over capacity.
func (l *LRU) Put(key string, val any) {
	if e, ok := l.items[key]; ok {
		e.Value.(*lruItem).val = val
		l.ll.MoveToFront(e)
		return
	}
	l.items[key] = l.ll.PushFront(&lruItem{key: key, val: val})
	if l.capacity > 0 && l.ll.Len() > l.capacity {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*lruItem).key)
	}
}

// Remove deletes key if present.
func (l *LRU) Remove(key string) {
	if e, ok := l.items[key]; ok {
		l.ll.Remove(e)
		delete(l.items, key)
	}
}

// Len returns the number of resident entries.
func (l *LRU) Len() int { return l.ll.Len() }

// Clear drops every entry.
func (l *LRU) Clear() {
	l.ll.Init()
	l.items = map[string]*list.Element{}
}
