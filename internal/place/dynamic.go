package place

import (
	"context"
	"fmt"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/cover"
	"zac/internal/geom"
	"zac/internal/matching"
)

// reuseMatch computes the gate-to-gate reuse matching between two Rydberg
// stages (paper §V-B1): vertices are gates, an edge joins g (previous stage)
// and g′ (next stage) when they share a qubit, and a Hopcroft–Karp maximum
// matching resolves conflicts such as both qubits of one site being
// reusable. It returns, for each gate of next, the index of the previous
// gate whose site it inherits (or -1).
func reuseMatch(prev, next []circuit.Gate) []int {
	adj := make([][]int, len(prev))
	for i, g := range prev {
		for j, h := range next {
			if sharesQubit(g, h) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchL, _ := matching.HopcroftKarp(adj, len(next))
	out := make([]int, len(next))
	for j := range out {
		out[j] = -1
	}
	for i, j := range matchL {
		if j >= 0 {
			out[j] = i
		}
	}
	return out
}

func sharesQubit(g, h circuit.Gate) bool {
	for _, a := range g.Qubits {
		for _, b := range h.Qubits {
			if a == b {
				return true
			}
		}
	}
	return false
}

// transitionScratch holds every reusable buffer of the stage-transition
// solver: the JV solver with its scratch, dense site/trap column indexes
// (reset through touched lists), the qubit-sized flag arrays that replaced
// the per-solve reserved/stay/banned maps, and the CSR arc arrays fed to
// the sparse JV solves. BuildPlan keeps two so the reuse and no-reuse
// candidate transitions can be solved concurrently; a scratch must not be
// shared between concurrent solves.
type transitionScratch struct {
	// solver decomposes each stage's assignment problem into independent
	// components and fans them out to at most workers goroutines, checking
	// ctx between components; both knobs are (re)assigned by BuildPlan
	// before every solve. Outputs stay bit-identical at any worker count.
	solver  matching.ParallelSolver
	ctx     context.Context
	workers int

	posView []Pos

	reserved []bool  // by site ordinal; reset via the sites union list
	stay     []bool  // by qubit; cleared per solve
	banned   []bool  // by qubit; cleared per solveTransition
	related  []int32 // by qubit → next-stage partner, -1 = none

	lookahead []int32 // by gate index in cur → partner qubit, -1 = none
	reuseOf   []int   // by gate index in cur
	gateIdx   []int

	// union-column machinery shared by gate and return placement
	sites   []arch.SiteRef
	siteCol []int32 // by site ordinal → dense column, -1 = unseen
	traps   []arch.TrapRef
	trapCol []int32 // by trap ordinal → dense column, -1 = unseen

	// flattened per-row candidate lists (CSR layout)
	cands    []arch.SiteRef
	candRow  []int
	tcands   []arch.TrapRef
	tcandRow []int

	// sparse matching arcs
	rowStart []int
	cols     []int
	costs    []float64

	assignSites []arch.SiteRef
	assignTraps []arch.TrapRef
	ptsBuf      []geom.Point
	leaving     []int

	// slot assignment
	slotTaken []bool
	pending   []int

	// findMoveCycle state
	moveAt     []int32 // by site-slot key → move index, -1
	srcTouched []int
	zoneMoves  []int
	mstate     []int8
	mpath      []int
}

// newTransitionScratch sizes a scratch for one architecture and qubit count.
// It starts sequential (workers = 1); BuildPlan assigns the real budget.
func newTransitionScratch(a *arch.Architecture, numQubits int) *transitionScratch {
	sc := &transitionScratch{
		ctx:       context.Background(),
		workers:   1,
		reserved:  make([]bool, a.SiteCount()),
		stay:      make([]bool, numQubits),
		banned:    make([]bool, numQubits),
		related:   make([]int32, numQubits),
		siteCol:   make([]int32, a.SiteCount()),
		trapCol:   make([]int32, a.TrapCount()),
		slotTaken: make([]bool, a.MaxSiteSlots()),
		moveAt:    make([]int32, a.SiteCount()*a.MaxSiteSlots()),
	}
	for i := range sc.siteCol {
		sc.siteCol[i] = -1
	}
	for i := range sc.trapCol {
		sc.trapCol[i] = -1
	}
	for i := range sc.moveAt {
		sc.moveAt[i] = -1
	}
	return sc
}

// newOccupancy returns a dense storage-occupancy table (trap ordinal →
// qubit, -1 = free) — the replacement for the old map[TrapRef]int.
func newOccupancy(a *arch.Architecture) []int {
	occ := make([]int, a.TrapCount())
	for i := range occ {
		occ[i] = -1
	}
	return occ
}

// candidateSites returns the Ω_cand site set for a gate as a fresh slice;
// appendCandidateSites is the allocation-free variant the solver uses.
func candidateSites(a *arch.Architecture, pts []geom.Point, delta int, excluded []bool) []arch.SiteRef {
	return appendCandidateSites(a, nil, pts, delta, excluded)
}

// appendCandidateSites appends the Ω_cand site set for a gate (paper §V-B2)
// to dst: the δ-expansion box around the gate's nearest site in each
// entanglement zone, minus the excluded sites (indexed by site ordinal).
// Sites with fewer trap slots than the gate has qubits are never candidates
// (multi-trap sites, §III).
func appendCandidateSites(a *arch.Architecture, dst []arch.SiteRef, pts []geom.Point, delta int, excluded []bool) []arch.SiteRef {
	mid := centroid(pts)
	near := nearSiteForQubits(a, pts)
	for zi, z := range a.Entanglement {
		if z.SiteSlots() < len(pts) {
			continue
		}
		nr, nc := z.NearestSite(mid)
		// Center the box on the zone-shared middle site when the qubits'
		// nearest sites resolve into this zone; otherwise on the nearest
		// site to the centroid.
		if near.Zone == zi {
			nr, nc = near.Row, near.Col
		}
		rows, cols := z.SiteRows(), z.SiteCols()
		for r := max(0, nr-delta); r <= min(rows-1, nr+delta); r++ {
			for c := max(0, nc-delta); c <= min(cols-1, nc+delta); c++ {
				s := arch.SiteRef{Zone: zi, Row: r, Col: c}
				if excluded == nil || !excluded[a.SiteOrdinal(s)] {
					dst = append(dst, s)
				}
			}
		}
	}
	return dst
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gatePlacement assigns Rydberg sites to the non-reused gates of a stage by
// minimum-weight full matching (paper §V-B2, Jonker–Volgenant). pos gives
// current qubit positions; sc.reserved marks sites excluded for every gate
// (reused gates), except that a gate may target a site currently held by
// one of its own qubits. lookahead[gi] ≥ 0 optionally names a qubit whose
// distance to the chosen site is added (the §V-B2 reuse lookahead term).
// The returned assignment is aligned with gateIdx and owned by the scratch.
func gatePlacement(
	a *arch.Architecture,
	gates []circuit.Gate,
	gateIdx []int, // indices (into gates) that still need sites
	pos []Pos,
	lookahead []int32, // by gate index; nil or -1 = no lookahead
	held map[arch.SiteRef][]int, // site → zone-resident qubits still there
	delta int,
	sc *transitionScratch,
	cov *cover.Set,
) ([]arch.SiteRef, float64, error) {
	if len(gateIdx) == 0 {
		return nil, 0, nil
	}
	maxDelta := delta
	for _, z := range a.Entanglement {
		if z.SiteRows() > maxDelta {
			maxDelta = z.SiteRows()
		}
		if z.SiteCols() > maxDelta {
			maxDelta = z.SiteCols()
		}
	}
	for d := delta; d <= maxDelta; d *= 2 {
		if d > delta {
			cov.Hit("place:gateplace:expand")
		}
		assign, cost, err := tryGatePlacement(a, gates, gateIdx, pos, lookahead, held, d, sc)
		if err == nil {
			return assign, cost, nil
		}
		if err != matching.ErrNoFullMatching {
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("place: cannot place %d gates even over the whole entanglement zone(s)", len(gateIdx))
}

func tryGatePlacement(
	a *arch.Architecture,
	gates []circuit.Gate,
	gateIdx []int,
	pos []Pos,
	lookahead []int32,
	held map[arch.SiteRef][]int,
	delta int,
	sc *transitionScratch,
) ([]arch.SiteRef, float64, error) {
	// Per-gate candidate lists (CSR over sc.cands) and their union, indexed
	// densely through sc.siteCol in first-appearance order — the same column
	// order the dense matrix construction used.
	sc.sites = sc.sites[:0]
	sc.cands = sc.cands[:0]
	sc.candRow = sc.candRow[:0]
	defer func() {
		for _, s := range sc.sites {
			sc.siteCol[a.SiteOrdinal(s)] = -1
		}
	}()
	gatePts := func(g circuit.Gate) []geom.Point {
		sc.ptsBuf = sc.ptsBuf[:0]
		for _, q := range g.Qubits {
			sc.ptsBuf = append(sc.ptsBuf, pos[q].Point(a))
		}
		return sc.ptsBuf
	}
	for _, gi := range gateIdx {
		sc.candRow = append(sc.candRow, len(sc.cands))
		sc.cands = appendCandidateSites(a, sc.cands, gatePts(gates[gi]), delta, sc.reserved)
		for _, s := range sc.cands[sc.candRow[len(sc.candRow)-1]:] {
			if ord := a.SiteOrdinal(s); sc.siteCol[ord] < 0 {
				sc.siteCol[ord] = int32(len(sc.sites))
				sc.sites = append(sc.sites, s)
			}
		}
	}
	sc.candRow = append(sc.candRow, len(sc.cands))
	if len(sc.sites) < len(gateIdx) {
		return nil, 0, matching.ErrNoFullMatching
	}

	sc.rowStart = sc.rowStart[:0]
	sc.cols = sc.cols[:0]
	sc.costs = sc.costs[:0]
	for k, gi := range gateIdx {
		sc.rowStart = append(sc.rowStart, len(sc.cols))
		g := gates[gi]
		pts := gatePts(g)
		var lookPt geom.Point
		partner := -1
		if lookahead != nil && lookahead[gi] >= 0 {
			partner = int(lookahead[gi])
			lookPt = pos[partner].Point(a)
		}
		for _, s := range sc.cands[sc.candRow[k]:sc.candRow[k+1]] {
			// A site held by a foreign zone-resident qubit is unavailable;
			// held by this gate's own qubits is fine (the qubit stays put).
			foreign := false
			for _, hq := range held[s] {
				in := false
				for _, gq := range g.Qubits {
					if gq == hq {
						in = true
						break
					}
				}
				if !in {
					foreign = true
					break
				}
			}
			if foreign {
				continue
			}
			sp := a.SitePos(s)
			w := gateCost(a, sp, pts...)
			if partner >= 0 {
				w += moveCost(a, lookPt, sp)
			}
			sc.cols = append(sc.cols, int(sc.siteCol[a.SiteOrdinal(s)]))
			sc.costs = append(sc.costs, w)
		}
	}
	sc.rowStart = append(sc.rowStart, len(sc.cols))

	rowTo, total, err := sc.solver.SolveSparse(sc.ctx, sc.workers, len(gateIdx), len(sc.sites), sc.rowStart, sc.cols, sc.costs)
	if err != nil {
		return nil, 0, err
	}
	sc.assignSites = sc.assignSites[:0]
	for k := range gateIdx {
		sc.assignSites = append(sc.assignSites, sc.sites[rowTo[k]])
	}
	return sc.assignSites, total, nil
}

// returnPlacement assigns storage traps to the qubits leaving the
// entanglement zone (paper §V-B3): candidates are the empty traps inside the
// bounding box spanned by (1) the qubit's original storage trap, (2) the
// k-neighborhood of the storage trap nearest its current site, and (3) the
// trap nearest its related qubit; edge weights follow Eq. 3. The returned
// assignment is aligned with qubits and owned by the scratch.
func returnPlacement(
	a *arch.Architecture,
	qubits []int,
	pos []Pos,
	home []arch.TrapRef,
	related []int32, // by qubit → partner in the next Rydberg stage, -1 = none
	occ []int, // by trap ordinal → qubit, -1 = free
	k int,
	alpha float64,
	sc *transitionScratch,
	cov *cover.Set,
) ([]arch.TrapRef, float64, error) {
	if len(qubits) == 0 {
		return nil, 0, nil
	}
	for attempt, kk := 0, k; attempt < 4; attempt, kk = attempt+1, kk*2+1 {
		if attempt > 0 {
			cov.Hit("place:returns:expand")
		}
		if attempt == 3 {
			cov.Hit("place:returns:all-traps")
		}
		assign, cost, err := tryReturnPlacement(a, qubits, pos, home, related, occ, kk, alpha, attempt == 3, sc)
		if err == nil {
			return assign, cost, nil
		}
		if err != matching.ErrNoFullMatching {
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("place: cannot return %d qubits to storage", len(qubits))
}

func tryReturnPlacement(
	a *arch.Architecture,
	qubits []int,
	pos []Pos,
	home []arch.TrapRef,
	related []int32,
	occ []int,
	k int,
	alpha float64,
	allTraps bool,
	sc *transitionScratch,
) ([]arch.TrapRef, float64, error) {
	sc.traps = sc.traps[:0]
	sc.tcands = sc.tcands[:0]
	sc.tcandRow = sc.tcandRow[:0]
	defer func() {
		for _, t := range sc.traps {
			sc.trapCol[a.TrapOrdinal(t)] = -1
		}
	}()
	for _, q := range qubits {
		sc.tcandRow = append(sc.tcandRow, len(sc.tcands))
		if allTraps {
			for ord, taken := range occ {
				if taken < 0 {
					sc.tcands = append(sc.tcands, a.TrapAt(ord))
				}
			}
		} else {
			sc.tcands = appendCandidateTraps(a, sc.tcands, q, pos, home, related, occ, k)
		}
		for _, t := range sc.tcands[sc.tcandRow[len(sc.tcandRow)-1]:] {
			if ord := a.TrapOrdinal(t); sc.trapCol[ord] < 0 {
				sc.trapCol[ord] = int32(len(sc.traps))
				sc.traps = append(sc.traps, t)
			}
		}
	}
	sc.tcandRow = append(sc.tcandRow, len(sc.tcands))
	if len(sc.traps) < len(qubits) {
		return nil, 0, matching.ErrNoFullMatching
	}

	sc.rowStart = sc.rowStart[:0]
	sc.cols = sc.cols[:0]
	sc.costs = sc.costs[:0]
	for i, q := range qubits {
		sc.rowStart = append(sc.rowStart, len(sc.cols))
		cur := pos[q].Point(a)
		// A non-positive α disables the lookahead term (used by the
		// parameter-sweep ablation).
		partner := -1
		var partnerPt geom.Point
		if related != nil && related[q] >= 0 && alpha > 0 {
			partner = int(related[q])
			partnerPt = pos[partner].Point(a)
		}
		for _, t := range sc.tcands[sc.tcandRow[i]:sc.tcandRow[i+1]] {
			ord := a.TrapOrdinal(t)
			tp := a.TrapPosAt(ord)
			w := moveCost(a, cur, tp)
			if partner >= 0 {
				w += alpha * moveCost(a, partnerPt, tp)
			}
			sc.cols = append(sc.cols, int(sc.trapCol[ord]))
			sc.costs = append(sc.costs, w)
		}
	}
	sc.rowStart = append(sc.rowStart, len(sc.cols))

	rowTo, total, err := sc.solver.SolveSparse(sc.ctx, sc.workers, len(qubits), len(sc.traps), sc.rowStart, sc.cols, sc.costs)
	if err != nil {
		return nil, 0, err
	}
	sc.assignTraps = sc.assignTraps[:0]
	for i := range qubits {
		sc.assignTraps = append(sc.assignTraps, sc.traps[rowTo[i]])
	}
	return sc.assignTraps, total, nil
}

// candidateTraps returns S_cand^q for one qubit as a fresh slice;
// appendCandidateTraps is the variant the solver uses.
func candidateTraps(a *arch.Architecture, q int, pos []Pos, home []arch.TrapRef, related []int32, occ []int, k int) []arch.TrapRef {
	return appendCandidateTraps(a, nil, q, pos, home, related, occ, k)
}

// appendCandidateTraps appends S_cand^q for one qubit to dst: empty traps
// inside the bounding box of the three anchor trap groups (paper Fig. 6c).
func appendCandidateTraps(
	a *arch.Architecture,
	dst []arch.TrapRef,
	q int,
	pos []Pos,
	home []arch.TrapRef,
	related []int32,
	occ []int,
	k int,
) []arch.TrapRef {
	cur := pos[q].Point(a)
	box := geom.NewBBox()
	anchors := make([]arch.TrapRef, 0, 4*k+3)

	// (1) original storage trap
	anchors = append(anchors, home[q])
	// (2) nearest storage trap to the current site plus k-neighbors along
	// its row and column
	nearest := a.NearestStorageTrap(cur)
	anchors = append(anchors, nearest)
	z := a.Storage[nearest.Zone].SLMs[nearest.SLM]
	for d := 1; d <= k; d++ {
		for _, t := range [4]arch.TrapRef{
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row, Col: nearest.Col - d},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row, Col: nearest.Col + d},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row - d, Col: nearest.Col},
			{Zone: nearest.Zone, SLM: nearest.SLM, Row: nearest.Row + d, Col: nearest.Col},
		} {
			if z.InRange(t.Row, t.Col) {
				anchors = append(anchors, t)
			}
		}
	}
	// (3) nearest trap to the related qubit
	if related != nil && related[q] >= 0 {
		anchors = append(anchors, a.NearestStorageTrap(pos[related[q]].Point(a)))
	}

	for _, t := range anchors {
		box.Extend(a.TrapPos(t))
	}
	// Collect the empty traps inside the bounding box. Restrict the scan to
	// the storage SLM arrays that intersect the box.
	for zi, zz := range a.Storage {
		for si, s := range zz.SLMs {
			rLo, cLo := s.NearestTrap(geom.Point{X: box.MinX, Y: box.MinY})
			rHi, cHi := s.NearestTrap(geom.Point{X: box.MaxX, Y: box.MaxY})
			for r := min(rLo, rHi); r <= max(rLo, rHi); r++ {
				for c := min(cLo, cHi); c <= max(cLo, cHi); c++ {
					t := arch.TrapRef{Zone: zi, SLM: si, Row: r, Col: c}
					if !box.Contains(s.TrapPos(r, c)) {
						continue
					}
					if occ[a.TrapOrdinal(t)] < 0 {
						dst = append(dst, t)
					}
				}
			}
		}
	}
	return dst
}
