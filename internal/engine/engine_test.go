package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachSequentialOrder(t *testing.T) {
	var got []int
	err := ForEach(context.Background(), 1, 5, func(i int) error {
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 200
	var seen [n]atomic.Int32
	err := ForEach(context.Background(), 8, n, func(i int) error {
		seen[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(context.Background(), 4, 1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The pool must stop early: nowhere near all 1000 tasks should run.
	if c := calls.Load(); c > 900 {
		t.Errorf("error did not cancel the pool: %d calls", c)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, 2, 1_000_000, func(i int) error {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not stop after cancellation")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrderedResults(t *testing.T) {
	out, err := Map(context.Background(), 8, 100, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 7 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "task 7 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive worker counts must normalize to ≥1")
	}
	if Workers(7) != 7 {
		t.Fatal("positive worker counts must pass through")
	}
}

// TestPoolCacheRace drives many workers through overlapping cache keys; its
// value is under `go test -race`, where any unsynchronized access in the
// pool or cache trips the detector.
func TestPoolCacheRace(t *testing.T) {
	c := NewTiered(0)
	err := ForEach(context.Background(), 16, 400, func(i int) error {
		key := fmt.Sprintf("k%d", i%13)
		v, err := GetTiered(c, key, nil, func() (int, error) { return i % 13, nil })
		if err != nil {
			return err
		}
		if v != i%13 {
			return fmt.Errorf("key %s: got %d", key, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 13 || st.Hits() != 400-13 {
		t.Fatalf("stats = %+v", st)
	}
}
