package compiler

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/resynth"
)

// conformanceSubset mirrors the golden determinism corpus (bench_test.go,
// internal/core/determinism_test.go).
var conformanceSubset = []string{"bv_n14", "ghz_n23", "ising_n42", "qft_n18", "wstate_n27"}

// stagedFor shapes a benchmark's input the way the evaluation harness does:
// split to the zoned reference capacity for splitters, flat for the rest.
func stagedFor(t *testing.T, c Compiler, name string) *circuit.Staged {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if WantsSplit(c) {
		staged = circuit.SplitRydbergStages(staged, arch.Reference().TotalSites())
	}
	return staged
}

// resultHash digests the observable output of a compilation: the program,
// the statistics, and the fidelity breakdown.
func resultHash(t *testing.T, r *core.Result) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Program any
		Stats   any
		Brk     any
	}{r.Program, r.Stats, r.Breakdown})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestRegistryConformance is the registry-wide contract: every registered
// compiler compiles the 5-circuit determinism subset, returns a non-nil
// Program with sane Stats and fidelity, reports per-pass timings, and is
// deterministic across two runs with independent artifact caches.
func TestRegistryConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the five-circuit subset with every registered compiler; skipped in -short")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != name {
				t.Fatalf("Name() = %q, registered as %q", c.Name(), name)
			}
			target := TargetArch(c)
			for _, bn := range conformanceSubset {
				hashes := make([]string, 2)
				for run := 0; run < 2; run++ {
					// Fresh artifact cache per run: determinism must not
					// lean on sharing one memoized plan.
					arts := NewArtifacts(engine.NewTiered(0))
					staged := stagedFor(t, c, bn)
					r, err := c.Compile(context.Background(), staged, target, Options{Key: bn, Artifacts: arts})
					if err != nil {
						t.Fatalf("%s run %d: %v", bn, run, err)
					}
					if r.Program == nil {
						t.Fatalf("%s: nil Program", bn)
					}
					if r.Program.NumQubits != staged.NumQubits {
						t.Errorf("%s: program has %d qubits, staged %d", bn, r.Program.NumQubits, staged.NumQubits)
					}
					if r.Stats.Busy == nil || r.Stats.Duration <= 0 {
						t.Errorf("%s: stats not populated: %+v", bn, r.Stats)
					}
					if r.Breakdown.Total <= 0 || r.Breakdown.Total > 1 {
						t.Errorf("%s: fidelity %v outside (0,1]", bn, r.Breakdown.Total)
					}
					if len(r.Passes) == 0 {
						t.Errorf("%s: no pass timings", bn)
					}
					hashes[run] = resultHash(t, r)
				}
				if hashes[0] != hashes[1] {
					t.Errorf("%s: nondeterministic output across runs:\n  %s\n  %s", bn, hashes[0], hashes[1])
				}
			}
		})
	}
}

// TestAliasesResolve pins the Fig. 11 legend spellings (and case
// variations) to their canonical compilers.
func TestAliasesResolve(t *testing.T) {
	for alias, want := range map[string]string{
		core.SettingVanilla:         "zac-vanilla",
		core.SettingDynPlace:        "zac-dynplace",
		core.SettingDynPlaceReuse:   "zac-dynplace-reuse",
		core.SettingSADynPlaceReuse: "zac",
		"ZAC":                       "zac",
		"  Enola ":                  "enola",
	} {
		c, err := Get(alias)
		if err != nil {
			t.Errorf("Get(%q): %v", alias, err)
			continue
		}
		if c.Name() != want {
			t.Errorf("Get(%q) = %s, want %s", alias, c.Name(), want)
		}
	}
	if _, err := Get("no-such-compiler"); err == nil {
		t.Error("unknown compiler resolved")
	}
}

// TestZACMatchesCompileStaged pins the registry's zac compiler to
// core.CompileStaged: same staged input, byte-identical program.
func TestZACMatchesCompileStaged(t *testing.T) {
	b, err := bench.ByName("bv_n14")
	if err != nil {
		t.Fatal(err)
	}
	staged, err := resynth.Preprocess(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Reference()
	direct, err := core.CompileStaged(staged, a, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	zc, err := Get("zac")
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := zc.Compile(context.Background(), staged, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct.Program)
	got, _ := json.Marshal(viaRegistry.Program)
	if string(want) != string(got) {
		t.Fatal("registry zac output differs from core.CompileStaged")
	}
}

// TestArtifactsSharedAcrossCompilers verifies the pass-artifact cache's
// whole point: three compilers asking for the same staged circuit trigger
// one preprocessing computation, and two zac compilations of the same
// (circuit, arch, options) share one placement.
func TestArtifactsSharedAcrossCompilers(t *testing.T) {
	arts := NewArtifacts(engine.NewTiered(0))
	builds := 0
	build := func() (*circuit.Staged, error) {
		builds++
		return resynth.Preprocess(bench.GHZ(8))
	}
	for i := 0; i < 3; i++ {
		if _, err := arts.Staged("ghz8", 0, build); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 1 {
		t.Errorf("staged artifact built %d times, want 1", builds)
	}

	staged, err := arts.Staged("ghz8", 0, build)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Reference()
	_, hit1, err := arts.Plan(context.Background(), "ghz8", a, staged, core.Default().Place)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first plan lookup reported a cache hit")
	}
	plan2, hit2, err := arts.Plan(context.Background(), "ghz8", a, staged, core.Default().Place)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || plan2 == nil {
		t.Error("second plan lookup missed the artifact cache")
	}

	// A zac compile with the same key must reuse the memoized plan and flag
	// its place pass as cached.
	zc, err := Get("zac")
	if err != nil {
		t.Fatal(err)
	}
	r, err := zc.Compile(context.Background(), staged, a, Options{Key: "ghz8", Artifacts: arts})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Passes {
		if p.Pass == "place" && !p.Cached {
			t.Error("place pass recomputed despite a shared plan artifact")
		}
	}
}

// TestCompileCancelled verifies cancellation propagates through the
// pipeline for every registered compiler.
func TestCompileCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		staged := stagedFor(t, c, "bv_n14")
		if _, err := c.Compile(ctx, staged, TargetArch(c), Options{}); err == nil {
			t.Errorf("%s: cancelled compile succeeded", name)
		}
	}
}
