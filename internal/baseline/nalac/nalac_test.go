package nalac

import (
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/resynth"
)

func stage(t *testing.T, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	s, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIdleInZoneExcitation(t *testing.T) {
	// NALAC keeps stage qubits in the zone across the per-offset exposures,
	// so a stage whose gate pairs cross in rank order exposes the waiting
	// pairs to the Rydberg laser (the paper's key criticism).
	a := arch.Reference()
	c := circuit.New("crossing", 4)
	c.Append(circuit.CZ, []int{0, 3})
	c.Append(circuit.CZ, []int{2, 1})
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumExposures < 2 {
		t.Fatalf("crossing pairs should need ≥2 exposures, got %d", res.NumExposures)
	}
	if res.Stats.Excited == 0 {
		t.Error("NALAC should expose idle in-zone qubits to the Rydberg laser")
	}
	if res.Breakdown.Total <= 0 || res.Breakdown.Total >= 1 {
		t.Errorf("fidelity = %v", res.Breakdown.Total)
	}
}

func TestSlidesAccumulate(t *testing.T) {
	// Rank-crossing pairs within one stage force slides between exposures.
	a := arch.Reference()
	c := circuit.New("offsets", 10)
	c.Append(circuit.CZ, []int{0, 7}) // rank offsets cross
	c.Append(circuit.CZ, []int{2, 1})
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSlideLength <= 0 {
		t.Error("distinct offsets must require slides")
	}
	if res.NumExposures < 2 {
		t.Errorf("exposures = %d, want ≥ 2 (two offsets)", res.NumExposures)
	}
}

func TestParallelSameOffsetSingleExposure(t *testing.T) {
	a := arch.Reference()
	c := circuit.New("par", 8)
	for i := 0; i+1 < 8; i += 2 {
		c.Append(circuit.CZ, []int{i, i + 1}) // all offset 1
	}
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumExposures != 1 {
		t.Errorf("exposures = %d, want 1 for uniform offsets", res.NumExposures)
	}
}

func TestReuseSkipsReload(t *testing.T) {
	// Consecutive stages on the same qubits: the second stage needs no new
	// row loads beyond the first.
	a := arch.Reference()
	c := circuit.New("reuse", 4)
	c.Append(circuit.CZ, []int{0, 1})
	c.Append(circuit.CZ, []int{1, 2}) // q1 reused
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs: stage 1 loads {0} and {1} (2), unloads {0} (1); stage 2 loads
	// {2} only — q1 is retained (1); final drain (1). Five total; without
	// reuse q1 would need an extra unload + reload.
	if res.NumRowLoads > 5 {
		t.Errorf("row loads = %d, expected reuse to limit reloads", res.NumRowLoads)
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	a := arch.Reference()
	for _, b := range bench.All() {
		res, err := Compile(stage(t, b.Build()), a)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.Breakdown.Total < 0 || res.Breakdown.Total > 1 {
			t.Fatalf("%s: fidelity %v", b.Name, res.Breakdown.Total)
		}
		if res.Duration <= 0 {
			t.Fatalf("%s: no duration", b.Name)
		}
	}
}
