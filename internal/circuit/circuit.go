// Package circuit defines quantum circuits at two levels: the input level
// (the common gate vocabulary found in QASMBench programs) and the hardware
// level used by the zoned architecture, whose native gate set is {CZ, U3}
// (paper §IV). It also provides the dependency (DAG) utilities the
// preprocessing and scheduling passes rely on.
package circuit

import (
	"fmt"
	"strings"
)

// Kind enumerates the supported gate kinds.
type Kind int

const (
	// Hardware-native kinds.
	U3 Kind = iota // params: theta, phi, lambda
	CZ

	// Input-level 1Q kinds (decomposed by resynthesis).
	H
	X
	Y
	Z
	S
	Sdg
	T
	Tdg
	RX // params: theta
	RY // params: theta
	RZ // params: theta
	U1 // params: lambda (phase gate)
	U2 // params: phi, lambda
	ID

	// Input-level multi-qubit kinds.
	CX
	CY
	CCX
	CCZ
	SWAP
	CSWAP
	CP  // controlled phase; params: lambda
	CRX // params: theta
	CRY // params: theta
	CRZ // params: theta
	RZZ // params: theta
	RXX // params: theta

	// Non-unitary markers (accepted on input, dropped by resynthesis).
	Measure
	Barrier
)

var kindNames = map[Kind]string{
	U3: "u3", CZ: "cz", H: "h", X: "x", Y: "y", Z: "z", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", RX: "rx", RY: "ry", RZ: "rz", U1: "u1", U2: "u2",
	ID: "id", CX: "cx", CY: "cy", CCX: "ccx", CCZ: "ccz", SWAP: "swap",
	CSWAP: "cswap", CP: "cp", CRX: "crx", CRY: "cry", CRZ: "crz",
	RZZ: "rzz", RXX: "rxx", Measure: "measure", Barrier: "barrier",
}

// String returns the lowercase QASM-style mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumQubits returns the arity of the gate kind.
func (k Kind) NumQubits() int {
	switch k {
	case CX, CY, CZ, SWAP, CP, CRX, CRY, CRZ, RZZ, RXX:
		return 2
	case CCX, CCZ, CSWAP:
		return 3
	default:
		return 1
	}
}

// NumParams returns the number of float parameters the kind takes.
func (k Kind) NumParams() int {
	switch k {
	case U3:
		return 3
	case U2:
		return 2
	case RX, RY, RZ, U1, CP, CRX, CRY, CRZ, RZZ, RXX:
		return 1
	default:
		return 0
	}
}

// Gate is a single operation on one or more qubits.
type Gate struct {
	Kind   Kind
	Qubits []int
	Params []float64
}

// NewGate constructs a gate, panicking on arity mismatch; it is the checked
// constructor used by the generators and the QASM parser.
func NewGate(k Kind, qubits []int, params ...float64) Gate {
	if len(qubits) != k.NumQubits() {
		panic(fmt.Sprintf("circuit: %s expects %d qubits, got %d", k, k.NumQubits(), len(qubits)))
	}
	if len(params) != k.NumParams() {
		panic(fmt.Sprintf("circuit: %s expects %d params, got %d", k, k.NumParams(), len(params)))
	}
	return Gate{Kind: k, Qubits: append([]int(nil), qubits...), Params: append([]float64(nil), params...)}
}

// Is2Q reports whether the gate acts on exactly two qubits.
func (g Gate) Is2Q() bool { return len(g.Qubits) == 2 }

// String renders the gate in QASM-ish syntax.
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Kind.String())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Circuit is an ordered list of gates over NumQubits qubits.
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit.
func New(name string, numQubits int) *Circuit {
	return &Circuit{Name: name, NumQubits: numQubits}
}

// Append adds a gate built with NewGate.
func (c *Circuit) Append(k Kind, qubits []int, params ...float64) {
	c.Gates = append(c.Gates, NewGate(k, qubits, params...))
}

// Validate checks qubit indices, arities, and parameter counts.
func (c *Circuit) Validate() error {
	if c.NumQubits <= 0 {
		return fmt.Errorf("circuit %q: non-positive qubit count %d", c.Name, c.NumQubits)
	}
	for i, g := range c.Gates {
		if len(g.Qubits) != g.Kind.NumQubits() {
			return fmt.Errorf("circuit %q gate %d (%s): wrong arity %d", c.Name, i, g.Kind, len(g.Qubits))
		}
		if len(g.Params) != g.Kind.NumParams() {
			return fmt.Errorf("circuit %q gate %d (%s): wrong param count %d", c.Name, i, g.Kind, len(g.Params))
		}
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit %q gate %d (%s): qubit %d out of range [0,%d)", c.Name, i, g.Kind, q, c.NumQubits)
			}
			if seen[q] {
				return fmt.Errorf("circuit %q gate %d (%s): duplicate qubit %d", c.Name, i, g.Kind, q)
			}
			seen[q] = true
		}
	}
	return nil
}

// CountByArity returns the number of 1Q and 2Q+ gates (Measure/Barrier are
// not counted).
func (c *Circuit) CountByArity() (oneQ, multiQ int) {
	for _, g := range c.Gates {
		switch g.Kind {
		case Measure, Barrier:
			continue
		}
		if len(g.Qubits) == 1 {
			oneQ++
		} else {
			multiQ++
		}
	}
	return oneQ, multiQ
}

// Clone deep-copies the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{
			Kind:   g.Kind,
			Qubits: append([]int(nil), g.Qubits...),
			Params: append([]float64(nil), g.Params...),
		}
	}
	return out
}

// TwoQubitEdges returns the distinct unordered qubit pairs that appear in 2Q
// gates, useful for interaction-graph analyses.
func (c *Circuit) TwoQubitEdges() [][2]int {
	seen := map[[2]int]bool{}
	var edges [][2]int
	for _, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, k)
		}
	}
	return edges
}

// Depth returns the circuit depth counting every gate as one time step.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		if g.Kind == Barrier || g.Kind == Measure {
			continue
		}
		max := 0
		for _, q := range g.Qubits {
			if level[q] > max {
				max = level[q]
			}
		}
		for _, q := range g.Qubits {
			level[q] = max + 1
		}
		if max+1 > depth {
			depth = max + 1
		}
	}
	return depth
}
