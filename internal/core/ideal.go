package core

import (
	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/fidelity"
	"zac/internal/place"
)

// The optimality study (paper §VII-F, Fig. 13) compares ZAC against three
// idealized upper bounds:
//
//   - Perfect movement: every movement of a phase is compatible, so each
//     phase is a single rearrangement job whose duration is governed by the
//     longest individual move (2·Ttran + max movement time). Placement (and
//     hence distances) is ZAC's own.
//   - Perfect placement: additionally, every move spans only the zone
//     separation dsep, so each phase lasts 2·Ttran + √(dsep/a) — the minimum
//     possible rearrangement duration.
//   - Perfect reuse: additionally, a qubit needed in the next Rydberg stage
//     stays in the zone or moves directly to its next site, saving the two
//     atom transfers of a storage round trip.
//
// These evaluators return fidelity statistics under the same model as the
// real compiler, so Fig. 13's gaps are directly comparable.

// PerfectMovement evaluates the perfect-movement bound for a compiled plan.
func PerfectMovement(a *arch.Architecture, staged *circuit.Staged, plan *place.Plan) fidelity.Breakdown {
	st := idealStats(a, staged, plan, false, false)
	return fidelity.Compute(ParamsFromArch(a), st)
}

// PerfectPlacement evaluates the perfect-placement bound.
func PerfectPlacement(a *arch.Architecture, staged *circuit.Staged, plan *place.Plan) fidelity.Breakdown {
	st := idealStats(a, staged, plan, true, false)
	return fidelity.Compute(ParamsFromArch(a), st)
}

// PerfectReuse evaluates the perfect-reuse bound (the most ideal zoned
// scenario).
func PerfectReuse(a *arch.Architecture, staged *circuit.Staged, plan *place.Plan) fidelity.Breakdown {
	st := idealStats(a, staged, plan, true, true)
	return fidelity.Compute(ParamsFromArch(a), st)
}

// idealStats replays the staged circuit under the idealized assumptions.
// When shortestMoves is set, every move covers only dsep; when maxReuse is
// set, qubits shared between consecutive Rydberg stages skip the storage
// round trip.
func idealStats(a *arch.Architecture, staged *circuit.Staged, plan *place.Plan, shortestMoves, maxReuse bool) fidelity.Stats {
	var st fidelity.Stats
	st.Busy = make([]float64, staged.NumQubits)
	clock := 0.0

	minMove := a.MoveTime(a.ZoneSep)
	phase := func(moves []place.Move, skip map[int]bool) {
		var moving []int
		maxDur := 0.0
		for _, m := range moves {
			if skip[m.Qubit] {
				continue
			}
			moving = append(moving, m.Qubit)
			d := m.From.Point(a).Dist(m.To.Point(a))
			if t := a.MoveTime(d); t > maxDur {
				maxDur = t
			}
		}
		if len(moving) == 0 {
			return
		}
		if shortestMoves {
			maxDur = minMove
		}
		dur := 2*a.Times.AtomTransfer + maxDur
		for _, q := range moving {
			st.Busy[q] += dur
			st.Transfers += 2
		}
		clock += dur
	}

	stepIdx := 0
	for _, sg := range staged.Stages {
		switch sg.Kind {
		case circuit.OneQStage:
			for _, g := range sg.Gates {
				st.OneQGates++
				st.Busy[g.Qubits[0]] += a.Times.OneQGate
				clock += a.Times.OneQGate
			}
		case circuit.RydbergStage:
			step := &plan.Steps[stepIdx]
			// Under max reuse, a qubit also used in the previous stage moves
			// directly (or stays), so it skips this move-in round trip's
			// extra transfers; we approximate by skipping its move-in when it
			// was in the previous stage, and its move-out when it is in the
			// next stage.
			skipIn := map[int]bool{}
			skipOut := map[int]bool{}
			if maxReuse {
				if stepIdx > 0 {
					for _, g := range plan.Steps[stepIdx-1].Gates {
						for _, q := range g.Qubits {
							skipIn[q] = true
						}
					}
				}
				if stepIdx+1 < len(plan.Steps) {
					for _, g := range plan.Steps[stepIdx+1].Gates {
						for _, q := range g.Qubits {
							skipOut[q] = true
						}
					}
				}
				// A reused qubit that changes site still performs one direct
				// move; charge it as part of the move-in phase with two
				// transfers only when it was NOT in the previous stage.
			}
			phase(step.MovesIn, skipIn)
			for _, g := range step.Gates {
				st.TwoQGates++
				for _, q := range g.Qubits {
					st.Busy[q] += a.Times.Rydberg
				}
			}
			clock += a.Times.Rydberg
			phase(step.MovesOut, skipOut)
			stepIdx++
		}
	}
	st.Duration = clock
	return st
}
