// Package anneal provides the generic simulated-annealing engine used by
// ZAC's initial qubit placement (paper §V-A, citing Van Laarhoven & Aarts).
// The engine is deliberately small: a geometric cooling schedule, a
// user-supplied neighbor move with undo, and deterministic behaviour under a
// seeded RNG so experiment outputs are reproducible.
package anneal

import (
	"math"
	"math/rand"
)

// Problem is the interface a state must implement to be annealed. Propose
// mutates the state into a random neighbor and returns an undo function; Cost
// returns the current objective value (lower is better).
type Problem interface {
	Cost() float64
	Propose(r *rand.Rand) (undo func())
}

// DeltaProblem is an optional extension of Problem for states that can
// evaluate a proposal incrementally. ProposeDelta behaves like Propose but
// additionally returns the resulting total cost, letting the state
// re-evaluate only the objective terms its move touched instead of the full
// objective. Implementations must consume the RNG exactly as Propose would
// and must return a value bit-identical to what a full Cost() recomputation
// would produce, so annealing trajectories (and therefore seeded outputs)
// are independent of which interface the engine dispatches through.
type DeltaProblem interface {
	Problem
	ProposeDelta(r *rand.Rand) (next float64, undo func())
}

// Options tunes the annealing schedule.
type Options struct {
	// Iterations is the total number of proposals (the paper uses a
	// 1000-iteration limit for initial placement).
	Iterations int
	// InitialTemp is the starting temperature. If zero, it is calibrated to
	// the initial cost (10% of it, floor 1e-6).
	InitialTemp float64
	// Cooling is the geometric cooling factor per iteration (default 0.995).
	Cooling float64
	// Plateau stops early after this many consecutive non-improving
	// iterations (0 disables early stopping).
	Plateau int
}

// Result reports the outcome of a Run.
type Result struct {
	InitialCost float64
	BestCost    float64
	Iterations  int
	Accepted    int
}

// Run anneals p in place and leaves it in the best state visited. The caller
// supplies the RNG for determinism.
func Run(p Problem, opts Options, r *rand.Rand) Result {
	if opts.Iterations <= 0 {
		opts.Iterations = 1000
	}
	if opts.Cooling <= 0 || opts.Cooling >= 1 {
		opts.Cooling = 0.995
	}
	cur := p.Cost()
	res := Result{InitialCost: cur, BestCost: cur}
	temp := opts.InitialTemp
	if temp <= 0 {
		temp = math.Max(math.Abs(cur)*0.1, 1e-6)
	}

	// Track the proposal trail since the last best state so we can rewind:
	// storing full snapshots is the caller's concern; we instead re-anneal by
	// keeping undo stack from the best point.
	var sinceBest []func()
	stale := 0
	dp, incremental := p.(DeltaProblem)

	for it := 0; it < opts.Iterations; it++ {
		var next float64
		var undo func()
		if incremental {
			next, undo = dp.ProposeDelta(r)
		} else {
			undo = p.Propose(r)
			next = p.Cost()
		}
		delta := next - cur
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			cur = next
			res.Accepted++
			sinceBest = append(sinceBest, undo)
			if cur < res.BestCost-1e-12 {
				res.BestCost = cur
				sinceBest = sinceBest[:0]
				stale = 0
			} else {
				stale++
			}
		} else {
			undo()
			stale++
		}
		temp *= opts.Cooling
		res.Iterations = it + 1
		if opts.Plateau > 0 && stale >= opts.Plateau {
			break
		}
	}
	// Rewind to the best state visited.
	for i := len(sinceBest) - 1; i >= 0; i-- {
		sinceBest[i]()
	}
	return res
}
