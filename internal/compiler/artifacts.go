package compiler

import (
	"context"
	"fmt"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/place"
)

// Artifacts is the pass-granular artifact cache: staged circuits and
// placement plans are keyed by circuit identity (plus the parameters that
// shape them) and computed once, shared across every compiler and caller
// routed through the same underlying engine.Tiered. Staged circuits
// round-trip through JSON and persist to the disk tier when one is
// attached; plans hold deep pointer graphs into the architecture and stay
// memory-only. A nil *Artifacts is valid and computes everything in place.
type Artifacts struct {
	cache *engine.Tiered
}

// NewArtifacts wraps a tiered cache as a pass-artifact cache. Artifact keys
// are prefixed "pass:", so the same Tiered can also hold whole-compile
// results without collisions.
func NewArtifacts(t *engine.Tiered) *Artifacts { return &Artifacts{cache: t} }

// Stats returns the underlying cache's hit/miss counters.
func (ar *Artifacts) Stats() engine.TieredStats {
	if ar == nil || ar.cache == nil {
		return engine.TieredStats{}
	}
	return ar.cache.Stats()
}

// Staged memoizes circuit preprocessing. build must return the
// resynthesized, ASAP-staged circuit; oversized Rydberg stages are then
// split to splitSites when positive. Every compiler asking for the same
// (key, splitSites) shares one staged instance — compilers only read it.
func (ar *Artifacts) Staged(key string, splitSites int, build func() (*circuit.Staged, error)) (*circuit.Staged, error) {
	compute := func() (*circuit.Staged, error) {
		staged, err := build()
		if err != nil {
			return nil, err
		}
		return circuit.SplitRydbergStages(staged, splitSites), nil
	}
	if ar == nil || ar.cache == nil || key == "" {
		return compute()
	}
	k := fmt.Sprintf("pass:staged|%s|split=%d", key, splitSites)
	return engine.GetTiered(ar.cache, k, engine.JSONCodec[*circuit.Staged](), compute)
}

// planKey renders the memoization key of a placement artifact. place.Options
// is a flat struct of scalars, so its %+v rendering is a stable, complete
// identity; Canonical() fills defaults and strips the execution-only Workers
// knob, so two option sets that produce the same plan share one artifact
// regardless of the worker budget they ran under.
func planKey(key string, a *arch.Architecture, opts place.Options) string {
	return fmt.Sprintf("pass:place|%s|arch=%s|opts=%+v", key, a.Fingerprint(), opts.Canonical())
}

// Plan memoizes the placement pass for (key, a, opts), computing the plan
// with BuildPlan on a miss. The bool reports a cache hit (including joining
// a computation already in flight).
func (ar *Artifacts) Plan(ctx context.Context, key string, a *arch.Architecture, staged *circuit.Staged, opts place.Options) (*place.Plan, bool, error) {
	compute := func(ctx context.Context) (*place.Plan, error) {
		return place.BuildPlan(ctx, a, staged, opts)
	}
	return ar.memoPlan(key, a, opts)(ctx, compute)
}

// memoPlan adapts the artifact cache to the core pipeline's MemoPlan hook
// for a fixed (key, architecture, options) identity. The computation runs
// under DoCtx semantics: cancelled only when every caller sharing the plan
// has cancelled.
func (ar *Artifacts) memoPlan(key string, a *arch.Architecture, opts place.Options) core.MemoPlanFunc {
	return func(ctx context.Context, compute func(context.Context) (*place.Plan, error)) (*place.Plan, bool, error) {
		if ar == nil || ar.cache == nil || key == "" {
			plan, err := compute(ctx)
			return plan, false, err
		}
		computed := false
		plan, err := engine.GetTieredCtx(ar.cache, ctx, planKey(key, a, opts), nil, func(ctx context.Context) (*place.Plan, error) {
			computed = true
			return compute(ctx)
		})
		return plan, err == nil && !computed, err
	}
}
