// Package atomique reimplements the mechanism of Atomique [Wang et al.,
// ISCA 2024], the second monolithic baseline (§VII-A): qubits are split
// between a static SLM grid and a mobile AOD grid; inter-array gates execute
// by moving the whole AOD array so the chosen pairs interact, and
// intra-array gates first insert SWAPs (three CZ each, executed as
// inter-array operations) to cross one operand over. Atomique never uses
// atom transfers — the AOD holds its qubits for the whole program — so its
// transfer fidelity is 1, but every Rydberg exposure is global and the
// movement count is high, which drives its large excitation and decoherence
// errors (Fig. 9).
package atomique

import (
	"fmt"
	"math"
	"sort"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/fidelity"
)

// Result is the evaluation of an Atomique-style compilation.
type Result struct {
	Stats            fidelity.Stats
	Breakdown        fidelity.Breakdown
	NumRydbergStages int
	NumSwaps         int
	Duration         float64
}

// Compile evaluates a preprocessed circuit under the Atomique execution
// model on the monolithic architecture a.
func Compile(staged *circuit.Staged, a *arch.Architecture) (*Result, error) {
	zone := a.Entanglement[0]
	cols := zone.SiteCols()
	half := (staged.NumQubits + 1) / 2
	if half > zone.SiteRows()*cols {
		return nil, fmt.Errorf("atomique: %d qubits exceed capacity", staged.NumQubits)
	}

	// Even logical indices live in the SLM grid, odd in the AOD grid; both
	// grids are interleaved over the same site lattice, so qubit k of either
	// array sits at site (k/cols, k%cols).
	gridPos := func(q int) (row, col int) { k := q / 2; return k / cols, k % cols }
	isAOD := func(q int) bool { return q%2 == 1 }

	pitchX := zone.SLMs[0].SepX
	pitchY := zone.SLMs[0].SepY

	var st fidelity.Stats
	st.Busy = make([]float64, staged.NumQubits)
	clock := 0.0
	res := &Result{}

	// The AOD array's current displacement (in grid units) from home.
	curDX, curDY := 0.0, 0.0
	arrayMove := func(dx, dy float64) {
		dist := math.Hypot((dx-curDX)*pitchX, (dy-curDY)*pitchY)
		if dist == 0 {
			return
		}
		dur := a.MoveTime(dist)
		// Every AOD-resident qubit rides along.
		for q := 0; q < staged.NumQubits; q++ {
			if isAOD(q) {
				st.Busy[q] += dur
			}
		}
		clock += dur
		curDX, curDY = dx, dy
	}
	expose := func(gates int) {
		res.NumRydbergStages++
		st.TwoQGates += gates
		if idle := staged.NumQubits - 2*gates; idle > 0 {
			st.Excited += idle
		}
		clock += a.Times.Rydberg
	}

	for _, stage := range staged.Stages {
		switch stage.Kind {
		case circuit.OneQStage:
			for _, g := range stage.Gates {
				st.OneQGates++
				st.Busy[g.Qubits[0]] += a.Times.OneQGate
				clock += a.Times.OneQGate
			}
		case circuit.RydbergStage:
			// Classify gates; intra-array pairs pay a 3-CZ SWAP (each CZ of
			// the SWAP is an inter-array exposure with its own alignment).
			// Repeated CZs between the same pair (the SWAP's three CZs)
			// cannot share one exposure, so each displacement group tracks
			// per-pair multiplicities and splits into rounds.
			type aligned struct{ dx, dy float64 }
			groups := map[aligned]map[[2]int]int{}
			addInter := func(qSLM, qAOD int) {
				sr, sc := gridPos(qSLM)
				ar, ac := gridPos(qAOD)
				key := aligned{dx: float64(sc - ac), dy: float64(sr - ar)}
				if groups[key] == nil {
					groups[key] = map[[2]int]int{}
				}
				groups[key][[2]int{qSLM, qAOD}]++
			}
			for _, g := range stage.Gates {
				q1, q2 := g.Qubits[0], g.Qubits[1]
				switch {
				case isAOD(q1) != isAOD(q2):
					if isAOD(q1) {
						q1, q2 = q2, q1
					}
					addInter(q1, q2)
					for _, q := range g.Qubits {
						st.Busy[q] += a.Times.Rydberg
					}
				default:
					// Intra-array: swap q2 with an opposite-array neighbor
					// (3 inter-array CZs), then the gate itself.
					res.NumSwaps++
					partner := q2 ^ 1 // interleaved neighbor in the other array
					if partner >= staged.NumQubits {
						partner = q2 - 1
					}
					for i := 0; i < 3; i++ {
						if isAOD(q2) {
							addInter(partner, q2)
						} else {
							addInter(q2, partner)
						}
					}
					st.Busy[q2] += 3 * a.Times.Rydberg
					st.Busy[partner] += 3 * a.Times.Rydberg
					// The logical gate now runs inter-array via the partner
					// slot.
					if isAOD(q1) {
						addInter(partner, q1)
					} else {
						addInter(q1, partner)
					}
					st.Busy[q1] += a.Times.Rydberg
					st.Busy[partner] += a.Times.Rydberg
				}
			}
			// Execute one alignment (array move + global exposure) per
			// distinct displacement, nearest displacement first.
			keys := make([]aligned, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				di := math.Hypot(keys[i].dx-curDX, keys[i].dy-curDY)
				dj := math.Hypot(keys[j].dx-curDX, keys[j].dy-curDY)
				if di != dj {
					return di < dj
				}
				// Tie-break equidistant displacements on coordinates: the
				// keys come out of a map, so without this the visit order —
				// and with it the modeled movement time — would vary run to
				// run.
				if keys[i].dx != keys[j].dx {
					return keys[i].dx < keys[j].dx
				}
				return keys[i].dy < keys[j].dy
			})
			for _, k := range keys {
				arrayMove(k.dx, k.dy)
				// Split repeated-pair gates into sequential exposures.
				rounds := 0
				for _, cnt := range groups[k] {
					if cnt > rounds {
						rounds = cnt
					}
				}
				for r := 0; r < rounds; r++ {
					gates := 0
					for _, cnt := range groups[k] {
						if cnt > r {
							gates++
						}
					}
					expose(gates)
				}
			}
		}
	}
	arrayMove(0, 0) // return the array home
	st.Duration = clock
	res.Stats = st
	res.Duration = clock
	res.Breakdown = fidelity.Compute(params(a), st)
	return res, nil
}

func params(a *arch.Architecture) fidelity.Params {
	return fidelity.Params{
		F1: a.Fidelities.SingleQubit, F2: a.Fidelities.TwoQubit,
		FExc: a.Fidelities.Excitation, FTran: a.Fidelities.AtomTransfer,
		T1Q: a.Times.OneQGate, T2Q: a.Times.Rydberg, TTran: a.Times.AtomTransfer,
		T2: a.T2,
	}
}
