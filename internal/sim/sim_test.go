package sim

import (
	"math"
	"math/rand"
	"testing"

	"zac/internal/circuit"
	"zac/internal/linalg"
)

func TestBellState(t *testing.T) {
	c := circuit.New("bell", 2)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.CX, []int{0, 1})
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-r) > 1e-12 || math.Abs(real(s.Amp[3])-r) > 1e-12 {
		t.Fatalf("bell amplitudes wrong: %v", s.Amp)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("norm %v", s.Norm())
	}
}

func TestGHZ(t *testing.T) {
	n := 5
	c := circuit.New("ghz", n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < n-1; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r := 1 / math.Sqrt2
	last := (1 << uint(n)) - 1
	if math.Abs(real(s.Amp[0])-r) > 1e-12 || math.Abs(real(s.Amp[last])-r) > 1e-12 {
		t.Fatalf("GHZ amplitudes wrong: |0..0|=%v |1..1|=%v", s.Amp[0], s.Amp[last])
	}
}

func TestCZSymmetric(t *testing.T) {
	for _, init := range [][]circuit.Kind{{circuit.X, circuit.X}, {circuit.H, circuit.H}} {
		a := circuit.New("a", 2)
		b := circuit.New("b", 2)
		for q, k := range init {
			a.Append(k, []int{q})
			b.Append(k, []int{q})
		}
		a.Append(circuit.CZ, []int{0, 1})
		b.Append(circuit.CZ, []int{1, 0})
		sa, _ := Run(a)
		sb, _ := Run(b)
		if f := FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-12 {
			t.Fatalf("CZ not symmetric: fidelity %v", f)
		}
	}
}

func TestCCXTruthTable(t *testing.T) {
	// |110⟩ -> |111⟩ (qubits 0,1 controls, 2 target)
	c := circuit.New("ccx", 3)
	c.Append(circuit.X, []int{0})
	c.Append(circuit.X, []int{1})
	c.Append(circuit.CCX, []int{0, 1, 2})
	s, _ := Run(c)
	if math.Abs(real(s.Amp[7])-1) > 1e-12 {
		t.Fatalf("CCX on |110⟩ failed: %v", s.Amp)
	}
	// |100⟩ -> |100⟩
	c2 := circuit.New("ccx2", 3)
	c2.Append(circuit.X, []int{0})
	c2.Append(circuit.CCX, []int{0, 1, 2})
	s2, _ := Run(c2)
	if math.Abs(real(s2.Amp[1])-1) > 1e-12 {
		t.Fatalf("CCX on |100⟩ should be identity: %v", s2.Amp)
	}
}

func TestSwapGate(t *testing.T) {
	c := circuit.New("swap", 2)
	c.Append(circuit.X, []int{0})
	c.Append(circuit.SWAP, []int{0, 1})
	s, _ := Run(c)
	if math.Abs(real(s.Amp[2])-1) > 1e-12 {
		t.Fatalf("SWAP |10⟩ wrong: %v", s.Amp)
	}
}

func TestCSwapControlled(t *testing.T) {
	// control 0 off: nothing happens
	c := circuit.New("cswap", 3)
	c.Append(circuit.X, []int{1})
	c.Append(circuit.CSWAP, []int{0, 1, 2})
	s, _ := Run(c)
	if math.Abs(real(s.Amp[2])-1) > 1e-12 {
		t.Fatalf("CSWAP with control off moved state: %v", s.Amp)
	}
	// control on: swap
	c2 := circuit.New("cswap2", 3)
	c2.Append(circuit.X, []int{0})
	c2.Append(circuit.X, []int{1})
	c2.Append(circuit.CSWAP, []int{0, 1, 2})
	s2, _ := Run(c2)
	if math.Abs(real(s2.Amp[0b101])-1) > 1e-12 {
		t.Fatalf("CSWAP with control on failed: %v", s2.Amp)
	}
}

func TestRZZDiagonal(t *testing.T) {
	// On |11⟩, RZZ(θ) applies e^{-iθ/2}.
	th := 0.73
	c := circuit.New("rzz", 2)
	c.Append(circuit.X, []int{0})
	c.Append(circuit.X, []int{1})
	c.Append(circuit.RZZ, []int{0, 1}, th)
	s, _ := Run(c)
	wantRe, wantIm := math.Cos(-th/2), math.Sin(-th/2)
	if math.Abs(real(s.Amp[3])-wantRe) > 1e-12 || math.Abs(imag(s.Amp[3])-wantIm) > 1e-12 {
		t.Fatalf("RZZ phase wrong: %v", s.Amp[3])
	}
}

func TestNormPreservedRandom(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	kinds2q := []circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP, circuit.CY}
	for iter := 0; iter < 50; iter++ {
		n := 2 + r.Intn(5)
		c := circuit.New("rand", n)
		for g := 0; g < 30; g++ {
			if r.Float64() < 0.5 {
				c.Append(circuit.U3, []int{r.Intn(n)}, r.Float64()*math.Pi, r.Float64(), r.Float64())
			} else {
				a := r.Intn(n)
				b := r.Intn(n)
				for b == a {
					b = r.Intn(n)
				}
				c.Append(kinds2q[r.Intn(len(kinds2q))], []int{a, b})
			}
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Fatalf("iter %d: norm %v", iter, s.Norm())
		}
	}
}

func TestFidelityUpToPhase(t *testing.T) {
	a := NewState(2)
	b := NewState(2)
	if f := FidelityUpToPhase(a, b); math.Abs(f-1) > 1e-12 {
		t.Fatalf("identical states fidelity %v", f)
	}
	// global phase
	for i := range b.Amp {
		b.Amp[i] *= complex(math.Cos(1.2), math.Sin(1.2))
	}
	if f := FidelityUpToPhase(a, b); math.Abs(f-1) > 1e-12 {
		t.Fatalf("phase-rotated fidelity %v", f)
	}
	// orthogonal
	c := NewState(2)
	c.Amp[0], c.Amp[1] = 0, 1
	if f := FidelityUpToPhase(a, c); f > 1e-12 {
		t.Fatalf("orthogonal fidelity %v", f)
	}
	if FidelityUpToPhase(NewState(1), NewState(2)) != 0 {
		t.Fatal("size mismatch should give 0")
	}
}

func TestControlledGateMatrixAgreement(t *testing.T) {
	// CRZ via ApplyControlled1Q must equal decomposition rz-cx-rz-cx.
	th := 1.1
	a := circuit.New("a", 2)
	a.Append(circuit.H, []int{0})
	a.Append(circuit.H, []int{1})
	a.Append(circuit.CRZ, []int{0, 1}, th)

	b := circuit.New("b", 2)
	b.Append(circuit.H, []int{0})
	b.Append(circuit.H, []int{1})
	b.Append(circuit.RZ, []int{1}, th/2)
	b.Append(circuit.CX, []int{0, 1})
	b.Append(circuit.RZ, []int{1}, -th/2)
	b.Append(circuit.CX, []int{0, 1})

	sa, _ := Run(a)
	sb, _ := Run(b)
	if f := FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-9 {
		t.Fatalf("CRZ decomposition mismatch: %v", f)
	}
}

func TestApply1QMatchesMatrix(t *testing.T) {
	m := linalg.U3(0.4, 1.2, -0.7)
	s := NewState(1)
	s.Apply1Q(m, 0)
	if d := math.Abs(real(s.Amp[0])-real(m.A)) + math.Abs(real(s.Amp[1])-real(m.C)); d > 1e-12 {
		t.Fatalf("Apply1Q column mismatch: %v vs (%v,%v)", s.Amp, m.A, m.C)
	}
}
