package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestDoCtxOriginatorCancelDoesNotPoisonWaiter pins the refcounted flight
// contract: when the request that started a computation cancels while a
// second request is waiting on the same key, the computation keeps running
// (its context stays live) and the waiter gets the result.
func TestDoCtxOriginatorCancelDoesNotPoisonWaiter(t *testing.T) {
	tc := NewTiered(0)
	ctxA, cancelA := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	var valA, valB any
	var errA, errB error

	wg.Add(1)
	go func() {
		defer wg.Done()
		valA, errA = tc.DoCtx(ctxA, "k", nil, func(ctx context.Context) (any, error) {
			close(started)
			<-release
			// The originator has cancelled by now, but the waiter keeps the
			// flight alive: the compute context must not be cancelled.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return 42, nil
		})
	}()

	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		valB, errB = tc.DoCtx(context.Background(), "k", nil, func(context.Context) (any, error) {
			t.Error("waiter recomputed instead of joining the flight")
			return nil, nil
		})
	}()

	// Give the waiter time to join the in-flight computation, then cancel
	// the originator and let the compute finish.
	for tc.Stats().MemHits == 0 {
		runtime.Gosched()
	}
	cancelA()
	close(release)
	wg.Wait()

	if errA != nil || valA != 42 {
		t.Errorf("originator got (%v, %v), want (42, nil)", valA, errA)
	}
	if errB != nil || valB != 42 {
		t.Errorf("waiter got (%v, %v), want (42, nil)", valB, errB)
	}
}

// TestDoCtxAllCallersCancelStopsCompute pins the other half: when every
// interested caller has cancelled, the compute context fires and the
// cancellation is not memoized.
func TestDoCtxAllCallersCancelStopsCompute(t *testing.T) {
	tc := NewTiered(0)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})

	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = tc.DoCtx(ctx, "k", nil, func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done() // must fire once the sole caller cancels
			return nil, ctx.Err()
		})
	}()
	<-started
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The cancellation must not be memoized: a fresh call recomputes.
	v, err := tc.DoCtx(context.Background(), "k", nil, func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" {
		t.Fatalf("retry got (%v, %v), want (fresh, nil)", v, err)
	}
}

// TestDoCtxWaiterCancelReturnsOwnError pins that a waiter abandoning a
// shared computation gets its own context error immediately while the
// originator still completes.
func TestDoCtxWaiterCancelReturnsOwnError(t *testing.T) {
	tc := NewTiered(0)
	started := make(chan struct{})
	release := make(chan struct{})

	done := make(chan struct{})
	var valA any
	var errA error
	go func() {
		defer close(done)
		valA, errA = tc.DoCtx(context.Background(), "k", nil, func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
	}()
	<-started

	ctxB, cancelB := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := tc.DoCtx(ctxB, "k", nil, func(context.Context) (any, error) {
			t.Error("waiter recomputed instead of joining the flight")
			return nil, nil
		})
		waiterDone <- err
	}()
	for tc.Stats().MemHits == 0 {
		runtime.Gosched()
	}
	cancelB()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	close(release)
	<-done
	if errA != nil || valA != "slow" {
		t.Fatalf("originator got (%v, %v), want (slow, nil)", valA, errA)
	}
}
