// Package graphalgo implements the graph algorithms the compiler stack needs:
// Misra–Gries edge coloring (used by the Enola baseline to schedule entangling
// gates into a near-optimal number of Rydberg stages), a greedy fallback
// coloring, and greedy maximal independent sets (used to group compatible
// qubit movements into rearrangement jobs, paper §VI).
package graphalgo

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// MisraGries edge-colors an undirected simple graph with at most Δ+1 colors
// (Vizing's bound), where Δ is the maximum degree. It returns one color
// (0-based) per edge, in the order the edges were given. Self-loops and
// duplicate edges are not supported and yield unspecified colorings.
func MisraGries(n int, edges []Edge) []int {
	if len(edges) == 0 {
		return nil
	}
	// Degree and Δ.
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	numColors := maxDeg + 1

	// colorAt[v][c] = index of the edge at v colored c, or -1.
	colorAt := make([][]int, n)
	for v := range colorAt {
		colorAt[v] = make([]int, numColors)
		for c := range colorAt[v] {
			colorAt[v][c] = -1
		}
	}
	color := make([]int, len(edges))
	for i := range color {
		color[i] = -1
	}
	// incident[v] = edges touching v (indices).
	incident := make([][]int, n)
	for i, e := range edges {
		incident[e.U] = append(incident[e.U], i)
		incident[e.V] = append(incident[e.V], i)
	}

	other := func(ei, v int) int {
		if edges[ei].U == v {
			return edges[ei].V
		}
		return edges[ei].U
	}
	freeColor := func(v int) int {
		for c := 0; c < numColors; c++ {
			if colorAt[v][c] == -1 {
				return c
			}
		}
		return -1 // cannot happen: deg(v) ≤ Δ < numColors
	}
	isFree := func(v, c int) bool { return colorAt[v][c] == -1 }

	setColor := func(ei, c int) {
		e := edges[ei]
		if old := color[ei]; old != -1 {
			// During fan rotation another edge may already have taken over
			// this color slot; only clear entries that still point here.
			if colorAt[e.U][old] == ei {
				colorAt[e.U][old] = -1
			}
			if colorAt[e.V][old] == ei {
				colorAt[e.V][old] = -1
			}
		}
		color[ei] = c
		colorAt[e.U][c] = ei
		colorAt[e.V][c] = ei
	}

	for xi, e := range edges {
		u := e.U
		// Build a maximal fan of u starting at edge xi: a sequence of distinct
		// neighbors f0..fk such that color(u, f_{i+1}) is free on f_i.
		fanEdges := []int{xi}
		fanVerts := []int{e.V}
		inFan := map[int]bool{e.V: true}
		for {
			last := fanVerts[len(fanVerts)-1]
			extended := false
			for _, ei2 := range incident[u] {
				c2 := color[ei2]
				if c2 == -1 {
					continue
				}
				w := other(ei2, u)
				if inFan[w] {
					continue
				}
				if isFree(last, c2) {
					fanEdges = append(fanEdges, ei2)
					fanVerts = append(fanVerts, w)
					inFan[w] = true
					extended = true
					break
				}
			}
			if !extended {
				break
			}
		}

		cFreeU := freeColor(u)
		last := fanVerts[len(fanVerts)-1]
		dFree := freeColor(last)

		// Invert the cd_u path: the maximal path starting at u that
		// alternates colors d and c. Collect the path first, then flip —
		// flipping while walking would revisit just-flipped edges.
		if dFree != cFreeU && !isFree(u, dFree) {
			var path []int
			v := u
			curColor := dFree
			for {
				ei2 := colorAt[v][curColor]
				if ei2 == -1 {
					break
				}
				path = append(path, ei2)
				v = other(ei2, v)
				if curColor == dFree {
					curColor = cFreeU
				} else {
					curColor = dFree
				}
			}
			for _, ei2 := range path {
				if color[ei2] == dFree {
					setColor(ei2, cFreeU)
				} else {
					setColor(ei2, dFree)
				}
			}
		}

		// After inversion d is free on u. Take the first fan vertex w with
		// d free whose prefix is still a fan under the inverted colors (the
		// inversion may have recolored fan edges), rotate the fan up to w,
		// and color (u,w) with d.
		isFanPrefix := func(k int) bool {
			for i := 1; i <= k; i++ {
				col := color[fanEdges[i]]
				if col == -1 || !isFree(fanVerts[i-1], col) {
					return false
				}
			}
			return true
		}
		wIdx := -1
		for i := 0; i < len(fanVerts); i++ {
			if isFree(fanVerts[i], dFree) && isFanPrefix(i) {
				wIdx = i
				break
			}
		}
		if wIdx == -1 {
			// Cannot happen per the MG lemma; guard with a fresh color
			// search to preserve validity regardless.
			for c := 0; c < numColors; c++ {
				if isFree(u, c) && isFree(fanVerts[0], c) {
					setColor(fanEdges[0], c)
					break
				}
			}
			continue
		}
		// Rotate: edge i gets the color of edge i+1.
		for i := 0; i < wIdx; i++ {
			setColor(fanEdges[i], color[fanEdges[i+1]])
		}
		setColor(fanEdges[wIdx], dFree)
	}
	return color
}

// GreedyEdgeColoring colors edges greedily in the given order with the lowest
// color not used at either endpoint. It uses at most 2Δ−1 colors.
func GreedyEdgeColoring(n int, edges []Edge) []int {
	used := make([]map[int]bool, n)
	for v := range used {
		used[v] = make(map[int]bool)
	}
	colors := make([]int, len(edges))
	for i, e := range edges {
		c := 0
		for used[e.U][c] || used[e.V][c] {
			c++
		}
		colors[i] = c
		used[e.U][c] = true
		used[e.V][c] = true
	}
	return colors
}

// NumColors returns 1 + max(colors), or 0 for an empty slice.
func NumColors(colors []int) int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// ValidEdgeColoring reports whether no two edges sharing a vertex have the
// same color.
func ValidEdgeColoring(n int, edges []Edge, colors []int) bool {
	if len(colors) != len(edges) {
		return false
	}
	seen := make(map[[2]int]bool) // (vertex, color)
	for i, e := range edges {
		c := colors[i]
		if c < 0 {
			return false
		}
		ku, kv := [2]int{e.U, c}, [2]int{e.V, c}
		if seen[ku] || seen[kv] {
			return false
		}
		seen[ku] = true
		seen[kv] = true
	}
	return true
}
