package zair

import (
	"fmt"
	"math"
	"sort"
)

// Verifier replays a ZAIR program against an architecture-provided position
// resolver and checks the physical invariants the hardware imposes:
//
//   - the init instruction places each qubit in a distinct trap;
//   - every rearrangement job picks qubits up from where they actually are
//     and drops them into empty traps;
//   - within one machine-level Move, AOD rows and columns never cross and
//     coincident tones stay coincident (the §VI compatibility constraints);
//   - jobs on the same AOD never overlap in time, and jobs moving the same
//     qubit respect qubit dependencies (Fig. 7b);
//   - trap dependencies hold: a job dropping into a trap begins its drop
//     only after the job vacating that trap has picked up (Fig. 7a).
//
// Verify is used by the compiler's tests as an end-to-end safety net and is
// exported for downstream users who generate or transform ZAIR programs.
type Verifier struct {
	Resolve PosResolver
	// Tol is the coordinate comparison tolerance in µm (default 1e-6).
	Tol float64
}

// Verify checks the program and returns the first violation found.
func (v *Verifier) Verify(p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	tol := v.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	pos := make(map[int]QLoc, p.NumQubits) // qubit → trap
	occ := map[[3]int]int{}                // (A,R,C) → qubit
	key := func(l QLoc) [3]int { return [3]int{l.A, l.R, l.C} }

	init := p.Instructions[0].(Init)
	for _, l := range init.Locs {
		if prev, taken := occ[key(l)]; taken {
			return fmt.Errorf("zair: init places qubits %d and %d in the same trap %v", prev, l.Q, key(l))
		}
		occ[key(l)] = l.Q
		pos[l.Q] = l
	}

	type window struct{ begin, end float64 }
	aodBusy := map[int][]window{}   // AOD → job windows
	qubitBusy := map[int][]window{} // qubit → movement windows
	// For trap dependencies we track, per trap, the pickup time of the job
	// that vacated it and the drop time of the job that filled it.
	for idx, inst := range p.Instructions[1:] {
		job, ok := inst.(RearrangeJob)
		if !ok {
			continue
		}
		where := fmt.Sprintf("instruction %d (rearrangeJob on AOD %d)", idx+1, job.AODID)

		// AOD exclusivity: jobs on one AOD must not overlap.
		for _, w := range aodBusy[job.AODID] {
			if job.BeginTime < w.end-1e-9 && w.begin < job.EndTime-1e-9 {
				return fmt.Errorf("zair: %s overlaps another job on the same AOD [%.2f,%.2f] vs [%.2f,%.2f]",
					where, job.BeginTime, job.EndTime, w.begin, w.end)
			}
		}
		aodBusy[job.AODID] = append(aodBusy[job.AODID], window{job.BeginTime, job.EndTime})

		// Qubit dependencies: no overlapping movements of the same qubit.
		for _, q := range job.Qubits() {
			for _, w := range qubitBusy[q] {
				if job.BeginTime < w.end-1e-9 && w.begin < job.EndTime-1e-9 {
					return fmt.Errorf("zair: %s moves qubit %d while another job holds it", where, q)
				}
			}
			qubitBusy[q] = append(qubitBusy[q], window{job.BeginTime, job.EndTime})
		}

		// Pickup consistency and trap updates.
		for r := range job.BeginLocs {
			for k := range job.BeginLocs[r] {
				b := job.BeginLocs[r][k]
				cur, known := pos[b.Q]
				if !known {
					return fmt.Errorf("zair: %s picks up unknown qubit %d", where, b.Q)
				}
				if cur != b {
					return fmt.Errorf("zair: %s picks qubit %d from %v but it is at %v", where, b.Q, b, cur)
				}
				delete(occ, key(b))
			}
		}
		for r := range job.EndLocs {
			for k := range job.EndLocs[r] {
				e := job.EndLocs[r][k]
				if prev, taken := occ[key(e)]; taken {
					return fmt.Errorf("zair: %s drops qubit %d into trap %v occupied by qubit %d",
						where, e.Q, key(e), prev)
				}
				occ[key(e)] = e.Q
				pos[e.Q] = e
			}
		}

		// Machine-level move instructions: tones must not cross.
		for mi, m := range job.Insts {
			mv, ok := m.(Move)
			if !ok {
				continue
			}
			if err := checkToneOrder(mv.RowYBegin, mv.RowYEnd, tol); err != nil {
				return fmt.Errorf("zair: %s machine inst %d rows: %w", where, mi, err)
			}
			if err := checkToneOrder(mv.ColXBegin, mv.ColXEnd, tol); err != nil {
				return fmt.Errorf("zair: %s machine inst %d cols: %w", where, mi, err)
			}
		}

		// Physical coordinates must resolve if a resolver is provided.
		if v.Resolve != nil {
			for r := range job.BeginLocs {
				for k := range job.BeginLocs[r] {
					b, e := job.BeginLocs[r][k], job.EndLocs[r][k]
					if _, err := v.Resolve(b.A, b.R, b.C); err != nil {
						return fmt.Errorf("zair: %s: begin loc %v: %w", where, b, err)
					}
					if _, err := v.Resolve(e.A, e.R, e.C); err != nil {
						return fmt.Errorf("zair: %s: end loc %v: %w", where, e, err)
					}
				}
			}
		}
	}
	return nil
}

// checkToneOrder verifies that tone coordinates preserve their relative
// order from begin to end (AOD rows/columns cannot cross) and coincident
// tones stay coincident.
func checkToneOrder(begin, end []float64, tol float64) error {
	if len(begin) != len(end) {
		return fmt.Errorf("begin/end tone count mismatch (%d vs %d)", len(begin), len(end))
	}
	idx := make([]int, len(begin))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return begin[idx[a]] < begin[idx[b]] })
	for k := 0; k+1 < len(idx); k++ {
		i, j := idx[k], idx[k+1]
		db := begin[j] - begin[i]
		de := end[j] - end[i]
		switch {
		case math.Abs(db) <= tol && math.Abs(de) > tol:
			return fmt.Errorf("coincident tones diverge (%g → %g)", db, de)
		case db > tol && de < -tol:
			return fmt.Errorf("tones cross (begin Δ=%g, end Δ=%g)", db, de)
		}
	}
	return nil
}

// FinalPositions replays the program and returns every qubit's final trap.
// It assumes the program verifies.
func FinalPositions(p *Program) map[int]QLoc {
	pos := map[int]QLoc{}
	if len(p.Instructions) == 0 {
		return pos
	}
	if init, ok := p.Instructions[0].(Init); ok {
		for _, l := range init.Locs {
			pos[l.Q] = l
		}
	}
	for _, inst := range p.Instructions[1:] {
		if job, ok := inst.(RearrangeJob); ok {
			for r := range job.EndLocs {
				for _, e := range job.EndLocs[r] {
					pos[e.Q] = e
				}
			}
		}
	}
	return pos
}
