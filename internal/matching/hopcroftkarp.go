// Package matching implements the two bipartite-matching algorithms the paper
// relies on (and which its Python artifact delegated to SciPy):
//
//   - Hopcroft–Karp maximum-cardinality bipartite matching [Hopcroft & Karp,
//     SIAM J. Comput. 1973], used by ZAC's qubit-reuse identification
//     (paper §V-B1), with complexity O(|E|·√|V|).
//   - Jonker–Volgenant minimum-weight full matching (shortest augmenting path
//     with dual potentials) [Jonker & Volgenant 1988], used by gate placement
//     (§V-B2) and non-reuse qubit placement (§V-B3), with complexity O(n³).
package matching

// HopcroftKarp computes a maximum-cardinality matching in a bipartite graph.
// adj[u] lists the right-side vertices adjacent to left vertex u; nRight is
// the number of right-side vertices. It returns matchL (matchL[u] = matched
// right vertex or -1) and the matching size.
func HopcroftKarp(adj [][]int, nRight int) (matchL []int, size int) {
	nLeft := len(adj)
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, size
}
