// Command zac is the ZAC compiler CLI: it reads an OpenQASM 2.0 circuit (or
// a named built-in benchmark), compiles it for a zoned neutral-atom
// architecture, and writes the resulting ZAIR program as JSON together with
// a fidelity report.
//
//	zac -circuit ghz_n23                       # built-in benchmark
//	zac -qasm program.qasm -arch arch.json     # external inputs
//	zac -circuit qft_n18 -setting dynPlace     # ablation setting
//	zac -circuit bv_n14 -out bv.zair.json      # dump ZAIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/qasm"
	"zac/internal/trace"
)

func main() {
	qasmPath := flag.String("qasm", "", "OpenQASM 2.0 input file")
	benchName := flag.String("circuit", "", "built-in benchmark name (e.g. ghz_n23; see -list)")
	list := flag.Bool("list", false, "list built-in benchmarks and exit")
	archPath := flag.String("arch", "", "architecture JSON (default: the paper's reference architecture)")
	setting := flag.String("setting", core.SettingSADynPlaceReuse,
		"compiler setting: Vanilla | dynPlace | dynPlace+reuse | SA+dynPlace+reuse")
	aods := flag.Int("aods", 0, "override the number of AODs (0 = architecture default)")
	out := flag.String("out", "", "write the ZAIR program JSON to this file")
	showTrace := flag.Bool("trace", false, "print the program timeline and AOD Gantt chart")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-16s %3d qubits (paper: %d 2Q, %d 1Q gates)\n", b.Name, b.NumQubits, b.Paper2Q, b.Paper1Q)
		}
		return
	}

	c, err := loadCircuit(*qasmPath, *benchName)
	if err != nil {
		fatal(err)
	}
	a := arch.Reference()
	if *archPath != "" {
		data, err := os.ReadFile(*archPath)
		if err != nil {
			fatal(err)
		}
		a = &arch.Architecture{}
		if err := json.Unmarshal(data, a); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *archPath, err))
		}
	}
	if *aods > 0 {
		a = arch.WithAODs(a, *aods)
	}

	res, err := core.Compile(c, a, core.OptionsFor(*setting))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("circuit:          %s (%d qubits)\n", c.Name, c.NumQubits)
	one, two := res.Staged.GateCounts()
	fmt.Printf("gates:            %d 2Q, %d 1Q after preprocessing\n", two, one)
	fmt.Printf("rydberg stages:   %d\n", res.NumRydbergStages)
	fmt.Printf("reused gates:     %d\n", res.ReusedGates)
	fmt.Printf("qubit movements:  %d (%d rearrangement jobs)\n", res.TotalMoves, res.NumJobs)
	fmt.Printf("duration:         %.3f ms\n", res.Duration/1000)
	fmt.Printf("compile time:     %s\n", res.CompileTime)
	b := res.Breakdown
	fmt.Printf("fidelity:         total %.4f\n", b.Total)
	fmt.Printf("  1Q %.4f | 2Q %.4f | excitation %.4f | transfer %.4f | decoherence %.4f\n",
		b.OneQ, b.TwoQ, b.Excite, b.Transfer, b.Decohere)

	if *showTrace {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Program, 100))
	}

	if *out != "" {
		data, err := json.MarshalIndent(res.Program, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("zair program:     %s (%d instructions)\n", *out, res.Program.NumZAIRInstructions())
	}
	fmt.Println("[INFO] Finish Compilation")
}

func loadCircuit(qasmPath, benchName string) (*circuit.Circuit, error) {
	switch {
	case qasmPath != "" && benchName != "":
		return nil, fmt.Errorf("use either -qasm or -circuit, not both")
	case qasmPath != "":
		data, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		c, err := qasm.Parse(string(data))
		if err != nil {
			return nil, err
		}
		c.Name = qasmPath
		return c, nil
	case benchName != "":
		b, err := bench.ByName(benchName)
		if err != nil {
			return nil, err
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("provide -qasm FILE or -circuit NAME (see -list)")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zac: %v\n", err)
	os.Exit(1)
}
