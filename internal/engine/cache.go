package engine

import (
	"sync"
	"sync/atomic"
)

// Cache is a keyed single-flight memo: concurrent Do calls with the same key
// block until the first caller's compute finishes, then share its result.
// Values (and errors — compilation here is deterministic, so a failure
// recomputes to the same failure) stay cached until Reset.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

// Do returns the cached value for key, computing it with compute on the
// first call. Every call after the first — including calls that arrive while
// the compute is still in flight — counts as a hit.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.val, e.err
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	e.val, e.err = compute()
	close(e.ready)
	return e.val, e.err
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset drops every entry and zeroes the counters. Callers must not race a
// Reset with in-flight Do calls for keys they care about.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*cacheEntry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Get is the typed wrapper over Do.
func Get[T any](c *Cache, key string, compute func() (T, error)) (T, error) {
	v, err := c.Do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
