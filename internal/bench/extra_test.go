package bench

import (
	"testing"

	"zac/internal/resynth"
)

func TestExtraAllValid(t *testing.T) {
	for _, b := range ExtraAll() {
		c := b.Build()
		if c.NumQubits != b.NumQubits {
			t.Errorf("%s: %d qubits, declared %d", b.Name, c.NumQubits, b.NumQubits)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		staged, err := resynth.Preprocess(c)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := staged.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if _, two := staged.GateCounts(); two == 0 {
			t.Errorf("%s: no 2Q gates", b.Name)
		}
	}
}

func TestRandom3RegularIsRegular(t *testing.T) {
	c := QAOA(20, 1, 5)
	deg := map[int]int{}
	for _, g := range c.Gates {
		if g.Kind.NumQubits() == 2 {
			deg[g.Qubits[0]]++
			deg[g.Qubits[1]]++
		}
	}
	for q := 0; q < 20; q++ {
		if deg[q] != 3 {
			t.Errorf("qubit %d has degree %d, want 3", q, deg[q])
		}
	}
}

func TestQAOADeterministic(t *testing.T) {
	a := QAOA(16, 2, 42)
	b := QAOA(16, 2, 42)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("QAOA not deterministic")
	}
	for i := range a.Gates {
		if a.Gates[i].Kind != b.Gates[i].Kind || a.Gates[i].Qubits[0] != b.Gates[i].Qubits[0] {
			t.Fatal("QAOA gate mismatch under same seed")
		}
	}
}

func TestQAOAOddNRoundsUp(t *testing.T) {
	c := QAOA(15, 1, 3)
	if c.NumQubits != 16 {
		t.Errorf("odd n should round up to %d, got %d", 16, c.NumQubits)
	}
}

func TestVQEBrickParallelism(t *testing.T) {
	staged, err := resynth.Preprocess(VQE(24, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	// 6 brick layers → ~6 Rydberg stages; must stay well below gate count.
	_, two := staged.GateCounts()
	if staged.NumRydbergStages() >= two {
		t.Errorf("VQE should be highly parallel: %d stages for %d gates",
			staged.NumRydbergStages(), two)
	}
}

func TestIsing2DBondCount(t *testing.T) {
	c := Ising2D(4, 5)
	two := 0
	for _, g := range c.Gates {
		if g.Kind.NumQubits() == 2 {
			two++
		}
	}
	// 4*(5-1) horizontal + (4-1)*5 vertical = 31 bonds.
	if two != 31 {
		t.Errorf("bonds = %d, want 31", two)
	}
}

func TestRandomCliffordGateCount(t *testing.T) {
	c := RandomClifford(10, 150, 9)
	if len(c.Gates) != 150 {
		t.Errorf("gates = %d", len(c.Gates))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
