package difftest

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/qasm"
)

// reproDir holds the checked-in regression corpus: minimized repros of
// divergences the seeded-violation stubs once produced. Each file replays
// through the real registry and must be clean — the corpus pins the
// shrinker's output shape and guards the real compilers against ever
// reintroducing a divergence on these exact inputs.
const reproDir = "testdata/repros"

// TestRegenerateReproCorpus rebuilds testdata/repros from the seeded
// violation stubs. Gated behind an env var because it rewrites checked-in
// files; run `DIFFTEST_REGEN_CORPUS=1 go test -run TestRegenerateReproCorpus
// ./internal/difftest` after changing the shrinker or the stub recipes.
func TestRegenerateReproCorpus(t *testing.T) {
	if os.Getenv("DIFFTEST_REGEN_CORPUS") == "" {
		t.Skip("set DIFFTEST_REGEN_CORPUS=1 to regenerate testdata/repros")
	}
	if err := os.RemoveAll(reproDir); err != nil {
		t.Fatal(err)
	}
	// Every planted bug is input-dependent (it only fires above a
	// structural threshold), so the shrinker must keep enough circuit to
	// preserve the trigger — the checked-in repros stay non-trivial.
	recipes := []struct {
		comps []compiler.Compiler
		spec  string
		label string
	}{
		{[]compiler.Compiler{&stubCompiler{
			inner: mustGet(t, "zac"), name: "stub-acct",
			corrupt: func(res *core.Result, _ int) {
				if res.TotalMoves >= 8 {
					res.TotalMoves++
				}
			},
		}}, "shuffle:n=10,depth=4,seed=7", "seeded-acct"},
		{[]compiler.Compiler{&stubCompiler{
			inner: mustGet(t, "zac"), name: "stub-det",
			corrupt: func(res *core.Result, call int) {
				if call%2 == 0 && res.NumJobs >= 3 {
					res.Breakdown.Total *= 0.999
				}
			},
		}}, "rb:n=8,depth=6,seed=7", "seeded-det"},
		{[]compiler.Compiler{mustGet(t, "zac-vanilla"), &stubCompiler{
			inner: mustGet(t, "zac"), name: "zac",
			corrupt: func(res *core.Result, _ int) {
				if res.TotalMoves >= 4 {
					res.Breakdown.Total *= 0.5
				}
			},
		}}, "qaoa:n=10,p=2,seed=7", "seeded-fid"},
		{[]compiler.Compiler{&stubCompiler{
			inner: mustGet(t, "zac"), name: "stub-sane",
			corrupt: func(res *core.Result, _ int) {
				if res.NumRydbergStages >= 2 {
					res.Breakdown.Total = 1.5
				}
			},
		}}, "ising:n=10,layers=2", "seeded-sane"},
	}
	for _, r := range recipes {
		o := NewWith(r.comps, Options{CorpusDir: reproDir})
		divs, err := o.Check(context.Background(), genCircuit(t, r.spec), r.label)
		if err != nil {
			t.Fatal(err)
		}
		if len(divs) == 0 {
			t.Fatalf("%s: recipe produced no divergence", r.label)
		}
	}
	paths, err := ReadCorpus(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %d repros", len(paths))
}

// TestReproCorpus replays every checked-in repro through the full real
// registry oracle: the real compilers must be clean on inputs that once
// diverged under seeded bugs, and each file must stay a small, parseable
// repro.
func TestReproCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the corpus through the whole registry; skipped in -short")
	}
	paths, err := ReadCorpus(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no repros in %s (run TestRegenerateReproCorpus with DIFFTEST_REGEN_CORPUS=1)", reproDir)
	}
	o, err := New(Options{NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			if !strings.Contains(src, "// class:") {
				t.Errorf("%s missing the class header comment", p)
			}
			c, err := qasm.Parse(src)
			if err != nil {
				t.Fatalf("repro does not parse: %v", err)
			}
			if len(c.Gates) > 20 {
				t.Errorf("repro has %d gates; the shrinker should keep these ≤ 20", len(c.Gates))
			}
			divs, err := o.Check(context.Background(), c, filepath.Base(p))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range divs {
				t.Errorf("real registry diverges on checked-in repro: %s", d)
			}
		})
	}
}

// FuzzDiff is the native fuzz harness over the differential oracle: any
// QASM input the mutator invents must produce zero divergences across the
// zac ablation family. Seeded from the repro corpus plus a pinned spec.
// Run with `go test -fuzz=FuzzDiff ./internal/difftest`.
func FuzzDiff(f *testing.F) {
	paths, err := ReadCorpus(reproDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(qasm.Write(genCircuit(f, "rb:n=6,depth=4,seed=7")))
	o, err := New(Options{
		Compilers: []string{"zac", "zac-vanilla", "zac-dynplace", "zac-dynplace-reuse", "zac-advreuse"},
		NoShrink:  true,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := qasm.Parse(src)
		if err != nil {
			t.Skip()
		}
		if c.NumQubits < 1 || c.NumQubits > 16 || len(c.Gates) == 0 || len(c.Gates) > 200 {
			t.Skip() // keep per-exec cost bounded
		}
		divs, err := o.Check(context.Background(), c, "fuzz-input")
		if err != nil {
			t.Skip()
		}
		for _, d := range divs {
			t.Errorf("divergence: %s", d)
		}
	})
}
