// Package serve implements the zac-serve HTTP API: a long-running
// compilation service that accepts OpenQASM programs (or built-in benchmark
// names) plus JSON architecture specs, compiles them through the ZAC
// pipeline with bounded concurrency, and returns the ZAIR program plus the
// paper's fidelity breakdown as JSON. Results flow through the engine's
// tiered cache (LRU memory front, optional content-addressed disk back
// tier), so identical requests are served from cache — across restarts when
// a cache directory is attached — and the emitted ZAIR is byte-identical to
// the `zac -out` CLI encoding.
//
// Endpoints:
//
//	POST /v1/compile     single or batch compilation (async via "async":true)
//	GET  /v1/jobs/{id}   poll an async job
//	GET  /healthz        liveness probe
//	GET  /metrics        cache hit rates, in-flight compiles, per-compiler latency
package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/qasm"
)

// Options configures a Server. The zero value is serviceable: all-CPU
// compile concurrency, an unbounded in-memory cache, no disk tier.
type Options struct {
	// Parallel bounds the number of concurrently executing compilations
	// (not HTTP requests); ≤ 0 selects runtime.NumCPU().
	Parallel int
	// MemEntries caps the cache's LRU memory front (≤ 0 = unbounded).
	MemEntries int
	// Disk, when non-nil, attaches a persistent cache tier shared with
	// zac-bench and zairsim.
	Disk *engine.DiskCache
	// MaxBatch caps the requests accepted in one batch (default 64).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 8 MiB).
	MaxBodyBytes int64
}

// Server is the zac-serve request handler: a tiered compilation cache, a
// compile-concurrency semaphore, the async job table, and service counters.
type Server struct {
	opts  Options
	cache *engine.Tiered
	sem   chan struct{}

	requests atomic.Uint64
	compiles atomic.Uint64
	inflight atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for retention eviction
	jobSeq   int
	latency  map[string]*latencyAgg
}

// latencyAgg accumulates fresh-compilation wall-clock latency per setting.
type latencyAgg struct {
	count    uint64
	totalMS  float64
	maxMS    float64
}

// New returns a Server ready to have Handler mounted.
func New(opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	cache := engine.NewTiered(opts.MemEntries)
	if opts.Disk != nil {
		cache.SetDisk(opts.Disk)
	}
	return &Server{
		opts:    opts,
		cache:   cache,
		sem:     make(chan struct{}, engine.Workers(opts.Parallel)),
		jobs:    map[string]*job{},
		latency: map[string]*latencyAgg{},
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleCompile serves POST /v1/compile: a bare CompileRequest or a batch,
// synchronous by default, async as a job with "async":true. Query parameter
// zair=0 omits the ZAIR program from responses; format=zair (single
// synchronous requests only) returns the bare ZAIR JSON, byte-identical to
// `zac -out`.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	single := len(req.Requests) == 0
	batch := req.Requests
	if single {
		batch = []CompileRequest{req.CompileRequest}
	}
	if len(batch) > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds the limit of %d", len(batch), s.opts.MaxBatch))
		return
	}
	includeZAIR := r.URL.Query().Get("zair") != "0"
	rawZAIR := r.URL.Query().Get("format") == "zair"
	if rawZAIR && (!single || req.Async) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("format=zair requires a single synchronous request"))
		return
	}

	if req.Async {
		j := s.newJob(len(batch))
		go s.runJob(j, batch, includeZAIR)
		writeJSON(w, http.StatusAccepted, j.response())
		return
	}

	results := s.compileBatch(batch, includeZAIR || rawZAIR)
	if !single {
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}
	item := results[0]
	if item.Error != "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%s", item.Error))
		return
	}
	if rawZAIR {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(item.Result.ZAIR)
		return
	}
	writeJSON(w, http.StatusOK, item.Result)
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

// compileBatch fans the batch out over the worker pool, one BatchItem per
// request in request order. Errors stay per-item; the batch itself never
// fails.
func (s *Server) compileBatch(batch []CompileRequest, includeZAIR bool) []BatchItem {
	items := make([]BatchItem, len(batch))
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.compileOne(batch[i], includeZAIR)
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Result: res}
		}(i)
	}
	wg.Wait()
	return items
}

// compileOne resolves one request and routes it through the cache
// hierarchy; only a cache miss occupies a slot of the compile semaphore.
func (s *Server) compileOne(req CompileRequest, includeZAIR bool) (*CompileResponse, error) {
	c, circKey, err := resolveCircuit(req)
	if err != nil {
		return nil, err
	}
	a, err := resolveArch(req)
	if err != nil {
		return nil, err
	}
	setting, err := resolveSetting(req.Setting)
	if err != nil {
		return nil, err
	}

	key := "serve|" + circKey + "|arch=" + a.Fingerprint() + "|opt=" + setting
	computed := false
	res, err := engine.GetTiered(s.cache, key, core.ResultCodec(), func() (*core.Result, error) {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		computed = true
		t0 := time.Now()
		r, err := core.Compile(c, a, core.OptionsFor(setting))
		if err == nil {
			s.recordLatency(setting, time.Since(t0))
		}
		return r, err
	})
	s.compiles.Add(1)
	if err != nil {
		return nil, err
	}

	out := &CompileResponse{
		Name:          res.Program.Name,
		NumQubits:     res.Program.NumQubits,
		Setting:       setting,
		Fidelity:      res.Breakdown,
		DurationUS:    res.Duration,
		CompileMS:     float64(res.CompileTime) / float64(time.Millisecond),
		RydbergStages: res.NumRydbergStages,
		RearrangeJobs: res.NumJobs,
		ReusedGates:   res.ReusedGates,
		Moves:         res.TotalMoves,
		Cached:        !computed,
	}
	if includeZAIR {
		// The exact encoding the zac CLI writes with -out, so service and
		// CLI output are byte-identical for the same compilation.
		raw, err := json.MarshalIndent(res.Program, "", " ")
		if err != nil {
			return nil, fmt.Errorf("encoding ZAIR: %w", err)
		}
		out.ZAIR = raw
	}
	return out, nil
}

// resolveCircuit loads the request's circuit and returns it with the
// circuit component of the cache key (benchmark name, or content digest for
// inline QASM).
func resolveCircuit(req CompileRequest) (*circuit.Circuit, string, error) {
	switch {
	case req.Circuit != "" && req.QASM != "":
		return nil, "", fmt.Errorf("set either \"circuit\" or \"qasm\", not both")
	case req.Circuit != "":
		b, err := bench.ByName(req.Circuit)
		if err != nil {
			return nil, "", err
		}
		return b.Build(), "circ=" + req.Circuit, nil
	case req.QASM != "":
		c, err := qasm.Parse(req.QASM)
		if err != nil {
			return nil, "", fmt.Errorf("parsing qasm: %w", err)
		}
		name := req.Name
		if name == "" {
			name = "qasm"
		}
		c.Name = name
		return c, fmt.Sprintf("qasm=%x|name=%s", sha256.Sum256([]byte(req.QASM)), name), nil
	default:
		return nil, "", fmt.Errorf("set \"circuit\" (built-in benchmark) or \"qasm\" (inline source)")
	}
}

// resolveArch decodes the request's architecture (default: the reference
// architecture) and applies the AOD override.
func resolveArch(req CompileRequest) (*arch.Architecture, error) {
	a := arch.Reference()
	if len(req.Arch) > 0 {
		a = &arch.Architecture{}
		if err := json.Unmarshal(req.Arch, a); err != nil {
			return nil, fmt.Errorf("parsing arch: %w", err)
		}
	}
	if req.AODs > 0 {
		a = arch.WithAODs(a, req.AODs)
	}
	return a, nil
}

// resolveSetting validates the compiler preset (empty = full ZAC).
func resolveSetting(setting string) (string, error) {
	switch setting {
	case "":
		return core.SettingSADynPlaceReuse, nil
	case core.SettingVanilla, core.SettingDynPlace, core.SettingDynPlaceReuse, core.SettingSADynPlaceReuse:
		return setting, nil
	default:
		return "", fmt.Errorf("unknown setting %q (want Vanilla | dynPlace | dynPlace+reuse | SA+dynPlace+reuse)", setting)
	}
}

// recordLatency folds one fresh compilation into the per-setting aggregate.
func (s *Server) recordLatency(setting string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := s.latency[setting]
	if agg == nil {
		agg = &latencyAgg{}
		s.latency[setting] = agg
	}
	agg.count++
	agg.totalMS += ms
	if ms > agg.maxMS {
		agg.maxMS = ms
	}
}

// CacheStats exposes the cache hierarchy's counters (used by tests and the
// metrics endpoint).
func (s *Server) CacheStats() engine.TieredStats { return s.cache.Stats() }

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError writes err as an ErrorResponse with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
