// Package resynth implements the preprocessing step of the compiler (paper
// §IV, Fig. 4): (1) resynthesis of the input circuit into the
// hardware-supported gate set {CZ, U3}; (2) single-qubit gate optimization by
// exact 2×2-unitary accumulation and ZYZ re-extraction; and (3) ASAP
// scheduling of the result into alternating 1Q and Rydberg stages with each
// qubit in at most one gate per stage.
//
// The paper performs this step with Qiskit at optimization level 3; this
// package is the from-scratch substitute (see DESIGN.md, substitution table).
package resynth

import (
	"fmt"
	"math"

	"zac/internal/circuit"
	"zac/internal/linalg"
)

// Decompose rewrites c using only {CZ, U3} gates. Measure and Barrier gates
// are dropped (the paper's flow compiles unitary circuit bodies; measurement
// happens in the readout zone outside the compiled program).
func Decompose(c *circuit.Circuit) (*circuit.Circuit, error) {
	return DecomposeKeep(c, nil)
}

// DecomposeKeep is Decompose with a set of multi-qubit kinds to keep native
// (currently CCZ, for architectures with three-trap Rydberg sites; CCX maps
// to H-conjugated CCZ).
func DecomposeKeep(c *circuit.Circuit, keep map[circuit.Kind]bool) (*circuit.Circuit, error) {
	out := circuit.New(c.Name, c.NumQubits)
	for i, g := range c.Gates {
		var err error
		switch {
		case keep[g.Kind]:
			out.Gates = append(out.Gates, g)
		case keep[circuit.CCZ] && g.Kind == circuit.CCX:
			// CCX = H(t) · CCZ · H(t)
			h(out, g.Qubits[2])
			out.Append(circuit.CCZ, g.Qubits)
			h(out, g.Qubits[2])
		case keep[circuit.CCZ] && g.Kind == circuit.CSWAP:
			// Fredkin via native CCZ: CX(t2,t1) · H(t2)·CCZ·H(t2) · CX(t2,t1)
			ctrl, t1, t2 := g.Qubits[0], g.Qubits[1], g.Qubits[2]
			cx(out, t2, t1)
			h(out, t2)
			out.Append(circuit.CCZ, []int{ctrl, t1, t2})
			h(out, t2)
			cx(out, t2, t1)
		default:
			err = emit(out, g)
		}
		if err != nil {
			return nil, fmt.Errorf("resynth: gate %d (%s): %w", i, g.Kind, err)
		}
	}
	return out, nil
}

// u3 appends a U3 gate with the given angles.
func u3(out *circuit.Circuit, q int, theta, phi, lambda float64) {
	out.Append(circuit.U3, []int{q}, theta, phi, lambda)
}

// cz appends a CZ gate.
func cz(out *circuit.Circuit, a, b int) { out.Append(circuit.CZ, []int{a, b}) }

// h emits a Hadamard as U3(π/2, 0, π).
func h(out *circuit.Circuit, q int) { u3(out, q, math.Pi/2, 0, math.Pi) }

// cx emits CNOT(control, target) = H(t)·CZ·H(t).
func cx(out *circuit.Circuit, c, t int) {
	h(out, t)
	cz(out, c, t)
	h(out, t)
}

// rz emits RZ(θ) ~ U3(0, 0, θ) (up to global phase).
func rz(out *circuit.Circuit, q int, theta float64) { u3(out, q, 0, 0, theta) }

// ry emits RY(θ) = U3(θ, 0, 0).
func ry(out *circuit.Circuit, q int, theta float64) { u3(out, q, theta, 0, 0) }

func emit(out *circuit.Circuit, g circuit.Gate) error {
	q := g.Qubits
	switch g.Kind {
	case circuit.U3:
		u3(out, q[0], g.Params[0], g.Params[1], g.Params[2])
	case circuit.CZ:
		cz(out, q[0], q[1])
	case circuit.H:
		h(out, q[0])
	case circuit.X:
		u3(out, q[0], math.Pi, 0, math.Pi)
	case circuit.Y:
		u3(out, q[0], math.Pi, math.Pi/2, math.Pi/2)
	case circuit.Z:
		rz(out, q[0], math.Pi)
	case circuit.S:
		rz(out, q[0], math.Pi/2)
	case circuit.Sdg:
		rz(out, q[0], -math.Pi/2)
	case circuit.T:
		rz(out, q[0], math.Pi/4)
	case circuit.Tdg:
		rz(out, q[0], -math.Pi/4)
	case circuit.ID:
		// no-op
	case circuit.RX:
		u3(out, q[0], g.Params[0], -math.Pi/2, math.Pi/2)
	case circuit.RY:
		ry(out, q[0], g.Params[0])
	case circuit.RZ, circuit.U1:
		rz(out, q[0], g.Params[0])
	case circuit.U2:
		u3(out, q[0], math.Pi/2, g.Params[0], g.Params[1])
	case circuit.CX:
		cx(out, q[0], q[1])
	case circuit.CY:
		// CY = Sdg(t) CX S(t)
		rz(out, q[1], -math.Pi/2)
		cx(out, q[0], q[1])
		rz(out, q[1], math.Pi/2)
	case circuit.SWAP:
		cx(out, q[0], q[1])
		cx(out, q[1], q[0])
		cx(out, q[0], q[1])
	case circuit.CP:
		// CP(λ) = P(λ/2)(c) · CX · P(-λ/2)(t) · CX · P(λ/2)(t), with P ≡ RZ
		// up to global phase.
		l := g.Params[0]
		rz(out, q[0], l/2)
		cx(out, q[0], q[1])
		rz(out, q[1], -l/2)
		cx(out, q[0], q[1])
		rz(out, q[1], l/2)
	case circuit.CRZ:
		l := g.Params[0]
		rz(out, q[1], l/2)
		cx(out, q[0], q[1])
		rz(out, q[1], -l/2)
		cx(out, q[0], q[1])
	case circuit.CRY:
		l := g.Params[0]
		ry(out, q[1], l/2)
		cx(out, q[0], q[1])
		ry(out, q[1], -l/2)
		cx(out, q[0], q[1])
	case circuit.CRX:
		l := g.Params[0]
		// CRX(θ) = RZ(π/2)(t) · CRY... use the standard: H-conjugated CRZ.
		h(out, q[1])
		rz(out, q[1], l/2)
		cx(out, q[0], q[1])
		rz(out, q[1], -l/2)
		cx(out, q[0], q[1])
		h(out, q[1])
	case circuit.RZZ:
		l := g.Params[0]
		cx(out, q[0], q[1])
		rz(out, q[1], l)
		cx(out, q[0], q[1])
	case circuit.RXX:
		l := g.Params[0]
		h(out, q[0])
		h(out, q[1])
		cx(out, q[0], q[1])
		rz(out, q[1], l)
		cx(out, q[0], q[1])
		h(out, q[0])
		h(out, q[1])
	case circuit.CCX:
		// Standard 6-CNOT Toffoli decomposition.
		a, b, t := q[0], q[1], q[2]
		h(out, t)
		cx(out, b, t)
		rz(out, t, -math.Pi/4)
		cx(out, a, t)
		rz(out, t, math.Pi/4)
		cx(out, b, t)
		rz(out, t, -math.Pi/4)
		cx(out, a, t)
		rz(out, b, math.Pi/4)
		rz(out, t, math.Pi/4)
		cx(out, a, b)
		rz(out, a, math.Pi/4)
		rz(out, b, -math.Pi/4)
		cx(out, a, b)
		h(out, t)
	case circuit.CCZ:
		// CCZ = H(t) CCX H(t); inline to avoid double H.
		a, b, t := q[0], q[1], q[2]
		cx(out, b, t)
		rz(out, t, -math.Pi/4)
		cx(out, a, t)
		rz(out, t, math.Pi/4)
		cx(out, b, t)
		rz(out, t, -math.Pi/4)
		cx(out, a, t)
		rz(out, b, math.Pi/4)
		rz(out, t, math.Pi/4)
		cx(out, a, b)
		rz(out, a, math.Pi/4)
		rz(out, b, -math.Pi/4)
		cx(out, a, b)
	case circuit.CSWAP:
		// Fredkin: CX(t2,t1) · CCX(c,t1,t2) · CX(t2,t1)
		cGate, t1, t2 := q[0], q[1], q[2]
		cx(out, t2, t1)
		if err := emit(out, circuit.NewGate(circuit.CCX, []int{cGate, t1, t2})); err != nil {
			return err
		}
		cx(out, t2, t1)
	case circuit.Measure, circuit.Barrier:
		// dropped
	default:
		return fmt.Errorf("unsupported gate kind %v", g.Kind)
	}
	return nil
}

// gateMatrix returns the 2×2 unitary of a 1Q gate kind (input or native).
// Returns an error for multi-qubit or non-unitary kinds.
func gateMatrix(g circuit.Gate) (linalg.Mat2, error) {
	switch g.Kind {
	case circuit.U3:
		return linalg.U3(g.Params[0], g.Params[1], g.Params[2]), nil
	case circuit.H:
		return linalg.H(), nil
	case circuit.X:
		return linalg.X(), nil
	case circuit.Y:
		return linalg.Y(), nil
	case circuit.Z:
		return linalg.Z(), nil
	case circuit.S:
		return linalg.S(), nil
	case circuit.Sdg:
		return linalg.Sdg(), nil
	case circuit.T:
		return linalg.T(), nil
	case circuit.Tdg:
		return linalg.Tdg(), nil
	case circuit.RX:
		return linalg.RX(g.Params[0]), nil
	case circuit.RY:
		return linalg.RY(g.Params[0]), nil
	case circuit.RZ:
		return linalg.RZ(g.Params[0]), nil
	case circuit.U1:
		return linalg.Phase(g.Params[0]), nil
	case circuit.U2:
		return linalg.U3(math.Pi/2, g.Params[0], g.Params[1]), nil
	case circuit.ID:
		return linalg.Identity(), nil
	default:
		return linalg.Mat2{}, fmt.Errorf("resynth: %s has no 1Q matrix", g.Kind)
	}
}
