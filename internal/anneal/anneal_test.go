package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is a toy problem: minimize sum (x_i - target_i)^2 by nudging one
// coordinate at a time.
type quadratic struct {
	x, target []float64
}

func (q *quadratic) Cost() float64 {
	s := 0.0
	for i := range q.x {
		d := q.x[i] - q.target[i]
		s += d * d
	}
	return s
}

func (q *quadratic) Propose(r *rand.Rand) func() {
	i := r.Intn(len(q.x))
	old := q.x[i]
	q.x[i] += (r.Float64() - 0.5) * 2
	return func() { q.x[i] = old }
}

func TestRunImproves(t *testing.T) {
	q := &quadratic{x: []float64{10, -7, 3}, target: []float64{0, 0, 0}}
	r := rand.New(rand.NewSource(1))
	res := Run(q, Options{Iterations: 5000}, r)
	if res.BestCost >= res.InitialCost {
		t.Fatalf("no improvement: initial %v best %v", res.InitialCost, res.BestCost)
	}
	if res.BestCost > 5 {
		t.Fatalf("expected near-zero cost, got %v", res.BestCost)
	}
	// State must be left at the best cost found.
	if got := q.Cost(); math.Abs(got-res.BestCost) > 1e-9 {
		t.Fatalf("final state cost %v != best %v", got, res.BestCost)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() float64 {
		q := &quadratic{x: []float64{5, 5}, target: []float64{1, -1}}
		r := rand.New(rand.NewSource(42))
		return Run(q, Options{Iterations: 2000}, r).BestCost
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestRunDefaults(t *testing.T) {
	q := &quadratic{x: []float64{3}, target: []float64{0}}
	r := rand.New(rand.NewSource(2))
	res := Run(q, Options{}, r)
	if res.Iterations != 1000 {
		t.Fatalf("default iterations = %d, want 1000", res.Iterations)
	}
}

func TestRunPlateauStopsEarly(t *testing.T) {
	q := &quadratic{x: []float64{0}, target: []float64{0}} // already optimal
	r := rand.New(rand.NewSource(3))
	res := Run(q, Options{Iterations: 10000, Plateau: 50}, r)
	if res.Iterations >= 10000 {
		t.Fatalf("plateau did not stop early: %d iterations", res.Iterations)
	}
}

func TestRunNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		q := &quadratic{x: []float64{2, -3, 4, 1}, target: []float64{0, 1, 0, -1}}
		init := q.Cost()
		r := rand.New(rand.NewSource(seed))
		res := Run(q, Options{Iterations: 300}, r)
		if res.BestCost > init+1e-12 {
			t.Fatalf("seed %d: best %v worse than initial %v", seed, res.BestCost, init)
		}
		if got := q.Cost(); math.Abs(got-res.BestCost) > 1e-9 {
			t.Fatalf("seed %d: final state %v != best %v", seed, got, res.BestCost)
		}
	}
}

// permutation problem exercises undo-correctness: swap two entries.
type perm struct {
	order []int
	pos   []float64
}

func (p *perm) Cost() float64 {
	s := 0.0
	for i, v := range p.order {
		d := float64(i) - p.pos[v]
		s += math.Abs(d)
	}
	return s
}

func (p *perm) Propose(r *rand.Rand) func() {
	i, j := r.Intn(len(p.order)), r.Intn(len(p.order))
	p.order[i], p.order[j] = p.order[j], p.order[i]
	return func() { p.order[i], p.order[j] = p.order[j], p.order[i] }
}

func TestRunPermutation(t *testing.T) {
	n := 12
	p := &perm{order: make([]int, n), pos: make([]float64, n)}
	for i := 0; i < n; i++ {
		p.order[i] = n - 1 - i // reversed
		p.pos[i] = float64(i)
	}
	r := rand.New(rand.NewSource(7))
	res := Run(p, Options{Iterations: 20000}, r)
	if res.BestCost > 2 {
		t.Fatalf("permutation not sorted enough: cost %v (order %v)", res.BestCost, p.order)
	}
}

// deltaQuadratic wraps quadratic with an incremental ProposeDelta that
// keeps a per-coordinate contribution cache and refreshes only the touched
// coordinate, mirroring how place's SA state implements
// anneal.DeltaProblem: the total is re-summed over the cache in coordinate
// order so it stays bit-identical to a full Cost() recomputation.
type deltaQuadratic struct {
	quadratic
	terms []float64 // cached (x_i - target_i)^2 per coordinate
}

func (q *deltaQuadratic) refresh(i int) {
	d := q.x[i] - q.target[i]
	q.terms[i] = d * d
}

func (q *deltaQuadratic) Cost() float64 {
	for i := range q.x {
		q.refresh(i)
	}
	return q.sum()
}

func (q *deltaQuadratic) sum() float64 {
	s := 0.0
	for _, t := range q.terms {
		s += t
	}
	return s
}

func (q *deltaQuadratic) ProposeDelta(r *rand.Rand) (float64, func()) {
	i := r.Intn(len(q.x))
	old := q.x[i]
	q.x[i] += (r.Float64() - 0.5) * 2
	q.refresh(i)
	return q.sum(), func() {
		q.x[i] = old
		q.refresh(i)
	}
}

// TestDeltaProblemMatchesFullRecompute runs the same seeded problem through
// the Propose+Cost path and the ProposeDelta path; trajectories, results,
// and final states must match exactly.
func TestDeltaProblemMatchesFullRecompute(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		plain := &quadratic{x: []float64{10, -7, 3, 2}, target: []float64{0, 1, 0, -2}}
		incr := &deltaQuadratic{quadratic: quadratic{
			x:      append([]float64(nil), plain.x...),
			target: append([]float64(nil), plain.target...),
		}}
		incr.terms = make([]float64, len(incr.x))
		resPlain := Run(plain, Options{Iterations: 2000}, rand.New(rand.NewSource(seed)))
		resIncr := Run(incr, Options{Iterations: 2000}, rand.New(rand.NewSource(seed)))
		if resPlain != resIncr {
			t.Fatalf("seed %d: results diverge: %+v vs %+v", seed, resPlain, resIncr)
		}
		for i := range plain.x {
			if plain.x[i] != incr.x[i] {
				t.Fatalf("seed %d: final states diverge at %d: %v vs %v", seed, i, plain.x[i], incr.x[i])
			}
		}
	}
}
