package difftest

import (
	"fmt"
	"math"

	"zac/internal/circuit"
	"zac/internal/workload"
)

// spliceKinds is the gate vocabulary the splice mutation draws from: the
// hardware-native kinds plus a spread of input-level kinds so resynthesis
// and staging both get exercised.
var spliceKinds = []circuit.Kind{
	circuit.U3, circuit.CZ, circuit.H, circuit.X, circuit.T,
	circuit.RZ, circuit.RX, circuit.CX, circuit.SWAP, circuit.RZZ,
	circuit.CCZ, circuit.CP,
}

// MutateSpec derives a new workload spec from an existing one: usually a
// nudge of one parameter within its fuzz range, occasionally a full
// resample of the same family. The result stays within each parameter's
// schema bounds, so Generate cannot reject it.
func MutateSpec(r *workload.RNG, s workload.Spec) workload.Spec {
	g, err := workload.Get(s.Family)
	if err != nil {
		return s
	}
	params := g.Params()
	if len(params) == 0 {
		return s
	}
	out := workload.Spec{Family: s.Family, Values: workload.Values{}}
	for k, v := range s.Values {
		out.Values[k] = v
	}
	if r.Intn(4) == 0 {
		// Full resample within fuzz ranges.
		for _, p := range params {
			lo, hi := fuzzRange(p)
			out.Values[p.Name] = lo + r.Int63n(hi-lo+1)
		}
		return out
	}
	p := params[r.Intn(len(params))]
	lo, hi := fuzzRange(p)
	step := (hi - lo) / 8
	if step < 1 {
		step = 1
	}
	delta := 1 + r.Int63n(step)
	if r.Intn(2) == 0 {
		delta = -delta
	}
	v := out.Values[p.Name] + delta
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	out.Values[p.Name] = v
	return out
}

// fuzzRange returns a parameter's mutation bounds: its fuzz range when the
// schema declares one, otherwise the same fallback RandomSpec uses.
func fuzzRange(p workload.Param) (lo, hi int64) {
	lo, hi = p.FuzzMin, p.FuzzMax
	if hi <= lo {
		lo, hi = p.Min, p.Default*4
		if hi <= lo {
			hi = lo + 1
		}
	}
	return lo, hi
}

// MutateCircuit derives a new circuit by applying 1–3 random gate-level
// edits: drop a chunk, duplicate a gate, splice a fresh random gate,
// reparameterize, or retarget. The input is never modified; the result is
// always structurally valid (arity-checked gates, in-range qubits) though
// possibly semantically adversarial — which is the point.
func MutateCircuit(r *workload.RNG, c *circuit.Circuit) *circuit.Circuit {
	out := &circuit.Circuit{
		Name:      c.Name + "~mut",
		NumQubits: c.NumQubits,
		Gates:     append([]circuit.Gate(nil), c.Gates...),
	}
	edits := 1 + r.Intn(3)
	for i := 0; i < edits; i++ {
		switch r.Intn(5) {
		case 0: // drop a contiguous chunk
			if len(out.Gates) == 0 {
				continue
			}
			at := r.Intn(len(out.Gates))
			n := 1 + r.Intn(4)
			if at+n > len(out.Gates) {
				n = len(out.Gates) - at
			}
			out.Gates = append(out.Gates[:at], out.Gates[at+n:]...)
		case 1: // duplicate a gate in place
			if len(out.Gates) == 0 {
				continue
			}
			at := r.Intn(len(out.Gates))
			g := copyGate(out.Gates[at])
			out.Gates = append(out.Gates[:at+1], append([]circuit.Gate{g}, out.Gates[at+1:]...)...)
		case 2: // splice a fresh random gate
			g, ok := randomGate(r, out.NumQubits)
			if !ok {
				continue
			}
			at := 0
			if len(out.Gates) > 0 {
				at = r.Intn(len(out.Gates) + 1)
			}
			out.Gates = append(out.Gates[:at], append([]circuit.Gate{g}, out.Gates[at:]...)...)
		case 3: // reparameterize
			idxs := paramGateIndices(out.Gates)
			if len(idxs) == 0 {
				continue
			}
			at := idxs[r.Intn(len(idxs))]
			g := copyGate(out.Gates[at])
			g.Params[r.Intn(len(g.Params))] = randAngle(r)
			out.Gates[at] = g
		case 4: // retarget
			if len(out.Gates) == 0 {
				continue
			}
			at := r.Intn(len(out.Gates))
			g := copyGate(out.Gates[at])
			if qs, ok := distinctQubits(r, out.NumQubits, len(g.Qubits)); ok {
				g.Qubits = qs
				out.Gates[at] = g
			}
		}
	}
	return out
}

// paramGateIndices lists the indices of gates carrying float parameters.
func paramGateIndices(gates []circuit.Gate) []int {
	var idxs []int
	for i, g := range gates {
		if len(g.Params) > 0 {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// copyGate deep-copies a gate so mutations never alias the parent
// circuit's slices.
func copyGate(g circuit.Gate) circuit.Gate {
	return circuit.Gate{
		Kind:   g.Kind,
		Qubits: append([]int(nil), g.Qubits...),
		Params: append([]float64(nil), g.Params...),
	}
}

// randomGate draws a random arity-correct gate over n qubits.
func randomGate(r *workload.RNG, n int) (circuit.Gate, bool) {
	k := spliceKinds[r.Intn(len(spliceKinds))]
	qs, ok := distinctQubits(r, n, k.NumQubits())
	if !ok {
		return circuit.Gate{}, false
	}
	params := make([]float64, k.NumParams())
	for i := range params {
		params[i] = randAngle(r)
	}
	return circuit.NewGate(k, qs, params...), true
}

// distinctQubits draws k distinct qubit indices below n.
func distinctQubits(r *workload.RNG, n, k int) ([]int, bool) {
	if k > n {
		return nil, false
	}
	seen := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		q := r.Intn(n)
		if seen[q] {
			continue
		}
		seen[q] = true
		out = append(out, q)
	}
	return out, true
}

// randAngle draws an angle in [0, 2π).
func randAngle(r *workload.RNG) float64 {
	return 2 * math.Pi * float64(r.Int63n(1<<20)) / float64(1<<20)
}

// mutLabel names a mutated input after its ancestor for divergence reports.
func mutLabel(parent string, iter int) string {
	return fmt.Sprintf("%s~mut%d", parent, iter)
}
