// Package zac is a from-scratch Go reproduction of "Reuse-Aware Compilation
// for Zoned Quantum Architectures Based on Neutral Atoms" (Lin, Tan & Cong,
// HPCA 2025): the ZAC compiler, the ZAIR intermediate representation, the
// zoned-architecture specification, the paper's fidelity model, the four
// baseline compilers of its evaluation, the QASMBench-derived benchmark
// suite, a harness that regenerates every table and figure, and an HTTP
// compilation service (zac-serve) backed by a restart-surviving tiered
// result cache.
//
// The root package holds only documentation and the paper-level benchmark
// harness (bench_test.go); the implementation lives under internal/ (see
// DESIGN.md for the full inventory) and the executables under cmd/.
package zac
