package place

import (
	"context"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
)

func advOpts() Options {
	o := Default()
	o.AdvancedReuse = true
	return o
}

// qftLike builds a QFT-style CZ circuit with heavy cross-stage qubit
// sharing — the workload where direct in-zone movement pays off.
func qftLike(n int) *circuit.Circuit {
	c := circuit.New("qftlike", n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Append(circuit.CZ, []int{i, j})
		}
	}
	return c
}

func TestAdvancedReusePlansValidate(t *testing.T) {
	a := arch.Reference()
	for name, c := range map[string]*circuit.Circuit{
		"ghz":     ghz(20),
		"pairs":   parallelPairs(24),
		"qftlike": qftLike(10),
	} {
		staged := mustStage(t, c)
		plan, err := BuildPlan(context.Background(), a, staged, advOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAdvancedReuseReducesMoves(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, qftLike(12))

	base, err := BuildPlan(context.Background(), a, staged, Default())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := BuildPlan(context.Background(), a, staged, advOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Validate(); err != nil {
		t.Fatal(err)
	}
	if adv.TotalMoves() > base.TotalMoves() {
		t.Errorf("advanced reuse increased movements: %d vs %d", adv.TotalMoves(), base.TotalMoves())
	}
	// There must be some direct site→site move-in.
	direct := 0
	for _, step := range adv.Steps {
		for _, m := range step.MovesIn {
			if !m.From.InStorage {
				direct++
			}
		}
	}
	if direct == 0 {
		t.Error("advanced reuse produced no direct in-zone movements")
	}
}

func TestAdvancedReuseEverythingReturnsAtEnd(t *testing.T) {
	a := arch.Reference()
	staged := mustStage(t, qftLike(10))
	plan, err := BuildPlan(context.Background(), a, staged, advOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	last := plan.Steps[len(plan.Steps)-1]
	if len(last.MovesOut) == 0 {
		t.Error("final stage should drain the zone")
	}
}

func TestAdvancedReuseMultiZone(t *testing.T) {
	a := arch.Arch2TwoZones()
	staged := mustStage(t, qftLike(14))
	plan, err := BuildPlan(context.Background(), a, staged, advOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}
