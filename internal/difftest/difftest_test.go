package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	divs := []Divergence{
		{Class: ClassVerify, Compiler: "a", CorpusPath: "x.qasm"},
		{Class: ClassVerify, Compiler: "b"},
		{Class: ClassDeterminism, Compiler: "a"},
	}
	s := Summarize(divs)
	if s.Total != 3 || s.PerClass[ClassVerify] != 2 || s.PerClass[ClassDeterminism] != 1 {
		t.Fatalf("bad summary: %+v", s)
	}
	if len(s.Corpus) != 1 || s.Corpus[0] != "x.qasm" {
		t.Fatalf("bad corpus list: %v", s.Corpus)
	}
	out := s.String()
	if !strings.Contains(out, "3 divergences") || !strings.Contains(out, "verify: 2") {
		t.Fatalf("bad rendering: %s", out)
	}
	if empty := Summarize(nil).String(); empty != "0 divergences" {
		t.Fatalf("empty rendering: %q", empty)
	}
}

func TestClassesCoverTaxonomy(t *testing.T) {
	seen := map[Class]bool{}
	for _, c := range Classes() {
		if seen[c] {
			t.Fatalf("duplicate class %s", c)
		}
		seen[c] = true
	}
	for _, c := range []Class{ClassCompile, ClassVerify, ClassAccounting,
		ClassDeterminism, ClassFidelityOrder, ClassSanity} {
		if !seen[c] {
			t.Fatalf("Classes() missing %s", c)
		}
	}
}

func TestWriteAndReadCorpus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "corpus")
	d := Divergence{
		Class: ClassAccounting, Compiler: "stub>other", Input: "rb:n=4",
		Detail: "line one\nline two",
		QASM:   "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncz q[0],q[1];\n",
	}
	p, err := writeRepro(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(filepath.Base(p), "> ") {
		t.Errorf("unsanitized filename %q", p)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"// class: accounting", "// detail: line one", "// detail: line two", "cz q[0],q[1];"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("repro file missing %q:\n%s", want, data)
		}
	}
	// Idempotent: same divergence, same path, no duplicates.
	p2, err := writeRepro(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("re-writing the same repro changed the path: %q vs %q", p2, p)
	}
	paths, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != p {
		t.Errorf("ReadCorpus = %v, want [%s]", paths, p)
	}
	// A missing directory is an empty corpus.
	none, err := ReadCorpus(filepath.Join(dir, "absent"))
	if err != nil || none != nil {
		t.Errorf("missing dir: %v, %v", none, err)
	}
}

func TestDivergenceString(t *testing.T) {
	d := Divergence{
		Class: ClassVerify, Compiler: "zac", Input: "rb:n=4",
		Detail: "bad", Gates: 3, QASM: "qreg q[1];", CorpusPath: "c.qasm",
	}
	out := d.String()
	for _, want := range []string{"[verify]", "zac", "rb:n=4", "3-gate repro", "corpus: c.qasm", "  qreg q[1];"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestFidelityOrderViolated(t *testing.T) {
	cases := []struct {
		name       string
		less, more float64
		want       bool
	}{
		{"equal", 0.5, 0.5, false},
		{"proper order", 0.3, 0.5, false},
		{"tiny undercut within slack", 0.51, 0.5, false},
		{"deep circuits, big raw ratio, small cost gap", 1.6e-6, 1e-6, false},
		{"halved fidelity at shallow depth", 0.8, 0.4, true},
		{"deep circuits, cost gap beyond tolerance", 1e-4, 1e-6, true},
		{"zero fidelity is sanity's problem", 0.5, 0, false},
		{"above one is sanity's problem", 1.5, 0.5, false},
	}
	for _, tc := range cases {
		if got := fidelityOrderViolated(tc.less, tc.more, DefaultFidelityTol); got != tc.want {
			t.Errorf("%s: fidelityOrderViolated(%g, %g) = %v, want %v", tc.name, tc.less, tc.more, got, tc.want)
		}
	}
}
