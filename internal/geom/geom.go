// Package geom provides the 2D geometry primitives used throughout the
// compiler: points in the plane (µm coordinates), Euclidean distances,
// bounding boxes, and the atom-movement time law from Bluvstein et al.,
// Nature 604 (2022), which the paper adopts: d/t² = a with a = 2750 m/s².
package geom

import "math"

// Accel is the constant movement acceleration parameter a in µm/µs²
// (2750 m/s² = 2.75e-3 µm/µs² ... careful: 2750 m/s² = 2750e6 µm / 1e12 µs²
// = 2.75e-3 µm/µs²). The paper computes movement time t from distance d via
// d/t² = a, i.e. t = sqrt(d/a).
const Accel = 2.75e-3 // µm/µs²

// Point is a location in the plane, in µm.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Dist returns the Euclidean distance between p and q in µm.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Eq reports whether p and q coincide to within tol (µm).
func (p Point) Eq(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// MoveTime returns the duration in µs of an atom movement covering Euclidean
// distance d µm, per the constant-jerk profile d/t² = Accel used in the paper
// ("we calculate the movement time t based on the relation d/t² = 2750 m/s²").
// A zero or negative distance takes zero time.
func MoveTime(d float64) float64 {
	if d <= 0 {
		return 0
	}
	return math.Sqrt(d / Accel)
}

// MoveTimeBetween returns the movement duration between two points.
func MoveTimeBetween(p, q Point) float64 { return MoveTime(p.Dist(q)) }

// Rect is an axis-aligned rectangle given by its lower-left corner and size.
type Rect struct {
	Min  Point
	Size Point
}

// Max returns the upper-right corner.
func (r Rect) Max() Point { return Point{r.Min.X + r.Size.X, r.Min.Y + r.Size.Y} }

// Contains reports whether p lies inside r (inclusive of boundaries).
func (r Rect) Contains(p Point) bool {
	mx := r.Max()
	return p.X >= r.Min.X && p.X <= mx.X && p.Y >= r.Min.Y && p.Y <= mx.Y
}

// Intersects reports whether two rectangles overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	rm, sm := r.Max(), s.Max()
	return r.Min.X <= sm.X && s.Min.X <= rm.X && r.Min.Y <= sm.Y && s.Min.Y <= rm.Y
}

// BBox is an accumulating bounding box over a set of points.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
	empty                  bool
}

// NewBBox returns an empty bounding box.
func NewBBox() *BBox {
	return &BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
		empty: true,
	}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.empty = false
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Empty reports whether no point has been added.
func (b *BBox) Empty() bool { return b.empty }

// Contains reports whether p lies inside the box (inclusive).
func (b *BBox) Contains(p Point) bool {
	return !b.empty && p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// ContainsXY is Contains for raw coordinates.
func (b *BBox) ContainsXY(x, y float64) bool { return b.Contains(Point{x, y}) }
