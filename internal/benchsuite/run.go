package benchsuite

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"zac/internal/benchsuite/stats"
	"zac/internal/engine"
)

// SchemaVersion is the record schema stamped into every store line, bumped
// on incompatible Record changes so old stores stay readable (readers skip
// newer-versioned lines they do not understand). History: v1 carried ns/op
// only; v2 added the b_per_op/allocs_per_op allocation vectors and the
// per-pass timing records (Kind "pass"). v1 lines parse unchanged — the new
// vectors are simply absent.
const SchemaVersion = 2

// Record is one matrix cell measured at one commit on one machine: the full
// per-repetition ns/op sample vector plus everything needed to decide,
// later, whether it may be compared with another record at all.
type Record struct {
	// Schema is the record format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Case is the matrix cell name (Case.Name).
	Case string `json:"case"`
	// Kind is the cell's class (micro or compile).
	Kind Kind `json:"kind"`
	// Commit is the VCS revision of the measured tree.
	Commit string `json:"commit"`
	// UnixTime is the capture time in seconds (caller-supplied so replays
	// and tests are deterministic).
	UnixTime int64 `json:"unix_time"`
	// Machine is the full machine fingerprint; MachineID its digest, the
	// store shard key and the gate's comparability check.
	Machine   Fingerprint `json:"machine"`
	MachineID string      `json:"machine_id"`
	// ArchFP is the arch.Fingerprint of the targeted architecture ("" for
	// kernels without one).
	ArchFP string `json:"arch_fp,omitempty"`
	// Warmup and InnerIters record how the sample was taken: Warmup
	// discarded repetitions, InnerIters operations per timed repetition.
	Warmup     int `json:"warmup"`
	InnerIters int `json:"inner_iters"`
	// Procs is the effective runtime.GOMAXPROCS the cell ran under —
	// Case.Procs when the cell pinned it, the ambient value otherwise. The
	// gate refuses to compare records whose Procs differ, exactly like an
	// architecture-fingerprint change. omitempty keeps pre-existing store
	// lines (which carry no field, i.e. 0 = unknown) comparable with each
	// other.
	Procs int `json:"gomaxprocs,omitempty"`
	// NsPerOp holds one per-operation nanosecond sample per timed
	// repetition — the raw material of the Mann-Whitney gate.
	NsPerOp []float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp hold one per-operation heap-bytes and
	// heap-allocations sample per timed repetition (runtime.MemStats deltas
	// around the rep, read outside the timed region). They make allocation
	// behavior a first-class measured dimension next to wall-clock; absent
	// on schema-1 records and on pass records.
	BPerOp      []float64 `json:"b_per_op,omitempty"`
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
}

// RunConfig controls one matrix execution.
type RunConfig struct {
	// Warmup is the number of untimed repetitions discarded before
	// sampling (default 1).
	Warmup int
	// Reps is the number of timed repetitions, i.e. the sample size per
	// cell (default 5 — the smallest the statistical gate accepts).
	Reps int
	// Workers bounds matrix-level parallelism through the engine pool.
	// The default 1 runs cells sequentially, the only configuration whose
	// timings are trustworthy; higher values are for smoke runs where
	// only plumbing is under test.
	Workers int
	// Commit stamps the records' VCS revision ("unknown" when empty).
	Commit string
	// Now stamps the records' capture time (time.Now when zero).
	Now time.Time
	// Handicap multiplies every recorded ns/op sample (0 or 1 = none).
	// It exists to self-test the regression gate: a run with -handicap 2
	// must be flagged against an unmodified baseline.
	Handicap float64
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...any)
}

// normalized fills the config's defaults.
func (c RunConfig) normalized() RunConfig {
	if c.Warmup <= 0 {
		c.Warmup = 1
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Commit == "" {
		c.Commit = "unknown"
	}
	if c.Now.IsZero() {
		c.Now = time.Now()
	}
	if c.Handicap == 0 {
		c.Handicap = 1
	}
	return c
}

// Run executes every case of the matrix under cfg and returns the records
// in matrix order regardless of scheduling (the engine assembles by index):
// one primary Record per case, followed — for cases exposing a pass probe —
// by one "<case>/pass/<name>" Record (Kind "pass") per pipeline pass, so a
// regression flagged by the gate names the pass that slowed down, not just
// the compile. Each record carries the process-wide machine fingerprint and
// cfg's commit stamp.
func Run(ctx context.Context, cases []Case, cfg RunConfig) ([]Record, error) {
	cfg = cfg.normalized()
	if cfg.Workers > 1 {
		// GOMAXPROCS is process-global: a Procs-pinning cell running next
		// to any other cell would silently distort both measurements.
		for _, c := range cases {
			if c.Procs > 0 {
				return nil, fmt.Errorf("benchsuite: case %s pins GOMAXPROCS; the matrix must run with Workers=1, got %d", c.Name, cfg.Workers)
			}
		}
	}
	fp := Machine()
	perCase, err := engine.Map(ctx, cfg.Workers, len(cases), func(i int) ([]Record, error) {
		recs, err := runCase(ctx, cases[i], cfg, fp)
		if err != nil {
			return nil, fmt.Errorf("benchsuite: %s: %w", cases[i].Name, err)
		}
		if cfg.Progress != nil {
			cfg.Progress("%-60s %3d reps  median %12.0f ns/op", recs[0].Case, len(recs[0].NsPerOp), stats.Median(recs[0].NsPerOp))
		}
		return recs, nil
	})
	if err != nil {
		return nil, err
	}
	var records []Record
	for _, recs := range perCase {
		records = append(records, recs...)
	}
	return records, nil
}

// runCase sets up and times one cell: Warmup discarded repetitions, then
// Reps timed ones of InnerIters operations each. Around every timed
// repetition it reads runtime.MemStats (outside the timed region, so the
// reads never perturb the wall-clock sample) to derive per-op allocation
// vectors, and — when the case exposes a pass probe — collects the per-pass
// durations of each repetition into satellite pass records.
func runCase(ctx context.Context, c Case, cfg RunConfig, fp Fingerprint) ([]Record, error) {
	op, err := c.setup()
	if err != nil {
		return nil, err
	}
	procs := runtime.GOMAXPROCS(0)
	if c.Procs > 0 && c.Procs != procs {
		prev := runtime.GOMAXPROCS(c.Procs)
		defer runtime.GOMAXPROCS(prev)
		procs = c.Procs
	}
	inner := c.InnerIters
	if inner <= 0 {
		inner = 1
	}
	for w := 0; w < cfg.Warmup; w++ {
		if err := opN(ctx, op, inner); err != nil {
			return nil, err
		}
	}
	samples := make([]float64, 0, cfg.Reps)
	bytesPer := make([]float64, 0, cfg.Reps)
	allocsPer := make([]float64, 0, cfg.Reps)
	passSamples := map[string][]float64{}
	var passOrder []string
	var msBefore, msAfter runtime.MemStats
	for r := 0; r < cfg.Reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		if err := opN(ctx, op, inner); err != nil {
			return nil, err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(inner)
		runtime.ReadMemStats(&msAfter)
		samples = append(samples, ns*cfg.Handicap)
		// TotalAlloc and Mallocs are monotonic, so concurrent GC cannot make
		// the deltas go backwards; the handicap multiplier is a timing
		// self-test knob and deliberately leaves allocation samples honest.
		bytesPer = append(bytesPer, float64(msAfter.TotalAlloc-msBefore.TotalAlloc)/float64(inner))
		allocsPer = append(allocsPer, float64(msAfter.Mallocs-msBefore.Mallocs)/float64(inner))
		if c.passes != nil {
			// The probe reports the last operation of the repetition — a
			// per-op sample by construction, no inner division needed.
			for _, pt := range c.passes() {
				if _, seen := passSamples[pt.Pass]; !seen {
					passOrder = append(passOrder, pt.Pass)
				}
				passSamples[pt.Pass] = append(passSamples[pt.Pass],
					float64(pt.Duration.Nanoseconds())*cfg.Handicap)
			}
		}
	}
	stamp := func(name string, kind Kind, ns []float64) Record {
		return Record{
			Schema:     SchemaVersion,
			Case:       name,
			Kind:       kind,
			Commit:     cfg.Commit,
			UnixTime:   cfg.Now.Unix(),
			Machine:    fp,
			MachineID:  fp.ID(),
			ArchFP:     c.ArchFP,
			Warmup:     cfg.Warmup,
			InnerIters: inner,
			Procs:      procs,
			NsPerOp:    ns,
		}
	}
	primary := stamp(c.Name, c.Kind, samples)
	primary.BPerOp = bytesPer
	primary.AllocsPerOp = allocsPer
	records := []Record{primary}
	for _, pass := range passOrder {
		records = append(records, stamp(c.Name+"/pass/"+pass, KindPass, passSamples[pass]))
	}
	return records, nil
}

// opN runs op n times, stopping at the first error.
func opN(ctx context.Context, op func(context.Context) error, n int) error {
	for i := 0; i < n; i++ {
		if err := op(ctx); err != nil {
			return err
		}
	}
	return nil
}
