package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"zac/internal/arch"
	"zac/internal/baseline/atomique"
	"zac/internal/baseline/enola"
	"zac/internal/baseline/nalac"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/fidelity"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/sc"
)

// naResult is the common evaluation shape of the neutral-atom and
// superconducting compilers: fidelity breakdown, circuit duration, and the
// wall-clock compile time (measured once, at the compilation that populated
// the cache entry).
type naResult struct {
	breakdown fidelity.Breakdown
	duration  float64 // µs
	compile   time.Duration
}

// naResultWire is naResult's exported mirror for the disk tier.
type naResultWire struct {
	Breakdown fidelity.Breakdown `json:"breakdown"`
	Duration  float64            `json:"duration_us"`
	Compile   time.Duration      `json:"compile_ns"`
}

// naCodec persists naResult values in the disk tier.
var naCodec = &engine.Codec{
	Encode: func(v any) ([]byte, error) {
		r, ok := v.(naResult)
		if !ok {
			return nil, fmt.Errorf("experiments: naCodec cannot encode %T", v)
		}
		return json.Marshal(naResultWire{r.breakdown, r.duration, r.compile})
	},
	Decode: func(data []byte) (any, error) {
		var w naResultWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, err
		}
		return naResult{w.Breakdown, w.Duration, w.Compile}, nil
	},
}

// cachedStaged preprocesses a benchmark (resynthesis to {CZ,U3} + ASAP
// staging) and splits oversized Rydberg stages to the architecture's site
// capacity. The cached instance is shared by every compiler; compilers only
// read it.
func cachedStaged(cfg Config, b bench.Benchmark, split *arch.Architecture) (*circuit.Staged, error) {
	key := "staged|" + b.Name + "|split=" + split.Fingerprint()
	return cachedDisk(cfg, key, engine.JSONCodec[*circuit.Staged](), func() (*circuit.Staged, error) {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return circuit.SplitRydbergStages(staged, split.TotalSites()), nil
	})
}

// cachedFlat preprocesses a benchmark without stage splitting — the input
// shape of the superconducting router.
func cachedFlat(cfg Config, b bench.Benchmark) (*circuit.Staged, error) {
	key := "flat|" + b.Name
	return cachedDisk(cfg, key, engine.JSONCodec[*circuit.Staged](), func() (*circuit.Staged, error) {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return staged, nil
	})
}

// cachedZAC compiles a benchmark with the ZAC compiler under the given
// option preset. optKey must uniquely identify opts — the ablation setting
// name, a sweep configuration label, or "advReuse". Results persist to the
// disk tier as core.Snapshot, so an entry restored after a restart has nil
// Plan and Staged; consumers needing the plan use cachedPlan.
func cachedZAC(cfg Config, b bench.Benchmark, a *arch.Architecture, optKey string, opts core.Options) (*core.Result, error) {
	key := "zac|" + b.Name + "|arch=" + a.Fingerprint() + "|opt=" + optKey
	return cachedDisk(cfg, key, core.ResultCodec(), func() (*core.Result, error) {
		staged, err := cachedStaged(cfg, b, a)
		if err != nil {
			return nil, err
		}
		r, err := core.CompileStaged(staged, a, opts)
		if err != nil {
			return nil, fmt.Errorf("%s/zac: %w", b.Name, err)
		}
		return r, nil
	})
}

// cachedZACNativeCCZ is the native-CCZ variant of cachedZAC: the benchmark
// is preprocessed with PreprocessNativeCCZ and compiled on the three-trap
// architecture.
func cachedZACNativeCCZ(cfg Config, b bench.Benchmark, a *arch.Architecture) (*core.Result, error) {
	key := "zacccz|" + b.Name + "|arch=" + a.Fingerprint()
	return cachedDisk(cfg, key, core.ResultCodec(), func() (*core.Result, error) {
		staged, err := cachedDisk(cfg, "stagedccz|"+b.Name+"|split="+a.Fingerprint(), engine.JSONCodec[*circuit.Staged](), func() (*circuit.Staged, error) {
			native, err := resynth.PreprocessNativeCCZ(b.Build())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			return circuit.SplitRydbergStages(native, a.TotalSites()), nil
		})
		if err != nil {
			return nil, err
		}
		r, err := core.CompileStaged(staged, a, core.Default())
		if err != nil {
			return nil, fmt.Errorf("%s/zac-ccz: %w", b.Name, err)
		}
		return r, nil
	})
}

// cachedPlan rebuilds (and memoizes, memory-only) the full-ZAC placement
// plan for a benchmark. It exists for consumers of cachedZAC results that
// need the Plan after a disk-tier restore, where only the core.Snapshot
// subset survives.
func cachedPlan(cfg Config, b bench.Benchmark, a *arch.Architecture) (*place.Plan, error) {
	key := "zacplan|" + b.Name + "|arch=" + a.Fingerprint()
	return cached(cfg, key, func() (*place.Plan, error) {
		staged, err := cachedStaged(cfg, b, a)
		if err != nil {
			return nil, err
		}
		plan, err := place.BuildPlan(a, staged, core.Default().Place)
		if err != nil {
			return nil, fmt.Errorf("%s/zac-plan: %w", b.Name, err)
		}
		return plan, nil
	})
}

// cachedNALAC compiles the staged circuit (split to the zoned architecture)
// with the NALAC baseline.
func cachedNALAC(cfg Config, b bench.Benchmark, split, a *arch.Architecture) (naResult, error) {
	key := "nalac|" + b.Name + "|split=" + split.Fingerprint() + "|arch=" + a.Fingerprint()
	return cachedDisk(cfg, key, naCodec, func() (naResult, error) {
		staged, err := cachedStaged(cfg, b, split)
		if err != nil {
			return naResult{}, err
		}
		t0 := time.Now()
		r, err := nalac.Compile(staged, a)
		if err != nil {
			return naResult{}, fmt.Errorf("%s/nalac: %w", b.Name, err)
		}
		return naResult{r.Breakdown, r.Duration, time.Since(t0)}, nil
	})
}

// cachedEnola compiles the staged circuit with the Enola baseline.
func cachedEnola(cfg Config, b bench.Benchmark, split, a *arch.Architecture) (naResult, error) {
	key := "enola|" + b.Name + "|split=" + split.Fingerprint() + "|arch=" + a.Fingerprint()
	return cachedDisk(cfg, key, naCodec, func() (naResult, error) {
		staged, err := cachedStaged(cfg, b, split)
		if err != nil {
			return naResult{}, err
		}
		t0 := time.Now()
		r, err := enola.Compile(staged, a)
		if err != nil {
			return naResult{}, fmt.Errorf("%s/enola: %w", b.Name, err)
		}
		return naResult{r.Breakdown, r.Duration, time.Since(t0)}, nil
	})
}

// cachedAtomique compiles the staged circuit with the Atomique baseline.
func cachedAtomique(cfg Config, b bench.Benchmark, split, a *arch.Architecture) (naResult, error) {
	key := "atomique|" + b.Name + "|split=" + split.Fingerprint() + "|arch=" + a.Fingerprint()
	return cachedDisk(cfg, key, naCodec, func() (naResult, error) {
		staged, err := cachedStaged(cfg, b, split)
		if err != nil {
			return naResult{}, err
		}
		t0 := time.Now()
		r, err := atomique.Compile(staged, a)
		if err != nil {
			return naResult{}, fmt.Errorf("%s/atomique: %w", b.Name, err)
		}
		return naResult{r.Breakdown, r.Duration, time.Since(t0)}, nil
	})
}

// cachedSC compiles the benchmark on one of the two superconducting
// platforms (ColSCHeron or ColSCGrid).
func cachedSC(cfg Config, b bench.Benchmark, col string) (naResult, error) {
	key := "sc|" + b.Name + "|" + col
	return cachedDisk(cfg, key, naCodec, func() (naResult, error) {
		staged, err := cachedFlat(cfg, b)
		if err != nil {
			return naResult{}, err
		}
		var (
			g *sc.Coupling
			p fidelity.Params
		)
		switch col {
		case ColSCHeron:
			g, p = sc.HeavyHex127(), fidelity.SCHeron()
		case ColSCGrid:
			g, p = sc.Grid(11, 11), fidelity.SCGrid()
		default:
			return naResult{}, fmt.Errorf("experiments: unknown SC column %q", col)
		}
		t0 := time.Now()
		r, err := sc.Compile(staged, g, p)
		if err != nil {
			return naResult{}, fmt.Errorf("%s/%s: %w", b.Name, col, err)
		}
		return naResult{r.Breakdown, r.Duration, time.Since(t0)}, nil
	})
}

// evalCol evaluates one benchmark under one compiler column — the unit of
// work the experiment runners fan out over the pool. The four neutral-atom
// columns share the zoned-split staged circuit, exactly as the sequential
// harness did.
func evalCol(cfg Config, col string, b bench.Benchmark) (naResult, error) {
	switch col {
	case ColZAC:
		r, err := cachedZAC(cfg, b, arch.Reference(), core.SettingSADynPlaceReuse, core.Default())
		if err != nil {
			return naResult{}, err
		}
		return naResult{r.Breakdown, r.Duration, r.CompileTime}, nil
	case ColNALAC:
		return cachedNALAC(cfg, b, arch.Reference(), arch.Reference())
	case ColEnola:
		return cachedEnola(cfg, b, arch.Reference(), arch.Monolithic())
	case ColAtomique:
		return cachedAtomique(cfg, b, arch.Reference(), arch.Monolithic())
	case ColSCHeron, ColSCGrid:
		return cachedSC(cfg, b, col)
	}
	return naResult{}, fmt.Errorf("experiments: unknown compiler column %q", col)
}
