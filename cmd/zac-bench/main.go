// Command zac-bench regenerates the paper's tables and figures as text
// tables (and optionally CSV). Each experiment id matches DESIGN.md's
// per-experiment index. Compilations fan out over a bounded worker pool and
// are memoized in a process-wide cache, so experiments sharing circuits
// (fig8/fig9/fig10/table2) compile each (circuit, compiler) pair once.
//
//	zac-bench -experiment fig8
//	zac-bench -experiment fig9 -circuits bv_n14,ghz_n23
//	zac-bench -experiment all -csv out/
//	zac-bench -experiment all -parallel 8 -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"zac/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: full suite)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential)")
	progress := flag.Bool("progress", false, "print one line per completed compilation to stderr")
	noCache := flag.Bool("nocache", false, "disable the compilation cache (recompile shared circuits)")
	flag.Parse()

	if *list {
		for _, n := range experiments.Registry() {
			fmt.Println(n)
		}
		return
	}

	var subset []string
	if *circuits != "" {
		subset = strings.Split(*circuits, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Registry()
	}

	cfg := experiments.Config{Parallel: *parallel, NoCache: *noCache}
	if *progress {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "[progress] "+msg) }
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, id := range ids {
		tables, err := experiments.RunWith(ctx, cfg, id, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i, t := range tables {
			fmt.Println(t.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", id, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *progress {
		st := experiments.CacheStats()
		fmt.Fprintf(os.Stderr, "[progress] cache: %d hits, %d misses, %d entries\n",
			st.Hits, st.Misses, st.Entries)
	}
	fmt.Println("[INFO] Finish Compilation")
}
