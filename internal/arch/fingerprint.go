package arch

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a short stable digest of the full architecture
// specification, suitable as a compilation-cache key component: two
// architectures with identical zone layouts, AOD arrays, and hardware
// parameters share a fingerprint. The digest covers the JSON encoding plus
// the fields the artifact format does not serialize (ZoneSep,
// MovementAccel).
func (a *Architecture) Fingerprint() string {
	h := fnv.New64a()
	if data, err := json.Marshal(a); err == nil {
		h.Write(data)
	}
	fmt.Fprintf(h, "|sep=%g|accel=%g", a.ZoneSep, a.MovementAccel)
	return fmt.Sprintf("%016x", h.Sum64())
}
