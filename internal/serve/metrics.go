package serve

import "net/http"

// handleMetrics serves GET /metrics: a machine-readable service snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// Metrics assembles the current MetricsResponse.
func (s *Server) Metrics() MetricsResponse {
	st := s.cache.Stats()
	m := MetricsResponse{
		RequestsTotal:    s.requests.Load(),
		CompilesTotal:    s.compiles.Load(),
		InFlightCompiles: s.inflight.Load(),
		Cache: CacheMetrics{
			MemHits:     st.MemHits,
			DiskHits:    st.DiskHits,
			Misses:      st.Misses,
			HitRate:     st.HitRate(),
			MemEntries:  st.MemEntries,
			DiskEntries: st.Disk.Entries,
			DiskBytes:   st.Disk.Bytes,
		},
		Jobs:      map[JobStatus]int{},
		Compilers: map[string]LatencyMetrics{},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		m.Jobs[j.status]++
		j.mu.Unlock()
	}
	for setting, agg := range s.latency {
		lm := LatencyMetrics{Count: agg.count, TotalMS: agg.totalMS, MaxMS: agg.maxMS}
		if agg.count > 0 {
			lm.AvgMS = agg.totalMS / float64(agg.count)
		}
		m.Compilers[setting] = lm
	}
	return m
}
