package sc

import (
	"testing"

	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/fidelity"
	"zac/internal/resynth"
)

func stage(t *testing.T, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	s, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHeavyHex127Shape(t *testing.T) {
	g := HeavyHex127()
	if g.N != 127 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.Connected() {
		t.Fatal("heavy-hex graph disconnected")
	}
	// Heavy-hex degree bound: row qubits ≤ 3, bridges = 2.
	for v, adj := range g.Adj {
		if len(adj) > 3 {
			t.Fatalf("vertex %d has degree %d > 3", v, len(adj))
		}
	}
	// Edge count: 6 rows of internal couplers + bridges.
	// rows: 13+14*5+13 = 96; bridges: 6*4*2 = 48 → 144.
	if got := g.NumEdges(); got != 144 {
		t.Errorf("edges = %d, want 144", got)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(11, 11)
	if g.N != 121 || !g.Connected() {
		t.Fatalf("bad grid: N=%d", g.N)
	}
	if got, want := g.NumEdges(), 2*11*10; got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	if !g.Adjacent(0, 1) || !g.Adjacent(0, 11) || g.Adjacent(0, 12) {
		t.Error("grid adjacency wrong")
	}
}

func TestShortestPath(t *testing.T) {
	g := Grid(5, 5)
	path := g.ShortestPath(0, 24)
	if len(path) != 9 { // manhattan distance 8 → 9 vertices
		t.Fatalf("path length %d, want 9", len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 24 {
		t.Fatal("path endpoints wrong")
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.Adjacent(path[i], path[i+1]) {
			t.Fatalf("path hop %d-%d not an edge", path[i], path[i+1])
		}
	}
	if p := g.ShortestPath(3, 3); len(p) != 1 {
		t.Error("self path should be trivial")
	}
}

func TestCompileAdjacentNoSwaps(t *testing.T) {
	g := Grid(3, 3)
	c := circuit.New("adj", 2)
	c.Append(circuit.CZ, []int{0, 1}) // physically adjacent under identity layout
	res, err := Compile(stage(t, c), g, fidelity.SCGrid())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSwaps != 0 {
		t.Errorf("swaps = %d, want 0", res.NumSwaps)
	}
	if res.Stats.TwoQGates != 1 {
		t.Errorf("2Q = %d", res.Stats.TwoQGates)
	}
}

func TestCompileDistantInsertsSwaps(t *testing.T) {
	g := Grid(4, 4)
	c := circuit.New("far", 16)
	c.Append(circuit.CZ, []int{0, 15}) // opposite corners
	res, err := Compile(stage(t, c), g, fidelity.SCGrid())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSwaps == 0 {
		t.Error("distant pair should require swaps")
	}
	if res.Stats.TwoQGates != 1+3*res.NumSwaps {
		t.Errorf("2Q accounting wrong: %d gates, %d swaps", res.Stats.TwoQGates, res.NumSwaps)
	}
}

func TestSwapsUpdateLayout(t *testing.T) {
	// Two identical long-range gates: the second should need fewer (or zero)
	// swaps because the first round of routing brought the operands together.
	g := Grid(5, 5)
	c1 := circuit.New("one", 25)
	c1.Append(circuit.CZ, []int{0, 24})
	res1, _ := Compile(stage(t, c1), g, fidelity.SCGrid())

	c2 := circuit.New("two", 25)
	c2.Append(circuit.CZ, []int{0, 24})
	c2.Append(circuit.CZ, []int{0, 24})
	res2, _ := Compile(stage(t, c2), g, fidelity.SCGrid())
	if res2.NumSwaps != res1.NumSwaps {
		t.Errorf("second identical gate should reuse the layout: %d vs %d swaps",
			res2.NumSwaps, res1.NumSwaps)
	}
}

func TestAllBenchmarksOnBothArchitectures(t *testing.T) {
	hh := HeavyHex127()
	grid := Grid(11, 11)
	for _, b := range bench.All() {
		st := stage(t, b.Build())
		for name, tc := range map[string]struct {
			g *Coupling
			p fidelity.Params
		}{
			"heron": {hh, fidelity.SCHeron()},
			"grid":  {grid, fidelity.SCGrid()},
		} {
			res, err := Compile(st, tc.g, tc.p)
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			if res.Breakdown.Total < 0 || res.Breakdown.Total > 1 {
				t.Fatalf("%s on %s: fidelity %v", b.Name, name, res.Breakdown.Total)
			}
			// SC durations are microseconds-scale, vastly shorter than the
			// neutral-atom millisecond scale (Table II).
			if res.Duration <= 0 || res.Duration > 1e4 {
				t.Fatalf("%s on %s: duration %v µs implausible", b.Name, name, res.Duration)
			}
		}
	}
}

func TestCapacity(t *testing.T) {
	g := Grid(2, 2)
	c := circuit.New("big", 5)
	c.Append(circuit.H, []int{4})
	if _, err := Compile(stage(t, c), g, fidelity.SCGrid()); err == nil {
		t.Fatal("expected capacity error")
	}
}
