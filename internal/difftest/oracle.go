package difftest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/qasm"
	"zac/internal/resynth"
	"zac/internal/workload"
	"zac/internal/zair"
)

// Defaults of the oracle's tunables.
const (
	// DefaultFidelityTol is the relative slack of the ablation-ordering
	// check, measured in log-fidelity (cost) domain: an ablation may
	// undercut its superset configuration's cost by up to this fraction
	// before the disagreement counts as a divergence. The heuristics (SA,
	// dynamic matching, advanced reuse) are not provably monotone on
	// adversarial inputs; calibration over 300 random forge specs observed
	// a worst legitimate undercut of 4.3%, so the default carries ~3.5×
	// headroom.
	DefaultFidelityTol = 0.15
	// fidelityAbsSlack is the absolute cost slack added on top of the
	// relative tolerance so shallow circuits (cost near zero, where any
	// relative bound degenerates) don't produce noise. 0.05 in cost is a
	// ~5% fidelity factor.
	fidelityAbsSlack = 0.05
	// DefaultMaxShrinkChecks bounds the predicate evaluations — each one
	// or two full compiles — spent minimizing one divergence.
	DefaultMaxShrinkChecks = 120
	// DefaultMaxQubits bounds the width the oracle accepts. Above ~64
	// qubits the platforms' capacity limits legitimately diverge (the SC
	// couplings hold 121–127 qubits), which would turn ClassCompile into
	// noise.
	DefaultMaxQubits = 64
)

// Options configures an Oracle. The zero value checks the whole registry
// with default tolerances and no corpus persistence.
type Options struct {
	// Compilers names the registry compilers to cross-check; empty selects
	// the whole registry.
	Compilers []string
	// FidelityTol is the relative slack of the ablation-ordering check
	// (≤ 0 selects DefaultFidelityTol).
	FidelityTol float64
	// NoShrink reports divergences on the original input without
	// minimizing.
	NoShrink bool
	// MaxShrinkChecks bounds predicate evaluations per shrink (≤ 0 selects
	// DefaultMaxShrinkChecks).
	MaxShrinkChecks int
	// CorpusDir, when non-empty, persists each minimized repro as a
	// commented QASM file in this directory.
	CorpusDir string
	// MaxQubits bounds accepted circuit widths (≤ 0 selects
	// DefaultMaxQubits).
	MaxQubits int
}

func (o Options) fidelityTol() float64 {
	if o.FidelityTol <= 0 {
		return DefaultFidelityTol
	}
	return o.FidelityTol
}

func (o Options) maxShrinkChecks() int {
	if o.MaxShrinkChecks <= 0 {
		return DefaultMaxShrinkChecks
	}
	return o.MaxShrinkChecks
}

func (o Options) maxQubits() int {
	if o.MaxQubits <= 0 {
		return DefaultMaxQubits
	}
	return o.MaxQubits
}

// Oracle cross-checks compilations of one circuit across a fixed compiler
// set. Construct with New (registry names) or NewWith (explicit compilers,
// used by tests to inject misbehaving stubs).
type Oracle struct {
	comps []compiler.Compiler
	opts  Options
}

// New resolves opts.Compilers against the registry (whole registry when
// empty) and returns the oracle. Unknown names error with the valid list.
func New(opts Options) (*Oracle, error) {
	names := opts.Compilers
	if len(names) == 0 {
		names = compiler.Names()
	}
	comps := make([]compiler.Compiler, 0, len(names))
	for _, n := range names {
		c, err := compiler.Get(n)
		if err != nil {
			return nil, err
		}
		comps = append(comps, c)
	}
	return NewWith(comps, opts), nil
}

// NewWith builds an oracle over an explicit compiler set, bypassing the
// registry — the seam tests use to inject intentionally broken compilers.
func NewWith(comps []compiler.Compiler, opts Options) *Oracle {
	return &Oracle{comps: comps, opts: opts}
}

// Compilers returns the names of the oracle's compiler set, in check order.
func (o *Oracle) Compilers() []string {
	out := make([]string, len(o.comps))
	for i, c := range o.comps {
		out[i] = c.Name()
	}
	return out
}

// CheckSpec generates the spec's circuit and cross-checks it. Spec parse
// and generation problems are harness errors, not divergences.
func (o *Oracle) CheckSpec(ctx context.Context, spec string) ([]Divergence, error) {
	parsed, err := workload.Parse(spec)
	if err != nil {
		return nil, err
	}
	c, err := parsed.Generate()
	if err != nil {
		return nil, err
	}
	return o.Check(ctx, c, parsed.Canonical())
}

// outcome is one compilation attempt's observable result.
type outcome struct {
	res  *compileResult
	err  error
	hash string
}

// compileResult carries the fields the cross-checks read.
type compileResult struct {
	program     *zair.Program
	total       float64
	breakdown   map[string]float64
	duration    float64
	totalMoves  int
	reusedGates int
	stages      int
	resolve     zair.PosResolver
}

// compileOnce shapes the circuit the way every surface does (preprocess,
// split to the compiler's stage cap) and compiles it, containing panics —
// the compilers are being fed adversarial inputs.
func (o *Oracle) compileOnce(ctx context.Context, comp compiler.Compiler, c *circuit.Circuit) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = outcome{err: fmt.Errorf("compile panicked: %v", r)}
		}
	}()
	staged, err := preprocessFor(comp, c)
	if err != nil {
		return outcome{err: err}
	}
	a := compiler.TargetArch(comp)
	res, err := comp.Compile(ctx, staged, a, compiler.Options{})
	if err != nil {
		return outcome{err: err}
	}
	cr := &compileResult{
		program: res.Program,
		total:   res.Breakdown.Total,
		breakdown: map[string]float64{
			"1Q": res.Breakdown.OneQ, "2Q": res.Breakdown.TwoQ,
			"excite": res.Breakdown.Excite, "transfer": res.Breakdown.Transfer,
			"decohere": res.Breakdown.Decohere, "total": res.Breakdown.Total,
		},
		duration:    res.Duration,
		totalMoves:  res.TotalMoves,
		reusedGates: res.ReusedGates,
		stages:      res.NumRydbergStages,
		resolve:     a.ResolveTrap,
	}
	data, err := json.Marshal(struct {
		Program any
		Stats   any
		Brk     any
	}{res.Program, res.Stats, res.Breakdown})
	if err != nil {
		return outcome{err: fmt.Errorf("result not serializable: %w", err)}
	}
	sum := sha256.Sum256(data)
	return outcome{res: cr, hash: hex.EncodeToString(sum[:])}
}

// preprocessFor shapes a raw circuit for one compiler under the
// registry-wide shaping rule (same as the CLI, serve, and harness).
func preprocessFor(comp compiler.Compiler, c *circuit.Circuit) (*circuit.Staged, error) {
	staged, err := resynth.Preprocess(c)
	if err != nil {
		return nil, err
	}
	if splitCap := compiler.StageSplitCap(comp); splitCap > 0 {
		staged = circuit.SplitRydbergStages(staged, splitCap)
	}
	if err := staged.Validate(); err != nil {
		return nil, fmt.Errorf("split staging invalid: %w", err)
	}
	return staged, nil
}

// Check cross-checks one circuit through the oracle's compiler set and
// returns every classified, minimized divergence. The returned error is
// non-nil only for harness-level problems (cancellation, width beyond
// Options.MaxQubits) — invariant violations come back as Divergences.
func (o *Oracle) Check(ctx context.Context, c *circuit.Circuit, label string) ([]Divergence, error) {
	if c.NumQubits > o.opts.maxQubits() {
		return nil, fmt.Errorf("difftest: circuit %s has %d qubits, oracle bound is %d (platform capacities diverge above it)",
			label, c.NumQubits, o.opts.maxQubits())
	}
	var divs []Divergence
	outs := make(map[string]outcome, len(o.comps))
	for _, comp := range o.comps {
		if err := ctx.Err(); err != nil {
			return divs, err
		}
		comp := comp
		o1 := o.compileOnce(ctx, comp, c)
		o2 := o.compileOnce(ctx, comp, c)
		outs[comp.Name()] = o1
		if detail := determinismDetail(o1, o2); detail != "" && ctx.Err() == nil {
			divs = append(divs, o.finish(ctx, Divergence{
				Class: ClassDeterminism, Compiler: comp.Name(), Input: label, Detail: detail,
			}, c, func(cand *circuit.Circuit) bool {
				a, b := o.compileOnce(ctx, comp, cand), o.compileOnce(ctx, comp, cand)
				return determinismDetail(a, b) != ""
			}))
		}
		if o1.err != nil {
			continue
		}
		if detail := sanityDetail(o1.res); detail != "" {
			divs = append(divs, o.finish(ctx, Divergence{
				Class: ClassSanity, Compiler: comp.Name(), Input: label, Detail: detail,
			}, c, func(cand *circuit.Circuit) bool {
				out := o.compileOnce(ctx, comp, cand)
				return out.err == nil && sanityDetail(out.res) != ""
			}))
		}
		if detail := verifyDetail(o1.res); detail != "" {
			divs = append(divs, o.finish(ctx, Divergence{
				Class: ClassVerify, Compiler: comp.Name(), Input: label, Detail: detail,
			}, c, func(cand *circuit.Circuit) bool {
				out := o.compileOnce(ctx, comp, cand)
				return out.err == nil && verifyDetail(out.res) != ""
			}))
		}
		if detail := accountingDetail(o1.res); detail != "" {
			divs = append(divs, o.finish(ctx, Divergence{
				Class: ClassAccounting, Compiler: comp.Name(), Input: label, Detail: detail,
			}, c, func(cand *circuit.Circuit) bool {
				out := o.compileOnce(ctx, comp, cand)
				return out.err == nil && accountingDetail(out.res) != ""
			}))
		}
	}
	if err := ctx.Err(); err != nil {
		return divs, err
	}

	// Cross-compiler: compile-outcome agreement. A failure is only a
	// divergence when a witness compiler accepted the same input.
	var witness compiler.Compiler
	for _, comp := range o.comps {
		if outs[comp.Name()].err == nil {
			witness = comp
			break
		}
	}
	if witness != nil {
		for _, comp := range o.comps {
			comp := comp
			failed := outs[comp.Name()].err
			if failed == nil {
				continue
			}
			w := witness
			divs = append(divs, o.finish(ctx, Divergence{
				Class: ClassCompile, Compiler: comp.Name(), Input: label,
				Detail: fmt.Sprintf("rejected input that %s accepted: %v", w.Name(), failed),
			}, c, func(cand *circuit.Circuit) bool {
				return o.compileOnce(ctx, comp, cand).err != nil &&
					o.compileOnce(ctx, w, cand).err == nil
			}))
		}
	}

	// Cross-compiler: ablation fidelity ordering. Walk the chain of
	// configurations where each entry strictly extends the previous one;
	// the weaker configuration must not win beyond tolerance.
	tol := o.opts.fidelityTol()
	chain := presentChain(o.comps, outs)
	for i := 0; i+1 < len(chain); i++ {
		less, more := chain[i], chain[i+1]
		lf, mf := outs[less.Name()].res.total, outs[more.Name()].res.total
		if fidelityOrderViolated(lf, mf, tol) {
			lc, mc := less, more
			divs = append(divs, o.finish(ctx, Divergence{
				Class:    ClassFidelityOrder,
				Compiler: lc.Name() + ">" + mc.Name(),
				Input:    label,
				Detail: fmt.Sprintf("ablation %s fidelity %.6g beats %s fidelity %.6g beyond tolerance %g",
					lc.Name(), lf, mc.Name(), mf, tol),
			}, c, func(cand *circuit.Circuit) bool {
				a, b := o.compileOnce(ctx, lc, cand), o.compileOnce(ctx, mc, cand)
				return a.err == nil && b.err == nil &&
					fidelityOrderViolated(a.res.total, b.res.total, tol)
			}))
		}
	}
	return divs, ctx.Err()
}

// ablationChain orders the zac-family presets from least to most
// optimized; adjacent present entries are compared by the ordering check.
var ablationChain = []string{"zac-vanilla", "zac-dynplace", "zac-dynplace-reuse", "zac", "zac-advreuse"}

// presentChain filters the ablation chain to the oracle's compilers that
// compiled successfully, preserving chain order.
func presentChain(comps []compiler.Compiler, outs map[string]outcome) []compiler.Compiler {
	byName := map[string]compiler.Compiler{}
	for _, c := range comps {
		byName[c.Name()] = c
	}
	var chain []compiler.Compiler
	for _, n := range ablationChain {
		if c, ok := byName[n]; ok {
			if out, done := outs[n]; done && out.err == nil && out.res != nil {
				chain = append(chain, c)
			}
		}
	}
	return chain
}

// fidelityOrderViolated reports whether the less-optimized configuration's
// fidelity beats the more-optimized one's beyond tolerance. The comparison
// runs in log domain — fidelity = exp(−cost), costs are additive over a
// circuit, so heuristic gaps are a stable fraction of total cost where raw
// fidelity ratios amplify exponentially with depth. Non-finite or
// out-of-range fidelities are ClassSanity's job, not this check's.
func fidelityOrderViolated(less, more, tol float64) bool {
	if !(less > 0) || !(more > 0) || less > 1+1e-12 || more > 1+1e-12 {
		return false
	}
	costLess, costMore := -math.Log(less), -math.Log(more)
	return costMore-costLess > tol*costMore+fidelityAbsSlack
}

// determinismDetail compares two fresh compilations of the same input.
func determinismDetail(a, b outcome) string {
	switch {
	case (a.err == nil) != (b.err == nil):
		return fmt.Sprintf("repeat compile flipped outcome: %v vs %v", a.err, b.err)
	case a.err == nil && a.hash != b.hash:
		return fmt.Sprintf("repeat compile not byte-identical: %s vs %s", a.hash[:12], b.hash[:12])
	}
	return ""
}

// sanityDetail checks one result's internal consistency.
func sanityDetail(r *compileResult) string {
	for name, v := range r.breakdown {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1+1e-12 {
			return fmt.Sprintf("fidelity term %s = %g outside [0,1]", name, v)
		}
	}
	if r.duration < 0 || math.IsNaN(r.duration) || math.IsInf(r.duration, 0) {
		return fmt.Sprintf("negative or non-finite duration %g", r.duration)
	}
	if r.stages < 0 || r.totalMoves < 0 || r.reusedGates < 0 {
		return fmt.Sprintf("negative counters: stages=%d moves=%d reused=%d",
			r.stages, r.totalMoves, r.reusedGates)
	}
	return ""
}

// verifyDetail replays an emitted ZAIR program through the hardware
// verifier. Header-only programs (the analytic baselines) pass trivially.
func verifyDetail(r *compileResult) string {
	if r.program == nil || len(r.program.Instructions) == 0 {
		return ""
	}
	v := &zair.Verifier{Resolve: r.resolve}
	if err := v.Verify(r.program); err != nil {
		return err.Error()
	}
	return ""
}

// accountingDetail replays the program and cross-checks the result's
// resource counters: every qubit ends in exactly one distinct trap, and
// the instruction stream's individual qubit movements match the reported
// TotalMoves.
func accountingDetail(r *compileResult) string {
	if r.program == nil || len(r.program.Instructions) == 0 {
		return ""
	}
	final := zair.FinalPositions(r.program)
	if len(final) != r.program.NumQubits {
		return fmt.Sprintf("qubit conservation: %d of %d qubits have final positions",
			len(final), r.program.NumQubits)
	}
	traps := map[[3]int]int{}
	for q, l := range final {
		key := [3]int{l.A, l.R, l.C}
		if prev, taken := traps[key]; taken {
			return fmt.Sprintf("qubit conservation: qubits %d and %d end in the same trap %v", prev, q, key)
		}
		traps[key] = q
	}
	if moves := replayMoves(r.program); moves != r.totalMoves {
		return fmt.Sprintf("move accounting: program replays %d qubit movements, result reports %d",
			moves, r.totalMoves)
	}
	return ""
}

// replayMoves counts the individual qubit movements of the instruction
// stream: each rearrangement job moves each of its qubits once.
func replayMoves(p *zair.Program) int {
	n := 0
	for _, inst := range p.Instructions {
		if job, ok := inst.(zair.RearrangeJob); ok {
			n += len(job.Qubits())
		}
	}
	return n
}

// finish minimizes a divergence's circuit with the forge's shrinker, fills
// in the repro fields, and persists to the corpus directory when one is
// configured.
func (o *Oracle) finish(ctx context.Context, d Divergence, c *circuit.Circuit, stillFails func(*circuit.Circuit) bool) Divergence {
	red := c
	if !o.opts.NoShrink {
		red = workload.Shrink(c, func(cand *circuit.Circuit) bool {
			return ctx.Err() == nil && contained(stillFails)(cand)
		}, o.opts.maxShrinkChecks())
	}
	d.QASM = qasm.Write(red)
	d.Gates = len(red.Gates)
	if o.opts.CorpusDir != "" && ctx.Err() == nil {
		if p, err := writeRepro(o.opts.CorpusDir, d); err == nil {
			d.CorpusPath = p
		}
	}
	return d
}

// contained wraps a shrink predicate so panics on malformed candidates
// count as "still fails" being false rather than killing the run.
func contained(pred func(*circuit.Circuit) bool) func(*circuit.Circuit) bool {
	return func(c *circuit.Circuit) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		return pred(c)
	}
}
