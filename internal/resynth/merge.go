package resynth

import (
	"fmt"

	"zac/internal/circuit"
	"zac/internal/linalg"
)

// identityTol is the phase-invariant distance below which an accumulated 1Q
// unitary is considered the identity and elided.
const identityTol = 1e-9

// Optimize1Q merges runs of adjacent single-qubit gates on the same qubit
// into a single U3 by multiplying their 2×2 unitaries and re-extracting ZYZ
// angles; accumulated identities are dropped entirely. The input may contain
// arbitrary 1Q kinds; the output contains only {CZ, U3}.
func Optimize1Q(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.Name, c.NumQubits)
	pending := make([]linalg.Mat2, c.NumQubits)
	dirty := make([]bool, c.NumQubits)
	for q := range pending {
		pending[q] = linalg.Identity()
	}

	flush := func(q int) error {
		if !dirty[q] {
			return nil
		}
		m := pending[q]
		pending[q] = linalg.Identity()
		dirty[q] = false
		if m.IsIdentity(identityTol) {
			return nil
		}
		th, ph, la, err := linalg.ZYZ(m)
		if err != nil {
			return err
		}
		out.Append(circuit.U3, []int{q}, th, ph, la)
		return nil
	}

	for i, g := range c.Gates {
		switch {
		case g.Kind == circuit.Measure || g.Kind == circuit.Barrier:
			continue
		case len(g.Qubits) == 1:
			m, err := gateMatrix(g)
			if err != nil {
				return nil, fmt.Errorf("resynth: gate %d: %w", i, err)
			}
			q := g.Qubits[0]
			pending[q] = linalg.Mul(m, pending[q]) // later gate on the left
			dirty[q] = true
		case g.Kind == circuit.CZ || g.Kind == circuit.CCZ:
			for _, q := range g.Qubits {
				if err := flush(q); err != nil {
					return nil, err
				}
			}
			out.Append(g.Kind, g.Qubits)
		default:
			return nil, fmt.Errorf("resynth: Optimize1Q expects a {CZ,CCZ,1Q} circuit, found %s at %d", g.Kind, i)
		}
	}
	for q := 0; q < c.NumQubits; q++ {
		if err := flush(q); err != nil {
			return nil, err
		}
	}
	return out, nil
}
