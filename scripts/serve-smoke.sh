#!/bin/sh
# Smoke test for zac-serve: boot the service with a persistent cache dir,
# probe /healthz, POST a compile, read /metrics, then re-POST the same
# compile and require the response to be flagged as cached.
set -eu

ADDR="${ADDR:-127.0.0.1:8756}"
WORK="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/zac-serve" ./cmd/zac-serve
"$WORK/zac-serve" -addr "$ADDR" -cachedir "$WORK/cache" >"$WORK/serve.log" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "zac-serve never became healthy" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi

curl -fsS "http://$ADDR/healthz" | grep -q '"status": "ok"'
curl -fsS -X POST "http://$ADDR/v1/compile?zair=0" -d '{"circuit":"bv_n14"}' \
    | tee "$WORK/first.json" | grep -q '"fidelity"'
grep -q '"cached": false' "$WORK/first.json"
curl -fsS -X POST "http://$ADDR/v1/compile?zair=0" -d '{"circuit":"bv_n14"}' \
    | grep -q '"cached": true'
curl -fsS "http://$ADDR/metrics" | grep -q '"mem_hits": 1'

echo "serve-smoke: OK"
