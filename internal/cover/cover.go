// Package cover is the compiler's lightweight feature-coverage hook: a
// thread-safe counter set that pipeline passes and planner branches bump
// when an input exercises them, plumbed through context.Context so no
// signature in the hot path changes. It exists for the coverage-guided
// differential fuzzer (internal/difftest, `zac-fuzz -diff`): an input that
// reaches a feature no earlier input reached is worth keeping as a seed.
// Every call is nil-safe — compilations without a collector in their
// context (benchmarks, the service, the experiment harness) pay one nil
// check per recorded branch, nothing more.
package cover

import (
	"context"
	"sort"
	"sync"
)

// Set is a concurrency-safe feature → hit-count table. The zero value is
// not usable; construct with NewSet. A nil *Set is a valid no-op receiver
// for every method, so instrumented code never branches on collection
// being enabled.
type Set struct {
	mu     sync.Mutex
	counts map[string]uint64
}

// NewSet returns an empty collector.
func NewSet() *Set { return &Set{counts: map[string]uint64{}} }

// Hit records one occurrence of a feature. No-op on a nil receiver.
func (s *Set) Hit(feature string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counts[feature]++
	s.mu.Unlock()
}

// Counts returns a copy of the feature table. Nil receivers return nil.
func (s *Set) Counts() map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Features returns the sorted feature names seen so far.
func (s *Set) Features() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the feature has been hit at least once.
func (s *Set) Has(feature string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[feature] > 0
}

// Len returns the number of distinct features hit.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counts)
}

// Merge adds every count of other into s (other may be nil).
func (s *Set) Merge(other map[string]uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range other {
		s.counts[k] += v
	}
}

// Diff returns the features of s that baseline has never hit, sorted — the
// "did this input reach anything new" primitive of the mutation loop.
func (s *Set) Diff(baseline *Set) []string {
	if s == nil {
		return nil
	}
	var out []string
	for _, f := range s.Features() {
		if !baseline.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

type ctxKey struct{}

// With returns a context carrying the collector; instrumented code reached
// through it records features into s.
func With(ctx context.Context, s *Set) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From extracts the collector from a context, or nil when none is attached.
// The nil result is safe to call methods on.
func From(ctx context.Context) *Set {
	s, _ := ctx.Value(ctxKey{}).(*Set)
	return s
}
