package arch

import "testing"

func TestFingerprintStable(t *testing.T) {
	if Reference().Fingerprint() != Reference().Fingerprint() {
		t.Fatal("two Reference() instances must share a fingerprint")
	}
}

func TestFingerprintDistinguishesArchitectures(t *testing.T) {
	archs := map[string]*Architecture{
		"reference":  Reference(),
		"monolithic": Monolithic(),
		"triple":     ReferenceTriple(),
		"arch1":      Arch1Small(),
		"arch2":      Arch2TwoZones(),
		"logical832": Logical832(),
		"2aod":       WithAODs(Reference(), 2),
		"4aod":       WithAODs(Reference(), 4),
	}
	seen := map[string]string{}
	for name, a := range archs {
		fp := a.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s and %s share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestFingerprintSeesUnserializedFields(t *testing.T) {
	a := Reference()
	base := a.Fingerprint()
	a.MovementAccel = 1234
	if a.Fingerprint() == base {
		t.Error("MovementAccel change must alter the fingerprint")
	}
	a.MovementAccel = 0
	a.ZoneSep *= 2
	if a.Fingerprint() == base {
		t.Error("ZoneSep change must alter the fingerprint")
	}
}
