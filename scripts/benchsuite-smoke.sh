#!/usr/bin/env bash
# benchsuite-smoke.sh — CI smoke of the performance observatory.
#
# Exercises the whole loop against a throwaway store: a 1-repetition-scale
# smoke matrix populates the store, a second run makes a trend query span
# both runs, the regression gate passes a noise-only rerun, flags a seeded
# 2× slowdown (-handicap 2), and the report/export surfaces render. Noise
# margins are deliberately wide (threshold 35%) because back-to-back runs
# on shared CI runners jitter; the seeded slowdown is +100%, far beyond any
# margin.
set -euo pipefail
cd "$(dirname "$0")/.."

TOOLDIR="$(mktemp -d)"
STORE="$TOOLDIR/store"
BIN="$TOOLDIR/zac-benchsuite"
trap 'rm -rf "$TOOLDIR"' EXIT

go build -o "$BIN" ./cmd/zac-benchsuite

echo "benchsuite-smoke: run 1 (smokeA)" >&2
"$BIN" run -smoke -store "$STORE" -commit smokeA >&2
echo "benchsuite-smoke: run 2 (smokeB)" >&2
"$BIN" run -smoke -store "$STORE" -commit smokeB >&2

echo "benchsuite-smoke: trend must span both runs" >&2
TREND="$("$BIN" trend -store "$STORE" -case micro/jv_dense -last 10)"
echo "$TREND" >&2
echo "$TREND" | grep -q smokeA
echo "$TREND" | grep -q smokeB

# The gate demonstrations restrict to the JV kernels: at smoke repetition
# counts the millisecond-scale compile cells jitter tens of percent on a
# loaded runner, while the inner-loop-folded kernels stay within a few
# percent — and the seeded slowdown is +100% regardless.
KERNELS='micro/jv_dense,micro/jv_sparse'

echo "benchsuite-smoke: noise-only gate (smokeA → smokeB) must pass" >&2
"$BIN" gate -store "$STORE" -baseline smokeA -current smokeB -cases "$KERNELS" -threshold 35 -min-delta 30 >&2

echo "benchsuite-smoke: seeded 2× slowdown (smokeC) must be flagged" >&2
"$BIN" run -smoke -store "$STORE" -commit smokeC -handicap 2 >&2
GATE=0
"$BIN" gate -store "$STORE" -baseline smokeB -current smokeC -cases "$KERNELS" -threshold 35 >&2 || GATE=$?
if [ "$GATE" -ne 1 ]; then
  echo "benchsuite-smoke: FAILED — seeded 2× slowdown gate exited $GATE, want 1" >&2
  exit 1
fi

echo "benchsuite-smoke: report + export surfaces" >&2
"$BIN" report -store "$STORE" -format md | grep -q 'micro/jv_dense'
"$BIN" report -store "$STORE" -format html -o "$TOOLDIR/report.html" >&2
grep -q '<table>' "$TOOLDIR/report.html"
"$BIN" export -store "$STORE" -commit smokeB | grep -q BenchmarkJVDense

echo "benchsuite-smoke: ok" >&2
