package workload

import (
	"context"
	"errors"
	"strings"
	"testing"

	"zac/internal/circuit"
	"zac/internal/compiler"
)

// TestRoundTripSmoke runs the pinned CI specs through the zac compiler (the
// full registry pass is `make fuzz-smoke`; one compiler keeps the unit test
// fast while still exercising generate → qasm → resynth → compile → verify).
func TestRoundTripSmoke(t *testing.T) {
	for _, spec := range SmokeSpecs() {
		failures, err := RoundTrip(context.Background(), spec, FuzzOptions{Compilers: []string{"zac"}})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, f := range failures {
			t.Errorf("%s", f)
		}
	}
}

// TestRoundTripAllCompilersOneSpec exercises the whole registry on one tiny
// spec, the shape of the fuzz-smoke CI gate.
func TestRoundTripAllCompilersOneSpec(t *testing.T) {
	failures, err := RoundTrip(context.Background(), "rb:n=6,depth=3,seed=7", FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("%s", f)
	}
}

func TestRoundTripUnknownSpec(t *testing.T) {
	failures, err := RoundTrip(context.Background(), "frobnicate:n=4", FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].Stage != "generate" {
		t.Fatalf("failures = %+v, want one generate-stage failure", failures)
	}
}

func TestRoundTripUnknownCompiler(t *testing.T) {
	if _, err := RoundTrip(context.Background(), "rb", FuzzOptions{Compilers: []string{"bogus"}}); err == nil {
		t.Fatal("expected harness error for unknown compiler")
	}
}

// TestShrinkMinimizesPlantedBug plants a detectable "bug" (a marker CZ pair)
// inside a large random circuit and checks the shrinker isolates it.
func TestShrinkMinimizesPlantedBug(t *testing.T) {
	c, err := Build("clifford:n=12,gates=200,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	// Plant a marker gate the clifford family never emits; the predicate is
	// position- and index-insensitive, as compiler invariant checks are.
	c.Gates = append(c.Gates[:100:100], append([]circuit.Gate{circuit.NewGate(circuit.CSWAP, []int{2, 9, 5})}, c.Gates[100:]...)...)
	fails := func(cand *circuit.Circuit) bool {
		for _, g := range cand.Gates {
			if g.Kind == circuit.CSWAP {
				return true
			}
		}
		return false
	}
	got := Shrink(c, fails, 500)
	if !fails(got) {
		t.Fatal("shrink lost the failure")
	}
	if len(got.Gates) != 1 {
		t.Fatalf("shrink left %d gates, want 1", len(got.Gates))
	}
	if got.NumQubits != 3 {
		t.Fatalf("shrink left %d qubits, want 3 after compaction", got.NumQubits)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("shrunk circuit invalid: %v", err)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	c, err := Build("clifford:n=8,gates=120,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	checks := 0
	Shrink(c, func(*circuit.Circuit) bool { checks++; return true }, 25)
	if checks > 25 {
		t.Fatalf("predicate ran %d times, budget 25", checks)
	}
}

// TestContainedRecoversPanics pins the fuzzer's panic containment: a
// panicking check becomes a reportable error, not a crashed run.
func TestContainedRecoversPanics(t *testing.T) {
	check := contained(func(*circuit.Circuit) error { panic("boom") })
	err := check(circuit.New("x", 1))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}

func TestRandomSpecReproducible(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 20; i++ {
		sa, sb := RandomSpec(a), RandomSpec(b)
		if sa.Canonical() != sb.Canonical() {
			t.Fatalf("draw %d: %s vs %s", i, sa.Canonical(), sb.Canonical())
		}
		if _, err := Parse(sa.Canonical()); err != nil {
			t.Fatalf("draw %d: random spec %s invalid: %v", i, sa.Canonical(), err)
		}
	}
}

func TestRoundTripCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RoundTrip(ctx, "rb:n=6,depth=3,seed=1", FuzzOptions{Compilers: []string{"zac"}})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}

// TestSmokeSpecsStayInRegistry guards the CI gate's pinned specs against
// family renames.
func TestSmokeSpecsStayInRegistry(t *testing.T) {
	if len(compiler.Names()) == 0 {
		t.Fatal("empty compiler registry")
	}
	for _, s := range SmokeSpecs() {
		if _, err := Parse(s); err != nil {
			t.Errorf("smoke spec %q: %v", s, err)
		}
	}
}
