// Package telemetry is the request-scoped span tracer of the service
// surfaces: a zero-dependency, context-carried tree of timed spans that
// answers "why was *this* compile slow" — admission wait, cache tier probed,
// which pipeline pass, which parallel kernel. It complements the process-wide
// aggregates of /metrics (which say *that* something is slow, averaged) with
// per-request structure, the way internal/cover complements tests and
// internal/faultinject complements chaos suites: a value carried in a
// context.Context, nil-safe at every call site, so code without a recorder in
// scope pays one nil check and no allocation.
//
// A Recorder owns a bounded ring of recent traces. Recorder.StartTrace roots
// a new trace in a context; telemetry.Start nests a child span under the
// context's current span; Span.Set attaches key=value attributes;
// Span.End completes the span into its trace. Completed traces are
// exportable as JSON trees (TraceData, served by zac-serve's /v1/traces), as
// Chrome trace_event JSON loadable in Perfetto/chrome://tracing
// (ChromeTrace), and as indented text (TreeString, printed by `zac
// -telemetry`).
//
// Naming: internal/trace renders compiled ZAIR programs as hardware
// timelines (what the *quantum machine* does); this package traces the
// compiler service itself (what the *software* does). The two are unrelated.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	// Key names the attribute ("tier", "compiler", "winner", …).
	Key string `json:"key"`
	// Value is the attribute's rendered value.
	Value string `json:"value"`
}

// SpanData is one completed span in a trace's exported view.
type SpanData struct {
	// Seq is the span's creation order within its trace (1 = root). Parents
	// are always created before their children, so sorting by Seq yields a
	// valid tree order.
	Seq uint64 `json:"seq"`
	// Parent is the Seq of the enclosing span (0 for the root).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the span's operation name ("pass.place", "cache.disk", …).
	Name string `json:"name"`
	// StartUS is the span's start in microseconds since the trace started.
	StartUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Attrs holds the span's key=value annotations, in Set order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// TraceData is one trace's exported view: identity, timing, and the
// completed spans in creation order.
type TraceData struct {
	// ID is the trace identifier echoed in compile responses.
	ID string `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is the trace's wall-clock start time.
	Start time.Time `json:"start"`
	// DurUS is the root span's duration in microseconds (0 while running).
	DurUS int64 `json:"dur_us"`
	// Done reports that the root span has ended.
	Done bool `json:"done"`
	// Spans holds every completed span, sorted by Seq.
	Spans []SpanData `json:"spans,omitempty"`
	// DroppedSpans counts spans discarded because the trace hit its span cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// TraceSummary is the listing view of a trace: TraceData without the spans.
type TraceSummary struct {
	// ID is the trace identifier.
	ID string `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is the trace's wall-clock start time.
	Start time.Time `json:"start"`
	// DurUS is the root span's duration in microseconds (0 while running).
	DurUS int64 `json:"dur_us"`
	// Done reports that the root span has ended.
	Done bool `json:"done"`
	// Spans counts the trace's completed spans.
	Spans int `json:"spans"`
}

// trace is one request's span tree under construction.
type trace struct {
	id    string
	name  string
	start time.Time

	nextSeq atomic.Uint64

	mu      sync.Mutex
	spans   []SpanData
	maxSpan int
	dropped int
	done    bool
	durUS   int64
}

// Span is one timed operation in flight. A nil *Span is a valid no-op
// receiver for every method, so instrumented code never branches on tracing
// being enabled.
type Span struct {
	tr     *trace
	seq    uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Recorder retains the most recent traces in a bounded ring. A nil *Recorder
// is a valid no-op receiver: StartTrace returns the context unchanged and a
// nil span, so surfaces with telemetry disabled pay nothing.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	maxSpans int
	traces   []*trace // oldest first
}

// DefaultCapacity is the trace-ring bound NewRecorder applies when the
// caller passes a non-positive capacity.
const DefaultCapacity = 256

// maxSpansPerTrace bounds one trace's span count so a pathological request
// (thousands of stages) cannot grow memory unboundedly; spans beyond the cap
// are counted in TraceData.DroppedSpans instead of retained.
const maxSpansPerTrace = 4096

// NewRecorder returns a Recorder retaining at most capacity traces
// (non-positive selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity, maxSpans: maxSpansPerTrace}
}

// idSeq and idBase make trace IDs unique within a process and overwhelmingly
// unlikely to collide across restarts (the base mixes the process start
// time).
var (
	idSeq  atomic.Uint64
	idBase = uint64(time.Now().UnixNano())
)

// splitmix64 is the 64-bit finalizer used to turn the (base, seq) pair into
// a well-mixed trace ID.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newTraceID returns a fresh 16-hex-digit trace identifier.
func newTraceID() string {
	return fmt.Sprintf("%016x", splitmix64(idBase+idSeq.Add(1)))
}

// ctxKey carries the current *Span in a context.
type ctxKey struct{}

// StartTrace roots a new trace named name in ctx and returns the derived
// context plus the root span. The trace joins the recorder's ring
// immediately, so in-flight requests are already listable. On a nil
// recorder it returns (ctx, nil).
func (r *Recorder) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	tr := &trace{id: newTraceID(), name: name, start: time.Now(), maxSpan: r.maxSpans}
	r.mu.Lock()
	if len(r.traces) >= r.capacity {
		n := copy(r.traces, r.traces[len(r.traces)-r.capacity+1:])
		r.traces = r.traces[:n]
	}
	r.traces = append(r.traces, tr)
	r.mu.Unlock()
	sp := tr.newSpan(name, 0)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// From returns the context's current span, or nil when the context carries
// no trace. The nil result is safe to call every Span method on.
func From(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span of the context's current span and returns the
// derived context (carrying the child) plus the span. Contexts without a
// trace return (ctx, nil) — one Value lookup, no allocation.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := From(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.newSpan(name, parent.seq)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Event records an instantaneous child span (zero duration) with the given
// alternating key, value attribute pairs. No-op without a trace in ctx.
func Event(ctx context.Context, name string, kv ...string) {
	parent := From(ctx)
	if parent == nil {
		return
	}
	sp := parent.tr.newSpan(name, parent.seq)
	for i := 0; i+1 < len(kv); i += 2 {
		sp.Set(kv[i], kv[i+1])
	}
	sp.End()
}

// newSpan allocates the next span of the trace.
func (t *trace) newSpan(name string, parent uint64) *Span {
	return &Span{tr: t, seq: t.nextSeq.Add(1), parent: parent, name: name, start: time.Now()}
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Set attaches a key=value attribute to the span. No-op on nil or ended
// spans.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute to the span.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.Set(key, strconv.Itoa(v))
}

// SetBool attaches a boolean attribute to the span.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.Set(key, strconv.FormatBool(v))
}

// End completes the span into its trace. Ending the root span marks the
// trace done. Safe to call multiple times; only the first End records.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	t := s.tr
	data := SpanData{
		Seq:     s.seq,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(t.start).Microseconds(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Attrs:   attrs,
	}
	t.mu.Lock()
	if len(t.spans) < t.maxSpan {
		t.spans = append(t.spans, data)
	} else {
		t.dropped++
	}
	if s.parent == 0 {
		t.done = true
		t.durUS = now.Sub(t.start).Microseconds()
	}
	t.mu.Unlock()
}

// data snapshots the trace's exported view.
func (t *trace) data(withSpans bool) TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	td := TraceData{
		ID: t.id, Name: t.name, Start: t.start,
		DurUS: t.durUS, Done: t.done, DroppedSpans: t.dropped,
	}
	if withSpans {
		td.Spans = append([]SpanData(nil), t.spans...)
		sort.Slice(td.Spans, func(i, j int) bool { return td.Spans[i].Seq < td.Spans[j].Seq })
	}
	return td
}

// Traces lists the retained traces' summaries, most recent first.
func (r *Recorder) Traces() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	snap := append([]*trace(nil), r.traces...)
	r.mu.Unlock()
	out := make([]TraceSummary, 0, len(snap))
	for i := len(snap) - 1; i >= 0; i-- {
		t := snap[i]
		t.mu.Lock()
		out = append(out, TraceSummary{
			ID: t.id, Name: t.name, Start: t.start,
			DurUS: t.durUS, Done: t.done, Spans: len(t.spans),
		})
		t.mu.Unlock()
	}
	return out
}

// Get returns one retained trace's full view by ID.
func (r *Recorder) Get(id string) (TraceData, bool) {
	if r == nil {
		return TraceData{}, false
	}
	r.mu.Lock()
	var found *trace
	for _, t := range r.traces {
		if t.id == id {
			found = t
			break
		}
	}
	r.mu.Unlock()
	if found == nil {
		return TraceData{}, false
	}
	return found.data(true), true
}

// Dump returns every retained trace's full view, oldest first — the shape
// `zac-serve -traceout` writes at shutdown.
func (r *Recorder) Dump() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	snap := append([]*trace(nil), r.traces...)
	r.mu.Unlock()
	out := make([]TraceData, 0, len(snap))
	for _, t := range snap {
		out = append(out, t.data(true))
	}
	return out
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// TreeString renders a trace as an indented text tree, one line per span
// with its duration and attributes — the `zac -telemetry` output.
func TreeString(td TraceData) string {
	children := map[uint64][]SpanData{}
	for _, sp := range td.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", td.ID)
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, sp := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s %s", sp.Name, time.Duration(sp.DurUS)*time.Microsecond)
			for _, a := range sp.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
			}
			b.WriteByte('\n')
			walk(sp.Seq, depth+1)
		}
	}
	walk(0, 0)
	if td.DroppedSpans > 0 {
		fmt.Fprintf(&b, "(%d spans dropped)\n", td.DroppedSpans)
	}
	return b.String()
}
