module zac

go 1.24
