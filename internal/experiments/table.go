// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII–§IX): each runner compiles the benchmark suite under the
// relevant compilers/architectures and returns the same rows or series the
// paper reports, as plain-text tables and CSV.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"zac/internal/fidelity"
)

// Table is a named grid of per-circuit values with fixed column order.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one benchmark's values.
type Row struct {
	Circuit string
	Values  map[string]float64
}

// AddRow appends a row.
func (t *Table) AddRow(circuit string, values map[string]float64) {
	t.Rows = append(t.Rows, Row{Circuit: circuit, Values: values})
}

// GeoMeanRow computes the per-column geometric mean over all rows, matching
// the paper's summary statistic.
func (t *Table) GeoMeanRow() Row {
	vals := map[string]float64{}
	for _, col := range t.Columns {
		var xs []float64
		for _, r := range t.Rows {
			if v, ok := r.Values[col]; ok {
				xs = append(xs, v)
			}
		}
		vals[col] = fidelity.GeoMean(xs)
	}
	return Row{Circuit: "GMean", Values: vals}
}

// Render returns an aligned plain-text table with a trailing GMean row.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	rows := append([]Row{}, t.Rows...)
	if len(rows) > 1 {
		rows = append(rows, t.GeoMeanRow())
	}
	width := len("circuit")
	for _, r := range rows {
		if len(r.Circuit) > width {
			width = len(r.Circuit)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "circuit")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Circuit)
		for _, c := range t.Columns {
			v, ok := r.Values[c]
			if !ok {
				fmt.Fprintf(&b, "%16s", "-")
				continue
			}
			fmt.Fprintf(&b, "%16s", formatValue(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av < 1e-4 || av >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case av < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the table as comma-separated values (with a GMean row).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("circuit")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteByte('\n')
	rows := append([]Row{}, t.Rows...)
	if len(rows) > 1 {
		rows = append(rows, t.GeoMeanRow())
	}
	for _, r := range rows {
		b.WriteString(r.Circuit)
		for _, c := range t.Columns {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is an experiment entry point: it compiles the benchmark subset
// (nil = the experiment's default suite) through the engine described by cfg
// and returns the paper's tables.
type Runner func(ctx context.Context, cfg Config, subset []string) ([]*Table, error)

// Registry names every experiment the harness can run.
func Registry() []string {
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a named experiment sequentially over the given benchmark
// subset (nil = full suite) and returns its tables. It is the
// backward-compatible wrapper over RunWith.
func Run(name string, subset []string) ([]*Table, error) {
	return RunWith(context.Background(), Sequential(), name, subset)
}

// RunWith executes a named experiment through the parallel engine: per
// (circuit, compiler) compilations fan out over cfg.Parallel workers and
// shared compilations are served from the process-wide cache. The returned
// tables are identical for every worker count.
func RunWith(ctx context.Context, cfg Config, name string, subset []string) ([]*Table, error) {
	r, ok := runners[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Registry())
	}
	return r(ctx, cfg, subset)
}

var runners = map[string]Runner{
	"table1":    Table1,
	"fig1c":     Fig1c,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"table2":    Table2,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"fig14":     Fig14,
	"multizone": MultiZone,
	"ftqc":      FTQC,
	"zair":      ZAIRStats,
	"advreuse":  AdvReuse,
	"sweep":     Sweep,
	"workloads": Workloads,
	"forge":     Forge,
	"nativeccz": NativeCCZ,
	"compilers": Compilers,
}
