package resynth

import (
	"math"
	"math/rand"
	"testing"

	"zac/internal/circuit"
	"zac/internal/sim"
)

// checkEquivalent verifies that original and rewritten circuits produce the
// same statevector up to global phase.
func checkEquivalent(t *testing.T, orig, rewritten *circuit.Circuit) {
	t.Helper()
	sa, err := sim.Run(orig)
	if err != nil {
		t.Fatalf("sim original: %v", err)
	}
	sb, err := sim.Run(rewritten)
	if err != nil {
		t.Fatalf("sim rewritten: %v", err)
	}
	if f := sim.FidelityUpToPhase(sa, sb); math.Abs(f-1) > 1e-7 {
		t.Fatalf("circuits not equivalent: fidelity %v\noriginal: %v\nrewritten: %v", f, orig.Gates, rewritten.Gates)
	}
}

func TestDecomposeOnlyNativeGates(t *testing.T) {
	c := circuit.New("mix", 3)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.CCX, []int{0, 1, 2})
	c.Append(circuit.SWAP, []int{1, 2})
	c.Append(circuit.RZZ, []int{0, 1}, 0.4)
	d, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range d.Gates {
		if g.Kind != circuit.U3 && g.Kind != circuit.CZ {
			t.Fatalf("gate %d has non-native kind %s", i, g.Kind)
		}
	}
}

func TestDecomposeEquivalenceAllKinds(t *testing.T) {
	mk := func(build func(c *circuit.Circuit)) *circuit.Circuit {
		c := circuit.New("t", 3)
		// Non-trivial input state so diagonal errors are visible.
		c.Append(circuit.H, []int{0})
		c.Append(circuit.H, []int{1})
		c.Append(circuit.H, []int{2})
		c.Append(circuit.T, []int{0})
		c.Append(circuit.S, []int{1})
		build(c)
		return c
	}
	cases := map[string]func(c *circuit.Circuit){
		"x":     func(c *circuit.Circuit) { c.Append(circuit.X, []int{0}) },
		"y":     func(c *circuit.Circuit) { c.Append(circuit.Y, []int{1}) },
		"z":     func(c *circuit.Circuit) { c.Append(circuit.Z, []int{2}) },
		"sdg":   func(c *circuit.Circuit) { c.Append(circuit.Sdg, []int{0}) },
		"tdg":   func(c *circuit.Circuit) { c.Append(circuit.Tdg, []int{0}) },
		"rx":    func(c *circuit.Circuit) { c.Append(circuit.RX, []int{0}, 0.7) },
		"ry":    func(c *circuit.Circuit) { c.Append(circuit.RY, []int{1}, -1.2) },
		"rz":    func(c *circuit.Circuit) { c.Append(circuit.RZ, []int{2}, 2.1) },
		"u1":    func(c *circuit.Circuit) { c.Append(circuit.U1, []int{0}, 0.3) },
		"u2":    func(c *circuit.Circuit) { c.Append(circuit.U2, []int{1}, 0.4, 1.1) },
		"cx":    func(c *circuit.Circuit) { c.Append(circuit.CX, []int{0, 1}) },
		"cy":    func(c *circuit.Circuit) { c.Append(circuit.CY, []int{1, 2}) },
		"cz":    func(c *circuit.Circuit) { c.Append(circuit.CZ, []int{0, 2}) },
		"swap":  func(c *circuit.Circuit) { c.Append(circuit.SWAP, []int{0, 2}) },
		"cp":    func(c *circuit.Circuit) { c.Append(circuit.CP, []int{0, 1}, 0.9) },
		"crx":   func(c *circuit.Circuit) { c.Append(circuit.CRX, []int{0, 1}, 1.3) },
		"cry":   func(c *circuit.Circuit) { c.Append(circuit.CRY, []int{1, 2}, -0.8) },
		"crz":   func(c *circuit.Circuit) { c.Append(circuit.CRZ, []int{0, 2}, 0.5) },
		"rzz":   func(c *circuit.Circuit) { c.Append(circuit.RZZ, []int{1, 2}, 1.7) },
		"rxx":   func(c *circuit.Circuit) { c.Append(circuit.RXX, []int{0, 1}, 0.6) },
		"ccx":   func(c *circuit.Circuit) { c.Append(circuit.CCX, []int{0, 1, 2}) },
		"ccz":   func(c *circuit.Circuit) { c.Append(circuit.CCZ, []int{0, 1, 2}) },
		"cswap": func(c *circuit.Circuit) { c.Append(circuit.CSWAP, []int{0, 1, 2}) },
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			orig := mk(build)
			dec, err := Decompose(orig)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, orig, dec)
		})
	}
}

func TestOptimize1QMergesRuns(t *testing.T) {
	c := circuit.New("runs", 1)
	c.Append(circuit.U3, []int{0}, 0.3, 0.1, 0.2)
	c.Append(circuit.U3, []int{0}, 1.1, -0.4, 0.9)
	c.Append(circuit.U3, []int{0}, 0.2, 0.0, -1.0)
	opt, err := Optimize1Q(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Gates) != 1 {
		t.Fatalf("expected single merged U3, got %d gates", len(opt.Gates))
	}
	checkEquivalent(t, c, opt)
}

func TestOptimize1QDropsIdentity(t *testing.T) {
	c := circuit.New("id", 2)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.H, []int{0}) // H·H = I
	dec, _ := Decompose(c)
	opt, err := Optimize1Q(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Gates) != 0 {
		t.Fatalf("H·H should vanish, got %v", opt.Gates)
	}
}

func TestOptimize1QKeepsCZBoundary(t *testing.T) {
	c := circuit.New("boundary", 2)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.CZ, []int{0, 1})
	c.Append(circuit.H, []int{0}) // must NOT merge across CZ
	dec, _ := Decompose(c)
	opt, err := Optimize1Q(dec)
	if err != nil {
		t.Fatal(err)
	}
	one, two := opt.CountByArity()
	if two != 1 || one != 2 {
		t.Fatalf("expected 2 U3 + 1 CZ, got %d U3 %d CZ: %v", one, two, opt.Gates)
	}
	checkEquivalent(t, c, opt)
}

func TestScheduleStructure(t *testing.T) {
	// The paper's running example (Fig. 4 shape): stages alternate and every
	// qubit appears at most once per stage.
	c := circuit.New("fig4", 6)
	for q := 0; q < 6; q++ {
		c.Append(circuit.H, []int{q})
	}
	c.Append(circuit.CX, []int{0, 1})
	c.Append(circuit.CX, []int{3, 4})
	c.Append(circuit.H, []int{0})
	c.Append(circuit.CX, []int{1, 2})
	c.Append(circuit.CX, []int{3, 5})
	c.Append(circuit.CX, []int{0, 4})
	st, err := Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	ryd := st.RydbergStages()
	if len(ryd) != 2 {
		t.Fatalf("expected 2 Rydberg stages (paper example), got %d", len(ryd))
	}
	// First Rydberg stage must hold 2 gates, second 3 (gates (0,1),(3,4) then
	// (1,2),(3,5),(0,4)).
	if n := len(st.Stages[ryd[0]].Gates); n != 2 {
		t.Errorf("stage 1 has %d gates, want 2", n)
	}
	if n := len(st.Stages[ryd[1]].Gates); n != 3 {
		t.Errorf("stage 2 has %d gates, want 3", n)
	}
}

func TestPreprocessEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	kinds := []circuit.Kind{
		circuit.H, circuit.X, circuit.T, circuit.S, circuit.RX, circuit.RZ,
		circuit.CX, circuit.CZ, circuit.SWAP, circuit.CP, circuit.CCX, circuit.RZZ,
	}
	for iter := 0; iter < 30; iter++ {
		n := 2 + r.Intn(4)
		c := circuit.New("rand", n)
		for g := 0; g < 25; g++ {
			k := kinds[r.Intn(len(kinds))]
			if k.NumQubits() > n {
				continue
			}
			qs := r.Perm(n)[:k.NumQubits()]
			var params []float64
			for p := 0; p < k.NumParams(); p++ {
				params = append(params, (r.Float64()-0.5)*2*math.Pi)
			}
			c.Append(k, qs, params...)
		}
		st, err := Preprocess(c)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		checkEquivalent(t, c, st.Flatten())
	}
}

func TestPreprocessCountsReasonable(t *testing.T) {
	// A GHZ-10: expect 9 CZ and ~2n U3 after optimization.
	n := 10
	c := circuit.New("ghz", n)
	c.Append(circuit.H, []int{0})
	for i := 0; i < n-1; i++ {
		c.Append(circuit.CX, []int{i, i + 1})
	}
	st, err := Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	one, two := st.GateCounts()
	if two != n-1 {
		t.Errorf("CZ count = %d, want %d", two, n-1)
	}
	if one == 0 || one > 3*n {
		t.Errorf("suspicious U3 count %d", one)
	}
	// GHZ is sequential: every CZ is its own Rydberg stage.
	if got := st.NumRydbergStages(); got != n-1 {
		t.Errorf("Rydberg stages = %d, want %d", got, n-1)
	}
}

func TestScheduleRejectsForeignKinds(t *testing.T) {
	c := circuit.New("bad", 2)
	c.Append(circuit.CX, []int{0, 1})
	if _, err := Schedule(c); err == nil {
		t.Fatal("Schedule should reject non-{CZ,U3} circuits")
	}
}

func TestDecomposeDropsNonUnitary(t *testing.T) {
	c := circuit.New("m", 1)
	c.Append(circuit.H, []int{0})
	c.Append(circuit.Measure, []int{0})
	d, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.Gates {
		if g.Kind == circuit.Measure {
			t.Fatal("measure not dropped")
		}
	}
}
