// The registry-side extension of the golden determinism suite: ZAC output
// routed through the compiler registry and the pass pipeline must stay
// byte-identical to the plans and programs pinned in
// testdata/determinism.golden. It lives in an external test package because
// internal/compiler imports core.
package core_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/engine"
	"zac/internal/place"
	"zac/internal/resynth"
)

func goldenHashes(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile("testdata/determinism.golden")
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

func sha(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestRegistryMatchesGolden compiles the golden corpus through the
// registry's zac compiler — with pass-artifact memoization active, the
// exact serve/harness configuration — and checks plan and ZAIR hashes
// against the same golden file TestGoldenDeterminism pins, so the registry
// seam provably cannot drift from the direct core entry point.
func TestRegistryMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus compiles the five-circuit subset; skipped in -short")
	}
	want := goldenHashes(t)
	zc, err := compiler.Get("zac")
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Reference()
	arts := compiler.NewArtifacts(engine.NewTiered(0))
	for _, name := range []string{"bv_n14", "ghz_n23", "ising_n42", "qft_n18", "wstate_n27"} {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		staged, err := resynth.Preprocess(bm.Build())
		if err != nil {
			t.Fatal(err)
		}
		res, err := zc.Compile(context.Background(), staged, a, compiler.Options{Key: name, Artifacts: arts})
		if err != nil {
			t.Fatal(err)
		}
		planHash := sha(t, struct {
			Initial []arch.TrapRef
			Steps   []place.Step
		}{res.Plan.Initial, res.Plan.Steps})
		if g := want["plan/"+name+"/"+core.SettingSADynPlaceReuse]; g != planHash {
			t.Errorf("%s: plan hash through registry differs from golden\n  golden:  %s\n  current: %s", name, g, planHash)
		}
		progHash := sha(t, res.Program)
		if g := want["zair/"+name+"/"+core.SettingSADynPlaceReuse]; g != progHash {
			t.Errorf("%s: ZAIR hash through registry differs from golden\n  golden:  %s\n  current: %s", name, g, progHash)
		}
	}
}
