package arch

import (
	"encoding/json"
	"fmt"

	"zac/internal/geom"
)

// The JSON format follows the paper artifact's architecture specification
// (Fig. 20). The artifact spells some keys idiosyncratically
// ("site_seperation", and "dimenstion" in one place); we accept both the
// artifact spellings and the corrected ones on input, and emit the artifact
// spellings for compatibility.

type jsonSLM struct {
	ID       int        `json:"id"`
	SiteSep  []float64  `json:"site_seperation"`
	SiteSep2 []float64  `json:"site_separation,omitempty"`
	R        int        `json:"r"`
	C        int        `json:"c"`
	Location [2]float64 `json:"location"`
}

type jsonZone struct {
	ZoneID     int        `json:"zone_id"`
	SLMs       []jsonSLM  `json:"slms"`
	Offset     [2]float64 `json:"offset"`
	Dimension  []float64  `json:"dimension,omitempty"`
	Dimenstion []float64  `json:"dimenstion,omitempty"` // artifact spelling
}

type jsonAOD struct {
	ID      int     `json:"id"`
	SiteSep float64 `json:"site_seperation"`
	R       int     `json:"r"`
	C       int     `json:"c"`
}

type jsonArch struct {
	Name         string             `json:"name"`
	OpDur        map[string]float64 `json:"operation_duration"`
	OpFid        map[string]float64 `json:"operation_fidelity"`
	Qubit        map[string]float64 `json:"qubit_spec"`
	Storage      []jsonZone         `json:"storage_zones"`
	Entangle     []jsonZone         `json:"entanglement_zones"`
	Readout      []jsonZone         `json:"readout_zones,omitempty"`
	AODs         []jsonAOD          `json:"aods"`
	ArchRange    [][]float64        `json:"arch_range,omitempty"`
	RydbergRange [][][]float64      `json:"rydberg_range,omitempty"`
}

func zoneToJSON(z Zone) jsonZone {
	jz := jsonZone{
		ZoneID:    z.ID,
		Offset:    [2]float64{z.Offset.X, z.Offset.Y},
		Dimension: []float64{z.Dim.X, z.Dim.Y},
	}
	for _, s := range z.SLMs {
		jz.SLMs = append(jz.SLMs, jsonSLM{
			ID:       s.ID,
			SiteSep:  []float64{s.SepX, s.SepY},
			R:        s.Rows,
			C:        s.Cols,
			Location: [2]float64{s.Offset.X, s.Offset.Y},
		})
	}
	return jz
}

func zoneFromJSON(jz jsonZone, kind ZoneKind) (Zone, error) {
	dim := jz.Dimension
	if len(dim) == 0 {
		dim = jz.Dimenstion
	}
	if len(dim) != 2 {
		return Zone{}, fmt.Errorf("arch: zone %d: missing or malformed dimension", jz.ZoneID)
	}
	z := Zone{
		ID:     jz.ZoneID,
		Kind:   kind,
		Offset: geom.Point{X: jz.Offset[0], Y: jz.Offset[1]},
		Dim:    geom.Point{X: dim[0], Y: dim[1]},
	}
	for _, s := range jz.SLMs {
		sep := s.SiteSep
		if len(sep) == 0 {
			sep = s.SiteSep2
		}
		if len(sep) != 2 {
			return Zone{}, fmt.Errorf("arch: zone %d SLM %d: malformed site separation", jz.ZoneID, s.ID)
		}
		z.SLMs = append(z.SLMs, SLMArray{
			ID: s.ID, SepX: sep[0], SepY: sep[1],
			Rows: s.R, Cols: s.C,
			Offset: geom.Point{X: s.Location[0], Y: s.Location[1]},
		})
	}
	return z, nil
}

// MarshalJSON encodes the architecture in the artifact's JSON format.
func (a *Architecture) MarshalJSON() ([]byte, error) {
	ja := jsonArch{
		Name: a.Name,
		OpDur: map[string]float64{
			"rydberg":       a.Times.Rydberg,
			"1qGate":        a.Times.OneQGate,
			"atom_transfer": a.Times.AtomTransfer,
		},
		OpFid: map[string]float64{
			"two_qubit_gate":    a.Fidelities.TwoQubit,
			"single_qubit_gate": a.Fidelities.SingleQubit,
			"atom_transfer":     a.Fidelities.AtomTransfer,
			"excitation":        a.Fidelities.Excitation,
		},
		Qubit: map[string]float64{"T": a.T2},
	}
	for _, z := range a.Storage {
		ja.Storage = append(ja.Storage, zoneToJSON(z))
	}
	for _, z := range a.Entanglement {
		ja.Entangle = append(ja.Entangle, zoneToJSON(z))
	}
	for _, z := range a.Readout {
		ja.Readout = append(ja.Readout, zoneToJSON(z))
	}
	for _, d := range a.AODs {
		ja.AODs = append(ja.AODs, jsonAOD{ID: d.ID, SiteSep: d.MinSep, R: d.MaxRows, C: d.MaxCols})
	}
	return json.Marshal(ja)
}

// UnmarshalJSON decodes the artifact JSON format, accepting both artifact
// and corrected key spellings.
func (a *Architecture) UnmarshalJSON(data []byte) error {
	var ja jsonArch
	if err := json.Unmarshal(data, &ja); err != nil {
		return err
	}
	out := Architecture{Name: ja.Name, ZoneSep: DSep}
	out.Times = OperationTimes{
		Rydberg:      ja.OpDur["rydberg"],
		OneQGate:     ja.OpDur["1qGate"],
		AtomTransfer: ja.OpDur["atom_transfer"],
	}
	out.Fidelities = OperationFidelities{
		TwoQubit:     ja.OpFid["two_qubit_gate"],
		SingleQubit:  ja.OpFid["single_qubit_gate"],
		AtomTransfer: ja.OpFid["atom_transfer"],
		Excitation:   ja.OpFid["excitation"],
	}
	if out.Fidelities.Excitation == 0 {
		out.Fidelities.Excitation = NeutralAtomFidelities().Excitation
	}
	out.T2 = ja.Qubit["T"]
	for _, jz := range ja.Storage {
		z, err := zoneFromJSON(jz, StorageZone)
		if err != nil {
			return err
		}
		out.Storage = append(out.Storage, z)
	}
	for _, jz := range ja.Entangle {
		z, err := zoneFromJSON(jz, EntanglementZone)
		if err != nil {
			return err
		}
		out.Entanglement = append(out.Entanglement, z)
	}
	for _, jz := range ja.Readout {
		z, err := zoneFromJSON(jz, ReadoutZone)
		if err != nil {
			return err
		}
		out.Readout = append(out.Readout, z)
	}
	for _, d := range ja.AODs {
		out.AODs = append(out.AODs, AODArray{ID: d.ID, MinSep: d.SiteSep, MaxRows: d.R, MaxCols: d.C})
	}
	*a = out
	return nil
}
