package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zac/internal/compiler"
)

// TestUnknownCompilerExitsOne pins the flag-validation contract: naming an
// unregistered compiler fails fast with exit code 1 and the valid list,
// whatever the mode.
func TestUnknownCompilerExitsOne(t *testing.T) {
	for _, args := range [][]string{
		{"-compilers", "zac,no-such-compiler", "-smoke"},
		{"-diff", "-compilers", "no-such-compiler", "-smoke"},
	} {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), args, &stdout, &stderr)
		if code != 1 {
			t.Errorf("run(%v) = %d, want 1\nstderr: %s", args, code, stderr.String())
		}
		msg := stderr.String()
		if !strings.Contains(msg, `unknown compiler "no-such-compiler"`) {
			t.Errorf("run(%v) stderr missing the offending name: %s", args, msg)
		}
		for _, name := range compiler.Names() {
			if !strings.Contains(msg, name) {
				t.Errorf("run(%v) stderr missing valid compiler %s: %s", args, name, msg)
			}
		}
	}
}

// TestBadFlagExitsTwo pins usage errors to exit code 2, distinct from
// invariant violations (1).
func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("run(-no-such-flag) = %d, want 2", code)
	}
}

// TestBadSpec pins how each mode surfaces a malformed -spec: round-trip
// mode reports it as a failing input (exit 1, the historical behavior the
// nightly depends on), differential mode treats it as a harness error
// (exit 2) since the seed pool itself is broken.
func TestBadSpec(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want int
	}{
		{[]string{"-spec", "frobnicate:n=4"}, 1},
		{[]string{"-diff", "-spec", "rb:bogus=1"}, 2},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), tc.args, &stdout, &stderr); code != tc.want {
			t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
				tc.args, code, tc.want, stdout.String(), stderr.String())
		}
	}
}

// TestListWorkloads pins the discovery surface.
func TestListWorkloads(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list-workloads"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list-workloads) = %d, want 0", code)
	}
	for _, fam := range []string{"clifford", "rb", "qaoa"} {
		if !strings.Contains(stdout.String(), fam) {
			t.Errorf("-list-workloads output missing %s", fam)
		}
	}
}

// TestDiffSmoke runs the differential oracle end to end over one pinned
// spec with the zac ablation pair: exit 0, a divergence summary, and the
// feature counters in the run report.
func TestDiffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a pinned spec with two compilers twice; skipped in -short")
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{"-diff", "-spec", "rb:n=6,depth=4,seed=7",
		"-compilers", "zac,zac-vanilla", "-corpus", filepath.Join(dir, "corpus")}
	code := run(context.Background(), args, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run(%v) = %d, want 0\nstdout: %s\nstderr: %s", args, code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "0 divergences") {
		t.Errorf("summary missing divergence count: %s", out)
	}
	if !strings.Contains(out, "features reached:") {
		t.Errorf("summary missing feature counters: %s", out)
	}
	// A clean run persists nothing.
	if entries, err := os.ReadDir(filepath.Join(dir, "corpus")); err == nil && len(entries) > 0 {
		t.Errorf("clean run wrote %d corpus entries", len(entries))
	}
}
