package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// cli drives the full CLI in-process and returns (exit code, stdout,
// stderr).
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

// The acceptance path of the observatory: a smoke run populates the store,
// a second run produces a trend query spanning both runs, and the
// regression gate flags a seeded 2× slowdown while passing an unmodified
// rerun on the same machine.
func TestSmokeStoreTrendAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles circuits in -short mode")
	}
	store := filepath.Join(t.TempDir(), "store")

	// First smoke run at a pinned "commit".
	code, out, errs := cli(t, "run", "-smoke", "-store", store, "-commit", "commitA")
	if code != 0 {
		t.Fatalf("run 1 exit %d\nstdout: %s\nstderr: %s", code, out, errs)
	}
	if !strings.Contains(out, "micro/jv_dense") {
		t.Fatalf("run 1 output lacks cases:\n%s", out)
	}

	// Second run at a second commit.
	if code, out, errs = cli(t, "run", "-smoke", "-store", store, "-commit", "commitB"); code != 0 {
		t.Fatalf("run 2 exit %d\nstderr: %s", code, errs)
	}

	// Trend spans both runs.
	code, out, _ = cli(t, "trend", "-store", store, "-case", "micro/jv_dense", "-last", "10")
	if code != 0 {
		t.Fatalf("trend exit %d", code)
	}
	if !strings.Contains(out, "commitA") || !strings.Contains(out, "commitB") {
		t.Fatalf("trend does not span both runs:\n%s", out)
	}

	// Unmodified rerun (commitB vs commitA): the gate must pass. Smoke
	// repetitions are below the statistical minimum, so this also
	// exercises the threshold fallback noted in the verdicts. Gate the
	// inner-loop-folded JV kernels only — the millisecond compile cells
	// jitter tens of percent at smoke repetition counts on a loaded
	// machine (the smoke script makes the same call for the same reason).
	kernels := "micro/jv_dense,micro/jv_sparse"
	code, out, _ = cli(t, "gate", "-store", store, "-baseline", "commitA", "-current", "commitB",
		"-cases", kernels, "-threshold", "35", "-min-delta", "30")
	if code != 0 {
		t.Fatalf("noise-only gate exit %d, want 0:\n%s", code, out)
	}

	// Seeded 2× slowdown: flagged with exit 1.
	if code, _, errs = cli(t, "run", "-smoke", "-store", store, "-commit", "commitC", "-handicap", "2"); code != 0 {
		t.Fatalf("handicapped run exit %d\nstderr: %s", code, errs)
	}
	code, out, _ = cli(t, "gate", "-store", store, "-baseline", "commitB", "-current", "commitC",
		"-cases", kernels, "-threshold", "35")
	if code != 1 {
		t.Fatalf("seeded 2× gate exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("seeded 2× gate output lacks FAIL lines:\n%s", out)
	}

	// Reports and the BENCH_N.json export render from the same store.
	if code, out, _ = cli(t, "report", "-store", store); code != 0 || !strings.Contains(out, "micro/jv_dense") {
		t.Fatalf("report exit %d:\n%s", code, out)
	}
	if code, out, _ = cli(t, "report", "-store", store, "-format", "html"); code != 0 || !strings.Contains(out, "<table>") {
		t.Fatalf("html report exit %d:\n%s", code, out)
	}
	if code, out, _ = cli(t, "export", "-store", store, "-commit", "commitB"); code != 0 || !strings.Contains(out, "BenchmarkJVDense") {
		t.Fatalf("export exit %d:\n%s", code, out)
	}
}

// Errors and misuse exit 2, distinct from the gate's regression exit 1.
func TestCLIErrorExitCodes(t *testing.T) {
	if code, _, _ := cli(t, "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand exit = %d, want 2", code)
	}
	if code, _, _ := cli(t, "gate", "-store", t.TempDir()); code != 2 {
		t.Errorf("gate without -baseline exit = %d, want 2", code)
	}
	if code, _, _ := cli(t, "gate", "-store", t.TempDir(), "-baseline", "nope"); code != 2 {
		t.Errorf("gate with empty store exit = %d, want 2", code)
	}
	if code, _, _ := cli(t, "trend", "-store", t.TempDir(), "-case", "nope"); code != 2 {
		t.Errorf("trend with empty store exit = %d, want 2", code)
	}
}

func TestFingerprintSubcommand(t *testing.T) {
	code, out, _ := cli(t, "fingerprint")
	if code != 0 {
		t.Fatalf("fingerprint exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || len(lines[0]) != 16 {
		t.Fatalf("fingerprint output = %q", out)
	}
}
