package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func newTieredWithDisk(t *testing.T) *Tiered {
	t.Helper()
	c := NewTiered(0)
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDisk(d)
	return c
}

func TestTieredMemThenDiskHits(t *testing.T) {
	c := newTieredWithDisk(t)
	codec := JSONCodec[int]()
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	if v, _ := GetTiered(c, "k", codec, compute); v != 42 {
		t.Fatalf("cold lookup = %d", v)
	}
	if v, _ := GetTiered(c, "k", codec, compute); v != 42 {
		t.Fatalf("warm lookup = %d", v)
	}
	st := c.Stats()
	if calls != 1 || st.Misses != 1 || st.MemHits != 1 || st.DiskHits != 0 {
		t.Fatalf("calls=%d stats=%+v; want 1 compute, 1 miss, 1 mem hit", calls, st)
	}

	// Simulate a restart: memory gone, disk intact.
	c.Reset()
	if v, _ := GetTiered(c, "k", codec, compute); v != 42 {
		t.Fatalf("post-restart lookup = %d", v)
	}
	st = c.Stats()
	if calls != 1 || st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("calls=%d stats=%+v; want disk hit without recompute", calls, st)
	}
	if st.HitRate() != 1 {
		t.Errorf("post-restart hit rate = %v, want 1", st.HitRate())
	}
}

func TestTieredNilCodecStaysMemoryOnly(t *testing.T) {
	c := newTieredWithDisk(t)
	calls := 0
	compute := func() (string, error) { calls++; return "v", nil }
	GetTiered(c, "mem-only", nil, compute)
	c.Reset()
	GetTiered(c, "mem-only", nil, compute)
	if calls != 2 {
		t.Fatalf("nil-codec entry persisted across reset: %d calls", calls)
	}
	if st := c.Stats().Disk; st.Entries != 0 {
		t.Fatalf("nil-codec entry reached disk: %+v", st)
	}
}

func TestTieredErrorsNotPersisted(t *testing.T) {
	c := newTieredWithDisk(t)
	codec := JSONCodec[int]()
	boom := errors.New("boom")
	calls := 0
	compute := func() (int, error) { calls++; return 0, boom }

	if _, err := GetTiered(c, "bad", codec, compute); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Memoized within the process…
	if _, err := GetTiered(c, "bad", codec, compute); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("error not memoized: err=%v calls=%d", err, calls)
	}
	// …but recomputed after a restart.
	c.Reset()
	GetTiered(c, "bad", codec, compute)
	if calls != 2 {
		t.Fatalf("error was persisted to disk: calls=%d", calls)
	}
}

func TestTieredUndecodablePayloadRecomputes(t *testing.T) {
	c := newTieredWithDisk(t)
	// Persist a payload that is valid on disk but not valid JSON for int.
	c.Disk().Put("k", []byte("not json"))
	v, err := GetTiered(c, "k", JSONCodec[int](), func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("lookup over bad payload = %d, %v", v, err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v; want recompute", st)
	}
	// The bad entry must have been replaced by the recomputed value.
	c.Reset()
	v, _ = GetTiered(c, "k", JSONCodec[int](), func() (int, error) { return 0, errors.New("must not recompute") })
	if v != 7 || c.Stats().DiskHits != 1 {
		t.Fatalf("repaired entry not served from disk: v=%d stats=%+v", v, c.Stats())
	}
}

// TestTieredSingleFlight launches many goroutines on one cold key; exactly
// one compute must run and everyone shares its result.
func TestTieredSingleFlight(t *testing.T) {
	c := NewTiered(0)
	var calls atomic.Int32
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = GetTiered(c, "k", nil, func() (int, error) {
				calls.Add(1)
				<-release
				return 99, nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("goroutine %d got %d", i, v)
		}
	}
}

// TestTieredConcurrentMixedKeys exercises the full hierarchy under -race.
func TestTieredConcurrentMixedKeys(t *testing.T) {
	c := newTieredWithDisk(t)
	codec := JSONCodec[string]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%d", i%5)
				v, err := GetTiered(c, k, codec, func() (string, error) { return "val-" + k, nil })
				if err != nil || v != "val-"+k {
					t.Errorf("Get(%s) = %q, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 5 {
		t.Errorf("misses = %d, want 5 (one per key)", st.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLRU(2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Get("a") // a is now most recent
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("least recently used entry b survived")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if l.Len() != 2 {
		t.Errorf("len = %d, want 2", l.Len())
	}
}

// TestTieredLRUFrontBounded verifies the memory front respects its capacity
// while the disk tier retains everything.
func TestTieredLRUFrontBounded(t *testing.T) {
	c := NewTiered(3)
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDisk(d)
	codec := JSONCodec[int]()
	for i := 0; i < 10; i++ {
		GetTiered(c, fmt.Sprintf("k%d", i), codec, func() (int, error) { return i, nil })
	}
	st := c.Stats()
	if st.MemEntries > 3 {
		t.Errorf("LRU front holds %d entries, capacity 3", st.MemEntries)
	}
	if st.Disk.Entries != 10 {
		t.Errorf("disk tier holds %d entries, want 10", st.Disk.Entries)
	}
	// An evicted-from-memory key must come back as a disk hit.
	v, _ := GetTiered(c, "k0", codec, func() (int, error) { return -1, errors.New("recompute") })
	if v != 0 || c.Stats().DiskHits != 1 {
		t.Errorf("k0 not restored from disk: v=%d stats=%+v", v, c.Stats())
	}
}
