package schedule

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/place"
	"zac/internal/resynth"
)

// Multi-core scaling benchmark over the parallelized compile hot path
// (ISSUE 9): placement with eight SA restarts plus the full schedule pass,
// pinned at GOMAXPROCS 1 and 8 with a matching intra-compile worker budget.
// It lives in this package (not place) because it drives both passes and
// schedule already imports place. Run with
//
//	go test ./internal/schedule -run xxx -bench BenchmarkBuildPlanSched
//
// The benchsuite mirrors these cells as micro/buildplan_sched/<circuit>/gmpN.

func stagedFor(b *testing.B, name string) *circuit.Staged {
	b.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	staged, err := resynth.Preprocess(bm.Build())
	if err != nil {
		b.Fatal(err)
	}
	return staged
}

// BenchmarkBuildPlanSched measures BuildPlan (SA+dynPlace+reuse with
// SARestarts=8) followed by schedule.BuildWithOptions, at 1 and 8 procs.
// Outputs are byte-identical across the proc axis by construction; only the
// wall clock may differ.
func BenchmarkBuildPlanSched(b *testing.B) {
	a := arch.Reference()
	for _, name := range []string{"qft_n18", "ising_n42"} {
		staged := stagedFor(b, name)
		for _, procs := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/gmp%d", name, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				opts := place.Default()
				opts.SARestarts = 8
				opts.Workers = procs
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					plan, err := place.BuildPlan(context.Background(), a, staged, opts)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := BuildWithOptions(context.Background(), a, staged, plan, Options{Workers: procs}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
