// Package difftest is the differential compile oracle: it runs one circuit
// through every selected registry compiler and cross-checks structured
// invariants, turning the registry itself into a bug oracle — with ten
// compilers sharing one pass pipeline, *disagreement* between them (not any
// absolute number) is the signal, the same cross-configuration-comparison
// discipline RZBENCH applies to HPC architectures. The oracle classifies
// every disagreement into a typed Divergence, greedily shrinks the
// offending circuit to a minimal QASM reproduction (reusing the workload
// forge's shrinker), and optionally persists it to a corpus directory whose
// entries become regression tests (testdata/repros) and fuzz seeds.
//
// On top of the oracle, RunLoop adds a coverage-guided mutation loop:
// workload.Spec parameters and QASM-level gate mutations (splice, drop,
// reparameterize, retarget) are driven by the per-pass and planner-branch
// feature counters exported through internal/cover, and any input that
// reaches a feature no earlier input reached is kept as a seed. The
// `zac-fuzz -diff` command and the `make fuzz-diff-smoke` CI gate are the
// operational surfaces.
package difftest

import (
	"fmt"
	"strings"
)

// Class names one divergence category of the oracle's taxonomy.
type Class string

// The divergence taxonomy. Every disagreement the oracle can detect falls
// into exactly one class; the summary printed by `zac-fuzz -diff` counts
// per class.
const (
	// ClassCompile: a compiler rejected an input that another compiler
	// accepted (capacity-independent inputs only — see Options.MaxQubits).
	ClassCompile Class = "compile"
	// ClassVerify: an emitted ZAIR program failed replay verification
	// (pickup consistency, AOD exclusivity, tone ordering, …).
	ClassVerify Class = "verify"
	// ClassAccounting: replay-derived resource accounting disagrees with
	// the result's reported counters — qubit conservation broken, or the
	// instruction stream's individual qubit movements differ from the
	// plan's TotalMoves.
	ClassAccounting Class = "accounting"
	// ClassDeterminism: two fresh compilations of the same input were not
	// byte-identical.
	ClassDeterminism Class = "determinism"
	// ClassFidelityOrder: an ablation preset beat the configuration it is
	// an ablation of beyond tolerance — removing an optimization must not
	// improve fidelity.
	ClassFidelityOrder Class = "fidelity-order"
	// ClassSanity: a single compiler's result is internally nonsensical
	// (fidelity outside [0,1], non-finite duration, negative counters).
	ClassSanity Class = "sanity"
)

// Classes lists the taxonomy in summary order.
func Classes() []Class {
	return []Class{ClassCompile, ClassVerify, ClassAccounting,
		ClassDeterminism, ClassFidelityOrder, ClassSanity}
}

// Divergence is one classified disagreement, carrying its minimized
// reproduction.
type Divergence struct {
	// Class is the taxonomy bucket.
	Class Class
	// Compiler names the offending compiler ("a>b" for cross-compiler
	// fidelity-ordering pairs).
	Compiler string
	// Input identifies the originating input: a canonical workload spec or
	// a mutation label.
	Input string
	// Detail is the human-readable violation.
	Detail string
	// QASM is the OpenQASM source of the smallest known reproducing
	// circuit (the original input when shrinking is disabled).
	QASM string
	// Gates is the repro's gate count.
	Gates int
	// CorpusPath is where the repro was persisted ("" without a corpus
	// directory).
	CorpusPath string
}

// String renders the divergence as a one-line report plus the repro.
func (d Divergence) String() string {
	out := fmt.Sprintf("[%s] %s: input %s: %s (%d-gate repro)",
		d.Class, d.Compiler, d.Input, d.Detail, d.Gates)
	if d.CorpusPath != "" {
		out += "\n  corpus: " + d.CorpusPath
	}
	if d.QASM != "" {
		out += "\n" + indent(d.QASM, "  ")
	}
	return out
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// Summary aggregates a run's divergences per class for the run report.
type Summary struct {
	PerClass map[Class]int
	Total    int
	Corpus   []string // paths of persisted repros, in discovery order
}

// Summarize buckets divergences by class.
func Summarize(divs []Divergence) Summary {
	s := Summary{PerClass: map[Class]int{}}
	for _, d := range divs {
		s.PerClass[d.Class]++
		s.Total++
		if d.CorpusPath != "" {
			s.Corpus = append(s.Corpus, d.CorpusPath)
		}
	}
	return s
}

// String renders the per-class counts in taxonomy order.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d divergences", s.Total)
	if s.Total == 0 {
		return b.String()
	}
	b.WriteString(" (")
	first := true
	for _, c := range Classes() {
		if n := s.PerClass[c]; n > 0 {
			if !first {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %d", c, n)
			first = false
		}
	}
	b.WriteString(")")
	return b.String()
}
