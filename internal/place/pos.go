// Package place implements ZAC's reuse-aware placement (paper §V): the
// simulated-annealing initial qubit placement (§V-A), qubit-reuse
// identification via maximum bipartite matching (§V-B1), gate placement via
// minimum-weight full matching over candidate Rydberg sites with lookahead
// (§V-B2), and non-reuse dynamic qubit placement back to storage (§V-B3).
package place

import (
	"math"

	"zac/internal/arch"
	"zac/internal/geom"
)

// Pos is the location of a qubit at a point in the compiled timeline: either
// a storage trap or one slot of a Rydberg site in an entanglement zone.
type Pos struct {
	InStorage bool
	Trap      arch.TrapRef // valid when InStorage
	Site      arch.SiteRef // valid when !InStorage
	Slot      int          // trap slot within the site (0 = left, 1 = right)
}

// StoragePos wraps a trap reference.
func StoragePos(t arch.TrapRef) Pos { return Pos{InStorage: true, Trap: t} }

// SitePos wraps a site slot.
func SitePos(s arch.SiteRef, slot int) Pos { return Pos{Site: s, Slot: slot} }

// Point resolves the physical coordinates of the position.
func (p Pos) Point(a *arch.Architecture) geom.Point {
	if p.InStorage {
		return a.TrapPos(p.Trap)
	}
	return a.SiteTrapPos(p.Site, p.Slot)
}

// SameLocation reports whether two positions are the same physical trap.
func (p Pos) SameLocation(q Pos) bool {
	if p.InStorage != q.InStorage {
		return false
	}
	if p.InStorage {
		return p.Trap == q.Trap
	}
	return p.Site == q.Site && p.Slot == q.Slot
}

// Move is one qubit relocation between two positions.
type Move struct {
	Qubit    int
	From, To Pos
}

// Distance returns the Euclidean length of the move.
func (m Move) Distance(a *arch.Architecture) float64 {
	return m.From.Point(a).Dist(m.To.Point(a))
}

// moveCost is the paper's movement-duration surrogate: √distance (Eq. 1
// applies the square root because movement duration ∝ √d).
func moveCost(a *arch.Architecture, from, to geom.Point) float64 {
	return math.Sqrt(from.Dist(to))
}

// gateCost implements Eq. 1, generalized to k-qubit gates (the spec's
// multi-trap Rydberg sites, §III): qubits sharing an SLM row are picked up
// by one AOD row and move in parallel (max of their √distances); distinct
// rows move sequentially (costs add). For two qubits this is exactly Eq. 1.
// Rows are accumulated in first-appearance order (no map), which keeps the
// sum deterministic and the hot path allocation-free.
func gateCost(a *arch.Architecture, site geom.Point, qubits ...geom.Point) float64 {
	if len(qubits) == 2 {
		return gateCost2(a, site, qubits[0], qubits[1])
	}
	ys := make([]float64, 0, 8)
	maxes := make([]float64, 0, 8)
	for _, p := range qubits {
		c := moveCost(a, p, site)
		found := false
		for i, y := range ys {
			if y == p.Y {
				if c > maxes[i] {
					maxes[i] = c
				}
				found = true
				break
			}
		}
		if !found {
			ys = append(ys, p.Y)
			maxes = append(maxes, c)
		}
	}
	total := 0.0
	for _, c := range maxes {
		total += c
	}
	return total
}

// gateCost2 is gateCost specialized to the two-qubit CZ case the placement
// hot loops evaluate millions of times: no variadic slice, no row map.
func gateCost2(a *arch.Architecture, site, p1, p2 geom.Point) float64 {
	c1 := moveCost(a, p1, site)
	c2 := moveCost(a, p2, site)
	if p1.Y == p2.Y {
		if c2 > c1 {
			return c2
		}
		return c1
	}
	return c1 + c2
}

// centroid returns the mean of the points.
func centroid(pts []geom.Point) geom.Point {
	var c geom.Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return geom.Point{X: c.X / n, Y: c.Y / n}
}

// nearSiteForQubits generalizes ω_near to k qubits: the middle site of the
// per-qubit nearest sites when they share a zone, else the site nearest the
// centroid.
func nearSiteForQubits(a *arch.Architecture, pts []geom.Point) arch.SiteRef {
	if len(pts) == 2 {
		return nearSiteForGate(a, pts[0], pts[1])
	}
	refs := make([]arch.SiteRef, len(pts))
	sameZone := true
	for i, p := range pts {
		refs[i] = a.NearestSite(p)
		if refs[i].Zone != refs[0].Zone {
			sameZone = false
		}
	}
	if sameZone {
		r, c := 0, 0
		for _, s := range refs {
			r += s.Row
			c += s.Col
		}
		return arch.SiteRef{Zone: refs[0].Zone, Row: r / len(refs), Col: c / len(refs)}
	}
	return a.NearestSite(centroid(pts))
}

// nearSiteForGate picks ω_near for a gate (paper §V-A): the middle site
// between the nearest sites of the two target qubits. When the nearest sites
// live in different entanglement zones, the site nearer to the pair's
// midpoint wins.
func nearSiteForGate(a *arch.Architecture, p1, p2 geom.Point) arch.SiteRef {
	return nearSiteFromNearest(a, a.NearestSite(p1), a.NearestSite(p2), p1, p2)
}

// nearSiteFromNearest is nearSiteForGate with the per-qubit NearestSite
// lookups already resolved — the SA state caches them per trap ordinal so
// the annealing loop skips the zone scan entirely.
func nearSiteFromNearest(a *arch.Architecture, s1, s2 arch.SiteRef, p1, p2 geom.Point) arch.SiteRef {
	if s1.Zone == s2.Zone {
		return arch.SiteRef{
			Zone: s1.Zone,
			Row:  (s1.Row + s2.Row) / 2,
			Col:  (s1.Col + s2.Col) / 2,
		}
	}
	mid := geom.Point{X: (p1.X + p2.X) / 2, Y: (p1.Y + p2.Y) / 2}
	if a.SitePos(s1).Dist(mid) <= a.SitePos(s2).Dist(mid) {
		return s1
	}
	return s2
}
