// Package faultinject is the deterministic fault-injection layer behind the
// chaos test suite: a seeded Plan maps named injection points ("fs.readfile",
// "fs.rename", "pass.place", …) to faults — error returns, injected latency,
// silently truncated writes, torn renames, bit-flip corruption — fired either
// probabilistically from a per-point splitmix64 stream or on exact hit
// ordinals. The same seed always produces the same per-point fault schedule,
// so a chaos run that finds a bug is replayable from its seed alone.
//
// Faults reach production code through two narrow seams, neither of which
// changes a hot-path signature: WrapFS decorates the engine.FS seam every
// DiskCache I/O operation goes through, and With/From carry a Plan in a
// context.Context so core.Pipeline can consult Boundary at each pass
// boundary (mirroring internal/cover's context-carried counters). Code
// without a plan in scope pays one nil check, nothing more.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error fault, so
// tests can errors.Is-classify failures they caused themselves.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind enumerates the fault behaviors a Rule can fire.
type Kind int

// The fault behaviors. Not every kind is meaningful at every point: partial
// writes only apply to "fs.write", torn renames to "fs.rename", bit flips to
// "fs.readfile"; a kind at a point it cannot corrupt degrades to an error
// fault, so a misconfigured rule is loud rather than silent.
const (
	// KindError makes the operation return Rule.Err (default ErrInjected).
	KindError Kind = iota + 1
	// KindLatency delays the operation by Rule.Latency, then proceeds.
	KindLatency
	// KindPartialWrite truncates a write to Rule.Fraction of its bytes while
	// reporting full success — the entry commits torn, as if the kernel lost
	// dirty pages on power failure.
	KindPartialWrite
	// KindTornRename commits only Rule.Fraction of the staged file's bytes
	// to the destination and reports success — a torn commit the reader's
	// checksum must catch.
	KindTornRename
	// KindBitFlip flips one deterministic-random bit of the bytes a read
	// returns, leaving the file on disk intact.
	KindBitFlip
)

// String names the kind for traces and test failures.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPartialWrite:
		return "partial-write"
	case KindTornRename:
		return "torn-rename"
	case KindBitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule arms one fault at one injection point. Rules fire either on exact
// hit ordinals (Hits, 1-based) or with per-hit probability Prob drawn from
// the point's seeded stream; the first matching rule of a point wins.
type Rule struct {
	// Point names the injection point this rule arms ("fs.readfile",
	// "fs.rename", "pass.place", …).
	Point string
	// Prob is the per-hit firing probability in [0, 1]; ignored when Hits
	// is non-empty.
	Prob float64
	// Hits lists exact 1-based hit ordinals that fire, for fully scripted
	// schedules ("fail the 3rd and 5th read").
	Hits []uint64
	// Kind selects the fault behavior.
	Kind Kind
	// Err is the error KindError returns; nil selects ErrInjected wrapped
	// with the point name.
	Err error
	// Latency is KindLatency's delay.
	Latency time.Duration
	// Fraction is the kept fraction for partial writes and torn renames;
	// 0 selects 0.5.
	Fraction float64
}

// PointStats reports one injection point's traffic: how often it was hit
// and how often a fault actually fired there.
type PointStats struct {
	// Hits counts Decide calls for the point (armed or not).
	Hits uint64
	// Fired counts the hits on which a fault fired.
	Fired uint64
}

// pointState is one injection point's rng stream and counters.
type pointState struct {
	rng   uint64 // splitmix64 state, derived from (plan seed, point name)
	stats PointStats
}

// Plan is a seeded, concurrency-safe fault schedule. The zero value is not
// usable; construct with NewPlan. A nil *Plan is a valid no-op receiver for
// Decide and Boundary, so instrumented code never branches on injection
// being armed.
type Plan struct {
	mu      sync.Mutex
	seed    int64
	enabled bool
	rules   map[string][]Rule
	points  map[string]*pointState
	sleep   func(time.Duration)
}

// NewPlan returns an armed Plan drawing per-point fault streams from seed.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{
		seed:    seed,
		enabled: true,
		rules:   map[string][]Rule{},
		points:  map[string]*pointState{},
		sleep:   time.Sleep,
	}
	p.Add(rules...)
	return p
}

// Add arms additional rules; per point, rules are consulted in the order
// they were added.
func (p *Plan) Add(rules ...Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rules {
		p.rules[r.Point] = append(p.rules[r.Point], r)
	}
}

// SetEnabled arms (true) or disarms (false) the whole plan. Disarmed plans
// count hits but never fire — the "faults stop, system recovers" phase of a
// chaos schedule.
func (p *Plan) SetEnabled(on bool) {
	p.mu.Lock()
	p.enabled = on
	p.mu.Unlock()
}

// SetSleep overrides the latency-fault sleeper (tests; nil restores
// time.Sleep).
func (p *Plan) SetSleep(fn func(time.Duration)) {
	p.mu.Lock()
	if fn == nil {
		fn = time.Sleep
	}
	p.sleep = fn
	p.mu.Unlock()
}

// Stats returns the point's hit/fired counters.
func (p *Plan) Stats(point string) PointStats {
	if p == nil {
		return PointStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.points[point]; ok {
		return st.stats
	}
	return PointStats{}
}

// Fired sums the fired counters over every point with the given prefix —
// convenient for "did any fs fault fire" assertions.
func (p *Plan) Fired(prefix string) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for name, st := range p.points {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			n += st.stats.Fired
		}
	}
	return n
}

// Decide registers one hit of the injection point and returns the rule that
// fires on it, or nil. Each point consumes its own splitmix64 stream derived
// from (seed, point), so schedules are reproducible per point regardless of
// how concurrent goroutines interleave hits across different points. Safe
// on a nil receiver (never fires).
func (p *Plan) Decide(point string) *Rule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.points[point]
	if st == nil {
		st = &pointState{rng: splitmixSeed(p.seed, point)}
		p.points[point] = st
	}
	st.stats.Hits++
	if !p.enabled {
		return nil
	}
	for i := range p.rules[point] {
		r := &p.rules[point][i]
		if len(r.Hits) > 0 {
			for _, h := range r.Hits {
				if h == st.stats.Hits {
					st.stats.Fired++
					return r
				}
			}
			continue
		}
		// One draw per probabilistic rule per hit keeps the stream aligned
		// whether or not earlier rules fired.
		if float64(splitmix(&st.rng)>>11)/(1<<53) < r.Prob {
			st.stats.Fired++
			return r
		}
	}
	return nil
}

// Rand returns the next value of the point's auxiliary random stream, used
// by fault implementations that need a deterministic choice (which bit to
// flip, where to truncate).
func (p *Plan) Rand(point string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.points[point]
	if st == nil {
		st = &pointState{rng: splitmixSeed(p.seed, point)}
		p.points[point] = st
	}
	return splitmix(&st.rng)
}

// Boundary applies the point's fault as a pass-boundary hook: latency
// faults sleep (cancellable through ctx), error faults return their error,
// corruption kinds degrade to errors (there are no bytes to corrupt at a
// pass boundary). Nil-safe; core.Pipeline calls this between passes for
// plans carried in the compile context.
func (p *Plan) Boundary(ctx context.Context, point string) error {
	r := p.Decide(point)
	if r == nil {
		return nil
	}
	if r.Kind == KindLatency {
		t := time.NewTimer(r.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return r.fail(point)
}

// fail renders the rule as its injected error.
func (r *Rule) fail(point string) error {
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("%s: %w", point, ErrInjected)
}

// sleeper returns the plan's latency sleeper.
func (p *Plan) sleeper() func(time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sleep
}

// splitmixSeed derives a point's initial rng state from the plan seed and
// the point name (FNV-1a folded into the seed), so distinct points consume
// independent deterministic streams.
func splitmixSeed(seed int64, point string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= 1099511628211
	}
	return uint64(seed) ^ h
}

// splitmix advances a splitmix64 state and returns the next value.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type ctxKey struct{}

// With returns a context carrying the plan; instrumented code reached
// through it (the pass pipeline) consults the plan at its injection points.
func With(ctx context.Context, p *Plan) context.Context {
	return context.WithValue(ctx, ctxKey{}, p)
}

// From extracts the context's plan, or nil — every Plan method is nil-safe,
// so callers chain From(ctx).Boundary(...) without branching.
func From(ctx context.Context) *Plan {
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}
