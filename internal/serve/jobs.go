package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// job tracks one async batch compilation. Its context is cancelled by
// DELETE /v1/jobs/{id}, which stops the remaining compilations mid-pass;
// already-finished items keep their results.
type job struct {
	id    string
	total int

	completed atomic.Int32

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   JobStatus
	results  []BatchItem
	canceled bool
}

// maxRetainedJobs bounds the job table: once exceeded, the oldest finished
// jobs (and their result payloads) are dropped, so a long-lived service
// does not accumulate every ZAIR program it ever compiled. Pollers of a
// dropped job get a 404, the same as for a never-submitted id.
const maxRetainedJobs = 256

// newJobState builds a pending job with its cancellation context.
func newJobState(id string, total int) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{id: id, total: total, status: JobPending, ctx: ctx, cancel: cancel}
}

// newJob registers a pending job, evicting the oldest finished jobs when
// the table is over its retention bound.
func (s *Server) newJob(total int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobSeq++
	j := newJobState(fmt.Sprintf("job-%d", s.jobSeq), total)
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for i := 0; len(s.jobs) > maxRetainedJobs && i < len(s.jobOrder); {
		old := s.jobs[s.jobOrder[i]]
		if old == nil {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			continue
		}
		old.mu.Lock()
		finished := old.status == JobDone || old.status == JobFailed || old.status == JobCanceled
		old.mu.Unlock()
		if !finished {
			i++ // never drop a job still in flight
			continue
		}
		delete(s.jobs, s.jobOrder[i])
		s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
	}
	return j
}

// startJob launches a job's batch on a background goroutine tracked by the
// drain WaitGroup, so graceful shutdown can wait for running jobs.
func (s *Server) startJob(j *job, batch []CompileRequest, defaultCompiler string, includeZAIR bool) {
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(j, batch, defaultCompiler, includeZAIR)
	}()
}

// runJob executes a job's batch in the background, tracking per-item
// completion for pollers. The job ends JobDone unless every item failed, or
// JobCanceled when a cancellation arrived before it finished. Reaching a
// terminal state retires the job's journal record — the job can no longer
// be lost, so it must not be replayed.
func (s *Server) runJob(j *job, batch []CompileRequest, defaultCompiler string, includeZAIR bool) {
	j.mu.Lock()
	if !j.canceled {
		j.status = JobRunning
	}
	j.mu.Unlock()

	items := make([]BatchItem, len(batch))
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer j.completed.Add(1)
			items[i] = s.compileItem(j.ctx, batch[i], defaultCompiler, includeZAIR)
		}(i)
	}
	wg.Wait()

	failed := 0
	for _, it := range items {
		if it.Error != "" {
			failed++
		}
	}
	j.mu.Lock()
	j.results = items
	switch {
	case j.canceled:
		// keep JobCanceled; the per-item errors say which compilations the
		// cancellation caught mid-flight
	case failed == len(items) && len(items) > 0:
		j.status = JobFailed
	default:
		j.status = JobDone
	}
	j.mu.Unlock()
	if s.journal != nil {
		s.journal.remove(j.id)
	}
}

// handleJobCancel serves DELETE /v1/jobs/{id}: it cancels the job's
// context, stopping its remaining compilations mid-pass. Cancelling an
// already-finished job is a no-op that reports the final state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	if j.status == JobPending || j.status == JobRunning {
		j.status = JobCanceled
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusOK, j.response())
}

// response snapshots the job for the API.
func (j *job) response() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobResponse{
		ID:        j.id,
		Status:    j.status,
		Total:     j.total,
		Completed: int(j.completed.Load()),
		Results:   j.results,
	}
}
